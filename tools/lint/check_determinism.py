#!/usr/bin/env python3
"""Determinism lint for the fingerprint-feeding subsystems.

The repo's determinism contract (DESIGN.md §11, tests/eval/determinism_test.cc)
requires that every schedule and lifecycle fingerprint be byte-identical across
runs, machines, and shard counts.  That breaks the moment iteration order,
keys, or timing leak into scheduling decisions, so this checker rejects the
known leak classes in src/{sched,sim,eval,obs,exec,runtime}:

  unordered-iteration   range-for / .begin() traversal of a container declared
                        as std::unordered_{map,set,...} anywhere in src/.
                        Keyed lookups are fine; iteration order is not.
  nondeterministic-src  rand()/srand(), time(nullptr), std::random_device,
                        system_clock.  Simulations must draw from the seeded
                        common::Rng; real-time code uses steady_clock.
  pointer-keyed         std::map/std::set keyed by a pointer type — ordered,
                        but by allocation address, which varies per run.
  raw-std-mutex         std::mutex / std::condition_variable / std::lock_guard /
                        std::scoped_lock outside src/common.  New code must use
                        common::Mutex so it participates in thread-safety
                        analysis and the lock-order validator.

Suppress a deliberate exception with a trailing comment on the same line:
    for (auto& kv : lookup_) {  // determinism-ok: order-independent sum
Declaration sites of unordered containers are never flagged — only traversal.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]
SCOPED_DIRS = ["src/sched", "src/sim", "src/eval", "src/obs", "src/exec", "src/runtime"]
# Unordered-container declarations are harvested repo-wide (a member declared
# in a header may be iterated from a .cc elsewhere).
HARVEST_DIRS = ["src"]
SUPPRESS = "determinism-ok"

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*(\w+)\s*[;={(]"
)
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*\*?(\w+)\s*\)")
BEGIN_CALL = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")
INLINE_UNORDERED_ITER = re.compile(
    r"\bfor\s*\([^;)]*:\s*\w[\w.>-]*\.\s*\w*unordered\w*"
)

NONDET_SOURCES = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time(nullptr)"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
]
POINTER_KEYED = re.compile(
    r"std::(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*"
)
RAW_SYNC = re.compile(
    r"std::(?:mutex|condition_variable(?:_any)?|lock_guard|scoped_lock)\b"
)

LINE_COMMENT = re.compile(r"//.*$")
STRING_LIT = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(line: str) -> str:
    """Drop string literals and // comments so prose never trips a check."""
    return LINE_COMMENT.sub("", STRING_LIT.sub('""', line))


def source_files(dirs):
    for d in dirs:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in (".h", ".cc"):
                yield path


def harvest_unordered_names():
    names = set()
    for path in source_files(HARVEST_DIRS):
        text = path.read_text(encoding="utf-8")
        for m in UNORDERED_DECL.finditer(text):
            names.add(m.group(1))
    return names


def check_file(path, unordered_names, findings):
    rel = path.relative_to(REPO).as_posix()
    in_common = rel.startswith("src/common/")
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block_comment = False
    for lineno, raw in enumerate(lines, start=1):
        if SUPPRESS in raw:
            continue
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and "*/" not in line[start:]:
            in_block_comment = True
            line = line[:start]
        line = strip_noise(line)
        if not line.strip():
            continue

        def report(rule, detail):
            findings.append(f"{rel}:{lineno}: [{rule}] {detail}\n    {raw.strip()}")

        for m in RANGE_FOR.finditer(line):
            if m.group(1) in unordered_names:
                report(
                    "unordered-iteration",
                    f"range-for over unordered container '{m.group(1)}'",
                )
        for m in BEGIN_CALL.finditer(line):
            if m.group(1) in unordered_names:
                report(
                    "unordered-iteration",
                    f"iterator traversal of unordered container '{m.group(1)}'",
                )
        if INLINE_UNORDERED_ITER.search(line):
            report("unordered-iteration", "range-for over an unordered container")
        for pattern, what in NONDET_SOURCES:
            if pattern.search(line):
                report("nondeterministic-src", f"{what} in fingerprint-feeding code")
        if POINTER_KEYED.search(line):
            report("pointer-keyed", "ordered container keyed by pointer value")
        if not in_common and RAW_SYNC.search(line):
            report("raw-std-mutex", "use common::Mutex / common::CondVar instead")


def main(argv):
    if len(argv) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    unordered_names = harvest_unordered_names()
    findings = []
    checked = 0
    for path in source_files(SCOPED_DIRS):
        checked += 1
        check_file(path, unordered_names, findings)
    if findings:
        print(f"determinism lint: {len(findings)} finding(s) in {checked} files:")
        for f in findings:
            print(f)
        return 1
    print(f"determinism lint: OK ({checked} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env bash
# Repo lint pass: the determinism checker plus (when clang-tidy is installed)
# clang-tidy over src/ using the root .clang-tidy config.  CI's `lint` job runs
# exactly this script; run it locally before sending a PR.
#
# Usage: tools/lint/run_lint.sh [build-dir]
#   build-dir  directory containing compile_commands.json for clang-tidy
#              (default: build; configured with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)

set -euo pipefail

REPO="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-$REPO/build}"
status=0

python3 "$REPO/tools/lint/check_determinism.py" || status=1

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ -f "$BUILD_DIR/compile_commands.json" ]]; then
    # Headers are checked via the .cc files that include them
    # (clang-tidy's HeaderFilterRegex in .clang-tidy covers src/).
    mapfile -t sources < <(find "$REPO/src" -name '*.cc' | sort)
    clang-tidy -p "$BUILD_DIR" --quiet "${sources[@]}" || status=1
  else
    echo "run_lint: no compile_commands.json in $BUILD_DIR;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON to run clang-tidy" >&2
    status=1
  fi
else
  echo "run_lint: clang-tidy not installed; skipping (determinism checker still ran)" >&2
fi

exit $status

// Figure 4 (Section 4.2): impact of the weight readjustment algorithm.
//
// Prints the cumulative-service time series ("number of iterations" in the
// paper; service milliseconds here — the two are proportional) for the three
// Inf tasks of the experiment: T1(w=1), T2(w=10) from t=0, T3(w=1) at t=15s,
// T2 stopped at t=30s.  Run with SFQ without and with readjustment, plus SFS.

#include <ostream>
#include <string>

#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/metrics/fairness.h"

namespace {

using sfs::common::Table;
using sfs::harness::JsonValue;

void PrintSeries(std::ostream& os, const sfs::eval::SeriesResult& result) {
  Table table({"t (s)", "T1 (ms)", "T2 (ms)", "T3 (ms)"});
  const auto& times = result.times;
  for (std::size_t i = 0; i < times.size(); i += 4) {  // every 2 s
    table.AddRow({Table::Cell(sfs::ToSeconds(times[i]), 1),
                  Table::Cell(result.Of("T1")[i] / sfs::kTicksPerMsec),
                  Table::Cell(result.Of("T2")[i] / sfs::kTicksPerMsec),
                  Table::Cell(result.Of("T3")[i] / sfs::kTicksPerMsec)});
  }
  table.Print(os);
  os << "T1 longest starvation: "
     << sfs::metrics::LongestStarvation(result.Of("T1"), sfs::Msec(500)) / sfs::kTicksPerMsec
     << " ms\n\n";
}

JsonValue SeriesToJson(const sfs::eval::SeriesResult& result) {
  JsonValue entry = JsonValue::Object();
  entry.Set("scheduler", JsonValue(result.scheduler_name));
  entry.Set("t1_starvation_ms",
            JsonValue(sfs::metrics::LongestStarvation(result.Of("T1"), sfs::Msec(500)) /
                      sfs::kTicksPerMsec));
  for (const char* label : {"T1", "T2", "T3"}) {
    entry.Set(std::string(label) + "_final_ms",
              JsonValue(result.Of(label).back() / sfs::kTicksPerMsec));
  }
  return entry;
}

}  // namespace

SFS_EXPERIMENT(fig4_readjust,
               .description = "Figure 4: weight readjustment repairs the late-arrival starvation",
               .schedulers = {"sfq", "sfs"}) {
  using sfs::sched::SchedKind;

  reporter.out() << "=== Figure 4: impact of the weight readjustment algorithm ===\n"
                 << "2 CPUs, q=200ms; T1(w=1), T2(w=10) at t=0; T3(w=1) at t=15s; T2 stops "
                    "at 30s.\n"
                 << "Paper 4(a): without readjustment SFQ starves T1 from t=15s.\n"
                 << "Paper 4(b): with readjustment shares are 1:1 then 1:2:1 then 1:1.\n\n";

  reporter.out() << "--- Figure 4(a): SFQ without readjustment ---\n";
  const auto sfq_plain = sfs::eval::RunFig4(SchedKind::kSfq, /*readjust=*/false);
  PrintSeries(reporter.out(), sfq_plain);

  reporter.out() << "--- Figure 4(b): SFQ with readjustment ---\n";
  const auto sfq_readjust = sfs::eval::RunFig4(SchedKind::kSfq, /*readjust=*/true);
  PrintSeries(reporter.out(), sfq_readjust);

  reporter.out() << "--- SFS (always readjusts) ---\n";
  const auto sfs_run = sfs::eval::RunFig4(SchedKind::kSfs, /*readjust=*/true);
  PrintSeries(reporter.out(), sfs_run);

  JsonValue without = SeriesToJson(sfq_plain);
  without.Set("readjust", JsonValue(false));
  JsonValue with = SeriesToJson(sfq_readjust);
  with.Set("readjust", JsonValue(true));
  JsonValue sfs_entry = SeriesToJson(sfs_run);
  sfs_entry.Set("readjust", JsonValue(true));

  JsonValue cases = JsonValue::Array();
  cases.Push(std::move(without));
  cases.Push(std::move(with));
  cases.Push(std::move(sfs_entry));
  reporter.Set("cases", std::move(cases));
}

// Figure 4 (Section 4.2): impact of the weight readjustment algorithm.
//
// Prints the cumulative-service time series ("number of iterations" in the
// paper; service milliseconds here — the two are proportional) for the three
// Inf tasks of the experiment: T1(w=1), T2(w=10) from t=0, T3(w=1) at t=15s,
// T2 stopped at t=30s.  Run with SFQ without and with readjustment, plus SFS.

#include <iostream>

#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/metrics/fairness.h"

namespace {

void PrintSeries(const sfs::eval::SeriesResult& result) {
  using sfs::common::Table;
  Table table({"t (s)", "T1 (ms)", "T2 (ms)", "T3 (ms)"});
  const auto& times = result.times;
  for (std::size_t i = 0; i < times.size(); i += 4) {  // every 2 s
    table.AddRow({Table::Cell(sfs::ToSeconds(times[i]), 1),
                  Table::Cell(result.Of("T1")[i] / sfs::kTicksPerMsec),
                  Table::Cell(result.Of("T2")[i] / sfs::kTicksPerMsec),
                  Table::Cell(result.Of("T3")[i] / sfs::kTicksPerMsec)});
  }
  table.Print(std::cout);
  std::cout << "T1 longest starvation: "
            << sfs::metrics::LongestStarvation(result.Of("T1"), sfs::Msec(500)) /
                   sfs::kTicksPerMsec
            << " ms\n\n";
}

}  // namespace

int main() {
  using sfs::sched::SchedKind;

  std::cout << "=== Figure 4: impact of the weight readjustment algorithm ===\n"
            << "2 CPUs, q=200ms; T1(w=1), T2(w=10) at t=0; T3(w=1) at t=15s; T2 stops at 30s.\n"
            << "Paper 4(a): without readjustment SFQ starves T1 from t=15s.\n"
            << "Paper 4(b): with readjustment shares are 1:1 then 1:2:1 then 1:1.\n\n";

  std::cout << "--- Figure 4(a): SFQ without readjustment ---\n";
  PrintSeries(sfs::eval::RunFig4(SchedKind::kSfq, /*readjust=*/false));

  std::cout << "--- Figure 4(b): SFQ with readjustment ---\n";
  PrintSeries(sfs::eval::RunFig4(SchedKind::kSfq, /*readjust=*/true));

  std::cout << "--- SFS (always readjusts) ---\n";
  PrintSeries(sfs::eval::RunFig4(SchedKind::kSfs, /*readjust=*/true));
  return 0;
}

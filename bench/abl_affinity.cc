// Ablation A6: processor-affinity dispatch window (Section 5 future work).
//
// "SMP-based time-sharing schedulers ... take processor affinities into account
// ... SFS currently ignores processor affinities while making scheduling
// decisions."  The extension lets a dispatch accept any thread whose surplus is
// within `tolerance` of the minimum if it last ran on the dispatching CPU.
// This sweep shows the trade: migrations (cache-cold starts) drop sharply with
// a small tolerance while the allocation stays proportional.

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/sfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace {

struct AffinityOutcome {
  std::int64_t migrations = 0;
  double worst_share_error = 0.0;   // vs the weight-proportional entitlement
  double useful_utilization = 0.0;  // service / capacity with the cache model on
};

AffinityOutcome RunAffinity(sfs::Tick tolerance) {
  using namespace sfs;
  sched::SchedConfig config;
  config.num_cpus = 2;
  config.quantum = Msec(50);
  config.affinity_tolerance = tolerance;
  sched::Sfs scheduler(config);
  sim::EngineConfig engine_config;
  engine_config.cache_restore_per_kb = Usec(10);  // 640us to refill a 64KB set
  sim::Engine engine(scheduler, engine_config);

  const std::vector<double> weights = {1, 2, 3, 4, 5, 6};
  double total_weight = 0;
  for (double w : weights) {
    total_weight += w;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    auto task = workload::MakeInf(static_cast<sched::ThreadId>(i + 1), weights[i], "t");
    task->set_working_set_kb(64);
    engine.AddTaskAt(0, std::move(task));
  }
  const Tick horizon = Sec(60);
  engine.RunUntil(horizon);

  AffinityOutcome out;
  out.migrations = engine.migrations();
  double total_service = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double got = static_cast<double>(
        engine.ServiceIncludingRunning(static_cast<sched::ThreadId>(i + 1)));
    total_service += got;
    const double expect = static_cast<double>(2 * horizon) * weights[i] / total_weight;
    out.worst_share_error = std::max(out.worst_share_error, std::abs(got - expect) / expect);
  }
  out.useful_utilization = total_service / static_cast<double>(2 * horizon);
  return out;
}

}  // namespace

SFS_EXPERIMENT(abl_affinity,
               .description = "Ablation A6: affinity tolerance vs migrations and fairness",
               .schedulers = {"sfs"}) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;

  reporter.out() << "=== Ablation A6: processor-affinity tolerance ===\n"
                 << "2 CPUs, 6 Inf threads (weights 1..6, 64KB working sets), 50ms quantum,\n"
                 << "60s horizon, cache-restore model 10us/KB.\n\n";

  Table table({"tolerance (ms)", "migrations", "worst share error (%)", "useful util (%)"});
  JsonValue rows = JsonValue::Array();
  for (const sfs::Tick tol : {sfs::Msec(0), sfs::Msec(10), sfs::Msec(25), sfs::Msec(50),
                              sfs::Msec(100), sfs::Msec(200)}) {
    const AffinityOutcome out = RunAffinity(tol);
    table.AddRow({Table::Cell(tol / sfs::kTicksPerMsec), Table::Cell(out.migrations),
                  Table::Cell(100.0 * out.worst_share_error, 2),
                  Table::Cell(100.0 * out.useful_utilization, 2)});
    JsonValue entry = JsonValue::Object();
    entry.Set("tolerance_ms", JsonValue(tol / sfs::kTicksPerMsec));
    entry.Set("migrations", JsonValue(out.migrations));
    entry.Set("worst_share_error_pct", JsonValue(100.0 * out.worst_share_error));
    entry.Set("useful_utilization_pct", JsonValue(100.0 * out.useful_utilization));
    rows.Push(std::move(entry));
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected: migrations collapse with a tolerance of a fraction of a "
                    "quantum,\nuseful utilization rises as cache refills are avoided, and "
                    "proportional\nshares stay intact (error bounded by the tolerance).\n";
  reporter.Set("rows", std::move(rows));
}

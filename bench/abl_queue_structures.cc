// Ablation A8: run-queue data structures (Section 3.2).
//
// "Since the queues are in sorted order, using a linear search for insertions
// takes O(t) ... The complexity can be further reduced to O(log t) if binary
// search is used to determine the insert position."  Linked lists cannot
// binary-search; a skip list can.  This bench measures the scheduler's hot
// reposition pattern — remove the front element, advance its key by one
// weighted quantum, reinsert — on both structures, showing the crossover from
// the list's cache-friendly small-t wins to the skip list's asymptotic wins.
// Wall-clock; JSON output only under --timing.

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/skip_list.h"
#include "src/common/sorted_list.h"
#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"

namespace {

using sfs::harness::DoNotOptimize;

struct Item {
  double key = 0.0;
  int id = 0;
  sfs::common::ListHook hook;
};

struct ByKey {
  static double Key(const Item& item) { return item.key; }
};

double SortedListRepositionNs(std::size_t n, std::uint64_t seed) {
  std::vector<std::unique_ptr<Item>> items;
  sfs::common::SortedList<Item, &Item::hook, ByKey> list;
  sfs::common::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    auto item = std::make_unique<Item>();
    item->key = rng.UniformDouble(0.0, 1000.0);
    item->id = static_cast<int>(i);
    list.Insert(item.get());
    items.push_back(std::move(item));
  }
  const double ns = sfs::harness::MeasureNsPerOp([&] {
    Item* front = list.PopFront();
    front->key += 1000.0 / 7.0;  // one weighted quantum
    list.InsertFromBack(front);
    DoNotOptimize(front);
  });
  list.Clear();
  return ns;
}

double SkipListRepositionNs(std::size_t n, std::uint64_t seed) {
  std::vector<std::unique_ptr<Item>> items;
  sfs::common::IndexedSkipList<Item, &Item::hook, ByKey> list;
  sfs::common::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    auto item = std::make_unique<Item>();
    item->key = rng.UniformDouble(0.0, 1000.0);
    item->id = static_cast<int>(i);
    list.Insert(item.get());
    items.push_back(std::move(item));
  }
  return sfs::harness::MeasureNsPerOp([&] {
    Item* front = list.PopFront();
    front->key += 1000.0 / 7.0;
    list.Insert(front);
    DoNotOptimize(front);
  });
}

}  // namespace

SFS_EXPERIMENT(abl_queue_structures,
               .description = "Ablation A8: sorted-list vs skip-list reposition cost",
               .schedulers = {"sfs"},
               .repetitions = 1, .warmup = 1, .deterministic = false) {
  using sfs::common::Table;

  reporter.out() << "=== Ablation A8: run-queue reposition cost ===\n"
                 << "Pop front, advance key one weighted quantum, reinsert; ns per cycle.\n\n";

  const std::size_t sizes[] = {16, 64, 256, 1024, 4096};
  Table table({"elements", "sorted list (ns)", "skip list (ns)"});
  for (const std::size_t n : sizes) {
    const double list_ns = SortedListRepositionNs(n, reporter.seed());
    const double skip_ns = SkipListRepositionNs(n, reporter.seed());
    table.AddRow({Table::Cell(n), Table::Cell(list_ns, 1), Table::Cell(skip_ns, 1)});
    reporter.Timing("sorted_list/" + std::to_string(n), list_ns);
    reporter.Timing("skip_list/" + std::to_string(n), skip_ns);
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected: the linked list wins at small t (cache-friendly), the skip\n"
                 << "list wins asymptotically (O(log t) insert position).\n";
  reporter.Metric("sizes_measured", static_cast<std::int64_t>(std::size(sizes)));
}

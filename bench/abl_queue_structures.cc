// Ablation A8: run-queue data structures (Section 3.2).
//
// "Since the queues are in sorted order, using a linear search for insertions
// takes O(t) ... The complexity can be further reduced to O(log t) if binary
// search is used to determine the insert position."  Linked lists cannot
// binary-search; a skip list can.  This bench measures the scheduler's hot
// reposition pattern — remove the front element, advance its key by one
// weighted quantum, reinsert — on both structures, showing the crossover from
// the list's cache-friendly small-t wins to the skip list's asymptotic wins.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/skip_list.h"
#include "src/common/sorted_list.h"

namespace {

struct Item {
  double key = 0.0;
  int id = 0;
  sfs::common::ListHook hook;
};

struct ByKey {
  static double Key(const Item& item) { return item.key; }
};

void BM_SortedList_Reposition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<Item>> items;
  sfs::common::SortedList<Item, &Item::hook, ByKey> list;
  sfs::common::Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    auto item = std::make_unique<Item>();
    item->key = rng.UniformDouble(0.0, 1000.0);
    item->id = static_cast<int>(i);
    list.Insert(item.get());
    items.push_back(std::move(item));
  }
  for (auto _ : state) {
    Item* front = list.PopFront();
    front->key += 1000.0 / 7.0;  // one weighted quantum
    list.InsertFromBack(front);
    benchmark::DoNotOptimize(front);
  }
  list.Clear();
}

void BM_SkipList_Reposition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<Item>> items;
  sfs::common::SkipList<Item, ByKey> list;
  sfs::common::Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    auto item = std::make_unique<Item>();
    item->key = rng.UniformDouble(0.0, 1000.0);
    item->id = static_cast<int>(i);
    list.Insert(item.get());
    items.push_back(std::move(item));
  }
  for (auto _ : state) {
    Item* front = list.PopFront();
    front->key += 1000.0 / 7.0;
    list.Insert(front);
    benchmark::DoNotOptimize(front);
  }
}

}  // namespace

BENCHMARK(BM_SortedList_Reposition)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_SkipList_Reposition)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

BENCHMARK_MAIN();

// Figure 3 (Section 3.2): efficacy of the scheduling heuristic.
//
// Plots the percentage of scheduling decisions where the bounded heuristic
// (examine the first k threads of each of the three queues) picks the same
// thread as the exact minimum-surplus algorithm, for a quad-processor system
// with 100-400 runnable threads.  Paper: >99% accuracy at k=20 even for 400
// runnable threads.

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"

SFS_EXPERIMENT(fig3_heuristic,
               .description = "Figure 3: accuracy of the k-bounded scheduling heuristic",
               .schedulers = {"sfs"}) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;

  reporter.out() << "=== Figure 3: efficacy of the scheduling heuristic ===\n"
                 << "Quad-processor, random weights 1..20, variable 1-200ms quanta.\n"
                 << "Accuracy (%) of the k-bounded heuristic vs the exact algorithm.\n\n";

  const int runnable_counts[] = {100, 200, 300, 400};
  Table table({"k examined", "100 threads", "200 threads", "300 threads", "400 threads"});
  JsonValue rows = JsonValue::Array();
  for (const int k : {1, 2, 5, 10, 20, 40, 60, 80, 100}) {
    std::vector<std::string> row = {Table::Cell(static_cast<std::int64_t>(k))};
    JsonValue entry = JsonValue::Object();
    entry.Set("k", JsonValue(std::int64_t{k}));
    JsonValue accuracies = JsonValue::Object();
    for (const int runnable : runnable_counts) {
      const double accuracy =
          sfs::eval::HeuristicAccuracy(runnable, k, /*cpus=*/4, /*decisions=*/4000,
                                       reporter.seed());
      row.push_back(Table::Cell(accuracy, 2));
      accuracies.Set(std::to_string(runnable), JsonValue(accuracy));
    }
    entry.Set("accuracy_pct_by_runnable", std::move(accuracies));
    rows.Push(std::move(entry));
    table.AddRow(std::move(row));
  }
  table.Print(reporter.out());
  reporter.out() << "\nPaper's claim: examining ~20 threads per queue achieves >99% accuracy\n"
                 << "for up to 400 runnable threads (Section 3.2, Figure 3).\n";
  reporter.Set("rows", std::move(rows));
}

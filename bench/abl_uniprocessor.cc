// Ablation A5: SFS reduces to SFQ on a uniprocessor (Section 2.3).
//
// "Since the thread with the minimum surplus value is also the one with the
// minimum start tag, surplus fair scheduling reduces to start-time fair queuing
// (SFQ) in a uniprocessor system."  This harness replays random workloads
// through both schedulers on one CPU and reports dispatch-sequence agreement.

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/sfq.h"
#include "src/sched/sfs.h"

SFS_EXPERIMENT(abl_uniprocessor,
               .description = "Ablation A5: SFS dispatch decisions equal SFQ on one CPU",
               .schedulers = {"sfs", "sfq"}) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;
  using namespace sfs::sched;

  reporter.out() << "=== Ablation A5: SFS == SFQ on a uniprocessor ===\n"
                 << "Random weights, variable quanta, random block/wake events; dispatch\n"
                 << "decisions compared pairwise over 10,000 scheduling instants per trial.\n\n";

  Table table({"trial", "threads", "decisions", "agreements", "agree %"});
  JsonValue rows = JsonValue::Array();
  std::int64_t total_agreements = 0;
  std::int64_t total_decisions = 0;
  for (int trial = 0; trial < 8; ++trial) {
    sfs::common::Rng rng(reporter.seed() * 1000 + static_cast<std::uint64_t>(trial));
    SchedConfig config;
    config.num_cpus = 1;
    Sfs sfs_sched(config);
    Sfq sfq_sched(config);
    const int threads = static_cast<int>(rng.UniformInt(3, 12));
    for (ThreadId tid = 1; tid <= threads; ++tid) {
      const auto w = static_cast<Weight>(rng.UniformInt(1, 10));
      sfs_sched.AddThread(tid, w);
      sfq_sched.AddThread(tid, w);
    }
    std::int64_t agreements = 0;
    const std::int64_t decisions = 10000;
    for (std::int64_t i = 0; i < decisions; ++i) {
      const ThreadId a = sfs_sched.PickNext(0);
      const ThreadId b = sfq_sched.PickNext(0);
      agreements += (a == b) ? 1 : 0;
      const sfs::Tick q = sfs::Msec(rng.UniformInt(1, 200));
      sfs_sched.Charge(a, q);
      sfq_sched.Charge(b, q);
    }
    total_agreements += agreements;
    total_decisions += decisions;
    table.AddRow({Table::Cell(static_cast<std::int64_t>(trial)),
                  Table::Cell(static_cast<std::int64_t>(threads)), Table::Cell(decisions),
                  Table::Cell(agreements),
                  Table::Cell(100.0 * static_cast<double>(agreements) /
                                  static_cast<double>(decisions),
                              2)});
    JsonValue entry = JsonValue::Object();
    entry.Set("trial", JsonValue(std::int64_t{trial}));
    entry.Set("threads", JsonValue(std::int64_t{threads}));
    entry.Set("decisions", JsonValue(decisions));
    entry.Set("agreements", JsonValue(agreements));
    rows.Push(std::move(entry));
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected: 100% agreement in every trial.\n";
  reporter.Set("rows", std::move(rows));
  reporter.Metric("total_decisions", total_decisions);
  reporter.Metric("total_agreements", total_agreements);
  reporter.Metric("agreement_pct", 100.0 * static_cast<double>(total_agreements) /
                                       static_cast<double>(total_decisions));
}

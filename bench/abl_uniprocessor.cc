// Ablation A5: SFS reduces to SFQ on a uniprocessor (Section 2.3).
//
// "Since the thread with the minimum surplus value is also the one with the
// minimum start tag, surplus fair scheduling reduces to start-time fair queuing
// (SFQ) in a uniprocessor system."  This harness replays random workloads
// through both schedulers on one CPU and reports dispatch-sequence agreement.

#include <iostream>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/sched/sfq.h"
#include "src/sched/sfs.h"

int main() {
  using sfs::common::Table;
  using namespace sfs::sched;

  std::cout << "=== Ablation A5: SFS == SFQ on a uniprocessor ===\n"
            << "Random weights, variable quanta, random block/wake events; dispatch\n"
            << "decisions compared pairwise over 10,000 scheduling instants per trial.\n\n";

  Table table({"trial", "threads", "decisions", "agreements", "agree %"});
  for (int trial = 0; trial < 8; ++trial) {
    sfs::common::Rng rng(9000 + static_cast<std::uint64_t>(trial));
    SchedConfig config;
    config.num_cpus = 1;
    Sfs sfs_sched(config);
    Sfq sfq_sched(config);
    const int threads = static_cast<int>(rng.UniformInt(3, 12));
    for (ThreadId tid = 1; tid <= threads; ++tid) {
      const auto w = static_cast<Weight>(rng.UniformInt(1, 10));
      sfs_sched.AddThread(tid, w);
      sfq_sched.AddThread(tid, w);
    }
    std::int64_t agreements = 0;
    const std::int64_t decisions = 10000;
    for (std::int64_t i = 0; i < decisions; ++i) {
      const ThreadId a = sfs_sched.PickNext(0);
      const ThreadId b = sfq_sched.PickNext(0);
      agreements += (a == b) ? 1 : 0;
      const sfs::Tick q = sfs::Msec(rng.UniformInt(1, 200));
      sfs_sched.Charge(a, q);
      sfq_sched.Charge(b, q);
    }
    table.AddRow({Table::Cell(static_cast<std::int64_t>(trial)),
                  Table::Cell(static_cast<std::int64_t>(threads)), Table::Cell(decisions),
                  Table::Cell(agreements),
                  Table::Cell(100.0 * static_cast<double>(agreements) /
                                  static_cast<double>(decisions),
                              2)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: 100% agreement in every trial.\n";
  return 0;
}

// Ablation A3: cost of the weight readjustment algorithm (Section 2.1).
//
// The paper claims O(p) cost independent of the number of runnable threads t,
// because at most p-1 threads can violate the feasibility constraint and the
// weight-sorted queue lets the scan stop at the first feasible prefix.  Sweep t
// with p fixed (flat) and p with t fixed (linear).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/sched/readjust.h"

namespace {

using sfs::sched::Entity;
using sfs::sched::ReadjustQueue;
using sfs::sched::ThreadId;
using sfs::sched::WeightQueue;

struct Fixture {
  explicit Fixture(int threads, int heavy) {
    entities.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      auto e = std::make_unique<Entity>();
      e->tid = static_cast<ThreadId>(i);
      // `heavy` infeasible candidates at the front of the queue.
      e->weight = i < heavy ? 100000.0 + i : 1.0 + (i % 5);
      e->phi = e->weight;
      total += e->weight;
      queue.Insert(e.get());
      entities.push_back(std::move(e));
    }
  }
  ~Fixture() { queue.Clear(); }

  std::vector<std::unique_ptr<Entity>> entities;
  WeightQueue queue;
  sfs::sched::ReadjustState state;
  double total = 0.0;
};

// Sweep t (runnable threads) with p=4: cost should stay flat.
void BM_Readjust_VsThreads(benchmark::State& state) {
  Fixture fx(static_cast<int>(state.range(0)), /*heavy=*/2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReadjustQueue(fx.queue, fx.total, 4, fx.state));
  }
}

// Sweep p (processors) with t=1024: cost grows with the number of caps.
void BM_Readjust_VsCpus(benchmark::State& state) {
  const int cpus = static_cast<int>(state.range(0));
  Fixture fx(1024, /*heavy=*/cpus - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReadjustQueue(fx.queue, fx.total, cpus, fx.state));
  }
}

}  // namespace

BENCHMARK(BM_Readjust_VsThreads)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Readjust_VsCpus)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

BENCHMARK_MAIN();

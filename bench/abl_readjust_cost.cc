// Ablation A3: cost of the weight readjustment algorithm (Section 2.1).
//
// The paper claims O(p) cost independent of the number of runnable threads t,
// because at most p-1 threads can violate the feasibility constraint and the
// weight-sorted queue lets the scan stop at the first feasible prefix.  Sweep t
// with p fixed (flat) and p with t fixed (linear).  Wall-clock; JSON output
// only under --timing.

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/readjust.h"

namespace {

using sfs::harness::DoNotOptimize;
using sfs::sched::Entity;
using sfs::sched::ReadjustQueue;
using sfs::sched::ThreadId;
using sfs::sched::WeightQueue;

struct Fixture {
  explicit Fixture(int threads, int heavy) {
    entities.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      auto e = std::make_unique<Entity>();
      e->tid = static_cast<ThreadId>(i);
      // `heavy` infeasible candidates at the front of the queue.
      e->weight() = i < heavy ? 100000.0 + i : 1.0 + (i % 5);
      e->phi() = e->weight();
      total += e->weight();
      queue.Insert(e.get());
      entities.push_back(std::move(e));
    }
  }
  ~Fixture() { queue.Clear(); }

  std::vector<std::unique_ptr<Entity>> entities;
  WeightQueue queue;
  sfs::sched::ReadjustState state;
  double total = 0.0;
};

}  // namespace

SFS_EXPERIMENT(abl_readjust_cost,
               .description = "Ablation A3: readjustment cost is O(p), flat in t",
               .schedulers = {"sfs"},
               .repetitions = 1, .warmup = 1, .deterministic = false) {
  using sfs::common::Table;

  reporter.out() << "=== Ablation A3: weight readjustment cost ===\n"
                 << "One call = ReadjustQueue over the weight-sorted queue; ns per call.\n\n";

  const int thread_counts[] = {16, 64, 256, 1024, 4096};
  const int cpu_counts[] = {2, 4, 8, 16, 32, 64};

  // Sweep t (runnable threads) with p=4: cost should stay flat.
  Table vs_threads({"threads (p=4)", "ns/readjust"});
  for (const int threads : thread_counts) {
    Fixture fx(threads, /*heavy=*/2);
    const double ns = sfs::harness::MeasureNsPerOp(
        [&] { DoNotOptimize(ReadjustQueue(fx.queue, fx.total, 4, fx.state)); });
    vs_threads.AddRow({Table::Cell(static_cast<std::int64_t>(threads)), Table::Cell(ns, 1)});
    reporter.Timing("vs_threads/" + std::to_string(threads), ns);
  }
  vs_threads.Print(reporter.out());

  // Sweep p (processors) with t=1024: cost grows with the number of caps.
  Table vs_cpus({"cpus (t=1024)", "ns/readjust"});
  for (const int cpus : cpu_counts) {
    Fixture fx(1024, /*heavy=*/cpus - 1);
    const double ns = sfs::harness::MeasureNsPerOp(
        [&] { DoNotOptimize(ReadjustQueue(fx.queue, fx.total, cpus, fx.state)); });
    vs_cpus.AddRow({Table::Cell(static_cast<std::int64_t>(cpus)), Table::Cell(ns, 1)});
    reporter.Timing("vs_cpus/" + std::to_string(cpus), ns);
  }
  vs_cpus.Print(reporter.out());

  reporter.out() << "\nExpected: flat in t (left table), linear in p (right table) — the\n"
                 << "paper's O(p) claim for the readjustment scan.\n";
  reporter.Metric("thread_counts_measured",
                  static_cast<std::int64_t>(std::size(thread_counts)));
  reporter.Metric("cpu_counts_measured", static_cast<std::int64_t>(std::size(cpu_counts)));
}

// Ablation A9: run-queue backend scaling (Section 3.2).
//
// Sweeps 10 to 10,000 runnable threads through full SFS (engine-driven, exact
// algorithm) on both run-queue backends — the paper-faithful sorted list and
// the indexed skip list — and records, per (size, backend):
//   * a fingerprint of the complete dispatch trace, decisions, deviation from
//     the GMS fluid allocation, and the incremental-refresh counters — all
//     pure functions of --seed, and asserted *identical across backends*
//     (the backend changes constants, never decisions);
//   * decisions per second (wall clock; JSON only under --timing), where the
//     O(log t) skip list overtakes the O(t) list scans as t grows.

#include <algorithm>
#include <string>

#include "src/common/assert.h"
#include "src/common/fingerprint.h"
#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/factory.h"

namespace {

}  // namespace

SFS_EXPERIMENT(abl_scaling_backends,
               .description = "Ablation A9: run-queue backend scaling, sorted list vs skip list",
               .schedulers = {"sfs"}) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;
  using sfs::sched::QueueBackend;

  reporter.out() << "=== Ablation A9: run-queue backend scaling ===\n"
                 << "SFS, 2 CPUs, q=200ms, random weights 1..20; schedules must be identical\n"
                 << "across backends (same seed), only the decision cost differs.\n\n";

  const int sizes[] = {10, 100, 1000, 10000};

  Table table({"threads", "decisions", "GMS dev (ms)", "repositions", "identical",
               "sorted (ns/dec)", "skip (ns/dec)"});
  JsonValue rows = JsonValue::Array();
  bool all_identical = true;
  for (const int threads : sizes) {
    // Scale the horizon so every thread runs and the virtual time advances:
    // otherwise, with fewer decisions than threads, the minimum start tag
    // stays put and the incremental surplus refresh never re-fires, leaving
    // the refresh path unmeasured at the largest sizes.
    const sfs::Tick horizon =
        std::max(sfs::Sec(300), sfs::Tick{threads} * sfs::kDefaultQuantum * 5 / (4 * 2));
    const auto sorted = sfs::eval::RunScaling(QueueBackend::kSortedList, threads, /*cpus=*/2,
                                              horizon, reporter.seed());
    const auto skip = sfs::eval::RunScaling(QueueBackend::kSkipList, threads, /*cpus=*/2,
                                            horizon, reporter.seed());

    const bool identical = sorted.schedule_fingerprint == skip.schedule_fingerprint &&
                           sorted.decisions == skip.decisions &&
                           sorted.full_refreshes == skip.full_refreshes &&
                           sorted.refresh_repositions == skip.refresh_repositions &&
                           sorted.gms_deviation_ms == skip.gms_deviation_ms;
    all_identical = all_identical && identical;

    table.AddRow({Table::Cell(std::int64_t{threads}), Table::Cell(sorted.decisions),
                  Table::Cell(sorted.gms_deviation_ms, 1), Table::Cell(sorted.refresh_repositions),
                  identical ? "yes" : "NO",
                  Table::Cell(sorted.wall_ns_per_decision, 0),
                  Table::Cell(skip.wall_ns_per_decision, 0)});

    for (const auto* run : {&sorted, &skip}) {
      const std::string backend_name(sfs::sched::QueueBackendName(
          run == &sorted ? QueueBackend::kSortedList : QueueBackend::kSkipList));
      JsonValue entry = JsonValue::Object();
      entry.Set("threads", JsonValue(std::int64_t{threads}));
      entry.Set("backend", JsonValue(backend_name));
      entry.Set("decisions", JsonValue(run->decisions));
      entry.Set("schedule_fingerprint", JsonValue(sfs::common::FingerprintHex(run->schedule_fingerprint)));
      entry.Set("gms_deviation_ms", JsonValue(run->gms_deviation_ms));
      entry.Set("full_refreshes", JsonValue(run->full_refreshes));
      entry.Set("refresh_repositions", JsonValue(run->refresh_repositions));
      rows.Push(std::move(entry));
      reporter.Timing(backend_name + "/" + std::to_string(threads), run->wall_ns_per_decision);
    }

    // The backend contract: byte-identical schedule-derived metrics.
    SFS_CHECK(identical);
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected: identical schedules at every size; the sorted list wins on\n"
                 << "decision cost at small t (cache-friendly scans), the skip list at large t\n"
                 << "(O(log t) insert/reposition; Section 3.2's binary-search remark).\n";
  reporter.Set("rows", std::move(rows));
  reporter.Metric("backends_identical", all_identical ? std::int64_t{1} : std::int64_t{0});
}

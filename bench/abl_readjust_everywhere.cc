// Ablation A4: grafting the readjustment algorithm onto other GPS schedulers.
//
// Section 2.1: "Our weight readjustment algorithm can be employed with most
// existing GPS-based scheduling algorithms to deal with the problem of
// infeasible weights."  This harness runs the Example 1 starvation scenario and
// a GMS-deviation audit for SFQ, stride, WFQ and BVT with readjustment off/on.

#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"

SFS_EXPERIMENT(abl_readjust_everywhere,
               .description = "Ablation A4: readjustment grafted onto SFQ/stride/WFQ/BVT",
               .schedulers = {"sfq", "stride", "wfq", "bvt", "sfs"}) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;
  using sfs::sched::SchedKind;

  reporter.out() << "=== Ablation A4: weight readjustment grafted onto GPS baselines ===\n"
                 << "Scenario: Example 1 (T1 starvation, ms) and deviation from the GMS fluid\n"
                 << "reference for the same late-arrival workload (w=1 and w=50 from t=0,\n"
                 << "w=1 arriving at t=15s; 2 CPUs, 60s horizon).\n\n";

  Table table({"scheduler", "readjust", "T1 starvation (ms)", "GMS deviation (ms)"});
  JsonValue rows = JsonValue::Array();
  const std::vector<sfs::eval::TimedArrival> arrivals = {
      {0, 1.0}, {0, 50.0}, {sfs::Sec(15), 1.0}};
  struct Row {
    SchedKind kind;
    bool readjust;
  };
  for (const Row row : {Row{SchedKind::kSfq, false}, Row{SchedKind::kSfq, true},
                        Row{SchedKind::kStride, false}, Row{SchedKind::kStride, true},
                        Row{SchedKind::kWfq, false}, Row{SchedKind::kWfq, true},
                        Row{SchedKind::kBvt, false}, Row{SchedKind::kBvt, true},
                        Row{SchedKind::kSfs, true}}) {
    const auto ex1 = sfs::eval::RunExample1(row.kind, row.readjust);
    const double deviation_ms =
        sfs::eval::GmsDeviationForArrivals(row.kind, arrivals, 2, sfs::Sec(60),
                                           sfs::kDefaultQuantum, -1, row.readjust) /
        1000.0;
    table.AddRow({std::string(ex1.series.scheduler_name), row.readjust ? "yes" : "no",
                  Table::Cell(ex1.t1_starvation / sfs::kTicksPerMsec),
                  Table::Cell(deviation_ms, 1)});
    JsonValue entry = JsonValue::Object();
    entry.Set("scheduler", JsonValue(ex1.series.scheduler_name));
    entry.Set("readjust", JsonValue(row.readjust));
    entry.Set("t1_starvation_ms", JsonValue(ex1.t1_starvation / sfs::kTicksPerMsec));
    entry.Set("gms_deviation_ms", JsonValue(deviation_ms));
    rows.Push(std::move(entry));
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected: without readjustment every GPS baseline starves T1 for "
                    "~900ms\nand diverges from GMS by seconds; with readjustment both collapse "
                    "to a\nfew quanta.  SFS (always readjusted) matches the repaired "
                    "baselines.\n";
  reporter.Set("rows", std::move(rows));
}

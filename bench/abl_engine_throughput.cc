// Ablation A12: engine event-loop throughput, timing wheel vs binary heap.
//
// Sweeps t mostly-blocked Interact sleepers (t in {100, 1k, 10k}) across
// p in {2, 16, 64} processors under SFS, once per event-queue backend
// (EngineConfig::event_queue).  Every blocked thread holds one pending wakeup,
// so the event queue scales with t while the run queues stay small — the
// regime where the O(1) timing wheel beats the O(log t) heap and its
// cache-hostile percolations.  Per (t, p, backend) cell the experiment
// records the event count, dispatch decisions and two FNV-1a trace
// fingerprints — all pure functions of --seed and CHECK-asserted *identical*
// across backends (the queue changes constants, never the schedule) — plus
// events/sec and ns/event (wall clock; JSON only under --timing).  The wheel
// runs twice: batched (EngineConfig::batch_drain, the production default,
// draining each tick's slot FIFO in one pass) and unbatched (one
// NextTime()/PopFront() round trip per event), asserted schedule-identical.
//
// This experiment is the repo's recorded engine-performance baseline:
// BENCH_engine.json at the repo root is its `--timing --repeat 5` output.
//
// SFS_ENGINE_THROUGHPUT_MAX_THREADS caps the thread axis (CI smoke runs a
// reduced matrix); unset runs the full sweep.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/assert.h"
#include "src/common/fingerprint.h"
#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/obs/metrics.h"
#include "src/sim/engine.h"

namespace {

int MaxThreads() {
  if (const char* env = std::getenv("SFS_ENGINE_THROUGHPUT_MAX_THREADS"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  return 10000;
}

}  // namespace

SFS_EXPERIMENT(abl_engine_throughput,
               .description =
                   "Ablation A12: engine event throughput, timing wheel vs priority queue",
               .schedulers = {"sfs"},
               .repetitions = 1,
               .warmup = 0) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;
  using sfs::sim::EventQueueKind;

  reporter.out() << "=== Ablation A12: engine event-loop throughput ===\n"
                 << "SFS, t mostly-blocked sleepers + 2 hogs, 30s horizon; schedules must be\n"
                 << "identical across event-queue backends (same seed), only the cost per\n"
                 << "event differs.\n\n";

  const int max_threads = MaxThreads();
  const int thread_sizes[] = {100, 1000, 10000};
  const int cpu_sizes[] = {2, 16, 64};
  const sfs::Tick horizon = sfs::Sec(30);

  Table table({"threads", "cpus", "events", "decisions", "identical", "heap (ns/ev)",
               "unbatched (ns/ev)", "wheel (ns/ev)", "speedup"});
  JsonValue rows = JsonValue::Array();
  bool all_identical = true;
  for (const int threads : thread_sizes) {
    if (threads > max_threads) {
      reporter.out() << "(threads=" << threads
                     << " skipped: SFS_ENGINE_THROUGHPUT_MAX_THREADS=" << max_threads << ")\n";
      continue;
    }
    for (const int cpus : cpu_sizes) {
      const auto heap = sfs::eval::RunEngineThroughput(EventQueueKind::kPriorityQueue, threads,
                                                       cpus, horizon, reporter.seed());
      // The wheel run (the production configuration) also collects the
      // engine's sim-time histograms; they are pure functions of --seed, so
      // they live in the deterministic section of the JSON.
      sfs::obs::MetricsRegistry metrics(/*num_shards=*/1);
      const auto wheel = sfs::eval::RunEngineThroughput(EventQueueKind::kTimingWheel, threads,
                                                        cpus, horizon, reporter.seed(),
                                                        {.metrics = &metrics});
      // Same wheel, one NextTime()/PopFront() round trip per event instead of
      // the batched per-tick drain: isolates what the batch path buys and
      // proves EngineConfig::batch_drain never alters the schedule.
      const auto unbatched = sfs::eval::RunEngineThroughput(
          EventQueueKind::kTimingWheel, threads, cpus, horizon, reporter.seed(), {},
          /*batch_drain=*/false);

      const bool identical = heap.schedule_fingerprint == wheel.schedule_fingerprint &&
                             heap.lifecycle_fingerprint == wheel.lifecycle_fingerprint &&
                             heap.events == wheel.events && heap.decisions == wheel.decisions &&
                             heap.preemptions == wheel.preemptions &&
                             unbatched.schedule_fingerprint == wheel.schedule_fingerprint &&
                             unbatched.lifecycle_fingerprint == wheel.lifecycle_fingerprint &&
                             unbatched.events == wheel.events &&
                             unbatched.decisions == wheel.decisions &&
                             unbatched.preemptions == wheel.preemptions;
      all_identical = all_identical && identical;

      const double heap_ns = heap.events > 0 ? heap.wall_ns / static_cast<double>(heap.events)
                                             : 0.0;
      const double wheel_ns =
          wheel.events > 0 ? wheel.wall_ns / static_cast<double>(wheel.events) : 0.0;
      const double unbatched_ns =
          unbatched.events > 0 ? unbatched.wall_ns / static_cast<double>(unbatched.events)
                               : 0.0;
      table.AddRow({Table::Cell(std::int64_t{threads}), Table::Cell(std::int64_t{cpus}),
                    Table::Cell(wheel.events), Table::Cell(wheel.decisions),
                    identical ? "yes" : "NO", Table::Cell(heap_ns, 0),
                    Table::Cell(unbatched_ns, 0), Table::Cell(wheel_ns, 0),
                    Table::Cell(wheel_ns > 0.0 ? heap_ns / wheel_ns : 0.0, 2)});

      for (const auto* run : {&heap, &wheel, &unbatched}) {
        const char* queue_name = run == &heap        ? "priority_queue"
                                 : run == &wheel     ? "timing_wheel"
                                                     : "timing_wheel_unbatched";
        JsonValue entry = JsonValue::Object();
        entry.Set("threads", JsonValue(std::int64_t{threads}));
        entry.Set("cpus", JsonValue(std::int64_t{cpus}));
        entry.Set("event_queue", JsonValue(queue_name));
        entry.Set("events", JsonValue(run->events));
        entry.Set("decisions", JsonValue(run->decisions));
        entry.Set("preemptions", JsonValue(run->preemptions));
        entry.Set("schedule_fingerprint", JsonValue(sfs::common::FingerprintHex(run->schedule_fingerprint)));
        entry.Set("lifecycle_fingerprint", JsonValue(sfs::common::FingerprintHex(run->lifecycle_fingerprint)));
        rows.Push(std::move(entry));
        const std::string cell = std::string(queue_name) + "/t" + std::to_string(threads) +
                                 "_p" + std::to_string(cpus);
        reporter.Throughput(cell, run->events, run->wall_ns);
      }
      const std::string hist_prefix =
          "hist/t" + std::to_string(threads) + "_p" + std::to_string(cpus) + "/";
      reporter.Histogram(hist_prefix + "quantum_ticks",
                         metrics.GetHistogram("sim/quantum_ticks").Snapshot());
      reporter.Histogram(hist_prefix + "run_interval_ticks",
                         metrics.GetHistogram("sim/run_interval_ticks").Snapshot());

      // The backend contract: byte-identical schedule-derived results.
      SFS_CHECK(identical);
    }
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected: identical schedules in every cell, and the wheel ahead of the\n"
                 << "heap with the gap widening in t (heap percolation depth and cache\n"
                 << "footprint grow with the pending-event count; the wheel stays O(1)).\n"
                 << "Context for absolute numbers: the pre-rebuild engine (hash-map task\n"
                 << "lookup, per-wakeup scratch allocation, same heap) measured ~1.4x slower\n"
                 << "than the wheel rows at t=10k on this workload — see DESIGN.md.\n";
  reporter.Set("rows", std::move(rows));
  reporter.Metric("event_queues_identical", all_identical ? std::int64_t{1} : std::int64_t{0});
}

// Ablation A12: engine event-loop throughput, timing wheel vs binary heap.
//
// Sweeps t mostly-blocked Interact sleepers (t in {100, 1k, 10k}) across
// p in {2, 16, 64} processors under SFS, once per event-queue backend
// (EngineConfig::event_queue).  Every blocked thread holds one pending wakeup,
// so the event queue scales with t while the run queues stay small — the
// regime where the O(1) timing wheel beats the O(log t) heap and its
// cache-hostile percolations.  Per (t, p, backend) cell the experiment
// records the event count, dispatch decisions and two FNV-1a trace
// fingerprints — all pure functions of --seed and CHECK-asserted *identical*
// across backends (the queue changes constants, never the schedule) — plus
// events/sec and ns/event (wall clock; JSON only under --timing).  The wheel
// runs twice: batched (EngineConfig::batch_drain, the production default,
// draining each tick's slot FIFO in one pass) and unbatched (one
// NextTime()/PopFront() round trip per event), asserted schedule-identical.
//
// This experiment is the repo's recorded engine-performance baseline:
// BENCH_engine.json at the repo root is its `--timing --repeat 5` output.
//
// SFS_ENGINE_THROUGHPUT_MAX_THREADS caps the thread axis (CI smoke runs a
// reduced matrix); unset runs the full sweep.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/assert.h"
#include "src/common/fingerprint.h"
#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/obs/metrics.h"
#include "src/sim/engine.h"

namespace {

int MaxThreads() {
  if (const char* env = std::getenv("SFS_ENGINE_THROUGHPUT_MAX_THREADS"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  return 10000;
}

}  // namespace

SFS_EXPERIMENT(abl_engine_throughput,
               .description =
                   "Ablation A12: engine event throughput, timing wheel vs priority queue",
               .schedulers = {"sfs"},
               .repetitions = 1,
               .warmup = 0) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;
  using sfs::sim::EventQueueKind;

  reporter.out() << "=== Ablation A12: engine event-loop throughput ===\n"
                 << "SFS, t mostly-blocked sleepers + 2 hogs, 30s horizon; schedules must be\n"
                 << "identical across event-queue backends (same seed), only the cost per\n"
                 << "event differs.\n\n";

  const int max_threads = MaxThreads();
  const int thread_sizes[] = {100, 1000, 10000};
  const int cpu_sizes[] = {2, 16, 64};
  const sfs::Tick horizon = sfs::Sec(30);

  Table table({"threads", "cpus", "events", "decisions", "identical", "heap (ns/ev)",
               "unbatched (ns/ev)", "wheel (ns/ev)", "speedup"});
  JsonValue rows = JsonValue::Array();
  bool all_identical = true;
  for (const int threads : thread_sizes) {
    if (threads > max_threads) {
      reporter.out() << "(threads=" << threads
                     << " skipped: SFS_ENGINE_THROUGHPUT_MAX_THREADS=" << max_threads << ")\n";
      continue;
    }
    for (const int cpus : cpu_sizes) {
      const auto heap = sfs::eval::RunEngineThroughput(EventQueueKind::kPriorityQueue, threads,
                                                       cpus, horizon, reporter.seed());
      // The wheel run (the production configuration) also collects the
      // engine's sim-time histograms; they are pure functions of --seed, so
      // they live in the deterministic section of the JSON.
      sfs::obs::MetricsRegistry metrics(/*num_shards=*/1);
      const auto wheel = sfs::eval::RunEngineThroughput(EventQueueKind::kTimingWheel, threads,
                                                        cpus, horizon, reporter.seed(),
                                                        {.metrics = &metrics});
      // Same wheel, one NextTime()/PopFront() round trip per event instead of
      // the batched per-tick drain: isolates what the batch path buys and
      // proves EngineConfig::batch_drain never alters the schedule.
      const auto unbatched = sfs::eval::RunEngineThroughput(
          EventQueueKind::kTimingWheel, threads, cpus, horizon, reporter.seed(), {},
          /*batch_drain=*/false);

      const bool identical = heap.schedule_fingerprint == wheel.schedule_fingerprint &&
                             heap.lifecycle_fingerprint == wheel.lifecycle_fingerprint &&
                             heap.events == wheel.events && heap.decisions == wheel.decisions &&
                             heap.preemptions == wheel.preemptions &&
                             unbatched.schedule_fingerprint == wheel.schedule_fingerprint &&
                             unbatched.lifecycle_fingerprint == wheel.lifecycle_fingerprint &&
                             unbatched.events == wheel.events &&
                             unbatched.decisions == wheel.decisions &&
                             unbatched.preemptions == wheel.preemptions;
      all_identical = all_identical && identical;

      const double heap_ns = heap.events > 0 ? heap.wall_ns / static_cast<double>(heap.events)
                                             : 0.0;
      const double wheel_ns =
          wheel.events > 0 ? wheel.wall_ns / static_cast<double>(wheel.events) : 0.0;
      const double unbatched_ns =
          unbatched.events > 0 ? unbatched.wall_ns / static_cast<double>(unbatched.events)
                               : 0.0;
      table.AddRow({Table::Cell(std::int64_t{threads}), Table::Cell(std::int64_t{cpus}),
                    Table::Cell(wheel.events), Table::Cell(wheel.decisions),
                    identical ? "yes" : "NO", Table::Cell(heap_ns, 0),
                    Table::Cell(unbatched_ns, 0), Table::Cell(wheel_ns, 0),
                    Table::Cell(wheel_ns > 0.0 ? heap_ns / wheel_ns : 0.0, 2)});

      for (const auto* run : {&heap, &wheel, &unbatched}) {
        const char* queue_name = run == &heap        ? "priority_queue"
                                 : run == &wheel     ? "timing_wheel"
                                                     : "timing_wheel_unbatched";
        JsonValue entry = JsonValue::Object();
        entry.Set("threads", JsonValue(std::int64_t{threads}));
        entry.Set("cpus", JsonValue(std::int64_t{cpus}));
        entry.Set("event_queue", JsonValue(queue_name));
        entry.Set("events", JsonValue(run->events));
        entry.Set("decisions", JsonValue(run->decisions));
        entry.Set("preemptions", JsonValue(run->preemptions));
        entry.Set("schedule_fingerprint", JsonValue(sfs::common::FingerprintHex(run->schedule_fingerprint)));
        entry.Set("lifecycle_fingerprint", JsonValue(sfs::common::FingerprintHex(run->lifecycle_fingerprint)));
        rows.Push(std::move(entry));
        const std::string cell = std::string(queue_name) + "/t" + std::to_string(threads) +
                                 "_p" + std::to_string(cpus);
        reporter.Throughput(cell, run->events, run->wall_ns);
      }
      const std::string hist_prefix =
          "hist/t" + std::to_string(threads) + "_p" + std::to_string(cpus) + "/";
      reporter.Histogram(hist_prefix + "quantum_ticks",
                         metrics.GetHistogram("sim/quantum_ticks").Snapshot());
      reporter.Histogram(hist_prefix + "run_interval_ticks",
                         metrics.GetHistogram("sim/run_interval_ticks").Snapshot());

      // The backend contract: byte-identical schedule-derived results.
      SFS_CHECK(identical);
    }
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected: identical schedules in every cell, and the wheel ahead of the\n"
                 << "heap with the gap widening in t (heap percolation depth and cache\n"
                 << "footprint grow with the pending-event count; the wheel stays O(1)).\n"
                 << "Context for absolute numbers: the pre-rebuild engine (hash-map task\n"
                 << "lookup, per-wakeup scratch allocation, same heap) measured ~1.4x slower\n"
                 << "than the wheel rows at t=10k on this workload — see DESIGN.md.\n";
  reporter.Set("rows", std::move(rows));
  reporter.Metric("event_queues_identical", all_identical ? std::int64_t{1} : std::int64_t{0});
}

// Ablation A13 (DESIGN.md §10): the same sweep under sim::ParallelEngine over
// a *partitioned* sharded-SFS (stealing/rebalancing/coupling off, tasks
// home-hinted tid % p), where the parallel engine is exact: each cell runs
// the serial sim::Engine oracle and the parallel engine with W = min(4, p)
// workers over the identical workload and CHECK-asserts byte-identical
// per-group fingerprints.  Two big cells extend the axes — t=100k x p=64
// (oracle + parallel) and t=1M x p=1024 (parallel-only, shorter horizon) —
// so the engine's headline scale claim is measured, not asserted.  Both are
// gated behind the same SFS_ENGINE_THROUGHPUT_MAX_THREADS cap as A12's
// thread axis.  Wall-clock speedup depends on host cores; per-group
// determinism does not, so the JSON document is rerun-comparable anywhere.
SFS_EXPERIMENT(abl_parallel_engine,
               .description =
                   "Ablation A13: parallel sharded engine vs serial oracle, per-group exact",
               .schedulers = {"sharded-sfs"},
               .repetitions = 1,
               .warmup = 0) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;

  const int max_threads = MaxThreads();
  const int thread_sizes[] = {100, 1000, 10000};
  const int cpu_sizes[] = {2, 16, 64};
  const sfs::Tick horizon = sfs::Sec(30);

  reporter.out() << "=== Ablation A13: parallel engine, partitioned sharded-SFS, W = min(4, p) ===\n"
                 << "Per-group schedule/lifecycle fingerprints must match the serial oracle\n"
                 << "byte-for-byte; 'mailed' counts cross-worker mailbox wakeups (0 when\n"
                 << "partitioned).  Speedup is wall-clock and host-core dependent.\n\n";

  struct ParCell {
    int threads;
    int cpus;
    sfs::Tick horizon;
    bool oracle;  // run the serial oracle and assert per-group identity
  };
  std::vector<ParCell> par_cells;
  for (const int threads : thread_sizes) {
    for (const int cpus : cpu_sizes) {
      par_cells.push_back({threads, cpus, horizon, true});
    }
  }
  par_cells.push_back({100000, 64, sfs::Sec(10), true});
  par_cells.push_back({1000000, 1024, sfs::Sec(5), false});

  Table par_table({"threads", "cpus", "W", "events", "epochs", "mailed", "identical",
                   "serial (ns/ev)", "parallel (ns/ev)", "speedup"});
  JsonValue par_rows = JsonValue::Array();
  bool all_groups_identical = true;
  for (const ParCell& cell : par_cells) {
    if (cell.threads > max_threads) {
      reporter.out() << "(parallel t=" << cell.threads
                     << " skipped: SFS_ENGINE_THROUGHPUT_MAX_THREADS=" << max_threads << ")\n";
      continue;
    }
    const int workers = std::min(4, cell.cpus);
    const auto par = sfs::eval::RunParallelEngineThroughput(
        workers, workers, cell.threads, cell.cpus, cell.horizon, reporter.seed());

    const std::string suffix =
        "/t" + std::to_string(cell.threads) + "_p" + std::to_string(cell.cpus);
    auto add_row = [&](const char* engine_name, const sfs::eval::ParallelEngineThroughputResult& r) {
      JsonValue entry = JsonValue::Object();
      entry.Set("threads", JsonValue(std::int64_t{cell.threads}));
      entry.Set("cpus", JsonValue(std::int64_t{cell.cpus}));
      entry.Set("workers", JsonValue(std::int64_t{workers}));
      entry.Set("engine", JsonValue(engine_name));
      entry.Set("events", JsonValue(r.events));
      entry.Set("decisions", JsonValue(r.decisions));
      entry.Set("preemptions", JsonValue(r.preemptions));
      entry.Set("mailed_wakeups", JsonValue(r.mailed_wakeups));
      entry.Set("epochs", JsonValue(r.epochs));
      // One combined fingerprint per stream: groups mixed in group order, so
      // rerun comparisons need a single stable hex string per cell.
      sfs::common::Fnv1a sched_fp;
      for (const auto fp : r.group_schedule_fingerprints) {
        sched_fp.Mix(fp);
      }
      sfs::common::Fnv1a life_fp;
      for (const auto fp : r.group_lifecycle_fingerprints) {
        life_fp.Mix(fp);
      }
      entry.Set("schedule_fingerprint", JsonValue(sfs::common::FingerprintHex(sched_fp.value())));
      entry.Set("lifecycle_fingerprint", JsonValue(sfs::common::FingerprintHex(life_fp.value())));
      par_rows.Push(std::move(entry));
      reporter.Throughput(std::string(engine_name) + suffix, r.events, r.wall_ns);
    };

    bool identical = true;
    double serial_ns = 0.0;
    if (cell.oracle) {
      const auto oracle = sfs::eval::RunParallelEngineThroughput(
          /*workers=*/0, workers, cell.threads, cell.cpus, cell.horizon, reporter.seed());
      identical = oracle.group_schedule_fingerprints == par.group_schedule_fingerprints &&
                  oracle.group_lifecycle_fingerprints == par.group_lifecycle_fingerprints &&
                  oracle.events == par.events && oracle.decisions == par.decisions &&
                  oracle.preemptions == par.preemptions;
      all_groups_identical = all_groups_identical && identical;
      serial_ns =
          oracle.events > 0 ? oracle.wall_ns / static_cast<double>(oracle.events) : 0.0;
      add_row("serial_sharded", oracle);
    }
    const double par_ns =
        par.events > 0 ? par.wall_ns / static_cast<double>(par.events) : 0.0;
    add_row(("parallel_w" + std::to_string(workers)).c_str(), par);

    par_table.AddRow({Table::Cell(std::int64_t{cell.threads}), Table::Cell(std::int64_t{cell.cpus}),
                      Table::Cell(std::int64_t{workers}), Table::Cell(par.events),
                      Table::Cell(par.epochs), Table::Cell(par.mailed_wakeups),
                      cell.oracle ? (identical ? "yes" : "NO") : "n/a",
                      Table::Cell(serial_ns, 0), Table::Cell(par_ns, 0),
                      Table::Cell(par_ns > 0.0 && serial_ns > 0.0 ? serial_ns / par_ns : 0.0, 2)});

    // The exactness contract: partitioned parallel runs reproduce the serial
    // oracle's per-group schedules byte-for-byte, at any worker count.
    SFS_CHECK(identical);
  }
  par_table.Print(reporter.out());
  reporter.out() << "\nExpected: 'identical' in every oracle cell regardless of host cores.\n"
                 << "Speedup > 1 requires real cores for the workers (single-core hosts pay\n"
                 << "the epoch-barrier and locking overhead with no parallelism to show for\n"
                 << "it; that overhead is the honest cost of the machinery and shrinks as t\n"
                 << "grows and barrier crossings amortize over more per-epoch events).\n";
  reporter.Set("parallel_rows", std::move(par_rows));
  reporter.Metric("parallel_groups_identical",
                  all_groups_identical ? std::int64_t{1} : std::int64_t{0});
}

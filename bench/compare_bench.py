#!/usr/bin/env python3
"""Perf-regression gate over sfs_bench JSON documents.

Diffs a fresh `sfs_bench --filter abl_engine_throughput --timing --repeat N
--json candidate.json` run against the checked-in baseline (BENCH_engine.json
at the repo root) and fails when any cell's best-of-reps ns/event regresses by
more than --tolerance (default 10%).

A "cell" is one timing key of the form `<backend>/t<threads>_p<cpus>/
ns_per_event`; the best (minimum) value across repetitions is compared, which
discards scheduler-noise outliers the same way the recorded baselines do.

Exit codes: 0 ok, 1 regression past tolerance, 2 structural mismatch (missing
file, missing cells, no timing data — e.g. the candidate was run without
--timing).  The full per-cell table is printed in every case, including cells
present only in the candidate (new configs: reported as "new", gated once the
recorded baseline contains them) and cells missing from the candidate.

`--filter REGEX` restricts the comparison to cells whose name matches REGEX
(re.search, so unanchored), applied to BOTH documents symmetrically: a
baseline cell excluded by the filter is not reported missing, and a filtered
candidate cell is neither gated nor appended to the trajectory.  Use it when
the candidate was produced under a reduced matrix (CI smoke runs with
SFS_ENGINE_THROUGHPUT_MAX_THREADS set skip the big parallel cells):

    bench/compare_bench.py --baseline BENCH_engine.json --candidate smoke.json \
        --filter '^(priority_queue|timing_wheel)'

Optionally appends the candidate's per-cell numbers to the perf trajectory
(BENCH_trajectory.json, a JSON array; one entry per perf-relevant PR):

    bench/compare_bench.py --baseline BENCH_engine.json --candidate fresh.json \
        --append-trajectory BENCH_trajectory.json --label pr6-obs-layer
"""

import argparse
import json
import re
import sys


def load_cells(path):
    """Best (min) ns/event per cell across all runs in an sfs_bench doc."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"compare_bench: cannot read {path}: {err}")
    cells = {}
    for experiment in doc.get("experiments", []):
        for run in experiment.get("runs", []):
            for key, value in run.get("timing", {}).items():
                if key.endswith("/ns_per_event"):
                    cell = key[: -len("/ns_per_event")]
                    cells[cell] = min(cells.get(cell, float("inf")), value)
    return cells


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON (BENCH_engine.json)")
    parser.add_argument("--candidate", required=True,
                        help="fresh --timing run to gate")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max allowed per-cell regression (0.10 = 10%%)")
    parser.add_argument("--filter", metavar="REGEX",
                        help="only compare cells whose name matches REGEX "
                             "(unanchored; applied to baseline and candidate "
                             "alike)")
    parser.add_argument("--append-trajectory", metavar="PATH",
                        help="append the candidate's cells to this JSON array")
    parser.add_argument("--label",
                        help="trajectory entry label (required with "
                             "--append-trajectory)")
    args = parser.parse_args()

    baseline = load_cells(args.baseline)
    candidate = load_cells(args.candidate)
    if not baseline:
        print(f"compare_bench: no ns_per_event cells in {args.baseline}")
        return 2
    if not candidate:
        print(f"compare_bench: no ns_per_event cells in {args.candidate} "
              "(was it run with --timing?)")
        return 2
    if args.filter:
        try:
            pattern = re.compile(args.filter)
        except re.error as err:
            print(f"compare_bench: bad --filter regex: {err}")
            return 2
        baseline = {c: v for c, v in baseline.items() if pattern.search(c)}
        candidate = {c: v for c, v in candidate.items() if pattern.search(c)}
        if not baseline and not candidate:
            print(f"compare_bench: --filter {args.filter!r} matches no cells")
            return 2
    missing = sorted(set(baseline) - set(candidate))
    new_cells = sorted(set(candidate) - set(baseline))

    # Always print the full per-cell table — every cell of either document —
    # so a failing CI log carries the whole picture, not just the first
    # mismatch.  Cells only in the candidate (e.g. a config added this PR) are
    # reported as "new" and gated once they land in the recorded baseline;
    # cells only in the baseline are a structural failure.
    regressions = []
    all_cells = sorted(set(baseline) | set(candidate))
    width = max(len(c) for c in all_cells)
    print(f"{'cell':<{width}}  {'baseline':>10}  {'candidate':>10}  {'delta':>8}")
    for cell in all_cells:
        if cell in missing:
            print(f"{cell:<{width}}  {baseline[cell]:>10.1f}  {'-':>10}  "
                  f"{'':>8}  MISSING FROM CANDIDATE")
            continue
        if cell in new_cells:
            print(f"{cell:<{width}}  {'-':>10}  {candidate[cell]:>10.1f}  "
                  f"{'':>8}  new (not gated)")
            continue
        base, cand = baseline[cell], candidate[cell]
        delta = (cand - base) / base
        flag = "  REGRESSION" if delta > args.tolerance else ""
        print(f"{cell:<{width}}  {base:>10.1f}  {cand:>10.1f}  {delta:>+7.1%}{flag}")
        if delta > args.tolerance:
            regressions.append(cell)

    if missing:
        print(f"\ncompare_bench: candidate is missing {len(missing)} baseline "
              f"cell(s): {', '.join(missing)}")
        return 2

    if args.append_trajectory:
        if not args.label:
            print("compare_bench: --append-trajectory requires --label")
            return 2
        try:
            with open(args.append_trajectory) as f:
                trajectory = json.load(f)
        except (OSError, json.JSONDecodeError):
            trajectory = []
        trajectory = [e for e in trajectory if e.get("label") != args.label]
        trajectory.append({"label": args.label,
                           "cells": {c: candidate[c] for c in sorted(candidate)}})
        with open(args.append_trajectory, "w") as f:
            json.dump(trajectory, f, indent=2)
            f.write("\n")
        print(f"appended '{args.label}' to {args.append_trajectory} "
              f"({len(trajectory)} entries)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} cell(s) regressed more than "
              f"{args.tolerance:.0%}: {', '.join(regressions)}")
        return 1
    extra = f" ({len(new_cells)} new cell(s) not yet gated)" if new_cells else ""
    print(f"\nOK: all {len(baseline)} cells within {args.tolerance:.0%} "
          f"of baseline{extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Figure 6(a) (Section 4.4): proportionate allocation in SFS.
//
// 20 background dhrystones (w=1) keep every assignment feasible; two foreground
// dhrystones run at weight ratios 1:1, 1:2, 1:4, 1:7.  The measured loops/sec
// of the two foreground benchmarks must track the requested ratio.

#include <iostream>

#include "src/common/table.h"
#include "src/eval/scenarios.h"

int main() {
  using sfs::common::Table;
  using sfs::sched::SchedKind;

  std::cout << "=== Figure 6(a): processor shares received by dhrystones under SFS ===\n"
            << "2 CPUs; 20 background dhrystones (w=1) + two foreground at wa:wb.\n\n";

  Table table({"weights", "loops/s (A)", "loops/s (B)", "measured B/A", "requested B/A"});
  for (const int wb : {1, 2, 4, 7}) {
    const auto result = sfs::eval::RunFig6a(SchedKind::kSfs, 1, wb);
    table.AddRow({"1:" + std::to_string(wb), Table::Cell(result.loops_per_sec_a, 0),
                  Table::Cell(result.loops_per_sec_b, 0), Table::Cell(result.ratio, 2),
                  Table::Cell(static_cast<double>(wb), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: \"the processor bandwidth allocated by SFS to each dhrystone is in\n"
            << "proportion to its weight\" (Figure 6(a)).\n";
  return 0;
}

// Figure 6(a) (Section 4.4): proportionate allocation in SFS.
//
// 20 background dhrystones (w=1) keep every assignment feasible; two foreground
// dhrystones run at weight ratios 1:1, 1:2, 1:4, 1:7.  The measured loops/sec
// of the two foreground benchmarks must track the requested ratio.

#include <string>

#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"

SFS_EXPERIMENT(fig6a_proportional,
               .description = "Figure 6(a): dhrystone shares track requested weight ratios",
               .schedulers = {"sfs"}) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;
  using sfs::sched::SchedKind;

  reporter.out() << "=== Figure 6(a): processor shares received by dhrystones under SFS ===\n"
                 << "2 CPUs; 20 background dhrystones (w=1) + two foreground at wa:wb.\n\n";

  Table table({"weights", "loops/s (A)", "loops/s (B)", "measured B/A", "requested B/A"});
  JsonValue rows = JsonValue::Array();
  for (const int wb : {1, 2, 4, 7}) {
    const auto result = sfs::eval::RunFig6a(SchedKind::kSfs, 1, wb);
    table.AddRow({"1:" + std::to_string(wb), Table::Cell(result.loops_per_sec_a, 0),
                  Table::Cell(result.loops_per_sec_b, 0), Table::Cell(result.ratio, 2),
                  Table::Cell(static_cast<double>(wb), 2)});
    JsonValue entry = JsonValue::Object();
    entry.Set("weight_a", JsonValue(std::int64_t{1}));
    entry.Set("weight_b", JsonValue(std::int64_t{wb}));
    entry.Set("loops_per_sec_a", JsonValue(result.loops_per_sec_a));
    entry.Set("loops_per_sec_b", JsonValue(result.loops_per_sec_b));
    entry.Set("measured_ratio", JsonValue(result.ratio));
    entry.Set("requested_ratio", JsonValue(static_cast<double>(wb)));
    rows.Push(std::move(entry));
  }
  table.Print(reporter.out());
  reporter.out() << "\nPaper: \"the processor bandwidth allocated by SFS to each dhrystone is "
                    "in\nproportion to its weight\" (Figure 6(a)).\n";
  reporter.Set("rows", std::move(rows));
}

// Ablation A2: cost/accuracy trade-off of the Section 3.2 scheduling heuristic.
//
// Complements Figure 3 (accuracy) with the other half of the trade: decision
// latency.  With the heuristic, scheduling cost is bounded by k examinations of
// each queue (plus a periodic amortized refresh) instead of growing with the
// run-queue length.

#include <benchmark/benchmark.h>

#include "src/sched/sfs.h"

namespace {

using sfs::sched::SchedConfig;
using sfs::sched::Sfs;
using sfs::sched::ThreadId;

void DecisionLoop(benchmark::State& state, int heuristic_k) {
  SchedConfig config;
  config.num_cpus = 4;
  config.heuristic_k = heuristic_k;
  Sfs scheduler(config);
  const int threads = static_cast<int>(state.range(0));
  for (ThreadId tid = 0; tid < threads; ++tid) {
    scheduler.AddThread(tid, 1.0 + (tid % 9));
  }
  ThreadId current = scheduler.PickNext(0);
  for (auto _ : state) {
    scheduler.Charge(current, sfs::Msec(1 + (current % 200)));
    current = scheduler.PickNext(0);
    benchmark::DoNotOptimize(current);
  }
}

void BM_SfsDecision_Exact(benchmark::State& state) { DecisionLoop(state, 0); }
void BM_SfsDecision_K5(benchmark::State& state) { DecisionLoop(state, 5); }
void BM_SfsDecision_K20(benchmark::State& state) { DecisionLoop(state, 20); }
void BM_SfsDecision_K60(benchmark::State& state) { DecisionLoop(state, 60); }

}  // namespace

BENCHMARK(BM_SfsDecision_Exact)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800);
BENCHMARK(BM_SfsDecision_K5)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800);
BENCHMARK(BM_SfsDecision_K20)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800);
BENCHMARK(BM_SfsDecision_K60)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

BENCHMARK_MAIN();

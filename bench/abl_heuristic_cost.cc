// Ablation A2: cost/accuracy trade-off of the Section 3.2 scheduling heuristic.
//
// Complements Figure 3 (accuracy) with the other half of the trade: decision
// latency.  With the heuristic, scheduling cost is bounded by k examinations of
// each queue (plus a periodic amortized refresh) instead of growing with the
// run-queue length.  Wall-clock; JSON output only under --timing.

#include <iterator>
#include <string>

#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/sfs.h"

namespace {

using sfs::harness::DoNotOptimize;
using sfs::sched::SchedConfig;
using sfs::sched::Sfs;
using sfs::sched::ThreadId;

double DecisionNsPerOp(int heuristic_k, int threads) {
  SchedConfig config;
  config.num_cpus = 4;
  config.heuristic_k = heuristic_k;
  Sfs scheduler(config);
  for (ThreadId tid = 0; tid < threads; ++tid) {
    scheduler.AddThread(tid, 1.0 + (tid % 9));
  }
  ThreadId current = scheduler.PickNext(0);
  return sfs::harness::MeasureNsPerOp([&] {
    scheduler.Charge(current, sfs::Msec(1 + (current % 200)));
    current = scheduler.PickNext(0);
    DoNotOptimize(current);
  });
}

}  // namespace

SFS_EXPERIMENT(abl_heuristic_cost,
               .description = "Ablation A2: decision latency of the k-bounded heuristic",
               .schedulers = {"sfs"},
               .repetitions = 1, .warmup = 1, .deterministic = false) {
  using sfs::common::Table;

  reporter.out() << "=== Ablation A2: SFS decision cost, exact vs k-bounded heuristic ===\n"
                 << "4 CPUs; one decision = Charge + PickNext; ns per decision.\n\n";

  const int ks[] = {0, 5, 20, 60};  // 0 = exact algorithm
  const int thread_counts[] = {50, 100, 200, 400, 800};

  Table table({"k", "threads", "ns/decision"});
  for (const int k : ks) {
    for (const int threads : thread_counts) {
      const double ns = DecisionNsPerOp(k, threads);
      const std::string label = k == 0 ? "exact" : "k" + std::to_string(k);
      table.AddRow({label, Table::Cell(static_cast<std::int64_t>(threads)),
                    Table::Cell(ns, 1)});
      reporter.Timing(label + "/" + std::to_string(threads) + "_threads", ns);
    }
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected: exact cost grows with the run-queue length; bounded-k cost\n"
                 << "stays flat (plus the amortized periodic refresh).\n";
  reporter.Metric("k_values_measured", static_cast<std::int64_t>(std::size(ks)));
  reporter.Metric("thread_counts_measured",
                  static_cast<std::int64_t>(std::size(thread_counts)));
}

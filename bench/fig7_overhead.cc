// Figure 7 (Section 4.5): scheduling overhead vs number of runnable processes.
//
// The paper measures lmbench context-switch time for 0 KB processes as the run
// queue grows (0-50 processes), comparing SFS against the Linux time-sharing
// scheduler.  The real-code analogue here times one full reschedule operation —
// Charge(previous) + PickNext(cpu) — on the actual scheduler data structures,
// as a function of runnable-thread count.  The paper's shape: SFS costs more
// than time sharing and grows with the number of processes (Section 3.2
// complexity analysis); both are negligible vs the 200 ms quantum.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/sched/factory.h"

namespace {

using sfs::sched::CreateScheduler;
using sfs::sched::SchedConfig;
using sfs::sched::SchedKind;
using sfs::sched::Scheduler;
using sfs::sched::ThreadId;

// One full reschedule on CPU 0 with `threads` runnable 0 KB processes.
void RescheduleCycle(benchmark::State& state, SchedKind kind, int heuristic_k) {
  SchedConfig config;
  config.num_cpus = 2;
  config.heuristic_k = heuristic_k;
  auto scheduler = CreateScheduler(kind, config);
  const int threads = static_cast<int>(state.range(0));
  for (ThreadId tid = 0; tid < threads; ++tid) {
    scheduler->AddThread(tid, 1.0 + (tid % 7));
  }
  ThreadId current = scheduler->PickNext(0);
  for (auto _ : state) {
    scheduler->Charge(current, sfs::Msec(1 + (current % 200)));
    current = scheduler->PickNext(0);
    benchmark::DoNotOptimize(current);
  }
  state.SetLabel(std::string(scheduler->name()));
}

void BM_Reschedule_SFS(benchmark::State& state) {
  RescheduleCycle(state, SchedKind::kSfs, /*heuristic_k=*/0);
}

void BM_Reschedule_SFS_Heuristic(benchmark::State& state) {
  RescheduleCycle(state, SchedKind::kSfs, /*heuristic_k=*/20);
}

void BM_Reschedule_Timeshare(benchmark::State& state) {
  RescheduleCycle(state, SchedKind::kTimeshare, 0);
}

void BM_Reschedule_SFQ(benchmark::State& state) {
  RescheduleCycle(state, SchedKind::kSfq, 0);
}

}  // namespace

// 2..50 processes, matching the x-axis of Figure 7 (plus larger counts to show
// the asymptotic trend the heuristic flattens).
BENCHMARK(BM_Reschedule_Timeshare)->DenseRange(2, 50, 8)->Arg(100)->Arg(400);
BENCHMARK(BM_Reschedule_SFS)->DenseRange(2, 50, 8)->Arg(100)->Arg(400);
BENCHMARK(BM_Reschedule_SFS_Heuristic)->DenseRange(2, 50, 8)->Arg(100)->Arg(400);
BENCHMARK(BM_Reschedule_SFQ)->DenseRange(2, 50, 8)->Arg(100)->Arg(400);

BENCHMARK_MAIN();

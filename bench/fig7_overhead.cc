// Figure 7 (Section 4.5): scheduling overhead vs number of runnable processes.
//
// The paper measures lmbench context-switch time for 0 KB processes as the run
// queue grows (0-50 processes), comparing SFS against the Linux time-sharing
// scheduler.  The real-code analogue here times one full reschedule operation —
// Charge(previous) + PickNext(cpu) — on the actual scheduler data structures,
// as a function of runnable-thread count.  The paper's shape: SFS costs more
// than time sharing and grows with the number of processes (Section 3.2
// complexity analysis); both are negligible vs the 200 ms quantum.
//
// Wall-clock measurements flow through Reporter::Timing, so the JSON document
// stays deterministic unless --timing is given.

#include <array>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>

#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/factory.h"
#include "src/sched/sharded.h"

namespace {

using sfs::harness::DoNotOptimize;
using sfs::sched::CpuId;
using sfs::sched::CreateScheduler;
using sfs::sched::SchedConfig;
using sfs::sched::SchedKind;
using sfs::sched::Scheduler;
using sfs::sched::ThreadId;

// One full reschedule on CPU 0 with `threads` runnable 0 KB processes.
double RescheduleNsPerOp(SchedKind kind, int heuristic_k, int threads) {
  SchedConfig config;
  config.num_cpus = 2;
  config.heuristic_k = heuristic_k;
  auto scheduler = CreateScheduler(kind, config);
  for (ThreadId tid = 0; tid < threads; ++tid) {
    scheduler->AddThread(tid, 1.0 + (tid % 7));
  }
  ThreadId current = scheduler->PickNext(0);
  return sfs::harness::MeasureNsPerOp([&] {
    scheduler->Charge(current, sfs::Msec(1 + (current % 200)));
    current = scheduler->PickNext(0);
    DoNotOptimize(current);
  });
}

// Deterministic sharded-SFS drive: phases that drain shard 0 (blocking every
// thread homed there, forcing CPU 0 to steal) alternate with wake phases
// (re-imbalancing the weights so the periodic rebalancer moves threads).  A
// pure function of nothing, so the counters may enter the JSON as Metrics.
struct ShardedCounters {
  std::int64_t decisions = 0;
  std::int64_t steals = 0;
  std::int64_t rebalance_migrations = 0;
};

ShardedCounters DriveShardedCounters() {
  SchedConfig config;
  config.num_cpus = 2;
  config.shard_rebalance_period = 32;
  auto scheduler = CreateScheduler(SchedKind::kShardedSfs, config);
  auto* sharded = static_cast<sfs::sched::ShardedScheduler*>(scheduler.get());
  constexpr ThreadId kThreads = 8;
  for (ThreadId tid = 0; tid < kThreads; ++tid) {
    scheduler->AddThread(tid, 1.0 + (tid % 3));
  }
  std::array<ThreadId, 2> running = {sfs::sched::kInvalidThread, sfs::sched::kInvalidThread};
  ShardedCounters counters;
  for (int round = 0; round < 300; ++round) {
    for (CpuId cpu = 0; cpu < 2; ++cpu) {
      if (running[static_cast<std::size_t>(cpu)] != sfs::sched::kInvalidThread) {
        scheduler->Charge(running[static_cast<std::size_t>(cpu)], sfs::Msec(1 + round % 7));
      }
    }
    if (round % 40 == 10) {
      for (ThreadId tid = 0; tid < kThreads; ++tid) {
        if (scheduler->IsRunnable(tid) && !scheduler->IsRunning(tid) &&
            sharded->ShardOf(tid) == 0) {
          scheduler->Block(tid);
        }
      }
    } else if (round % 40 == 30) {
      for (ThreadId tid = 0; tid < kThreads; ++tid) {
        if (!scheduler->IsRunnable(tid)) {
          scheduler->Wakeup(tid);
        }
      }
    }
    // CPU 1 (the victim side) dispatches first so its shard is busy when the
    // drained CPU 0 looks for a steal (idle-source shards are never robbed).
    for (const CpuId cpu : {CpuId{1}, CpuId{0}}) {
      running[static_cast<std::size_t>(cpu)] = scheduler->PickNext(cpu);
      if (running[static_cast<std::size_t>(cpu)] != sfs::sched::kInvalidThread) {
        ++counters.decisions;
      }
    }
  }
  counters.steals = scheduler->steals();
  counters.rebalance_migrations = scheduler->shard_migrations();
  return counters;
}

}  // namespace

SFS_EXPERIMENT(fig7_overhead,
               .description = "Figure 7: reschedule cost vs runnable processes (wall-clock)",
               .schedulers = {"timeshare", "sfs", "sfq", "sharded-sfs"},
               .repetitions = 1, .warmup = 1, .deterministic = false) {
  using sfs::common::Table;

  reporter.out() << "=== Figure 7: scheduling overhead vs runnable processes ===\n"
                 << "One reschedule = Charge(previous) + PickNext(cpu); ns per operation.\n\n";

  struct Config {
    const char* label;
    SchedKind kind;
    int heuristic_k;
  };
  const Config configs[] = {
      {"timeshare", SchedKind::kTimeshare, 0},
      {"sfs_exact", SchedKind::kSfs, 0},
      {"sfs_heuristic_k20", SchedKind::kSfs, 20},
      {"sfq", SchedKind::kSfq, 0},
      {"sharded_sfs", SchedKind::kShardedSfs, 0},
  };
  // 2..50 processes, matching the x-axis of Figure 7 (plus larger counts to
  // show the asymptotic trend the heuristic flattens).
  const int process_counts[] = {2, 10, 18, 26, 34, 42, 50, 100, 400};

  Table table({"scheduler", "processes", "ns/reschedule"});
  for (const Config& config : configs) {
    for (const int threads : process_counts) {
      const double ns = RescheduleNsPerOp(config.kind, config.heuristic_k, threads);
      table.AddRow({config.label, Table::Cell(static_cast<std::int64_t>(threads)),
                    Table::Cell(ns, 1)});
      reporter.Timing(std::string(config.label) + "/" + std::to_string(threads) + "_procs", ns);
    }
  }
  table.Print(reporter.out());
  reporter.out() << "\nPaper's shape: SFS costs more than time sharing and grows with the\n"
                 << "run-queue length; the k-bounded heuristic flattens the growth (and the\n"
                 << "sharded variant keeps each decision shard-local); all are negligible\n"
                 << "against the 200 ms quantum.\n";
  reporter.Metric("schedulers_measured", static_cast<std::int64_t>(std::size(configs)));
  reporter.Metric("process_counts_measured",
                  static_cast<std::int64_t>(std::size(process_counts)));

  // Deterministic sharded counters: steals and rebalance migrations from a
  // fixed drain/wake drive (seed-independent, so plain Metrics).
  const ShardedCounters sharded = DriveShardedCounters();
  reporter.out() << "sharded-SFS drain/wake drive: " << sharded.decisions << " decisions, "
                 << sharded.steals << " steals, " << sharded.rebalance_migrations
                 << " rebalance migrations\n";
  reporter.Metric("sharded_sfs_decisions", sharded.decisions);
  reporter.Metric("sharded_sfs_steals", sharded.steals);
  reporter.Metric("sharded_sfs_rebalance_migrations", sharded.rebalance_migrations);
}

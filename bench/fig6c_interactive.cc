// Figure 6(c) (Section 4.4): interactive performance.
//
// An I/O-bound interactive application (w=1) against 0-10 compute-bound disksim
// processes (w=1 each) on 2 CPUs.  Response time = wakeup-to-burst-completion.
// Paper: SFS response times are comparable to time sharing (which is explicitly
// biased toward I/O-bound tasks) — both stay low.

#include <iostream>

#include "src/common/table.h"
#include "src/eval/scenarios.h"

int main() {
  using sfs::common::Table;
  using sfs::sched::SchedKind;

  std::cout << "=== Figure 6(c): interactive response vs background simulations ===\n"
            << "2 CPUs; Interact (5ms bursts, ~100ms think) + k disksim processes.\n\n";

  Table table({"disksim procs", "SFS mean (ms)", "SFS p95 (ms)", "timeshare mean (ms)",
               "timeshare p95 (ms)"});
  for (int k = 0; k <= 10; k += 2) {
    const auto sfs_stats = sfs::eval::RunFig6c(SchedKind::kSfs, k);
    const auto ts_stats = sfs::eval::RunFig6c(SchedKind::kTimeshare, k);
    table.AddRow({Table::Cell(static_cast<std::int64_t>(k)), Table::Cell(sfs_stats.mean_ms, 2),
                  Table::Cell(sfs_stats.p95_ms, 2), Table::Cell(ts_stats.mean_ms, 2),
                  Table::Cell(ts_stats.p95_ms, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: \"even in the presence of a compute-intensive workload, SFS provides\n"
            << "response times that are comparable to the time sharing scheduler\" (Fig 6(c)).\n";
  return 0;
}

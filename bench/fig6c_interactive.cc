// Figure 6(c) (Section 4.4): interactive performance.
//
// An I/O-bound interactive application (w=1) against 0-10 compute-bound disksim
// processes (w=1 each) on 2 CPUs.  Response time = wakeup-to-burst-completion.
// Paper: SFS response times are comparable to time sharing (which is explicitly
// biased toward I/O-bound tasks) — both stay low.

#include <cstdint>

#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"

SFS_EXPERIMENT(fig6c_interactive,
               .description = "Figure 6(c): interactive response under background simulations",
               .schedulers = {"sfs", "timeshare"}) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;
  using sfs::sched::SchedKind;

  reporter.out() << "=== Figure 6(c): interactive response vs background simulations ===\n"
                 << "2 CPUs; Interact (5ms bursts, ~100ms think) + k disksim processes.\n\n";

  Table table({"disksim procs", "SFS mean (ms)", "SFS p95 (ms)", "timeshare mean (ms)",
               "timeshare p95 (ms)"});
  JsonValue rows = JsonValue::Array();
  for (int k = 0; k <= 10; k += 2) {
    const auto sfs_stats = sfs::eval::RunFig6c(SchedKind::kSfs, k);
    const auto ts_stats = sfs::eval::RunFig6c(SchedKind::kTimeshare, k);
    table.AddRow({Table::Cell(static_cast<std::int64_t>(k)), Table::Cell(sfs_stats.mean_ms, 2),
                  Table::Cell(sfs_stats.p95_ms, 2), Table::Cell(ts_stats.mean_ms, 2),
                  Table::Cell(ts_stats.p95_ms, 2)});
    JsonValue entry = JsonValue::Object();
    entry.Set("disksim_jobs", JsonValue(std::int64_t{k}));
    entry.Set("sfs_mean_ms", JsonValue(sfs_stats.mean_ms));
    entry.Set("sfs_p95_ms", JsonValue(sfs_stats.p95_ms));
    entry.Set("timeshare_mean_ms", JsonValue(ts_stats.mean_ms));
    entry.Set("timeshare_p95_ms", JsonValue(ts_stats.p95_ms));
    rows.Push(std::move(entry));
  }
  table.Print(reporter.out());
  reporter.out() << "\nPaper: \"even in the presence of a compute-intensive workload, SFS "
                    "provides\nresponse times that are comparable to the time sharing "
                    "scheduler\" (Fig 6(c)).\n";
  reporter.Set("rows", std::move(rows));
}

// Ablation A11: dispatch-lock granularity under concurrent per-CPU
// dispatchers.
//
// The paper's kernel runs schedule() concurrently on every processor; the
// user-level executor now does the same with one dispatcher thread per CPU
// (src/exec/executor.h).  This experiment measures what the locking contract
// costs as p grows: the latency of one scheduling decision — dispatch-lock
// acquisition (including contention with the other CPUs' dispatchers) plus
// PickNext — under three configurations over the same workload:
//
//   sfs/global            flat SFS: every CPU's dispatch takes the one
//                         scheduler-wide mutex (the coarse contract flat
//                         policies get by construction)
//   sharded/global        per-CPU SFS shards behind one big dispatch mutex —
//                         the pre-concurrent executor's serialization
//                         (cf. Executor::Config::serialize_dispatch),
//                         reproduced here with one bench-wide mutex
//   sharded/per-shard     the full contract: each dispatcher takes only its
//                         shard's mutex, so decisions on different CPUs
//                         overlap and only cross-shard steals synchronize
//
// The harness mirrors exec::Executor's dispatcher loop — pick under
// LockDispatch, "run" the pick, charge under LockDispatch — but replaces the
// granted worker's real quantum with a fixed short think time, so the lock
// path is the only variable between configurations (real spinning workers
// would just measure host-core oversubscription).  The interesting signal on
// a host with fewer cores than p is the tail: a global-lock holder that the
// OS deschedules mid-decision convoys *every* other dispatcher behind it
// until it runs again, so mean/p99 inflate with p, while per-shard
// dispatchers convoy nobody.  Everything here is wall-clock; it reaches the
// JSON only under --timing.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/factory.h"

namespace {

using sfs::common::SampleSet;
using sfs::harness::Reporter;
using sfs::sched::CreateScheduler;
using sfs::sched::SchedConfig;
using sfs::sched::SchedKind;
using sfs::sched::ThreadId;

struct ModeSpec {
  const char* label;
  SchedKind kind;
  bool big_lock;  // funnel every scheduler call through one bench-wide mutex
};

struct ModeResult {
  double median_us = 0.0;
  double p99_us = 0.0;
  double mean_wait_us = 0.0;  // time blocked acquiring the dispatch lock
  int max_overlap = 0;        // dispatchers observed inside dispatch at once
  std::int64_t decisions = 0;
};

ModeResult RunMode(const ModeSpec& mode, int cpus) {
  SchedConfig config;
  config.num_cpus = cpus;
  auto scheduler = CreateScheduler(mode.kind, config);
  {
    auto guard = scheduler->LockLifecycle();
    // Two CPU-bound tasks per processor: every shard always has a runnable
    // thread queued, so no dispatch ever comes up empty or steals.
    for (ThreadId tid = 0; tid < 2 * cpus; ++tid) {
      scheduler->AddThread(tid, 1.0);
    }
  }

  constexpr sfs::Tick kChargeTicks = 5;
  std::mutex big_mu;
  std::atomic<bool> stop{false};
  // Serialization witness: >1 is possible only when two dispatchers are
  // inside dispatch critical sections at the same time — i.e. dispatch is
  // genuinely not serialized.  (Even on a host with a single core this
  // triggers: the OS preempts a dispatcher mid-decision and another enters.)
  std::atomic<int> in_dispatch{0};
  std::atomic<int> max_overlap{0};
  struct PerCpu {
    SampleSet latency;
    SampleSet wait;
  };
  std::vector<PerCpu> per_cpu(static_cast<std::size_t>(cpus));

  auto locked_section = [&](int cpu, auto&& body) {
    const auto requested = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> big =
        mode.big_lock ? std::unique_lock<std::mutex>(big_mu) : std::unique_lock<std::mutex>();
    auto guard = scheduler->LockDispatch(cpu);
    const auto acquired = std::chrono::steady_clock::now();
    const int overlap = in_dispatch.fetch_add(1) + 1;
    int seen = max_overlap.load(std::memory_order_relaxed);
    while (overlap > seen &&
           !max_overlap.compare_exchange_weak(seen, overlap, std::memory_order_relaxed)) {
    }
    body();
    in_dispatch.fetch_sub(1);
    return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   acquired - requested)
                                   .count()) /
           1000.0;
  };

  std::vector<std::thread> dispatchers;
  dispatchers.reserve(static_cast<std::size_t>(cpus));
  for (int cpu = 0; cpu < cpus; ++cpu) {
    dispatchers.emplace_back([&, cpu] {
      PerCpu& samples = per_cpu[static_cast<std::size_t>(cpu)];
      // Back-to-back dispatch (quantum -> 0 limit): maximizes decision rate so
      // the lock path dominates, the same saturation regime lmbench's
      // context-switch rows probe.
      while (!stop.load(std::memory_order_relaxed)) {
        const auto pick_start = std::chrono::steady_clock::now();
        ThreadId tid = sfs::sched::kInvalidThread;
        const double pick_wait =
            locked_section(cpu, [&] { tid = scheduler->PickNext(cpu); });
        if (tid == sfs::sched::kInvalidThread) {
          continue;  // never happens with 2 pinned tasks per shard, but don't trap on it
        }
        const auto picked = std::chrono::steady_clock::now();
        samples.latency.Add(
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(picked - pick_start)
                    .count()) /
            1000.0);
        const double charge_wait =
            locked_section(cpu, [&] { scheduler->Charge(tid, kChargeTicks); });
        samples.wait.Add(pick_wait + charge_wait);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& d : dispatchers) {
    d.join();
  }

  SampleSet latency;
  SampleSet wait;
  for (const PerCpu& samples : per_cpu) {
    for (const double s : samples.latency.samples()) {
      latency.Add(s);
    }
    for (const double s : samples.wait.samples()) {
      wait.Add(s);
    }
  }
  ModeResult result;
  result.median_us = latency.Percentile(50);
  result.p99_us = latency.Percentile(99);
  result.mean_wait_us = wait.mean();
  result.max_overlap = max_overlap.load();
  result.decisions = static_cast<std::int64_t>(latency.count());
  return result;
}

}  // namespace

SFS_EXPERIMENT(abl_lock_contention,
               .description =
                   "Ablation A11: dispatch latency, global-lock vs per-shard-lock "
                   "dispatchers as p grows (wall-clock)",
               .schedulers = {"sfs", "sharded-sfs"}, .repetitions = 1, .warmup = 0,
               .deterministic = false) {
  const ModeSpec modes[] = {
      {"sfs/global", SchedKind::kSfs, false},
      {"sharded/global", SchedKind::kShardedSfs, true},
      {"sharded/per-shard", SchedKind::kShardedSfs, false},
  };
  const int cpu_counts[] = {1, 2, 4, 8};

  sfs::common::Table table({"p", "dispatch lock", "median (us)", "p99 (us)",
                            "lock wait (us)", "overlap", "decisions"});
  for (const int cpus : cpu_counts) {
    for (const ModeSpec& mode : modes) {
      const ModeResult result = RunMode(mode, cpus);
      table.AddRow({std::to_string(cpus), mode.label,
                    sfs::common::Table::Cell(result.median_us, 2),
                    sfs::common::Table::Cell(result.p99_us, 2),
                    sfs::common::Table::Cell(result.mean_wait_us, 3),
                    sfs::common::Table::Cell(static_cast<std::int64_t>(result.max_overlap)),
                    sfs::common::Table::Cell(result.decisions)});
      const std::string prefix =
          "p" + std::to_string(cpus) + "/" + std::string(mode.label) + "/";
      reporter.Timing(prefix + "median_us", result.median_us);
      reporter.Timing(prefix + "p99_us", result.p99_us);
      reporter.Timing(prefix + "mean_lock_wait_us", result.mean_wait_us);
      reporter.Timing(prefix + "max_overlap", static_cast<double>(result.max_overlap));
      reporter.Timing(prefix + "decisions", static_cast<double>(result.decisions));
    }
    reporter.Metric("tasks_at_p" + std::to_string(cpus),
                    static_cast<std::int64_t>(2 * cpus));
  }

  reporter.out() << "=== Ablation A11: scheduling-decision latency vs dispatch-lock "
                    "granularity ===\n\n";
  table.Print(reporter.out());
  reporter.out()
      << "\nEach decision = dispatch-lock acquisition + PickNext, sampled by p\n"
      << "dispatcher threads mirroring the executor's per-CPU loop back-to-back\n"
      << "(2 queued tasks per processor, 200 ms wall per cell).  'lock wait' is\n"
      << "the mean time a dispatcher spent blocked acquiring dispatch locks per\n"
      << "decision; 'overlap' is the most dispatchers ever observed inside\n"
      << "dispatch critical sections at once — >1 proves per-shard dispatch is\n"
      << "not serialized, while the global lock pins it at 1 and its lock wait\n"
      << "grows with p as every dispatcher convoys behind one holder.\n";
}

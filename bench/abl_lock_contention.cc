// Ablation A11: dispatch-lock granularity under concurrent per-CPU
// dispatchers.
//
// The paper's kernel runs schedule() concurrently on every processor; the
// user-level executor now does the same with one dispatcher thread per CPU
// (src/exec/executor.h).  This experiment measures what the locking contract
// costs as p grows: the latency of one scheduling decision — dispatch-lock
// acquisition (including contention with the other CPUs' dispatchers) plus
// PickNext — under three configurations over the same workload:
//
//   sfs/global            flat SFS: every CPU's dispatch takes the one
//                         scheduler-wide mutex (the coarse contract flat
//                         policies get by construction)
//   sharded/global        per-CPU SFS shards behind one big dispatch mutex —
//                         the pre-concurrent executor's serialization
//                         (cf. Executor::Config::serialize_dispatch),
//                         reproduced here with one bench-wide mutex
//   sharded/per-shard     the full contract: each dispatcher takes only its
//                         shard's mutex, so decisions on different CPUs
//                         overlap and only cross-shard steals synchronize
//
// The harness mirrors exec::Executor's dispatcher loop — pick under
// LockDispatch, "run" the pick, charge under LockDispatch — but replaces the
// granted worker's real quantum with a fixed short think time, so the lock
// path is the only variable between configurations (real spinning workers
// would just measure host-core oversubscription).  The interesting signal on
// a host with fewer cores than p is the tail: a global-lock holder that the
// OS deschedules mid-decision convoys *every* other dispatcher behind it
// until it runs again, so mean/p99 inflate with p, while per-shard
// dispatchers convoy nobody.  Everything here is wall-clock; it reaches the
// JSON only under --timing.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/obs/metrics.h"
#include "src/runtime/executor.h"
#include "src/sched/factory.h"

namespace {

using sfs::harness::Reporter;
using sfs::obs::HistogramSnapshot;
using sfs::obs::LogHistogram;
using sfs::sched::CreateScheduler;
using sfs::sched::SchedConfig;
using sfs::sched::SchedKind;
using sfs::sched::ThreadId;

struct ModeSpec {
  const char* label;
  SchedKind kind;
  bool big_lock;  // funnel every scheduler call through one bench-wide mutex
};

struct ModeResult {
  HistogramSnapshot latency;  // one decision: lock acquisition + PickNext, ns
  HistogramSnapshot wait;     // time blocked acquiring the dispatch locks, ns
  int max_overlap = 0;        // dispatchers observed inside dispatch at once
};

ModeResult RunMode(const ModeSpec& mode, int cpus) {
  SchedConfig config;
  config.num_cpus = cpus;
  auto scheduler = CreateScheduler(mode.kind, config);
  {
    auto guard = scheduler->LockLifecycle();
    // Two CPU-bound tasks per processor: every shard always has a runnable
    // thread queued, so no dispatch ever comes up empty or steals.
    for (ThreadId tid = 0; tid < 2 * cpus; ++tid) {
      scheduler->AddThread(tid, 1.0);
    }
  }

  constexpr sfs::Tick kChargeTicks = 5;
  std::mutex big_mu;
  std::atomic<bool> stop{false};
  // Serialization witness: >1 is possible only when two dispatchers are
  // inside dispatch critical sections at the same time — i.e. dispatch is
  // genuinely not serialized.  (Even on a host with a single core this
  // triggers: the OS preempts a dispatcher mid-decision and another enters.)
  std::atomic<int> in_dispatch{0};
  std::atomic<int> max_overlap{0};
  // Sharded exactly like the executor's histograms: each dispatcher records
  // into its own shard, merge happens once at the end.  Sampling therefore
  // never serializes the dispatchers it is measuring.
  LogHistogram latency_hist(cpus);
  LogHistogram wait_hist(cpus);

  auto locked_section = [&](int cpu, auto&& body) -> std::int64_t {
    const auto requested = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> big =
        mode.big_lock ? std::unique_lock<std::mutex>(big_mu) : std::unique_lock<std::mutex>();
    auto guard = scheduler->LockDispatch(cpu);
    const auto acquired = std::chrono::steady_clock::now();
    const int overlap = in_dispatch.fetch_add(1) + 1;
    int seen = max_overlap.load(std::memory_order_relaxed);
    while (overlap > seen &&
           !max_overlap.compare_exchange_weak(seen, overlap, std::memory_order_relaxed)) {
    }
    body();
    in_dispatch.fetch_sub(1);
    return std::chrono::duration_cast<std::chrono::nanoseconds>(acquired - requested).count();
  };

  std::vector<std::thread> dispatchers;
  dispatchers.reserve(static_cast<std::size_t>(cpus));
  for (int cpu = 0; cpu < cpus; ++cpu) {
    dispatchers.emplace_back([&, cpu] {
      // Back-to-back dispatch (quantum -> 0 limit): maximizes decision rate so
      // the lock path dominates, the same saturation regime lmbench's
      // context-switch rows probe.
      while (!stop.load(std::memory_order_relaxed)) {
        const auto pick_start = std::chrono::steady_clock::now();
        ThreadId tid = sfs::sched::kInvalidThread;
        const std::int64_t pick_wait =
            locked_section(cpu, [&] { tid = scheduler->PickNext(cpu); });
        if (tid == sfs::sched::kInvalidThread) {
          continue;  // never happens with 2 pinned tasks per shard, but don't trap on it
        }
        const auto picked = std::chrono::steady_clock::now();
        latency_hist.Record(
            cpu, std::chrono::duration_cast<std::chrono::nanoseconds>(picked - pick_start)
                     .count());
        const std::int64_t charge_wait =
            locked_section(cpu, [&] { scheduler->Charge(tid, kChargeTicks); });
        wait_hist.Record(cpu, pick_wait + charge_wait);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& d : dispatchers) {
    d.join();
  }

  ModeResult result;
  result.latency = latency_hist.Snapshot();
  result.wait = wait_hist.Snapshot();
  result.max_overlap = max_overlap.load();
  return result;
}

// --- wake-path section: the real runtime, broadcast vs targeted ---------------
//
// Unlike the protocol harness above, this runs the actual runtime::Executor on
// a blocking workload and A/Bs its two wake modes over identical tasks:
// kBroadcast reproduces the old executor's mechanics (timer applies wakeups
// under the exclusive lifecycle lock, then wakes EVERY parked dispatcher),
// kTargeted is the new path (wait-free mailbox push + one targeted kick; the
// home dispatcher applies the wakeup inside its next dispatch-lock hold).

struct WakeResult {
  HistogramSnapshot lock_wait;      // per-decision dispatch-lock wait, ns
  HistogramSnapshot wake_apply;     // timer-due -> Wakeup applied, ns
  HistogramSnapshot wake_dispatch;  // timer-due -> woken thread granted, ns
  std::int64_t wakeups = 0;
  std::int64_t kicks = 0;
  std::int64_t dispatches = 0;
};

WakeResult RunWakeMode(sfs::runtime::Executor::WakeMode wake_mode, int cpus) {
  using sfs::runtime::Executor;
  SchedConfig config;
  config.num_cpus = cpus;
  auto scheduler = CreateScheduler(SchedKind::kShardedSfs, config);

  Executor::Config exec_config;
  exec_config.quantum = sfs::Msec(1);
  exec_config.wake_mode = wake_mode;
  exec_config.batch_dispatch = true;
  Executor executor(*scheduler, exec_config);

  auto spin = [](sfs::Tick us) {
    const auto end = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
    while (std::chrono::steady_clock::now() < end) {
    }
  };
  // One spinner per CPU keeps every shard busy (so broadcast kicks really do
  // hit sleeping AND working dispatchers), two blockers per CPU generate a
  // steady wakeup stream through the timer.
  for (ThreadId tid = 0; tid < cpus; ++tid) {
    executor.AddTask(tid, 1.0, [spin] {
      spin(20);
      return true;  // until the wall limit
    });
  }
  for (ThreadId tid = cpus; tid < 3 * cpus; ++tid) {
    executor.AddTask(tid, 2.0, [spin, tid]() -> Executor::WorkResult {
      spin(30);
      return Executor::WorkResult::Block(sfs::Usec(200) * (1 + tid % 3));
    });
  }
  executor.Run(sfs::Msec(300));

  WakeResult result;
  result.lock_wait = executor.lock_wait_latencies();
  result.wake_apply = executor.wake_apply_latencies();
  result.wake_dispatch = executor.wake_to_dispatch_latencies();
  result.wakeups = executor.wakeups();
  result.kicks = executor.kicks();
  result.dispatches = executor.dispatches();
  return result;
}

}  // namespace

SFS_EXPERIMENT(abl_lock_contention,
               .description =
                   "Ablation A11: dispatch latency, global-lock vs per-shard-lock "
                   "dispatchers as p grows (wall-clock)",
               .schedulers = {"sfs", "sharded-sfs"}, .repetitions = 1, .warmup = 0,
               .deterministic = false) {
  const ModeSpec modes[] = {
      {"sfs/global", SchedKind::kSfs, false},
      {"sharded/global", SchedKind::kShardedSfs, true},
      {"sharded/per-shard", SchedKind::kShardedSfs, false},
  };
  const int cpu_counts[] = {1, 2, 4, 8};

  sfs::common::Table table({"p", "dispatch lock", "median (us)", "p99 (us)",
                            "lock wait (us)", "overlap", "decisions"});
  for (const int cpus : cpu_counts) {
    for (const ModeSpec& mode : modes) {
      const ModeResult result = RunMode(mode, cpus);
      const double median_us = result.latency.Percentile(50) / 1000.0;
      const double p99_us = result.latency.Percentile(99) / 1000.0;
      const double mean_wait_us = result.wait.mean() / 1000.0;
      const auto decisions = static_cast<std::int64_t>(result.latency.count());
      table.AddRow({std::to_string(cpus), mode.label,
                    sfs::common::Table::Cell(median_us, 2),
                    sfs::common::Table::Cell(p99_us, 2),
                    sfs::common::Table::Cell(mean_wait_us, 3),
                    sfs::common::Table::Cell(static_cast<std::int64_t>(result.max_overlap)),
                    sfs::common::Table::Cell(decisions)});
      const std::string prefix =
          "p" + std::to_string(cpus) + "/" + std::string(mode.label) + "/";
      reporter.Timing(prefix + "median_us", median_us);
      reporter.Timing(prefix + "p99_us", p99_us);
      reporter.Timing(prefix + "mean_lock_wait_us", mean_wait_us);
      reporter.Timing(prefix + "max_overlap", static_cast<double>(result.max_overlap));
      reporter.Timing(prefix + "decisions", static_cast<double>(decisions));
      // Full percentile columns (p50/p99/p999, nanoseconds) from the same
      // sharded histograms the executor itself uses.
      reporter.TimingHistogram(prefix + "dispatch_ns", result.latency);
      reporter.TimingHistogram(prefix + "lock_wait_ns", result.wait);
    }
    reporter.Metric("tasks_at_p" + std::to_string(cpus),
                    static_cast<std::int64_t>(2 * cpus));
  }

  reporter.out() << "=== Ablation A11: scheduling-decision latency vs dispatch-lock "
                    "granularity ===\n\n";
  table.Print(reporter.out());
  reporter.out()
      << "\nEach decision = dispatch-lock acquisition + PickNext, sampled by p\n"
      << "dispatcher threads mirroring the executor's per-CPU loop back-to-back\n"
      << "(2 queued tasks per processor, 200 ms wall per cell).  'lock wait' is\n"
      << "the mean time a dispatcher spent blocked acquiring dispatch locks per\n"
      << "decision; 'overlap' is the most dispatchers ever observed inside\n"
      << "dispatch critical sections at once — >1 proves per-shard dispatch is\n"
      << "not serialized, while the global lock pins it at 1 and its lock wait\n"
      << "grows with p as every dispatcher convoys behind one holder.\n";

  // --- wake path: broadcast herd vs targeted parking/mailbox ------------------
  struct WakeModeSpec {
    const char* label;
    sfs::runtime::Executor::WakeMode mode;
  };
  const WakeModeSpec wake_modes[] = {
      {"broadcast", sfs::runtime::Executor::WakeMode::kBroadcast},
      {"targeted", sfs::runtime::Executor::WakeMode::kTargeted},
  };
  sfs::common::Table wake_table({"p", "wake mode", "wakeups", "apply p99 (us)",
                                 "w2d p50 (us)", "w2d p99 (us)", "lock wait (us)",
                                 "kicks/wakeup"});
  for (const int cpus : {2, 8}) {
    for (const WakeModeSpec& mode : wake_modes) {
      const WakeResult result = RunWakeMode(mode.mode, cpus);
      const double apply_p99_us = result.wake_apply.Percentile(99) / 1000.0;
      const double w2d_p50_us = result.wake_dispatch.Percentile(50) / 1000.0;
      const double w2d_p99_us = result.wake_dispatch.Percentile(99) / 1000.0;
      const double mean_wait_us = result.lock_wait.mean() / 1000.0;
      const double kicks_per_wakeup =
          result.wakeups > 0
              ? static_cast<double>(result.kicks) / static_cast<double>(result.wakeups)
              : 0.0;
      wake_table.AddRow({std::to_string(cpus), mode.label,
                         sfs::common::Table::Cell(result.wakeups),
                         sfs::common::Table::Cell(apply_p99_us, 2),
                         sfs::common::Table::Cell(w2d_p50_us, 2),
                         sfs::common::Table::Cell(w2d_p99_us, 2),
                         sfs::common::Table::Cell(mean_wait_us, 3),
                         sfs::common::Table::Cell(kicks_per_wakeup, 2)});
      const std::string prefix =
          "p" + std::to_string(cpus) + "/wake/" + std::string(mode.label) + "/";
      reporter.Timing(prefix + "wake_apply_p99_us", apply_p99_us);
      reporter.Timing(prefix + "wake_to_dispatch_p50_us", w2d_p50_us);
      reporter.Timing(prefix + "wake_to_dispatch_p99_us", w2d_p99_us);
      reporter.Timing(prefix + "mean_lock_wait_us", mean_wait_us);
      reporter.Timing(prefix + "kicks_per_wakeup", kicks_per_wakeup);
      reporter.Metric(prefix + "wakeups", result.wakeups);
      reporter.Metric(prefix + "dispatches", result.dispatches);
      reporter.TimingHistogram(prefix + "wake_to_dispatch_ns", result.wake_dispatch);
      reporter.TimingHistogram(prefix + "lock_wait_ns", result.lock_wait);
    }
  }
  reporter.out() << "\n=== Wake path: broadcast herd vs targeted parking/mailbox "
                    "(real runtime::Executor) ===\n\n";
  wake_table.Print(reporter.out());
  reporter.out()
      << "\nSame blocking workload (1 spinner + 2 blockers per CPU, sharded SFS,\n"
      << "300 ms wall) under both wake modes.  'apply' = timer-due to Wakeup\n"
      << "applied; 'w2d' = timer-due to the woken thread granted a CPU;\n"
      << "'lock wait' = mean dispatch-lock wait per decision; 'kicks/wakeup' =\n"
      << "parking-slot kicks issued per wakeup (broadcast wakes the whole herd,\n"
      << "targeted wakes the home CPU plus at most one baton pass).\n";
}

// Ablation A10: sharded scheduling — global SFS vs the partitioned strawman
// vs per-CPU SFS shards with surplus-aware stealing (Section 1.2).
//
// The paper rejects per-processor GPS scheduling because blocked/terminated
// threads imbalance the partitions and repartitioning is either expensive or
// late.  This sweep recreates that pathology (eval::RunShardedFairness: hogs
// plus blocking sleepers, mid-run terminators and a kill batch) across
// p ∈ {2..64} processors and up to 10,000 threads, comparing:
//   * global-sfs      — one shared queue set (the paper's design);
//   * partitioned-sfq — per-CPU SFQ, no stealing, no coupling, no rebalance
//                       (the strawman at its "infrequent repartitioning" end);
//   * sharded-sfs     — per-CPU SFS with max-surplus idle stealing, periodic
//                       surplus-aware rebalancing and full virtual-time
//                       coupling (the production design).
// Each cell runs twice with the same seed and CHECK-fails unless the schedule
// fingerprints are identical (the layer is deterministic); decisions/sec is
// wall clock and reaches the JSON only under --timing.

#include <memory>
#include <string>
#include <string_view>

#include "src/common/assert.h"
#include "src/common/fingerprint.h"
#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/obs/metrics.h"
#include "src/obs/perfetto.h"
#include "src/obs/trace.h"
#include "src/sched/factory.h"

namespace {

using sfs::Tick;
using sfs::eval::RunShardedFairness;
using sfs::eval::ShardedFairnessResult;
using sfs::sched::SchedConfig;

struct Contender {
  const char* label;
  const char* policy;
  sfs::sched::ShardStealPolicy steal;
  int rebalance_period;
  double coupling;
};

constexpr Contender kContenders[] = {
    {"global-sfs", "sfs", sfs::sched::ShardStealPolicy::kNone, 0, 0.0},
    {"partitioned-sfq", "sharded-sfq", sfs::sched::ShardStealPolicy::kNone, 0, 0.0},
    {"sharded-sfs", "sharded-sfs", sfs::sched::ShardStealPolicy::kMaxSurplus, 256, 1.0},
};

}  // namespace

SFS_EXPERIMENT(abl_sharded,
               .description =
                   "Ablation A10: global SFS vs partitioned SFQ vs sharded SFS with stealing",
               .schedulers = {"sfs", "sharded-sfq", "sharded-sfs"}) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;

  reporter.out() << "=== Ablation A10: sharded scheduling under churn (Section 1.2) ===\n"
                 << "Hogs + sleepers + terminators + a kill batch; GMS deviation of the\n"
                 << "surviving hogs.  Stealing/rebalancing/coupling repair the imbalance the\n"
                 << "partitioned strawman suffers; every cell is run twice and must produce\n"
                 << "identical schedule fingerprints.\n\n";

  struct Cell {
    int cpus;
    int threads;
    Tick horizon;
  };
  // Low-occupancy cells (threads ~ p) drain shards whenever a terminator
  // exits or a sleeper blocks — the idle-pull steal regime; high-occupancy
  // cells exercise placement/rebalancing and per-decision cost at scale.
  const Cell cells[] = {
      {2, 16, sfs::Sec(30)},
      {4, 6, sfs::Sec(30)},
      {8, 1024, sfs::Sec(30)},
      {16, 24, sfs::Sec(30)},
      {64, 10000, sfs::Sec(20)},
  };

  Table table({"p", "threads", "scheduler", "GMS dev (ms)", "steals", "rebalances",
               "migrations", "decisions", "ns/decision"});
  JsonValue rows = JsonValue::Array();
  bool all_deterministic = true;
  for (const Cell& cell : cells) {
    for (const Contender& contender : kContenders) {
      SchedConfig config;
      config.num_cpus = cell.cpus;
      // The O(log t) backend keeps the 10k-thread cells affordable; the
      // backend never changes decisions (abl_scaling_backends proves it).
      config.queue_backend = sfs::sched::QueueBackend::kSkipList;
      config.shard_steal = contender.steal;
      config.shard_rebalance_period = contender.rebalance_period;
      config.shard_coupling = contender.coupling;

      const ShardedFairnessResult run = RunShardedFairness(
          contender.policy, config, cell.threads, cell.horizon, reporter.seed());
      // The rerun carries the observability sinks (skipped for the 64-CPU
      // cell, where the rings alone would dwarf the scheduler state), so the
      // determinism CHECK below doubles as the tracing-invariance proof:
      // recording must not change a single scheduling decision.
      std::unique_ptr<sfs::obs::Trace> trace;
      std::unique_ptr<sfs::obs::MetricsRegistry> metrics;
      sfs::eval::ObsSinks sinks;
      if (cell.cpus <= 16) {
        trace = std::make_unique<sfs::obs::Trace>(cell.cpus, /*capacity_per_ring=*/1 << 14);
        metrics = std::make_unique<sfs::obs::MetricsRegistry>(/*num_shards=*/1);
        sinks = {.trace = trace.get(), .metrics = metrics.get()};
      }
      const ShardedFairnessResult rerun = RunShardedFairness(
          contender.policy, config, cell.threads, cell.horizon, reporter.seed(), sinks);
      const bool deterministic =
          run.schedule_fingerprint == rerun.schedule_fingerprint &&
          run.decisions == rerun.decisions && run.steals == rerun.steals &&
          run.shard_migrations == rerun.shard_migrations &&
          run.gms_deviation_ms == rerun.gms_deviation_ms;
      all_deterministic = all_deterministic && deterministic;
      SFS_CHECK(deterministic);

      // --trace export: the low-occupancy sharded-SFS cell, where steals and
      // rebalances are visible at a glance.  Repetition 0 only, so --repeat
      // does not rewrite the file with identical contents.
      if (trace != nullptr && !reporter.trace_path().empty() && reporter.repetition() == 0 &&
          std::string_view(contender.label) == "sharded-sfs" && cell.cpus == 4) {
        if (sfs::obs::PerfettoExporter::WriteFile(*trace, reporter.trace_path())) {
          reporter.out() << "(wrote Perfetto trace of sharded-sfs p=4 to "
                         << reporter.trace_path() << " — open in ui.perfetto.dev)\n";
        } else {
          reporter.out() << "(FAILED to write trace to " << reporter.trace_path() << ")\n";
        }
      }

      table.AddRow({Table::Cell(std::int64_t{cell.cpus}), Table::Cell(std::int64_t{cell.threads}),
                    contender.label, Table::Cell(run.gms_deviation_ms, 1),
                    Table::Cell(run.steals), Table::Cell(run.shard_migrations),
                    Table::Cell(run.engine_migrations), Table::Cell(run.decisions),
                    Table::Cell(run.wall_ns_per_decision, 0)});

      JsonValue entry = JsonValue::Object();
      entry.Set("cpus", JsonValue(std::int64_t{cell.cpus}));
      entry.Set("threads", JsonValue(std::int64_t{cell.threads}));
      entry.Set("scheduler", JsonValue(contender.label));
      entry.Set("gms_deviation_ms", JsonValue(run.gms_deviation_ms));
      entry.Set("steals", JsonValue(run.steals));
      entry.Set("rebalance_migrations", JsonValue(run.shard_migrations));
      entry.Set("engine_migrations", JsonValue(run.engine_migrations));
      entry.Set("decisions", JsonValue(run.decisions));
      entry.Set("schedule_fingerprint", JsonValue(sfs::common::FingerprintHex(run.schedule_fingerprint)));
      entry.Set("deterministic", JsonValue(std::int64_t{deterministic ? 1 : 0}));
      rows.Push(std::move(entry));

      reporter.Timing(std::string(contender.label) + "/p" + std::to_string(cell.cpus) + "_t" +
                          std::to_string(cell.threads),
                      run.wall_ns_per_decision);

      if (metrics != nullptr) {
        const std::string hist_prefix = "hist/" + std::string(contender.label) + "/p" +
                                        std::to_string(cell.cpus) + "_t" +
                                        std::to_string(cell.threads) + "/";
        reporter.Histogram(hist_prefix + "quantum_ticks",
                           metrics->GetHistogram("sim/quantum_ticks").Snapshot());
        reporter.Histogram(hist_prefix + "run_interval_ticks",
                           metrics->GetHistogram("sim/run_interval_ticks").Snapshot());
      }
    }
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected: the partitioned strawman's deviation explodes after the kill\n"
                 << "batch drains its shards; sharded-SFS repairs it with steals/rebalances\n"
                 << "and approaches global SFS, while its per-decision cost stays shard-local\n"
                 << "(no global queue contention as p grows).\n";
  reporter.Set("rows", std::move(rows));
  reporter.Metric("all_deterministic", all_deterministic ? std::int64_t{1} : std::int64_t{0});
}

// Table 1 (Section 4.5): lmbench-style scheduling overheads.
//
// The paper reports lmbench latencies on the real kernel.  The user-level
// analogues measured here exercise the same scheduler code paths (see DESIGN.md
// "Substitutions"):
//
//   lmbench row                      -> analogue
//   syscall overhead                 -> getweight lookup (thread-table access)
//   fork()                           -> AddThread + RemoveThread (entity setup,
//                                       queue insertion, readjustment)
//   exec()                           -> SetWeight (weight change + readjustment)
//   ctx switch (2 proc / 0KB)        -> Charge+PickNext with 2 threads
//   ctx switch (8 proc / 16KB)       -> Charge+PickNext with 8 threads, each
//                                       touching a 16KB working set on switch
//   ctx switch (16 proc / 64KB)      -> same with 16 threads x 64KB
//
// Run for both the time-sharing baseline and SFS; the paper's shape is that SFS
// costs a few microseconds more per switch, vanishing against the 200 ms
// quantum, with the gap narrowing as working sets dominate.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "src/common/table.h"
#include "src/exec/executor.h"
#include "src/sched/factory.h"

namespace {

using sfs::sched::CreateScheduler;
using sfs::sched::SchedConfig;
using sfs::sched::SchedKind;
using sfs::sched::ThreadId;

std::unique_ptr<sfs::sched::Scheduler> Make(SchedKind kind, int threads) {
  SchedConfig config;
  config.num_cpus = 2;
  auto scheduler = CreateScheduler(kind, config);
  for (ThreadId tid = 0; tid < threads; ++tid) {
    scheduler->AddThread(tid, 1.0);
  }
  return scheduler;
}

void BM_Syscall_GetWeight(benchmark::State& state, SchedKind kind) {
  auto scheduler = Make(kind, 16);
  ThreadId tid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler->GetWeight(tid));
    tid = (tid + 1) % 16;
  }
  state.SetLabel(std::string(scheduler->name()));
}

void BM_Fork_AddRemoveThread(benchmark::State& state, SchedKind kind) {
  auto scheduler = Make(kind, 16);
  ThreadId next = 1000;
  for (auto _ : state) {
    scheduler->AddThread(next, 2.0);
    scheduler->RemoveThread(next);
    ++next;
  }
  state.SetLabel(std::string(scheduler->name()));
}

void BM_Exec_SetWeight(benchmark::State& state, SchedKind kind) {
  auto scheduler = Make(kind, 16);
  double w = 1.0;
  for (auto _ : state) {
    scheduler->SetWeight(3, w);
    w = w >= 64.0 ? 1.0 : w * 2.0;
  }
  state.SetLabel(std::string(scheduler->name()));
}

// Context switch with `threads` processes each owning a `kb` KiB working set
// that the incoming thread touches (lmbench's array-walk model).
void CtxSwitch(benchmark::State& state, SchedKind kind, int threads, int kb) {
  auto scheduler = Make(kind, threads);
  std::vector<std::vector<char>> working_sets(static_cast<std::size_t>(threads));
  for (auto& ws : working_sets) {
    ws.assign(static_cast<std::size_t>(kb) * 1024, 1);
  }
  ThreadId current = scheduler->PickNext(0);
  std::int64_t sum = 0;
  for (auto _ : state) {
    scheduler->Charge(current, sfs::Msec(10));
    current = scheduler->PickNext(0);
    auto& ws = working_sets[static_cast<std::size_t>(current)];
    for (std::size_t i = 0; i < ws.size(); i += 64) {
      sum += ws[i]++;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(std::string(scheduler->name()));
}

void BM_CtxSwitch_2p_0KB(benchmark::State& state, SchedKind kind) {
  CtxSwitch(state, kind, 2, 0);
}
void BM_CtxSwitch_8p_16KB(benchmark::State& state, SchedKind kind) {
  CtxSwitch(state, kind, 8, 16);
}
void BM_CtxSwitch_16p_64KB(benchmark::State& state, SchedKind kind) {
  CtxSwitch(state, kind, 16, 64);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Syscall_GetWeight, timeshare, SchedKind::kTimeshare);
BENCHMARK_CAPTURE(BM_Syscall_GetWeight, sfs, SchedKind::kSfs);
BENCHMARK_CAPTURE(BM_Fork_AddRemoveThread, timeshare, SchedKind::kTimeshare);
BENCHMARK_CAPTURE(BM_Fork_AddRemoveThread, sfs, SchedKind::kSfs);
BENCHMARK_CAPTURE(BM_Exec_SetWeight, timeshare, SchedKind::kTimeshare);
BENCHMARK_CAPTURE(BM_Exec_SetWeight, sfs, SchedKind::kSfs);
BENCHMARK_CAPTURE(BM_CtxSwitch_2p_0KB, timeshare, SchedKind::kTimeshare);
BENCHMARK_CAPTURE(BM_CtxSwitch_2p_0KB, sfs, SchedKind::kSfs);
BENCHMARK_CAPTURE(BM_CtxSwitch_8p_16KB, timeshare, SchedKind::kTimeshare);
BENCHMARK_CAPTURE(BM_CtxSwitch_8p_16KB, sfs, SchedKind::kSfs);
BENCHMARK_CAPTURE(BM_CtxSwitch_16p_64KB, timeshare, SchedKind::kTimeshare);
BENCHMARK_CAPTURE(BM_CtxSwitch_16p_64KB, sfs, SchedKind::kSfs);

namespace {

// Real-thread section: actual std::threads under the user-level executor, with
// lmbench's working-set-touch model inside each work unit.  The reported value
// is the preempt-flag-to-yield latency — the cooperative analogue of lmbench's
// context-switch time.
void RealThreadSection() {
  using sfs::exec::Executor;
  sfs::common::Table table(
      {"config", "scheduler", "median switch (us)", "p95 (us)", "switches"});
  struct Shape {
    int procs;
    int kb;
  };
  for (const Shape shape : {Shape{2, 0}, Shape{8, 16}, Shape{16, 64}}) {
    for (const SchedKind kind : {SchedKind::kTimeshare, SchedKind::kSfs}) {
      SchedConfig config;
      config.num_cpus = 2;
      auto scheduler = CreateScheduler(kind, config);
      Executor::Config exec_config;
      exec_config.quantum = sfs::Msec(2);
      Executor executor(*scheduler, exec_config);
      for (ThreadId tid = 0; tid < shape.procs; ++tid) {
        auto buffer = std::make_shared<std::vector<char>>(
            static_cast<std::size_t>(shape.kb) * 1024, 1);
        executor.AddTask(tid, 1.0, [buffer] {
          const auto end =
              std::chrono::steady_clock::now() + std::chrono::microseconds(30);
          std::int64_t sum = 0;
          do {
            for (std::size_t i = 0; i < buffer->size(); i += 64) {
              sum += (*buffer)[i]++;
            }
          } while (std::chrono::steady_clock::now() < end);
          benchmark::DoNotOptimize(sum);
          return true;
        });
      }
      executor.Run(sfs::Msec(400));
      const auto& lat = executor.preempt_latencies();
      table.AddRow({std::to_string(shape.procs) + " proc/" + std::to_string(shape.kb) + "KB",
                    std::string(scheduler->name()),
                    sfs::common::Table::Cell(lat.Percentile(50), 1),
                    sfs::common::Table::Cell(lat.Percentile(95), 1),
                    sfs::common::Table::Cell(lat.count())});
    }
  }
  std::cout << "\n=== Table 1 (real threads): cooperative switch latency under the\n"
            << "user-level executor (2 virtual CPUs, 2ms quantum, 30us work units) ===\n\n";
  table.Print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  RealThreadSection();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

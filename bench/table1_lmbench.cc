// Table 1 (Section 4.5): lmbench-style scheduling overheads.
//
// The paper reports lmbench latencies on the real kernel.  The user-level
// analogues measured here exercise the same scheduler code paths (see DESIGN.md
// "Substitutions"):
//
//   lmbench row                      -> analogue
//   syscall overhead                 -> getweight lookup (thread-table access)
//   fork()                           -> AddThread + RemoveThread (entity setup,
//                                       queue insertion, readjustment)
//   exec()                           -> SetWeight (weight change + readjustment)
//   ctx switch (2 proc / 0KB)        -> Charge+PickNext with 2 threads
//   ctx switch (8 proc / 16KB)       -> Charge+PickNext with 8 threads, each
//                                       touching a 16KB working set on switch
//   ctx switch (16 proc / 64KB)      -> same with 16 threads x 64KB
//
// Run for both the time-sharing baseline and SFS; the paper's shape is that SFS
// costs a few microseconds more per switch, vanishing against the 200 ms
// quantum, with the gap narrowing as working sets dominate.  A second section
// measures the cooperative-switch latency with real std::threads under the
// user-level executor.  Everything here is wall-clock; it reaches the JSON only
// under --timing.

#include <chrono>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/exec/executor.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/factory.h"

namespace {

using sfs::harness::DoNotOptimize;
using sfs::harness::Reporter;
using sfs::sched::CreateScheduler;
using sfs::sched::SchedConfig;
using sfs::sched::SchedKind;
using sfs::sched::ThreadId;

std::unique_ptr<sfs::sched::Scheduler> Make(SchedKind kind, int threads) {
  SchedConfig config;
  config.num_cpus = 2;
  auto scheduler = CreateScheduler(kind, config);
  for (ThreadId tid = 0; tid < threads; ++tid) {
    scheduler->AddThread(tid, 1.0);
  }
  return scheduler;
}

double SyscallGetWeightNs(SchedKind kind) {
  auto scheduler = Make(kind, 16);
  ThreadId tid = 0;
  return sfs::harness::MeasureNsPerOp([&] {
    DoNotOptimize(scheduler->GetWeight(tid));
    tid = (tid + 1) % 16;
  });
}

double ForkAddRemoveNs(SchedKind kind) {
  auto scheduler = Make(kind, 16);
  ThreadId next = 1000;
  return sfs::harness::MeasureNsPerOp([&] {
    scheduler->AddThread(next, 2.0);
    scheduler->RemoveThread(next);
    ++next;
  });
}

double ExecSetWeightNs(SchedKind kind) {
  auto scheduler = Make(kind, 16);
  double w = 1.0;
  return sfs::harness::MeasureNsPerOp([&] {
    scheduler->SetWeight(3, w);
    w = w >= 64.0 ? 1.0 : w * 2.0;
  });
}

// Context switch with `threads` processes each owning a `kb` KiB working set
// that the incoming thread touches (lmbench's array-walk model).
double CtxSwitchNs(SchedKind kind, int threads, int kb) {
  auto scheduler = Make(kind, threads);
  std::vector<std::vector<char>> working_sets(static_cast<std::size_t>(threads));
  for (auto& ws : working_sets) {
    ws.assign(static_cast<std::size_t>(kb) * 1024, 1);
  }
  ThreadId current = scheduler->PickNext(0);
  std::int64_t sum = 0;
  return sfs::harness::MeasureNsPerOp([&] {
    scheduler->Charge(current, sfs::Msec(10));
    current = scheduler->PickNext(0);
    auto& ws = working_sets[static_cast<std::size_t>(current)];
    for (std::size_t i = 0; i < ws.size(); i += 64) {
      sum += ws[i]++;
    }
    DoNotOptimize(sum);
  });
}

// Real-thread section: actual std::threads under the user-level executor, with
// lmbench's working-set-touch model inside each work unit.  The reported value
// is the preempt-flag-to-yield latency — the cooperative analogue of lmbench's
// context-switch time.  Since the executor went concurrent (one dispatcher
// thread per CPU driving the scheduler in parallel under the scheduler.h
// locking contract), these latencies include real cross-dispatcher lock
// traffic — sharded-sfs rides per-shard locks, the flat policies one coarse
// dispatch mutex; abl_lock_contention isolates that difference as p grows.
void RealThreadSection(Reporter& reporter) {
  using sfs::exec::Executor;
  sfs::common::Table table({"config", "scheduler", "runtime", "median switch (us)",
                            "p95 (us)", "switches"});
  struct Shape {
    int procs;
    int kb;
  };
  // Runtime axis: wake mechanics (targeted parking/mailbox vs broadcast herd)
  // x dispatcher affinity (floating vs pinned to core cpu%cores).  The slug
  // doubles as the JSON key segment for the non-default cells.
  struct Variant {
    const char* label;
    const char* slug;
    Executor::WakeMode wake;
    bool pinned;
  };
  constexpr Variant kDefault{"targeted/unpinned", "", Executor::WakeMode::kTargeted,
                             false};
  auto run_cell = [&](SchedKind kind, Shape shape, const Variant& variant) {
    SchedConfig config;
    config.num_cpus = 2;
    auto scheduler = CreateScheduler(kind, config);
    Executor::Config exec_config;
    exec_config.quantum = sfs::Msec(2);
    exec_config.wake_mode = variant.wake;
    exec_config.pin_dispatchers = variant.pinned;
    Executor executor(*scheduler, exec_config);
    for (ThreadId tid = 0; tid < shape.procs; ++tid) {
      auto buffer = std::make_shared<std::vector<char>>(
          static_cast<std::size_t>(shape.kb) * 1024, 1);
      executor.AddTask(tid, 1.0, [buffer] {
        const auto end =
            std::chrono::steady_clock::now() + std::chrono::microseconds(30);
        std::int64_t sum = 0;
        do {
          for (std::size_t i = 0; i < buffer->size(); i += 64) {
            sum += (*buffer)[i]++;
          }
        } while (std::chrono::steady_clock::now() < end);
        DoNotOptimize(sum);
        return true;
      });
    }
    executor.Run(sfs::Msec(400));
    const auto& lat = executor.preempt_latencies();
    const std::string shape_label =
        std::to_string(shape.procs) + "proc_" + std::to_string(shape.kb) + "KB";
    table.AddRow({std::to_string(shape.procs) + " proc/" + std::to_string(shape.kb) + "KB",
                  std::string(scheduler->name()), variant.label,
                  sfs::common::Table::Cell(lat.Percentile(50), 1),
                  sfs::common::Table::Cell(lat.Percentile(95), 1),
                  sfs::common::Table::Cell(lat.count())});
    // The default variant keeps the historical key so trajectories stay
    // comparable across PRs; variants append their slug.
    const std::string key_mid = variant.slug[0] == '\0'
                                    ? std::string(scheduler->name())
                                    : std::string(scheduler->name()) + "/" + variant.slug;
    reporter.Timing("executor/" + shape_label + "/" + key_mid + "/median_us",
                    lat.Percentile(50));
  };
  for (const Shape shape : {Shape{2, 0}, Shape{8, 16}, Shape{16, 64}}) {
    for (const SchedKind kind :
         {SchedKind::kTimeshare, SchedKind::kSfs, SchedKind::kShardedSfs}) {
      run_cell(kind, shape, kDefault);
    }
  }
  // Runtime matrix on the contended shape: per-dispatcher wake mechanics and
  // core pinning under sharded SFS, the configuration abl_lock_contention
  // studies in depth.
  for (const Variant variant :
       {Variant{"broadcast/unpinned", "broadcast_unpinned", Executor::WakeMode::kBroadcast,
                false},
        Variant{"targeted/pinned", "targeted_pinned", Executor::WakeMode::kTargeted, true},
        Variant{"broadcast/pinned", "broadcast_pinned", Executor::WakeMode::kBroadcast,
                true}}) {
    run_cell(SchedKind::kShardedSfs, Shape{8, 16}, variant);
  }
  reporter.out() << "\n=== Table 1 (real threads): cooperative switch latency under the\n"
                 << "user-level runtime (2 virtual CPUs, 2ms quantum, 30us work units;\n"
                 << "'runtime' = wake mode / dispatcher affinity) ===\n\n";
  table.Print(reporter.out());
  reporter.out() << '\n';
}

}  // namespace

SFS_EXPERIMENT(table1_lmbench,
               .description = "Table 1: lmbench-analogue scheduler overheads (wall-clock)",
               .schedulers = {"timeshare", "sfs", "sharded-sfs"},
               .repetitions = 1, .warmup = 1, .deterministic = false) {
  using sfs::common::Table;

  RealThreadSection(reporter);

  reporter.out() << "=== Table 1 (scheduler code paths): ns per operation ===\n\n";
  struct RowSpec {
    const char* label;
    double (*measure)(SchedKind);
  };
  const RowSpec rows[] = {
      {"syscall_getweight", &SyscallGetWeightNs},
      {"fork_add_remove", &ForkAddRemoveNs},
      {"exec_setweight", &ExecSetWeightNs},
      {"ctx_switch_2p_0KB", [](SchedKind kind) { return CtxSwitchNs(kind, 2, 0); }},
      {"ctx_switch_8p_16KB", [](SchedKind kind) { return CtxSwitchNs(kind, 8, 16); }},
      {"ctx_switch_16p_64KB", [](SchedKind kind) { return CtxSwitchNs(kind, 16, 64); }},
  };
  Table table({"operation", "timeshare (ns)", "sfs (ns)"});
  for (const RowSpec& row : rows) {
    const double ts_ns = row.measure(SchedKind::kTimeshare);
    const double sfs_ns = row.measure(SchedKind::kSfs);
    table.AddRow({row.label, Table::Cell(ts_ns, 1), Table::Cell(sfs_ns, 1)});
    reporter.Timing(std::string(row.label) + "/timeshare_ns", ts_ns);
    reporter.Timing(std::string(row.label) + "/sfs_ns", sfs_ns);
  }
  table.Print(reporter.out());
  reporter.out() << "\nPaper's shape: SFS costs a few microseconds more per operation than\n"
                 << "time sharing — negligible against the 200 ms quantum.\n";
  reporter.Metric("operations_measured", static_cast<std::int64_t>(std::size(rows)));
}

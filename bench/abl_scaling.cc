// Ablation A1: fixed-point scaling factor 10^n (Section 3.2).
//
// "Employing a scaling factor of 10^n ... we found a scaling factor of 10^4 to
// be adequate for most purposes."  Quantum-granularity noise (one 200 ms quantum)
// dwarfs arithmetic error, so this harness isolates the arithmetic: a
// uniprocessor, a 1 ms quantum, weights {7,3,2,1} whose reciprocals are
// non-terminating decimals, and a long horizon.  The reported spread is
// max_ij |A_i/w_i - A_j/w_j| — zero under GMS — plus each thread's relative
// allocation error.  Coarse scaling factors bias the per-quantum tag increment
// and the error compounds linearly in time; 10^4 is already indistinguishable
// from exact arithmetic, matching the paper's recommendation.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace {

struct ScalingAudit {
  double spread_ms = 0.0;      // max |A_i/w_i - A_j/w_j|, in weighted ms
  double worst_rel_err = 0.0;  // max_i |A_i - expected_i| / expected_i
};

ScalingAudit RunAudit(int digits, sfs::Tick quantum, sfs::Tick horizon) {
  using namespace sfs;
  const std::vector<double> weights = {7.0, 3.0, 2.0, 1.0};
  sched::SchedConfig config;
  config.num_cpus = 1;
  config.quantum = quantum;
  config.fixed_point_digits = digits;
  auto scheduler = sched::CreateScheduler(sched::SchedKind::kSfs, config);
  sim::Engine engine(*scheduler);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    engine.AddTaskAt(0, workload::MakeInf(static_cast<sched::ThreadId>(i + 1), weights[i], "w"));
  }
  engine.RunUntil(horizon);

  double total_w = 0.0;
  for (double w : weights) {
    total_w += w;
  }
  ScalingAudit audit;
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double service =
        static_cast<double>(engine.ServiceIncludingRunning(static_cast<sched::ThreadId>(i + 1)));
    const double weighted = service / weights[i];
    lo = std::min(lo, weighted);
    hi = std::max(hi, weighted);
    const double expected = static_cast<double>(horizon) * weights[i] / total_w;
    audit.worst_rel_err = std::max(audit.worst_rel_err, std::abs(service - expected) / expected);
  }
  audit.spread_ms = (hi - lo) / 1000.0;
  return audit;
}

}  // namespace

SFS_EXPERIMENT(abl_scaling,
               .description = "Ablation A1: fixed-point scaling factor vs allocation error",
               .schedulers = {"sfs"}) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;

  reporter.out() << "=== Ablation A1: fixed-point scaling factor (Section 3.2) ===\n"
                 << "SFS, 1 CPU, q=1ms, weights {7,3,2,1}, 120s horizon.\n\n";

  Table table({"scaling", "weighted spread (ms)", "worst allocation error (%)"});
  JsonValue rows = JsonValue::Array();
  for (const int digits : {-1, 0, 1, 2, 3, 4, 6, 8}) {
    const ScalingAudit audit = RunAudit(digits, sfs::Msec(1), sfs::Sec(120));
    const std::string label = digits < 0 ? "exact (double)" : "10^" + std::to_string(digits);
    table.AddRow({label, Table::Cell(audit.spread_ms, 3),
                  Table::Cell(100.0 * audit.worst_rel_err, 4)});
    JsonValue entry = JsonValue::Object();
    entry.Set("scaling", JsonValue(label));
    entry.Set("digits", JsonValue(std::int64_t{digits}));
    entry.Set("weighted_spread_ms", JsonValue(audit.spread_ms));
    entry.Set("worst_allocation_error_pct", JsonValue(100.0 * audit.worst_rel_err));
    rows.Push(std::move(entry));
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected shape: allocation error decays ~10x per digit and is at the\n"
                 << "exact-arithmetic floor by 10^4, the paper's recommended scaling factor.\n";
  reporter.Set("rows", std::move(rows));
}

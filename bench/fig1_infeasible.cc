// Figure 1 / Examples 1 & 2 (Section 1.2): the two motivating pathologies.
//
// Example 1 — infeasible weights: T1 (w=1) and T2 (w=10) on two CPUs with
// q=1ms; T3 (w=1) arrives at t=1s.  Under plain SFQ, T1 starves ~0.9s;
// readjustment or SFS eliminates the starvation.
//
// Example 2 — frequent arrivals/departures with feasible weights: a heavy
// thread, many light threads and a back-to-back chain of short jobs.  SFQ
// over-serves the short jobs; SFS keeps them at their requested share.

#include <string>

#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"

namespace {

using sfs::common::Table;
using sfs::harness::JsonValue;
using sfs::sched::SchedKind;

}  // namespace

SFS_EXPERIMENT(fig1_example1_infeasible,
               .description = "Example 1: infeasible weights starve T1 under plain SFQ",
               .schedulers = {"sfq", "stride", "wfq", "sfs"}) {
  reporter.out() << "=== Figure 1 / Example 1: the infeasible weights problem ===\n"
                 << "2 CPUs, q=1ms; T1(w=1), T2(w=10) from t=0; T3(w=1) arrives at t=1s.\n"
                 << "Paper: under SFQ, T1 starves ~900 quanta (0.9s) after T3 arrives.\n\n";

  Table table({"scheduler", "readjust", "T1 starvation (ms)", "T1 svc (ms)", "T2 svc (ms)",
               "T3 svc (ms)"});
  JsonValue cases = JsonValue::Array();
  struct Case {
    SchedKind kind;
    bool readjust;
  };
  for (const Case c : {Case{SchedKind::kSfq, false}, Case{SchedKind::kSfq, true},
                       Case{SchedKind::kStride, false}, Case{SchedKind::kStride, true},
                       Case{SchedKind::kWfq, false}, Case{SchedKind::kWfq, true},
                       Case{SchedKind::kSfs, true}}) {
    const auto result = sfs::eval::RunExample1(c.kind, c.readjust);
    table.AddRow({std::string(result.series.scheduler_name), c.readjust ? "yes" : "no",
                  Table::Cell(result.t1_starvation / sfs::kTicksPerMsec),
                  Table::Cell(result.series.Of("T1").back() / sfs::kTicksPerMsec),
                  Table::Cell(result.series.Of("T2").back() / sfs::kTicksPerMsec),
                  Table::Cell(result.series.Of("T3").back() / sfs::kTicksPerMsec)});
    JsonValue entry = JsonValue::Object();
    entry.Set("scheduler", JsonValue(result.series.scheduler_name));
    entry.Set("readjust", JsonValue(c.readjust));
    entry.Set("t1_starvation_ms", JsonValue(result.t1_starvation / sfs::kTicksPerMsec));
    entry.Set("t1_service_ms", JsonValue(result.series.Of("T1").back() / sfs::kTicksPerMsec));
    entry.Set("t2_service_ms", JsonValue(result.series.Of("T2").back() / sfs::kTicksPerMsec));
    entry.Set("t3_service_ms", JsonValue(result.series.Of("T3").back() / sfs::kTicksPerMsec));
    cases.Push(std::move(entry));
  }
  table.Print(reporter.out());
  reporter.Set("cases", std::move(cases));
}

SFS_EXPERIMENT(fig1_example2_short_jobs,
               .description = "Example 2: short-job chain over-served by SFQ, not by SFS",
               .schedulers = {"sfq", "sfs"}) {
  reporter.out() << "=== Example 2: short jobs with feasible weights ===\n"
                 << "2 CPUs; heavy(w=50), 100 x light(w=1), chained shorts (w=15, 300ms).\n"
                 << "Requested shorts:heavy ratio = 0.30.  Paper: SFQ gives each short job\n"
                 << "as much bandwidth as the heavy thread; SFS restores proportions.\n\n";

  Table table({"scheduler", "heavy svc (ms)", "shorts svc (ms)", "lights svc (ms)",
               "shorts/heavy"});
  JsonValue cases = JsonValue::Array();
  for (const SchedKind kind : {SchedKind::kSfq, SchedKind::kSfs}) {
    const auto result = sfs::eval::RunExample2(kind);
    table.AddRow({std::string(sfs::sched::SchedKindName(kind)),
                  Table::Cell(result.heavy_service / sfs::kTicksPerMsec),
                  Table::Cell(result.shorts_service / sfs::kTicksPerMsec),
                  Table::Cell(result.light_service / sfs::kTicksPerMsec),
                  Table::Cell(result.shorts_to_heavy_ratio, 3)});
    JsonValue entry = JsonValue::Object();
    entry.Set("scheduler", JsonValue(sfs::sched::SchedKindName(kind)));
    entry.Set("heavy_service_ms", JsonValue(result.heavy_service / sfs::kTicksPerMsec));
    entry.Set("shorts_service_ms", JsonValue(result.shorts_service / sfs::kTicksPerMsec));
    entry.Set("lights_service_ms", JsonValue(result.light_service / sfs::kTicksPerMsec));
    entry.Set("shorts_to_heavy_ratio", JsonValue(result.shorts_to_heavy_ratio));
    cases.Push(std::move(entry));
  }
  table.Print(reporter.out());
  reporter.Set("requested_ratio", JsonValue(0.30));
  reporter.Set("cases", std::move(cases));
}

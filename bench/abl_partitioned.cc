// Ablation A7: the partitioned per-processor alternative (Section 1.2).
//
// "Frequent repartitioning can be expensive; doing so infrequently can result
// in imbalances (and unfairness) across partitions."  Six hogs (weights
// 3,3,2,2,1,1) start balanced across two partitions; at t=10s two threads of
// one partition exit.  Without rebalancing, the surviving thread of the drained
// partition owns a whole CPU while the other partition's three threads squeeze
// onto one — per-weight service skews badly.  The sweep shows rebalancing
// period vs fairness and migrations; SFS needs none of it.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/metrics/fairness.h"
#include "src/sched/partitioned.h"
#include "src/sched/sfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace {

using namespace sfs;

struct PartitionOutcome {
  double jain = 0.0;                 // over post-departure weighted service of survivors
  double max_per_weight_skew = 0.0;  // max_i,j (A_i/w_i)/(A_j/w_j)
  std::int64_t moves = 0;
};

PartitionOutcome RunPartition(sched::Scheduler& scheduler,
                              std::int64_t (*moves_after)(sched::Scheduler&)) {
  sim::Engine engine(scheduler);
  const std::vector<double> weights = {3, 3, 2, 2, 1, 1};
  for (std::size_t i = 0; i < weights.size(); ++i) {
    engine.AddTaskAt(0, workload::MakeInf(static_cast<sched::ThreadId>(i + 1), weights[i], "h"));
  }
  engine.RunUntil(Sec(10));
  // Two threads of one partition exit (ids 1 and 3 share a partition under the
  // deterministic greedy placement; under SFS the ids are immaterial).
  engine.KillTask(1);
  engine.KillTask(3);
  std::vector<Tick> at_kill;
  const sched::ThreadId survivors[] = {2, 4, 5, 6};
  for (const sched::ThreadId tid : survivors) {
    at_kill.push_back(engine.ServiceIncludingRunning(tid));
  }
  engine.RunUntil(Sec(60));

  std::vector<double> services;
  std::vector<double> phis;
  for (std::size_t i = 0; i < 4; ++i) {
    services.push_back(
        static_cast<double>(engine.ServiceIncludingRunning(survivors[i]) - at_kill[i]));
    phis.push_back(weights[static_cast<std::size_t>(survivors[i] - 1)]);
  }
  PartitionOutcome out;
  out.jain = metrics::JainIndex(services, phis);
  double lo = 1e300;
  double hi = 0.0;
  for (std::size_t i = 0; i < services.size(); ++i) {
    lo = std::min(lo, services[i] / phis[i]);
    hi = std::max(hi, services[i] / phis[i]);
  }
  out.max_per_weight_skew = hi / lo;
  out.moves = moves_after(scheduler);
  return out;
}

harness::JsonValue OutcomeToJson(const std::string& scheduler, const std::string& rebalance,
                                 const PartitionOutcome& out) {
  harness::JsonValue entry = harness::JsonValue::Object();
  entry.Set("scheduler", harness::JsonValue(scheduler));
  entry.Set("rebalance_every", harness::JsonValue(rebalance));
  entry.Set("jain_index", harness::JsonValue(out.jain));
  entry.Set("max_per_weight_skew", harness::JsonValue(out.max_per_weight_skew));
  entry.Set("moves", harness::JsonValue(out.moves));
  return entry;
}

}  // namespace

SFS_EXPERIMENT(abl_partitioned,
               .description = "Ablation A7: partitioned per-CPU SFQ vs SFS after departures",
               .schedulers = {"sfq", "sfs"}) {
  using common::Table;
  using harness::JsonValue;

  reporter.out() << "=== Ablation A7: partitioned per-CPU SFQ vs SFS (Section 1.2) ===\n"
                 << "2 CPUs; hogs weighted {3,3,2,2,1,1}; two threads of one partition exit\n"
                 << "at t=10s.  Metrics over the survivors' post-departure service.\n\n";

  Table table({"scheduler", "rebalance every", "Jain index", "per-weight skew", "moves"});
  JsonValue rows = JsonValue::Array();
  for (const int every : {0, 512, 64, 8}) {
    sched::SchedConfig config;
    config.num_cpus = 2;
    sched::PartitionedSfq scheduler(config, every);
    const PartitionOutcome out = RunPartition(scheduler, [](sched::Scheduler& s) {
      return static_cast<sched::PartitionedSfq&>(s).rebalance_moves();
    });
    const std::string rebalance =
        every == 0 ? "never" : Table::Cell(static_cast<std::int64_t>(every));
    table.AddRow({"partitioned-SFQ", rebalance, Table::Cell(out.jain, 4),
                  Table::Cell(out.max_per_weight_skew, 2), Table::Cell(out.moves)});
    rows.Push(OutcomeToJson("partitioned-SFQ", rebalance, out));
  }
  {
    sched::SchedConfig config;
    config.num_cpus = 2;
    sched::Sfs scheduler(config);
    const PartitionOutcome out =
        RunPartition(scheduler, [](sched::Scheduler&) -> std::int64_t { return 0; });
    table.AddRow({"SFS", "-", Table::Cell(out.jain, 4),
                  Table::Cell(out.max_per_weight_skew, 2), Table::Cell(out.moves)});
    rows.Push(OutcomeToJson("SFS", "-", out));
  }
  table.Print(reporter.out());
  reporter.out() << "\nExpected: 'never' leaves the drained partition's survivor with a whole "
                    "CPU\n(large skew, low Jain); frequent rebalancing repairs fairness via "
                    "thread\nmoves.  SFS is fair with zero repartitioning machinery — the "
                    "paper's case\nfor a genuinely multiprocessor proportional-share algorithm "
                    "(Section 1.2).\n";
  reporter.Set("rows", std::move(rows));
}

// Figure 6(b) (Section 4.4): application isolation.
//
// MPEG decoder (large weight; the readjustment algorithm effectively grants it
// one processor) against 0-10 parallel compilation jobs on 2 CPUs.  SFS holds
// ~30 fps flat; the time-sharing scheduler's frame rate decays with load.

#include <cstdint>

#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"

SFS_EXPERIMENT(fig6b_isolation,
               .description = "Figure 6(b): MPEG decoder isolation from compile load",
               .schedulers = {"sfs", "timeshare"}) {
  using sfs::common::Table;
  using sfs::harness::JsonValue;
  using sfs::sched::SchedKind;

  reporter.out() << "=== Figure 6(b): MPEG decoding with background compilations ===\n"
                 << "2 CPUs; decoder w=100 (30 fps clip, 30ms/frame), k compile jobs w=1.\n\n";

  Table table({"compilations", "SFS fps", "timeshare fps"});
  JsonValue rows = JsonValue::Array();
  for (int k = 0; k <= 10; ++k) {
    const double sfs_fps = sfs::eval::RunFig6b(SchedKind::kSfs, k);
    const double ts_fps = sfs::eval::RunFig6b(SchedKind::kTimeshare, k);
    table.AddRow({Table::Cell(static_cast<std::int64_t>(k)), Table::Cell(sfs_fps, 1),
                  Table::Cell(ts_fps, 1)});
    JsonValue entry = JsonValue::Object();
    entry.Set("compile_jobs", JsonValue(std::int64_t{k}));
    entry.Set("sfs_fps", JsonValue(sfs_fps));
    entry.Set("timeshare_fps", JsonValue(ts_fps));
    rows.Push(std::move(entry));
  }
  table.Print(reporter.out());
  reporter.out() << "\nPaper: \"SFS is able to isolate the video decoder from the compilation\n"
                 << "workload, whereas the Linux time sharing scheduler causes the processor\n"
                 << "share of the decoder to drop with increasing load\" (Figure 6(b)).\n";
  reporter.Set("rows", std::move(rows));
}

// Figure 6(b) (Section 4.4): application isolation.
//
// MPEG decoder (large weight; the readjustment algorithm effectively grants it
// one processor) against 0-10 parallel compilation jobs on 2 CPUs.  SFS holds
// ~30 fps flat; the time-sharing scheduler's frame rate decays with load.

#include <iostream>

#include "src/common/table.h"
#include "src/eval/scenarios.h"

int main() {
  using sfs::common::Table;
  using sfs::sched::SchedKind;

  std::cout << "=== Figure 6(b): MPEG decoding with background compilations ===\n"
            << "2 CPUs; decoder w=100 (30 fps clip, 30ms/frame), k compile jobs w=1.\n\n";

  Table table({"compilations", "SFS fps", "timeshare fps"});
  for (int k = 0; k <= 10; ++k) {
    const double sfs_fps = sfs::eval::RunFig6b(SchedKind::kSfs, k);
    const double ts_fps = sfs::eval::RunFig6b(SchedKind::kTimeshare, k);
    table.AddRow({Table::Cell(static_cast<std::int64_t>(k)), Table::Cell(sfs_fps, 1),
                  Table::Cell(ts_fps, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: \"SFS is able to isolate the video decoder from the compilation\n"
            << "workload, whereas the Linux time sharing scheduler causes the processor\n"
            << "share of the decoder to drop with increasing load\" (Figure 6(b)).\n";
  return 0;
}

// Extension E1: hierarchical SFS (Section 5 future work).
//
// Demonstrates class-level proportional sharing on an SMP: three hosting
// domains with purchased shares 50/30/20 run wildly different thread mixes
// (steady hogs, a churning short-job stream, a bursty compile farm).  H-SFS
// delivers each domain its aggregate share; the flat scheduler with per-thread
// weight 1 would instead split by thread count.

#include <string>

#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/hsfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

SFS_EXPERIMENT(ext_hierarchy,
               .description = "Extension E1: hierarchical SFS delivers domain-level shares",
               .schedulers = {"hsfs"}) {
  using namespace sfs;
  using common::Table;
  using harness::JsonValue;

  sched::SchedConfig config;
  config.num_cpus = 4;
  sched::HierarchicalSfs scheduler(config);
  scheduler.CreateClass(1, sched::kRootClass, 5.0);  // domain A: 50%
  scheduler.CreateClass(2, sched::kRootClass, 3.0);  // domain B: 30%
  scheduler.CreateClass(3, sched::kRootClass, 2.0);  // domain C: 20%
  sim::Engine engine(scheduler);

  sched::ThreadId next_tid = 1;
  // Domain A: 3 steady hogs.
  for (int i = 0; i < 3; ++i) {
    scheduler.RouteThread(next_tid, 1);
    engine.AddTaskAt(0, workload::MakeInf(next_tid++, 1.0, "A"));
  }
  // Domain B: a churning stream of 200 ms jobs, two at a time.
  engine.SetExitHook([&](sim::Engine& e, sim::Task& task) {
    if (task.label() == "B") {
      scheduler.RouteThread(next_tid, 2);
      e.AddTaskAt(e.now(), workload::MakeFixedWork(next_tid++, 1.0, Msec(200), "B"));
    }
  });
  for (int i = 0; i < 2; ++i) {
    scheduler.RouteThread(next_tid, 2);
    engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 1.0, Msec(200), "B"));
  }
  // Domain C: 8 compile jobs (mixed CPU/IO).
  for (int i = 0; i < 8; ++i) {
    workload::CompileJob::Params params;
    params.seed = reporter.seed() * 100 + static_cast<std::uint64_t>(i);
    scheduler.RouteThread(next_tid, 3);
    engine.AddTaskAt(0, workload::MakeCompileJob(next_tid++, 1.0, params, "C"));
  }

  const Tick horizon = Sec(60);
  engine.RunUntil(horizon);

  reporter.out() << "=== Extension E1: hierarchical SFS — domain-level shares ===\n"
                 << "4 CPUs, 60s; domains weighted 5:3:2 with heterogeneous workloads.\n\n";
  Table table({"domain", "workload", "purchased", "received"});
  JsonValue rows = JsonValue::Array();
  const double capacity = static_cast<double>(4 * horizon);
  const char* kinds[] = {"3 steady hogs", "short-job churn (2x200ms)", "8 compile jobs"};
  const double purchased[] = {50.0, 30.0, 20.0};
  for (int cls = 1; cls <= 3; ++cls) {
    const double received_pct =
        100.0 * static_cast<double>(scheduler.ClassService(cls)) / capacity;
    table.AddRow({"domain-" + std::string(1, static_cast<char>('A' + cls - 1)),
                  kinds[cls - 1], Table::Cell(purchased[cls - 1], 0) + "%",
                  Table::Cell(received_pct, 1) + "%"});
    JsonValue entry = JsonValue::Object();
    entry.Set("domain", JsonValue(std::string(1, static_cast<char>('A' + cls - 1))));
    entry.Set("workload", JsonValue(kinds[cls - 1]));
    entry.Set("purchased_pct", JsonValue(purchased[cls - 1]));
    entry.Set("received_pct", JsonValue(received_pct));
    rows.Push(std::move(entry));
  }
  table.Print(reporter.out());
  reporter.Counters("engine_counters", engine);
  reporter.out() << "\nNote: domain B's churning jobs keep only ~2 threads runnable, so its\n"
                 << "capacity cap is min(p, runnable)/p; with 4 CPUs it can consume at most\n"
                 << "2 CPUs-worth — above its 30% purchase, so the purchase binds, not the "
                    "cap.\n";
  reporter.Set("rows", std::move(rows));
}

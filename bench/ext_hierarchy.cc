// Extension E1: hierarchical SFS (Section 5 future work).
//
// Demonstrates class-level proportional sharing on an SMP: three hosting
// domains with purchased shares 50/30/20 run wildly different thread mixes
// (steady hogs, a churning short-job stream, a bursty compile farm).  H-SFS
// delivers each domain its aggregate share; the flat scheduler with per-thread
// weight 1 would instead split by thread count.

#include <iostream>
#include <string>

#include "src/common/table.h"
#include "src/sched/hsfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

int main() {
  using namespace sfs;
  using common::Table;

  sched::SchedConfig config;
  config.num_cpus = 4;
  sched::HierarchicalSfs scheduler(config);
  scheduler.CreateClass(1, sched::kRootClass, 5.0);  // domain A: 50%
  scheduler.CreateClass(2, sched::kRootClass, 3.0);  // domain B: 30%
  scheduler.CreateClass(3, sched::kRootClass, 2.0);  // domain C: 20%
  sim::Engine engine(scheduler);

  sched::ThreadId next_tid = 1;
  // Domain A: 3 steady hogs.
  for (int i = 0; i < 3; ++i) {
    scheduler.RouteThread(next_tid, 1);
    engine.AddTaskAt(0, workload::MakeInf(next_tid++, 1.0, "A"));
  }
  // Domain B: a churning stream of 200 ms jobs, two at a time.
  engine.SetExitHook([&](sim::Engine& e, sim::Task& task) {
    if (task.label() == "B") {
      scheduler.RouteThread(next_tid, 2);
      e.AddTaskAt(e.now(), workload::MakeFixedWork(next_tid++, 1.0, Msec(200), "B"));
    }
  });
  for (int i = 0; i < 2; ++i) {
    scheduler.RouteThread(next_tid, 2);
    engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 1.0, Msec(200), "B"));
  }
  // Domain C: 8 compile jobs (mixed CPU/IO).
  for (int i = 0; i < 8; ++i) {
    workload::CompileJob::Params params;
    params.seed = 100 + static_cast<std::uint64_t>(i);
    scheduler.RouteThread(next_tid, 3);
    engine.AddTaskAt(0, workload::MakeCompileJob(next_tid++, 1.0, params, "C"));
  }

  const Tick horizon = Sec(60);
  engine.RunUntil(horizon);

  std::cout << "=== Extension E1: hierarchical SFS — domain-level shares ===\n"
            << "4 CPUs, 60s; domains weighted 5:3:2 with heterogeneous workloads.\n\n";
  Table table({"domain", "workload", "purchased", "received"});
  const double capacity = static_cast<double>(4 * horizon);
  const char* kinds[] = {"3 steady hogs", "short-job churn (2x200ms)", "8 compile jobs"};
  const double purchased[] = {50.0, 30.0, 20.0};
  for (int cls = 1; cls <= 3; ++cls) {
    table.AddRow({"domain-" + std::string(1, static_cast<char>('A' + cls - 1)),
                  kinds[cls - 1], Table::Cell(purchased[cls - 1], 0) + "%",
                  Table::Cell(100.0 * static_cast<double>(scheduler.ClassService(cls)) / capacity,
                              1) +
                      "%"});
  }
  table.Print(std::cout);
  std::cout << "\nNote: domain B's churning jobs keep only ~2 threads runnable, so its\n"
            << "capacity cap is min(p, runnable)/p; with 4 CPUs it can consume at most\n"
            << "2 CPUs-worth — above its 30% purchase, so the purchase binds, not the cap.\n";
  return 0;
}

// Extensions E2/E3: the SFS latency warp and the feedback weight controller
// (Section 5 future work: SMART-style priorities / BVT-style latency on top of
// a GMS scheduler, and progress-based weight regulation).
//
// Part 1 — warp: an interactive task competes with 3 hogs on one CPU at equal
// weights; sweeping its warp trades dispatch latency without changing shares.
//
// Part 2 — feedback: a managed task must hold a 30% machine share while the
// number of competitors changes; the controller re-converges after each change.

#include <iostream>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/sched/feedback.h"
#include "src/sched/sfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace {

using namespace sfs;

struct WarpOutcome {
  double mean_response_ms = 0.0;
  double interact_share = 0.0;
};

WarpOutcome RunWarp(double warp_ms) {
  sched::SchedConfig config;
  config.num_cpus = 1;
  sched::Sfs scheduler(config);
  sim::Engine engine(scheduler);
  common::SampleSet responses;
  workload::Interact::Params params;
  params.mean_think = Msec(80);
  params.burst = Msec(4);
  params.seed = 21;
  engine.AddTaskAt(0, workload::MakeInteract(1, 1.0, params, &responses, "i"));
  for (sched::ThreadId tid = 2; tid <= 4; ++tid) {
    engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, "hog"));
  }
  engine.RunUntil(Msec(10));
  scheduler.SetWarp(1, warp_ms * 1000.0);
  engine.RunUntil(Sec(60));
  WarpOutcome out;
  out.mean_response_ms = responses.mean();
  out.interact_share =
      static_cast<double>(engine.Service(1)) / static_cast<double>(Sec(60));
  return out;
}

}  // namespace

int main() {
  using common::Table;

  std::cout << "=== Extension E2: SFS latency warp ===\n"
            << "1 CPU; Interact (4ms bursts) vs 3 hogs, equal weights, 200ms quantum.\n\n";
  Table warp_table({"warp (ms)", "mean response (ms)", "interact CPU share"});
  for (const double warp : {0.0, 25.0, 50.0, 100.0, 200.0, 400.0}) {
    const WarpOutcome out = RunWarp(warp);
    warp_table.AddRow({Table::Cell(warp, 0), Table::Cell(out.mean_response_ms, 2),
                       Table::Cell(out.interact_share, 4)});
  }
  warp_table.Print(std::cout);
  std::cout << "\nExpected: response time falls toward the burst length as warp grows while\n"
            << "the CPU share column stays flat — latency decoupled from bandwidth.\n\n";

  std::cout << "=== Extension E3: feedback weight control ===\n"
            << "2 CPUs; managed task targets a 30% machine share; competitors double at\n"
            << "t=20s and halve at t=40s.\n\n";
  sched::SchedConfig config;
  config.num_cpus = 2;
  config.quantum = Msec(20);
  sched::Sfs scheduler(config);
  sim::Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "managed"));
  for (sched::ThreadId tid = 2; tid <= 4; ++tid) {
    engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, "bg"));
  }
  engine.AddTaskAt(Sec(20), workload::MakeInf(5, 1.0, "bg"));
  engine.AddTaskAt(Sec(20), workload::MakeInf(6, 1.0, "bg"));
  engine.RunUntil(Msec(1));

  sched::WeightController::Params params;
  params.target_share = 0.30;
  sched::WeightController controller(scheduler, 1, params);
  Table fb_table({"t (s)", "observed share", "controller weight"});
  Tick last_service = 0;
  engine.AddPeriodicHook(Msec(500), [&](sim::Engine& e) {
    const Tick now_service = e.ServiceIncludingRunning(1);
    controller.Observe(now_service - last_service, Msec(500));
    last_service = now_service;
    if ((e.now() / Msec(500)) % 8 == 0) {  // print every 4 s
      fb_table.AddRow({Table::Cell(ToSeconds(e.now()), 1),
                       Table::Cell(controller.last_observed_share(), 3),
                       Table::Cell(controller.current_weight(), 3)});
    }
  });
  engine.RunUntil(Sec(40));
  engine.KillTask(5);
  engine.KillTask(6);
  engine.RunUntil(Sec(60));
  fb_table.Print(std::cout);
  std::cout << "\nExpected: the observed share re-converges to 0.30 after each load change,\n"
            << "with the weight rising for the crowded phase and falling back after.\n";
  return 0;
}

// Extensions E2/E3: the SFS latency warp and the feedback weight controller
// (Section 5 future work: SMART-style priorities / BVT-style latency on top of
// a GMS scheduler, and progress-based weight regulation).
//
// E2 — warp: an interactive task competes with 3 hogs on one CPU at equal
// weights; sweeping its warp trades dispatch latency without changing shares.
//
// E3 — feedback: a managed task must hold a 30% machine share while the
// number of competitors changes; the controller re-converges after each change.

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"
#include "src/sched/feedback.h"
#include "src/sched/sfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace {

using namespace sfs;

struct WarpOutcome {
  double mean_response_ms = 0.0;
  double interact_share = 0.0;
};

WarpOutcome RunWarp(double warp_ms, std::uint64_t seed) {
  sched::SchedConfig config;
  config.num_cpus = 1;
  sched::Sfs scheduler(config);
  sim::Engine engine(scheduler);
  common::SampleSet responses;
  workload::Interact::Params params;
  params.mean_think = Msec(80);
  params.burst = Msec(4);
  params.seed = seed;
  engine.AddTaskAt(0, workload::MakeInteract(1, 1.0, params, &responses, "i"));
  for (sched::ThreadId tid = 2; tid <= 4; ++tid) {
    engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, "hog"));
  }
  engine.RunUntil(Msec(10));
  scheduler.SetWarp(1, warp_ms * 1000.0);
  engine.RunUntil(Sec(60));
  WarpOutcome out;
  out.mean_response_ms = responses.mean();
  out.interact_share =
      static_cast<double>(engine.Service(1)) / static_cast<double>(Sec(60));
  return out;
}

}  // namespace

SFS_EXPERIMENT(ext_warp,
               .description = "Extension E2: latency warp trades response time, not shares",
               .schedulers = {"sfs"}) {
  using common::Table;
  using harness::JsonValue;

  reporter.out() << "=== Extension E2: SFS latency warp ===\n"
                 << "1 CPU; Interact (4ms bursts) vs 3 hogs, equal weights, 200ms quantum.\n\n";
  Table warp_table({"warp (ms)", "mean response (ms)", "interact CPU share"});
  JsonValue rows = JsonValue::Array();
  for (const double warp : {0.0, 25.0, 50.0, 100.0, 200.0, 400.0}) {
    const WarpOutcome out = RunWarp(warp, reporter.seed() / 2);
    warp_table.AddRow({Table::Cell(warp, 0), Table::Cell(out.mean_response_ms, 2),
                       Table::Cell(out.interact_share, 4)});
    JsonValue entry = JsonValue::Object();
    entry.Set("warp_ms", JsonValue(warp));
    entry.Set("mean_response_ms", JsonValue(out.mean_response_ms));
    entry.Set("interact_cpu_share", JsonValue(out.interact_share));
    rows.Push(std::move(entry));
  }
  warp_table.Print(reporter.out());
  reporter.out() << "\nExpected: response time falls toward the burst length as warp grows "
                    "while\nthe CPU share column stays flat — latency decoupled from "
                    "bandwidth.\n";
  reporter.Set("rows", std::move(rows));
}

SFS_EXPERIMENT(ext_feedback,
               .description = "Extension E3: feedback controller holds a 30% machine share",
               .schedulers = {"sfs"}) {
  using common::Table;
  using harness::JsonValue;

  reporter.out() << "=== Extension E3: feedback weight control ===\n"
                 << "2 CPUs; managed task targets a 30% machine share; competitors double at\n"
                 << "t=20s and halve at t=40s.\n\n";
  sched::SchedConfig config;
  config.num_cpus = 2;
  config.quantum = Msec(20);
  sched::Sfs scheduler(config);
  sim::Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "managed"));
  for (sched::ThreadId tid = 2; tid <= 4; ++tid) {
    engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, "bg"));
  }
  engine.AddTaskAt(Sec(20), workload::MakeInf(5, 1.0, "bg"));
  engine.AddTaskAt(Sec(20), workload::MakeInf(6, 1.0, "bg"));
  engine.RunUntil(Msec(1));

  sched::WeightController::Params params;
  params.target_share = 0.30;
  sched::WeightController controller(scheduler, 1, params);
  Table fb_table({"t (s)", "observed share", "controller weight"});
  JsonValue rows = JsonValue::Array();
  Tick last_service = 0;
  engine.AddPeriodicHook(Msec(500), [&](sim::Engine& e) {
    const Tick now_service = e.ServiceIncludingRunning(1);
    controller.Observe(now_service - last_service, Msec(500));
    last_service = now_service;
    if ((e.now() / Msec(500)) % 8 == 0) {  // record every 4 s
      fb_table.AddRow({Table::Cell(ToSeconds(e.now()), 1),
                       Table::Cell(controller.last_observed_share(), 3),
                       Table::Cell(controller.current_weight(), 3)});
      JsonValue entry = JsonValue::Object();
      entry.Set("t_s", JsonValue(ToSeconds(e.now())));
      entry.Set("observed_share", JsonValue(controller.last_observed_share()));
      entry.Set("controller_weight", JsonValue(controller.current_weight()));
      rows.Push(std::move(entry));
    }
  });
  engine.RunUntil(Sec(40));
  engine.KillTask(5);
  engine.KillTask(6);
  engine.RunUntil(Sec(60));
  fb_table.Print(reporter.out());
  reporter.out() << "\nExpected: the observed share re-converges to 0.30 after each load "
                    "change,\nwith the weight rising for the crowded phase and falling back "
                    "after.\n";
  reporter.Set("target_share", JsonValue(0.30));
  reporter.Set("samples", std::move(rows));
  reporter.Metric("final_observed_share", controller.last_observed_share());
  reporter.Metric("final_weight", controller.current_weight());
}

// Figure 5 (Section 4.3): the short jobs problem — SFQ vs SFS.
//
// 2 CPUs: T1 (w=20), T2-T21 (20 threads of w=1), and a chain of short jobs
// (w=5, 300 ms CPU each, one at a time).  Requested shares are 20:20:5 = 4:4:1.
// Paper: SFQ gives each group roughly equal bandwidth; SFS delivers ~4:4:1.

#include <ostream>

#include "src/common/table.h"
#include "src/eval/scenarios.h"
#include "src/harness/registry.h"
#include "src/harness/runner.h"

namespace {

using sfs::common::Table;
using sfs::harness::JsonValue;

struct Ratios {
  double group_to_t1 = 0.0;
  double shorts_to_t1 = 0.0;
};

Ratios FinalRatios(const sfs::eval::SeriesResult& result) {
  const double t1 = static_cast<double>(result.Of("T1").back());
  return {static_cast<double>(result.Of("T2-21").back()) / t1,
          static_cast<double>(result.Of("T_short").back()) / t1};
}

void PrintSeries(std::ostream& os, const sfs::eval::SeriesResult& result) {
  Table table({"t (s)", "T1 (ms)", "T2-21 (ms)", "T_short (ms)"});
  const auto& times = result.times;
  for (std::size_t i = 3; i < times.size(); i += 4) {  // every 2 s
    table.AddRow({Table::Cell(sfs::ToSeconds(times[i]), 1),
                  Table::Cell(result.Of("T1")[i] / sfs::kTicksPerMsec),
                  Table::Cell(result.Of("T2-21")[i] / sfs::kTicksPerMsec),
                  Table::Cell(result.Of("T_short")[i] / sfs::kTicksPerMsec)});
  }
  table.Print(os);
  const Ratios ratios = FinalRatios(result);
  os << "final ratio T1 : T2-21 : T_short = " << 1.0 << " : " << ratios.group_to_t1 << " : "
     << ratios.shorts_to_t1 << "   (requested 1 : 1 : 0.25)\n\n";
}

JsonValue RatiosToJson(const sfs::eval::SeriesResult& result) {
  const Ratios ratios = FinalRatios(result);
  JsonValue entry = JsonValue::Object();
  entry.Set("scheduler", JsonValue(result.scheduler_name));
  entry.Set("t1_final_ms", JsonValue(result.Of("T1").back() / sfs::kTicksPerMsec));
  entry.Set("group_to_t1", JsonValue(ratios.group_to_t1));
  entry.Set("shorts_to_t1", JsonValue(ratios.shorts_to_t1));
  return entry;
}

}  // namespace

SFS_EXPERIMENT(fig5_short_jobs,
               .description = "Figure 5: short-job chain allocation, SFQ vs SFS",
               .schedulers = {"sfq", "sfs"}) {
  using sfs::sched::SchedKind;

  reporter.out() << "=== Figure 5: the short jobs problem ===\n"
                 << "2 CPUs; T1(w=20), T2-T21(20 x w=1), T_short chain (w=5, 300ms each).\n\n";

  reporter.out() << "--- Figure 5(a): SFQ ---\n";
  const auto sfq_run = sfs::eval::RunFig5(SchedKind::kSfq);
  PrintSeries(reporter.out(), sfq_run);

  reporter.out() << "--- Figure 5(b): SFS ---\n";
  const auto sfs_run = sfs::eval::RunFig5(SchedKind::kSfs);
  PrintSeries(reporter.out(), sfs_run);

  JsonValue cases = JsonValue::Array();
  cases.Push(RatiosToJson(sfq_run));
  cases.Push(RatiosToJson(sfs_run));
  reporter.Set("requested_group_to_t1", JsonValue(1.0));
  reporter.Set("requested_shorts_to_t1", JsonValue(0.25));
  reporter.Set("cases", std::move(cases));

  // The residual short-job bonus under SFS at q=200ms is tag quantization (each
  // arriving short restarts at the virtual time, and tags advance in steps of
  // q/phi); it vanishes as the quantum shrinks.
  reporter.out() << "--- quantum sensitivity of the SFS allocation ---\n";
  Table sweep({"quantum (ms)", "T2-21 / T1", "T_short / T1", "requested"});
  JsonValue sweep_rows = JsonValue::Array();
  for (const sfs::Tick q : {sfs::Msec(200), sfs::Msec(100), sfs::Msec(50), sfs::Msec(20)}) {
    const auto s = sfs::eval::RunFig5(SchedKind::kSfs, sfs::Sec(30), q);
    const Ratios ratios = FinalRatios(s);
    sweep.AddRow({Table::Cell(q / sfs::kTicksPerMsec), Table::Cell(ratios.group_to_t1, 3),
                  Table::Cell(ratios.shorts_to_t1, 3), "1 : 0.25"});
    JsonValue entry = JsonValue::Object();
    entry.Set("quantum_ms", JsonValue(q / sfs::kTicksPerMsec));
    entry.Set("group_to_t1", JsonValue(ratios.group_to_t1));
    entry.Set("shorts_to_t1", JsonValue(ratios.shorts_to_t1));
    sweep_rows.Push(std::move(entry));
  }
  sweep.Print(reporter.out());
  reporter.Set("quantum_sweep", std::move(sweep_rows));
}

// Figure 5 (Section 4.3): the short jobs problem — SFQ vs SFS.
//
// 2 CPUs: T1 (w=20), T2-T21 (20 threads of w=1), and a chain of short jobs
// (w=5, 300 ms CPU each, one at a time).  Requested shares are 20:20:5 = 4:4:1.
// Paper: SFQ gives each group roughly equal bandwidth; SFS delivers ~4:4:1.

#include <iostream>

#include "src/common/table.h"
#include "src/eval/scenarios.h"

namespace {

void PrintSeries(const sfs::eval::SeriesResult& result) {
  using sfs::common::Table;
  Table table({"t (s)", "T1 (ms)", "T2-21 (ms)", "T_short (ms)"});
  const auto& times = result.times;
  for (std::size_t i = 3; i < times.size(); i += 4) {  // every 2 s
    table.AddRow({Table::Cell(sfs::ToSeconds(times[i]), 1),
                  Table::Cell(result.Of("T1")[i] / sfs::kTicksPerMsec),
                  Table::Cell(result.Of("T2-21")[i] / sfs::kTicksPerMsec),
                  Table::Cell(result.Of("T_short")[i] / sfs::kTicksPerMsec)});
  }
  table.Print(std::cout);
  const double t1 = static_cast<double>(result.Of("T1").back());
  const double group = static_cast<double>(result.Of("T2-21").back());
  const double shorts = static_cast<double>(result.Of("T_short").back());
  std::cout << "final ratio T1 : T2-21 : T_short = " << 1.0 << " : " << group / t1 << " : "
            << shorts / t1 << "   (requested 1 : 1 : 0.25)\n\n";
}

}  // namespace

int main() {
  using sfs::sched::SchedKind;

  std::cout << "=== Figure 5: the short jobs problem ===\n"
            << "2 CPUs; T1(w=20), T2-T21(20 x w=1), T_short chain (w=5, 300ms each).\n\n";

  std::cout << "--- Figure 5(a): SFQ ---\n";
  PrintSeries(sfs::eval::RunFig5(SchedKind::kSfq));

  std::cout << "--- Figure 5(b): SFS ---\n";
  PrintSeries(sfs::eval::RunFig5(SchedKind::kSfs));

  // The residual short-job bonus under SFS at q=200ms is tag quantization (each
  // arriving short restarts at the virtual time, and tags advance in steps of
  // q/phi); it vanishes as the quantum shrinks.
  std::cout << "--- quantum sensitivity of the SFS allocation ---\n";
  sfs::common::Table sweep({"quantum (ms)", "T2-21 / T1", "T_short / T1", "requested"});
  for (const sfs::Tick q : {sfs::Msec(200), sfs::Msec(100), sfs::Msec(50), sfs::Msec(20)}) {
    const auto s = sfs::eval::RunFig5(SchedKind::kSfs, sfs::Sec(30), q);
    const double t1 = static_cast<double>(s.Of("T1").back());
    sweep.AddRow({sfs::common::Table::Cell(q / sfs::kTicksPerMsec),
                  sfs::common::Table::Cell(static_cast<double>(s.Of("T2-21").back()) / t1, 3),
                  sfs::common::Table::Cell(static_cast<double>(s.Of("T_short").back()) / t1, 3),
                  "1 : 0.25"});
  }
  sweep.Print(std::cout);
  return 0;
}

// Integration tests asserting the paper's experimental claims end-to-end:
// every figure's qualitative result (who starves, who is proportional, who is
// isolated) must reproduce in the simulator.  These are the repository's
// ground-truth checks; the bench binaries print the same scenarios as tables.

#include <gtest/gtest.h>

#include "src/eval/scenarios.h"
#include "src/metrics/fairness.h"

namespace sfs::eval {
namespace {

using sched::SchedKind;

// --- Example 1 / Figure 1: the infeasible weights problem -----------------------

TEST(Example1Test, SfqWithoutReadjustmentStarvesT1) {
  const auto result = RunExample1(SchedKind::kSfq, /*readjust=*/false);
  // T1 starves for ~0.9 s (900 quanta of 1 ms) after T3 arrives at t=1s.
  EXPECT_GT(result.t1_starvation, Msec(700));
}

TEST(Example1Test, ReadjustmentEliminatesStarvation) {
  const auto result = RunExample1(SchedKind::kSfq, /*readjust=*/true);
  EXPECT_LT(result.t1_starvation, Msec(50));
}

TEST(Example1Test, SfsEliminatesStarvation) {
  const auto result = RunExample1(SchedKind::kSfs, /*readjust=*/true);
  EXPECT_LT(result.t1_starvation, Msec(50));
}

TEST(Example1Test, StrideAndWfqShareThePathology) {
  // "Many recently proposed GPS-based algorithms ... also suffer from this
  // drawback": stride and WFQ starve T1 without readjustment too.
  EXPECT_GT(RunExample1(SchedKind::kStride, false).t1_starvation, Msec(700));
  EXPECT_GT(RunExample1(SchedKind::kWfq, false).t1_starvation, Msec(500));
}

TEST(Example1Test, ReadjustmentRepairsStrideAndWfq) {
  EXPECT_LT(RunExample1(SchedKind::kStride, true).t1_starvation, Msec(50));
  EXPECT_LT(RunExample1(SchedKind::kWfq, true).t1_starvation, Msec(50));
}

// --- Example 2: frequent arrivals/departures with feasible weights --------------

TEST(Example2Test, SfqOverServesShortJobs) {
  const auto result = RunExample2(SchedKind::kSfq);
  // Requested ratio is 15:50 = 0.3; SFQ gives each short job "as much processor
  // bandwidth as the [heavy] thread" — ratio near 1.
  EXPECT_GT(result.shorts_to_heavy_ratio, 0.8);
}

TEST(Example2Test, SfsKeepsShortJobsCloserToProportional) {
  const auto sfs = RunExample2(SchedKind::kSfs);
  const auto sfq = RunExample2(SchedKind::kSfq);
  // SFS pulls the chain well below SFQ's misallocation, toward the requested
  // 0.3 (it stays above it by a tag-quantization factor at the 200 ms quantum).
  EXPECT_LT(sfs.shorts_to_heavy_ratio, 0.65);
  EXPECT_GT(sfs.shorts_to_heavy_ratio, 0.2);
  EXPECT_LT(sfs.shorts_to_heavy_ratio, sfq.shorts_to_heavy_ratio - 0.25);
}

// --- Figure 3: heuristic accuracy ------------------------------------------------

TEST(Fig3Test, AccuracyHighAtK20) {
  // "examining the first 20 threads in each queue provides sufficient accuracy
  // (> 99%) even when the number of runnable threads is as large as 400."
  EXPECT_GT(HeuristicAccuracy(/*runnable=*/400, /*k=*/20), 99.0);
}

TEST(Fig3Test, AccuracyImprovesWithK) {
  const double k1 = HeuristicAccuracy(200, 1);
  const double k5 = HeuristicAccuracy(200, 5);
  const double k20 = HeuristicAccuracy(200, 20);
  EXPECT_LE(k1, k5 + 1e-9);
  EXPECT_LE(k5, k20 + 1e-9);
  EXPECT_GT(k20, 99.0);
}

TEST(Fig3Test, ExactWhenKCoversQueue) {
  EXPECT_DOUBLE_EQ(HeuristicAccuracy(100, 100), 100.0);
}

// --- Figure 4: impact of the weight readjustment algorithm ----------------------

TEST(Fig4Test, SfqWithoutReadjustmentStarvesT1AtT3Arrival) {
  const auto series = RunFig4(SchedKind::kSfq, /*readjust=*/false);
  // T1 makes no progress for many seconds after T3 arrives at t=15s.
  EXPECT_GT(metrics::LongestStarvation(series.Of("T1"), Msec(500)), Sec(5));
}

TEST(Fig4Test, SfqWithReadjustmentAllocatesProportionally) {
  const auto series = RunFig4(SchedKind::kSfq, /*readjust=*/true);
  EXPECT_LT(metrics::LongestStarvation(series.Of("T1"), Msec(500)), Sec(1));

  const auto& times = series.times;
  const auto& t1 = series.Of("T1");
  const auto& t2 = series.Of("T2");
  const auto& t3 = series.Of("T3");
  // Interval [0, 15): T1 and T2 readjusted to 1:1 (each one full CPU).
  std::size_t i15 = 0;
  std::size_t i30 = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] <= Sec(15)) {
      i15 = i;
    }
    if (times[i] <= Sec(30)) {
      i30 = i;
    }
  }
  EXPECT_NEAR(static_cast<double>(t1[i15]) / static_cast<double>(t2[i15]), 1.0, 0.05);
  // Interval [15, 30): weights 1:10:1 readjust to 1:2:1.
  const double d1 = static_cast<double>(t1[i30] - t1[i15]);
  const double d2 = static_cast<double>(t2[i30] - t2[i15]);
  const double d3 = static_cast<double>(t3[i30] - t3[i15]);
  EXPECT_NEAR(d2 / d1, 2.0, 0.2);
  EXPECT_NEAR(d3 / d1, 1.0, 0.1);
  // After T2 departs at 30s: T1 and T3 each get a full CPU.
  const double e1 = static_cast<double>(t1.back() - t1[i30]);
  const double e3 = static_cast<double>(t3.back() - t3[i30]);
  EXPECT_NEAR(e3 / e1, 1.0, 0.1);
}

TEST(Fig4Test, SfsMatchesReadjustedAllocation) {
  const auto series = RunFig4(SchedKind::kSfs, /*readjust=*/true);
  EXPECT_LT(metrics::LongestStarvation(series.Of("T1"), Msec(500)), Sec(1));
  // Slope ratio over [16s, 29.5s) — the 1:2:1 interval before T2 departs.
  const auto& t1 = series.Of("T1");
  const auto& t2 = series.Of("T2");
  std::size_t i16 = 0;
  std::size_t i29 = 0;
  for (std::size_t i = 0; i < series.times.size(); ++i) {
    if (series.times[i] <= Sec(16)) {
      i16 = i;
    }
    if (series.times[i] <= Msec(29500)) {
      i29 = i;
    }
  }
  const double d1 = static_cast<double>(t1[i29] - t1[i16]);
  const double d2 = static_cast<double>(t2[i29] - t2[i16]);
  EXPECT_NEAR(d2 / d1, 2.0, 0.25);
}

// --- Figure 5: the short jobs problem --------------------------------------------

TEST(Fig5Test, SfqMisallocatesUnderChurn) {
  const auto series = RunFig5(SchedKind::kSfq);
  const double t1 = static_cast<double>(series.Of("T1").back());
  const double shorts = static_cast<double>(series.Of("T_short").back());
  // Requested T1:T_short is 4:1, but SFQ gives the short jobs roughly as much
  // as T1 ("each set of tasks receives approximately an equal share").
  EXPECT_GT(shorts / t1, 0.65);
}

TEST(Fig5Test, SfsRestoresRequestedProportions) {
  const auto series = RunFig5(SchedKind::kSfs);
  const double t1 = static_cast<double>(series.Of("T1").back());
  const double group = static_cast<double>(series.Of("T2-21").back());
  const double shorts = static_cast<double>(series.Of("T_short").back());
  // 20 : 20x1 : 5 -> 4 : 4 : 1.  At the paper's 200 ms quantum the short-job
  // chain retains a tag-quantization bonus (see EXPERIMENTS.md), so the check is
  // "close to 4:4:1 and clearly better than SFQ", with the exact ratio verified
  // at a finer quantum below.
  EXPECT_NEAR(group / t1, 1.0, 0.2);
  EXPECT_GT(t1 / shorts, 2.0);
  const auto sfq = RunFig5(SchedKind::kSfq);
  EXPECT_LT(shorts / t1,
            static_cast<double>(sfq.Of("T_short").back()) /
                static_cast<double>(sfq.Of("T1").back()) -
                0.25);
}

TEST(Fig5Test, SfsExactAtFineQuantum) {
  // With 20 ms quanta the discretization vanishes and SFS delivers 4:4:1.
  const auto series = RunFig5(SchedKind::kSfs, Sec(30), Msec(20));
  const double t1 = static_cast<double>(series.Of("T1").back());
  const double group = static_cast<double>(series.Of("T2-21").back());
  const double shorts = static_cast<double>(series.Of("T_short").back());
  EXPECT_NEAR(group / t1, 1.0, 0.05);
  EXPECT_NEAR(t1 / shorts, 4.0, 0.5);
}

// --- Figure 6(a): proportionate allocation ---------------------------------------

class Fig6aTest : public ::testing::TestWithParam<int> {};

TEST_P(Fig6aTest, DhrystoneRatioTracksWeights) {
  const int wb = GetParam();
  const auto result = RunFig6a(SchedKind::kSfs, 1, wb);
  EXPECT_NEAR(result.ratio, static_cast<double>(wb), 0.1 * wb);
}

INSTANTIATE_TEST_SUITE_P(WeightRatios, Fig6aTest, ::testing::Values(1, 2, 4, 7));

// --- Figure 6(b): application isolation ------------------------------------------

TEST(Fig6bTest, SfsIsolatesDecoderFromCompilations) {
  const double fps0 = RunFig6b(SchedKind::kSfs, 0);
  const double fps10 = RunFig6b(SchedKind::kSfs, 10);
  EXPECT_NEAR(fps0, 30.0, 1.5);
  // "SFS is able to isolate the video decoder from the compilation workload."
  EXPECT_GT(fps10, 27.0);
}

TEST(Fig6bTest, TimeSharingDegradesWithLoad) {
  const double fps1 = RunFig6b(SchedKind::kTimeshare, 1);
  const double fps10 = RunFig6b(SchedKind::kTimeshare, 10);
  EXPECT_GT(fps1, 25.0);  // lightly loaded: fine
  // "...whereas the Linux time sharing scheduler causes the processor share of
  // the decoder to drop with increasing load."
  EXPECT_LT(fps10, 15.0);
  EXPECT_LT(fps10, fps1 * 0.6);
}

// --- Figure 6(c): interactive performance ----------------------------------------

TEST(Fig6cTest, SfsKeepsResponseTimesLow) {
  const auto stats = RunFig6c(SchedKind::kSfs, 10);
  EXPECT_GT(stats.samples, 200u);
  EXPECT_LT(stats.mean_ms, 20.0);
}

TEST(Fig6cTest, ComparableToTimeSharing) {
  const auto sfs = RunFig6c(SchedKind::kSfs, 8);
  const auto ts = RunFig6c(SchedKind::kTimeshare, 8);
  // "SFS provides response times that are comparable to the time sharing
  // scheduler": same order of magnitude, both small.
  EXPECT_LT(sfs.mean_ms, 20.0);
  EXPECT_LT(ts.mean_ms, 20.0);
}

TEST(Fig6cTest, ResponseTimeGrowsSlowlyWithLoad) {
  const auto light = RunFig6c(SchedKind::kSfs, 1);
  const auto heavy = RunFig6c(SchedKind::kSfs, 10);
  EXPECT_LT(light.mean_ms, heavy.mean_ms + 10.0);
  EXPECT_LT(heavy.mean_ms, 25.0);
}

}  // namespace
}  // namespace sfs::eval

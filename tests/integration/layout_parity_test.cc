// Layout-parity differential: this PR packed the hot scheduler fields into a
// cache-line row (sched::EntityHotRow), split sim::Task hot/cold, and taught
// the engine to drain each timing-wheel tick as a batch — none of which may
// change which thread is picked, ever.  Two guards:
//
//  1. Batched vs unbatched wheel drain (EngineConfig::batch_drain) must be
//     byte-identical for every scheduler kind on randomized workloads, the
//     same differential shape as event_queue_fuzz_test.
//  2. Golden fingerprints: the run/lifecycle FNV-1a fingerprints for seed 1,
//     recorded from the pre-refactor AoS build (verified byte-identical to
//     this build over the full fig/abl suite when the PR landed), are pinned
//     as constants.  A future layout change that silently perturbs schedules
//     breaks these even if it perturbs both drain modes identically.
//
// SFS_FUZZ_SEEDS bounds the seeds tried per policy (default 6), as in
// fuzz_test.cc.  The golden constants always use seed 1.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/fingerprint.h"
#include "src/common/rng.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::eval {
namespace {

using sched::SchedKind;
using sched::ThreadId;

struct TraceResult {
  std::uint64_t run_fingerprint = 0;
  std::uint64_t lifecycle_fingerprint = 0;
  std::vector<Tick> services;
  std::int64_t events = 0;
  std::int64_t dispatches = 0;
  std::int64_t preemptions = 0;
  Tick idle = 0;
  Tick ctx_cost = 0;

  bool operator==(const TraceResult&) const = default;
};

// One randomized workload on the timing wheel, batched or unbatched drain.
// All randomness flows through Rng(seed) (no environment overrides: the
// golden constants below depend on the seed alone), so two runs with the same
// seed diverge only if the drain modes disagree on event order.
TraceResult RunOnce(SchedKind kind, std::uint64_t seed, bool batch_drain) {
  common::Rng rng(seed);
  sched::SchedConfig config;
  config.num_cpus = static_cast<int>(rng.UniformInt(1, 4));
  config.quantum = Msec(rng.UniformInt(5, 200));
  config.queue_backend =
      rng.Bernoulli(0.5) ? sched::QueueBackend::kSkipList : sched::QueueBackend::kSortedList;
  SchedKind effective_kind = kind;
  if (const auto sharded_kind = sched::ShardedKindFor(kind); sharded_kind.has_value()) {
    if (rng.Bernoulli(0.5)) {
      effective_kind = *sharded_kind;
      config.shard_steal = rng.Bernoulli(0.75) ? sched::ShardStealPolicy::kMaxSurplus
                                               : sched::ShardStealPolicy::kNone;
      config.shard_rebalance_period =
          rng.Bernoulli(0.5) ? static_cast<int>(rng.UniformInt(4, 256)) : 0;
      config.shard_coupling = 0.5 * static_cast<double>(rng.UniformInt(0, 2));
    }
  }
  auto scheduler = CreateScheduler(effective_kind, config);

  sim::EngineConfig engine_config;
  engine_config.context_switch_cost = Usec(rng.UniformInt(0, 500));
  engine_config.event_queue = sim::EventQueueKind::kTimingWheel;
  engine_config.batch_drain = batch_drain;
  sim::Engine engine(*scheduler, engine_config);

  TraceResult result;
  common::Fnv1a run_fp;
  common::Fnv1a life_fp;
  engine.SetRunIntervalHook(
      [&run_fp](Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
        run_fp.Mix(static_cast<std::uint64_t>(start));
        run_fp.Mix(static_cast<std::uint64_t>(len));
        run_fp.Mix(static_cast<std::uint64_t>(cpu));
        run_fp.Mix(static_cast<std::uint64_t>(tid));
      });
  engine.SetSchedEventHook(
      [&life_fp](sim::SchedEvent event, const sim::Task& task, Tick now) {
        life_fp.Mix(static_cast<std::uint64_t>(event));
        life_fp.Mix(static_cast<std::uint64_t>(task.tid()));
        life_fp.Mix(static_cast<std::uint64_t>(now));
      });

  ThreadId next_tid = 1;
  std::vector<ThreadId> hogs;
  const int n_hogs = static_cast<int>(rng.UniformInt(1, 6));
  for (int i = 0; i < n_hogs; ++i) {
    hogs.push_back(next_tid);
    engine.AddTaskAt(Msec(rng.UniformInt(0, 2000)),
                     workload::MakeInf(next_tid++, static_cast<double>(rng.UniformInt(1, 30)),
                                       "hog"));
  }
  const int n_interact = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < n_interact; ++i) {
    workload::Interact::Params params;
    params.mean_think = Msec(rng.UniformInt(20, 200));
    params.burst = Msec(rng.UniformInt(1, 10));
    params.seed = seed + static_cast<std::uint64_t>(i);
    engine.AddTaskAt(Msec(rng.UniformInt(0, 1000)),
                     workload::MakeInteract(next_tid++, 1.0, params, nullptr, "interact"));
  }
  // Same-tick arrivals via the exit hook: the batched drain's hardest case —
  // DrainCurrent must pick re-pushed events up behind the detached chain in
  // exactly PopFront() order.
  engine.SetExitHook([&next_tid, &rng](sim::Engine& e, sim::Task& task) {
    if (task.label() == "short") {
      e.AddTaskAt(e.now() + Msec(rng.UniformInt(0, 50)),
                  workload::MakeFixedWork(next_tid++, static_cast<double>(rng.UniformInt(1, 10)),
                                          Msec(rng.UniformInt(10, 400)), "short"));
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 2.0, Msec(100), "short"));

  // Mid-run weight surgery and a kill: exercises the detach/attach paths and
  // the live-list swap-and-pop while queues are hot.
  engine.AddPeriodicHook(Msec(777), [&](sim::Engine& e) {
    if (!hogs.empty() && e.HasTask(hogs[0])) {
      const auto state = e.task(hogs[0]).state();
      if (state != sim::Task::State::kExited && state != sim::Task::State::kNew &&
          rng.Bernoulli(0.5)) {
        e.scheduler().SetWeight(hogs[0], static_cast<double>(rng.UniformInt(1, 50)));
      }
    }
  });
  const Tick kill_at = Msec(rng.UniformInt(2500, 5000));
  engine.AddPeriodicHook(kill_at, [&, done = false](sim::Engine& e) mutable {
    if (!done && hogs.size() > 1 && e.HasTask(hogs[1]) &&
        e.task(hogs[1]).state() != sim::Task::State::kExited) {
      e.KillTask(hogs[1]);
      done = true;
    }
  });

  engine.RunUntil(Sec(10));

  engine.ForEachTask(
      [&](const sim::Task& task) { result.services.push_back(engine.Service(task.tid())); });
  result.run_fingerprint = run_fp.value();
  result.lifecycle_fingerprint = life_fp.value();
  result.events = engine.events_processed();
  result.dispatches = engine.dispatches();
  result.preemptions = engine.preemptions();
  result.idle = engine.idle_time();
  result.ctx_cost = engine.total_context_switch_cost();
  return result;
}

std::uint64_t FuzzSeedCount() {
  if (const char* env = std::getenv("SFS_FUZZ_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::uint64_t>(parsed);
    }
  }
  return 6;
}

// Seed-1 fingerprints recorded from the pre-SoA (AoS Entity, per-event drain)
// build.  Regenerate by printing RunOnce(kind, 1, *) only if a deliberate
// schedule-affecting change lands — never to paper over an accidental one.
struct Golden {
  SchedKind kind;
  std::uint64_t run_fingerprint;
  std::uint64_t lifecycle_fingerprint;
};
constexpr Golden kGoldenSeed1[] = {
    {SchedKind::kSfs, 0x459d8a0cdb6aec1dULL, 0xde697eef39eb32cfULL},
    {SchedKind::kHsfs, 0x5a2009a9f9770094ULL, 0xea51daadf4ddfa30ULL},
    {SchedKind::kSfq, 0xea4635f40c431408ULL, 0xfed8e417e8e09c8bULL},
    {SchedKind::kStride, 0xea4635f40c431408ULL, 0xfed8e417e8e09c8bULL},
    {SchedKind::kWfq, 0x9ab149dfe103c7cdULL, 0xbf71a08792a9aa0bULL},
    {SchedKind::kBvt, 0xea4635f40c431408ULL, 0xfed8e417e8e09c8bULL},
    {SchedKind::kTimeshare, 0xca386a1064bacb97ULL, 0x0d27f79ffc00d613ULL},
    {SchedKind::kRoundRobin, 0x05d99b4e5b49b1c1ULL, 0xfd144bc7f4fd83f1ULL},
    {SchedKind::kLottery, 0xcbc9b7bcd1680fa9ULL, 0x0742f8292ba8e781ULL},
};

class LayoutParityTest : public ::testing::TestWithParam<SchedKind> {};

TEST_P(LayoutParityTest, BatchedAndUnbatchedDrainsAreByteIdentical) {
  for (std::uint64_t seed = 1; seed <= FuzzSeedCount(); ++seed) {
    const TraceResult batched = RunOnce(GetParam(), seed, /*batch_drain=*/true);
    const TraceResult unbatched = RunOnce(GetParam(), seed, /*batch_drain=*/false);
    EXPECT_EQ(batched.run_fingerprint, unbatched.run_fingerprint) << "seed " << seed;
    EXPECT_EQ(batched.lifecycle_fingerprint, unbatched.lifecycle_fingerprint)
        << "seed " << seed;
    EXPECT_TRUE(batched == unbatched) << "seed " << seed;
  }
}

TEST_P(LayoutParityTest, MatchesPreRefactorGoldenFingerprints) {
  for (const Golden& golden : kGoldenSeed1) {
    if (golden.kind != GetParam()) {
      continue;
    }
    const TraceResult run = RunOnce(GetParam(), /*seed=*/1, /*batch_drain=*/true);
    EXPECT_EQ(run.run_fingerprint, golden.run_fingerprint);
    EXPECT_EQ(run.lifecycle_fingerprint, golden.lifecycle_fingerprint);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, LayoutParityTest,
                         ::testing::Values(SchedKind::kSfs, SchedKind::kHsfs, SchedKind::kSfq,
                                           SchedKind::kStride, SchedKind::kWfq, SchedKind::kBvt,
                                           SchedKind::kTimeshare, SchedKind::kRoundRobin,
                                           SchedKind::kLottery),
                         [](const ::testing::TestParamInfo<SchedKind>& param_info) {
                           std::string name(sched::SchedKindName(param_info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace sfs::eval

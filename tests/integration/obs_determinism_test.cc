// Tracing invariance: attaching an obs::Trace and an obs::MetricsRegistry to
// the engine must not change a single scheduling decision.  For every
// scheduler kind (flat and sharded alike) and several seeds, a randomized
// churn workload — hogs, interactive sleepers, a chained short-job band and a
// mid-run kill — runs three times: untraced, traced with roomy rings, and
// traced with rings so small they wrap constantly (the overflow path must be
// as invisible as the happy path).  Run-interval and lifecycle fingerprints,
// per-task services and the engine counters must be byte-identical across all
// three; the traced runs additionally sanity-check the recorded streams
// against the engine's own counters.
//
// SFS_FUZZ_SEEDS bounds the seeds tried per policy (default 4).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/fingerprint.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::eval {
namespace {

using sched::SchedKind;
using sched::ThreadId;

struct RunResult {
  std::uint64_t run_fingerprint = 0;
  std::uint64_t lifecycle_fingerprint = 0;
  std::vector<Tick> services;
  std::int64_t events = 0;
  std::int64_t dispatches = 0;
  std::int64_t preemptions = 0;
  std::int64_t steals = 0;

  bool operator==(const RunResult&) const = default;
};

struct Sinks {
  obs::Trace* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

// One randomized workload at the given seed; all randomness flows through
// Rng(seed), so two runs diverge only if recording feeds back into decisions.
RunResult RunOnce(SchedKind kind, std::uint64_t seed, const Sinks& sinks) {
  common::Rng rng(seed);
  sched::SchedConfig config;
  config.num_cpus = static_cast<int>(rng.UniformInt(1, 4));
  config.quantum = Msec(rng.UniformInt(5, 100));
  SchedKind effective_kind = kind;
  if (const auto sharded_kind = sched::ShardedKindFor(kind); sharded_kind.has_value()) {
    if (rng.Bernoulli(0.5)) {
      effective_kind = *sharded_kind;
      config.shard_steal = sched::ShardStealPolicy::kMaxSurplus;
      config.shard_rebalance_period = static_cast<int>(rng.UniformInt(4, 64));
      config.shard_coupling = 1.0;
    }
  }
  auto scheduler = CreateScheduler(effective_kind, config);

  sim::EngineConfig engine_config;
  engine_config.context_switch_cost = Usec(rng.UniformInt(0, 200));
  engine_config.trace = sinks.trace;
  engine_config.metrics = sinks.metrics;
  sim::Engine engine(*scheduler, engine_config);

  RunResult result;
  common::Fnv1a run_fp;
  common::Fnv1a life_fp;
  engine.SetRunIntervalHook(
      [&run_fp](Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
        run_fp.Mix(static_cast<std::uint64_t>(start));
        run_fp.Mix(static_cast<std::uint64_t>(len));
        run_fp.Mix(static_cast<std::uint64_t>(cpu));
        run_fp.Mix(static_cast<std::uint64_t>(tid));
      });
  engine.SetSchedEventHook(
      [&life_fp](sim::SchedEvent event, const sim::Task& task, Tick now) {
        life_fp.Mix(static_cast<std::uint64_t>(event));
        life_fp.Mix(static_cast<std::uint64_t>(task.tid()));
        life_fp.Mix(static_cast<std::uint64_t>(now));
      });

  ThreadId next_tid = 1;
  std::vector<ThreadId> hogs;
  const int n_hogs = static_cast<int>(rng.UniformInt(2, 6));
  for (int i = 0; i < n_hogs; ++i) {
    hogs.push_back(next_tid);
    engine.AddTaskAt(Msec(rng.UniformInt(0, 1000)),
                     workload::MakeInf(next_tid++, static_cast<double>(rng.UniformInt(1, 20)),
                                       "hog"));
  }
  const int n_interact = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < n_interact; ++i) {
    workload::Interact::Params params;
    params.mean_think = Msec(rng.UniformInt(20, 150));
    params.burst = Msec(rng.UniformInt(1, 10));
    params.seed = seed + static_cast<std::uint64_t>(i);
    engine.AddTaskAt(Msec(rng.UniformInt(0, 500)),
                     workload::MakeInteract(next_tid++, 1.0, params, nullptr, "interact"));
  }
  engine.SetExitHook([&next_tid, &rng](sim::Engine& e, sim::Task& task) {
    if (task.label() == "short") {
      e.AddTaskAt(e.now() + Msec(rng.UniformInt(0, 40)),
                  workload::MakeFixedWork(next_tid++, static_cast<double>(rng.UniformInt(1, 8)),
                                          Msec(rng.UniformInt(10, 300)), "short"));
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 2.0, Msec(100), "short"));
  engine.AddPeriodicHook(Msec(1333), [&, done = false](sim::Engine& e) mutable {
    if (!done && e.HasTask(hogs[1]) &&
        e.task(hogs[1]).state() != sim::Task::State::kExited) {
      e.KillTask(hogs[1]);
      done = true;
    }
  });

  engine.RunUntil(Sec(5));

  engine.ForEachTask(
      [&](const sim::Task& task) { result.services.push_back(engine.Service(task.tid())); });
  result.run_fingerprint = run_fp.value();
  result.lifecycle_fingerprint = life_fp.value();
  result.events = engine.events_processed();
  result.dispatches = engine.dispatches();
  result.preemptions = engine.preemptions();
  result.steals = engine.steals();
  return result;
}

std::uint64_t FuzzSeedCount() {
  if (const char* env = std::getenv("SFS_FUZZ_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::uint64_t>(parsed);
    }
  }
  return 4;
}

class ObsDeterminismTest : public ::testing::TestWithParam<SchedKind> {};

TEST_P(ObsDeterminismTest, TracingOnOrOffProducesByteIdenticalSchedules) {
  for (std::uint64_t seed = 1; seed <= FuzzSeedCount(); ++seed) {
    const RunResult off = RunOnce(GetParam(), seed, {});

    // Roomy rings: nothing drops, so every grant/charge pair is retained.
    obs::Trace trace(/*num_cpus=*/4, /*capacity_per_ring=*/1 << 16);
    obs::MetricsRegistry metrics(/*num_shards=*/1);
    const RunResult traced = RunOnce(GetParam(), seed, {&trace, &metrics});
    EXPECT_EQ(off, traced) << "policy " << sched::SchedKindName(GetParam())
                           << " seed " << seed;

    // Cross-check the recorded streams against the engine's own accounting.
    // Grants == dispatches (one kGrant per dispatch; rings did not wrap).
    std::uint64_t grants = 0;
    std::uint64_t runs = 0;
    for (int cpu = 0; cpu < trace.num_cpus(); ++cpu) {
      trace.ring(cpu).ForEach([&](const obs::TraceRecord& r) {
        grants += r.kind == obs::TraceEventKind::kGrant ? 1 : 0;
        runs += r.kind == obs::TraceEventKind::kRun ? 1 : 0;
      });
    }
    EXPECT_EQ(trace.total_dropped(), 0u) << "seed " << seed;
    EXPECT_EQ(grants, static_cast<std::uint64_t>(traced.dispatches)) << "seed " << seed;
    EXPECT_GT(runs, 0u) << "seed " << seed;
    const auto hist =
        metrics.GetHistogram("sim/quantum_ticks").Snapshot();
    EXPECT_EQ(hist.count(), grants) << "seed " << seed;

    // Constantly-wrapping rings: the overflow path must be equally invisible.
    obs::Trace tiny(/*num_cpus=*/4, /*capacity_per_ring=*/8);
    const RunResult wrapped = RunOnce(GetParam(), seed, {.trace = &tiny});
    EXPECT_EQ(off, wrapped) << "policy " << sched::SchedKindName(GetParam())
                            << " seed " << seed;
    EXPECT_GT(tiny.total_dropped(), 0u) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ObsDeterminismTest,
                         ::testing::Values(SchedKind::kSfs, SchedKind::kHsfs, SchedKind::kSfq,
                                           SchedKind::kStride, SchedKind::kWfq, SchedKind::kBvt,
                                           SchedKind::kTimeshare, SchedKind::kRoundRobin,
                                           SchedKind::kLottery),
                         [](const ::testing::TestParamInfo<SchedKind>& param_info) {
                           std::string name(sched::SchedKindName(param_info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace sfs::eval

// Property-based integration tests: invariants that must hold across schedulers,
// weight vectors, processor counts and arithmetic modes.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/eval/scenarios.h"
#include "src/metrics/fairness.h"
#include "src/metrics/service_sampler.h"
#include "src/sched/gms.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::eval {
namespace {

using sched::SchedKind;

// --- SFS tracks GMS within a bounded number of quanta ----------------------------

using DeviationParams = std::tuple<int /*cpus*/, int /*threads*/>;

class SfsGmsDeviationTest : public ::testing::TestWithParam<DeviationParams> {};

TEST_P(SfsGmsDeviationTest, DeviationBoundedByQuanta) {
  const auto [cpus, threads] = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(cpus * 100 + threads));
  std::vector<double> weights;
  for (int i = 0; i < threads; ++i) {
    weights.push_back(static_cast<double>(rng.UniformInt(1, 10)));
  }
  const Tick horizon = Sec(60);
  const double deviation =
      GmsDeviationForWeights(SchedKind::kSfs, weights, cpus, horizon);
  // The discrete schedule can lag/lead the fluid by a few quanta, independent of
  // the horizon (it does not accumulate).
  EXPECT_LT(deviation, static_cast<double>(6 * kDefaultQuantum));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SfsGmsDeviationTest,
                         ::testing::Values(DeviationParams{1, 4}, DeviationParams{2, 3},
                                           DeviationParams{2, 8}, DeviationParams{4, 6},
                                           DeviationParams{4, 16}, DeviationParams{8, 24}));

// SFQ without readjustment accumulates large deviation under infeasible weights
// when the runnable set changes (the Example 1 shape: a late arrival is starved
// while the earlier threads' tags catch up) — the contrast property that
// motivates the whole paper.  Note a *static* infeasible mix self-caps under any
// work-conserving scheduler, so the late arrival is essential.
TEST(SfqGmsDeviationTest, InfeasibleWeightsDivergeWithoutReadjustment) {
  const std::vector<TimedArrival> arrivals = {{0, 1.0}, {0, 50.0}, {Sec(15), 1.0}};
  const double sfq = GmsDeviationForArrivals(SchedKind::kSfq, arrivals, 2, Sec(60),
                                             kDefaultQuantum, -1, /*scheduler_readjust=*/false);
  const double sfs = GmsDeviationForArrivals(SchedKind::kSfs, arrivals, 2, Sec(60),
                                             kDefaultQuantum, -1);
  EXPECT_GT(sfq, static_cast<double>(Sec(5)));  // diverges by seconds of service
  EXPECT_LT(sfs, static_cast<double>(6 * kDefaultQuantum));
}

// --- fixed-point arithmetic preserves fairness ------------------------------------

class FixedPointFairnessTest : public ::testing::TestWithParam<int> {};

TEST_P(FixedPointFairnessTest, DigitsDoNotBreakProportions) {
  const int digits = GetParam();
  const std::vector<double> weights = {7.0, 3.0, 2.0, 1.0};
  const double deviation = GmsDeviationForWeights(SchedKind::kSfs, weights, 2, Sec(30),
                                                  kDefaultQuantum, digits);
  // Even 1 decimal digit keeps the schedule within a few quanta of fluid.
  EXPECT_LT(deviation, static_cast<double>(8 * kDefaultQuantum));
}

INSTANTIATE_TEST_SUITE_P(ScalingFactors, FixedPointFairnessTest,
                         ::testing::Values(1, 2, 4, 6, 8));

// --- proportional allocation across policies on a uniprocessor --------------------

class UniprocProportionalTest : public ::testing::TestWithParam<SchedKind> {};

TEST_P(UniprocProportionalTest, TwoToOneWeights) {
  sched::SchedConfig config;
  config.num_cpus = 1;
  auto scheduler = CreateScheduler(GetParam(), config);
  sim::Engine engine(*scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 2.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.RunUntil(Sec(60));
  const double ratio = static_cast<double>(engine.ServiceIncludingRunning(1)) /
                       static_cast<double>(engine.ServiceIncludingRunning(2));
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(GpsPolicies, UniprocProportionalTest,
                         ::testing::Values(SchedKind::kSfs, SchedKind::kSfq, SchedKind::kStride,
                                           SchedKind::kWfq, SchedKind::kBvt),
                         [](const ::testing::TestParamInfo<SchedKind>& param_info) {
                           return std::string(SchedKindName(param_info.param));
                         });

// --- multiprocessor proportionality for feasible weights --------------------------

class SmpProportionalTest : public ::testing::TestWithParam<SchedKind> {};

TEST_P(SmpProportionalTest, FeasibleWeightsHonoredOnTwoCpus) {
  sched::SchedConfig config;
  config.num_cpus = 2;
  auto scheduler = CreateScheduler(GetParam(), config);
  sim::Engine engine(*scheduler);
  // Weights 2:1:1 on 2 CPUs (feasible: 2/4 == 1/2): shares 1 : 0.5 : 0.5 CPUs.
  engine.AddTaskAt(0, workload::MakeInf(1, 2.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.AddTaskAt(0, workload::MakeInf(3, 1.0, "c"));
  engine.RunUntil(Sec(60));
  const double a = static_cast<double>(engine.ServiceIncludingRunning(1));
  const double b = static_cast<double>(engine.ServiceIncludingRunning(2));
  const double c = static_cast<double>(engine.ServiceIncludingRunning(3));
  EXPECT_NEAR(a / b, 2.0, 0.2);
  EXPECT_NEAR(b / c, 1.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(GpsPolicies, SmpProportionalTest,
                         ::testing::Values(SchedKind::kSfs, SchedKind::kSfq, SchedKind::kStride),
                         [](const ::testing::TestParamInfo<SchedKind>& param_info) {
                           return std::string(SchedKindName(param_info.param));
                         });

// --- work conservation under mixed blocking workloads ------------------------------

class WorkConservationTest : public ::testing::TestWithParam<SchedKind> {};

TEST_P(WorkConservationTest, NoIdleWhileBacklogged) {
  sched::SchedConfig config;
  config.num_cpus = 2;
  auto scheduler = CreateScheduler(GetParam(), config);
  sim::Engine engine(*scheduler);
  // 4 always-runnable hogs guarantee backlog; compile jobs come and go.
  for (sched::ThreadId tid = 1; tid <= 4; ++tid) {
    engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, "hog"));
  }
  for (sched::ThreadId tid = 5; tid <= 8; ++tid) {
    workload::CompileJob::Params params;
    params.seed = static_cast<std::uint64_t>(tid);
    engine.AddTaskAt(0, workload::MakeCompileJob(tid, 1.0, params, "gcc"));
  }
  engine.RunUntil(Sec(30));
  EXPECT_EQ(engine.idle_time(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, WorkConservationTest,
                         ::testing::Values(SchedKind::kSfs, SchedKind::kSfq, SchedKind::kStride,
                                           SchedKind::kWfq, SchedKind::kBvt,
                                           SchedKind::kTimeshare, SchedKind::kRoundRobin),
                         [](const ::testing::TestParamInfo<SchedKind>& param_info) {
                           std::string name(SchedKindName(param_info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- starvation freedom under infeasible weights for SFS ---------------------------

TEST(StarvationFreedomTest, SfsNeverStarvesUnderAnyWeights) {
  common::Rng rng(4242);
  for (int trial = 0; trial < 5; ++trial) {
    sched::SchedConfig config;
    config.num_cpus = 2;
    // A 10 ms quantum keeps the worst-case inter-service gap (quantum * sum(w) /
    // (w_min * p)) well under the starvation bound below even for 20:1 skews.
    config.quantum = Msec(10);
    auto scheduler = CreateScheduler(SchedKind::kSfs, config);
    sim::Engine engine(*scheduler);
    const int n = static_cast<int>(rng.UniformInt(3, 8));
    for (sched::ThreadId tid = 1; tid <= n; ++tid) {
      // Skewed and mostly infeasible weight requests.
      engine.AddTaskAt(0, workload::MakeInf(tid, static_cast<double>(rng.UniformInt(1, 20)),
                                            "t" + std::to_string(tid)));
    }
    metrics::ServiceSampler sampler(
        engine, Msec(500), [n] {
          std::vector<std::string> labels;
          for (int i = 1; i <= n; ++i) {
            labels.push_back("t" + std::to_string(i));
          }
          return labels;
        }());
    engine.RunUntil(Sec(20));
    for (int i = 1; i <= n; ++i) {
      EXPECT_LT(metrics::LongestStarvation(sampler.Series("t" + std::to_string(i)), Msec(500)),
                Sec(3))
          << "trial " << trial << " thread " << i;
    }
  }
}

}  // namespace
}  // namespace sfs::eval

// Randomized end-to-end stress: every scheduler driven by random workload mixes
// (compute hogs, interactive sleepers, churning short jobs, mid-run kills and
// weight changes) with engine invariants checked throughout.  The point is not
// a specific allocation but that no protocol invariant, accounting identity or
// determinism property ever breaks.
//
// SFS_FUZZ_SEEDS bounds the seeds tried per policy (default 6); CI sets a
// small value to keep the suite under a minute on slow runners.
// SFS_FUZZ_QUEUE_BACKEND ("sorted_list" / "skip_list") pins the run-queue
// backend; unset, each seed draws one at random so both are fuzzed.
// SFS_FUZZ_SHARDED ("0" / "1") pins whether GPS policies run behind the
// sharded per-CPU layer; unset, each seed draws it (plus random steal,
// rebalance and coupling knobs) so flat and sharded variants are both fuzzed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::eval {
namespace {

using sched::SchedKind;
using sched::ThreadId;

class EngineFuzzTest : public ::testing::TestWithParam<SchedKind> {};

std::vector<Tick> RunOnce(SchedKind kind, std::uint64_t seed, Tick* idle_out,
                          Tick* ctx_cost_out) {
  common::Rng rng(seed);
  sched::SchedConfig config;
  config.num_cpus = static_cast<int>(rng.UniformInt(1, 4));
  config.quantum = Msec(rng.UniformInt(5, 200));
  // Fuzz both run-queue backends: per-seed draw, overridable via env.
  config.queue_backend =
      rng.Bernoulli(0.5) ? sched::QueueBackend::kSkipList : sched::QueueBackend::kSortedList;
  if (const char* env = std::getenv("SFS_FUZZ_QUEUE_BACKEND"); env != nullptr) {
    const auto parsed = sched::ParseQueueBackend(env);
    EXPECT_TRUE(parsed.has_value()) << "bad SFS_FUZZ_QUEUE_BACKEND: " << env;
    config.queue_backend = parsed.value_or(config.queue_backend);
  }
  // Sharded dimension: GPS policies also run behind per-CPU shards with
  // randomized steal/rebalance/coupling knobs, drawn per seed.
  SchedKind effective_kind = kind;
  if (const auto sharded_kind = sched::ShardedKindFor(kind); sharded_kind.has_value()) {
    bool use_sharded = rng.Bernoulli(0.5);
    if (const char* env = std::getenv("SFS_FUZZ_SHARDED"); env != nullptr) {
      use_sharded = env[0] == '1';
    }
    if (use_sharded) {
      effective_kind = *sharded_kind;
      config.shard_steal = rng.Bernoulli(0.75) ? sched::ShardStealPolicy::kMaxSurplus
                                               : sched::ShardStealPolicy::kNone;
      config.shard_rebalance_period =
          rng.Bernoulli(0.5) ? static_cast<int>(rng.UniformInt(4, 256)) : 0;
      config.shard_coupling = 0.5 * static_cast<double>(rng.UniformInt(0, 2));
    }
  }
  auto scheduler = CreateScheduler(effective_kind, config);

  sim::EngineConfig engine_config;
  engine_config.context_switch_cost = Usec(rng.UniformInt(0, 500));
  sim::Engine engine(*scheduler, engine_config);

  ThreadId next_tid = 1;
  std::vector<ThreadId> hogs;
  const int n_hogs = static_cast<int>(rng.UniformInt(1, 6));
  for (int i = 0; i < n_hogs; ++i) {
    hogs.push_back(next_tid);
    engine.AddTaskAt(Msec(rng.UniformInt(0, 2000)),
                     workload::MakeInf(next_tid++, static_cast<double>(rng.UniformInt(1, 30)),
                                       "hog"));
  }
  const int n_interact = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < n_interact; ++i) {
    workload::Interact::Params params;
    params.mean_think = Msec(rng.UniformInt(20, 200));
    params.burst = Msec(rng.UniformInt(1, 10));
    params.seed = seed + static_cast<std::uint64_t>(i);
    engine.AddTaskAt(Msec(rng.UniformInt(0, 1000)),
                     workload::MakeInteract(next_tid++, 1.0, params, nullptr, "interact"));
  }
  // A churning chain of short jobs.
  engine.SetExitHook([&next_tid, &rng](sim::Engine& e, sim::Task& task) {
    if (task.label() == "short") {
      e.AddTaskAt(e.now() + Msec(rng.UniformInt(0, 50)),
                  workload::MakeFixedWork(next_tid++, static_cast<double>(rng.UniformInt(1, 10)),
                                          Msec(rng.UniformInt(10, 400)), "short"));
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 2.0, Msec(100), "short"));

  // Random mid-run surgery: weight changes and a kill.
  engine.AddPeriodicHook(Msec(777), [&](sim::Engine& e) {
    if (!hogs.empty() && e.HasTask(hogs[0])) {
      const auto state = e.task(hogs[0]).state();
      // Only threads the scheduler knows about (arrived, not exited).
      if (state != sim::Task::State::kExited && state != sim::Task::State::kNew &&
          rng.Bernoulli(0.5)) {
        e.scheduler().SetWeight(hogs[0], static_cast<double>(rng.UniformInt(1, 50)));
      }
    }
  });
  const Tick kill_at = Msec(rng.UniformInt(2500, 5000));
  engine.AddPeriodicHook(kill_at, [&, done = false](sim::Engine& e) mutable {
    if (!done && hogs.size() > 1 && e.HasTask(hogs[1]) &&
        e.task(hogs[1]).state() != sim::Task::State::kExited) {
      e.KillTask(hogs[1]);
      done = true;
    }
  });

  const Tick horizon = Sec(10);
  engine.RunUntil(horizon);

  // Accounting identity: service + idle + switch cost == capacity.
  Tick total_service = 0;
  engine.ForEachTask([&](const sim::Task& task) {
    total_service += engine.ServiceIncludingRunning(task.tid());
  });
  EXPECT_EQ(total_service + engine.idle_time() + engine.total_context_switch_cost(),
            static_cast<Tick>(config.num_cpus) * horizon)
      << "kind=" << SchedKindName(kind) << " seed=" << seed;

  *idle_out = engine.idle_time();
  *ctx_cost_out = engine.total_context_switch_cost();

  std::vector<Tick> services;
  engine.ForEachTask(
      [&](const sim::Task& task) { services.push_back(engine.Service(task.tid())); });
  std::sort(services.begin(), services.end());
  return services;
}

std::uint64_t FuzzSeedCount() {
  if (const char* env = std::getenv("SFS_FUZZ_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::uint64_t>(parsed);
    }
  }
  return 6;
}

TEST_P(EngineFuzzTest, AccountingAndDeterminismAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= FuzzSeedCount(); ++seed) {
    Tick idle_a = 0;
    Tick idle_b = 0;
    Tick cost_a = 0;
    Tick cost_b = 0;
    const auto run_a = RunOnce(GetParam(), seed, &idle_a, &cost_a);
    const auto run_b = RunOnce(GetParam(), seed, &idle_b, &cost_b);
    // Bit-exact determinism: same seed, same everything.
    EXPECT_EQ(run_a, run_b) << "seed " << seed;
    EXPECT_EQ(idle_a, idle_b);
    EXPECT_EQ(cost_a, cost_b);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EngineFuzzTest,
                         ::testing::Values(SchedKind::kSfs, SchedKind::kHsfs, SchedKind::kSfq,
                                           SchedKind::kStride, SchedKind::kWfq, SchedKind::kBvt,
                                           SchedKind::kTimeshare, SchedKind::kRoundRobin,
                                           SchedKind::kLottery),
                         [](const ::testing::TestParamInfo<SchedKind>& param_info) {
                           std::string name(sched::SchedKindName(param_info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace sfs::eval

// Differential fuzz: the timing-wheel and priority-queue engine backends must
// produce byte-identical simulations for every scheduler kind, including the
// sharded layer.  Each seed builds one randomized workload (hogs, interactive
// sleepers, a churning short-job chain, mid-run weight surgery and a kill) and
// runs it twice — once per EngineConfig::event_queue — comparing FNV-1a
// fingerprints of the complete run-interval trace and the scheduler-visible
// lifecycle event stream, plus per-task services and the accounting counters.
// Any divergence in any event's firing order changes the fingerprints.
//
// SFS_FUZZ_SEEDS bounds the seeds tried per policy (default 6), as in
// fuzz_test.cc; SFS_FUZZ_SHARDED pins the sharded dimension.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/fingerprint.h"
#include "src/common/rng.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::eval {
namespace {

using sched::SchedKind;
using sched::ThreadId;

struct TraceResult {
  std::uint64_t run_fingerprint = 0;
  std::uint64_t lifecycle_fingerprint = 0;
  std::vector<Tick> services;
  std::int64_t events = 0;
  std::int64_t dispatches = 0;
  std::int64_t preemptions = 0;
  Tick idle = 0;
  Tick ctx_cost = 0;

  bool operator==(const TraceResult&) const = default;
};

// One randomized workload, driven to the horizon on the given event-queue
// backend.  All randomness (workload shape and mid-run surgery draws) flows
// through Rng(seed), so two runs with the same seed diverge only if the event
// queues disagree on event order.
TraceResult RunOnce(SchedKind kind, std::uint64_t seed, sim::EventQueueKind queue) {
  common::Rng rng(seed);
  sched::SchedConfig config;
  config.num_cpus = static_cast<int>(rng.UniformInt(1, 4));
  config.quantum = Msec(rng.UniformInt(5, 200));
  config.queue_backend =
      rng.Bernoulli(0.5) ? sched::QueueBackend::kSkipList : sched::QueueBackend::kSortedList;
  SchedKind effective_kind = kind;
  if (const auto sharded_kind = sched::ShardedKindFor(kind); sharded_kind.has_value()) {
    bool use_sharded = rng.Bernoulli(0.5);
    if (const char* env = std::getenv("SFS_FUZZ_SHARDED"); env != nullptr) {
      use_sharded = env[0] == '1';
    }
    if (use_sharded) {
      effective_kind = *sharded_kind;
      config.shard_steal = rng.Bernoulli(0.75) ? sched::ShardStealPolicy::kMaxSurplus
                                               : sched::ShardStealPolicy::kNone;
      config.shard_rebalance_period =
          rng.Bernoulli(0.5) ? static_cast<int>(rng.UniformInt(4, 256)) : 0;
      config.shard_coupling = 0.5 * static_cast<double>(rng.UniformInt(0, 2));
    }
  }
  auto scheduler = CreateScheduler(effective_kind, config);

  sim::EngineConfig engine_config;
  engine_config.context_switch_cost = Usec(rng.UniformInt(0, 500));
  engine_config.event_queue = queue;
  sim::Engine engine(*scheduler, engine_config);

  TraceResult result;
  common::Fnv1a run_fp;
  common::Fnv1a life_fp;
  engine.SetRunIntervalHook(
      [&run_fp](Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
        run_fp.Mix(static_cast<std::uint64_t>(start));
        run_fp.Mix(static_cast<std::uint64_t>(len));
        run_fp.Mix(static_cast<std::uint64_t>(cpu));
        run_fp.Mix(static_cast<std::uint64_t>(tid));
      });
  engine.SetSchedEventHook(
      [&life_fp](sim::SchedEvent event, const sim::Task& task, Tick now) {
        life_fp.Mix(static_cast<std::uint64_t>(event));
        life_fp.Mix(static_cast<std::uint64_t>(task.tid()));
        life_fp.Mix(static_cast<std::uint64_t>(now));
      });

  ThreadId next_tid = 1;
  std::vector<ThreadId> hogs;
  const int n_hogs = static_cast<int>(rng.UniformInt(1, 6));
  for (int i = 0; i < n_hogs; ++i) {
    hogs.push_back(next_tid);
    engine.AddTaskAt(Msec(rng.UniformInt(0, 2000)),
                     workload::MakeInf(next_tid++, static_cast<double>(rng.UniformInt(1, 30)),
                                       "hog"));
  }
  const int n_interact = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < n_interact; ++i) {
    workload::Interact::Params params;
    params.mean_think = Msec(rng.UniformInt(20, 200));
    params.burst = Msec(rng.UniformInt(1, 10));
    params.seed = seed + static_cast<std::uint64_t>(i);
    engine.AddTaskAt(Msec(rng.UniformInt(0, 1000)),
                     workload::MakeInteract(next_tid++, 1.0, params, nullptr, "interact"));
  }
  // A churning chain of short jobs: exit-hook execution order feeds straight
  // back into the event queue (same-tick arrivals), the FIFO contract's
  // hardest case.
  engine.SetExitHook([&next_tid, &rng](sim::Engine& e, sim::Task& task) {
    if (task.label() == "short") {
      e.AddTaskAt(e.now() + Msec(rng.UniformInt(0, 50)),
                  workload::MakeFixedWork(next_tid++, static_cast<double>(rng.UniformInt(1, 10)),
                                          Msec(rng.UniformInt(10, 400)), "short"));
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 2.0, Msec(100), "short"));

  engine.AddPeriodicHook(Msec(777), [&](sim::Engine& e) {
    if (!hogs.empty() && e.HasTask(hogs[0])) {
      const auto state = e.task(hogs[0]).state();
      if (state != sim::Task::State::kExited && state != sim::Task::State::kNew &&
          rng.Bernoulli(0.5)) {
        e.scheduler().SetWeight(hogs[0], static_cast<double>(rng.UniformInt(1, 50)));
      }
    }
  });
  const Tick kill_at = Msec(rng.UniformInt(2500, 5000));
  engine.AddPeriodicHook(kill_at, [&, done = false](sim::Engine& e) mutable {
    if (!done && hogs.size() > 1 && e.HasTask(hogs[1]) &&
        e.task(hogs[1]).state() != sim::Task::State::kExited) {
      e.KillTask(hogs[1]);
      done = true;
    }
  });

  engine.RunUntil(Sec(10));

  engine.ForEachTask(
      [&](const sim::Task& task) { result.services.push_back(engine.Service(task.tid())); });
  result.run_fingerprint = run_fp.value();
  result.lifecycle_fingerprint = life_fp.value();
  result.events = engine.events_processed();
  result.dispatches = engine.dispatches();
  result.preemptions = engine.preemptions();
  result.idle = engine.idle_time();
  result.ctx_cost = engine.total_context_switch_cost();
  return result;
}

std::uint64_t FuzzSeedCount() {
  if (const char* env = std::getenv("SFS_FUZZ_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::uint64_t>(parsed);
    }
  }
  return 6;
}

class EventQueueFuzzTest : public ::testing::TestWithParam<SchedKind> {};

TEST_P(EventQueueFuzzTest, WheelAndHeapTracesAreByteIdentical) {
  for (std::uint64_t seed = 1; seed <= FuzzSeedCount(); ++seed) {
    const TraceResult wheel = RunOnce(GetParam(), seed, sim::EventQueueKind::kTimingWheel);
    const TraceResult heap = RunOnce(GetParam(), seed, sim::EventQueueKind::kPriorityQueue);
    EXPECT_EQ(wheel.run_fingerprint, heap.run_fingerprint) << "seed " << seed;
    EXPECT_EQ(wheel.lifecycle_fingerprint, heap.lifecycle_fingerprint) << "seed " << seed;
    EXPECT_TRUE(wheel == heap) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EventQueueFuzzTest,
                         ::testing::Values(SchedKind::kSfs, SchedKind::kHsfs, SchedKind::kSfq,
                                           SchedKind::kStride, SchedKind::kWfq, SchedKind::kBvt,
                                           SchedKind::kTimeshare, SchedKind::kRoundRobin,
                                           SchedKind::kLottery),
                         [](const ::testing::TestParamInfo<SchedKind>& param_info) {
                           std::string name(sched::SchedKindName(param_info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace sfs::eval

// Differential fuzz: the timing-wheel and priority-queue engine backends must
// produce byte-identical simulations for every scheduler kind, including the
// sharded layer.  Each seed builds one randomized workload (hogs, interactive
// sleepers, a churning short-job chain, mid-run weight surgery and a kill) and
// runs it twice — once per EngineConfig::event_queue — comparing FNV-1a
// fingerprints of the complete run-interval trace and the scheduler-visible
// lifecycle event stream, plus per-task services and the accounting counters.
// Any divergence in any event's firing order changes the fingerprints.
//
// The parallel engine rides the same harness in two dimensions:
//   * workers == 1 must be byte-identical to sim::Engine on the identical
//     randomized workload (same seed stream), for every policy kind — the
//     serial-oracle contract of parallel_engine.h.
//   * workers > 1 runs a hook-free variant (periodic hooks and exit-hook
//     churn are serial-path-only) in segments with quiescent surgery between
//     them (SetWeight, KillTask) and asserts the conservation invariants:
//     arrivals == departures + live, every dispatch charged except tasks
//     still on-CPU at the horizon.
//
// SFS_FUZZ_SEEDS bounds the seeds tried per policy (default 6), as in
// fuzz_test.cc; SFS_FUZZ_SHARDED pins the sharded dimension.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/fingerprint.h"
#include "src/common/rng.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/sim/parallel_engine.h"
#include "src/workload/workloads.h"

namespace sfs::eval {
namespace {

using sched::SchedKind;
using sched::ThreadId;

struct TraceResult {
  std::uint64_t run_fingerprint = 0;
  std::uint64_t lifecycle_fingerprint = 0;
  std::vector<Tick> services;
  std::int64_t events = 0;
  std::int64_t dispatches = 0;
  std::int64_t preemptions = 0;
  Tick idle = 0;
  Tick ctx_cost = 0;

  bool operator==(const TraceResult&) const = default;
};

// Scheduler construction shared by every dimension: all randomness flows
// through `rng` in a fixed draw order, so any two runners fed the same seed
// build identical schedulers (and identical workloads afterwards).
std::unique_ptr<sched::Scheduler> DrawScheduler(SchedKind kind, common::Rng& rng,
                                                int* num_cpus_out) {
  sched::SchedConfig config;
  config.num_cpus = static_cast<int>(rng.UniformInt(1, 4));
  config.quantum = Msec(rng.UniformInt(5, 200));
  config.queue_backend =
      rng.Bernoulli(0.5) ? sched::QueueBackend::kSkipList : sched::QueueBackend::kSortedList;
  SchedKind effective_kind = kind;
  if (const auto sharded_kind = sched::ShardedKindFor(kind); sharded_kind.has_value()) {
    bool use_sharded = rng.Bernoulli(0.5);
    if (const char* env = std::getenv("SFS_FUZZ_SHARDED"); env != nullptr) {
      use_sharded = env[0] == '1';
    }
    if (use_sharded) {
      effective_kind = *sharded_kind;
      config.shard_steal = rng.Bernoulli(0.75) ? sched::ShardStealPolicy::kMaxSurplus
                                               : sched::ShardStealPolicy::kNone;
      config.shard_rebalance_period =
          rng.Bernoulli(0.5) ? static_cast<int>(rng.UniformInt(4, 256)) : 0;
      config.shard_coupling = 0.5 * static_cast<double>(rng.UniformInt(0, 2));
    }
  }
  *num_cpus_out = config.num_cpus;
  return CreateScheduler(effective_kind, config);
}

// The randomized serial workload: hogs, interactive sleepers, a churning
// short-job chain through the exit hook, periodic weight surgery and a
// one-shot kill.  Generic over sim::Engine / sim::ParallelEngine (workers=1):
// both expose the same names, so the same draws build the same simulation.
template <typename EngineT>
void BuildSerialWorkload(EngineT& engine, common::Rng& rng, std::uint64_t seed,
                         ThreadId& next_tid, std::vector<ThreadId>& hogs) {
  const int n_hogs = static_cast<int>(rng.UniformInt(1, 6));
  for (int i = 0; i < n_hogs; ++i) {
    hogs.push_back(next_tid);
    engine.AddTaskAt(Msec(rng.UniformInt(0, 2000)),
                     workload::MakeInf(next_tid++, static_cast<double>(rng.UniformInt(1, 30)),
                                       "hog"));
  }
  const int n_interact = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < n_interact; ++i) {
    workload::Interact::Params params;
    params.mean_think = Msec(rng.UniformInt(20, 200));
    params.burst = Msec(rng.UniformInt(1, 10));
    params.seed = seed + static_cast<std::uint64_t>(i);
    engine.AddTaskAt(Msec(rng.UniformInt(0, 1000)),
                     workload::MakeInteract(next_tid++, 1.0, params, nullptr, "interact"));
  }
  // A churning chain of short jobs: exit-hook execution order feeds straight
  // back into the event queue (same-tick arrivals), the FIFO contract's
  // hardest case.
  engine.SetExitHook([&next_tid, &rng](auto& e, sim::Task& task) {
    if (task.label() == "short") {
      e.AddTaskAt(e.now() + Msec(rng.UniformInt(0, 50)),
                  workload::MakeFixedWork(next_tid++, static_cast<double>(rng.UniformInt(1, 10)),
                                          Msec(rng.UniformInt(10, 400)), "short"));
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 2.0, Msec(100), "short"));

  engine.AddPeriodicHook(Msec(777), [&](auto& e) {
    if (!hogs.empty() && e.HasTask(hogs[0])) {
      const auto state = e.task(hogs[0]).state();
      if (state != sim::Task::State::kExited && state != sim::Task::State::kNew &&
          rng.Bernoulli(0.5)) {
        e.scheduler().SetWeight(hogs[0], static_cast<double>(rng.UniformInt(1, 50)));
      }
    }
  });
  const Tick kill_at = Msec(rng.UniformInt(2500, 5000));
  engine.AddPeriodicHook(kill_at, [&, done = false](auto& e) mutable {
    if (!done && hogs.size() > 1 && e.HasTask(hogs[1]) &&
        e.task(hogs[1]).state() != sim::Task::State::kExited) {
      e.KillTask(hogs[1]);
      done = true;
    }
  });
}

template <typename EngineT>
TraceResult Collect(EngineT& engine, const common::Fnv1a& run_fp, const common::Fnv1a& life_fp) {
  TraceResult result;
  engine.ForEachTask(
      [&](const sim::Task& task) { result.services.push_back(engine.Service(task.tid())); });
  result.run_fingerprint = run_fp.value();
  result.lifecycle_fingerprint = life_fp.value();
  result.events = engine.events_processed();
  result.dispatches = engine.dispatches();
  result.preemptions = engine.preemptions();
  result.idle = engine.idle_time();
  result.ctx_cost = engine.total_context_switch_cost();
  return result;
}

// One randomized workload, driven to the horizon on the given event-queue
// backend.  All randomness (workload shape and mid-run surgery draws) flows
// through Rng(seed), so two runs with the same seed diverge only if the event
// queues disagree on event order.
TraceResult RunOnce(SchedKind kind, std::uint64_t seed, sim::EventQueueKind queue) {
  common::Rng rng(seed);
  int num_cpus = 0;
  auto scheduler = DrawScheduler(kind, rng, &num_cpus);

  sim::EngineConfig engine_config;
  engine_config.context_switch_cost = Usec(rng.UniformInt(0, 500));
  engine_config.event_queue = queue;
  sim::Engine engine(*scheduler, engine_config);

  common::Fnv1a run_fp;
  common::Fnv1a life_fp;
  engine.SetRunIntervalHook(
      [&run_fp](Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
        run_fp.Mix(static_cast<std::uint64_t>(start));
        run_fp.Mix(static_cast<std::uint64_t>(len));
        run_fp.Mix(static_cast<std::uint64_t>(cpu));
        run_fp.Mix(static_cast<std::uint64_t>(tid));
      });
  engine.SetSchedEventHook(
      [&life_fp](sim::SchedEvent event, const sim::Task& task, Tick now) {
        life_fp.Mix(static_cast<std::uint64_t>(event));
        life_fp.Mix(static_cast<std::uint64_t>(task.tid()));
        life_fp.Mix(static_cast<std::uint64_t>(now));
      });

  ThreadId next_tid = 1;
  std::vector<ThreadId> hogs;
  BuildSerialWorkload(engine, rng, seed, next_tid, hogs);
  engine.RunUntil(Sec(10));
  return Collect(engine, run_fp, life_fp);
}

// The identical seed stream through sim::ParallelEngine at workers == 1 (the
// serial-oracle path: periodic hooks and exit-hook churn are legal there).
TraceResult RunOnceParallelSerial(SchedKind kind, std::uint64_t seed) {
  common::Rng rng(seed);
  int num_cpus = 0;
  auto scheduler = DrawScheduler(kind, rng, &num_cpus);

  sim::ParallelEngineConfig engine_config;
  engine_config.workers = 1;
  engine_config.context_switch_cost = Usec(rng.UniformInt(0, 500));
  sim::ParallelEngine engine(*scheduler, engine_config);

  common::Fnv1a run_fp;
  common::Fnv1a life_fp;
  engine.SetRunIntervalHook(
      [&run_fp](int /*worker*/, Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
        run_fp.Mix(static_cast<std::uint64_t>(start));
        run_fp.Mix(static_cast<std::uint64_t>(len));
        run_fp.Mix(static_cast<std::uint64_t>(cpu));
        run_fp.Mix(static_cast<std::uint64_t>(tid));
      });
  engine.SetSchedEventHook(
      [&life_fp](int /*worker*/, sim::SchedEvent event, const sim::Task& task, Tick now) {
        life_fp.Mix(static_cast<std::uint64_t>(event));
        life_fp.Mix(static_cast<std::uint64_t>(task.tid()));
        life_fp.Mix(static_cast<std::uint64_t>(now));
      });

  ThreadId next_tid = 1;
  std::vector<ThreadId> hogs;
  BuildSerialWorkload(engine, rng, seed, next_tid, hogs);
  engine.RunUntil(Sec(10));
  return Collect(engine, run_fp, life_fp);
}

std::uint64_t FuzzSeedCount() {
  if (const char* env = std::getenv("SFS_FUZZ_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::uint64_t>(parsed);
    }
  }
  return 6;
}

class EventQueueFuzzTest : public ::testing::TestWithParam<SchedKind> {};

TEST_P(EventQueueFuzzTest, WheelAndHeapTracesAreByteIdentical) {
  for (std::uint64_t seed = 1; seed <= FuzzSeedCount(); ++seed) {
    const TraceResult wheel = RunOnce(GetParam(), seed, sim::EventQueueKind::kTimingWheel);
    const TraceResult heap = RunOnce(GetParam(), seed, sim::EventQueueKind::kPriorityQueue);
    EXPECT_EQ(wheel.run_fingerprint, heap.run_fingerprint) << "seed " << seed;
    EXPECT_EQ(wheel.lifecycle_fingerprint, heap.lifecycle_fingerprint) << "seed " << seed;
    EXPECT_TRUE(wheel == heap) << "seed " << seed;
  }
}

TEST_P(EventQueueFuzzTest, ParallelEngineWorkersOneIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= FuzzSeedCount(); ++seed) {
    const TraceResult serial = RunOnce(GetParam(), seed, sim::EventQueueKind::kTimingWheel);
    const TraceResult parallel = RunOnceParallelSerial(GetParam(), seed);
    EXPECT_EQ(serial.run_fingerprint, parallel.run_fingerprint) << "seed " << seed;
    EXPECT_EQ(serial.lifecycle_fingerprint, parallel.lifecycle_fingerprint) << "seed " << seed;
    EXPECT_TRUE(serial == parallel) << "seed " << seed;
  }
}

// workers > 1: a hook-free randomized workload, run in segments with
// quiescent surgery between them; the exact schedule is policy- and
// interleaving-dependent, the conservation invariants are not.
TEST_P(EventQueueFuzzTest, ParallelEngineManyWorkersConserves) {
  for (std::uint64_t seed = 1; seed <= FuzzSeedCount(); ++seed) {
    common::Rng rng(seed * 977 + 13);
    sched::SchedConfig config;
    config.num_cpus = static_cast<int>(rng.UniformInt(2, 4));
    config.quantum = Msec(rng.UniformInt(5, 200));
    SchedKind effective_kind = GetParam();
    if (const auto sharded_kind = sched::ShardedKindFor(GetParam());
        sharded_kind.has_value() && rng.Bernoulli(0.5)) {
      effective_kind = *sharded_kind;
      config.shard_steal = rng.Bernoulli(0.75) ? sched::ShardStealPolicy::kMaxSurplus
                                               : sched::ShardStealPolicy::kNone;
    }
    auto scheduler = CreateScheduler(effective_kind, config);

    sim::ParallelEngineConfig engine_config;
    engine_config.workers = static_cast<int>(rng.UniformInt(2, config.num_cpus));
    engine_config.epoch = Msec(rng.UniformInt(2, 20));
    engine_config.context_switch_cost = Usec(rng.UniformInt(0, 500));
    sim::ParallelEngine engine(*scheduler, engine_config);

    std::vector<std::int64_t> arrivals(static_cast<std::size_t>(engine_config.workers));
    std::vector<std::int64_t> departures(static_cast<std::size_t>(engine_config.workers));
    std::vector<std::int64_t> run_intervals(static_cast<std::size_t>(engine_config.workers));
    engine.SetSchedEventHook(
        [&arrivals, &departures](int worker, sim::SchedEvent event, const sim::Task&, Tick) {
          if (event == sim::SchedEvent::kArrival) {
            ++arrivals[static_cast<std::size_t>(worker)];
          } else if (event == sim::SchedEvent::kDeparture) {
            ++departures[static_cast<std::size_t>(worker)];
          }
        });
    engine.SetRunIntervalHook(
        [&run_intervals](int worker, Tick, Tick, sched::CpuId, ThreadId) {
          ++run_intervals[static_cast<std::size_t>(worker)];
        });

    ThreadId next_tid = 1;
    std::vector<ThreadId> hogs;
    const int n_hogs = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < n_hogs; ++i) {
      hogs.push_back(next_tid);
      engine.AddTaskAt(Msec(rng.UniformInt(0, 1000)),
                       workload::MakeInf(next_tid++, static_cast<double>(rng.UniformInt(1, 30)),
                                         "hog"));
    }
    const int n_interact = static_cast<int>(rng.UniformInt(2, 10));
    for (int i = 0; i < n_interact; ++i) {
      workload::Interact::Params params;
      params.mean_think = Msec(rng.UniformInt(5, 100));
      params.burst = Msec(rng.UniformInt(1, 10));
      params.seed = seed + static_cast<std::uint64_t>(i);
      engine.AddTaskAt(Msec(rng.UniformInt(0, 1000)),
                       workload::MakeInteract(next_tid++, 1.0, params, nullptr, "interact"));
    }
    const int n_short = static_cast<int>(rng.UniformInt(0, 5));
    for (int i = 0; i < n_short; ++i) {
      engine.AddTaskAt(Msec(rng.UniformInt(0, 2000)),
                       workload::MakeFixedWork(next_tid++,
                                               static_cast<double>(rng.UniformInt(1, 10)),
                                               Msec(rng.UniformInt(10, 400)), "short"));
    }
    const std::int64_t total_tasks = next_tid - 1;

    engine.RunUntil(Sec(2));
    engine.scheduler().SetWeight(hogs[0], static_cast<double>(rng.UniformInt(1, 50)));
    engine.RunUntil(Sec(4));
    if (hogs.size() > 1 && engine.HasTask(hogs[1]) &&
        engine.task(hogs[1]).state() != sim::Task::State::kExited) {
      engine.KillTask(hogs[1]);
    }
    engine.RunUntil(Sec(6));

    std::int64_t arrived = 0;
    std::int64_t departed = 0;
    std::int64_t charged = 0;
    for (int w = 0; w < engine_config.workers; ++w) {
      arrived += arrivals[static_cast<std::size_t>(w)];
      departed += departures[static_cast<std::size_t>(w)];
      charged += run_intervals[static_cast<std::size_t>(w)];
    }
    std::int64_t live = 0;
    engine.ForEachTask([&live](const sim::Task& task) {
      if (task.state() != sim::Task::State::kNew && task.state() != sim::Task::State::kExited) {
        ++live;
      }
    });
    EXPECT_EQ(arrived, total_tasks) << "seed " << seed;
    EXPECT_EQ(arrived, departed + live) << "seed " << seed;
    // Every reported run interval stems from a dispatch; the counts differ by
    // tasks still on-CPU at the horizon plus zero-length grants (dispatched
    // and preempted at the same tick), which the hook elides by contract.
    EXPECT_GT(charged, 0) << "seed " << seed;
    EXPECT_GE(engine.dispatches(), charged) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EventQueueFuzzTest,
                         ::testing::Values(SchedKind::kSfs, SchedKind::kHsfs, SchedKind::kSfq,
                                           SchedKind::kStride, SchedKind::kWfq, SchedKind::kBvt,
                                           SchedKind::kTimeshare, SchedKind::kRoundRobin,
                                           SchedKind::kLottery),
                         [](const ::testing::TestParamInfo<SchedKind>& param_info) {
                           std::string name(sched::SchedKindName(param_info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace sfs::eval

// Unit tests for the metrics library.

#include <gtest/gtest.h>

#include "src/metrics/fairness.h"
#include "src/metrics/response.h"
#include "src/metrics/service_sampler.h"
#include "src/sched/sfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::metrics {
namespace {

TEST(FairnessTest, WeightedServiceSpreadZeroWhenProportional) {
  EXPECT_DOUBLE_EQ(WeightedServiceSpread({30.0, 10.0}, {3.0, 1.0}), 0.0);
}

TEST(FairnessTest, WeightedServiceSpreadDetectsSkew) {
  EXPECT_DOUBLE_EQ(WeightedServiceSpread({40.0, 10.0}, {3.0, 1.0}), 40.0 / 3.0 - 10.0);
}

TEST(FairnessTest, JainIndexOneForProportional) {
  EXPECT_NEAR(JainIndex({30.0, 10.0, 20.0}, {3.0, 1.0, 2.0}), 1.0, 1e-12);
}

TEST(FairnessTest, JainIndexDropsForStarvation) {
  const double j = JainIndex({100.0, 0.0}, {1.0, 1.0});
  EXPECT_NEAR(j, 0.5, 1e-12);
}

TEST(FairnessTest, MaxGmsDeviation) {
  EXPECT_DOUBLE_EQ(MaxGmsDeviation({10.0, 20.0}, {12.0, 19.0}), 2.0);
  EXPECT_DOUBLE_EQ(MaxGmsDeviation({}, {}), 0.0);
}

TEST(FairnessTest, LongestStarvationFindsZeroRun) {
  // Increments: +1, 0, 0, 0, +1 -> longest flat run = 3 periods.
  const std::vector<Tick> series = {0, 1, 1, 1, 1, 2};
  EXPECT_EQ(LongestStarvation(series, Msec(100)), Msec(300));
}

TEST(FairnessTest, LongestStarvationZeroWhenAlwaysProgressing) {
  const std::vector<Tick> series = {0, 1, 2, 3};
  EXPECT_EQ(LongestStarvation(series, Msec(100)), 0);
}

TEST(FairnessTest, TailSlopeRatio) {
  const std::vector<Tick> a = {0, 10, 20, 30};
  const std::vector<Tick> b = {0, 5, 10, 15};
  EXPECT_DOUBLE_EQ(TailSlopeRatio(a, b, 1), 2.0);
}

TEST(ResponseTest, SummarizeComputesStats) {
  common::SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  const ResponseStats stats = Summarize(s);
  EXPECT_EQ(stats.samples, 100u);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 50.5);
  EXPECT_DOUBLE_EQ(stats.p95_ms, 95.0);
  EXPECT_DOUBLE_EQ(stats.max_ms, 100.0);
}

TEST(ServiceSamplerTest, AggregatesByLabel) {
  sched::SchedConfig config;
  config.num_cpus = 2;
  sched::Sfs scheduler(config);
  sim::Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "group"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "group"));
  ServiceSampler sampler(engine, Msec(500), {"group"});
  engine.RunUntil(Sec(2));
  const auto& series = sampler.Series("group");
  ASSERT_EQ(series.size(), 4u);
  // Two CPUs fully owned by the group: 1 s of aggregate service per 500 ms.
  EXPECT_EQ(series[0], Sec(1));
  EXPECT_EQ(series[3], Sec(4));
  EXPECT_EQ(sampler.times().back(), Sec(2));
}

TEST(ServiceSamplerTest, IncrementsDeriveFromSeries) {
  sched::SchedConfig config;
  config.num_cpus = 1;
  sched::Sfs scheduler(config);
  sim::Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "t"));
  ServiceSampler sampler(engine, Msec(250), {"t"});
  engine.RunUntil(Sec(1));
  const auto inc = sampler.Increments("t");
  ASSERT_EQ(inc.size(), 4u);
  EXPECT_EQ(inc[0], Msec(250));
  EXPECT_EQ(inc[1], Msec(250));
}

TEST(ServiceSamplerTest, UntrackedLabelsIgnored) {
  sched::SchedConfig config;
  config.num_cpus = 1;
  sched::Sfs scheduler(config);
  sim::Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "tracked"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "other"));
  ServiceSampler sampler(engine, Msec(500), {"tracked"});
  engine.RunUntil(Sec(1));
  // Only half the CPU went to "tracked".
  EXPECT_NEAR(static_cast<double>(sampler.Series("tracked").back()),
              static_cast<double>(Msec(500)), static_cast<double>(kDefaultQuantum));
}

}  // namespace
}  // namespace sfs::metrics

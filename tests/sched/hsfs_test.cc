// Tests for hierarchical SFS (the Section 5 future-work extension).

#include "src/sched/hsfs.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sched/sfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::sched {
namespace {

SchedConfig Config(int cpus, Tick quantum = kDefaultQuantum) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = quantum;
  return config;
}

TEST(HsfsTest, RootOnlyBehavesLikeFlatSfs) {
  // With every thread in the root class, H-SFS must produce the same dispatch
  // sequence as flat SFS.
  HierarchicalSfs hsfs(Config(2));
  Sfs sfs(Config(2));
  common::Rng rng(77);
  for (ThreadId tid = 1; tid <= 6; ++tid) {
    const auto w = static_cast<Weight>(rng.UniformInt(1, 8));
    hsfs.AddThread(tid, w);
    sfs.AddThread(tid, w);
  }
  std::vector<std::pair<ThreadId, CpuId>> running_h;
  std::vector<std::pair<ThreadId, CpuId>> running_s;
  for (CpuId c = 0; c < 2; ++c) {
    running_h.emplace_back(hsfs.PickNext(c), c);
    running_s.emplace_back(sfs.PickNext(c), c);
    ASSERT_EQ(running_h.back().first, running_s.back().first);
  }
  for (int i = 0; i < 400; ++i) {
    const auto [ht, hc] = running_h.front();
    const auto [st, sc] = running_s.front();
    running_h.erase(running_h.begin());
    running_s.erase(running_s.begin());
    const Tick q = Msec(rng.UniformInt(1, 200));
    hsfs.Charge(ht, q);
    sfs.Charge(st, q);
    const ThreadId hn = hsfs.PickNext(hc);
    const ThreadId sn = sfs.PickNext(sc);
    ASSERT_EQ(hn, sn) << "diverged at decision " << i;
    running_h.emplace_back(hn, hc);
    running_s.emplace_back(sn, sc);
  }
}

TEST(HsfsTest, ClassSharesFollowClassWeights) {
  // Two classes 3:1, each with plenty of threads, one CPU: aggregate service
  // must split 3:1 regardless of per-class thread counts (2 vs 6).
  HierarchicalSfs s(Config(1));
  s.CreateClass(1, kRootClass, 3.0);
  s.CreateClass(2, kRootClass, 1.0);
  ThreadId tid = 1;
  for (int i = 0; i < 2; ++i) {
    s.AddThreadToClass(tid++, 1.0, 1);
  }
  for (int i = 0; i < 6; ++i) {
    s.AddThreadToClass(tid++, 1.0, 2);
  }
  for (int i = 0; i < 4000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
  }
  const double ratio = static_cast<double>(s.ClassService(1)) /
                       static_cast<double>(s.ClassService(2));
  EXPECT_NEAR(ratio, 3.0, 0.15);
}

TEST(HsfsTest, IntraClassWeightsRespected) {
  HierarchicalSfs s(Config(1));
  s.CreateClass(1, kRootClass, 1.0);
  s.AddThreadToClass(10, 3.0, 1);
  s.AddThreadToClass(11, 1.0, 1);
  for (int i = 0; i < 4000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
  }
  const double ratio =
      static_cast<double>(s.TotalService(10)) / static_cast<double>(s.TotalService(11));
  EXPECT_NEAR(ratio, 3.0, 0.15);
}

TEST(HsfsTest, ClassCapacityCappedByRunnableLeaves) {
  // Class 1 (huge weight) has a single thread on a 2-CPU machine: it can use at
  // most one processor; class 2's two threads absorb the other.
  HierarchicalSfs s(Config(2));
  s.CreateClass(1, kRootClass, 100.0);
  s.CreateClass(2, kRootClass, 1.0);
  s.AddThreadToClass(10, 1.0, 1);
  s.AddThreadToClass(20, 1.0, 2);
  s.AddThreadToClass(21, 1.0, 2);
  EXPECT_NEAR(s.ClassShare(1), 0.5, 1e-9);
  EXPECT_NEAR(s.ClassShare(2), 0.5, 1e-9);

  std::vector<std::pair<ThreadId, CpuId>> running;
  for (CpuId c = 0; c < 2; ++c) {
    running.emplace_back(s.PickNext(c), c);
  }
  for (int i = 0; i < 2000; ++i) {
    const auto [t, c] = running.front();
    running.erase(running.begin());
    s.Charge(t, Msec(10));
    running.emplace_back(s.PickNext(c), c);
  }
  // Class 1's single thread held ~one CPU; class 2 split the other.
  EXPECT_NEAR(static_cast<double>(s.ClassService(1)) /
                  static_cast<double>(s.ClassService(2)),
              1.0, 0.1);
}

TEST(HsfsTest, NestedClassesComposeShares) {
  // root -> {A (w=1), B (w=1)}; B -> {B1 (w=3), B2 (w=1)}.  One CPU:
  // A 50%, B1 37.5%, B2 12.5%.
  HierarchicalSfs s(Config(1));
  s.CreateClass(1, kRootClass, 1.0);  // A
  s.CreateClass(2, kRootClass, 1.0);  // B
  s.CreateClass(3, 2, 3.0);           // B1
  s.CreateClass(4, 2, 1.0);           // B2
  s.AddThreadToClass(10, 1.0, 1);
  s.AddThreadToClass(30, 1.0, 3);
  s.AddThreadToClass(40, 1.0, 4);
  for (int i = 0; i < 8000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
  }
  const double total = static_cast<double>(s.ClassService(kRootClass));
  EXPECT_NEAR(static_cast<double>(s.ClassService(1)) / total, 0.50, 0.03);
  EXPECT_NEAR(static_cast<double>(s.ClassService(3)) / total, 0.375, 0.03);
  EXPECT_NEAR(static_cast<double>(s.ClassService(4)) / total, 0.125, 0.03);
}

TEST(HsfsTest, EmptyClassGetsNothingUntilPopulated) {
  HierarchicalSfs s(Config(1));
  s.CreateClass(1, kRootClass, 10.0);
  s.CreateClass(2, kRootClass, 1.0);
  s.AddThreadToClass(20, 1.0, 2);
  EXPECT_DOUBLE_EQ(s.ClassShare(1), 0.0);  // no runnable leaves
  EXPECT_EQ(s.PickNext(0), 20);
  s.Charge(20, Msec(10));
  // Populate class 1: its weight now dominates.
  s.AddThreadToClass(10, 1.0, 1);
  EXPECT_GT(s.ClassShare(1), 0.8);
}

TEST(HsfsTest, BlockedClassYieldsBandwidthAndGetsNoCredit) {
  HierarchicalSfs s(Config(1));
  s.CreateClass(1, kRootClass, 1.0);
  s.CreateClass(2, kRootClass, 1.0);
  s.AddThreadToClass(10, 1.0, 1);
  s.AddThreadToClass(20, 1.0, 2);
  // Class 1's only thread blocks; class 2 owns the CPU meanwhile.
  s.Block(10);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(s.PickNext(0), 20);
    s.Charge(20, Msec(200));
  }
  const Tick before = s.ClassService(2);
  s.Wakeup(10);
  // After waking, the split is 1:1 going forward — class 1 must not get a
  // catch-up burst for its sleep (class-level max(F, v) rule).
  int runs10 = 0;
  for (int i = 0; i < 20; ++i) {
    const ThreadId t = s.PickNext(0);
    runs10 += t == 10 ? 1 : 0;
    s.Charge(t, Msec(200));
  }
  EXPECT_EQ(runs10, 10);
  EXPECT_EQ(s.ClassService(2) - before, 10 * Msec(200));
}

TEST(HsfsTest, ClassServiceAggregatesAcrossDepartures) {
  HierarchicalSfs s(Config(1));
  s.CreateClass(1, kRootClass, 1.0);
  s.AddThreadToClass(10, 1.0, 1);
  ASSERT_EQ(s.PickNext(0), 10);
  s.Charge(10, Msec(300));
  s.RemoveThread(10);
  EXPECT_EQ(s.ClassService(1), Msec(300));
  // A successor thread keeps accumulating into the same class.
  s.AddThreadToClass(11, 1.0, 1);
  ASSERT_EQ(s.PickNext(0), 11);
  s.Charge(11, Msec(200));
  EXPECT_EQ(s.ClassService(1), Msec(500));
}

TEST(HsfsIntegrationTest, TwoDomainIsolationUnderChurn) {
  // Domain A (share 3) runs two steady hogs; domain B (share 1) churns short
  // jobs back to back.  A's aggregate bandwidth must stay at ~3/4 of the
  // machine despite B's arrival/departure stream.
  HierarchicalSfs scheduler(Config(1));
  scheduler.CreateClass(1, kRootClass, 3.0);
  scheduler.CreateClass(2, kRootClass, 1.0);
  sim::Engine engine(scheduler);

  scheduler.RouteThread(10, 1);
  scheduler.RouteThread(11, 1);
  engine.AddTaskAt(0, workload::MakeInf(10, 1.0, "A"));
  engine.AddTaskAt(0, workload::MakeInf(11, 1.0, "A"));

  ThreadId next_short = 100;
  engine.SetExitHook([&](sim::Engine& e, sim::Task& task) {
    if (task.label() == "B") {
      scheduler.RouteThread(next_short, 2);
      e.AddTaskAt(e.now(), workload::MakeFixedWork(next_short++, 1.0, Msec(300), "B"));
    }
  });
  scheduler.RouteThread(next_short, 2);
  engine.AddTaskAt(0, workload::MakeFixedWork(next_short++, 1.0, Msec(300), "B"));

  engine.RunUntil(Sec(60));
  const double a = static_cast<double>(scheduler.ClassService(1));
  const double b = static_cast<double>(scheduler.ClassService(2));
  // Class churn costs class B a little at the 200 ms quantum (the same tag
  // quantization as Figure 5); the split must remain close to 3:1 and far from
  // the 2:1 a flat scheduler would drift to under weight-1 churn.
  EXPECT_NEAR(a / b, 3.0, 0.6);
}

}  // namespace
}  // namespace sfs::sched

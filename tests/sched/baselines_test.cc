// Unit tests for the stride, WFQ and BVT baselines.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sched/bvt.h"
#include "src/sched/sfq.h"
#include "src/sched/stride.h"
#include "src/sched/wfq.h"

namespace sfs::sched {
namespace {

SchedConfig Config(int cpus, bool readjust = true) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.use_readjustment = readjust;
  return config;
}

// --- stride ---------------------------------------------------------------------

TEST(StrideTest, ProportionalOnUniprocessor) {
  Stride s(Config(1));
  s.AddThread(1, 5.0);
  s.AddThread(2, 1.0);
  Tick service1 = 0;
  Tick service2 = 0;
  for (int i = 0; i < 6000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
    (t == 1 ? service1 : service2) += Msec(10);
  }
  EXPECT_NEAR(static_cast<double>(service1) / static_cast<double>(service2), 5.0, 0.05);
}

TEST(StrideTest, PassAdvancesInverselyToWeight) {
  // Readjustment off: with one runnable thread on one CPU the instantaneous
  // weight would otherwise be normalized to 1.
  Stride s(Config(1, /*readjust=*/false));
  s.AddThread(1, 4.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(80));
  EXPECT_DOUBLE_EQ(s.Pass(1), static_cast<double>(Msec(80)) / 4.0);
}

TEST(StrideTest, ArrivalStartsAtGlobalPass) {
  Stride s(Config(1));
  s.AddThread(1, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(300));
  s.AddThread(2, 1.0);
  EXPECT_DOUBLE_EQ(s.Pass(2), s.GlobalPass());
}

TEST(StrideTest, SleeperCannotBankCredit) {
  Stride s(Config(1));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.Block(2);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(s.PickNext(0), 1);
    s.Charge(1, Msec(100));
  }
  s.Wakeup(2);
  EXPECT_DOUBLE_EQ(s.Pass(2), s.GlobalPass());
}

TEST(StrideTest, ReadjustmentCapsInfeasibleWeight) {
  Stride s(Config(2, /*readjust=*/true));
  s.AddThread(1, 100.0);
  s.AddThread(2, 1.0);
  s.AddThread(3, 1.0);
  const double total = s.GetPhi(1) + s.GetPhi(2) + s.GetPhi(3);
  EXPECT_NEAR(s.GetPhi(1) / total, 0.5, 1e-9);
}

// --- WFQ ------------------------------------------------------------------------

TEST(WfqTest, PicksMinimumFinishTag) {
  Wfq s(Config(1));
  s.AddThread(1, 10.0);  // predicted F = Q/10
  s.AddThread(2, 1.0);   // predicted F = Q
  EXPECT_EQ(s.PickNext(0), 1);
}

TEST(WfqTest, ProportionalOnUniprocessor) {
  Wfq s(Config(1));
  s.AddThread(1, 3.0);
  s.AddThread(2, 1.0);
  Tick service1 = 0;
  Tick service2 = 0;
  for (int i = 0; i < 6000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
    (t == 1 ? service1 : service2) += Msec(10);
  }
  EXPECT_NEAR(static_cast<double>(service1) / static_cast<double>(service2), 3.0, 0.1);
}

TEST(WfqTest, FinishTagRecomputedAfterWeightChange) {
  Wfq s(Config(2));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.AddThread(3, 1.0);
  const double f_before = s.FinishTag(1);
  s.SetWeight(1, 4.0);
  EXPECT_LT(s.FinishTag(1), f_before);  // larger weight -> earlier finish
}

// --- BVT ------------------------------------------------------------------------

TEST(BvtTest, ZeroWarpMatchesSfqDispatchSequence) {
  // "BVT reduces to SFQ when the latency parameter is set to zero."
  Bvt bvt(Config(1));
  Sfq sfq(Config(1));
  common::Rng rng(12);
  for (ThreadId tid = 1; tid <= 5; ++tid) {
    const auto w = static_cast<Weight>(rng.UniformInt(1, 8));
    bvt.AddThread(tid, w);
    sfq.AddThread(tid, w);
  }
  for (int i = 0; i < 500; ++i) {
    const ThreadId a = bvt.PickNext(0);
    const ThreadId b = sfq.PickNext(0);
    ASSERT_EQ(a, b) << "diverged at decision " << i;
    const Tick q = Msec(rng.UniformInt(1, 100));
    bvt.Charge(a, q);
    sfq.Charge(b, q);
  }
}

TEST(BvtTest, WarpGivesDispatchPreference) {
  Bvt s(Config(1));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  // Both at virtual time 0; warping thread 2 pulls its effective VT negative.
  s.SetWarp(2, static_cast<double>(Msec(50)));
  EXPECT_EQ(s.PickNext(0), 2);
  s.Charge(2, Msec(40));
  // Still warped ahead: effective VT = 40ms - 50ms < 0 <= thread 1.
  EXPECT_EQ(s.PickNext(0), 2);
  s.Charge(2, Msec(40));
  // Warp exhausted: 80ms - 50ms > 0 -> thread 1 runs.
  EXPECT_EQ(s.PickNext(0), 1);
}

TEST(BvtTest, WarpRemovalRestoresFairOrder) {
  Bvt s(Config(1));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.SetWarp(2, static_cast<double>(Msec(100)));
  ASSERT_EQ(s.PickNext(0), 2);
  s.Charge(2, Msec(60));
  s.SetWarp(2, 0.0);
  EXPECT_EQ(s.PickNext(0), 1);  // actual VT 0 < 60ms
}

TEST(BvtTest, ProportionalOverLongRun) {
  Bvt s(Config(1));
  s.AddThread(1, 2.0);
  s.AddThread(2, 1.0);
  Tick service1 = 0;
  Tick service2 = 0;
  for (int i = 0; i < 6000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
    (t == 1 ? service1 : service2) += Msec(10);
  }
  EXPECT_NEAR(static_cast<double>(service1) / static_cast<double>(service2), 2.0, 0.05);
}

}  // namespace
}  // namespace sfs::sched

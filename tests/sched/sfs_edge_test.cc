// Additional SFS edge-case and equivalence tests: tag rebasing with sleepers,
// fixed-point vs exact decision agreement, heuristic refresh behaviour, and
// weight-change corner cases.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/sched/sfs.h"

namespace sfs::sched {
namespace {

SchedConfig Config(int cpus, Tick quantum = kDefaultQuantum) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = quantum;
  return config;
}

TEST(SfsEdgeTest, RebaseWhileThreadSleepsKeepsWakeRuleIntact) {
  SchedConfig config = Config(1, Msec(10));
  config.tag_rebase_threshold = static_cast<double>(Msec(100));
  Sfs s(config);
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  // Thread 2 runs a little, then sleeps across several rebases.
  ASSERT_NE(s.PickNext(0), kInvalidThread);
  s.Charge(s.RunningOn(0), Msec(10));
  s.Block(2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(s.PickNext(0), 1);
    s.Charge(1, Msec(10));
  }
  EXPECT_GT(s.rebases(), 0);
  s.Wakeup(2);
  // The sleeper's rebased finish tag is far below the virtual time: its start
  // tag clamps to v, and the 1:1 split resumes without a catch-up burst.
  EXPECT_DOUBLE_EQ(s.StartTag(2), s.VirtualTime());
  int runs2 = 0;
  for (int i = 0; i < 20; ++i) {
    const ThreadId t = s.PickNext(0);
    runs2 += t == 2 ? 1 : 0;
    s.Charge(t, Msec(10));
  }
  EXPECT_EQ(runs2, 10);
}

TEST(SfsEdgeTest, FixedPointHighPrecisionMatchesExactShares) {
  // Individual decisions may legitimately differ (1e-8 quantization flips
  // near-ties), but long-run per-thread service must agree closely.
  auto run = [](int digits) {
    SchedConfig config = Config(2, Msec(20));
    config.fixed_point_digits = digits;
    Sfs s(config);
    common::Rng rng(1234);
    for (ThreadId tid = 1; tid <= 8; ++tid) {
      s.AddThread(tid, static_cast<Weight>(rng.UniformInt(1, 16)));
    }
    std::vector<std::pair<ThreadId, CpuId>> running;
    for (CpuId c = 0; c < 2; ++c) {
      running.emplace_back(s.PickNext(c), c);
    }
    for (int i = 0; i < 8000; ++i) {
      const auto [t, c] = running.front();
      running.erase(running.begin());
      s.Charge(t, Msec(20));
      running.emplace_back(s.PickNext(c), c);
    }
    std::vector<Tick> services;
    for (ThreadId tid = 1; tid <= 8; ++tid) {
      services.push_back(s.TotalService(tid));
    }
    return services;
  };
  const auto exact = run(-1);
  const auto fixed = run(8);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(fixed[i]) / static_cast<double>(exact[i]), 1.0, 0.02)
        << "thread " << i + 1;
  }
}

TEST(SfsEdgeTest, WeightDecreaseOnUncappedThreadTakesEffect) {
  // Regression test: phi must track a weight *decrease* of a never-capped
  // thread (an early implementation only rewrote phi for cap transitions).
  Sfs s(Config(1));
  s.AddThread(1, 8.0);
  s.AddThread(2, 1.0);
  s.SetWeight(1, 2.0);
  EXPECT_DOUBLE_EQ(s.GetPhi(1), 2.0);
  Tick service1 = 0;
  Tick service2 = 0;
  for (int i = 0; i < 3000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
    (t == 1 ? service1 : service2) += Msec(10);
  }
  EXPECT_NEAR(static_cast<double>(service1) / static_cast<double>(service2), 2.0, 0.05);
}

TEST(SfsEdgeTest, WeightChangeOnBlockedThreadAppliesOnWake) {
  Sfs s(Config(2));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.AddThread(3, 1.0);
  s.Block(3);
  s.SetWeight(3, 100.0);  // while blocked
  EXPECT_DOUBLE_EQ(s.GetWeight(3), 100.0);
  s.Wakeup(3);
  // On wake the readjustment caps the now-infeasible request at share 1/2.
  const double total = s.GetPhi(1) + s.GetPhi(2) + s.GetPhi(3);
  EXPECT_NEAR(s.GetPhi(3) / total, 0.5, 1e-9);
}

TEST(SfsEdgeTest, HeuristicModeStaysProportionalOverLongRuns) {
  SchedConfig config = Config(2, Msec(20));
  config.heuristic_k = 10;
  Sfs s(config);
  common::Rng rng(555);
  std::vector<Weight> weights = {1, 2, 3, 4, 5, 6, 7, 8};
  for (ThreadId tid = 1; tid <= 8; ++tid) {
    s.AddThread(tid, weights[static_cast<std::size_t>(tid - 1)]);
  }
  std::vector<std::pair<ThreadId, CpuId>> running;
  for (CpuId c = 0; c < 2; ++c) {
    running.emplace_back(s.PickNext(c), c);
  }
  for (int i = 0; i < 20000; ++i) {
    const auto [t, c] = running.front();
    running.erase(running.begin());
    s.Charge(t, Msec(20));
    running.emplace_back(s.PickNext(c), c);
  }
  // Weighted service should be near-equal across threads (feasible weights):
  // total weight 36, so thread i's share = w_i/36 of 2 CPUs.
  for (ThreadId tid = 1; tid <= 8; ++tid) {
    const double got = static_cast<double>(s.TotalService(tid));
    const double expected = 20000.0 * static_cast<double>(Msec(20)) / 2.0 * 2.0 *
                            weights[static_cast<std::size_t>(tid - 1)] / 36.0;
    EXPECT_NEAR(got / expected, 1.0, 0.05) << "thread " << tid;
  }
}

TEST(SfsEdgeTest, ManyCpusFewThreadsAllRun) {
  Sfs s(Config(8));
  for (ThreadId tid = 1; tid <= 3; ++tid) {
    s.AddThread(tid, static_cast<Weight>(tid));
  }
  // Three threads, eight CPUs: everyone gets a processor; five stay idle.
  std::vector<ThreadId> picked;
  for (CpuId c = 0; c < 8; ++c) {
    const ThreadId t = s.PickNext(c);
    if (t != kInvalidThread) {
      picked.push_back(t);
    }
  }
  EXPECT_EQ(picked.size(), 3u);
}

TEST(SfsEdgeTest, DepartureOfVirtualTimeHolderAdvancesV) {
  Sfs s(Config(1, Msec(10)));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(10));
  // Thread 2 has S=0 and holds v; removing it must advance v to thread 1's tag.
  const double v_before = s.VirtualTime();
  EXPECT_DOUBLE_EQ(v_before, 0.0);
  s.RemoveThread(2);
  EXPECT_DOUBLE_EQ(s.VirtualTime(), s.StartTag(1));
}

TEST(SfsEdgeTest, ChargeZeroTicksIsValid) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, 0);  // preempted before running (context-switch window)
  EXPECT_DOUBLE_EQ(s.StartTag(1), 0.0);
  EXPECT_EQ(s.PickNext(0), 1);
}

}  // namespace
}  // namespace sfs::sched

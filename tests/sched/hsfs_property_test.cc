// Property tests for hierarchical SFS: measured class allocations must match an
// independent analytic computation of the capacity-capped weighted shares.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/common/rng.h"
#include "src/sched/hsfs.h"

namespace sfs::sched {
namespace {

// Reference water-fill: shares proportional to weights, capped, surplus
// redistributed.  Independent reimplementation (simpler, O(n^2)) used only as a
// test oracle.
std::vector<double> OracleWaterFill(const std::vector<double>& weights,
                                    const std::vector<double>& caps) {
  const std::size_t n = weights.size();
  std::vector<double> shares(n, 0.0);
  std::vector<bool> pinned(n, false);
  for (;;) {
    double free_weight = 0.0;
    double remaining = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (pinned[i]) {
        remaining -= caps[i];
      } else {
        free_weight += weights[i];
      }
    }
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (pinned[i]) {
        shares[i] = caps[i];
        continue;
      }
      shares[i] = remaining * weights[i] / free_weight;
      if (shares[i] > caps[i] + 1e-12) {
        pinned[i] = true;
        changed = true;
      }
    }
    if (!changed) {
      return shares;
    }
  }
}

TEST(HsfsPropertyTest, TwoLevelSharesMatchOracle) {
  common::Rng rng(31337);
  for (int trial = 0; trial < 40; ++trial) {
    const int cpus = static_cast<int>(rng.UniformInt(1, 4));
    const int num_classes = static_cast<int>(rng.UniformInt(2, 5));

    SchedConfig config;
    config.num_cpus = cpus;
    config.quantum = Msec(10);
    HierarchicalSfs s(config);

    std::vector<double> class_weights;
    std::vector<double> caps;
    std::vector<int> members;
    ThreadId next_tid = 1;
    for (int c = 0; c < num_classes; ++c) {
      const double w = static_cast<double>(rng.UniformInt(1, 10));
      const int m = static_cast<int>(rng.UniformInt(1, 4));
      class_weights.push_back(w);
      members.push_back(m);
      caps.push_back(std::min(1.0, static_cast<double>(m) / static_cast<double>(cpus)));
      s.CreateClass(c + 1, kRootClass, w);
      for (int i = 0; i < m; ++i) {
        s.AddThreadToClass(next_tid++, 1.0, c + 1);
      }
    }

    // The scheduler's instantaneous shares must match the oracle.
    const std::vector<double> expected = OracleWaterFill(class_weights, caps);
    for (int c = 0; c < num_classes; ++c) {
      EXPECT_NEAR(s.ClassShare(c + 1), expected[static_cast<std::size_t>(c)], 1e-9)
          << "trial " << trial << " class " << c + 1 << " cpus " << cpus;
    }

    // And the long-run service must track those shares.
    std::vector<std::pair<ThreadId, CpuId>> running;
    for (CpuId cpu = 0; cpu < cpus; ++cpu) {
      const ThreadId t = s.PickNext(cpu);
      if (t != kInvalidThread) {
        running.emplace_back(t, cpu);
      }
    }
    const int decisions = 6000;
    for (int i = 0; i < decisions && !running.empty(); ++i) {
      const auto [t, cpu] = running.front();
      running.erase(running.begin());
      s.Charge(t, Msec(10));
      const ThreadId n = s.PickNext(cpu);
      if (n != kInvalidThread) {
        running.emplace_back(n, cpu);
      }
    }
    Tick total = 0;
    for (int c = 0; c < num_classes; ++c) {
      total += s.ClassService(c + 1);
    }
    for (int c = 0; c < num_classes; ++c) {
      const double got =
          static_cast<double>(s.ClassService(c + 1)) / static_cast<double>(total);
      const double sum_shares = std::accumulate(expected.begin(), expected.end(), 0.0);
      const double want = expected[static_cast<std::size_t>(c)] / sum_shares;
      EXPECT_NEAR(got, want, 0.05) << "trial " << trial << " class " << c + 1;
    }
  }
}

TEST(HsfsPropertyTest, SharesSumToCapacityBound) {
  // With fewer runnable leaves than processors the total share is capped by the
  // leaf count; otherwise it is 1.
  SchedConfig config;
  config.num_cpus = 4;
  HierarchicalSfs s(config);
  s.CreateClass(1, kRootClass, 1.0);
  s.AddThreadToClass(1, 1.0, 1);
  s.AddThreadToClass(2, 1.0, 1);
  // 2 leaves on 4 CPUs: the class can use at most 2/4 of the machine.
  EXPECT_NEAR(s.ClassShare(1), 0.5, 1e-9);
  s.AddThreadToClass(3, 1.0, 1);
  s.AddThreadToClass(4, 1.0, 1);
  EXPECT_NEAR(s.ClassShare(1), 1.0, 1e-9);
}

}  // namespace
}  // namespace sfs::sched

// Tests for the Section 5 future-work extensions: the latency warp, the
// processor-affinity dispatch window, and the feedback weight controller.

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/sched/feedback.h"
#include "src/sched/sfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::sched {
namespace {

SchedConfig Config(int cpus, Tick quantum = kDefaultQuantum) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = quantum;
  return config;
}

// --- latency warp -----------------------------------------------------------------

TEST(SfsWarpTest, WarpedThreadDispatchedFirstOnTies) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.SetWarp(2, static_cast<double>(Msec(50)));
  EXPECT_EQ(s.PickNext(0), 2);
  s.Charge(2, Msec(40));
  // Effective surplus of 2 is still negative (40ms tag - 50ms warp < 0).
  EXPECT_EQ(s.PickNext(0), 2);
  s.Charge(2, Msec(40));
  // Warp exhausted relative to its tag lead: thread 1 runs.
  EXPECT_EQ(s.PickNext(0), 1);
}

TEST(SfsWarpTest, LongRunSharesUnaffectedByWarp) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.SetWarp(2, static_cast<double>(Msec(100)));
  Tick service1 = 0;
  Tick service2 = 0;
  for (int i = 0; i < 2000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
    (t == 1 ? service1 : service2) += Msec(10);
  }
  // Warp shifts *when* a thread runs, not *how much*: shares stay 1:1.
  EXPECT_NEAR(static_cast<double>(service2) / static_cast<double>(service1), 1.0, 0.05);
}

TEST(SfsWarpTest, WarpImprovesInteractiveResponseUnderLoad) {
  auto run = [](double warp_ms) {
    Sfs scheduler(Config(1, Msec(200)));
    sim::Engine engine(scheduler);
    common::SampleSet responses;
    workload::Interact::Params params;
    params.mean_think = Msec(80);
    params.burst = Msec(4);
    params.seed = 11;
    engine.AddTaskAt(0, workload::MakeInteract(1, 1.0, params, &responses, "i"));
    for (ThreadId tid = 2; tid <= 4; ++tid) {
      engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, "hog"));
    }
    engine.RunUntil(Msec(10));  // let the interact thread register
    scheduler.SetWarp(1, warp_ms * 1000.0);
    engine.RunUntil(Sec(30));
    return responses.mean();
  };
  const double plain = run(0.0);
  const double warped = run(200.0);
  EXPECT_LT(warped, plain);
  EXPECT_LT(warped, 10.0);
}

TEST(SfsWarpTest, RemovingWarpRestoresOrder) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.SetWarp(2, static_cast<double>(Msec(500)));
  ASSERT_EQ(s.PickNext(0), 2);
  s.Charge(2, Msec(100));
  s.SetWarp(2, 0.0);
  EXPECT_EQ(s.PickNext(0), 1);  // thread 2's actual tags are ahead now
}

// --- processor affinity ------------------------------------------------------------

TEST(SfsAffinityTest, PrefersLastCpuWithinTolerance) {
  SchedConfig config = Config(2);
  config.affinity_tolerance = Msec(300);
  Sfs s(config);
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  // Establish affinities: 1 ran on CPU 0, 2 ran on CPU 1.
  ASSERT_EQ(s.PickNext(0), 1);
  ASSERT_EQ(s.PickNext(1), 2);
  s.Charge(1, Msec(100));
  s.Charge(2, Msec(120));
  // CPU 1 asks next.  Strict SFS would give it thread 1 (smaller surplus), but
  // thread 2's surplus is within tolerance and it is cache-warm on CPU 1.
  EXPECT_EQ(s.PickNext(1), 2);
  EXPECT_EQ(s.PickNext(0), 1);
}

TEST(SfsAffinityTest, ToleranceZeroKeepsStrictOrder) {
  Sfs s(Config(2));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  ASSERT_EQ(s.PickNext(1), 2);
  s.Charge(1, Msec(100));
  s.Charge(2, Msec(120));
  // Affinity off: CPU 1 gets the strictly-least-surplus thread 1.
  EXPECT_EQ(s.PickNext(1), 1);
}

TEST(SfsAffinityTest, ToleranceBoundsUnfairness) {
  SchedConfig config = Config(2, Msec(100));
  config.affinity_tolerance = Msec(150);
  Sfs s(config);
  for (ThreadId tid = 1; tid <= 6; ++tid) {
    s.AddThread(tid, 1.0);
  }
  std::vector<std::pair<ThreadId, CpuId>> running;
  for (CpuId c = 0; c < 2; ++c) {
    running.emplace_back(s.PickNext(c), c);
  }
  std::map<ThreadId, Tick> service;
  for (int i = 0; i < 3000; ++i) {
    const auto [t, c] = running.front();
    running.erase(running.begin());
    s.Charge(t, Msec(100));
    service[t] += Msec(100);
    running.emplace_back(s.PickNext(c), c);
  }
  Tick lo = INT64_MAX;
  Tick hi = 0;
  for (const auto& [tid, svc] : service) {
    lo = std::min(lo, svc);
    hi = std::max(hi, svc);
  }
  // Equal weights: affinity may skew short-term order but not long-run shares
  // beyond the tolerance scale.
  EXPECT_LT(static_cast<double>(hi - lo) / static_cast<double>(hi), 0.05);
}

TEST(SfsAffinityTest, ReducesMigrationsInSimulation) {
  // Mixed weights make the dispatch order aperiodic, so the affinity-blind
  // scheduler bounces threads between the processors.
  auto run = [](Tick tolerance) {
    SchedConfig config = Config(2, Msec(50));
    config.affinity_tolerance = tolerance;
    Sfs scheduler(config);
    sim::Engine engine(scheduler);
    for (ThreadId tid = 1; tid <= 6; ++tid) {
      engine.AddTaskAt(0, workload::MakeInf(tid, static_cast<double>(tid), "t"));
    }
    engine.RunUntil(Sec(30));
    return engine.migrations();
  };
  const std::int64_t blind = run(0);
  const std::int64_t affine = run(Msec(100));
  EXPECT_GT(blind, 20);
  EXPECT_LT(affine, blind / 2);  // dramatically fewer cross-CPU moves
}

// --- feedback weight controller -----------------------------------------------------

TEST(FeedbackTest, ConvergesToTargetShareFromBelow) {
  Sfs scheduler(Config(2, Msec(20)));
  sim::Engine engine(scheduler);
  for (ThreadId tid = 1; tid <= 5; ++tid) {
    engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, tid == 1 ? "managed" : "bg"));
  }
  engine.RunUntil(Msec(1));  // admit everyone

  WeightController::Params params;
  params.target_share = 0.30;  // 0.6 CPUs of the 2-CPU machine
  WeightController controller(scheduler, 1, params);

  Tick last_service = 0;
  engine.AddPeriodicHook(Msec(500), [&](sim::Engine& e) {
    const Tick now_service = e.ServiceIncludingRunning(1);
    controller.Observe(now_service - last_service, Msec(500));
    last_service = now_service;
  });
  engine.RunUntil(Sec(30));

  // Share over the last stretch of the run.
  const double final_share = controller.last_observed_share();
  EXPECT_NEAR(final_share, 0.30, 0.05);
  EXPECT_GT(controller.current_weight(), 1.0);  // had to outweigh 4 competitors
}

TEST(FeedbackTest, ConvergesToTargetShareFromAbove) {
  Sfs scheduler(Config(1, Msec(20)));
  sim::Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 10.0, "managed"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "bg"));
  engine.RunUntil(Msec(1));

  WeightController::Params params;
  params.target_share = 0.20;
  WeightController controller(scheduler, 1, params);
  Tick last_service = 0;
  engine.AddPeriodicHook(Msec(500), [&](sim::Engine& e) {
    const Tick now_service = e.ServiceIncludingRunning(1);
    controller.Observe(now_service - last_service, Msec(500));
    last_service = now_service;
  });
  engine.RunUntil(Sec(30));
  EXPECT_NEAR(controller.last_observed_share(), 0.20, 0.05);
  EXPECT_LT(controller.current_weight(), 10.0);
}

TEST(FeedbackTest, ReconvergesWhenCompetitionChanges) {
  Sfs scheduler(Config(1, Msec(20)));
  sim::Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "managed"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "bg"));
  // Two more competitors join mid-run.
  engine.AddTaskAt(Sec(15), workload::MakeInf(3, 1.0, "bg"));
  engine.AddTaskAt(Sec(15), workload::MakeInf(4, 1.0, "bg"));
  engine.RunUntil(Msec(1));

  WeightController::Params params;
  params.target_share = 0.40;
  WeightController controller(scheduler, 1, params);
  Tick last_service = 0;
  engine.AddPeriodicHook(Msec(500), [&](sim::Engine& e) {
    const Tick now_service = e.ServiceIncludingRunning(1);
    controller.Observe(now_service - last_service, Msec(500));
    last_service = now_service;
  });
  engine.RunUntil(Sec(40));
  // Despite doubled competition at t=15s, the controller re-converges.
  EXPECT_NEAR(controller.last_observed_share(), 0.40, 0.06);
}

TEST(FeedbackTest, StarvationRampsUp) {
  Sfs scheduler(Config(1));
  scheduler.AddThread(1, 1.0);
  WeightController::Params params;
  params.target_share = 0.5;
  WeightController controller(scheduler, 1, params);
  const Weight before = controller.current_weight();
  controller.Observe(0, Msec(500));  // got nothing at all
  EXPECT_GE(controller.current_weight(), before * 2);
}

TEST(FeedbackTest, DepartedThreadIsANoOp) {
  Sfs scheduler(Config(1));
  scheduler.AddThread(1, 1.0);
  WeightController::Params params;
  WeightController controller(scheduler, 1, params);
  scheduler.RemoveThread(1);
  controller.Observe(Msec(100), Msec(500));  // must not crash or SetWeight
  SUCCEED();
}

}  // namespace
}  // namespace sfs::sched

// Protocol-level tests run against every scheduling policy in the library: the
// base-class invariants of Section 3.1's kernel hook points must hold regardless
// of policy.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/sched/factory.h"

namespace sfs::sched {
namespace {

class ProtocolTest : public ::testing::TestWithParam<SchedKind> {
 protected:
  std::unique_ptr<Scheduler> Make(int cpus = 2) {
    SchedConfig config;
    config.num_cpus = cpus;
    return CreateScheduler(GetParam(), config);
  }
};

TEST_P(ProtocolTest, NameIsNonEmpty) {
  auto s = Make();
  EXPECT_FALSE(s->name().empty());
}

TEST_P(ProtocolTest, AddThreadMakesRunnable) {
  auto s = Make();
  s->AddThread(1, 1.0);
  EXPECT_TRUE(s->Contains(1));
  EXPECT_TRUE(s->IsRunnable(1));
  EXPECT_FALSE(s->IsRunning(1));
  EXPECT_EQ(s->runnable_count(), 1);
  EXPECT_EQ(s->thread_count(), 1);
}

TEST_P(ProtocolTest, PickNextReturnsOnlyRunnableThread) {
  auto s = Make();
  s->AddThread(1, 1.0);
  EXPECT_EQ(s->PickNext(0), 1);
  EXPECT_TRUE(s->IsRunning(1));
  EXPECT_EQ(s->RunningOn(0), 1);
}

TEST_P(ProtocolTest, PickNextEmptyReturnsInvalid) {
  auto s = Make();
  EXPECT_EQ(s->PickNext(0), kInvalidThread);
}

TEST_P(ProtocolTest, RunningThreadNotPickedOnOtherCpu) {
  auto s = Make();
  s->AddThread(1, 1.0);
  EXPECT_EQ(s->PickNext(0), 1);
  EXPECT_EQ(s->PickNext(1), kInvalidThread);  // only thread is already running
}

TEST_P(ProtocolTest, TwoThreadsRunConcurrently) {
  auto s = Make();
  s->AddThread(1, 1.0);
  s->AddThread(2, 1.0);
  const ThreadId first = s->PickNext(0);
  const ThreadId second = s->PickNext(1);
  EXPECT_NE(first, kInvalidThread);
  EXPECT_NE(second, kInvalidThread);
  EXPECT_NE(first, second);
}

TEST_P(ProtocolTest, ChargeFreesTheCpu) {
  auto s = Make();
  s->AddThread(1, 1.0);
  ASSERT_EQ(s->PickNext(0), 1);
  s->Charge(1, Msec(100));
  EXPECT_FALSE(s->IsRunning(1));
  EXPECT_EQ(s->RunningOn(0), kInvalidThread);
  EXPECT_EQ(s->TotalService(1), Msec(100));
  // Still runnable: can be picked again.
  EXPECT_EQ(s->PickNext(0), 1);
}

TEST_P(ProtocolTest, ServiceAccumulatesAcrossQuanta) {
  auto s = Make();
  s->AddThread(1, 1.0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(s->PickNext(0), 1);
    s->Charge(1, Msec(10));
  }
  EXPECT_EQ(s->TotalService(1), Msec(50));
}

TEST_P(ProtocolTest, BlockAndWakeup) {
  auto s = Make();
  s->AddThread(1, 1.0);
  s->AddThread(2, 1.0);
  s->Block(1);
  EXPECT_FALSE(s->IsRunnable(1));
  EXPECT_EQ(s->runnable_count(), 1);
  // Blocked thread is never picked.
  EXPECT_EQ(s->PickNext(0), 2);
  s->Wakeup(1);
  EXPECT_TRUE(s->IsRunnable(1));
  EXPECT_EQ(s->PickNext(1), 1);
}

TEST_P(ProtocolTest, RemoveRunnableThread) {
  auto s = Make();
  s->AddThread(1, 1.0);
  s->AddThread(2, 1.0);
  s->RemoveThread(1);
  EXPECT_FALSE(s->Contains(1));
  EXPECT_EQ(s->thread_count(), 1);
  EXPECT_EQ(s->PickNext(0), 2);
}

TEST_P(ProtocolTest, RemoveBlockedThread) {
  auto s = Make();
  s->AddThread(1, 1.0);
  s->Block(1);
  s->RemoveThread(1);
  EXPECT_FALSE(s->Contains(1));
  EXPECT_EQ(s->runnable_count(), 0);
}

TEST_P(ProtocolTest, SetWeightIsVisible) {
  auto s = Make();
  s->AddThread(1, 1.0);
  s->SetWeight(1, 5.0);
  EXPECT_DOUBLE_EQ(s->GetWeight(1), 5.0);
}

TEST_P(ProtocolTest, QuantumForIsPositive) {
  auto s = Make();
  s->AddThread(1, 1.0);
  EXPECT_GT(s->QuantumFor(1), 0);
}

TEST_P(ProtocolTest, WorkConservingUnderChurn) {
  // Under any interleaving of lifecycle events, PickNext must hand out a thread
  // whenever one is eligible (work conservation) and never a running/blocked one.
  auto s = Make(2);
  common::Rng rng(99);
  std::set<ThreadId> known;
  std::set<ThreadId> blocked;
  std::vector<std::pair<ThreadId, CpuId>> running;
  std::vector<CpuId> free_cpus = {0, 1};
  ThreadId next_tid = 1;

  auto is_running = [&](ThreadId tid) {
    for (const auto& [rtid, cpu] : running) {
      if (rtid == tid) {
        return true;
      }
    }
    return false;
  };

  for (int step = 0; step < 4000; ++step) {
    const auto op = rng.NextBounded(5);
    if (op == 0 && known.size() < 20) {
      const ThreadId tid = next_tid++;
      s->AddThread(tid, static_cast<double>(rng.UniformInt(1, 10)));
      known.insert(tid);
    } else if (op == 1 && !known.empty()) {
      // Remove a random non-running thread.
      for (ThreadId tid : known) {
        if (!is_running(tid)) {
          s->RemoveThread(tid);
          known.erase(tid);
          blocked.erase(tid);
          break;
        }
      }
    } else if (op == 2 && !known.empty()) {
      // Block a random runnable, non-running thread.
      for (ThreadId tid : known) {
        if (blocked.count(tid) == 0 && !is_running(tid)) {
          s->Block(tid);
          blocked.insert(tid);
          break;
        }
      }
    } else if (op == 3 && !blocked.empty()) {
      const ThreadId tid = *blocked.begin();
      s->Wakeup(tid);
      blocked.erase(tid);
    } else {
      // Dispatch cycle on a free CPU, then charge.
      if (!free_cpus.empty()) {
        const CpuId cpu = free_cpus.back();
        const ThreadId picked = s->PickNext(cpu);
        const int eligible = s->runnable_count() - static_cast<int>(running.size());
        if (eligible > 0) {
          ASSERT_NE(picked, kInvalidThread) << "not work conserving at step " << step;
        }
        if (picked != kInvalidThread) {
          ASSERT_TRUE(s->IsRunnable(picked));
          ASSERT_EQ(blocked.count(picked), 0u);
          running.emplace_back(picked, cpu);
          free_cpus.pop_back();
        }
      } else {
        const auto [victim, cpu] = running.front();
        running.erase(running.begin());
        s->Charge(victim, Msec(rng.UniformInt(1, 200)));
        free_cpus.push_back(cpu);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ProtocolTest,
    ::testing::Values(SchedKind::kSfs, SchedKind::kHsfs, SchedKind::kSfq, SchedKind::kStride,
                      SchedKind::kWfq, SchedKind::kBvt, SchedKind::kTimeshare,
                      SchedKind::kRoundRobin, SchedKind::kLottery),
    [](const ::testing::TestParamInfo<SchedKind>& param_info) {
      std::string name(SchedKindName(param_info.param));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace sfs::sched

// Unit tests for the TagArith policy (kernel fixed-point emulation, §3.2).

#include "src/sched/tag_arith.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace sfs::sched {
namespace {

TEST(TagArithTest, ExactModePassesThrough) {
  TagArith arith(-1);
  EXPECT_FALSE(arith.fixed_point());
  EXPECT_DOUBLE_EQ(arith.WeightedService(Msec(200), 3.0),
                   static_cast<double>(Msec(200)) / 3.0);
}

TEST(TagArithTest, FixedPointQuantizesToScale) {
  TagArith arith(4);  // the paper's 10^4
  EXPECT_TRUE(arith.fixed_point());
  EXPECT_EQ(arith.scale(), 10000);
  const double v = arith.WeightedService(Msec(200), 3.0);
  // Result is a multiple of 10^-4 and within half a quantum of exact.
  EXPECT_NEAR(v * 10000.0, std::round(v * 10000.0), 1e-6);
  EXPECT_NEAR(v, static_cast<double>(Msec(200)) / 3.0, 0.5 / 10000.0 + 1e-9);
}

TEST(TagArithTest, ZeroDigitsIsWholeUnits) {
  TagArith arith(0);
  const double v = arith.WeightedService(1000, 3.0);  // 333.33 -> 333
  EXPECT_DOUBLE_EQ(v, 333.0);
}

TEST(TagArithTest, IntegerWeightsExact) {
  // q divisible by w: no quantization error at any scale.
  for (int digits : {0, 1, 4, 8}) {
    TagArith arith(digits);
    EXPECT_DOUBLE_EQ(arith.WeightedService(Msec(100), 4.0),
                     static_cast<double>(Msec(100)) / 4.0)
        << "digits " << digits;
  }
}

TEST(TagArithTest, TinyWeightSaturatesInsteadOfDividingByZero) {
  TagArith arith(2);  // scale 100: weights below 0.005 round to raw 0
  const double v = arith.WeightedService(Msec(10), 1e-9);
  EXPECT_GT(v, 0.0);
  EXPECT_TRUE(std::isfinite(v));
}

TEST(TagArithTest, ZeroQuantumIsZero) {
  TagArith exact(-1);
  TagArith fixed(4);
  EXPECT_DOUBLE_EQ(exact.WeightedService(0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(fixed.WeightedService(0, 2.0), 0.0);
}

TEST(TagArithPropertyTest, ErrorBoundedByHalfQuantumOfScale) {
  common::Rng rng(99);
  for (int digits : {1, 2, 4, 6}) {
    TagArith arith(digits);
    const double quantum_error = 0.5 / static_cast<double>(arith.scale());
    for (int i = 0; i < 500; ++i) {
      const Tick q = rng.UniformInt(1, Msec(200));
      const double w = static_cast<double>(rng.UniformInt(1, 1000));
      const double exact = static_cast<double>(q) / w;
      const double fixed = arith.WeightedService(q, w);
      // Weight rounding adds a relative error of at most ~1/(2 w scale).
      const double weight_rounding = exact / (2.0 * w * static_cast<double>(arith.scale()));
      EXPECT_NEAR(fixed, exact, quantum_error + weight_rounding + 1e-9)
          << "digits=" << digits << " q=" << q << " w=" << w;
    }
  }
}

TEST(TagArithPropertyTest, MonotoneInQuantum) {
  TagArith arith(4);
  double prev = 0.0;
  for (Tick q = 0; q <= Msec(10); q += Usec(137)) {
    const double v = arith.WeightedService(q, 7.0);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace sfs::sched

// Unit tests for the Linux 2.2-style time-sharing baseline.

#include "src/sched/timeshare.h"

#include <gtest/gtest.h>

namespace sfs::sched {
namespace {

SchedConfig Config(int cpus) {
  SchedConfig config;
  config.num_cpus = cpus;
  return config;
}

TEST(TimeshareTest, InitialCounterEqualsPriority) {
  Timeshare s(Config(1));
  s.AddThread(1, 1.0);
  EXPECT_EQ(s.CounterTicks(1), Timeshare::kDefaultPriorityTicks);
}

TEST(TimeshareTest, QuantumTracksRemainingCounter) {
  Timeshare s(Config(1));
  s.AddThread(1, 1.0);
  EXPECT_EQ(s.QuantumFor(1), Timeshare::kDefaultPriorityTicks * kLinuxTimerTick);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, 5 * kLinuxTimerTick);
  EXPECT_EQ(s.CounterTicks(1), Timeshare::kDefaultPriorityTicks - 5);
  EXPECT_EQ(s.QuantumFor(1), (Timeshare::kDefaultPriorityTicks - 5) * kLinuxTimerTick);
}

TEST(TimeshareTest, EpochRecalculationWhenAllCountersExhausted) {
  Timeshare s(Config(1));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  // Exhaust both counters.
  for (int i = 0; i < 2; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Timeshare::kDefaultPriorityTicks * kLinuxTimerTick);
  }
  EXPECT_EQ(s.CounterTicks(1), 0);
  EXPECT_EQ(s.CounterTicks(2), 0);
  // Next pick triggers a new epoch: counter = counter/2 + priority.
  EXPECT_NE(s.PickNext(0), kInvalidThread);
  EXPECT_EQ(s.epochs(), 1);
  EXPECT_EQ(s.CounterTicks(2), Timeshare::kDefaultPriorityTicks);
}

TEST(TimeshareTest, SleeperAccumulatesCounterBonus) {
  // The I/O-bound thread keeps half its unused slice across the epoch — this is
  // how time sharing favours interactive applications (Figure 6(c)).
  Timeshare s(Config(1));
  s.AddThread(1, 1.0);  // CPU hog
  s.AddThread(2, 1.0);  // sleeper
  s.Block(2);
  // Hog burns its slice; sleeper is blocked with a full counter.
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Timeshare::kDefaultPriorityTicks * kLinuxTimerTick);
  // Epoch rollover (hog is the only runnable thread).
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Timeshare::kDefaultPriorityTicks * kLinuxTimerTick);
  s.Wakeup(2);
  // Sleeper's counter: 20/2 + 20 = 30 > hog's refreshed 20.
  EXPECT_EQ(s.CounterTicks(2), 30);
  EXPECT_EQ(s.PickNext(0), 2);
}

TEST(TimeshareTest, GoodnessPrefersAffinityCpu) {
  Timeshare s(Config(2));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  // Run thread 1 on CPU 1 once so its last_cpu is 1.
  ASSERT_EQ(s.PickNext(1), 1);
  s.Charge(1, kLinuxTimerTick);
  ASSERT_EQ(s.PickNext(0), 2);
  s.Charge(2, kLinuxTimerTick);
  // Equal counters now; CPU 1 prefers thread 1 (affinity bonus), CPU 0 thread 2.
  EXPECT_EQ(s.PickNext(1), 1);
  s.Charge(1, kLinuxTimerTick);
  EXPECT_EQ(s.PickNext(0), 2);
}

TEST(TimeshareTest, WeightsHaveNoEffect) {
  // The stock scheduler has no notion of shares: a weight-10 thread gets the
  // same service as a weight-1 thread (this is what Figure 6(b) exploits).
  Timeshare s(Config(1));
  s.AddThread(1, 10.0);
  s.AddThread(2, 1.0);
  Tick service1 = 0;
  Tick service2 = 0;
  for (int i = 0; i < 1000; ++i) {
    const ThreadId t = s.PickNext(0);
    const Tick q = s.QuantumFor(t);
    s.Charge(t, q);
    (t == 1 ? service1 : service2) += q;
  }
  EXPECT_NEAR(static_cast<double>(service1) / static_cast<double>(service2), 1.0, 0.05);
}

TEST(TimeshareTest, PreemptionRequiresGoodnessMargin) {
  Timeshare s(Config(1));
  s.AddThread(1, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.AddThread(2, 1.0);
  // Equal counters: no preemption (must beat by more than the affinity bonus).
  EXPECT_EQ(s.SuggestPreemption(2, {0}), kInvalidCpu);
  // Runner consumed 15 ticks: woken thread's goodness now dominates.
  EXPECT_EQ(s.SuggestPreemption(2, {15 * kLinuxTimerTick}), 0);
}

TEST(TimeshareTest, SetPriorityChangesSlice) {
  Timeshare s(Config(1));
  s.AddThread(1, 1.0);
  s.SetPriorityTicks(1, 40);
  // Takes effect at the next epoch.
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Timeshare::kDefaultPriorityTicks * kLinuxTimerTick);
  ASSERT_EQ(s.PickNext(0), 1);  // epoch recalc
  EXPECT_EQ(s.CounterTicks(1), 40);
}

}  // namespace
}  // namespace sfs::sched

// Tests for the weight readjustment algorithm (Section 2.1, Figure 2).

#include "src/sched/readjust.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/common/rng.h"

namespace sfs::sched {
namespace {

constexpr double kEps = 1e-9;

double Sum(const std::vector<double>& v) { return std::accumulate(v.begin(), v.end(), 0.0); }

// --- ReadjustVector: the Figure 2 reference ------------------------------------

TEST(ReadjustVectorTest, FeasibleAssignmentUnchanged) {
  // 1:1:2 on two processors is feasible (2/4 == 1/2, not greater).
  const std::vector<double> w = {2.0, 1.0, 1.0};
  EXPECT_EQ(ReadjustVector(w, 2), w);
}

TEST(ReadjustVectorTest, PaperExample1Weights) {
  // Example 1: w = {10, 1} on 2 CPUs.  t <= p: both get equal instantaneous
  // weights (each can consume at most one processor).
  const auto phi = ReadjustVector({10.0, 1.0}, 2);
  ASSERT_EQ(phi.size(), 2u);
  EXPECT_DOUBLE_EQ(phi[0], phi[1]);
}

TEST(ReadjustVectorTest, SingleInfeasibleThreadCapped) {
  // {10, 1, 1, 1, 1} on 2 CPUs: 10/14 > 1/2 -> capped to share exactly 1/2.
  const auto phi = ReadjustVector({10.0, 1.0, 1.0, 1.0, 1.0}, 2);
  const double total = Sum(phi);
  EXPECT_NEAR(phi[0] / total, 0.5, kEps);
  for (std::size_t i = 1; i < phi.size(); ++i) {
    EXPECT_DOUBLE_EQ(phi[i], 1.0);  // feasible weights never change
  }
}

TEST(ReadjustVectorTest, TwoInfeasibleThreadsOnFourCpus) {
  // {100, 50, 1, 1, 1, 1} on 4 CPUs: both heavy threads exceed 1/4.
  const auto phi = ReadjustVector({100.0, 50.0, 1.0, 1.0, 1.0, 1.0}, 4);
  const double total = Sum(phi);
  EXPECT_NEAR(phi[0] / total, 0.25, kEps);
  EXPECT_NEAR(phi[1] / total, 0.25, kEps);
  EXPECT_DOUBLE_EQ(phi[0], phi[1]);  // all capped threads share one value
  for (std::size_t i = 2; i < phi.size(); ++i) {
    EXPECT_DOUBLE_EQ(phi[i], 1.0);
  }
}

TEST(ReadjustVectorTest, BoundaryShareExactlyOneOverPIsFeasible) {
  // Share == 1/p satisfies Equation 1 (not a violation).
  const std::vector<double> w = {2.0, 1.0, 1.0};  // 2/4 == 1/2 on 2 CPUs
  const auto phi = ReadjustVector(w, 2);
  EXPECT_EQ(phi, w);
}

TEST(ReadjustVectorTest, UniprocessorNeverReadjusts) {
  // On one CPU every assignment is feasible (w_i / sum <= 1 always).
  const std::vector<double> w = {100.0, 1.0, 1.0};
  EXPECT_EQ(ReadjustVector(w, 1), w);
}

TEST(ReadjustVectorTest, FewerThreadsThanCpusAllEqual) {
  const auto phi = ReadjustVector({7.0, 3.0, 2.0}, 4);
  EXPECT_DOUBLE_EQ(phi[0], phi[1]);
  EXPECT_DOUBLE_EQ(phi[1], phi[2]);
}

TEST(ReadjustVectorTest, BlockingMakesFeasibleInfeasible) {
  // The Section 2.1 example: 1:1:2 feasible on 2 CPUs; when a weight-1 thread
  // blocks, {2, 1} remains (t == p) and must become equal shares.
  const auto before = ReadjustVector({2.0, 1.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(before[0], 2.0);
  const auto after = ReadjustVector({2.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(after[0], after[1]);
}

TEST(ReadjustVectorTest, EmptyInput) {
  EXPECT_TRUE(ReadjustVector({}, 2).empty());
}

// --- properties of the readjustment (optimality, Section 2.1) -------------------

class ReadjustPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReadjustPropertyTest, AllSharesFeasibleAfterReadjustment) {
  const int cpus = GetParam();
  common::Rng rng(1000 + static_cast<std::uint64_t>(cpus));
  for (int trial = 0; trial < 200; ++trial) {
    const int t = static_cast<int>(rng.UniformInt(1, 40));
    std::vector<double> w;
    for (int i = 0; i < t; ++i) {
      w.push_back(static_cast<double>(rng.UniformInt(1, 10000)));
    }
    std::sort(w.begin(), w.end(), std::greater<>());
    const auto phi = ReadjustVector(w, cpus);
    if (t <= cpus) {
      // Every thread can hold a full processor: the closest feasible assignment
      // is equal instantaneous weights (shares of 1/t >= 1/p are unreachable
      // anyway — a thread cannot use more than one CPU).
      for (double f : phi) {
        EXPECT_DOUBLE_EQ(f, phi[0]);
      }
      continue;
    }
    const double total = Sum(phi);
    for (double f : phi) {
      EXPECT_LE(f / total, 1.0 / cpus + 1e-9);
    }
  }
}

TEST_P(ReadjustPropertyTest, FeasibleWeightsNeverChangeAndCapsAreTight) {
  const int cpus = GetParam();
  common::Rng rng(2000 + static_cast<std::uint64_t>(cpus));
  for (int trial = 0; trial < 200; ++trial) {
    const int t = static_cast<int>(rng.UniformInt(cpus + 1, 40));
    std::vector<double> w;
    for (int i = 0; i < t; ++i) {
      w.push_back(static_cast<double>(rng.UniformInt(1, 10000)));
    }
    std::sort(w.begin(), w.end(), std::greater<>());
    const auto phi = ReadjustVector(w, cpus);
    const double total = Sum(phi);
    int capped = 0;
    for (std::size_t i = 0; i < phi.size(); ++i) {
      if (phi[i] != w[i]) {
        ++capped;
        // Changed weights are capped at exactly share 1/p — the nearest feasible
        // value (optimality claim).
        EXPECT_NEAR(phi[i] / total, 1.0 / cpus, 1e-9);
        EXPECT_LT(phi[i], w[i]);  // caps only shrink
      }
    }
    // "No more than (p-1) threads can have infeasible weights."
    EXPECT_LE(capped, cpus - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Cpus, ReadjustPropertyTest, ::testing::Values(2, 3, 4, 8, 16));

// --- parity with the literal Figure 2 recursion ---------------------------------

// Verbatim transcription of Figure 2 (the pre-optimization ReadjustVector body):
// recomputes the suffix sum at every level, O(capped * n).  Kept here as the
// parity oracle for the O(n) single-pass production form.
void Figure2Recursive(std::vector<double>& weights, std::size_t i, int p) {
  if (i >= weights.size() || p <= 1) {
    return;
  }
  double suffix = 0.0;
  for (std::size_t j = i; j < weights.size(); ++j) {
    suffix += weights[j];
  }
  if (weights[i] * static_cast<double>(p) > suffix) {
    Figure2Recursive(weights, i + 1, p - 1);
    double sum_after = 0.0;
    for (std::size_t j = i + 1; j < weights.size(); ++j) {
      sum_after += weights[j];
    }
    weights[i] = sum_after / static_cast<double>(p - 1);
  }
}

std::vector<double> Figure2Reference(const std::vector<double>& weights, int num_cpus) {
  std::vector<double> result = weights;
  if (result.size() <= static_cast<std::size_t>(num_cpus)) {
    for (auto& w : result) {
      w = 1.0;
    }
    return result;
  }
  Figure2Recursive(result, 0, num_cpus);
  return result;
}

TEST(ReadjustVectorParityTest, MatchesFigure2RecursionAtLargeN) {
  // Integer-valued weights sum exactly in double precision, so the two
  // summation orders (per-level rescan vs one running suffix) must agree to
  // the last bit on which threads get capped; the capped values themselves can
  // differ only by accumulated rounding of the handful of non-integer caps.
  for (const int cpus : {2, 8, 64, 256}) {
    for (const int n : {300, 5000, 50000}) {
      common::Rng rng(7000 + static_cast<std::uint64_t>(cpus * 31 + n));
      std::vector<double> w;
      w.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        // Heavy-tailed draw so several threads actually violate Equation 1.
        const auto r = rng.UniformInt(1, 100);
        w.push_back(static_cast<double>(r <= 3 ? rng.UniformInt(n, 40 * n) : r));
      }
      std::sort(w.begin(), w.end(), std::greater<>());
      const auto fast = ReadjustVector(w, cpus);
      const auto reference = Figure2Reference(w, cpus);
      ASSERT_EQ(fast.size(), reference.size());
      int capped = 0;
      for (std::size_t i = 0; i < fast.size(); ++i) {
        if (fast[i] != w[i]) {
          ++capped;
          EXPECT_NE(reference[i], w[i]) << "cap-set mismatch at " << i;
          EXPECT_NEAR(fast[i], reference[i], 1e-9 * reference[i])
              << "cpus=" << cpus << " n=" << n << " i=" << i;
        } else {
          EXPECT_EQ(reference[i], w[i]) << "cap-set mismatch at " << i;
        }
      }
      EXPECT_LE(capped, cpus - 1);
    }
  }
}

TEST(ReadjustVectorParityTest, FractionalWeightsMatchToRounding) {
  // Non-integer weights do not sum exactly, and the single-pass form uses a
  // different summation order than the per-index rescans of the recursion, so
  // parity here is to rounding, not to the bit: capped values within relative
  // 1e-12 and the same number of caps (a cap-set flip requires a feasibility
  // comparison to land within an ulp of its suffix sum, which random draws do
  // not produce).
  for (const int cpus : {2, 8, 64}) {
    common::Rng rng(9100 + static_cast<std::uint64_t>(cpus));
    for (int trial = 0; trial < 50; ++trial) {
      const int n = static_cast<int>(rng.UniformInt(cpus + 1, 4000));
      std::vector<double> w;
      w.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        const bool heavy = rng.UniformInt(1, 100) <= 3;
        const double base = heavy ? static_cast<double>(rng.UniformInt(n, 20 * n))
                                  : static_cast<double>(rng.UniformInt(1, 100));
        w.push_back(base + static_cast<double>(rng.UniformInt(0, 999)) / 1000.0);
      }
      std::sort(w.begin(), w.end(), std::greater<>());
      const auto fast = ReadjustVector(w, cpus);
      const auto reference = Figure2Reference(w, cpus);
      ASSERT_EQ(fast.size(), reference.size());
      int fast_caps = 0;
      int reference_caps = 0;
      for (std::size_t i = 0; i < fast.size(); ++i) {
        fast_caps += fast[i] != w[i] ? 1 : 0;
        reference_caps += reference[i] != w[i] ? 1 : 0;
        EXPECT_NEAR(fast[i], reference[i], 1e-12 * reference[i]) << "cpus=" << cpus << " i=" << i;
      }
      EXPECT_EQ(fast_caps, reference_caps) << "cpus=" << cpus;
    }
  }
}

TEST(ReadjustVectorParityTest, BitIdenticalOnIntegerWeightsWithOneCap) {
  // With a single infeasible thread every term of the assignment sum is an
  // original integer weight: both implementations compute the same exact
  // suffix, so the results are bit-identical, not merely close.
  for (const int cpus : {2, 4, 16}) {
    std::vector<double> w(1000, 1.0);
    w[0] = 100000.0;
    const auto fast = ReadjustVector(w, cpus);
    const auto reference = Figure2Reference(w, cpus);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_EQ(fast[i], reference[i]) << i;
    }
  }
}

// --- ReadjustQueue: production form matches the reference -----------------------

class QueueFixture {
 public:
  explicit QueueFixture(const std::vector<double>& weights) {
    entities_.resize(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
      entities_[i] = std::make_unique<Entity>();
      entities_[i]->tid = static_cast<ThreadId>(i);
      entities_[i]->weight() = weights[i];
      entities_[i]->phi() = weights[i];
      queue_.Insert(entities_[i].get());
      total_ += weights[i];
    }
  }

  ~QueueFixture() { queue_.Clear(); }

  WeightQueue& queue() { return queue_; }
  ReadjustState& state() { return state_; }
  double total() const { return total_; }

  bool Readjust(int cpus) { return ReadjustQueue(queue_, total_, cpus, state_); }

  std::vector<double> PhisInQueueOrder() {
    std::vector<double> phis;
    for (Entity* e = queue_.front(); e != nullptr; e = queue_.next(e)) {
      phis.push_back(e->phi());
    }
    return phis;
  }

 private:
  std::vector<std::unique_ptr<Entity>> entities_;
  WeightQueue queue_;
  ReadjustState state_;
  double total_ = 0.0;
};

TEST(ReadjustQueueTest, MatchesReferenceOnPaperExample) {
  QueueFixture fx({1.0, 10.0, 1.0, 1.0, 1.0});
  fx.Readjust(2);
  const auto expected = ReadjustVector({10.0, 1.0, 1.0, 1.0, 1.0}, 2);
  EXPECT_EQ(fx.PhisInQueueOrder(), expected);
}

TEST(ReadjustQueueTest, ReturnsChangedFlag) {
  QueueFixture fx({10.0, 1.0, 1.0});
  EXPECT_TRUE(fx.Readjust(2));
  // Second run: already readjusted, nothing changes.
  EXPECT_FALSE(fx.Readjust(2));
}

TEST(ReadjustQueueTest, FeasibleReturnsFalse) {
  QueueFixture fx({1.0, 1.0, 1.0});
  EXPECT_FALSE(fx.Readjust(2));
}

TEST(ReadjustQueueTest, EmptyQueue) {
  QueueFixture fx({});
  EXPECT_FALSE(fx.Readjust(2));
}

TEST(ReadjustQueueTest, CapsTrackedAndRestored) {
  // {10,1,1} on 2 CPUs caps the heavy thread; growing the light side makes the
  // assignment feasible again and the former cap must return to its weight.
  QueueFixture fx({10.0, 1.0, 1.0});
  fx.Readjust(2);
  ASSERT_EQ(fx.state().capped.size(), 1u);
  Entity* heavy = fx.state().capped[0];
  EXPECT_TRUE(heavy->capped);
  EXPECT_LT(heavy->phi(), 10.0);
  // Simulate the world changing so the weight becomes feasible: 10/30 <= 1/2.
  // (Add weight by editing total; the queue itself still holds three entities,
  // so emulate with a direct second pass at a higher total.)
  const bool changed = ReadjustQueue(fx.queue(), 30.0, 2, fx.state());
  EXPECT_TRUE(changed);
  EXPECT_FALSE(heavy->capped);
  EXPECT_DOUBLE_EQ(heavy->phi(), 10.0);
  EXPECT_TRUE(fx.state().capped.empty());
}

TEST(ReadjustQueueTest, IsFeasibleAgreesWithEquationOne) {
  QueueFixture feasible({1.0, 1.0, 2.0});
  EXPECT_TRUE(IsFeasible(feasible.queue(), 4.0, 2));
  QueueFixture infeasible({10.0, 1.0, 1.0});
  EXPECT_FALSE(IsFeasible(infeasible.queue(), 12.0, 2));
}

TEST(ReadjustQueuePropertyTest, EquivalentToRecursiveReferenceRandomized) {
  common::Rng rng(555);
  for (int trial = 0; trial < 300; ++trial) {
    const int cpus = static_cast<int>(rng.UniformInt(1, 8));
    const int t = static_cast<int>(rng.UniformInt(1, 30));
    std::vector<double> w;
    for (int i = 0; i < t; ++i) {
      w.push_back(static_cast<double>(rng.UniformInt(1, 5000)));
    }
    std::sort(w.begin(), w.end(), std::greater<>());

    QueueFixture fx(w);
    fx.Readjust(cpus);
    const auto expected = ReadjustVector(w, cpus);
    const auto actual = fx.PhisInQueueOrder();
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_NEAR(actual[i], expected[i], 1e-6) << "trial " << trial << " i " << i;
    }
  }
}

}  // namespace
}  // namespace sfs::sched

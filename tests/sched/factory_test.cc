// Unit tests for the scheduler factory.

#include "src/sched/factory.h"

#include <gtest/gtest.h>

namespace sfs::sched {
namespace {

constexpr SchedKind kAllKinds[] = {
    SchedKind::kSfs,       SchedKind::kHsfs,        SchedKind::kSfq,
    SchedKind::kStride,    SchedKind::kWfq,         SchedKind::kBvt,
    SchedKind::kTimeshare, SchedKind::kRoundRobin,  SchedKind::kLottery,
    SchedKind::kShardedSfs, SchedKind::kShardedSfq, SchedKind::kShardedWfq,
    SchedKind::kShardedStride, SchedKind::kShardedBvt};

TEST(FactoryTest, NameParseRoundTrip) {
  for (const SchedKind kind : kAllKinds) {
    const auto parsed = ParseSchedKind(SchedKindName(kind));
    ASSERT_TRUE(parsed.has_value()) << SchedKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(FactoryTest, UnknownNameIsNullopt) {
  EXPECT_FALSE(ParseSchedKind("cfs").has_value());
  EXPECT_FALSE(ParseSchedKind("").has_value());
  EXPECT_FALSE(ParseSchedKind("SFS").has_value());  // names are lower-case
}

TEST(FactoryTest, QueueBackendNameParseRoundTrip) {
  for (const QueueBackend backend : {QueueBackend::kSortedList, QueueBackend::kSkipList}) {
    const auto parsed = ParseQueueBackend(QueueBackendName(backend));
    ASSERT_TRUE(parsed.has_value()) << QueueBackendName(backend);
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(ParseQueueBackend("btree").has_value());
  EXPECT_FALSE(ParseQueueBackend("").has_value());
}

TEST(FactoryTest, CreatesEveryKind) {
  SchedConfig config;
  config.num_cpus = 2;
  for (const SchedKind kind : kAllKinds) {
    auto scheduler = CreateScheduler(kind, config);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->num_cpus(), 2);
    EXPECT_FALSE(scheduler->name().empty());
  }
}

TEST(FactoryTest, ConfigPropagates) {
  SchedConfig config;
  config.num_cpus = 3;
  config.quantum = Msec(42);
  auto scheduler = CreateScheduler(SchedKind::kSfs, config);
  EXPECT_EQ(scheduler->config().quantum, Msec(42));
  EXPECT_EQ(scheduler->num_cpus(), 3);
}

TEST(FactoryTest, SfsAlwaysReadjustsEvenIfConfigSaysNo) {
  SchedConfig config;
  config.num_cpus = 2;
  config.use_readjustment = false;
  auto scheduler = CreateScheduler(SchedKind::kSfs, config);
  EXPECT_TRUE(scheduler->config().use_readjustment);
}

TEST(FactoryTest, ShardedKindForMapsEveryGpsPolicy) {
  EXPECT_EQ(ShardedKindFor(SchedKind::kSfs), SchedKind::kShardedSfs);
  EXPECT_EQ(ShardedKindFor(SchedKind::kSfq), SchedKind::kShardedSfq);
  EXPECT_EQ(ShardedKindFor(SchedKind::kWfq), SchedKind::kShardedWfq);
  EXPECT_EQ(ShardedKindFor(SchedKind::kStride), SchedKind::kShardedStride);
  EXPECT_EQ(ShardedKindFor(SchedKind::kBvt), SchedKind::kShardedBvt);
  EXPECT_FALSE(ShardedKindFor(SchedKind::kHsfs).has_value());
  EXPECT_FALSE(ShardedKindFor(SchedKind::kTimeshare).has_value());
  EXPECT_FALSE(ShardedKindFor(SchedKind::kShardedSfs).has_value());
}

TEST(FactoryTest, ShardStealPolicyNameRoundTrip) {
  for (const ShardStealPolicy policy :
       {ShardStealPolicy::kNone, ShardStealPolicy::kMaxSurplus}) {
    const auto parsed = ParseShardStealPolicy(ShardStealPolicyName(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseShardStealPolicy("random").has_value());
}

TEST(FactoryTest, MakeSchedulerBuildsEveryKnownPolicyByName) {
  SchedConfig config;
  config.num_cpus = 2;
  for (const SchedKind kind : kAllKinds) {
    std::string error = "sentinel";
    auto scheduler = MakeScheduler(SchedKindName(kind), config, &error);
    ASSERT_NE(scheduler, nullptr) << SchedKindName(kind) << ": " << error;
    EXPECT_TRUE(error.empty()) << SchedKindName(kind);
    EXPECT_FALSE(scheduler->name().empty());
  }
}

TEST(FactoryTest, MakeSchedulerRejectsUnknownPolicyListingAlternatives) {
  std::string error;
  EXPECT_EQ(MakeScheduler("cfs", SchedConfig{}, &error), nullptr);
  EXPECT_NE(error.find("unknown scheduler policy \"cfs\""), std::string::npos) << error;
  // The message lists the valid alternatives.
  EXPECT_NE(error.find("sfs"), std::string::npos) << error;
  EXPECT_NE(error.find("sharded-sfs"), std::string::npos) << error;
  EXPECT_NE(error.find("sharded-bvt"), std::string::npos) << error;
  // A null error pointer is accepted.
  EXPECT_EQ(MakeScheduler("cfs", SchedConfig{}), nullptr);
}

TEST(FactoryTest, MakeSchedulerValidatesShardingKnobs) {
  std::string error;
  SchedConfig config;
  config.shard_coupling = 1.5;
  EXPECT_EQ(MakeScheduler("sharded-sfs", config, &error), nullptr);
  EXPECT_NE(error.find("shard_coupling"), std::string::npos) << error;

  config = SchedConfig{};
  config.shard_rebalance_period = -3;
  EXPECT_EQ(MakeScheduler("sharded-sfq", config, &error), nullptr);
  EXPECT_NE(error.find("shard_rebalance_period"), std::string::npos) << error;

  config = SchedConfig{};
  config.shard_steal = static_cast<ShardStealPolicy>(42);
  EXPECT_EQ(MakeScheduler("sharded-sfs", config, &error), nullptr);
  EXPECT_NE(error.find("steal"), std::string::npos) << error;
  EXPECT_NE(error.find("max_surplus"), std::string::npos) << error;

  config = SchedConfig{};
  config.num_cpus = 0;
  EXPECT_EQ(MakeScheduler("sfs", config, &error), nullptr);
  EXPECT_NE(error.find("num_cpus"), std::string::npos) << error;
}

TEST(FactoryTest, ValidateSchedConfigAcceptsDefaults) {
  EXPECT_TRUE(ValidateSchedConfig(SchedConfig{}).empty());
}

TEST(FactoryTest, ShardedSchedulerNamesExposeThePolicy) {
  SchedConfig config;
  config.num_cpus = 2;
  EXPECT_EQ(CreateScheduler(SchedKind::kShardedSfs, config)->name(), "sharded-SFS");
  EXPECT_EQ(CreateScheduler(SchedKind::kShardedStride, config)->name(),
            "sharded-stride+readjust");
}

TEST(FactoryTest, SfqVariantsNamedDistinctly) {
  SchedConfig with;
  with.use_readjustment = true;
  SchedConfig without;
  without.use_readjustment = false;
  EXPECT_NE(CreateScheduler(SchedKind::kSfq, with)->name(),
            CreateScheduler(SchedKind::kSfq, without)->name());
}

}  // namespace
}  // namespace sfs::sched

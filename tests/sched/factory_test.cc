// Unit tests for the scheduler factory.

#include "src/sched/factory.h"

#include <gtest/gtest.h>

namespace sfs::sched {
namespace {

constexpr SchedKind kAllKinds[] = {SchedKind::kSfs,       SchedKind::kHsfs,
                                   SchedKind::kSfq,       SchedKind::kStride,
                                   SchedKind::kWfq,       SchedKind::kBvt,
                                   SchedKind::kTimeshare, SchedKind::kRoundRobin};

TEST(FactoryTest, NameParseRoundTrip) {
  for (const SchedKind kind : kAllKinds) {
    const auto parsed = ParseSchedKind(SchedKindName(kind));
    ASSERT_TRUE(parsed.has_value()) << SchedKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(FactoryTest, UnknownNameIsNullopt) {
  EXPECT_FALSE(ParseSchedKind("cfs").has_value());
  EXPECT_FALSE(ParseSchedKind("").has_value());
  EXPECT_FALSE(ParseSchedKind("SFS").has_value());  // names are lower-case
}

TEST(FactoryTest, QueueBackendNameParseRoundTrip) {
  for (const QueueBackend backend : {QueueBackend::kSortedList, QueueBackend::kSkipList}) {
    const auto parsed = ParseQueueBackend(QueueBackendName(backend));
    ASSERT_TRUE(parsed.has_value()) << QueueBackendName(backend);
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(ParseQueueBackend("btree").has_value());
  EXPECT_FALSE(ParseQueueBackend("").has_value());
}

TEST(FactoryTest, CreatesEveryKind) {
  SchedConfig config;
  config.num_cpus = 2;
  for (const SchedKind kind : kAllKinds) {
    auto scheduler = CreateScheduler(kind, config);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->num_cpus(), 2);
    EXPECT_FALSE(scheduler->name().empty());
  }
}

TEST(FactoryTest, ConfigPropagates) {
  SchedConfig config;
  config.num_cpus = 3;
  config.quantum = Msec(42);
  auto scheduler = CreateScheduler(SchedKind::kSfs, config);
  EXPECT_EQ(scheduler->config().quantum, Msec(42));
  EXPECT_EQ(scheduler->num_cpus(), 3);
}

TEST(FactoryTest, SfsAlwaysReadjustsEvenIfConfigSaysNo) {
  SchedConfig config;
  config.num_cpus = 2;
  config.use_readjustment = false;
  auto scheduler = CreateScheduler(SchedKind::kSfs, config);
  EXPECT_TRUE(scheduler->config().use_readjustment);
}

TEST(FactoryTest, SfqVariantsNamedDistinctly) {
  SchedConfig with;
  with.use_readjustment = true;
  SchedConfig without;
  without.use_readjustment = false;
  EXPECT_NE(CreateScheduler(SchedKind::kSfq, with)->name(),
            CreateScheduler(SchedKind::kSfq, without)->name());
}

}  // namespace
}  // namespace sfs::sched

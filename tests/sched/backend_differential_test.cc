// Randomized cross-backend differential test: every scheduler migrated onto
// the RunQueue abstraction must produce an *identical dispatch trace* on the
// sorted-list and skip-list backends for the same operation sequence — the
// backend changes constants, never decisions.
//
// A seeded op mix (arrivals, departures/kills, blocks, wakeups, weight
// changes, variable-length charges, dispatches) drives two instances of the
// same policy in lockstep, one per backend, asserting every PickNext and
// SuggestPreemption agrees; final per-thread state (service, tags via GetPhi)
// must match too.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/sched/factory.h"
#include "src/sched/hsfs.h"
#include "src/sched/partitioned.h"
#include "src/sched/sfs.h"

namespace sfs::sched {
namespace {

struct Mirror {
  std::vector<ThreadId> runnable;  // not running
  std::vector<ThreadId> blocked;
  std::vector<std::pair<ThreadId, CpuId>> running;
  ThreadId next_tid = 1;
};

ThreadId TakeAt(std::vector<ThreadId>& v, std::size_t i) {
  const ThreadId tid = v[i];
  v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
  return tid;
}

// Drives the same seeded op mix through two pre-built instances of one policy
// (one per run-queue backend), asserting lockstep agreement.  `route_classes`
// is true for H-SFS, whose threads are routed among scheduling classes.
void DriveLockstepOn(Scheduler& sorted_backend, Scheduler& skip_backend, bool route_classes,
                     std::uint64_t seed, int ops, int cpus) {
  Scheduler* a = &sorted_backend;
  Scheduler* b = &skip_backend;
  common::Rng rng(seed);
  Mirror m;
  std::vector<CpuId> free_cpus;
  for (CpuId cpu = 0; cpu < cpus; ++cpu) {
    free_cpus.push_back(cpu);
  }

  const auto add_thread = [&] {
    const ThreadId tid = m.next_tid++;
    const auto weight = static_cast<Weight>(rng.UniformInt(1, 20));
    if (route_classes) {
      const ClassId cls = static_cast<ClassId>(tid % 4);  // 0 = root
      static_cast<HierarchicalSfs*>(a)->RouteThread(tid, cls);
      static_cast<HierarchicalSfs*>(b)->RouteThread(tid, cls);
    }
    a->AddThread(tid, weight);
    b->AddThread(tid, weight);
    m.runnable.push_back(tid);
  };

  const auto charge = [&](std::size_t run_idx) {
    const auto [tid, cpu] = m.running[run_idx];
    m.running.erase(m.running.begin() + static_cast<std::ptrdiff_t>(run_idx));
    const Tick ran = Msec(rng.UniformInt(1, 200));
    a->Charge(tid, ran);
    b->Charge(tid, ran);
    free_cpus.push_back(cpu);
    std::sort(free_cpus.begin(), free_cpus.end());
    m.runnable.push_back(tid);
  };

  add_thread();
  add_thread();

  for (int op = 0; op < ops; ++op) {
    const auto choice = rng.UniformInt(0, 9);
    if (choice <= 1) {
      add_thread();
      // A newly runnable thread may warrant preemption; both backends must
      // agree on the victim.
      std::vector<Tick> elapsed(static_cast<std::size_t>(cpus), 0);
      for (auto& e : elapsed) {
        e = Msec(rng.UniformInt(0, 100));
      }
      const ThreadId woken = m.runnable.back();
      ASSERT_EQ(a->SuggestPreemption(woken, elapsed), b->SuggestPreemption(woken, elapsed))
          << sorted_backend.name() << " seed " << seed << " op " << op;
    } else if (choice == 2 && !m.runnable.empty()) {
      // Kill a runnable (not running) thread.
      const std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(m.runnable.size()) - 1));
      const ThreadId tid = TakeAt(m.runnable, i);
      a->RemoveThread(tid);
      b->RemoveThread(tid);
    } else if (choice == 3 && !m.runnable.empty()) {
      const std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(m.runnable.size()) - 1));
      const ThreadId tid = TakeAt(m.runnable, i);
      a->Block(tid);
      b->Block(tid);
      m.blocked.push_back(tid);
    } else if (choice == 4 && !m.blocked.empty()) {
      const std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(m.blocked.size()) - 1));
      const ThreadId tid = TakeAt(m.blocked, i);
      a->Wakeup(tid);
      b->Wakeup(tid);
      m.runnable.push_back(tid);
    } else if (choice == 5 && !(m.runnable.empty() && m.blocked.empty())) {
      auto& pool = (!m.runnable.empty() && (m.blocked.empty() || rng.Bernoulli(0.7)))
                       ? m.runnable
                       : m.blocked;
      const std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
      const auto weight = static_cast<Weight>(rng.UniformInt(1, 20));
      a->SetWeight(pool[i], weight);
      b->SetWeight(pool[i], weight);
    } else if (choice <= 7 && !free_cpus.empty() && !m.runnable.empty()) {
      const CpuId cpu = free_cpus.front();
      free_cpus.erase(free_cpus.begin());
      const ThreadId pa = a->PickNext(cpu);
      const ThreadId pb = b->PickNext(cpu);
      ASSERT_EQ(pa, pb) << sorted_backend.name() << " seed " << seed << " op " << op;
      if (pa == kInvalidThread) {
        free_cpus.push_back(cpu);
        std::sort(free_cpus.begin(), free_cpus.end());
      } else {
        m.running.emplace_back(pa, cpu);
        m.runnable.erase(std::find(m.runnable.begin(), m.runnable.end(), pa));
      }
    } else if (!m.running.empty()) {
      charge(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(m.running.size()) - 1)));
    }
  }

  // Drain and compare final per-thread state.
  while (!m.running.empty()) {
    charge(0);
  }
  for (ThreadId tid = 1; tid < m.next_tid; ++tid) {
    if (!a->Contains(tid)) {
      ASSERT_FALSE(b->Contains(tid));
      continue;
    }
    ASSERT_EQ(a->TotalService(tid), b->TotalService(tid)) << "tid " << tid;
    ASSERT_EQ(a->GetPhi(tid), b->GetPhi(tid)) << "tid " << tid;
    ASSERT_EQ(a->IsRunnable(tid), b->IsRunnable(tid)) << "tid " << tid;
  }
}

// Factory-constructible policies: build one instance per backend and drive.
void DriveLockstep(SchedKind kind, std::uint64_t seed, int ops, int cpus) {
  SchedConfig config;
  config.num_cpus = cpus;
  SchedConfig skip_config = config;
  skip_config.queue_backend = QueueBackend::kSkipList;

  auto a = CreateScheduler(kind, config);
  auto b = CreateScheduler(kind, skip_config);

  if (kind == SchedKind::kHsfs) {
    // Exercise the hierarchy: two surplus classes and one round-robin class,
    // threads routed round-robin among root and the classes.
    for (Scheduler* s : {a.get(), b.get()}) {
      auto* h = static_cast<HierarchicalSfs*>(s);
      h->CreateClass(1, kRootClass, 4.0);
      h->CreateClass(2, kRootClass, 2.0);
      h->CreateClass(3, 1, 1.0, IntraClassPolicy::kRoundRobin);
    }
  }
  DriveLockstepOn(*a, *b, kind == SchedKind::kHsfs, seed, ops, cpus);
}

class BackendDifferentialTest : public ::testing::TestWithParam<SchedKind> {};

TEST_P(BackendDifferentialTest, DispatchTracesIdenticalAcrossBackends) {
  for (const std::uint64_t seed : {1ULL, 23ULL, 777ULL}) {
    DriveLockstep(GetParam(), seed, /*ops=*/1500, /*cpus=*/2);
    DriveLockstep(GetParam(), seed, /*ops=*/800, /*cpus=*/4);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMigrated, BackendDifferentialTest,
                         ::testing::Values(SchedKind::kSfs, SchedKind::kSfq, SchedKind::kWfq,
                                           SchedKind::kStride, SchedKind::kBvt, SchedKind::kHsfs),
                         [](const ::testing::TestParamInfo<SchedKind>& info) {
                           return std::string(SchedKindName(info.param));
                         });

TEST(BackendDifferentialSpecialTest, HeuristicSfsTracesIdenticalAcrossBackends) {
  // The Section 3.2 heuristic is the only caller of the queues' bounded scans
  // (ForFirstK on start/surplus, ForLastK on the weight queue) and of the
  // periodic refresh; it must be backend-invariant too.
  for (const std::uint64_t seed : {5ULL, 99ULL}) {
    SchedConfig config;
    config.num_cpus = 2;
    config.heuristic_k = 3;
    config.heuristic_refresh_period = 16;
    SchedConfig skip_config = config;
    skip_config.queue_backend = QueueBackend::kSkipList;
    Sfs a(config);
    Sfs b(skip_config);
    DriveLockstepOn(a, b, /*route_classes=*/false, seed, /*ops=*/1500, /*cpus=*/2);
  }
}

TEST(BackendDifferentialSpecialTest, PartitionedSfqTracesIdenticalAcrossBackends) {
  // Not factory-constructible (extra rebalance knob), but migrated onto the
  // RunQueue abstraction all the same: per-partition queues plus the periodic
  // rebalancing move pattern must be backend-invariant.
  for (const std::uint64_t seed : {11ULL, 42ULL}) {
    SchedConfig config;
    config.num_cpus = 4;
    SchedConfig skip_config = config;
    skip_config.queue_backend = QueueBackend::kSkipList;
    PartitionedSfq a(config, /*rebalance_every=*/32);
    PartitionedSfq b(skip_config, /*rebalance_every=*/32);
    DriveLockstepOn(a, b, /*route_classes=*/false, seed, /*ops=*/1200, /*cpus=*/4);
  }
}

}  // namespace
}  // namespace sfs::sched

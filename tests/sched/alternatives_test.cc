// Tests for the alternative designs the paper discusses: the partitioned
// per-processor approach (Section 1.2) and lottery scheduling [30], plus the
// class-specific round-robin policy in hierarchical SFS (Section 5).

#include <gtest/gtest.h>

#include <numeric>

#include "src/common/rng.h"
#include "src/sched/hsfs.h"
#include "src/sched/lottery.h"
#include "src/sched/partitioned.h"
#include "src/sched/sfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::sched {
namespace {

SchedConfig Config(int cpus, Tick quantum = kDefaultQuantum) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = quantum;
  return config;
}

// --- partitioned per-processor SFQ ----------------------------------------------

TEST(PartitionedTest, ArrivalsBalanceByWeight) {
  PartitionedSfq s(Config(2), /*rebalance_every=*/0);
  s.AddThread(1, 4.0);
  s.AddThread(2, 3.0);
  s.AddThread(3, 2.0);  // joins the lighter partition (3.0 < 4.0)
  const auto weights = s.PartitionWeights();
  EXPECT_DOUBLE_EQ(weights[0] + weights[1], 9.0);
  EXPECT_DOUBLE_EQ(std::max(weights[0], weights[1]), 5.0);
}

TEST(PartitionedTest, PerPartitionProportionalAllocation) {
  // Two threads pinned to the same partition split it by weight.
  PartitionedSfq s(Config(2), 0);
  s.AddThread(1, 10.0);  // partition 0
  s.AddThread(2, 3.0);   // partition 1
  s.AddThread(3, 1.0);   // partition 1 (lighter: 3 < 10)
  Tick service2 = 0;
  Tick service3 = 0;
  for (int i = 0; i < 4000; ++i) {
    const ThreadId t = s.PickNext(1);
    ASSERT_TRUE(t == 2 || t == 3);
    s.Charge(t, Msec(10));
    (t == 2 ? service2 : service3) += Msec(10);
  }
  EXPECT_NEAR(static_cast<double>(service2) / static_cast<double>(service3), 3.0, 0.1);
}

TEST(PartitionedTest, NotGloballyWorkConserving) {
  // The paper's core criticism: a CPU whose partition empties idles even while
  // the other partition is backlogged.
  PartitionedSfq s(Config(2), 0);
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.AddThread(3, 1.0);
  // Threads 1 -> partition 0; 2 -> partition 1; 3 -> one of them.
  // Block whatever lives in partition 0.
  const ThreadId on0 = s.PickNext(0);
  ASSERT_NE(on0, kInvalidThread);
  s.Charge(on0, Msec(10));
  s.Block(on0);
  // If partition 0 is now empty, CPU 0 idles despite backlog elsewhere.
  const auto weights = s.PartitionWeights();
  if (weights[0] == 0.0) {
    EXPECT_EQ(s.PickNext(0), kInvalidThread);
    EXPECT_GT(s.runnable_count(), 0);
  } else {
    SUCCEED();  // thread 3 landed on partition 0; symmetric case
  }
}

TEST(PartitionedTest, DeparturesCauseImbalanceRebalanceRepairs) {
  // Without rebalancing, departures skew the partitions; with it, the weights
  // re-equalize (at the cost of migrations).
  auto imbalance_after_churn = [](int rebalance_every) {
    PartitionedSfq s(Config(2, Msec(10)), rebalance_every);
    for (ThreadId tid = 1; tid <= 8; ++tid) {
      s.AddThread(tid, 1.0);
    }
    // Remove three threads that share a partition (ids 1,3,5 alternate in).
    for (ThreadId tid : {1, 3, 5}) {
      s.RemoveThread(tid);
    }
    // Drive some decisions so rebalancing gets a chance to run.
    for (int i = 0; i < 200; ++i) {
      for (CpuId c = 0; c < 2; ++c) {
        const ThreadId t = s.PickNext(c);
        if (t != kInvalidThread) {
          s.Charge(t, Msec(10));
        }
      }
    }
    const auto weights = s.PartitionWeights();
    return std::abs(weights[0] - weights[1]);
  };
  EXPECT_GT(imbalance_after_churn(0), 0.9);       // stuck imbalanced
  EXPECT_LT(imbalance_after_churn(16), 1.1);      // repaired (within one thread)
}

TEST(PartitionedTest, RebalanceMovesAreCounted) {
  PartitionedSfq s(Config(2, Msec(10)), /*rebalance_every=*/4);
  for (ThreadId tid = 1; tid <= 6; ++tid) {
    s.AddThread(tid, 1.0);
  }
  for (ThreadId tid : {1, 3}) {
    s.RemoveThread(tid);
  }
  for (int i = 0; i < 50; ++i) {
    for (CpuId c = 0; c < 2; ++c) {
      const ThreadId t = s.PickNext(c);
      if (t != kInvalidThread) {
        s.Charge(t, Msec(10));
      }
    }
  }
  EXPECT_GE(s.rebalance_moves(), 1);
}

TEST(PartitionedTest, GlobalUnfairnessUnderImbalance) {
  // 3 equal-weight threads, 2 CPUs, no rebalancing: the lone thread on its own
  // partition gets a full CPU while the other two split one — 2:1 instead of
  // the global 1:1:1 a multiprocessor-fair scheduler delivers (Section 1.2).
  PartitionedSfq scheduler(Config(2), 0);
  sim::Engine engine(scheduler);
  for (ThreadId tid = 1; tid <= 3; ++tid) {
    engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, "t"));
  }
  engine.RunUntil(Sec(10));
  std::vector<Tick> services;
  for (ThreadId tid = 1; tid <= 3; ++tid) {
    services.push_back(engine.ServiceIncludingRunning(tid));
  }
  std::sort(services.begin(), services.end());
  EXPECT_NEAR(static_cast<double>(services[2]) / static_cast<double>(services[0]), 2.0, 0.1);
}

// --- lottery ----------------------------------------------------------------------

TEST(LotteryTest, ProportionalInExpectation) {
  Lottery s(Config(1, Msec(10)), /*seed=*/7);
  s.AddThread(1, 3.0);
  s.AddThread(2, 1.0);
  Tick service1 = 0;
  Tick service2 = 0;
  for (int i = 0; i < 20000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
    (t == 1 ? service1 : service2) += Msec(10);
  }
  EXPECT_NEAR(static_cast<double>(service1) / static_cast<double>(service2), 3.0, 0.15);
}

TEST(LotteryTest, DeterministicForFixedSeed) {
  auto run = [] {
    Lottery s(Config(1, Msec(10)), 99);
    s.AddThread(1, 2.0);
    s.AddThread(2, 1.0);
    std::vector<ThreadId> picks;
    for (int i = 0; i < 100; ++i) {
      const ThreadId t = s.PickNext(0);
      picks.push_back(t);
      s.Charge(t, Msec(10));
    }
    return picks;
  };
  EXPECT_EQ(run(), run());
}

TEST(LotteryTest, MemorylessnessAvoidsExample1Starvation) {
  // Lottery has no tags to catch up: the late arrival in the Example 1 workload
  // is never starved (its win probability is immediate) — a qualitative
  // difference from SFQ that highlights *why* SFQ starves (tag debt).
  Lottery s(Config(2, Msec(1)), 3);
  s.AddThread(1, 1.0);
  s.AddThread(2, 10.0);
  for (int i = 0; i < 1000; ++i) {
    const ThreadId a = s.PickNext(0);
    const ThreadId b = s.PickNext(1);
    s.Charge(a, Msec(1));
    s.Charge(b, Msec(1));
  }
  s.AddThread(3, 1.0);
  // Thread 1 keeps winning draws right away.
  int t1_runs = 0;
  for (int i = 0; i < 300; ++i) {
    const ThreadId a = s.PickNext(0);
    const ThreadId b = s.PickNext(1);
    t1_runs += (a == 1 || b == 1) ? 1 : 0;
    s.Charge(a, Msec(1));
    s.Charge(b, Msec(1));
  }
  EXPECT_GT(t1_runs, 10);
}

TEST(LotteryTest, HighVarianceVersusSfs) {
  // Over a short horizon, lottery's allocation error is far larger than SFS's
  // deterministic few-quanta bound.
  auto spread = [](Scheduler& s) {
    s.AddThread(1, 1.0);
    s.AddThread(2, 1.0);
    Tick service1 = 0;
    Tick service2 = 0;
    for (int i = 0; i < 100; ++i) {
      const ThreadId t = s.PickNext(0);
      s.Charge(t, Msec(10));
      (t == 1 ? service1 : service2) += Msec(10);
    }
    return std::abs(service1 - service2);
  };
  Sfs sfs(Config(1, Msec(10)));
  Lottery lottery(Config(1, Msec(10)), 11);
  EXPECT_LE(spread(sfs), Msec(10));      // within one quantum
  EXPECT_GT(spread(lottery), Msec(20));  // random-walk excursion
}

// --- class-specific policies in H-SFS ----------------------------------------------

TEST(HsfsPolicyTest, RoundRobinClassIgnoresMemberWeights) {
  HierarchicalSfs s(Config(1));
  s.CreateClass(1, kRootClass, 1.0, IntraClassPolicy::kRoundRobin);
  s.AddThreadToClass(10, 9.0, 1);  // weight ignored inside an RR class
  s.AddThreadToClass(11, 1.0, 1);
  Tick service10 = 0;
  Tick service11 = 0;
  for (int i = 0; i < 1000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
    (t == 10 ? service10 : service11) += Msec(10);
  }
  EXPECT_NEAR(static_cast<double>(service10) / static_cast<double>(service11), 1.0, 0.05);
}

TEST(HsfsPolicyTest, RoundRobinClassStillGetsItsClassShare) {
  // Class A (RR inside, weight 1) vs class B (surplus inside, weight 1): the
  // inter-class split stays 1:1 regardless of the intra-class policies.
  HierarchicalSfs s(Config(1));
  s.CreateClass(1, kRootClass, 1.0, IntraClassPolicy::kRoundRobin);
  s.CreateClass(2, kRootClass, 1.0, IntraClassPolicy::kSurplus);
  s.AddThreadToClass(10, 1.0, 1);
  s.AddThreadToClass(11, 1.0, 1);
  s.AddThreadToClass(20, 2.0, 2);
  s.AddThreadToClass(21, 1.0, 2);
  for (int i = 0; i < 4000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
  }
  EXPECT_NEAR(static_cast<double>(s.ClassService(1)) / static_cast<double>(s.ClassService(2)),
              1.0, 0.1);
  // Inside class 2 the 2:1 weights are honoured.
  EXPECT_NEAR(static_cast<double>(s.TotalService(20)) / static_cast<double>(s.TotalService(21)),
              2.0, 0.15);
}

}  // namespace
}  // namespace sfs::sched

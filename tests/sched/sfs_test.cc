// Unit tests for Surplus Fair Scheduling (Sections 2.3, 3.1, 3.2).

#include "src/sched/sfs.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/sched/sfq.h"

namespace sfs::sched {
namespace {

SchedConfig Config(int cpus, Tick quantum = kDefaultQuantum) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = quantum;
  return config;
}

TEST(SfsTest, NewThreadStartsAtVirtualTime) {
  Sfs s(Config(2));
  s.AddThread(1, 1.0);
  EXPECT_DOUBLE_EQ(s.StartTag(1), 0.0);
  EXPECT_DOUBLE_EQ(s.VirtualTime(), 0.0);
  // Advance thread 1, then a new arrival starts at the (new) virtual time.
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(100));
  EXPECT_DOUBLE_EQ(s.VirtualTime(), s.StartTag(1));
  s.AddThread(2, 1.0);
  EXPECT_DOUBLE_EQ(s.StartTag(2), s.VirtualTime());
}

TEST(SfsTest, FinishTagFollowsEquationFive) {
  // F = S + q / phi.  Two equal threads on two CPUs: phi = w = 1.
  Sfs s(Config(2));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(100));
  EXPECT_DOUBLE_EQ(s.FinishTag(1), static_cast<double>(Msec(100)));
  EXPECT_DOUBLE_EQ(s.StartTag(1), s.FinishTag(1));
}

TEST(SfsTest, ReadjustedWeightUsedForTags) {
  // w = {10, 1} on 2 CPUs readjusts to equal phi; tags advance equally.
  Sfs s(Config(2));
  s.AddThread(1, 10.0);
  s.AddThread(2, 1.0);
  EXPECT_DOUBLE_EQ(s.GetPhi(1), s.GetPhi(2));
  ASSERT_NE(s.PickNext(0), kInvalidThread);
  ASSERT_NE(s.PickNext(1), kInvalidThread);
  s.Charge(1, Msec(100));
  s.Charge(2, Msec(100));
  EXPECT_DOUBLE_EQ(s.StartTag(1), s.StartTag(2));
}

TEST(SfsTest, SurplusNonNegativeAndSomeThreadAtZero) {
  Sfs s(Config(2));
  common::Rng rng(5);
  for (ThreadId tid = 1; tid <= 8; ++tid) {
    s.AddThread(tid, static_cast<double>(rng.UniformInt(1, 10)));
  }
  // Random dispatch churn.
  std::vector<std::pair<ThreadId, CpuId>> running;
  for (CpuId c = 0; c < 2; ++c) {
    running.emplace_back(s.PickNext(c), c);
  }
  for (int i = 0; i < 200; ++i) {
    const auto [victim, cpu] = running.front();
    running.erase(running.begin());
    s.Charge(victim, Msec(rng.UniformInt(1, 200)));

    double min_surplus = 1e18;
    for (ThreadId tid = 1; tid <= 8; ++tid) {
      const double a = s.Surplus(tid);
      EXPECT_GE(a, -1e-9);
      min_surplus = std::min(min_surplus, a);
    }
    // "At any instant, there is always at least one thread with alpha_i = 0."
    EXPECT_NEAR(min_surplus, 0.0, 1e-9);

    running.emplace_back(s.PickNext(cpu), cpu);
  }
}

TEST(SfsTest, PicksLeastSurplusThread) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  // Run thread 1 for a while: it accumulates surplus; thread 2 must be next.
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(200));
  EXPECT_EQ(s.PickNext(0), 2);
  s.Charge(2, Msec(200));
}

TEST(SfsTest, ReducesToSfqOnUniprocessor) {
  // "Surplus fair scheduling reduces to start-time fair queueing (SFQ) in a
  // uniprocessor system": identical dispatch sequences for identical inputs.
  Sfs sfs(Config(1));
  Sfq sfq(Config(1));
  common::Rng rng(17);
  std::map<ThreadId, Weight> weights;
  for (ThreadId tid = 1; tid <= 6; ++tid) {
    const auto w = static_cast<Weight>(rng.UniformInt(1, 10));
    weights[tid] = w;
    sfs.AddThread(tid, w);
    sfq.AddThread(tid, w);
  }
  for (int i = 0; i < 500; ++i) {
    const ThreadId a = sfs.PickNext(0);
    const ThreadId b = sfq.PickNext(0);
    ASSERT_EQ(a, b) << "diverged at decision " << i;
    const Tick q = Msec(rng.UniformInt(1, 200));
    sfs.Charge(a, q);
    sfq.Charge(b, q);
  }
}

TEST(SfsTest, WokenThreadGetsNoSleepCredit) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  // Thread 2 blocks immediately; thread 1 runs for a long time.
  s.Block(2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(s.PickNext(0), 1);
    s.Charge(1, Msec(200));
  }
  // On wakeup, S2 = max(F2, v) = v — not its stale tag.
  s.Wakeup(2);
  EXPECT_DOUBLE_EQ(s.StartTag(2), s.VirtualTime());
  // Both threads now stand at the virtual time: thread 2 must NOT receive the 10
  // quanta it "missed" while sleeping — over the next 10 quanta the split is 5:5.
  int runs2 = 0;
  for (int i = 0; i < 10; ++i) {
    const ThreadId t = s.PickNext(0);
    runs2 += t == 2 ? 1 : 0;
    s.Charge(t, Msec(200));
  }
  EXPECT_EQ(runs2, 5);
}

TEST(SfsTest, VariableLengthQuantaSupported) {
  // The surplus depends only on start tags, so charging arbitrary quantum
  // lengths keeps proportions exact: w 2:1 with services 2q:q stays balanced.
  Sfs s(Config(1));
  s.AddThread(1, 2.0);
  s.AddThread(2, 1.0);
  Tick service1 = 0;
  Tick service2 = 0;
  common::Rng rng(23);
  for (int i = 0; i < 3000; ++i) {
    const ThreadId t = s.PickNext(0);
    const Tick q = Msec(rng.UniformInt(1, 50));
    s.Charge(t, q);
    (t == 1 ? service1 : service2) += q;
  }
  EXPECT_NEAR(static_cast<double>(service1) / static_cast<double>(service2), 2.0, 0.1);
}

TEST(SfsTest, IdleVirtualTimeFrozenAtLastFinishTag) {
  Sfs s(Config(2));
  s.AddThread(1, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(100));
  const double f1 = s.FinishTag(1);
  s.Block(1);
  // System empty: virtual time holds at the last finish tag.
  EXPECT_DOUBLE_EQ(s.VirtualTime(), f1);
  // A new arrival starts there, not at zero.
  s.AddThread(2, 1.0);
  EXPECT_DOUBLE_EQ(s.StartTag(2), f1);
}

TEST(SfsTest, WeightChangeTriggersReadjustment) {
  Sfs s(Config(2));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.AddThread(3, 1.0);
  EXPECT_DOUBLE_EQ(s.GetPhi(1), 1.0);
  s.SetWeight(1, 100.0);  // now infeasible: must be capped to share 1/2
  const double total = s.GetPhi(1) + s.GetPhi(2) + s.GetPhi(3);
  EXPECT_NEAR(s.GetPhi(1) / total, 0.5, 1e-9);
}

TEST(SfsTest, TagRebaseKeepsOrderingAndRelativeTags) {
  SchedConfig config = Config(1);
  config.tag_rebase_threshold = static_cast<double>(Msec(500));
  Sfs s(config);
  s.AddThread(1, 1.0);
  s.AddThread(2, 2.0);
  common::Rng rng(31);
  Tick service1 = 0;
  Tick service2 = 0;
  for (int i = 0; i < 2000; ++i) {
    const ThreadId t = s.PickNext(0);
    const Tick q = Msec(rng.UniformInt(1, 20));
    s.Charge(t, q);
    (t == 1 ? service1 : service2) += q;
  }
  EXPECT_GT(s.rebases(), 0);
  // Proportions survive rebasing.
  EXPECT_NEAR(static_cast<double>(service2) / static_cast<double>(service1), 2.0, 0.1);
  // Tags stay bounded by the threshold (plus one quantum of slack).
  EXPECT_LT(s.StartTag(1), static_cast<double>(Msec(800)));
}

TEST(SfsTest, FixedPointModeMatchesExactProportions) {
  SchedConfig config = Config(1);
  config.fixed_point_digits = 4;  // the paper's 10^4 scaling factor
  Sfs s(config);
  s.AddThread(1, 3.0);
  s.AddThread(2, 7.0);
  Tick service1 = 0;
  Tick service2 = 0;
  for (int i = 0; i < 5000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
    (t == 1 ? service1 : service2) += Msec(10);
  }
  EXPECT_NEAR(static_cast<double>(service2) / static_cast<double>(service1), 7.0 / 3.0, 0.05);
}

TEST(SfsTest, HeuristicAuditAgreesWhenKCoversQueue) {
  SchedConfig config = Config(2);
  config.heuristic_k = 64;  // covers the whole (small) queue: always exact
  Sfs s(config);
  common::Rng rng(41);
  for (ThreadId tid = 1; tid <= 10; ++tid) {
    s.AddThread(tid, static_cast<double>(rng.UniformInt(1, 10)));
  }
  std::vector<std::pair<ThreadId, CpuId>> running;
  for (CpuId c = 0; c < 2; ++c) {
    running.emplace_back(s.PickNext(c), c);
  }
  for (int i = 0; i < 300; ++i) {
    const auto [victim, cpu] = running.front();
    running.erase(running.begin());
    s.Charge(victim, Msec(rng.UniformInt(1, 200)));
    const auto audit = s.AuditHeuristic(config.heuristic_k);
    EXPECT_EQ(audit.heuristic_pick, audit.exact_pick);
    running.emplace_back(s.PickNext(cpu), cpu);
  }
}

TEST(SfsTest, DecisionCountersAdvance) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(10));
  ASSERT_EQ(s.PickNext(0), 1);
  EXPECT_EQ(s.decisions(), 2);
  EXPECT_GE(s.full_refreshes(), 1);
}

TEST(SfsTest, PreemptionSuggestedForLongRunner) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  // Thread 2 wakes with zero surplus while thread 1 has been running 150 ms:
  // its prospective surplus exceeds the newcomer's -> preempt CPU 0.
  s.AddThread(2, 1.0);
  const std::vector<Tick> elapsed = {Msec(150)};
  EXPECT_EQ(s.SuggestPreemption(2, elapsed), 0);
  // With no elapsed time there is nothing to gain.
  const std::vector<Tick> fresh = {0};
  EXPECT_EQ(s.SuggestPreemption(2, fresh), kInvalidCpu);
}

}  // namespace
}  // namespace sfs::sched

// Unit tests for the GMS fluid reference (Section 2.2).

#include "src/sched/gms.h"

#include <gtest/gtest.h>

namespace sfs::sched {
namespace {

TEST(GmsTest, SingleThreadGetsOneProcessor) {
  GmsReference gms(2);
  gms.AddThread(1, 5.0, 0);
  EXPECT_DOUBLE_EQ(gms.Rate(1), 1.0);  // capped at one CPU
  gms.AdvanceTo(Sec(1));
  EXPECT_DOUBLE_EQ(gms.Service(1), static_cast<double>(Sec(1)));
}

TEST(GmsTest, EqualWeightsShareProportionally) {
  GmsReference gms(2);
  gms.AddThread(1, 1.0, 0);
  gms.AddThread(2, 1.0, 0);
  gms.AddThread(3, 1.0, 0);
  gms.AddThread(4, 1.0, 0);
  // 4 threads, 2 CPUs: rate 1/2 each.
  for (ThreadId tid = 1; tid <= 4; ++tid) {
    EXPECT_DOUBLE_EQ(gms.Rate(tid), 0.5);
  }
}

TEST(GmsTest, InfeasibleWeightCappedViaReadjustment) {
  GmsReference gms(2);
  gms.AddThread(1, 100.0, 0);
  gms.AddThread(2, 1.0, 0);
  gms.AddThread(3, 1.0, 0);
  // Thread 1 capped at a full processor; the rest split the other.
  EXPECT_DOUBLE_EQ(gms.Rate(1), 1.0);
  EXPECT_DOUBLE_EQ(gms.Rate(2), 0.5);
  EXPECT_DOUBLE_EQ(gms.Rate(3), 0.5);
  EXPECT_DOUBLE_EQ(gms.Phi(2), 1.0);  // feasible weights unchanged
}

TEST(GmsTest, EquationTwoHoldsOverInterval) {
  // A_i / A_j == phi_i / phi_j for continuously runnable threads.
  GmsReference gms(2);
  gms.AddThread(1, 3.0, 0);
  gms.AddThread(2, 1.0, 0);
  gms.AddThread(3, 1.0, 0);
  gms.AddThread(4, 1.0, 0);
  gms.AdvanceTo(Sec(6));
  EXPECT_NEAR(gms.Service(1) / gms.Service(2), 3.0, 1e-9);
  EXPECT_NEAR(gms.Service(2) / gms.Service(3), 1.0, 1e-9);
}

TEST(GmsTest, BlockStopsAccumulation) {
  GmsReference gms(1);
  gms.AddThread(1, 1.0, 0);
  gms.AddThread(2, 1.0, 0);
  gms.AdvanceTo(Sec(1));
  gms.Block(2, Sec(1));
  gms.AdvanceTo(Sec(2));
  EXPECT_DOUBLE_EQ(gms.Service(2), static_cast<double>(Msec(500)));
  EXPECT_DOUBLE_EQ(gms.Service(1), static_cast<double>(Msec(1500)));
  gms.Wakeup(2, Sec(2));
  EXPECT_DOUBLE_EQ(gms.Rate(2), 0.5);
}

TEST(GmsTest, DepartureRedistributesBandwidth) {
  GmsReference gms(2);
  gms.AddThread(1, 1.0, 0);
  gms.AddThread(2, 1.0, 0);
  gms.AddThread(3, 1.0, 0);
  gms.AddThread(4, 1.0, 0);
  gms.RemoveThread(4, Sec(1));
  // 3 threads on 2 CPUs: 2/3 each.
  EXPECT_NEAR(gms.Rate(1), 2.0 / 3.0, 1e-12);
  // Departed thread keeps its accumulated service readable.
  EXPECT_DOUBLE_EQ(gms.Service(4), static_cast<double>(Msec(500)));
}

TEST(GmsTest, WeightChangeAppliesFromNow) {
  GmsReference gms(1);
  gms.AddThread(1, 1.0, 0);
  gms.AddThread(2, 1.0, 0);
  gms.SetWeight(1, 3.0, Sec(1));
  gms.AdvanceTo(Sec(2));
  // First second: 1/2 each.  Second second: 3/4 vs 1/4.
  EXPECT_NEAR(gms.Service(1), 0.5 * Sec(1) + 0.75 * Sec(1), 1e-6);
  EXPECT_NEAR(gms.Service(2), 0.5 * Sec(1) + 0.25 * Sec(1), 1e-6);
}

TEST(GmsTest, FeasibleBecomesInfeasibleOnBlock) {
  // The Section 2.1 example: 1:1:2 on 2 CPUs is feasible until a weight-1
  // thread blocks, after which the weight-2 thread is capped to equal share.
  GmsReference gms(2);
  gms.AddThread(1, 2.0, 0);
  gms.AddThread(2, 1.0, 0);
  gms.AddThread(3, 1.0, 0);
  EXPECT_DOUBLE_EQ(gms.Rate(1), 1.0);  // 2/4 * 2 CPUs
  gms.Block(3, Sec(1));
  EXPECT_DOUBLE_EQ(gms.Rate(1), 1.0);
  EXPECT_DOUBLE_EQ(gms.Rate(2), 1.0);  // equal: t <= p
  EXPECT_DOUBLE_EQ(gms.Phi(1), gms.Phi(2));
}

}  // namespace
}  // namespace sfs::sched

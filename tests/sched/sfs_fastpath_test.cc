// Fast-path regression tests for SFS (ISSUE 2 satellites):
//
//   * SuggestPreemption must project a running thread's surplus growth as
//     exactly `elapsed` (fluid model: alpha = phi * (S - v) and S grows by
//     elapsed / phi).  The old code round-tripped elapsed through the
//     fixed-point WeightedService quantization and multiplied phi back, which
//     picks the wrong victim under coarse scaling factors.
//   * MaybeRebase shifts all tags by the minimum runnable start tag.  The
//     shift must keep `last_refresh_v_` in sync and must not drive blocked
//     threads' finish tags to -inf over a long horizon; dispatch decisions are
//     invariant under rebasing, so a tiny-threshold scheduler must trace
//     identically to a never-rebasing one.

#include "src/sched/sfs.h"

#include <vector>

#include "gtest/gtest.h"

namespace sfs::sched {
namespace {

TEST(SfsPreemptionTest, FixedPointProjectionPicksTrueWorstVictim) {
  // Scaling factor 10^0: WeightedService quantizes q/phi to integers.  With
  // the old projection phi * WeightedService(elapsed, phi):
  //   cpu0: phi=3, elapsed=4 -> 3 * round(4/3) = 3   (true growth: 4)
  //   cpu1: phi=2, elapsed=3 -> 2 * round(3/2) = 4   (true growth: 3)
  // i.e. the quantized projection inverts the victims.  The fluid model says
  // surplus grows by exactly `elapsed`, so cpu0 is the correct victim.
  SchedConfig config;
  config.num_cpus = 2;
  config.fixed_point_digits = 0;
  Sfs sfs(config);
  sfs.AddThread(1, 3.0);
  sfs.AddThread(2, 2.0);
  sfs.AddThread(3, 1.0);  // weights {3,2,1} are feasible on 2 CPUs: phi = w
  ASSERT_EQ(sfs.PickNext(0), 1);
  ASSERT_EQ(sfs.PickNext(1), 2);
  ASSERT_EQ(sfs.GetPhi(1), 3.0);
  ASSERT_EQ(sfs.GetPhi(2), 2.0);

  const std::vector<Tick> elapsed = {4, 3};
  EXPECT_EQ(sfs.SuggestPreemption(3, elapsed), 0);
}

TEST(SfsPreemptionTest, ExactArithmeticAgreesWithFluidModel) {
  SchedConfig config;
  config.num_cpus = 2;
  config.fixed_point_digits = -1;
  Sfs sfs(config);
  sfs.AddThread(1, 3.0);
  sfs.AddThread(2, 2.0);
  sfs.AddThread(3, 1.0);
  ASSERT_EQ(sfs.PickNext(0), 1);
  ASSERT_EQ(sfs.PickNext(1), 2);
  EXPECT_EQ(sfs.SuggestPreemption(3, {4, 3}), 0);
  // Larger uncharged time on cpu1 flips the victim.
  EXPECT_EQ(sfs.SuggestPreemption(3, {4, 9}), 1);
}

TEST(SfsRebaseTest, LongHorizonTracesMatchNeverRebasingScheduler) {
  // Same op sequence on a scheduler that rebases every ~1000 weighted ticks
  // and one that never rebases: rebasing is a uniform tag shift, so every
  // dispatch decision must be identical.  All tag increments are integral
  // (weights 1 and 2, 1 ms charges), so the shifts are exact in doubles.
  SchedConfig small;
  small.num_cpus = 1;
  small.tag_rebase_threshold = 1000.0;
  SchedConfig huge = small;
  huge.tag_rebase_threshold = 1e15;
  Sfs rebasing(small);
  Sfs reference(huge);

  for (Sfs* s : {&rebasing, &reference}) {
    s->AddThread(1, 2.0);
    s->AddThread(2, 1.0);
    s->AddThread(3, 1.0);
  }

  // Give the soon-blocked thread a small finish tag, then block it for the
  // whole horizon: every rebase shifts far past it.
  for (;;) {
    const ThreadId a = rebasing.PickNext(0);
    const ThreadId b = reference.PickNext(0);
    ASSERT_EQ(a, b);
    rebasing.Charge(a, Msec(1));
    reference.Charge(b, Msec(1));
    if (a == 3) {
      break;
    }
  }
  rebasing.Block(3);
  reference.Block(3);

  for (int i = 0; i < 3000; ++i) {
    const ThreadId a = rebasing.PickNext(0);
    const ThreadId b = reference.PickNext(0);
    ASSERT_EQ(a, b) << "iteration " << i << " after " << rebasing.rebases() << " rebases";
    rebasing.Charge(a, Msec(1));
    reference.Charge(b, Msec(1));
    // The blocked thread's finish tag seeds its wakeup start tag; repeated
    // rebases must clamp it at 0, not drive it toward -inf.
    ASSERT_GE(rebasing.FinishTag(3), 0.0) << "iteration " << i;
  }
  EXPECT_GT(rebasing.rebases(), 100);
  EXPECT_EQ(reference.rebases(), 0);

  // Waking the long-blocked thread lands at the (shifted) virtual time on
  // both; traces must keep agreeing.
  rebasing.Wakeup(3);
  reference.Wakeup(3);
  for (int i = 0; i < 200; ++i) {
    const ThreadId a = rebasing.PickNext(0);
    const ThreadId b = reference.PickNext(0);
    ASSERT_EQ(a, b) << "post-wakeup iteration " << i;
    rebasing.Charge(a, Msec(1));
    reference.Charge(b, Msec(1));
  }
  EXPECT_EQ(rebasing.TotalService(1), reference.TotalService(1));
  EXPECT_EQ(rebasing.TotalService(3), reference.TotalService(3));
  // The refresh-skip check must stay in sync across rebases: the rebasing
  // scheduler may not pay a single refresh more than the never-rebasing one.
  EXPECT_EQ(rebasing.full_refreshes(), reference.full_refreshes());
}

}  // namespace
}  // namespace sfs::sched

// RunQueue backend parity: the sorted-list and skip-list backends must expose
// identical observable state — order, neighbours, ends, bounded scans — after
// any operation sequence, including removals after key mutation (the
// schedulers' tag-update-then-reposition pattern).  This is the container-level
// half of the determinism contract; the scheduler-level half lives in
// backend_differential_test.cc.

#include "src/sched/run_queue.h"

#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"

namespace sfs::sched {
namespace {

struct Item {
  double key = 0.0;
  int id = 0;
  common::ListHook hook;
};

struct ByKeyThenId {
  static std::pair<double, int> Key(const Item& item) { return {item.key, item.id}; }
};

using Queue = RunQueue<Item, &Item::hook, ByKeyThenId>;

std::vector<int> IdsInOrder(Queue& q) {
  std::vector<int> ids;
  for (Item* cur = q.front(); cur != nullptr; cur = q.next(cur)) {
    ids.push_back(cur->id);
  }
  return ids;
}

std::vector<int> IdsBackwards(Queue& q) {
  std::vector<int> ids;
  for (Item* cur = q.back(); cur != nullptr; cur = q.prev(cur)) {
    ids.push_back(cur->id);
  }
  return ids;
}

TEST(RunQueueTest, SkipListBackendBasicOrder) {
  Queue q;
  q.SetBackend(QueueBackend::kSkipList);
  std::vector<Item> items(5);
  const double keys[] = {3.0, 1.0, 4.0, 1.5, 2.0};
  for (int i = 0; i < 5; ++i) {
    items[static_cast<std::size_t>(i)].key = keys[i];
    items[static_cast<std::size_t>(i)].id = i;
    q.Insert(&items[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(IdsInOrder(q), (std::vector<int>{1, 3, 4, 0, 2}));
  EXPECT_EQ(IdsBackwards(q), (std::vector<int>{2, 0, 4, 3, 1}));
  EXPECT_TRUE(q.IsSorted());
  EXPECT_EQ(q.front()->id, 1);
  EXPECT_EQ(q.back()->id, 2);
  EXPECT_TRUE(q.contains(&items[2]));
  q.Remove(&items[2]);
  EXPECT_FALSE(q.contains(&items[2]));
  EXPECT_EQ(q.size(), 4u);
  q.Clear();
  EXPECT_TRUE(q.empty());
}

TEST(RunQueueTest, SkipListRemoveAfterKeyMutation) {
  // The schedulers mutate tags first, then call Remove/Reposition; the skip
  // list must still locate the element via its insert-time key.
  Queue q;
  q.SetBackend(QueueBackend::kSkipList);
  std::vector<Item> items(8);
  for (int i = 0; i < 8; ++i) {
    items[static_cast<std::size_t>(i)].key = static_cast<double>(i);
    items[static_cast<std::size_t>(i)].id = i;
    q.Insert(&items[static_cast<std::size_t>(i)]);
  }
  items[3].key = 100.0;  // stale position, new key
  q.Remove(&items[3]);
  EXPECT_EQ(q.size(), 7u);
  q.Insert(&items[3]);
  EXPECT_EQ(q.back()->id, 3);
  items[3].key = -1.0;
  q.Reposition(&items[3]);
  EXPECT_EQ(q.front()->id, 3);
  EXPECT_TRUE(q.IsSorted());
  q.Clear();
}

TEST(RunQueueTest, BackendsAgreeUnderRandomOperations) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    Queue sorted;
    Queue skip;
    skip.SetBackend(QueueBackend::kSkipList);
    common::Rng rng(seed);

    constexpr int kItems = 64;
    std::vector<Item> a(kItems);
    std::vector<Item> b(kItems);
    std::vector<bool> present(kItems, false);
    for (int i = 0; i < kItems; ++i) {
      a[static_cast<std::size_t>(i)].id = i;
      b[static_cast<std::size_t>(i)].id = i;
    }

    const auto set_key = [&](int i, double key) {
      a[static_cast<std::size_t>(i)].key = key;
      b[static_cast<std::size_t>(i)].key = key;
    };

    for (int op = 0; op < 4000; ++op) {
      const int i = static_cast<int>(rng.UniformInt(0, kItems - 1));
      const auto choice = rng.UniformInt(0, 5);
      if (!present[static_cast<std::size_t>(i)] && choice <= 2) {
        // Duplicate keys on purpose: FIFO-among-ties must match too.
        set_key(i, static_cast<double>(rng.UniformInt(0, 15)));
        sorted.Insert(&a[static_cast<std::size_t>(i)]);
        skip.Insert(&b[static_cast<std::size_t>(i)]);
        present[static_cast<std::size_t>(i)] = true;
      } else if (present[static_cast<std::size_t>(i)] && choice == 3) {
        sorted.Remove(&a[static_cast<std::size_t>(i)]);
        skip.Remove(&b[static_cast<std::size_t>(i)]);
        present[static_cast<std::size_t>(i)] = false;
      } else if (present[static_cast<std::size_t>(i)] && choice == 4) {
        // Reposition after key mutation, via the OnCharge pattern.
        set_key(i, a[static_cast<std::size_t>(i)].key +
                       static_cast<double>(rng.UniformInt(1, 10)));
        sorted.Remove(&a[static_cast<std::size_t>(i)]);
        sorted.InsertFromBack(&a[static_cast<std::size_t>(i)]);
        skip.Remove(&b[static_cast<std::size_t>(i)]);
        skip.InsertFromBack(&b[static_cast<std::size_t>(i)]);
      } else if (choice == 5 && !sorted.empty()) {
        Item* fa = sorted.PopFront();
        Item* fb = skip.PopFront();
        ASSERT_EQ(fa->id, fb->id);
        present[static_cast<std::size_t>(fa->id)] = false;
      }

      ASSERT_EQ(sorted.size(), skip.size());
      ASSERT_EQ(IdsInOrder(sorted), IdsInOrder(skip)) << "seed " << seed << " op " << op;
    }

    // Bounded scans and backwards iteration agree at the end state.
    std::vector<int> first_a;
    std::vector<int> first_b;
    sorted.ForFirstK(10, [&first_a](Item* item) { first_a.push_back(item->id); });
    skip.ForFirstK(10, [&first_b](Item* item) { first_b.push_back(item->id); });
    EXPECT_EQ(first_a, first_b);
    std::vector<int> last_a;
    std::vector<int> last_b;
    sorted.ForLastK(10, [&last_a](Item* item) { last_a.push_back(item->id); });
    skip.ForLastK(10, [&last_b](Item* item) { last_b.push_back(item->id); });
    EXPECT_EQ(last_a, last_b);
    EXPECT_EQ(IdsBackwards(sorted), IdsBackwards(skip));
    EXPECT_TRUE(sorted.IsSorted());
    EXPECT_TRUE(skip.IsSorted());

    sorted.Clear();
    skip.Clear();
  }
}

TEST(RunQueueTest, ResortAgreesAcrossBackends) {
  Queue sorted;
  Queue skip;
  skip.SetBackend(QueueBackend::kSkipList);
  constexpr int kItems = 32;
  std::vector<Item> a(kItems);
  std::vector<Item> b(kItems);
  common::Rng rng(99);
  for (int i = 0; i < kItems; ++i) {
    const double key = static_cast<double>(rng.UniformInt(0, 10));
    a[static_cast<std::size_t>(i)].key = key;
    a[static_cast<std::size_t>(i)].id = i;
    b[static_cast<std::size_t>(i)].key = key;
    b[static_cast<std::size_t>(i)].id = i;
    sorted.Insert(&a[static_cast<std::size_t>(i)]);
    skip.Insert(&b[static_cast<std::size_t>(i)]);
  }
  // Perturb every key, then resort both.
  for (int i = 0; i < kItems; ++i) {
    const double key = static_cast<double>(rng.UniformInt(0, 10));
    a[static_cast<std::size_t>(i)].key = key;
    b[static_cast<std::size_t>(i)].key = key;
  }
  sorted.Resort();
  skip.Resort();
  EXPECT_TRUE(sorted.IsSorted());
  EXPECT_TRUE(skip.IsSorted());
  EXPECT_EQ(IdsInOrder(sorted), IdsInOrder(skip));
  sorted.Clear();
  skip.Clear();
}

}  // namespace
}  // namespace sfs::sched

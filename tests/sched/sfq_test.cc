// Unit tests for the SFQ baseline, including direct (engine-free) reproductions
// of the Example 1 pathology and its repair by weight readjustment.

#include "src/sched/sfq.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace sfs::sched {
namespace {

SchedConfig Config(int cpus, bool readjust, Tick quantum = kDefaultQuantum) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = quantum;
  config.use_readjustment = readjust;
  return config;
}

TEST(SfqTest, NameReflectsReadjustmentVariant) {
  Sfq plain(Config(2, false));
  Sfq fixed(Config(2, true));
  EXPECT_EQ(plain.name(), "SFQ");
  EXPECT_EQ(fixed.name(), "SFQ+readjust");
}

TEST(SfqTest, PicksMinimumStartTag) {
  Sfq s(Config(1, false));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(100));
  EXPECT_EQ(s.PickNext(0), 2);  // S2 = 0 < S1
}

TEST(SfqTest, StartTagAdvancesByWeightedService) {
  Sfq s(Config(1, false));
  s.AddThread(1, 4.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(100));
  EXPECT_DOUBLE_EQ(s.StartTag(1), static_cast<double>(Msec(100)) / 4.0);
}

TEST(SfqTest, ArrivalInheritsMinimumStartTag) {
  Sfq s(Config(1, false));
  s.AddThread(1, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(500));
  s.AddThread(2, 1.0);
  EXPECT_DOUBLE_EQ(s.StartTag(2), s.VirtualTime());
  EXPECT_DOUBLE_EQ(s.StartTag(2), static_cast<double>(Msec(500)));
}

TEST(SfqTest, UniprocessorProportionalAllocation) {
  Sfq s(Config(1, false));
  s.AddThread(1, 3.0);
  s.AddThread(2, 1.0);
  Tick service1 = 0;
  Tick service2 = 0;
  for (int i = 0; i < 4000; ++i) {
    const ThreadId t = s.PickNext(0);
    s.Charge(t, Msec(10));
    (t == 1 ? service1 : service2) += Msec(10);
  }
  EXPECT_NEAR(static_cast<double>(service1) / static_cast<double>(service2), 3.0, 0.05);
}

// Direct reproduction of Example 1 (Section 1.2) at the scheduler level:
// "thread 1 starves for 900 quanta".
TEST(SfqTest, Example1InfeasibleWeightsStarveThread1) {
  const Tick q = Msec(1);
  Sfq s(Config(2, /*readjust=*/false, q));
  s.AddThread(1, 1.0);   // T1
  s.AddThread(2, 10.0);  // T2
  // Both run continuously for 1000 quanta (one per CPU; which CPU gets which
  // thread depends on their relative start tags).
  for (int i = 0; i < 1000; ++i) {
    const ThreadId a = s.PickNext(0);
    const ThreadId b = s.PickNext(1);
    ASSERT_TRUE((a == 1 && b == 2) || (a == 2 && b == 1));
    s.Charge(a, q);
    s.Charge(b, q);
  }
  // S1 = 1000 q, S2 = 100 q.  T3 arrives with S3 = min = S2.
  EXPECT_DOUBLE_EQ(s.StartTag(1), static_cast<double>(1000 * q));
  EXPECT_DOUBLE_EQ(s.StartTag(2), static_cast<double>(100 * q));
  s.AddThread(3, 1.0);
  EXPECT_DOUBLE_EQ(s.StartTag(3), s.StartTag(2));

  // From here threads 2 and 3 monopolize both processors while T1 starves...
  int t1_runs = 0;
  int quanta = 0;
  for (; quanta < 2000; ++quanta) {
    const ThreadId a = s.PickNext(0);
    const ThreadId b = s.PickNext(1);
    t1_runs += (a == 1 || b == 1) ? 1 : 0;
    if (a == 1 || b == 1) {
      s.Charge(a, q);
      s.Charge(b, q);
      break;
    }
    s.Charge(a, q);
    s.Charge(b, q);
  }
  // ...for ~900 quanta (S2 and S3 must catch up from 100q to 1000q at q/10 and
  // q per quantum respectively; T3 reaches it first at 900 quanta).
  EXPECT_EQ(t1_runs, 1);
  EXPECT_NEAR(quanta, 900, 5);
}

// Same scenario with the readjustment algorithm: no starvation.
TEST(SfqTest, Example1RepairedByReadjustment) {
  const Tick q = Msec(1);
  Sfq s(Config(2, /*readjust=*/true, q));
  s.AddThread(1, 1.0);
  s.AddThread(2, 10.0);
  // phi readjusted to equal: both start tags advance identically.
  for (int i = 0; i < 1000; ++i) {
    const ThreadId a = s.PickNext(0);
    const ThreadId b = s.PickNext(1);
    ASSERT_TRUE((a == 1 && b == 2) || (a == 2 && b == 1));
    s.Charge(a, q);
    s.Charge(b, q);
  }
  EXPECT_DOUBLE_EQ(s.StartTag(1), s.StartTag(2));
  s.AddThread(3, 1.0);

  // T1 keeps running regularly: over the next 300 quanta-pairs it must appear
  // on a processor about 2/3 of the time (weights 1:2:1 readjusted -> T2 gets
  // half, T1 and T3 split the rest).
  int t1_runs = 0;
  for (int i = 0; i < 300; ++i) {
    const ThreadId a = s.PickNext(0);
    const ThreadId b = s.PickNext(1);
    t1_runs += (a == 1 || b == 1) ? 1 : 0;
    s.Charge(a, q);
    s.Charge(b, q);
  }
  EXPECT_GT(t1_runs, 120);  // ~150 expected; 0 would mean starvation
}

TEST(SfqTest, WokenThreadClampedToVirtualTime) {
  Sfq s(Config(1, false));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.Block(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(s.PickNext(0), 1);
    s.Charge(1, Msec(200));
  }
  s.Wakeup(2);
  EXPECT_DOUBLE_EQ(s.StartTag(2), s.VirtualTime());
}

TEST(SfqTest, FeasibilityQueryTracksRunnableSet) {
  Sfq s(Config(2, true));
  s.AddThread(1, 2.0);
  s.AddThread(2, 1.0);
  s.AddThread(3, 1.0);
  EXPECT_TRUE(s.WeightsFeasible());  // 2/4 == 1/2
  s.Block(3);
  EXPECT_FALSE(s.WeightsFeasible());  // {2,1}: 2/3 > 1/2
  s.Wakeup(3);
  EXPECT_TRUE(s.WeightsFeasible());
}

}  // namespace
}  // namespace sfs::sched

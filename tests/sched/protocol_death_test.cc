// Protocol-violation death tests: the kernel hook protocol (Section 3.1,
// documented on sched::Scheduler) is enforced with CHECKs; each violation must
// abort rather than corrupt scheduler state.  These double as executable
// documentation of the driver contract.

#include <gtest/gtest.h>

#include "src/sched/sfs.h"

namespace sfs::sched {
namespace {

SchedConfig Config(int cpus) {
  SchedConfig config;
  config.num_cpus = cpus;
  return config;
}

using ProtocolDeathTest = ::testing::Test;

TEST(ProtocolDeathTest, DuplicateThreadId) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  EXPECT_DEATH(s.AddThread(1, 2.0), "CHECK failed");
}

TEST(ProtocolDeathTest, NonPositiveWeight) {
  Sfs s(Config(1));
  EXPECT_DEATH(s.AddThread(1, 0.0), "CHECK failed");
  EXPECT_DEATH(s.AddThread(2, -1.0), "CHECK failed");
}

TEST(ProtocolDeathTest, PickOnOccupiedCpu) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  // The driver must Charge the previous thread before re-dispatching the CPU.
  EXPECT_DEATH(s.PickNext(0), "CHECK failed");
}

TEST(ProtocolDeathTest, ChargeNonRunningThread) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  EXPECT_DEATH(s.Charge(1, Msec(10)), "CHECK failed");
}

TEST(ProtocolDeathTest, BlockRunningThread) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  // Block requires a preceding Charge.
  EXPECT_DEATH(s.Block(1), "CHECK failed");
}

TEST(ProtocolDeathTest, RemoveRunningThread) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  EXPECT_DEATH(s.RemoveThread(1), "CHECK failed");
}

TEST(ProtocolDeathTest, WakeupRunnableThread) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  EXPECT_DEATH(s.Wakeup(1), "CHECK failed");
}

TEST(ProtocolDeathTest, BlockAlreadyBlockedThread) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  s.Block(1);
  EXPECT_DEATH(s.Block(1), "CHECK failed");
}

TEST(ProtocolDeathTest, UnknownThreadId) {
  Sfs s(Config(1));
  EXPECT_DEATH(s.Block(42), "CHECK failed");
  EXPECT_DEATH(s.Charge(42, Msec(1)), "CHECK failed");
  EXPECT_DEATH((void)s.GetWeight(42), "CHECK failed");
}

TEST(ProtocolDeathTest, InvalidCpuIndex) {
  Sfs s(Config(2));
  s.AddThread(1, 1.0);
  EXPECT_DEATH(s.PickNext(2), "CHECK failed");
  EXPECT_DEATH(s.PickNext(-1), "CHECK failed");
}

TEST(ProtocolDeathTest, NegativeCharge) {
  Sfs s(Config(1));
  s.AddThread(1, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  EXPECT_DEATH(s.Charge(1, -5), "CHECK failed");
}

}  // namespace
}  // namespace sfs::sched

// Drives the Scheduler thread-safety contract (scheduler.h) with real threads
// at the scheduler level, without the executor on top: one dispatcher per CPU
// runs PickNext/Charge under LockDispatch — exercising cross-shard steals and
// rebalance pulls between concurrently dispatching shards — while a lifecycle
// thread mutates Block/Wakeup/SetWeight under LockLifecycle.  Invariants are
// checked single-threaded afterwards; the test's main value is under TSan
// (CI's tsan job), where any contract violation surfaces as a race.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/sched/sfs.h"
#include "src/sched/sharded.h"

namespace sfs::sched {
namespace {

// Force the lock-order validator on before any scheduler is constructed so
// the shard dispatch mutexes register their CPU-id ranks and every blessed
// acquisition below (LockLifecycle ascending, LockDispatch, descending
// try_lock steals) runs under validation — even in release builds where the
// validator defaults off.
[[maybe_unused]] const bool kValidatorOn = [] {
  common::lock_order::SetEnabled(true);
  return true;
}();

TEST(ShardedConcurrencyTest, ConcurrentDispatchersKeepStateConsistent) {
  SchedConfig config;
  config.num_cpus = 4;
  config.shard_steal = ShardStealPolicy::kMaxSurplus;
  config.shard_rebalance_period = 16;  // exercise rebalance pulls too
  config.shard_coupling = 1.0;
  Sharded<Sfs> scheduler(config);

  constexpr ThreadId kThreads = 16;
  {
    auto guard = scheduler.LockLifecycle();
    for (ThreadId tid = 0; tid < kThreads; ++tid) {
      scheduler.AddThread(tid, 1.0 + tid % 3);
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> charged{0};

  std::vector<std::thread> dispatchers;
  for (CpuId cpu = 0; cpu < config.num_cpus; ++cpu) {
    dispatchers.emplace_back([&, cpu] {
      while (!stop.load()) {
        ThreadId tid;
        {
          auto guard = scheduler.LockDispatch(cpu);
          tid = scheduler.PickNext(cpu);
        }
        if (tid == kInvalidThread) {
          std::this_thread::yield();
          continue;
        }
        // "Run" a tiny quantum without holding any lock.
        const auto quantum_end = std::chrono::steady_clock::now() + std::chrono::microseconds(5);
        while (std::chrono::steady_clock::now() < quantum_end) {
        }
        {
          auto guard = scheduler.LockDispatch(cpu);
          scheduler.Charge(tid, 100);
        }
        charged.fetch_add(100);
      }
    });
  }

  // Lifecycle churn: block/wake the upper half, change the lower half's
  // weights.  Block requires runnable-and-not-running, checked under the same
  // exclusive lock that performs it.
  int blocked_now = 0;
  std::thread lifecycle([&] {
    bool blocked[kThreads] = {};
    for (int round = 0; round < 400; ++round) {
      const ThreadId tid = 8 + (round % 8);
      {
        auto guard = scheduler.LockLifecycle();
        if (blocked[tid]) {
          scheduler.Wakeup(tid);
          blocked[tid] = false;
        } else if (scheduler.IsRunnable(tid) && !scheduler.IsRunning(tid)) {
          scheduler.Block(tid);
          blocked[tid] = true;
        }
        scheduler.SetWeight(round % 8, 1.0 + round % 5);
      }
      std::this_thread::yield();
    }
    auto guard = scheduler.LockLifecycle();
    for (ThreadId tid = 8; tid < kThreads; ++tid) {
      if (blocked[tid]) {
        ++blocked_now;  // left blocked; woken below before the invariant check
      }
    }
  });

  lifecycle.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& d : dispatchers) {
    d.join();
  }

  // Single-threaded from here on.  Wake every thread the churn left blocked.
  for (ThreadId tid = 8; tid < kThreads; ++tid) {
    if (scheduler.Contains(tid) && !scheduler.IsRunnable(tid)) {
      scheduler.Wakeup(tid);
      --blocked_now;
    }
  }
  EXPECT_EQ(blocked_now, 0);
  EXPECT_EQ(scheduler.thread_count(), kThreads);
  EXPECT_EQ(scheduler.runnable_count(), kThreads);

  // Accounting survived the concurrency: every charged tick landed on exactly
  // one thread.
  std::int64_t total_service = 0;
  for (ThreadId tid = 0; tid < kThreads; ++tid) {
    total_service += scheduler.TotalService(tid);
  }
  EXPECT_EQ(total_service, charged.load());

  // Shard bookkeeping is consistent: per-shard runnable weight equals the sum
  // of the weights homed there, and every thread has a valid home.
  std::vector<double> expected(static_cast<std::size_t>(config.num_cpus), 0.0);
  for (ThreadId tid = 0; tid < kThreads; ++tid) {
    const CpuId home = scheduler.ShardOf(tid);
    ASSERT_GE(home, 0);
    ASSERT_LT(home, config.num_cpus);
    expected[static_cast<std::size_t>(home)] += scheduler.GetWeight(tid);
  }
  const std::vector<double> weights = scheduler.ShardRunnableWeights();
  for (std::size_t shard = 0; shard < weights.size(); ++shard) {
    EXPECT_NEAR(weights[shard], expected[shard], 1e-6) << "shard " << shard;
  }

  // And the scheduler still dispatches correctly single-threaded.
  const ThreadId tid = scheduler.PickNext(0);
  ASSERT_NE(tid, kInvalidThread);
  scheduler.Charge(tid, 10);
}

TEST(ShardedConcurrencyTest, FlatSchedulerSerializesDispatchUnderOneMutex) {
  // The base-class half of the contract: flat policies hand every CPU the same
  // dispatch mutex, so two dispatchers' critical sections never overlap.
  SchedConfig config;
  config.num_cpus = 2;
  Sfs scheduler(config);
  {
    auto guard = scheduler.LockLifecycle();
    for (ThreadId tid = 0; tid < 6; ++tid) {
      scheduler.AddThread(tid, 1.0);
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<int> in_critical{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::thread> dispatchers;
  for (CpuId cpu = 0; cpu < 2; ++cpu) {
    dispatchers.emplace_back([&, cpu] {
      while (!stop.load()) {
        auto guard = scheduler.LockDispatch(cpu);
        if (in_critical.fetch_add(1) != 0) {
          overlapped.store(true);
        }
        const ThreadId tid = scheduler.PickNext(cpu);
        if (tid != kInvalidThread) {
          scheduler.Charge(tid, 50);
        }
        in_critical.fetch_sub(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& d : dispatchers) {
    d.join();
  }
  EXPECT_FALSE(overlapped.load());
}

}  // namespace
}  // namespace sfs::sched

// Tests for the sharded scheduling layer (src/sched/sharded.h): the p=1
// differential against global SFS (trace-identical), idle-pull stealing,
// RemoveThread/Block immediately after an in-flight steal, surplus-aware
// rebalancing, and the cross-shard virtual-time coupling knob.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/sched/factory.h"
#include "src/sched/sfs.h"
#include "src/sched/sharded.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::sched {
namespace {

SchedConfig Config(int cpus, Tick quantum = kDefaultQuantum) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = quantum;
  return config;
}

// --- p=1 differential: sharded-SFS must be trace-identical to global SFS ---

// Drives the same seeded op mix (arrivals, kills, blocks, wakeups, weight
// changes, variable-length charges, dispatches) through both schedulers in
// lockstep, asserting every PickNext and SuggestPreemption agrees.
void DriveLockstep(Scheduler& a, Scheduler& b, std::uint64_t seed, int ops) {
  common::Rng rng(seed);
  std::vector<ThreadId> runnable;
  std::vector<ThreadId> blocked;
  ThreadId running = kInvalidThread;
  ThreadId next_tid = 1;

  const auto add_thread = [&] {
    const ThreadId tid = next_tid++;
    const auto weight = static_cast<Weight>(rng.UniformInt(1, 20));
    a.AddThread(tid, weight);
    b.AddThread(tid, weight);
    runnable.push_back(tid);
  };
  const auto take = [&rng](std::vector<ThreadId>& pool) {
    const std::size_t i = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
    const ThreadId tid = pool[i];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
    return tid;
  };

  add_thread();
  add_thread();
  for (int op = 0; op < ops; ++op) {
    const auto choice = rng.UniformInt(0, 9);
    if (choice <= 1) {
      add_thread();
      const std::vector<Tick> elapsed = {Msec(rng.UniformInt(0, 100))};
      ASSERT_EQ(a.SuggestPreemption(runnable.back(), elapsed),
                b.SuggestPreemption(runnable.back(), elapsed))
          << "seed " << seed << " op " << op;
    } else if (choice == 2 && !runnable.empty()) {
      const ThreadId tid = take(runnable);
      a.RemoveThread(tid);
      b.RemoveThread(tid);
    } else if (choice == 3 && !runnable.empty()) {
      const ThreadId tid = take(runnable);
      a.Block(tid);
      b.Block(tid);
      blocked.push_back(tid);
    } else if (choice == 4 && !blocked.empty()) {
      const ThreadId tid = take(blocked);
      a.Wakeup(tid);
      b.Wakeup(tid);
      runnable.push_back(tid);
    } else if (choice == 5 && !(runnable.empty() && blocked.empty())) {
      auto& pool = (!runnable.empty() && (blocked.empty() || rng.Bernoulli(0.7))) ? runnable
                                                                                  : blocked;
      const std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
      const auto weight = static_cast<Weight>(rng.UniformInt(1, 20));
      a.SetWeight(pool[i], weight);
      b.SetWeight(pool[i], weight);
    } else if (choice <= 7 && running == kInvalidThread && !runnable.empty()) {
      const ThreadId pa = a.PickNext(0);
      const ThreadId pb = b.PickNext(0);
      ASSERT_EQ(pa, pb) << "seed " << seed << " op " << op;
      if (pa != kInvalidThread) {
        running = pa;
        runnable.erase(std::find(runnable.begin(), runnable.end(), pa));
      }
    } else if (running != kInvalidThread) {
      const Tick ran = Msec(rng.UniformInt(1, 200));
      a.Charge(running, ran);
      b.Charge(running, ran);
      runnable.push_back(running);
      running = kInvalidThread;
    }
  }
  if (running != kInvalidThread) {
    a.Charge(running, Msec(1));
    b.Charge(running, Msec(1));
  }
  for (ThreadId tid = 1; tid < next_tid; ++tid) {
    if (!a.Contains(tid)) {
      ASSERT_FALSE(b.Contains(tid));
      continue;
    }
    ASSERT_EQ(a.TotalService(tid), b.TotalService(tid)) << "tid " << tid;
    ASSERT_EQ(a.GetPhi(tid), b.GetPhi(tid)) << "tid " << tid;
    ASSERT_EQ(a.IsRunnable(tid), b.IsRunnable(tid)) << "tid " << tid;
  }
}

TEST(ShardedDifferentialTest, UniprocessorShardedSfsMatchesGlobalSfsProtocol) {
  for (const std::uint64_t seed : {1ULL, 23ULL, 777ULL}) {
    Sfs global(Config(1));
    Sharded<Sfs> sharded(Config(1));
    DriveLockstep(global, sharded, seed, /*ops=*/1500);
  }
}

// Engine-level variant: identical dispatch fingerprints for a churny workload
// (arrivals, exits, blocking sleepers, a mid-run kill) at p=1.
std::uint64_t EngineFingerprint(Scheduler& scheduler) {
  sim::Engine engine(scheduler);
  std::uint64_t fingerprint = 1469598103934665603ULL;
  engine.SetRunIntervalHook([&fingerprint](Tick start, Tick len, CpuId cpu, ThreadId tid) {
    for (const std::uint64_t x : {static_cast<std::uint64_t>(start), static_cast<std::uint64_t>(len),
                                  static_cast<std::uint64_t>(cpu), static_cast<std::uint64_t>(tid)}) {
      fingerprint ^= x;
      fingerprint *= 1099511628211ULL;
    }
  });
  engine.AddTaskAt(0, workload::MakeInf(1, 3.0, "hog"));
  engine.AddTaskAt(Msec(50), workload::MakeInf(2, 1.0, "hog"));
  engine.AddTaskAt(Msec(100), workload::MakeFixedWork(3, 2.0, Msec(700), "short"));
  workload::Interact::Params params;
  params.seed = 11;
  engine.AddTaskAt(0, workload::MakeInteract(4, 1.0, params, nullptr, "sleeper"));
  engine.AddPeriodicHook(Sec(2), [done = false](sim::Engine& e) mutable {
    if (!done && e.HasTask(2) && e.task(2).state() != sim::Task::State::kExited) {
      e.KillTask(2);
      done = true;
    }
  });
  engine.RunUntil(Sec(5));
  return fingerprint;
}

TEST(ShardedDifferentialTest, UniprocessorShardedSfsMatchesGlobalSfsEngineTrace) {
  Sfs global(Config(1));
  Sharded<Sfs> sharded(Config(1));
  EXPECT_EQ(EngineFingerprint(global), EngineFingerprint(sharded));
  EXPECT_EQ(sharded.steals(), 0);  // nothing to steal from at p=1
}

// --- idle-pull stealing -------------------------------------------------------

TEST(ShardedTest, DrainedShardStealsHighestSurplusThread) {
  Sharded<Sfs> s(Config(2, Msec(10)));
  s.AddThread(1, 1.0);  // shard 0 (ties go to the lowest id)
  s.AddThread(2, 1.0);  // shard 1
  s.AddThread(3, 1.0);  // shard 0 (1.0 < 2.0)
  ASSERT_EQ(s.ShardOf(1), 0);
  ASSERT_EQ(s.ShardOf(2), 1);
  ASSERT_EQ(s.ShardOf(3), 0);

  ASSERT_EQ(s.PickNext(0), 1);
  ASSERT_EQ(s.PickNext(1), 2);
  s.Charge(2, Msec(10));
  s.Block(2);  // shard 1 drains (thread 1 still running on CPU 0)

  // CPU 1 has nothing local; it must pull the queued thread from shard 0.
  EXPECT_EQ(s.PickNext(1), 3);
  EXPECT_EQ(s.steals(), 1);
  EXPECT_EQ(s.ShardOf(3), 1);
  const auto weights = s.ShardRunnableWeights();
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  EXPECT_DOUBLE_EQ(weights[1], 1.0);
}

TEST(ShardedTest, StealPolicyNoneReproducesPartitionedIdling) {
  SchedConfig config = Config(2, Msec(10));
  config.shard_steal = ShardStealPolicy::kNone;
  Sharded<Sfs> s(config);
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.AddThread(3, 1.0);
  ASSERT_EQ(s.PickNext(1), 2);
  s.Charge(2, Msec(10));
  s.Block(2);
  // Backlog exists on shard 0, but the strawman never steals.
  EXPECT_EQ(s.PickNext(1), kInvalidThread);
  EXPECT_GT(s.runnable_count(), 0);
  EXPECT_EQ(s.steals(), 0);
}

// --- RemoveThread / Block racing an in-flight steal ---------------------------

TEST(ShardedTest, BlockAndWakeupAfterStealFollowTheNewHomeShard) {
  Sharded<Sfs> s(Config(2, Msec(10)));
  s.AddThread(1, 1.0);
  s.AddThread(2, 1.0);
  s.AddThread(3, 1.0);
  ASSERT_EQ(s.PickNext(0), 1);
  ASSERT_EQ(s.PickNext(1), 2);
  s.Charge(2, Msec(10));
  s.Block(2);
  ASSERT_EQ(s.PickNext(1), 3);  // steal moves thread 3's home to shard 1
  ASSERT_EQ(s.steals(), 1);

  // The stolen thread blocks right after its quantum: the block and the later
  // wakeup must be routed to the *new* home shard without tripping a CHECK.
  s.Charge(3, Msec(5));
  s.Block(3);
  EXPECT_FALSE(s.IsRunnable(3));
  s.Wakeup(3);
  EXPECT_TRUE(s.IsRunnable(3));
  EXPECT_EQ(s.ShardOf(3), 1);

  // Same for removal: kill the stolen thread, then its old shard-mates.
  s.Charge(1, Msec(5));
  s.RemoveThread(3);
  EXPECT_FALSE(s.Contains(3));
  s.RemoveThread(1);
  s.Wakeup(2);
  EXPECT_EQ(s.PickNext(1), 2);
  const auto weights = s.ShardRunnableWeights();
  EXPECT_DOUBLE_EQ(weights[0], 0.0);
  EXPECT_DOUBLE_EQ(weights[1], 1.0);
}

TEST(ShardedTest, RemoveFromVictimShardAfterStealKeepsWeightsConsistent) {
  Sharded<Sfs> s(Config(2, Msec(10)));
  for (ThreadId tid = 1; tid <= 5; ++tid) {
    s.AddThread(tid, 1.0);  // 1,3,5 -> shard 0; 2,4 -> shard 1
  }
  ASSERT_EQ(s.PickNext(0), 1);  // CPU 0 busy: shard 0 is a legitimate victim
  ASSERT_EQ(s.PickNext(1), 2);
  s.Charge(2, Msec(10));
  s.Block(2);
  s.Block(4);  // shard 1 fully drained
  // Shard 1 steals from shard 0; queued candidates 3 and 5 tie at surplus 0
  // -> lowest tid.
  ASSERT_EQ(s.PickNext(1), 3);
  ASSERT_EQ(s.steals(), 1);
  ASSERT_EQ(s.ShardOf(3), 1);
  // Steal in flight (thread 3 running on CPU 1): mutate the shard it left.
  s.RemoveThread(5);
  s.SetWeight(1, 7.0);
  s.Charge(3, Msec(10));
  s.RemoveThread(3);
  s.Charge(1, Msec(10));
  s.Wakeup(2);
  s.Wakeup(4);
  const auto weights = s.ShardRunnableWeights();
  EXPECT_DOUBLE_EQ(weights[0], 7.0);  // thread 1
  EXPECT_DOUBLE_EQ(weights[1], 2.0);  // threads 2 and 4 back home
}

// --- periodic surplus-aware rebalancing ---------------------------------------

TEST(ShardedTest, RebalanceRepairsDepartureImbalance) {
  auto imbalance_after_churn = [](int rebalance_period) {
    SchedConfig config = Config(2, Msec(10));
    config.shard_steal = ShardStealPolicy::kNone;
    config.shard_rebalance_period = rebalance_period;
    Sharded<Sfs> s(config);
    for (ThreadId tid = 1; tid <= 8; ++tid) {
      s.AddThread(tid, 1.0);  // odd ids -> shard 0, even -> shard 1
    }
    for (const ThreadId tid : {1, 3, 5}) {
      s.RemoveThread(tid);
    }
    for (int i = 0; i < 200; ++i) {
      for (CpuId cpu = 0; cpu < 2; ++cpu) {
        const ThreadId tid = s.PickNext(cpu);
        if (tid != kInvalidThread) {
          s.Charge(tid, Msec(10));
        }
      }
    }
    const auto weights = s.ShardRunnableWeights();
    return std::abs(weights[0] - weights[1]);
  };
  EXPECT_GT(imbalance_after_churn(0), 0.9);   // stuck imbalanced
  EXPECT_LT(imbalance_after_churn(16), 1.1);  // repaired (within one thread)
}

TEST(ShardedTest, RebalanceNeverParksWorkOnAnIdleProcessor) {
  // Strawman knobs (no stealing) with rebalancing on: when the shard-1 task
  // exits at t=1s, CPU 1 idles with no pending dispatch.  The rebalancer must
  // not migrate a hog into that shard — nothing would ever dispatch it, so
  // the thread would be parked (starved) while its twin owns CPU 0.
  SchedConfig config = Config(2, Msec(100));
  config.shard_steal = ShardStealPolicy::kNone;
  config.shard_rebalance_period = 8;
  Sharded<Sfs> scheduler(config);
  sim::Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "hog"));                  // shard 0
  engine.AddTaskAt(0, workload::MakeFixedWork(2, 1.0, Sec(1), "short"));  // shard 1
  engine.AddTaskAt(0, workload::MakeInf(3, 1.0, "hog"));                  // shard 0
  engine.RunUntil(Sec(10));
  // The two hogs keep sharing CPU 0 evenly (CPU 1's idling is the strawman's
  // documented capacity loss, not a fairness loss).
  EXPECT_NEAR(static_cast<double>(engine.ServiceIncludingRunning(1)),
              static_cast<double>(engine.ServiceIncludingRunning(3)),
              static_cast<double>(3 * Msec(100)));
}

TEST(ShardedTest, StealingRecoversCapacityAfterShardDrain) {
  // Same drain, production knobs: the freed processor steals a queued hog and
  // no capacity is lost for the rest of the run.
  Sharded<Sfs> scheduler(Config(2, Msec(100)));
  sim::Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "hog"));
  engine.AddTaskAt(0, workload::MakeFixedWork(2, 1.0, Sec(1), "short"));
  engine.AddTaskAt(0, workload::MakeInf(3, 1.0, "hog"));
  engine.RunUntil(Sec(10));
  EXPECT_EQ(engine.idle_time(), 0);
  EXPECT_GE(engine.steals(), 1);
  EXPECT_EQ(engine.ServiceIncludingRunning(1) + engine.ServiceIncludingRunning(3),
            2 * Sec(10) - Sec(1));
}

// --- cross-shard virtual-time coupling -----------------------------------------

// Threads 1 and 3 share shard 0, thread 2 owns shard 1.  Thread 1 accumulates
// 100 ms of weighted service (a 100 ms lead over shard 0's virtual time, which
// thread 3 pins at 0), then the drained shard 1 steals it.  Coupling 1 keeps
// its absolute start tag (shared timeline: v_src = 0 survives); coupling 0
// re-expresses the lead on top of shard 1's virtual time (1 ms).
double StolenStartTag(double coupling) {
  SchedConfig config = Config(2, Msec(100));
  config.shard_coupling = coupling;
  Sharded<Sfs> s(config);
  s.AddThread(1, 1.0);  // shard 0
  s.AddThread(2, 1.0);  // shard 1
  s.AddThread(3, 1.0);  // shard 0
  EXPECT_EQ(s.PickNext(0), 1);
  s.Charge(1, Msec(100));       // thread 1: start tag 100 ms, queued
  EXPECT_EQ(s.PickNext(0), 3);  // thread 3 (tag 0) keeps CPU 0 busy
  EXPECT_EQ(s.PickNext(1), 2);
  s.Charge(2, Msec(1));
  s.Block(2);                   // shard 1 drains (virtual time ~1 ms)
  EXPECT_EQ(s.PickNext(1), 1);  // steal the only queued shard-0 thread
  EXPECT_EQ(s.steals(), 1);
  return static_cast<const Sfs&>(s.shard(1)).StartTag(1);
}

TEST(ShardedTest, CouplingOnePreservesAbsoluteTagsAcrossShards) {
  EXPECT_DOUBLE_EQ(StolenStartTag(1.0), static_cast<double>(Msec(100)));
}

TEST(ShardedTest, CouplingZeroRebasesLeadOntoDestinationVirtualTime) {
  // The migrant keeps only its 100 ms lead over shard 0's virtual time,
  // re-expressed on shard 1's frozen virtual time (1 ms).
  EXPECT_DOUBLE_EQ(StolenStartTag(0.0), static_cast<double>(Msec(101)));
}

// --- factory-built sharded policies under the engine ---------------------------

TEST(ShardedTest, AllShardedKindsSurviveChurnUnderTheEngine) {
  for (const SchedKind kind :
       {SchedKind::kShardedSfs, SchedKind::kShardedSfq, SchedKind::kShardedWfq,
        SchedKind::kShardedStride, SchedKind::kShardedBvt}) {
    SchedConfig config = Config(3, Msec(20));
    config.shard_rebalance_period = 32;
    auto scheduler = CreateScheduler(kind, config);
    sim::Engine engine(*scheduler);
    for (ThreadId tid = 1; tid <= 7; ++tid) {
      engine.AddTaskAt(Msec(10 * tid), workload::MakeInf(tid, 1.0 + tid % 4, "hog"));
    }
    engine.AddTaskAt(0, workload::MakeFixedWork(8, 2.0, Msec(300), "short"));
    workload::Interact::Params params;
    params.seed = 5;
    engine.AddTaskAt(0, workload::MakeInteract(9, 1.0, params, nullptr, "sleeper"));
    engine.AddPeriodicHook(Sec(1), [done = false](sim::Engine& e) mutable {
      if (!done) {
        e.KillTask(3);
        done = true;
      }
    });
    const Tick horizon = Sec(4);
    engine.RunUntil(horizon);
    // Accounting identity: service + idle + switch cost == capacity.
    Tick total_service = 0;
    engine.ForEachTask([&](const sim::Task& task) {
      total_service += engine.ServiceIncludingRunning(task.tid());
    });
    EXPECT_EQ(total_service + engine.idle_time() + engine.total_context_switch_cost(),
              static_cast<Tick>(3) * horizon)
        << SchedKindName(kind);
  }
}

TEST(ShardedTest, EveryShardedKindStealsWhenItsShardDrains) {
  for (const SchedKind kind :
       {SchedKind::kShardedSfs, SchedKind::kShardedSfq, SchedKind::kShardedWfq,
        SchedKind::kShardedStride, SchedKind::kShardedBvt}) {
    auto scheduler = CreateScheduler(kind, Config(2, Msec(10)));
    scheduler->AddThread(1, 1.0);  // shard 0
    scheduler->AddThread(2, 1.0);  // shard 1
    scheduler->AddThread(3, 1.0);  // shard 0
    ASSERT_EQ(scheduler->PickNext(0), 1) << SchedKindName(kind);
    ASSERT_EQ(scheduler->PickNext(1), 2) << SchedKindName(kind);
    scheduler->Charge(2, Msec(10));
    scheduler->Block(2);
    EXPECT_EQ(scheduler->PickNext(1), 3) << SchedKindName(kind);
    EXPECT_EQ(scheduler->steals(), 1) << SchedKindName(kind);
  }
}

}  // namespace
}  // namespace sfs::sched

// Unit tests for the workload behaviour models (Section 4.1 applications).

#include "src/workload/workloads.h"

#include <gtest/gtest.h>

#include "src/sched/sfs.h"
#include "src/sim/engine.h"

namespace sfs::workload {
namespace {

using sched::SchedConfig;

SchedConfig Config(int cpus) {
  SchedConfig config;
  config.num_cpus = cpus;
  return config;
}

TEST(InfTest, AlwaysComputes) {
  Inf inf;
  const auto a = inf.Next(0);
  EXPECT_EQ(a.kind, sim::Action::Kind::kCompute);
  EXPECT_EQ(a.duration, kTickInfinity);
}

TEST(FixedWorkTest, ComputesThenExits) {
  FixedWork fw(Msec(300));
  const auto first = fw.Next(0);
  EXPECT_EQ(first.kind, sim::Action::Kind::kCompute);
  EXPECT_EQ(first.duration, Msec(300));
  const auto second = fw.Next(Msec(300));
  EXPECT_EQ(second.kind, sim::Action::Kind::kExit);
}

TEST(InteractTest, AlternatesThinkAndBurst) {
  common::SampleSet responses;
  Interact::Params params;
  params.mean_think = Msec(100);
  params.burst = Msec(5);
  Interact interact(params, &responses);

  // Arrival: think first.
  const auto a0 = interact.Next(0);
  EXPECT_EQ(a0.kind, sim::Action::Kind::kBlock);
  // Wake at t=a0.duration: serve the request.
  const Tick wake = a0.duration;
  interact.OnWake(wake);
  const auto a1 = interact.Next(wake);
  EXPECT_EQ(a1.kind, sim::Action::Kind::kCompute);
  EXPECT_EQ(a1.duration, Msec(5));
  // Burst completes 7 ms later (2 ms queueing): response recorded = 7 ms.
  const auto a2 = interact.Next(wake + Msec(7));
  EXPECT_EQ(a2.kind, sim::Action::Kind::kBlock);
  ASSERT_EQ(responses.count(), 1u);
  EXPECT_DOUBLE_EQ(responses.mean(), 7.0);
  EXPECT_EQ(interact.requests_served(), 1);
}

TEST(MpegDecoderTest, PacedAtTargetRateWhenUnloaded) {
  // Full CPU available: the decoder holds 30 fps by sleeping between frames.
  sched::Sfs scheduler(Config(1));
  sim::Engine engine(scheduler);
  MpegDecoder::Params params;
  engine.AddTaskAt(0, MakeMpeg(1, 1.0, params, "mpeg"));
  engine.RunUntil(Sec(10));
  auto& decoder = static_cast<MpegDecoder&>(engine.task(1).behavior());
  EXPECT_NEAR(static_cast<double>(decoder.frames_decoded()) / 10.0, 30.0, 1.0);
  // It used ~90% of the CPU (30 ms per 33.3 ms frame).
  EXPECT_NEAR(static_cast<double>(engine.Service(1)) / static_cast<double>(Sec(10)), 0.9, 0.02);
}

TEST(MpegDecoderTest, FrameRateTracksCpuShareWhenOverloaded) {
  // Decoder at weight 1 against an equal hog on one CPU: ~50% share -> ~16 fps.
  sched::Sfs scheduler(Config(1));
  sim::Engine engine(scheduler);
  MpegDecoder::Params params;
  engine.AddTaskAt(0, MakeMpeg(1, 1.0, params, "mpeg"));
  engine.AddTaskAt(0, MakeInf(2, 1.0, "hog"));
  engine.RunUntil(Sec(10));
  auto& decoder = static_cast<MpegDecoder&>(engine.task(1).behavior());
  const double fps = static_cast<double>(decoder.frames_decoded()) / 10.0;
  EXPECT_NEAR(fps, 0.5 / 0.030, 2.0);  // share / frame_cost
}

TEST(CompileJobTest, FiniteBudgetExits) {
  sched::Sfs scheduler(Config(1));
  sim::Engine engine(scheduler);
  CompileJob::Params params;
  params.total_cpu = Msec(200);
  params.seed = 5;
  engine.AddTaskAt(0, MakeCompileJob(1, 1.0, params, "gcc"));
  engine.RunUntil(Sec(5));
  EXPECT_EQ(engine.task(1).state(), sim::Task::State::kExited);
  EXPECT_EQ(engine.Service(1), Msec(200));
}

TEST(CompileJobTest, EndlessJobKeepsMixedDutyCycle) {
  sched::Sfs scheduler(Config(1));
  sim::Engine engine(scheduler);
  CompileJob::Params params;
  params.seed = 11;
  engine.AddTaskAt(0, MakeCompileJob(1, 1.0, params, "gcc"));
  engine.RunUntil(Sec(30));
  EXPECT_EQ(engine.task(1).state() == sim::Task::State::kExited, false);
  const double duty =
      static_cast<double>(engine.ServiceIncludingRunning(1)) / static_cast<double>(Sec(30));
  // ~40 ms bursts vs ~6 ms blocks: duty around 0.87.
  EXPECT_GT(duty, 0.75);
  EXPECT_LT(duty, 0.95);
}

TEST(DhrystoneTest, LoopsScaleWithService) {
  sched::Sfs scheduler(Config(1));
  sim::Engine engine(scheduler);
  engine.AddTaskAt(0, MakeDhrystone(1, 1.0, "dhry"));
  engine.RunUntil(Sec(2));
  const double loops =
      static_cast<double>(engine.ServiceIncludingRunning(1)) * Dhrystone::kLoopsPerUsec;
  EXPECT_DOUBLE_EQ(loops, static_cast<double>(Sec(2)) * Dhrystone::kLoopsPerUsec);
}

}  // namespace
}  // namespace sfs::workload

// Tests for the real-thread user-level executor.  Timing assertions are loose:
// these run on shared CI hardware.

#include "src/exec/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sched/sfs.h"
#include "src/sched/sharded.h"

namespace sfs::exec {
namespace {

sched::SchedConfig Config(int cpus) {
  sched::SchedConfig config;
  config.num_cpus = cpus;
  return config;
}

// Spins for roughly `us` microseconds of wall time.
void SpinFor(std::int64_t us) {
  const auto end = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < end) {
  }
}

TEST(ExecutorTest, RunsAllTasksToCompletion) {
  sched::Sfs scheduler(Config(2));
  Executor::Config config;
  config.quantum = Msec(1);  // each ~5 ms task needs several dispatches
  Executor executor(scheduler, config);

  std::atomic<int> completed{0};
  for (sched::ThreadId tid = 1; tid <= 4; ++tid) {
    auto remaining = std::make_shared<std::atomic<int>>(50);
    executor.AddTask(tid, 1.0, [remaining, &completed] {
      SpinFor(100);
      if (remaining->fetch_sub(1) == 1) {
        completed.fetch_add(1);
        return false;
      }
      return true;
    });
  }
  executor.Run(Sec(30));
  EXPECT_EQ(completed.load(), 4);
  EXPECT_GT(executor.dispatches(), 4);
}

TEST(ExecutorTest, CpuTimeAccountedPerTask) {
  sched::Sfs scheduler(Config(1));
  Executor::Config config;
  config.quantum = Msec(5);
  Executor executor(scheduler, config);
  executor.AddTask(1, 1.0, [] {
    SpinFor(100);
    return true;  // runs until the wall limit
  });
  executor.Run(Msec(200));
  // The single task owned the single CPU for ~the whole run.
  EXPECT_GT(executor.CpuTime(1), Msec(100));
}

TEST(ExecutorTest, WallLimitStopsEndlessTasks) {
  sched::Sfs scheduler(Config(2));
  Executor::Config config;
  config.quantum = Msec(5);
  Executor executor(scheduler, config);
  for (sched::ThreadId tid = 1; tid <= 3; ++tid) {
    executor.AddTask(tid, 1.0, [] {
      SpinFor(50);
      return true;
    });
  }
  const Tick wall = executor.Run(Msec(300));
  EXPECT_LT(wall, Sec(5));  // returned promptly after the limit
}

TEST(ExecutorTest, ProportionalSharesRoughlyHold) {
  // Weight 3 vs 1 on one "CPU": the heavy task should get clearly more time.
  // Loose 2x bound — CI schedulers add noise.
  sched::Sfs scheduler(Config(1));
  Executor::Config config;
  config.quantum = Msec(2);
  Executor executor(scheduler, config);
  executor.AddTask(1, 3.0, [] {
    SpinFor(50);
    return true;
  });
  executor.AddTask(2, 1.0, [] {
    SpinFor(50);
    return true;
  });
  executor.Run(Msec(500));
  const double ratio = static_cast<double>(executor.CpuTime(1)) /
                       static_cast<double>(std::max<Tick>(1, executor.CpuTime(2)));
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 6.0);
}

TEST(ExecutorTest, BlockingTaskRoundTrips) {
  sched::Sfs scheduler(Config(1));
  Executor::Config config;
  config.quantum = Msec(2);
  Executor executor(scheduler, config);

  // A task that alternates compute and simulated I/O, next to a CPU hog: every
  // round needs a Block, a timer Wakeup, and a re-dispatch against the hog.
  constexpr int kRounds = 10;
  auto rounds_left = std::make_shared<std::atomic<int>>(kRounds);
  std::atomic<bool> io_task_done{false};
  executor.AddTask(1, 1.0, [rounds_left, &io_task_done]() -> Executor::WorkResult {
    SpinFor(100);
    if (rounds_left->fetch_sub(1) == 1) {
      io_task_done.store(true);
      return Executor::WorkResult::Done();
    }
    return Executor::WorkResult::Block(Msec(2));
  });
  executor.AddTask(2, 1.0, [] {
    SpinFor(50);
    return true;
  });

  executor.Run(Msec(500));
  EXPECT_TRUE(io_task_done.load());
  EXPECT_GE(executor.wakeups(), kRounds - 1);
  EXPECT_GT(executor.CpuTime(2), executor.CpuTime(1));  // the hog kept the CPU
}

TEST(ExecutorTest, WakeupRedispatchesIdleCpus) {
  // Work conservation: while the only task sleeps, every CPU goes idle; each
  // wakeup must re-dispatch an idle CPU (no CPU ever produces a report of its
  // own to trigger one).  A non-work-conserving executor leaves the task
  // parked until the wall limit.
  sched::Sfs scheduler(Config(2));
  Executor::Config config;
  config.quantum = Msec(5);
  Executor executor(scheduler, config);

  constexpr int kRounds = 5;
  auto rounds_left = std::make_shared<std::atomic<int>>(kRounds);
  std::atomic<bool> done{false};
  executor.AddTask(7, 1.0, [rounds_left, &done]() -> Executor::WorkResult {
    SpinFor(200);
    if (rounds_left->fetch_sub(1) == 1) {
      done.store(true);
      return Executor::WorkResult::Done();
    }
    return Executor::WorkResult::Block(Msec(5));
  });

  const Tick wall = executor.Run(Sec(10));
  EXPECT_TRUE(done.load());
  EXPECT_LT(wall, Sec(8));  // finished long before the limit, not parked
}

TEST(ExecutorTest, WindDownDrainsInFlightSlices) {
  // The wall limit expires while every CPU has a granted worker mid-quantum;
  // wind-down must preempt them, drain the final reports, and charge the
  // in-flight slices so CPU-time accounting stays complete.
  sched::Sfs scheduler(Config(2));
  Executor::Config config;
  config.quantum = Msec(50);  // quantum >> wall limit: reports still in flight
  Executor executor(scheduler, config);
  for (sched::ThreadId tid = 1; tid <= 3; ++tid) {
    executor.AddTask(tid, 1.0, [] {
      SpinFor(100);
      return true;
    });
  }
  const Tick wall = executor.Run(Msec(100));
  EXPECT_LT(wall, Sec(2));
  Tick total = 0;
  for (sched::ThreadId tid = 1; tid <= 3; ++tid) {
    total += executor.CpuTime(tid);
  }
  // Both CPUs were busy essentially the whole run; the drained final slices
  // account for most of 2 x 100 ms.
  EXPECT_GT(total, Msec(100));
}

TEST(ExecutorTest, MultiDispatcherStressSharded) {
  // Four dispatchers drive four SFS shards concurrently: spinners to keep
  // shards busy, blockers to exercise Block/Wakeup and idle-pull stealing,
  // and finite tasks to exercise exit during dispatch.  Run under TSan in CI.
  sched::SchedConfig config = Config(4);
  sched::Sharded<sched::Sfs> scheduler(config);
  Executor::Config exec_config;
  exec_config.quantum = Msec(1);
  Executor executor(scheduler, exec_config);

  std::atomic<int> finished{0};
  for (sched::ThreadId tid = 0; tid < 4; ++tid) {  // spinners
    executor.AddTask(tid, 1.0 + tid, [] {
      SpinFor(30);
      return true;
    });
  }
  for (sched::ThreadId tid = 4; tid < 8; ++tid) {  // blockers
    executor.AddTask(tid, 2.0, [tid]() -> Executor::WorkResult {
      SpinFor(50);
      return Executor::WorkResult::Block(Usec(500) * (1 + tid % 3));
    });
  }
  for (sched::ThreadId tid = 8; tid < 12; ++tid) {  // finite
    auto remaining = std::make_shared<std::atomic<int>>(40);
    executor.AddTask(tid, 1.0, [remaining, &finished]() -> Executor::WorkResult {
      SpinFor(40);
      if (remaining->fetch_sub(1) == 1) {
        finished.fetch_add(1);
        return Executor::WorkResult::Done();
      }
      return Executor::WorkResult::Continue();
    });
  }

  executor.Run(Msec(400));
  EXPECT_EQ(finished.load(), 4);
  EXPECT_GT(executor.dispatches(), 20);
  EXPECT_GT(executor.wakeups(), 0);
  Tick total = 0;
  for (sched::ThreadId tid = 0; tid < 12; ++tid) {
    total += executor.CpuTime(tid);
  }
  EXPECT_GT(total, Msec(50));
}

TEST(ExecutorTest, SerializedDispatchFallbackWorks) {
  // Config::serialize_dispatch funnels every scheduler call through one
  // executor-wide mutex (the pre-concurrent executor's behavior); the full
  // pick/grant/block/wakeup/exit machinery must still work under it.
  sched::SchedConfig config = Config(2);
  sched::Sharded<sched::Sfs> scheduler(config);
  Executor::Config exec_config;
  exec_config.quantum = Msec(2);
  exec_config.serialize_dispatch = true;
  Executor executor(scheduler, exec_config);

  std::atomic<bool> blocker_done{false};
  auto rounds_left = std::make_shared<std::atomic<int>>(5);
  executor.AddTask(1, 1.0, [rounds_left, &blocker_done]() -> Executor::WorkResult {
    SpinFor(100);
    if (rounds_left->fetch_sub(1) == 1) {
      blocker_done.store(true);
      return Executor::WorkResult::Done();
    }
    return Executor::WorkResult::Block(Msec(1));
  });
  executor.AddTask(2, 1.0, [] {
    SpinFor(50);
    return true;
  });
  executor.Run(Msec(400));
  EXPECT_TRUE(blocker_done.load());
  EXPECT_GT(executor.dispatches(), 5);
  EXPECT_GT(executor.CpuTime(2), 0);
}

TEST(ExecutorTest, BatchDispatchDeferredChargeWorks) {
  // Config::batch_dispatch parks each voluntary-continue charge and applies it
  // under the next pick's dispatch-lock hold.  The full machinery — spinners
  // whose every slice takes the deferred path, blockers whose lifecycle
  // charges never defer, finite tasks that exit, and the end-of-run flush of a
  // still-parked charge — must work, and CPU time must be fully accounted.
  sched::SchedConfig config = Config(2);
  sched::Sharded<sched::Sfs> scheduler(config);
  Executor::Config exec_config;
  exec_config.quantum = Msec(2);
  exec_config.batch_dispatch = true;
  Executor executor(scheduler, exec_config);

  std::atomic<bool> blocker_done{false};
  auto rounds_left = std::make_shared<std::atomic<int>>(5);
  executor.AddTask(1, 1.0, [rounds_left, &blocker_done]() -> Executor::WorkResult {
    SpinFor(100);
    if (rounds_left->fetch_sub(1) == 1) {
      blocker_done.store(true);
      return Executor::WorkResult::Done();
    }
    return Executor::WorkResult::Block(Msec(1));
  });
  executor.AddTask(2, 1.0, [] {
    SpinFor(50);
    return true;
  });
  executor.AddTask(3, 2.0, [] {
    SpinFor(50);
    return true;
  });
  executor.Run(Msec(400));
  EXPECT_TRUE(blocker_done.load());
  EXPECT_GT(executor.dispatches(), 5);
  // The run-long spinners' slices all go through the deferred-charge path;
  // a lost park or missing final flush would leave their CPU time at zero.
  EXPECT_GT(executor.CpuTime(2), 0);
  EXPECT_GT(executor.CpuTime(3), 0);
}

TEST(ExecutorTest, WeightedFairnessAcrossShards) {
  // Two dispatchers over two SFS shards; weight-balanced placement puts one
  // heavy and one light spinner on each shard, so per-shard proportional
  // sharing should produce a clear aggregate heavy:light CPU-time ratio.
  sched::SchedConfig config = Config(2);
  sched::Sharded<sched::Sfs> scheduler(config);
  Executor::Config exec_config;
  exec_config.quantum = Msec(2);
  Executor executor(scheduler, exec_config);
  const double weights[] = {3.0, 3.0, 1.0, 1.0};
  for (sched::ThreadId tid = 0; tid < 4; ++tid) {
    executor.AddTask(tid, weights[tid], [] {
      SpinFor(50);
      return true;
    });
  }
  executor.Run(Msec(600));
  const double heavy = static_cast<double>(executor.CpuTime(0) + executor.CpuTime(1));
  const double light =
      static_cast<double>(std::max<Tick>(1, executor.CpuTime(2) + executor.CpuTime(3)));
  EXPECT_GT(heavy / light, 1.5);
  EXPECT_LT(heavy / light, 6.0);
}

TEST(ExecutorTest, DispatchLatenciesRecorded) {
  sched::Sfs scheduler(Config(2));
  Executor::Config config;
  config.quantum = Msec(2);
  Executor executor(scheduler, config);
  for (sched::ThreadId tid = 1; tid <= 3; ++tid) {
    executor.AddTask(tid, 1.0, [] {
      SpinFor(30);
      return true;
    });
  }
  executor.Run(Msec(200));
  EXPECT_GT(executor.dispatch_latencies().count(), 10u);
  // A scheduling decision on an uncontended scheduler is far under a quantum
  // (latencies are nanoseconds; 10 ms here is a pathology bound, not a perf
  // assertion).
  EXPECT_LT(executor.dispatch_latencies().Percentile(50), 10'000'000.0);
  // The lock-wait component is sampled on every acquisition (including idle
  // picks), so it can only have more samples than the dispatch histogram.
  EXPECT_GE(executor.lock_wait_latencies().count(), executor.dispatch_latencies().count());
}

TEST(ExecutorTest, TracedMultiDispatcherStress) {
  // The MultiDispatcherStressSharded workload with a wall-clock obs::Trace
  // and a shared metrics registry attached: four dispatcher threads plus the
  // timer thread record concurrently into their own rings while this thread
  // snapshots the histograms mid-run.  Run under TSan in CI — this is the
  // data-race proof for the single-writer ring contract.  Ring capacity is
  // deliberately tiny so the wraparound path runs concurrently too.
  sched::SchedConfig config = Config(4);
  sched::Sharded<sched::Sfs> scheduler(config);
  obs::Trace trace(4, /*capacity_per_ring=*/256, obs::Trace::Clock::kWallNanos);
  obs::MetricsRegistry metrics(/*num_shards=*/4);
  Executor::Config exec_config;
  exec_config.quantum = Msec(1);
  exec_config.trace = &trace;
  exec_config.metrics = &metrics;
  Executor executor(scheduler, exec_config);

  for (sched::ThreadId tid = 0; tid < 4; ++tid) {  // spinners
    executor.AddTask(tid, 1.0 + tid, [] {
      SpinFor(30);
      return true;
    });
  }
  for (sched::ThreadId tid = 4; tid < 8; ++tid) {  // blockers
    executor.AddTask(tid, 2.0, [tid]() -> Executor::WorkResult {
      SpinFor(50);
      return Executor::WorkResult::Block(Usec(500) * (1 + tid % 3));
    });
  }

  // Snapshot the shared registry concurrently with the dispatchers.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)metrics.GetHistogram("exec/dispatch_latency_ns").Snapshot();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  executor.Run(Msec(400));
  stop.store(true);
  reader.join();

  EXPECT_EQ(&executor.metrics(), &metrics);
  EXPECT_GT(executor.dispatches(), 20);
  EXPECT_EQ(executor.dispatch_latencies().count(),
            static_cast<std::uint64_t>(executor.dispatches()));
  // Every dispatcher granted work, so every per-CPU ring saw records; the
  // lifecycle ring carries at least the eight arrivals and some block/wakeup
  // traffic.
  for (int cpu = 0; cpu < 4; ++cpu) {
    EXPECT_GT(trace.ring(cpu).size(), 0u) << "cpu " << cpu;
  }
  EXPECT_GE(trace.lifecycle_ring().appended(), 8u);
  // Targeted wake mode records wakeups in the applying dispatcher's own CPU
  // ring (single-writer discipline), so count across all rings.
  std::uint64_t wakeup_records = 0;
  std::uint64_t dropped = trace.lifecycle_ring().dropped();
  const auto count_wakeups = [&](const obs::TraceRecord& r) {
    wakeup_records += r.kind == obs::TraceEventKind::kWakeup ? 1 : 0;
  };
  trace.lifecycle_ring().ForEach(count_wakeups);
  for (int cpu = 0; cpu < 4; ++cpu) {
    trace.ring(cpu).ForEach(count_wakeups);
    dropped += trace.ring(cpu).dropped();
  }
  EXPECT_GT(wakeup_records + dropped, 0u);
}

TEST(ExecutorTest, PreemptLatenciesRecorded) {
  sched::Sfs scheduler(Config(1));
  Executor::Config config;
  config.quantum = Msec(2);
  Executor executor(scheduler, config);
  executor.AddTask(1, 1.0, [] {
    SpinFor(20);
    return true;
  });
  executor.AddTask(2, 1.0, [] {
    SpinFor(20);
    return true;
  });
  executor.Run(Msec(300));
  EXPECT_GT(executor.preempt_latencies().count(), 5u);
  // Cooperative yield happens within one work unit (~20 us), but under
  // parallel ctest on an oversubscribed host the preempted worker can sit
  // descheduled for tens of ms before observing the flag — bound the median
  // well below a quantum-scale pathology without asserting absolute speed.
  EXPECT_LT(executor.preempt_latencies().Percentile(50), 100000.0);
}

}  // namespace
}  // namespace sfs::exec

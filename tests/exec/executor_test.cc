// Tests for the real-thread user-level executor.  Timing assertions are loose:
// these run on shared CI hardware.

#include "src/exec/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "src/sched/sfs.h"

namespace sfs::exec {
namespace {

sched::SchedConfig Config(int cpus) {
  sched::SchedConfig config;
  config.num_cpus = cpus;
  return config;
}

// Spins for roughly `us` microseconds of wall time.
void SpinFor(std::int64_t us) {
  const auto end = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < end) {
  }
}

TEST(ExecutorTest, RunsAllTasksToCompletion) {
  sched::Sfs scheduler(Config(2));
  Executor::Config config;
  config.quantum = Msec(1);  // each ~5 ms task needs several dispatches
  Executor executor(scheduler, config);

  std::atomic<int> completed{0};
  for (sched::ThreadId tid = 1; tid <= 4; ++tid) {
    auto remaining = std::make_shared<std::atomic<int>>(50);
    executor.AddTask(tid, 1.0, [remaining, &completed] {
      SpinFor(100);
      if (remaining->fetch_sub(1) == 1) {
        completed.fetch_add(1);
        return false;
      }
      return true;
    });
  }
  executor.Run(Sec(30));
  EXPECT_EQ(completed.load(), 4);
  EXPECT_GT(executor.dispatches(), 4);
}

TEST(ExecutorTest, CpuTimeAccountedPerTask) {
  sched::Sfs scheduler(Config(1));
  Executor::Config config;
  config.quantum = Msec(5);
  Executor executor(scheduler, config);
  executor.AddTask(1, 1.0, [] {
    SpinFor(100);
    return true;  // runs until the wall limit
  });
  executor.Run(Msec(200));
  // The single task owned the single CPU for ~the whole run.
  EXPECT_GT(executor.CpuTime(1), Msec(100));
}

TEST(ExecutorTest, WallLimitStopsEndlessTasks) {
  sched::Sfs scheduler(Config(2));
  Executor::Config config;
  config.quantum = Msec(5);
  Executor executor(scheduler, config);
  for (sched::ThreadId tid = 1; tid <= 3; ++tid) {
    executor.AddTask(tid, 1.0, [] {
      SpinFor(50);
      return true;
    });
  }
  const Tick wall = executor.Run(Msec(300));
  EXPECT_LT(wall, Sec(5));  // returned promptly after the limit
}

TEST(ExecutorTest, ProportionalSharesRoughlyHold) {
  // Weight 3 vs 1 on one "CPU": the heavy task should get clearly more time.
  // Loose 2x bound — CI schedulers add noise.
  sched::Sfs scheduler(Config(1));
  Executor::Config config;
  config.quantum = Msec(2);
  Executor executor(scheduler, config);
  executor.AddTask(1, 3.0, [] {
    SpinFor(50);
    return true;
  });
  executor.AddTask(2, 1.0, [] {
    SpinFor(50);
    return true;
  });
  executor.Run(Msec(500));
  const double ratio = static_cast<double>(executor.CpuTime(1)) /
                       static_cast<double>(std::max<Tick>(1, executor.CpuTime(2)));
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 6.0);
}

TEST(ExecutorTest, PreemptLatenciesRecorded) {
  sched::Sfs scheduler(Config(1));
  Executor::Config config;
  config.quantum = Msec(2);
  Executor executor(scheduler, config);
  executor.AddTask(1, 1.0, [] {
    SpinFor(20);
    return true;
  });
  executor.AddTask(2, 1.0, [] {
    SpinFor(20);
    return true;
  });
  executor.Run(Msec(300));
  EXPECT_GT(executor.preempt_latencies().count(), 5u);
  // Cooperative yield happens within one work unit (~20 us) plus noise.
  EXPECT_LT(executor.preempt_latencies().Percentile(50), 5000.0);
}

}  // namespace
}  // namespace sfs::exec

#include "src/harness/runner.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/common/rng.h"
#include "src/harness/registry.h"
#include "src/obs/metrics.h"

namespace sfs::harness {
namespace {

// A deterministic seed-sensitive experiment: the JSON it produces must be a
// pure function of --seed.
SFS_EXPERIMENT(run_det, .description = "seed-driven deterministic experiment",
               .schedulers = {"sfs"}) {
  common::Rng rng(reporter.seed());
  std::int64_t sum = 0;
  for (int i = 0; i < 100; ++i) {
    sum += rng.UniformInt(0, 1000);
  }
  reporter.Metric("sum", sum);
  reporter.Metric("seed", static_cast<std::int64_t>(reporter.seed()));
  reporter.out() << "human text, not part of the JSON\n";
}

// A wall-clock experiment: its timing numbers must stay out of the JSON
// unless --timing is given.
SFS_EXPERIMENT(run_timed, .description = "wall-clock experiment",
               .schedulers = {"sfs"}, .repetitions = 2, .warmup = 1,
               .deterministic = false) {
  volatile int sink = 0;
  const double ns = MeasureNsPerOp([&] { sink = sink + 1; },
                                   std::chrono::microseconds(50));
  reporter.Timing("ns_per_op", ns);
  reporter.Metric("ops", std::int64_t{1});
}

// Exercises the histogram reporting surface: a deterministic sim-time
// histogram plus a wall-clock one that must stay timing-gated.
SFS_EXPERIMENT(run_hist, .description = "histogram reporting experiment",
               .schedulers = {"sfs"}) {
  obs::LogHistogram hist(1);
  for (std::int64_t v = 1; v <= 100; ++v) {
    hist.Record(0, v);
  }
  reporter.Histogram("quantum_ticks", hist.Snapshot());
  reporter.TimingHistogram("dispatch_ns", hist.Snapshot());
  // Tracing-capable experiments write a sidecar file here; the path must
  // never reach the JSON document (asserted by TracePathNeverEntersTheJson).
  if (!reporter.trace_path().empty() && reporter.repetition() == 0) {
    reporter.out() << "(would write " << reporter.trace_path() << ")\n";
  }
}

std::string RunToString(const RunOptions& options) {
  std::ostringstream human;
  JsonValue doc = RunExperimentsToJson(options, human);
  std::ostringstream out;
  doc.Write(out);
  out << "\n";
  return out.str();
}

TEST(RunnerTest, SameSeedProducesByteIdenticalJson) {
  RunOptions options;
  options.filter = "run_det";
  options.seed = 12345;
  const std::string a = RunToString(options);
  const std::string b = RunToString(options);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema_version\": 1"), std::string::npos);
}

TEST(RunnerTest, DifferentSeedChangesTheDocument) {
  RunOptions options;
  options.filter = "run_det";
  options.seed = 1;
  const std::string a = RunToString(options);
  options.seed = 2;
  const std::string b = RunToString(options);
  EXPECT_NE(a, b);
}

TEST(RunnerTest, FilterSelectsMatchingExperimentsOnly) {
  RunOptions options;
  options.filter = "run_";
  std::ostringstream human;
  JsonValue doc = RunExperimentsToJson(options, human);
  const JsonValue* experiments = doc.Find("experiments");
  ASSERT_NE(experiments, nullptr);
  EXPECT_EQ(experiments->size(), 3u);

  options.filter = "run_det";
  JsonValue one = RunExperimentsToJson(options, human);
  EXPECT_EQ(one.Find("experiments")->size(), 1u);

  options.filter = "no_match_at_all";
  JsonValue none = RunExperimentsToJson(options, human);
  EXPECT_EQ(none.Find("experiments")->size(), 0u);
}

TEST(RunnerTest, TimingExcludedByDefaultIncludedOnRequest) {
  RunOptions options;
  options.filter = "run_timed";
  const std::string without = RunToString(options);
  EXPECT_EQ(without.find("ns_per_op"), std::string::npos);
  EXPECT_EQ(without.find("wall_ms"), std::string::npos);

  options.timing = true;
  const std::string with = RunToString(options);
  EXPECT_NE(with.find("ns_per_op"), std::string::npos);
  EXPECT_NE(with.find("wall_ms"), std::string::npos);
}

TEST(RunnerTest, RepeatOverrideControlsRunCount) {
  RunOptions options;
  options.filter = "run_det";
  options.repeat = 3;
  std::ostringstream human;
  JsonValue doc = RunExperimentsToJson(options, human);
  const JsonValue* experiments = doc.Find("experiments");
  ASSERT_EQ(experiments->size(), 1u);
  // Reach into experiments[0].runs via serialization (JsonValue has no array
  // accessor by index; count occurrences of the per-run key instead).
  const std::string text = doc.ToString();
  std::size_t count = 0;
  for (std::size_t pos = text.find("\"sum\""); pos != std::string::npos;
       pos = text.find("\"sum\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(RunnerTest, HistogramColumnsAreDeterministicTimingHistogramIsGated) {
  RunOptions options;
  options.filter = "run_hist";
  const std::string without = RunToString(options);
  // Deterministic histogram: present without --timing, full percentile shape.
  EXPECT_NE(without.find("\"quantum_ticks\""), std::string::npos);
  // Values 1..100: the linear region keeps 1..15 exact, above that the
  // log2 buckets quantize to their lower bound (50 -> 48, 99/100 -> 96).
  for (const char* key : {"\"count\": 100", "\"p50\": 48", "\"p99\": 96", "\"p999\": 96",
                          "\"mean\": 50.5", "\"min\": 1", "\"max\": 100"}) {
    EXPECT_NE(without.find(key), std::string::npos) << key;
  }
  // Wall-clock histogram: only under --timing.
  EXPECT_EQ(without.find("dispatch_ns"), std::string::npos);
  options.timing = true;
  const std::string with = RunToString(options);
  EXPECT_NE(with.find("dispatch_ns"), std::string::npos);
  // Same seed, same document — histograms respect the determinism contract.
  // (Only the untimed document is byte-stable: --timing adds wall_ms.)
  options.timing = false;
  EXPECT_EQ(without, RunToString(options));
}

TEST(RunnerTest, TracePathNeverEntersTheJson) {
  RunOptions options;
  options.filter = "run_hist";
  const std::string untraced = RunToString(options);
  options.trace_path = "/tmp/some_trace_file.json";
  const std::string traced = RunToString(options);
  EXPECT_EQ(untraced, traced);
  EXPECT_EQ(traced.find("some_trace_file"), std::string::npos);
}

TEST(RunnerTest, ParseRunOptionsAcceptsBothFlagStyles) {
  RunOptions options;
  std::ostringstream err;
  const char* argv[] = {"sfs_bench", "--filter", "fig6", "--seed=7",
                        "--repeat", "2",        "--json", "out.json",
                        "--timing", "--list",   "--trace=tr.json"};
  ASSERT_TRUE(ParseRunOptions(11, const_cast<char**>(argv), options, err));
  EXPECT_EQ(options.filter, "fig6");
  EXPECT_EQ(options.seed, 7u);
  EXPECT_EQ(options.repeat, 2);
  EXPECT_EQ(options.json_path, "out.json");
  EXPECT_TRUE(options.timing);
  EXPECT_TRUE(options.list);
  EXPECT_EQ(options.trace_path, "tr.json");
}

TEST(RunnerTest, ParseRunOptionsRejectsBadInput) {
  std::ostringstream err;
  {
    RunOptions options;
    const char* argv[] = {"sfs_bench", "--unknown"};
    EXPECT_FALSE(ParseRunOptions(2, const_cast<char**>(argv), options, err));
  }
  {
    RunOptions options;
    const char* argv[] = {"sfs_bench", "--repeat", "zero"};
    EXPECT_FALSE(ParseRunOptions(3, const_cast<char**>(argv), options, err));
  }
  {
    RunOptions options;
    const char* argv[] = {"sfs_bench", "--repeat", "-3"};
    EXPECT_FALSE(ParseRunOptions(3, const_cast<char**>(argv), options, err));
  }
  {
    RunOptions options;
    const char* argv[] = {"sfs_bench", "--filter"};
    EXPECT_FALSE(ParseRunOptions(2, const_cast<char**>(argv), options, err));
  }
}

TEST(RunnerTest, DocumentCarriesSpecMetadata) {
  RunOptions options;
  options.filter = "run_timed";
  const std::string text = RunToString(options);
  EXPECT_NE(text.find("\"warmup\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"repetitions\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"deterministic\": false"), std::string::npos);
}

}  // namespace
}  // namespace sfs::harness

#include "src/harness/json_writer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sfs::harness {
namespace {

TEST(JsonWriterTest, ScalarSerialization) {
  EXPECT_EQ(JsonValue().ToString(), "null");
  EXPECT_EQ(JsonValue(true).ToString(), "true");
  EXPECT_EQ(JsonValue(false).ToString(), "false");
  EXPECT_EQ(JsonValue(std::int64_t{-42}).ToString(), "-42");
  EXPECT_EQ(JsonValue("hi").ToString(), "\"hi\"");
}

TEST(JsonWriterTest, DoubleShortestRoundTrip) {
  EXPECT_EQ(JsonValue(0.25).ToString(), "0.25");
  EXPECT_EQ(JsonValue(1e100).ToString(), "1e+100");
  // 0.1 has no exact double; shortest round-trip form is "0.1".
  EXPECT_EQ(JsonValue(0.1).ToString(), "0.1");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).ToString(), "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).ToString(), "null");
}

TEST(JsonWriterTest, StringEscaping) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").ToString(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonValue(std::string("\x01", 1)).ToString(), "\"\\u0001\"");
}

TEST(JsonWriterTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue(1));
  obj.Set("apple", JsonValue(2));
  obj.Set("mango", JsonValue(3));
  EXPECT_EQ(obj.ToString(),
            "{\n  \"zebra\": 1,\n  \"apple\": 2,\n  \"mango\": 3\n}");
}

TEST(JsonWriterTest, ReplacedKeyKeepsPosition) {
  JsonValue obj = JsonValue::Object();
  obj.Set("first", JsonValue(1));
  obj.Set("second", JsonValue(2));
  obj.Set("first", JsonValue(10));
  EXPECT_EQ(obj.ToString(), "{\n  \"first\": 10,\n  \"second\": 2\n}");
}

TEST(JsonWriterTest, NestedStructure) {
  JsonValue doc = JsonValue::Object();
  doc.Set("empty_obj", JsonValue::Object());
  doc.Set("empty_arr", JsonValue::Array());
  JsonValue arr = JsonValue::Array();
  arr.Push(JsonValue(1));
  arr.Push(JsonValue("two"));
  doc.Set("arr", std::move(arr));
  EXPECT_EQ(doc.ToString(),
            "{\n"
            "  \"empty_obj\": {},\n"
            "  \"empty_arr\": [],\n"
            "  \"arr\": [\n"
            "    1,\n"
            "    \"two\"\n"
            "  ]\n"
            "}");
}

TEST(JsonWriterTest, FindAndHas) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue(7));
  EXPECT_TRUE(obj.Has("k"));
  EXPECT_FALSE(obj.Has("missing"));
  ASSERT_NE(obj.Find("k"), nullptr);
  EXPECT_EQ(obj.Find("k")->ToString(), "7");
}

TEST(JsonWriterTest, SerializationIsDeterministic) {
  const auto build = [] {
    JsonValue doc = JsonValue::Object();
    doc.Set("b", JsonValue(0.30000000000000004));
    doc.Set("a", JsonValue(std::int64_t{123456789}));
    JsonValue runs = JsonValue::Array();
    for (int i = 0; i < 3; ++i) {
      JsonValue run = JsonValue::Object();
      run.Set("i", JsonValue(std::int64_t{i}));
      run.Set("x", JsonValue(1.0 / (i + 3)));
      runs.Push(std::move(run));
    }
    doc.Set("runs", std::move(runs));
    return doc.ToString();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace sfs::harness

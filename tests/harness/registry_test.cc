#include "src/harness/registry.h"

#include <gtest/gtest.h>

#include "src/harness/runner.h"

namespace sfs::harness {
namespace {

// Experiments registered via the macro, exactly as bench/*.cc does.
SFS_EXPERIMENT(reg_alpha, .description = "first test experiment",
               .schedulers = {"sfs"}) {
  reporter.Metric("value", std::int64_t{1});
}

SFS_EXPERIMENT(reg_beta, .description = "second test experiment",
               .schedulers = {"sfs", "sfq"}, .repetitions = 3) {
  reporter.Metric("value", std::int64_t{2});
}

SFS_EXPERIMENT(other_gamma, .description = "third test experiment") {
  reporter.Metric("value", std::int64_t{3});
}

TEST(RegistryTest, FindLocatesRegisteredExperiments) {
  const Experiment* e = Registry::Instance().Find("reg_alpha");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->spec.name, "reg_alpha");
  EXPECT_EQ(e->spec.description, "first test experiment");
  ASSERT_EQ(e->spec.schedulers.size(), 1u);
  EXPECT_EQ(e->spec.schedulers[0], "sfs");
  EXPECT_EQ(e->spec.repetitions, 1);
  EXPECT_TRUE(e->spec.deterministic);
}

TEST(RegistryTest, SpecFieldsCarryThrough) {
  const Experiment* e = Registry::Instance().Find("reg_beta");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->spec.repetitions, 3);
  ASSERT_EQ(e->spec.schedulers.size(), 2u);
  EXPECT_EQ(e->spec.schedulers[1], "sfq");
}

TEST(RegistryTest, FindReturnsNullForUnknownName) {
  EXPECT_EQ(Registry::Instance().Find("no_such_experiment"), nullptr);
}

TEST(RegistryTest, MatchFiltersBySubstring) {
  const auto matches = Registry::Instance().Match("reg_");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0]->spec.name, "reg_alpha");
  EXPECT_EQ(matches[1]->spec.name, "reg_beta");
}

TEST(RegistryTest, MatchEmptyFilterReturnsAllSorted) {
  const auto all = Registry::Instance().Match("");
  ASSERT_GE(all.size(), 3u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->spec.name, all[i]->spec.name);
  }
}

TEST(RegistryTest, MatchUnknownSubstringIsEmpty) {
  EXPECT_TRUE(Registry::Instance().Match("zzz_nothing").empty());
}

TEST(RegistryTest, ExperimentBodyRunsThroughReporter) {
  const Experiment* e = Registry::Instance().Find("other_gamma");
  ASSERT_NE(e, nullptr);
  std::ostringstream human;
  Reporter reporter(human, /*seed=*/1, /*repetition=*/0, /*timing_enabled=*/false);
  e->fn(reporter);
  JsonValue result = reporter.TakeResult();
  ASSERT_NE(result.Find("value"), nullptr);
  EXPECT_EQ(result.Find("value")->ToString(), "3");
}

}  // namespace
}  // namespace sfs::harness

#include "src/obs/trace_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/obs/trace.h"

namespace sfs::obs {
namespace {

TraceRecord MakeRecord(std::int64_t ts, std::int32_t tid = 7,
                       TraceEventKind kind = TraceEventKind::kGrant) {
  TraceRecord r;
  r.ts = ts;
  r.arg = ts * 10;
  r.tid = tid;
  r.kind = kind;
  return r;
}

TEST(TraceRingTest, RecordIsPacked) {
  static_assert(sizeof(TraceRecord) == 24);
  EXPECT_EQ(sizeof(TraceRecord), 24u);
}

TEST(TraceRingTest, AppendBelowCapacityKeepsEverythingInOrder) {
  TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 0u);
  for (std::int64_t i = 0; i < 5; ++i) {
    ring.Append(MakeRecord(i));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.appended(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ring.at(i).ts, static_cast<std::int64_t>(i));
    EXPECT_EQ(ring.at(i).arg, static_cast<std::int64_t>(i) * 10);
  }
}

TEST(TraceRingTest, WraparoundKeepsNewestWindowAndCountsDrops) {
  TraceRing ring(4);
  for (std::int64_t i = 0; i < 10; ++i) {
    ring.Append(MakeRecord(i));
  }
  // ftrace policy: the newest window survives, oldest records are the loss.
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.appended(), 10u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.at(i).ts, static_cast<std::int64_t>(6 + i));
  }
}

TEST(TraceRingTest, ExactlyFullRingDropsNothing) {
  TraceRing ring(4);
  for (std::int64_t i = 0; i < 4; ++i) {
    ring.Append(MakeRecord(i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.at(0).ts, 0);
  EXPECT_EQ(ring.at(3).ts, 3);
}

TEST(TraceRingTest, ForEachVisitsOldestFirst) {
  TraceRing ring(3);
  for (std::int64_t i = 0; i < 7; ++i) {
    ring.Append(MakeRecord(i));
  }
  std::vector<std::int64_t> seen;
  ring.ForEach([&](const TraceRecord& r) { seen.push_back(r.ts); });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{4, 5, 6}));
}

TEST(TraceRingTest, ClearResetsSizeAndDrops) {
  TraceRing ring(2);
  ring.Append(MakeRecord(1));
  ring.Append(MakeRecord(2));
  ring.Append(MakeRecord(3));
  EXPECT_EQ(ring.dropped(), 1u);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  ring.Append(MakeRecord(9));
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.at(0).ts, 9);
}

TEST(TraceTest, RecordsRouteToTheOwningRing) {
  Trace trace(/*num_cpus=*/3, /*capacity_per_ring=*/16);
  trace.Record(0, TraceEventKind::kGrant, 100, 1, 5);
  trace.Record(2, TraceEventKind::kRun, 200, 2, 50);
  trace.Record(2, TraceEventKind::kSteal, 250, 2, 1);
  trace.RecordLifecycle(TraceEventKind::kArrival, 0, 1);

  EXPECT_EQ(trace.ring(0).size(), 1u);
  EXPECT_EQ(trace.ring(1).size(), 0u);
  EXPECT_EQ(trace.ring(2).size(), 2u);
  EXPECT_EQ(trace.lifecycle_ring().size(), 1u);
  EXPECT_EQ(trace.total_records(), 4u);
  EXPECT_EQ(trace.total_dropped(), 0u);

  // The lifecycle pseudo-track carries cpu == num_cpus.
  EXPECT_EQ(trace.lifecycle_ring().at(0).cpu, 3);
  EXPECT_EQ(trace.ring(2).at(0).kind, TraceEventKind::kRun);
  EXPECT_EQ(trace.ring(2).at(1).kind, TraceEventKind::kSteal);
}

TEST(TraceTest, ForEachRecordVisitsCpuRingsThenLifecycle) {
  Trace trace(/*num_cpus=*/2, /*capacity_per_ring=*/4);
  trace.Record(1, TraceEventKind::kGrant, 10, 1);
  trace.Record(0, TraceEventKind::kGrant, 20, 2);
  trace.RecordLifecycle(TraceEventKind::kDeparture, 30, 1);
  std::vector<int> cpus;
  trace.ForEachRecord([&](const TraceRecord& r) { cpus.push_back(r.cpu); });
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2}));
}

TEST(TraceTest, NowHintRoundTrips) {
  Trace trace(1);
  EXPECT_EQ(trace.now_hint(), 0);
  trace.PublishNow(12345);
  EXPECT_EQ(trace.now_hint(), 12345);
}

TEST(TraceTest, ThreadNamesAndClockAndEpoch) {
  Trace trace(1, 8, Trace::Clock::kWallNanos);
  EXPECT_EQ(trace.clock(), Trace::Clock::kWallNanos);
  trace.SetThreadName(42, "hog T42");
  ASSERT_EQ(trace.thread_names().count(42), 1u);
  EXPECT_EQ(trace.thread_names().at(42), "hog T42");
  trace.set_epoch_ns(999);
  EXPECT_EQ(trace.epoch_ns(), 999);
}

}  // namespace
}  // namespace sfs::obs

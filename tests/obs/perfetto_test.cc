#include "src/obs/perfetto.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/obs/trace.h"

namespace sfs::obs {
namespace {

std::size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// Fills a two-CPU trace with one migration (T1 runs on cpu0 then cpu1), a
// steal, a preemption and lifecycle events.  Trace is pinned in memory
// (single-writer rings), so the caller owns the storage.
void FillTrace(Trace& trace) {
  trace.SetThreadName(1, "hog T1");
  trace.RecordLifecycle(TraceEventKind::kArrival, 0, 1);
  trace.RecordLifecycle(TraceEventKind::kArrival, 0, 2);
  trace.Record(0, TraceEventKind::kRun, 100, 1, 50);
  trace.Record(0, TraceEventKind::kPreempt, 150, 1, 2);
  trace.Record(1, TraceEventKind::kSteal, 180, 1, 0);
  trace.Record(1, TraceEventKind::kRun, 200, 1, 40);
  trace.Record(1, TraceEventKind::kRun, 240, 2, 10);
  trace.RecordLifecycle(TraceEventKind::kBlock, 250, 2, 3000);
  trace.RecordLifecycle(TraceEventKind::kWakeup, 260, 2);
  trace.RecordLifecycle(TraceEventKind::kDeparture, 300, 1);
}

std::string Export(const Trace& trace, const PerfettoOptions& options = {}) {
  std::ostringstream out;
  PerfettoExporter::Write(trace, out, options);
  return out.str();
}

std::string ExportFilled(const PerfettoOptions& options = {}) {
  Trace trace(/*num_cpus=*/2, /*capacity_per_ring=*/64);
  FillTrace(trace);
  return Export(trace, options);
}

TEST(PerfettoTest, DocumentShape) {
  const std::string json = ExportFilled();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);  // starts the array
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Braces balance (cheap structural sanity; CI runs a real json.load).
  EXPECT_EQ(CountOccurrences(json, "{"), CountOccurrences(json, "}"));
  EXPECT_EQ(CountOccurrences(json, "["), CountOccurrences(json, "]"));
}

TEST(PerfettoTest, EmitsOneTrackPerCpuPlusLifecycle) {
  const std::string json = ExportFilled();
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"args\":{\"name\":\"cpu0\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"args\":{\"name\":\"cpu1\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"args\":{\"name\":\"lifecycle\"}"),
            std::string::npos);
}

TEST(PerfettoTest, RunIntervalsBecomeCompleteSlicesWithThreadNames) {
  const std::string json = ExportFilled();
  // T1 carries its registered label, T2 the fallback label.
  EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":100,\"dur\":50,"
                      "\"name\":\"hog T1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"T2\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 3u);
}

TEST(PerfettoTest, StealsAndPreemptionsAreInstantEvents) {
  const std::string json = ExportFilled();
  EXPECT_NE(json.find("\"name\":\"steal hog T1\""), std::string::npos);
  EXPECT_NE(json.find("\"from_cpu\":0"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"preempt hog T1\""), std::string::npos);
  EXPECT_NE(json.find("\"by_tid\":2"), std::string::npos);
}

TEST(PerfettoTest, LifecycleEventsLandOnTheLifecycleTrack) {
  const std::string json = ExportFilled();
  EXPECT_NE(json.find("\"tid\":2,\"ts\":0,\"s\":\"t\",\"name\":\"arrival hog T1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"block T2\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wakeup T2\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"departure hog T1\""), std::string::npos);
}

TEST(PerfettoTest, MigrationsGetFlowArrows) {
  const std::string json = ExportFilled();
  // T1 ran cpu0 [100,150] then cpu1 [200,240]: arrow from 150@cpu0 to 200@cpu1.
  EXPECT_NE(json.find("\"ph\":\"s\",\"pid\":1,\"tid\":0,\"ts\":150"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"pid\":1,\"tid\":1,\"ts\":200,\"bp\":\"e\""),
            std::string::npos);

  PerfettoOptions no_flows;
  no_flows.flow_arrows = false;
  const std::string plain = ExportFilled(no_flows);
  EXPECT_EQ(plain.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(plain.find("\"ph\":\"f\""), std::string::npos);
}

TEST(PerfettoTest, WallClockTimestampsScaleToMicroseconds) {
  Trace trace(1, 16, Trace::Clock::kWallNanos);
  trace.Record(0, TraceEventKind::kRun, 2'000'000, 1, 1'000'000);  // 2 ms, 1 ms
  const std::string json = Export(trace);
  EXPECT_NE(json.find("\"ts\":2000,\"dur\":1000"), std::string::npos);
}

TEST(PerfettoTest, EscapesControlAndQuoteCharactersInNames) {
  Trace trace(1, 16);
  trace.SetThreadName(1, "odd \"name\"\n");
  trace.Record(0, TraceEventKind::kRun, 10, 1, 5);
  const std::string json = Export(trace);
  EXPECT_NE(json.find("odd \\\"name\\\"\\n"), std::string::npos);
}

}  // namespace
}  // namespace sfs::obs

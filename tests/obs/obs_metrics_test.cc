#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace sfs::obs {
namespace {

TEST(LogHistogramTest, LinearRegionBucketsAreExact) {
  for (std::int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LogHistogram::BucketIndex(v), static_cast<std::size_t>(v)) << v;
    EXPECT_EQ(LogHistogram::BucketLowerBound(static_cast<std::size_t>(v)), v) << v;
  }
}

TEST(LogHistogramTest, NegativeValuesClampToBucketZero) {
  EXPECT_EQ(LogHistogram::BucketIndex(-1), 0u);
  EXPECT_EQ(LogHistogram::BucketIndex(std::numeric_limits<std::int64_t>::min()), 0u);
}

TEST(LogHistogramTest, BucketBoundariesAtPowersOfTwo) {
  // 16 opens the first logarithmic octave; each octave splits into 8.
  EXPECT_EQ(LogHistogram::BucketIndex(15), 15u);
  EXPECT_EQ(LogHistogram::BucketIndex(16), 16u);
  EXPECT_EQ(LogHistogram::BucketIndex(17), 16u);  // sub-bucket width 2 here
  EXPECT_EQ(LogHistogram::BucketIndex(18), 17u);
  EXPECT_EQ(LogHistogram::BucketIndex(31), 23u);
  EXPECT_EQ(LogHistogram::BucketIndex(32), 24u);
  EXPECT_EQ(LogHistogram::BucketLowerBound(16), 16);
  EXPECT_EQ(LogHistogram::BucketLowerBound(17), 18);
  EXPECT_EQ(LogHistogram::BucketLowerBound(24), 32);
}

TEST(LogHistogramTest, LowerBoundInvertsBucketIndexWithBoundedError) {
  // For every probed value: the bucket's lower bound is <= v, and the
  // quantization error is below 2^-kSubBits (12.5%).
  for (std::int64_t v : {1LL, 15LL, 16LL, 100LL, 1000LL, 4095LL, 4096LL, 123456789LL,
                         (1LL << 40) + 12345, (1LL << 62) - 1}) {
    const std::size_t index = LogHistogram::BucketIndex(v);
    const std::int64_t lo = LogHistogram::BucketLowerBound(index);
    ASSERT_LE(lo, v) << v;
    EXPECT_LT(static_cast<double>(v - lo),
              static_cast<double>(v) / 8.0 + 1.0)
        << v;
    // Monotonicity across the boundary: the next bucket starts above v.
    if (index + 1 < LogHistogram::kNumBuckets) {
      EXPECT_GT(LogHistogram::BucketLowerBound(index + 1), v) << v;
    }
  }
}

TEST(LogHistogramTest, SnapshotAggregatesCountSumMinMaxMean) {
  LogHistogram hist(1);
  for (const std::int64_t v : {5, 10, 15}) {
    hist.Record(0, v);
  }
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), 3u);
  EXPECT_EQ(snap.sum(), 30);
  EXPECT_DOUBLE_EQ(snap.mean(), 10.0);
  EXPECT_DOUBLE_EQ(snap.min(), 5.0);
  EXPECT_DOUBLE_EQ(snap.max(), 15.0);
}

TEST(LogHistogramTest, EmptySnapshotIsAllZeros) {
  LogHistogram hist(2);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.min(), 0.0);
  EXPECT_DOUBLE_EQ(snap.max(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 0.0);
}

TEST(LogHistogramTest, PercentilesAreExactInTheLinearRegion) {
  LogHistogram hist(1);
  for (std::int64_t v = 1; v <= 10; ++v) {
    hist.Record(0, v);
  }
  const HistogramSnapshot snap = hist.Snapshot();
  // Nearest-rank: p50 of 1..10 selects the 5th sample.
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(10), 1.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0), 1.0);
}

TEST(LogHistogramTest, MergesAcrossShards) {
  LogHistogram hist(4);
  for (int shard = 0; shard < 4; ++shard) {
    for (int i = 0; i < 10; ++i) {
      hist.Record(shard, shard + 1);
    }
  }
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), 40u);
  EXPECT_DOUBLE_EQ(snap.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.max(), 4.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 2.5);
}

TEST(LogHistogramTest, ConcurrentShardedRecordingIsTornFree) {
  // One writer thread per shard, concurrent snapshots from the main thread —
  // the executor's exact usage.  Run under TSan this is the data-race proof
  // for the lock-free recording path.
  constexpr int kShards = 4;
  constexpr int kPerShard = 20000;
  LogHistogram hist(kShards);
  std::vector<std::thread> writers;
  writers.reserve(kShards);
  for (int shard = 0; shard < kShards; ++shard) {
    writers.emplace_back([&hist, shard] {
      for (int i = 0; i < kPerShard; ++i) {
        hist.Record(shard, i % 1000);
      }
    });
  }
  // Concurrent reads must be torn-free (any count in [0, total] is fine).
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot snap = hist.Snapshot();
    EXPECT_LE(snap.count(), static_cast<std::uint64_t>(kShards) * kPerShard);
  }
  for (auto& w : writers) {
    w.join();
  }
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), static_cast<std::uint64_t>(kShards) * kPerShard);
  EXPECT_DOUBLE_EQ(snap.min(), 0.0);
  EXPECT_DOUBLE_EQ(snap.max(), 999.0);
}

TEST(CounterTest, SumsAcrossShards) {
  Counter counter(3);
  counter.Add(0, 5);
  counter.Add(1);
  counter.Add(2, 10);
  EXPECT_EQ(counter.value(), 16);
}

TEST(MetricsRegistryTest, RegisterOnFirstUseReturnsStableReferences) {
  MetricsRegistry registry(2);
  Counter& c1 = registry.GetCounter("dispatches");
  Counter& c2 = registry.GetCounter("dispatches");
  EXPECT_EQ(&c1, &c2);
  LogHistogram& h1 = registry.GetHistogram("latency");
  LogHistogram& h2 = registry.GetHistogram("latency");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.num_shards(), 2);
  c1.Add(0, 3);
  EXPECT_EQ(c2.value(), 3);
}

TEST(MetricsRegistryTest, IteratesInRegistrationOrder) {
  MetricsRegistry registry(1);
  registry.GetHistogram("b");
  registry.GetHistogram("a");
  registry.GetHistogram("c");
  std::vector<std::string> names;
  registry.ForEachHistogram(
      [&](const std::string& name, const LogHistogram&) { names.push_back(name); });
  EXPECT_EQ(names, (std::vector<std::string>{"b", "a", "c"}));
}

}  // namespace
}  // namespace sfs::obs

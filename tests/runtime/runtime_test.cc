// sfs::runtime tests: targeted parking/mailbox wake path, broadcast A/B mode,
// pinning, and the wake-latency instrumentation.  The mailbox-stress cases
// double as the TSan coverage of the wake path (CI runs this suite under
// ThreadSanitizer).

#include "src/runtime/executor.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "src/runtime/affinity.h"
#include "src/sched/sfs.h"
#include "src/sched/sharded.h"

namespace sfs::runtime {
namespace {

using WakeMode = Executor::WakeMode;

sched::SchedConfig Config(int cpus) {
  sched::SchedConfig config;
  config.num_cpus = cpus;
  return config;
}

void SpinFor(Tick us) {
  const auto end = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < end) {
  }
}

struct RunStats {
  std::int64_t wakeups = 0;
  std::int64_t kicks = 0;
  std::uint64_t wake_applies = 0;
  std::uint64_t wake_dispatches = 0;
  Tick elapsed = 0;
};

// Blocking mix on sharded SFS: spinners keep shards busy while blockers
// exercise the wake path end to end.
RunStats RunBlockingMix(const Executor::Config& exec_config, int cpus) {
  sched::Sharded<sched::Sfs> scheduler(Config(cpus));
  Executor executor(scheduler, exec_config);
  for (sched::ThreadId tid = 0; tid < 2; ++tid) {
    auto units = std::make_shared<std::atomic<int>>(60);
    executor.AddTask(tid, 1.0 + tid, [units] {
      SpinFor(40);
      return units->fetch_sub(1) > 1;
    });
  }
  for (sched::ThreadId tid = 2; tid < 6; ++tid) {
    auto rounds = std::make_shared<std::atomic<int>>(8);
    executor.AddTask(tid, 2.0, [rounds, tid]() -> Executor::WorkResult {
      SpinFor(60);
      if (rounds->fetch_sub(1) <= 1) {
        return Executor::WorkResult::Done();
      }
      return Executor::WorkResult::Block(Usec(200) * (1 + tid % 3));
    });
  }
  RunStats stats;
  stats.elapsed = executor.Run(Sec(5));
  stats.wakeups = executor.wakeups();
  stats.kicks = executor.kicks();
  stats.wake_applies = executor.wake_apply_latencies().count();
  stats.wake_dispatches = executor.wake_to_dispatch_latencies().count();
  for (sched::ThreadId tid = 0; tid < 6; ++tid) {
    EXPECT_GT(executor.CpuTime(tid), 0) << "tid " << tid;
  }
  return stats;
}

TEST(RuntimeTest, TargetedWakePathCompletesAndInstruments) {
  Executor::Config config;
  config.quantum = Msec(2);
  config.wake_mode = WakeMode::kTargeted;
  const RunStats stats = RunBlockingMix(config, 4);
  // 4 blockers x 7 blocking rounds, each applied through a mailbox drain.
  EXPECT_GE(stats.wakeups, 4);
  EXPECT_EQ(stats.wake_applies, static_cast<std::uint64_t>(stats.wakeups));
  // Every wakeup was eventually granted (tasks all ran to completion), so the
  // wake-to-dispatch histogram sampled each one exactly once.
  EXPECT_EQ(stats.wake_dispatches, static_cast<std::uint64_t>(stats.wakeups));
  EXPECT_GT(stats.kicks, 0);
  EXPECT_LT(stats.elapsed, Sec(5));  // finished, not wall-limited
}

TEST(RuntimeTest, BroadcastModeStillWorks) {
  Executor::Config config;
  config.quantum = Msec(2);
  config.wake_mode = WakeMode::kBroadcast;
  const RunStats stats = RunBlockingMix(config, 4);
  EXPECT_GE(stats.wakeups, 4);
  EXPECT_EQ(stats.wake_applies, static_cast<std::uint64_t>(stats.wakeups));
  EXPECT_EQ(stats.wake_dispatches, static_cast<std::uint64_t>(stats.wakeups));
  // Broadcast kicks only ever go through KickAllParked: whole-herd multiples.
  EXPECT_EQ(stats.kicks % 4, 0);
  EXPECT_LT(stats.elapsed, Sec(5));
}

TEST(RuntimeTest, CondVarParkingBackendWorks) {
  Executor::Config config;
  config.quantum = Msec(2);
  config.park_backend = common::ParkingSlot::Backend::kCondVar;
  const RunStats stats = RunBlockingMix(config, 2);
  EXPECT_GE(stats.wakeups, 4);
}

TEST(RuntimeTest, PinnedDispatchersComplete) {
  Executor::Config config;
  config.quantum = Msec(2);
  config.pin_dispatchers = true;
  const RunStats stats = RunBlockingMix(config, 2);
  EXPECT_GE(stats.wakeups, 4);
  EXPECT_GT(HardwareCores(), 0);
}

// Work conservation through the targeted single-kick path: one blocked thread
// on an otherwise idle machine must be re-dispatched promptly after its wake
// deadline, with every dispatcher parked (the kick, not the idle-recheck
// backstop, must deliver it — the generous bound still catches a lost kick).
TEST(RuntimeTest, TargetedKickRedispatchesParkedCpus) {
  sched::Sharded<sched::Sfs> scheduler(Config(4));
  Executor::Config config;
  config.quantum = Msec(5);
  config.idle_recheck = Msec(500);  // so only a kick can wake a parked CPU fast
  Executor executor(scheduler, config);
  std::atomic<int> rounds{5};
  executor.AddTask(7, 1.0, [&rounds]() -> Executor::WorkResult {
    SpinFor(30);
    if (rounds.fetch_sub(1) <= 1) {
      return Executor::WorkResult::Done();
    }
    return Executor::WorkResult::Block(Msec(1));
  });
  const auto start = std::chrono::steady_clock::now();
  executor.Run(Sec(10));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // 4 blocks x 1ms sleep + work; anywhere near 500ms means a wakeup waited
  // for the idle-recheck backstop instead of the targeted kick.
  EXPECT_LT(elapsed, std::chrono::milliseconds(400));
  EXPECT_EQ(executor.wakeups(), 4);
}

// Mailbox wake-path stress for TSan: many short blockers hammering the timer
// -> mailbox -> drain -> grant pipeline across shards, concurrently with
// spinners being preempted.
TEST(RuntimeTest, MailboxWakeStress) {
  sched::Sharded<sched::Sfs> scheduler(Config(4));
  Executor::Config config;
  config.quantum = Msec(1);
  Executor executor(scheduler, config);
  for (sched::ThreadId tid = 0; tid < 12; ++tid) {
    auto rounds = std::make_shared<std::atomic<int>>(20);
    executor.AddTask(tid, 1.0 + (tid % 3), [rounds, tid]() -> Executor::WorkResult {
      SpinFor(20);
      if (rounds->fetch_sub(1) <= 1) {
        return Executor::WorkResult::Done();
      }
      if (tid % 2 == 0) {
        return Executor::WorkResult::Block(Usec(100) * (1 + tid % 4));
      }
      return Executor::WorkResult::Continue();
    });
  }
  const Tick elapsed = executor.Run(Sec(10));
  EXPECT_LT(elapsed, Sec(10));
  EXPECT_GT(executor.wakeups(), 0);
  for (sched::ThreadId tid = 0; tid < 12; ++tid) {
    EXPECT_GT(executor.CpuTime(tid), 0) << "tid " << tid;
  }
}

}  // namespace
}  // namespace sfs::runtime

// Unit tests for the table/CSV emitter.

#include "src/common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sfs::common {
namespace {

TEST(TableTest, CellFormatting) {
  EXPECT_EQ(Table::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Cell(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::Cell(static_cast<std::int64_t>(-42)), "-42");
  EXPECT_EQ(Table::Cell(static_cast<std::size_t>(7)), "7");
}

TEST(TableTest, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"x", "y"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TableTest, RowCountTracks) {
  Table t({"c"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"v"});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace sfs::common

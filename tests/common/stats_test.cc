// Unit tests for the statistics accumulators.

#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace sfs::common {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SampleSetTest, PercentileNearestRank) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1), 1.0);
}

TEST(SampleSetTest, UnorderedInsertionStillSorts) {
  SampleSet s;
  s.Add(3.0);
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet s;
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSetTest, EmptyReturnsZeros) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 0.0);
}

TEST(HistogramTest, BucketsAndBounds) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bucket 0
  h.Add(9.9);   // bucket 4
  h.Add(5.0);   // bucket 2
  h.Add(-1.0);  // underflow
  h.Add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2), 6.0);
}

}  // namespace
}  // namespace sfs::common

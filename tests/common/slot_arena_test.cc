#include "src/common/slot_arena.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace sfs::common {
namespace {

TEST(SlotArenaTest, EmplaceAssignsDenseIdsInOrder) {
  SlotArena<int> arena;
  EXPECT_TRUE(arena.empty());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(arena.Emplace(i * 7), static_cast<SlotArena<int>::SlotId>(i));
  }
  EXPECT_EQ(arena.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(arena[i], static_cast<int>(i) * 7);
  }
}

TEST(SlotArenaTest, ReferencesSurviveGrowth) {
  SlotArena<std::string> arena;
  std::string& first = arena[arena.Emplace("zero")];
  std::vector<const std::string*> ptrs = {&first};
  // Push well past several chunk boundaries; earlier references must not move.
  for (int i = 1; i < 5000; ++i) {
    ptrs.push_back(&arena[arena.Emplace(std::to_string(i))]);
  }
  EXPECT_EQ(first, "zero");
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(&arena[static_cast<SlotArena<std::string>::SlotId>(i)], ptrs[i]);
  }
}

TEST(SlotArenaTest, ForEachVisitsInsertionOrder) {
  SlotArena<int> arena;
  for (int i = 0; i < 300; ++i) {
    arena.Emplace(i);
  }
  int expected = 0;
  arena.ForEach([&expected](const int& v) { EXPECT_EQ(v, expected++); });
  EXPECT_EQ(expected, 300);
}

TEST(SlotArenaTest, MoveOnlyElements) {
  SlotArena<std::unique_ptr<int>> arena;
  const auto slot = arena.Emplace(std::make_unique<int>(17));
  EXPECT_EQ(*arena[slot], 17);
  *arena[slot] = 18;
  EXPECT_EQ(*arena[slot], 18);
}

TEST(SlotArenaTest, DestructorRunsForAllElements) {
  struct Counted {
    explicit Counted(int* live) : live(live) { ++*live; }
    ~Counted() { --*live; }
    int* live;
  };
  int live = 0;
  {
    SlotArena<Counted> arena;
    for (int i = 0; i < 700; ++i) {
      arena.Emplace(&live);
    }
    EXPECT_EQ(live, 700);
  }
  EXPECT_EQ(live, 0);
}

TEST(SlotArenaTest, ReserveIsAnAllocationHintOnly) {
  SlotArena<int> arena;
  arena.Reserve(10'000);
  EXPECT_TRUE(arena.empty());
  for (int i = 0; i < 12'000; ++i) {  // growth past the reservation still works
    arena.Emplace(i);
  }
  EXPECT_EQ(arena.size(), 12'000u);
  EXPECT_EQ(arena[11'999], 11'999);
}

}  // namespace
}  // namespace sfs::common

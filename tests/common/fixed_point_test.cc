// Unit tests for the kernel-style fixed-point arithmetic (Section 3.2).

#include "src/common/fixed_point.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace sfs::common {
namespace {

TEST(Pow10Test, Values) {
  EXPECT_EQ(Pow10(0), 1);
  EXPECT_EQ(Pow10(1), 10);
  EXPECT_EQ(Pow10(4), 10000);
  EXPECT_EQ(Pow10(9), 1000000000);
}

TEST(ScaledDivTest, ExactDivision) {
  EXPECT_EQ(ScaledDiv(10, 100, 5), 200);
  EXPECT_EQ(ScaledDiv(1, 10000, 1), 10000);
}

TEST(ScaledDivTest, RoundsToNearest) {
  // 1 * 10 / 3 = 3.33 -> 3;  2 * 10 / 3 = 6.67 -> 7.
  EXPECT_EQ(ScaledDiv(1, 10, 3), 3);
  EXPECT_EQ(ScaledDiv(2, 10, 3), 7);
}

TEST(ScaledDivTest, NegativeNumerator) {
  EXPECT_EQ(ScaledDiv(-1, 10, 3), -3);
  EXPECT_EQ(ScaledDiv(-2, 10, 3), -7);
}

TEST(ScaledDivTest, LargeIntermediateUses128Bits) {
  // num * scale would overflow int64 without the widening.
  const std::int64_t num = 4'000'000'000'000LL;
  const std::int64_t scale = 1'000'000;
  EXPECT_EQ(ScaledDiv(num, scale, 2), num * (scale / 2));
}

TEST(FixedPointTest, IntRoundTrip) {
  const auto x = Fixed4::FromInt(42);
  EXPECT_EQ(x.ToInt(), 42);
  EXPECT_DOUBLE_EQ(x.ToDouble(), 42.0);
  EXPECT_EQ(x.raw(), 420000);
}

TEST(FixedPointTest, FromDoubleQuantizes) {
  const auto x = Fixed4::FromDouble(1.00005);
  // Rounds to nearest 1e-4: either 1.0000 or 1.0001 depending on binary repr.
  EXPECT_NEAR(x.ToDouble(), 1.0001, 1e-4);
}

TEST(FixedPointTest, FromRatioMatchesPaperUpdate) {
  // F = S + q/w with q = 200 (ms) and w = 3, scaling 1e4: 666667 raw.
  const auto incr = Fixed4::FromRatio(200, 3);
  EXPECT_EQ(incr.raw(), 666667);
  EXPECT_NEAR(incr.ToDouble(), 66.6667, 1e-4);
}

TEST(FixedPointTest, AdditionSubtraction) {
  const auto a = Fixed4::FromDouble(1.5);
  const auto b = Fixed4::FromDouble(0.25);
  EXPECT_DOUBLE_EQ((a + b).ToDouble(), 1.75);
  EXPECT_DOUBLE_EQ((a - b).ToDouble(), 1.25);
  EXPECT_DOUBLE_EQ((-b).ToDouble(), -0.25);
}

TEST(FixedPointTest, CompoundAssignment) {
  auto a = Fixed4::FromInt(1);
  a += Fixed4::FromInt(2);
  EXPECT_EQ(a.ToInt(), 3);
  a -= Fixed4::FromInt(1);
  EXPECT_EQ(a.ToInt(), 2);
}

TEST(FixedPointTest, MultiplicationExactness) {
  const auto a = Fixed4::FromDouble(2.5);
  const auto b = Fixed4::FromDouble(4.0);
  EXPECT_DOUBLE_EQ((a * b).ToDouble(), 10.0);
}

TEST(FixedPointTest, DivisionRounding) {
  const auto a = Fixed4::FromInt(1);
  const auto b = Fixed4::FromInt(3);
  EXPECT_NEAR((a / b).ToDouble(), 0.3333, 1e-4);
}

TEST(FixedPointTest, ComparisonOperators) {
  const auto a = Fixed4::FromDouble(1.0);
  const auto b = Fixed4::FromDouble(1.0001);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, Fixed4::FromDouble(1.0));
  EXPECT_NE(a, b);
}

TEST(FixedPointTest, ScaleConstant) {
  EXPECT_EQ(Fixed4::kScale, 10000);
  EXPECT_EQ(FixedPoint<0>::kScale, 1);
  EXPECT_EQ(FixedPoint<8>::kScale, 100000000);
}

// Property: fixed-point arithmetic tracks double arithmetic within quantization.
TEST(FixedPointPropertyTest, TracksDoubleWithinQuantization) {
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.UniformDouble(-1000.0, 1000.0);
    const double y = rng.UniformDouble(0.1, 1000.0);
    const auto fx = Fixed4::FromDouble(x);
    const auto fy = Fixed4::FromDouble(y);
    EXPECT_NEAR((fx + fy).ToDouble(), x + y, 2e-4);
    EXPECT_NEAR((fx - fy).ToDouble(), x - y, 2e-4);
    EXPECT_NEAR((fx / fy).ToDouble(), x / y, 2e-4 + std::abs(x / y) * 1e-3);
  }
}

// Property: FromRatio agrees with exact rational rounding for random inputs.
TEST(FixedPointPropertyTest, FromRatioIsNearestRepresentable) {
  Rng rng(321);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t num = rng.UniformInt(0, 1'000'000);
    const std::int64_t den = rng.UniformInt(1, 10'000);
    const auto f = Fixed4::FromRatio(num, den);
    const double exact = static_cast<double>(num) / static_cast<double>(den);
    // Nearest multiple of 1e-4 is within half a quantum of the exact value.
    EXPECT_NEAR(f.ToDouble(), exact, 0.5 / 10000.0 + 1e-9);
  }
}

}  // namespace
}  // namespace sfs::common

#include "src/common/timing_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace sfs::common {
namespace {

// Payload mirroring the engine's event: the value carries the sequence number
// so pop order can be audited against the (time, seq) contract.
struct Ev {
  std::int64_t time = 0;
  std::uint64_t seq = 0;
};

using Wheel = TimingWheel<Ev>;

std::vector<Ev> Drain(Wheel& wheel, std::int64_t until) {
  std::vector<Ev> out;
  std::int64_t t = 0;
  while (wheel.NextTime(until, &t)) {
    const Ev ev = wheel.PopFront();
    EXPECT_EQ(ev.time, t);
    out.push_back(ev);
  }
  return out;
}

TEST(TimingWheelTest, EmptyWheel) {
  Wheel wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
  std::int64_t t = 0;
  EXPECT_FALSE(wheel.NextTime(1'000'000, &t));
}

TEST(TimingWheelTest, SingleEvent) {
  Wheel wheel;
  wheel.Push(42, {42, 0});
  EXPECT_EQ(wheel.size(), 1u);
  std::int64_t t = 0;
  ASSERT_TRUE(wheel.NextTime(100, &t));
  EXPECT_EQ(t, 42);
  EXPECT_EQ(wheel.PopFront().time, 42);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheelTest, BoundIsInclusive) {
  Wheel wheel;
  wheel.Push(100, {100, 0});
  std::int64_t t = 0;
  EXPECT_FALSE(wheel.NextTime(99, &t));
  ASSERT_TRUE(wheel.NextTime(100, &t));
  EXPECT_EQ(t, 100);
}

TEST(TimingWheelTest, BeyondBoundLeavesFuturePushesLegal) {
  Wheel wheel;
  wheel.Push(1'000'000, {1'000'000, 0});
  std::int64_t t = 0;
  EXPECT_FALSE(wheel.NextTime(10, &t));
  // The bounded scan must not advance internal time past the bound: an event
  // between the bound and the far-future one is still pushable and pops first.
  wheel.Push(500, {500, 1});
  ASSERT_TRUE(wheel.NextTime(1'000'000, &t));
  EXPECT_EQ(t, 500);
  wheel.PopFront();
  ASSERT_TRUE(wheel.NextTime(1'000'000, &t));
  EXPECT_EQ(t, 1'000'000);
}

TEST(TimingWheelTest, FifoAmongEqualTimes) {
  Wheel wheel;
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    wheel.Push(777, {777, seq});
  }
  const auto out = Drain(wheel, 1'000);
  ASSERT_EQ(out.size(), 100u);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_EQ(out[seq].seq, seq);
  }
}

TEST(TimingWheelTest, SameTickPushDuringDrainPopsThisTick) {
  // An event handler that schedules more work at the current tick must see it
  // fire within the same tick, after everything already pending (seq order) —
  // the engine relies on this for exit-hook chains.
  Wheel wheel;
  wheel.Push(5, {5, 0});
  std::int64_t t = 0;
  ASSERT_TRUE(wheel.NextTime(10, &t));
  EXPECT_EQ(wheel.PopFront().seq, 0u);
  wheel.Push(5, {5, 1});
  wheel.Push(6, {6, 2});
  ASSERT_TRUE(wheel.NextTime(10, &t));
  EXPECT_EQ(t, 5);
  EXPECT_EQ(wheel.PopFront().seq, 1u);
  ASSERT_TRUE(wheel.NextTime(10, &t));
  EXPECT_EQ(t, 6);
}

TEST(TimingWheelTest, CrossLevelCascadePreservesFifo) {
  // Two same-time events far enough out to live on a high level, pushed around
  // nearer events so they cascade; order among them must survive the cascade.
  Wheel wheel;
  const std::int64_t far = 1 << 20;  // level 2 territory
  wheel.Push(far, {far, 0});
  wheel.Push(3, {3, 1});
  wheel.Push(far, {far, 2});
  wheel.Push(70'000, {70'000, 3});  // level 1 territory
  const auto out = Drain(wheel, far + 1);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 3u);
  EXPECT_EQ(out[2].seq, 0u);
  EXPECT_EQ(out[3].seq, 2u);
}

TEST(TimingWheelTest, LateInsertAtSameTimeAsCascadedEventKeepsSeqOrder) {
  Wheel wheel;
  const std::int64_t t_far = 100'000;
  wheel.Push(t_far, {t_far, 0});  // waits on level >= 1
  wheel.Push(99'999, {99'999, 1});
  std::int64_t t = 0;
  // Draining to 99'999 cascades the 100'000 event down to level 0.
  ASSERT_TRUE(wheel.NextTime(99'999, &t));
  EXPECT_EQ(t, 99'999);
  wheel.PopFront();
  // A fresh same-time push must file *behind* the cascaded older event.
  wheel.Push(t_far, {t_far, 2});
  const auto out = Drain(wheel, t_far);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[1].seq, 2u);
}

TEST(TimingWheelTest, ReserveDoesNotDisturbPendingEvents) {
  Wheel wheel;
  wheel.Push(10, {10, 0});
  wheel.Reserve(10'000);
  wheel.Push(5, {5, 1});
  const auto out = Drain(wheel, 20);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].time, 5);
  EXPECT_EQ(out[1].time, 10);
}

// Differential against a (time, seq) min-heap over a seeded random schedule
// with interleaved pushes and bounded drains — the wheel's substitutability
// contract in one property.
TEST(TimingWheelTest, MatchesMinHeapOverRandomSchedule) {
  struct HeapGreater {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Wheel wheel;
    std::priority_queue<Ev, std::vector<Ev>, HeapGreater> heap;
    Rng rng(seed);
    std::int64_t now = 0;
    std::uint64_t seq = 0;
    for (int round = 0; round < 200; ++round) {
      const int pushes = static_cast<int>(rng.UniformInt(0, 8));
      for (int i = 0; i < pushes; ++i) {
        // Mix of near, same-tick and far-future times across wheel levels.
        std::int64_t dt = 0;
        switch (rng.UniformInt(0, 3)) {
          case 0: dt = 0; break;
          case 1: dt = static_cast<std::int64_t>(rng.UniformInt(1, 300)); break;
          case 2: dt = static_cast<std::int64_t>(rng.UniformInt(1, 100'000)); break;
          default: dt = static_cast<std::int64_t>(rng.UniformInt(1, 50'000'000)); break;
        }
        const Ev ev{now + dt, seq++};
        wheel.Push(ev.time, ev);
        heap.push(ev);
      }
      const std::int64_t until = now + static_cast<std::int64_t>(rng.UniformInt(0, 200'000));
      std::int64_t t = 0;
      while (wheel.NextTime(until, &t)) {
        const Ev got = wheel.PopFront();
        ASSERT_FALSE(heap.empty()) << "seed " << seed;
        const Ev want = heap.top();
        heap.pop();
        ASSERT_EQ(got.time, want.time) << "seed " << seed;
        ASSERT_EQ(got.seq, want.seq) << "seed " << seed;
        now = got.time;
      }
      if (!heap.empty()) {
        ASSERT_GT(heap.top().time, until) << "seed " << seed;
      }
      now = until;
    }
    ASSERT_EQ(wheel.size(), heap.size()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sfs::common

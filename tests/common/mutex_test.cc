// common::Mutex / lock-order validator tests (DESIGN.md §11).
//
// Covers the three contract halves the validator enforces at runtime:
//   * an injected A→B / B→A inversion and a blocking self-deadlock abort
//     with a "LOCK ORDER" report (death tests);
//   * the blessed ascending rank order (LockLifecycle's discipline) passes,
//     across threads and across instances of a ranked family;
//   * descending acquisition via try_lock — the sharded steal path — is
//     legal, while the same acquisition done blocking is not;
// plus the release-parity guarantee: common::Mutex is layout-identical to
// std::mutex in every build mode.

#include "src/common/mutex.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>

namespace sfs::common {
namespace {

// The zero-overhead contract: validator state lives in side tables, never in
// the mutex, so the annotated type is free to replace std::mutex anywhere.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "common::Mutex must stay layout-identical to std::mutex");

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Death tests fork; "threadsafe" re-executes the binary so the child's
    // validator state is pristine regardless of what the parent did.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    was_enabled_ = lock_order::Enabled();
    lock_order::SetEnabled(true);
    lock_order::ResetGraphForTest();
  }
  void TearDown() override {
    lock_order::ResetGraphForTest();
    lock_order::SetEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(LockOrderTest, ConsistentOrderPasses) {
  Mutex a;
  Mutex b;
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
    EXPECT_TRUE(lock_order::HeldByThisThread(&a));
    EXPECT_TRUE(lock_order::HeldByThisThread(&b));
  }
  EXPECT_FALSE(lock_order::HeldByThisThread(&a));
  EXPECT_FALSE(lock_order::HeldByThisThread(&b));
}

TEST_F(LockOrderTest, InversionAborts) {
  EXPECT_DEATH(
      {
        lock_order::SetEnabled(true);
        Mutex a;
        Mutex b;
        {
          MutexLock la(a);
          MutexLock lb(b);  // records a -> b
        }
        MutexLock lb(b);
        MutexLock la(a);  // b -> a closes the cycle: abort, not deadlock
      },
      "LOCK ORDER: lock-order inversion");
}

TEST_F(LockOrderTest, SelfDeadlockAborts) {
  EXPECT_DEATH(
      {
        lock_order::SetEnabled(true);
        Mutex a;
        a.lock();
        a.lock();  // blocking re-acquisition deadlocks this thread on itself
      },
      "LOCK ORDER: self-deadlock");
}

// Three-lock cycle: no single pair inverts, but a->b, b->c, then c->a closes
// a cycle the pairwise view cannot see.
TEST_F(LockOrderTest, TransitiveCycleAborts) {
  EXPECT_DEATH(
      {
        lock_order::SetEnabled(true);
        Mutex a;
        Mutex b;
        Mutex c;
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock lc(c);
        }
        MutexLock lc(c);
        MutexLock la(a);  // c -> a: cycle through b
      },
      "LOCK ORDER: lock-order inversion");
}

// The blessed LockLifecycle discipline: every distinct dispatch mutex,
// blocking, in ascending rank order — from any thread, repeatedly.
TEST_F(LockOrderTest, AscendingRankedFamilyPasses) {
  constexpr int kShards = 4;
  Mutex mu[kShards];
  for (int i = 0; i < kShards; ++i) {
    lock_order::SetRank(&mu[i], kLockClassDispatch, static_cast<std::uint32_t>(i));
  }
  auto lifecycle = [&] {
    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < kShards; ++i) {
        mu[i].lock();
      }
      for (int i = kShards - 1; i >= 0; --i) {
        mu[i].unlock();
      }
    }
  };
  std::thread peer(lifecycle);
  lifecycle();
  peer.join();
}

// Rank nodes are shared across family instances: a second "scheduler" using
// the same (class, rank) pairs keeps the same global order and still passes.
TEST_F(LockOrderTest, RankedFamilySharedAcrossInstancesPasses) {
  Mutex first[2];
  Mutex second[2];
  for (int i = 0; i < 2; ++i) {
    lock_order::SetRank(&first[i], kLockClassDispatch, static_cast<std::uint32_t>(i));
    lock_order::SetRank(&second[i], kLockClassDispatch, static_cast<std::uint32_t>(i));
  }
  {
    MutexLock l0(first[0]);
    MutexLock l1(first[1]);
  }
  {
    MutexLock l0(second[0]);
    MutexLock l1(second[1]);
  }
}

// The sharded steal path: descending acquisition is legal via try_lock (no
// blocking wait, so no cycle of waits can involve it)...
TEST_F(LockOrderTest, DescendingTryLockPasses) {
  Mutex low;
  Mutex high;
  lock_order::SetRank(&low, kLockClassDispatch, 0);
  lock_order::SetRank(&high, kLockClassDispatch, 1);
  {
    MutexLock l(low);
    MutexLock h(high);  // ascending blocking: records low -> high
  }
  MutexLock h(high);
  UniqueMutexLock l(low, std::try_to_lock);  // descending, non-blocking: fine
  ASSERT_TRUE(l.owns_lock());
  EXPECT_TRUE(lock_order::HeldByThisThread(&low));
}

// ...while the same descending acquisition done *blocking* is the inversion
// the contract forbids.
TEST_F(LockOrderTest, DescendingBlockingAborts) {
  EXPECT_DEATH(
      {
        lock_order::SetEnabled(true);
        Mutex low;
        Mutex high;
        lock_order::SetRank(&low, kLockClassDispatch, 0);
        lock_order::SetRank(&high, kLockClassDispatch, 1);
        {
          MutexLock l(low);
          MutexLock h(high);
        }
        MutexLock h(high);
        MutexLock l(low);  // blocking wait against the recorded order
      },
      "LOCK ORDER: lock-order inversion");
}

TEST_F(LockOrderTest, UniqueMutexLockMovePreservesOwnership) {
  Mutex mu;
  UniqueMutexLock outer;
  {
    UniqueMutexLock inner(mu);
    EXPECT_TRUE(lock_order::HeldByThisThread(&mu));
    outer = std::move(inner);
  }
  EXPECT_TRUE(outer.owns_lock());
  EXPECT_TRUE(lock_order::HeldByThisThread(&mu));
  outer.unlock();
  EXPECT_FALSE(lock_order::HeldByThisThread(&mu));
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST_F(LockOrderTest, CondVarWaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);
    }
    EXPECT_TRUE(lock_order::HeldByThisThread(&mu));
  }
  producer.join();
  EXPECT_FALSE(lock_order::HeldByThisThread(&mu));
}

// With validation off (the release default), locking records nothing and the
// would-be inversion is silent — the parity half of the zero-overhead claim.
TEST_F(LockOrderTest, DisabledValidatorRecordsNothing) {
  lock_order::SetEnabled(false);
  Mutex a;
  Mutex b;
  {
    MutexLock la(a);
    MutexLock lb(b);
    EXPECT_FALSE(lock_order::HeldByThisThread(&a));
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // inverted, but nobody is watching
  }
  lock_order::SetEnabled(true);
}

}  // namespace
}  // namespace sfs::common

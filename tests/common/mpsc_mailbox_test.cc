#include "src/common/mpsc_mailbox.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace sfs::common {
namespace {

TEST(MpscMailboxTest, StartsEmptyAndDrainsNothing) {
  MpscMailbox<int> box;
  EXPECT_TRUE(box.Empty());
  EXPECT_EQ(box.DrainAll([](int&&) { FAIL() << "nothing was pushed"; }), 0u);
}

TEST(MpscMailboxTest, SingleProducerFifo) {
  MpscMailbox<int> box;
  for (int i = 0; i < 100; ++i) {
    box.Push(i);
  }
  EXPECT_FALSE(box.Empty());
  std::vector<int> got;
  EXPECT_EQ(box.DrainAll([&got](int&& v) { got.push_back(v); }), 100u);
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  }
  EXPECT_TRUE(box.Empty());
}

TEST(MpscMailboxTest, InterleavedPushAndDrainLosesNothing) {
  MpscMailbox<int> box;
  int next = 0;
  std::vector<int> got;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < round % 7; ++i) {
      box.Push(next++);
    }
    box.DrainAll([&got](int&& v) { got.push_back(v); });
  }
  box.DrainAll([&got](int&& v) { got.push_back(v); });
  ASSERT_EQ(static_cast<int>(got.size()), next);
  for (int i = 0; i < next; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  }
}

TEST(MpscMailboxTest, MoveOnlyPayload) {
  MpscMailbox<std::unique_ptr<int>> box;
  box.Push(std::make_unique<int>(41));
  box.Push(std::make_unique<int>(42));
  std::vector<int> got;
  box.DrainAll([&got](std::unique_ptr<int>&& p) { got.push_back(*p); });
  EXPECT_EQ(got, (std::vector<int>{41, 42}));
}

TEST(MpscMailboxTest, DestructorReclaimsUndrainedMessages) {
  // Leak-checked under ASan/LSan builds: undrained nodes and the retained
  // tail anchor must both be freed.
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    ~Probe() {
      if (c) ++*c;
    }
  };
  {
    MpscMailbox<Probe> box;
    box.Push(Probe{counter});
    box.Push(Probe{counter});
    box.DrainAll([](Probe&&) {});  // consume one batch, retaining a tail node
    box.Push(Probe{counter});
  }
  // 3 payloads constructed in Push + moved-from temporaries destroyed along
  // the way; what matters is that every *owning* Probe died.
  EXPECT_GE(*counter, 3);
}

// The contract the parallel engine leans on: concurrent producers never lose
// or duplicate a message, and each producer's messages arrive in push order.
TEST(MpscMailboxConcurrencyTest, ManyProducersPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscMailbox<std::uint32_t> box;  // (producer << 16) | seq
  std::atomic<bool> go{false};
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &go, p] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerProducer; ++i) {
        box.Push(static_cast<std::uint32_t>((p << 16) | i));
      }
    });
  }

  std::vector<std::uint32_t> got;
  got.reserve(kProducers * kPerProducer);
  std::thread consumer([&box, &go, &done, &got] {
    go.store(true, std::memory_order_release);
    while (!done.load(std::memory_order_acquire)) {
      box.DrainAll([&got](std::uint32_t&& v) { got.push_back(v); });
    }
    box.DrainAll([&got](std::uint32_t&& v) { got.push_back(v); });
  });

  for (auto& t : producers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  int next_seq[kProducers] = {};
  for (const std::uint32_t v : got) {
    const int p = static_cast<int>(v >> 16);
    const int seq = static_cast<int>(v & 0xffff);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(seq, next_seq[p]) << "producer " << p << " out of order";
    next_seq[p] = seq + 1;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
}

}  // namespace
}  // namespace sfs::common

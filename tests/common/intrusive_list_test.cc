// Unit tests for the intrusive doubly-linked list (run-queue substrate).

#include "src/common/intrusive_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace sfs::common {
namespace {

struct Node {
  Node() = default;
  explicit Node(int v) : value(v) {}

  int value = 0;
  ListHook hook_a;
  ListHook hook_b;
};

using ListA = IntrusiveList<Node, &Node::hook_a>;
using ListB = IntrusiveList<Node, &Node::hook_b>;

TEST(IntrusiveListTest, StartsEmpty) {
  ListA list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
  EXPECT_EQ(list.pop_front(), nullptr);
}

TEST(IntrusiveListTest, PushBackOrder) {
  ListA list;
  Node a{1}, b{2}, c{3};
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.front(), &a);
  EXPECT_EQ(list.back(), &c);
  list.clear();
}

TEST(IntrusiveListTest, PushFrontOrder) {
  ListA list;
  Node a{1}, b{2};
  list.push_front(&a);
  list.push_front(&b);
  EXPECT_EQ(list.front(), &b);
  EXPECT_EQ(list.back(), &a);
  list.clear();
}

TEST(IntrusiveListTest, EraseMiddle) {
  ListA list;
  Node a{1}, b{2}, c{3};
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  list.erase(&b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.next(&a), &c);
  EXPECT_EQ(list.prev(&c), &a);
  EXPECT_FALSE(b.hook_a.linked());
  list.clear();
}

TEST(IntrusiveListTest, EraseEndsUpdatesFrontBack) {
  ListA list;
  Node a{1}, b{2}, c{3};
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  list.erase(&a);
  EXPECT_EQ(list.front(), &b);
  list.erase(&c);
  EXPECT_EQ(list.back(), &b);
  list.clear();
}

TEST(IntrusiveListTest, InsertBeforeAndAfter) {
  ListA list;
  Node a{1}, b{2}, c{3}, d{4};
  list.push_back(&a);
  list.push_back(&c);
  list.insert_before(&c, &b);
  list.insert_after(&c, &d);
  std::vector<int> values;
  for (Node* n : list) {
    values.push_back(n->value);
  }
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4}));
  list.clear();
}

TEST(IntrusiveListTest, PopFrontReturnsInOrder) {
  ListA list;
  Node a{1}, b{2};
  list.push_back(&a);
  list.push_back(&b);
  EXPECT_EQ(list.pop_front(), &a);
  EXPECT_EQ(list.pop_front(), &b);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, ContainsTracksMembership) {
  ListA list;
  Node a{1}, b{2};
  list.push_back(&a);
  EXPECT_TRUE(list.contains(&a));
  EXPECT_FALSE(list.contains(&b));
  list.erase(&a);
  EXPECT_FALSE(list.contains(&a));
}

TEST(IntrusiveListTest, NextPrevAtEndsReturnNull) {
  ListA list;
  Node a{1};
  list.push_back(&a);
  EXPECT_EQ(list.next(&a), nullptr);
  EXPECT_EQ(list.prev(&a), nullptr);
  list.clear();
}

TEST(IntrusiveListTest, ElementInTwoListsViaTwoHooks) {
  ListA list_a;
  ListB list_b;
  Node n{42};
  list_a.push_back(&n);
  list_b.push_back(&n);
  EXPECT_TRUE(list_a.contains(&n));
  EXPECT_TRUE(list_b.contains(&n));
  list_a.erase(&n);
  EXPECT_FALSE(list_a.contains(&n));
  EXPECT_TRUE(list_b.contains(&n));  // other membership untouched
  list_b.clear();
}

TEST(IntrusiveListTest, ClearUnlinksEverything) {
  ListA list;
  Node a, b, c;
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  list.clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(a.hook_a.linked());
  EXPECT_FALSE(b.hook_a.linked());
  EXPECT_FALSE(c.hook_a.linked());
}

TEST(IntrusiveListTest, RangeForIteration) {
  ListA list;
  std::vector<Node> nodes(5);
  for (int i = 0; i < 5; ++i) {
    nodes[static_cast<std::size_t>(i)].value = i;
    list.push_back(&nodes[static_cast<std::size_t>(i)]);
  }
  int expected = 0;
  for (Node* n : list) {
    EXPECT_EQ(n->value, expected++);
  }
  EXPECT_EQ(expected, 5);
  list.clear();
}

}  // namespace
}  // namespace sfs::common

// Unit tests for the deterministic RNG.

#include "src/common/rng.h"

#include <gtest/gtest.h>

namespace sfs::common {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBoundedWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.UniformDouble();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.Exponential(25.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 25.0, 1.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

}  // namespace
}  // namespace sfs::common

// Unit and property tests for the sorted run-queue container (Section 3.1).

#include "src/common/sorted_list.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "src/common/rng.h"

namespace sfs::common {
namespace {

struct Item {
  Item() = default;
  Item(double k, int i) : key(k), id(i) {}

  double key = 0.0;
  int id = 0;
  ListHook hook;
};

struct ByKey {
  static double Key(const Item& item) { return item.key; }
};

using Queue = SortedList<Item, &Item::hook, ByKey>;

std::vector<int> Ids(Queue& q) {
  std::vector<int> ids;
  for (Item* it = q.front(); it != nullptr; it = q.next(it)) {
    ids.push_back(it->id);
  }
  return ids;
}

TEST(SortedListTest, InsertKeepsAscendingOrder) {
  Queue q;
  Item a{3.0, 1}, b{1.0, 2}, c{2.0, 3};
  q.Insert(&a);
  q.Insert(&b);
  q.Insert(&c);
  EXPECT_EQ(Ids(q), (std::vector<int>{2, 3, 1}));
  EXPECT_TRUE(q.IsSorted());
  q.Clear();
}

TEST(SortedListTest, TiesKeepFifoOrder) {
  Queue q;
  Item a{1.0, 1}, b{1.0, 2}, c{1.0, 3};
  q.Insert(&a);
  q.Insert(&b);
  q.Insert(&c);
  EXPECT_EQ(Ids(q), (std::vector<int>{1, 2, 3}));
  q.Clear();
}

TEST(SortedListTest, InsertFromBackEquivalentOrder) {
  Queue q;
  Item a{5.0, 1}, b{2.0, 2}, c{8.0, 3};
  q.InsertFromBack(&a);
  q.InsertFromBack(&b);
  q.InsertFromBack(&c);
  EXPECT_EQ(Ids(q), (std::vector<int>{2, 1, 3}));
  EXPECT_TRUE(q.IsSorted());
  q.Clear();
}

TEST(SortedListTest, InsertFromBackTieParityWithInsert) {
  // Sfs::OnCharge re-queues via InsertFromBack while admissions use Insert;
  // determinism requires both paths to file an equal key *after* the existing
  // ties (FIFO among ties), i.e. the back-scan must stop at the last equal
  // element and insert after it, never before.
  Queue q;
  Item a{1.0, 1}, b{1.0, 2}, c{1.0, 3};
  q.Insert(&a);
  q.Insert(&b);
  q.InsertFromBack(&c);  // equal key via the back path: after a and b
  EXPECT_EQ(Ids(q), (std::vector<int>{1, 2, 3}));
  q.Clear();

  // Equal keys at the very front: the back-scan walks past larger keys and
  // must still land after the existing equals.
  Item d{1.0, 1}, e{1.0, 2}, f{5.0, 3}, g{1.0, 4};
  q.Insert(&d);
  q.Insert(&e);
  q.Insert(&f);
  q.InsertFromBack(&g);
  EXPECT_EQ(Ids(q), (std::vector<int>{1, 2, 4, 3}));
  q.Clear();
}

TEST(SortedListTest, InsertAndInsertFromBackInterleavedIdenticalOrder) {
  // The same mixed sequence of duplicate keys through both insertion paths
  // must produce element-for-element identical lists.
  const double keys[] = {2.0, 1.0, 2.0, 3.0, 2.0, 1.0, 3.0, 2.0};
  std::vector<Item> front_items(std::size(keys));
  std::vector<Item> back_items(std::size(keys));
  Queue via_front;
  Queue via_back;
  for (std::size_t i = 0; i < std::size(keys); ++i) {
    front_items[i].key = keys[i];
    front_items[i].id = static_cast<int>(i);
    back_items[i].key = keys[i];
    back_items[i].id = static_cast<int>(i);
    via_front.Insert(&front_items[i]);
    via_back.InsertFromBack(&back_items[i]);
  }
  EXPECT_EQ(Ids(via_front), Ids(via_back));
  EXPECT_EQ(Ids(via_front), (std::vector<int>{1, 5, 0, 2, 4, 7, 3, 6}));
  via_front.Clear();
  via_back.Clear();
}

TEST(SortedListTest, RemoveAndPopFront) {
  Queue q;
  Item a{1.0, 1}, b{2.0, 2};
  q.Insert(&a);
  q.Insert(&b);
  EXPECT_EQ(q.PopFront(), &a);
  q.Remove(&b);
  EXPECT_TRUE(q.empty());
}

TEST(SortedListTest, RepositionAfterKeyChange) {
  Queue q;
  Item a{1.0, 1}, b{2.0, 2}, c{3.0, 3};
  q.Insert(&a);
  q.Insert(&b);
  q.Insert(&c);
  a.key = 10.0;
  q.Reposition(&a);
  EXPECT_EQ(Ids(q), (std::vector<int>{2, 3, 1}));
  EXPECT_TRUE(q.IsSorted());
  q.Clear();
}

TEST(SortedListTest, ResortFixesPerturbedKeys) {
  Queue q;
  std::vector<Item> items(6);
  for (int i = 0; i < 6; ++i) {
    items[static_cast<std::size_t>(i)].key = static_cast<double>(i);
    items[static_cast<std::size_t>(i)].id = i;
  }
  for (auto& it : items) {
    q.Insert(&it);
  }
  // Perturb two keys so the list is "mostly sorted" (the Section 3.2 case).
  items[1].key = 4.5;
  items[4].key = 0.5;
  q.Resort();
  EXPECT_TRUE(q.IsSorted());
  EXPECT_EQ(Ids(q), (std::vector<int>{0, 4, 2, 3, 1, 5}));
  q.Clear();
}

TEST(SortedListTest, ForFirstKVisitsSmallest) {
  Queue q;
  std::vector<Item> items(5);
  for (int i = 0; i < 5; ++i) {
    items[static_cast<std::size_t>(i)].key = static_cast<double>(10 - i);
    items[static_cast<std::size_t>(i)].id = i;
    q.Insert(&items[static_cast<std::size_t>(i)]);
  }
  std::vector<int> seen;
  const std::size_t visited = q.ForFirstK(3, [&](Item* it) { seen.push_back(it->id); });
  EXPECT_EQ(visited, 3u);
  EXPECT_EQ(seen, (std::vector<int>{4, 3, 2}));  // keys 6, 7, 8
  q.Clear();
}

TEST(SortedListTest, ForLastKVisitsLargestBackwards) {
  Queue q;
  std::vector<Item> items(5);
  for (int i = 0; i < 5; ++i) {
    items[static_cast<std::size_t>(i)].key = static_cast<double>(i);
    items[static_cast<std::size_t>(i)].id = i;
    q.Insert(&items[static_cast<std::size_t>(i)]);
  }
  std::vector<int> seen;
  q.ForLastK(2, [&](Item* it) { seen.push_back(it->id); });
  EXPECT_EQ(seen, (std::vector<int>{4, 3}));
  q.Clear();
}

TEST(SortedListTest, ForFirstKMoreThanSizeVisitsAll) {
  Queue q;
  Item a{1.0, 1};
  q.Insert(&a);
  std::size_t count = 0;
  EXPECT_EQ(q.ForFirstK(10, [&](Item*) { ++count; }), 1u);
  EXPECT_EQ(count, 1u);
  q.Clear();
}

// Property: any random sequence of insert/remove/reposition keeps sorted order.
TEST(SortedListPropertyTest, RandomOperationsStaySorted) {
  Rng rng(777);
  std::vector<Item> pool(64);
  for (int i = 0; i < 64; ++i) {
    pool[static_cast<std::size_t>(i)].id = i;
  }
  Queue q;
  std::vector<Item*> in_queue;
  for (int step = 0; step < 3000; ++step) {
    const auto op = rng.NextBounded(3);
    if (op == 0 && in_queue.size() < pool.size()) {
      // Insert a random item that is not yet linked.
      for (auto& item : pool) {
        if (!item.hook.linked()) {
          item.key = rng.UniformDouble(0.0, 100.0);
          if (rng.Bernoulli(0.5)) {
            q.Insert(&item);
          } else {
            q.InsertFromBack(&item);
          }
          in_queue.push_back(&item);
          break;
        }
      }
    } else if (op == 1 && !in_queue.empty()) {
      const auto idx = rng.NextBounded(in_queue.size());
      Item* item = in_queue[idx];
      q.Remove(item);
      in_queue.erase(in_queue.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (op == 2 && !in_queue.empty()) {
      const auto idx = rng.NextBounded(in_queue.size());
      in_queue[idx]->key = rng.UniformDouble(0.0, 100.0);
      q.Reposition(in_queue[idx]);
    }
    ASSERT_TRUE(q.IsSorted()) << "step " << step;
    ASSERT_EQ(q.size(), in_queue.size());
  }
  q.Clear();
}

// Property: Resort() restores order from arbitrary key perturbations.
TEST(SortedListPropertyTest, ResortAlwaysRestoresOrder) {
  Rng rng(888);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Item> items(40);
    Queue q;
    for (int i = 0; i < 40; ++i) {
      items[static_cast<std::size_t>(i)].id = i;
      items[static_cast<std::size_t>(i)].key = rng.UniformDouble(0.0, 10.0);
      q.Insert(&items[static_cast<std::size_t>(i)]);
    }
    for (auto& item : items) {
      if (rng.Bernoulli(0.3)) {
        item.key = rng.UniformDouble(0.0, 10.0);
      }
    }
    q.Resort();
    EXPECT_TRUE(q.IsSorted());
    EXPECT_EQ(q.size(), 40u);
    q.Clear();
  }
}

}  // namespace
}  // namespace sfs::common

#include "src/common/parking.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sfs::common {
namespace {

using Backend = ParkingSlot::Backend;
using std::chrono::steady_clock;

steady_clock::time_point After(steady_clock::duration d) {
  return steady_clock::now() + d;
}

class ParkingSlotTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ParkingSlotTest, BackendSelection) {
  ParkingSlot slot(GetParam());
#if defined(__linux__)
  EXPECT_EQ(slot.backend(), GetParam());
#else
  EXPECT_EQ(slot.backend(), Backend::kCondVar);
#endif
}

TEST_P(ParkingSlotTest, TimesOutWithoutKick) {
  ParkingSlot slot(GetParam());
  const auto token = slot.Prepare();
  const auto start = steady_clock::now();
  EXPECT_FALSE(slot.ParkUntil(token, After(std::chrono::milliseconds(10))));
  EXPECT_GE(steady_clock::now() - start, std::chrono::milliseconds(5));
}

TEST_P(ParkingSlotTest, PastDeadlineReturnsImmediately) {
  ParkingSlot slot(GetParam());
  const auto token = slot.Prepare();
  EXPECT_FALSE(slot.ParkUntil(token, steady_clock::now() - std::chrono::milliseconds(1)));
}

// THE race regression: a kick that lands between the consumer's (empty) final
// look for work and its park must not be lost.  Simulated deterministically:
// the kick happens after Prepare but before ParkUntil, so ParkUntil must fall
// through without sleeping.
TEST_P(ParkingSlotTest, KickBetweenPrepareAndParkIsNotLost) {
  ParkingSlot slot(GetParam());
  const auto token = slot.Prepare();
  slot.Kick();  // producer races in here
  const auto start = steady_clock::now();
  EXPECT_TRUE(slot.ParkUntil(token, After(std::chrono::hours(1))));
  // Fell through instead of sleeping anywhere near the deadline.
  EXPECT_LT(steady_clock::now() - start, std::chrono::seconds(10));
}

TEST_P(ParkingSlotTest, KickWakesSleeper) {
  ParkingSlot slot(GetParam());
  std::atomic<bool> woke{false};
  const auto token = slot.Prepare();
  std::thread sleeper([&] {
    EXPECT_TRUE(slot.ParkUntil(token, After(std::chrono::seconds(30))));
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  slot.Kick();
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

// Park timeout and a targeted kick racing: whichever wins, the parker returns
// promptly and the slot stays usable for the next round.
TEST_P(ParkingSlotTest, TimeoutVsKickRaceStaysUsable) {
  ParkingSlot slot(GetParam());
  std::atomic<bool> stop{false};
  std::thread kicker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      slot.Kick();
    }
  });
  for (int round = 0; round < 2000; ++round) {
    const auto token = slot.Prepare();
    // Zero/near-zero deadlines collide timeout with the kicker's bumps.
    slot.ParkUntil(token, After(std::chrono::microseconds(round % 3)));
  }
  stop.store(true);
  kicker.join();
  // Slot still works as a plain sleeper afterwards.
  const auto token = slot.Prepare();
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    slot.Kick();
  });
  EXPECT_TRUE(slot.ParkUntil(token, After(std::chrono::seconds(30))));
  late.join();
}

// Producer/consumer handoff loop: each kick is preceded by publishing a value;
// the woken consumer must observe it (Kick release / Prepare-Park acquire).
TEST_P(ParkingSlotTest, KickPublishesPriorWrites) {
  ParkingSlot slot(GetParam());
  std::atomic<int> published{0};
  constexpr int kRounds = 500;
  std::thread producer([&] {
    for (int i = 1; i <= kRounds; ++i) {
      published.store(i, std::memory_order_relaxed);
      slot.Kick();
      std::this_thread::yield();
    }
  });
  int seen = 0;
  while (seen < kRounds) {
    const auto token = slot.Prepare();
    const int now = published.load(std::memory_order_relaxed);
    if (now > seen) {
      seen = now;
      continue;
    }
    slot.ParkUntil(token, After(std::chrono::milliseconds(1)));
    seen = std::max(seen, published.load(std::memory_order_relaxed));
  }
  producer.join();
  EXPECT_EQ(seen, kRounds);
}

INSTANTIATE_TEST_SUITE_P(Backends, ParkingSlotTest,
#if defined(__linux__)
                         ::testing::Values(Backend::kFutex, Backend::kCondVar),
#else
                         ::testing::Values(Backend::kCondVar),
#endif
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kFutex ? "futex" : "condvar";
                         });

}  // namespace
}  // namespace sfs::common

// Unit and property tests for the indexed skip list — the §3.2 O(log t)
// run-queue backend behind sched::RunQueue.

#include "src/common/skip_list.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/rng.h"

namespace sfs::common {
namespace {

struct Item {
  double key = 0.0;
  int id = 0;
  ListHook hook;
};

struct ByKey {
  static double Key(const Item& item) { return item.key; }
};

using List = IndexedSkipList<Item, &Item::hook, ByKey>;

std::vector<int> IdsInOrder(List& list) {
  std::vector<int> ids;
  for (Item* cur = list.front(); cur != nullptr; cur = list.next(cur)) {
    ids.push_back(cur->id);
  }
  return ids;
}

TEST(IndexedSkipListTest, StartsEmpty) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IndexedSkipListTest, InsertKeepsOrder) {
  List list;
  Item a{3.0, 1, {}}, b{1.0, 2, {}}, c{2.0, 3, {}};
  list.Insert(&a);
  list.Insert(&b);
  list.Insert(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.front(), &b);
  EXPECT_TRUE(list.IsSorted());
  EXPECT_EQ(list.PopFront(), &b);
  EXPECT_EQ(list.PopFront(), &c);
  EXPECT_EQ(list.PopFront(), &a);
}

TEST(IndexedSkipListTest, EqualKeysFifo) {
  List list;
  Item a{1.0, 1, {}}, b{1.0, 2, {}}, c{1.0, 3, {}};
  list.Insert(&a);
  list.Insert(&b);
  list.Insert(&c);
  EXPECT_EQ(list.PopFront(), &a);
  EXPECT_EQ(list.PopFront(), &b);
  EXPECT_EQ(list.PopFront(), &c);
}

TEST(IndexedSkipListTest, RemoveSpecificElementAmongEqualKeys) {
  List list;
  Item a{1.0, 1, {}}, b{1.0, 2, {}}, c{1.0, 3, {}};
  list.Insert(&a);
  list.Insert(&b);
  list.Insert(&c);
  list.Remove(&b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.PopFront(), &a);
  EXPECT_EQ(list.PopFront(), &c);
}

TEST(IndexedSkipListTest, ForFirstKVisitsSmallest) {
  List list;
  std::vector<Item> items(6);
  for (int i = 0; i < 6; ++i) {
    items[static_cast<std::size_t>(i)].key = static_cast<double>(10 - i);
    items[static_cast<std::size_t>(i)].id = i;
    list.Insert(&items[static_cast<std::size_t>(i)]);
  }
  std::vector<int> seen;
  EXPECT_EQ(list.ForFirstK(3, [&](Item* it) { seen.push_back(it->id); }), 3u);
  EXPECT_EQ(seen, (std::vector<int>{5, 4, 3}));
  std::vector<int> last;
  EXPECT_EQ(list.ForLastK(2, [&](Item* it) { last.push_back(it->id); }), 2u);
  EXPECT_EQ(last, (std::vector<int>{0, 1}));
  list.Clear();
}

TEST(IndexedSkipListTest, IterationNeighboursAndEnds) {
  List list;
  std::vector<Item> items(5);
  const double keys[] = {4.0, 2.0, 5.0, 1.0, 3.0};
  for (int i = 0; i < 5; ++i) {
    items[static_cast<std::size_t>(i)].key = keys[i];
    items[static_cast<std::size_t>(i)].id = i;
    list.Insert(&items[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(IdsInOrder(list), (std::vector<int>{3, 1, 4, 0, 2}));
  EXPECT_EQ(list.front()->id, 3);
  EXPECT_EQ(list.back()->id, 2);
  EXPECT_EQ(list.prev(&items[4])->id, 1);
  EXPECT_EQ(list.next(&items[4])->id, 0);
  EXPECT_EQ(list.prev(list.front()), nullptr);
  EXPECT_EQ(list.next(list.back()), nullptr);
  EXPECT_TRUE(list.contains(&items[0]));
  list.Remove(&items[0]);
  EXPECT_FALSE(list.contains(&items[0]));
  EXPECT_EQ(IdsInOrder(list), (std::vector<int>{3, 1, 4, 2}));
  list.Clear();
  EXPECT_TRUE(list.empty());
}

TEST(IndexedSkipListTest, RemoveWithStaleKeyUsesInsertTimePosition) {
  // Schedulers advance tags before removing; removal must locate the element
  // by the key it was filed under, not the mutated one.
  List list;
  std::vector<Item> items(6);
  for (int i = 0; i < 6; ++i) {
    items[static_cast<std::size_t>(i)].key = static_cast<double>(i);
    items[static_cast<std::size_t>(i)].id = i;
    list.Insert(&items[static_cast<std::size_t>(i)]);
  }
  items[2].key = 99.0;
  list.Remove(&items[2]);
  list.Insert(&items[2]);
  EXPECT_EQ(list.back()->id, 2);
  EXPECT_TRUE(list.IsSorted());
  list.Clear();
}

TEST(IndexedSkipListTest, SyncKeysAfterOrderPreservingMutation) {
  // A uniform shift (the SFS tag rebase) mutates every key in place without
  // reordering; SyncKeys must re-snapshot so later inserts compare correctly.
  List list;
  std::vector<Item> items(8);
  for (int i = 0; i < 8; ++i) {
    items[static_cast<std::size_t>(i)].key = static_cast<double>(10 * (i + 1));
    items[static_cast<std::size_t>(i)].id = i;
    list.Insert(&items[static_cast<std::size_t>(i)]);
  }
  for (auto& item : items) {
    item.key -= 40.0;  // keys now -30..40, order unchanged
  }
  list.SyncKeys();
  Item probe;
  probe.key = 5.0;  // lands between the shifted keys 0 (id 3) and 10 (id 4)
  probe.id = 100;
  list.Insert(&probe);
  EXPECT_EQ(IdsInOrder(list), (std::vector<int>{0, 1, 2, 3, 100, 4, 5, 6, 7}));
  EXPECT_TRUE(list.IsSorted());
  list.Clear();
}

TEST(IndexedSkipListPropertyTest, RandomOpsMatchReferenceMultimap) {
  Rng rng(4048);
  List list;
  std::vector<Item> pool(128);
  for (int i = 0; i < 128; ++i) {
    pool[static_cast<std::size_t>(i)].id = i;
  }
  std::vector<Item*> present;
  std::multimap<double, Item*> reference;

  for (int step = 0; step < 6000; ++step) {
    const auto op = rng.NextBounded(3);
    if (op == 0 && present.size() < pool.size()) {
      for (auto& item : pool) {
        if (!list.contains(&item)) {
          item.key = static_cast<double>(rng.UniformInt(0, 60));
          list.Insert(&item);
          reference.emplace(item.key, &item);
          present.push_back(&item);
          break;
        }
      }
    } else if (op == 1 && !present.empty()) {
      const auto idx = rng.NextBounded(present.size());
      Item* item = present[idx];
      list.Remove(item);
      for (auto it = reference.lower_bound(item->key); it != reference.end(); ++it) {
        if (it->second == item) {
          reference.erase(it);
          break;
        }
      }
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (!present.empty()) {
      ASSERT_EQ(ByKey::Key(*list.front()), reference.begin()->first);
      // Full order agreement with the reference by element identity: multimap
      // preserves insertion order among equivalent keys, so this checks the
      // FIFO-among-ties contract, not just the key sequence.
      auto it = reference.begin();
      for (Item* cur = list.front(); cur != nullptr; cur = list.next(cur), ++it) {
        ASSERT_EQ(cur, it->second);
      }
    }
    ASSERT_EQ(list.size(), reference.size());
  }
  EXPECT_TRUE(list.IsSorted());
  list.Clear();
}

TEST(IndexedSkipListPropertyTest, DrainInOrder) {
  Rng rng(777);
  List list;
  std::vector<Item> items(500);
  for (int i = 0; i < 500; ++i) {
    items[static_cast<std::size_t>(i)].key = rng.UniformDouble(0.0, 1.0);
    items[static_cast<std::size_t>(i)].id = i;
    list.Insert(&items[static_cast<std::size_t>(i)]);
  }
  double prev = -1.0;
  while (!list.empty()) {
    Item* item = list.PopFront();
    EXPECT_GE(item->key, prev);
    prev = item->key;
  }
}

}  // namespace
}  // namespace sfs::common

// Unit and property tests for the skip list (the §3.2 O(log t) alternative).

#include "src/common/skip_list.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/rng.h"

namespace sfs::common {
namespace {

struct Item {
  double key = 0.0;
  int id = 0;
};

struct ByKey {
  static double Key(const Item& item) { return item.key; }
};

using List = SkipList<Item, ByKey>;

TEST(SkipListTest, StartsEmpty) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Front(), nullptr);
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(SkipListTest, InsertKeepsOrder) {
  List list;
  Item a{3.0, 1}, b{1.0, 2}, c{2.0, 3};
  list.Insert(&a);
  list.Insert(&b);
  list.Insert(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.Front(), &b);
  EXPECT_TRUE(list.IsSorted());
  EXPECT_EQ(list.PopFront(), &b);
  EXPECT_EQ(list.PopFront(), &c);
  EXPECT_EQ(list.PopFront(), &a);
}

TEST(SkipListTest, EqualKeysFifo) {
  List list;
  Item a{1.0, 1}, b{1.0, 2}, c{1.0, 3};
  list.Insert(&a);
  list.Insert(&b);
  list.Insert(&c);
  EXPECT_EQ(list.PopFront(), &a);
  EXPECT_EQ(list.PopFront(), &b);
  EXPECT_EQ(list.PopFront(), &c);
}

TEST(SkipListTest, RemoveSpecificElementAmongEqualKeys) {
  List list;
  Item a{1.0, 1}, b{1.0, 2}, c{1.0, 3};
  list.Insert(&a);
  list.Insert(&b);
  list.Insert(&c);
  list.Remove(&b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.PopFront(), &a);
  EXPECT_EQ(list.PopFront(), &c);
}

TEST(SkipListTest, ForFirstKVisitsSmallest) {
  List list;
  std::vector<Item> items(6);
  for (int i = 0; i < 6; ++i) {
    items[static_cast<std::size_t>(i)].key = static_cast<double>(10 - i);
    items[static_cast<std::size_t>(i)].id = i;
    list.Insert(&items[static_cast<std::size_t>(i)]);
  }
  std::vector<int> seen;
  EXPECT_EQ(list.ForFirstK(3, [&](Item* it) { seen.push_back(it->id); }), 3u);
  EXPECT_EQ(seen, (std::vector<int>{5, 4, 3}));
}

TEST(SkipListPropertyTest, RandomOpsMatchReferenceMultimap) {
  Rng rng(2024);
  List list;
  std::vector<Item> pool(256);
  for (int i = 0; i < 256; ++i) {
    pool[static_cast<std::size_t>(i)].id = i;
  }
  std::vector<Item*> present;
  std::multimap<double, Item*> reference;

  for (int step = 0; step < 8000; ++step) {
    const auto op = rng.NextBounded(3);
    if (op == 0 && present.size() < pool.size()) {
      // Insert a random absent item.
      for (auto& item : pool) {
        if (std::find(present.begin(), present.end(), &item) == present.end()) {
          item.key = static_cast<double>(rng.UniformInt(0, 100));
          list.Insert(&item);
          reference.emplace(item.key, &item);
          present.push_back(&item);
          break;
        }
      }
    } else if (op == 1 && !present.empty()) {
      const auto idx = rng.NextBounded(present.size());
      Item* item = present[idx];
      list.Remove(item);
      for (auto it = reference.lower_bound(item->key); it != reference.end(); ++it) {
        if (it->second == item) {
          reference.erase(it);
          break;
        }
      }
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (!present.empty()) {
      // Front must carry the minimum key.
      ASSERT_EQ(ByKey::Key(*list.Front()), reference.begin()->first);
    }
    ASSERT_EQ(list.size(), reference.size());
  }
  EXPECT_TRUE(list.IsSorted());
}

TEST(SkipListPropertyTest, DrainInOrder) {
  Rng rng(777);
  List list;
  std::vector<Item> items(500);
  for (int i = 0; i < 500; ++i) {
    items[static_cast<std::size_t>(i)].key = rng.UniformDouble(0.0, 1.0);
    items[static_cast<std::size_t>(i)].id = i;
    list.Insert(&items[static_cast<std::size_t>(i)]);
  }
  double prev = -1.0;
  while (!list.empty()) {
    Item* item = list.PopFront();
    EXPECT_GE(item->key, prev);
    prev = item->key;
  }
}

}  // namespace
}  // namespace sfs::common

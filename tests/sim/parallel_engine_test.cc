// Unit tests for the parallel sharded simulation engine.
//
// Three contracts under test (parallel_engine.h):
//   * workers == 1 reproduces sim::Engine byte-identically — run-interval
//     stream, lifecycle stream, per-task services, every counter — for flat
//     and sharded policies alike.
//   * workers > 1 over a *partitioned* sharded policy reproduces the serial
//     oracle's per-CPU / per-home streams byte-identically at any worker
//     count, and is deterministic across reruns.
//   * workers > 1 in general (hintless tasks, mailboxes in play) preserves
//     the conservation invariants: arrivals == departures + live, and every
//     dispatch is eventually charged (tasks still on-CPU at the horizon
//     excepted).
//
// The stress cases double as the TSan targets for the engine (ctest -R
// ParallelEngine under the sanitizer job).

#include "src/sim/parallel_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/fingerprint.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::sim {
namespace {

using sched::SchedKind;
using sched::ThreadId;

struct RunResult {
  std::uint64_t run_fingerprint = 0;
  std::uint64_t lifecycle_fingerprint = 0;
  std::vector<Tick> services;
  std::int64_t events = 0;
  std::int64_t dispatches = 0;
  std::int64_t preemptions = 0;
  std::int64_t mailed = 0;
  Tick idle = 0;
  Tick ctx_cost = 0;

  bool operator==(const RunResult&) const = default;
};

constexpr int kCpus = 4;
constexpr Tick kHorizon = Sec(5);

sched::SchedConfig TestConfig(int cpus) {
  sched::SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = Msec(20);
  return config;
}

// The shared workload: hogs with mixed weights, interactive sleepers (arrive
// asleep — the wakeup path), and a churning short-job chain through the exit
// hook (serial paths only).  `hint` pins task tid to shard tid % cpus.
template <typename EngineT>
void AddWorkload(EngineT& engine, int cpus, bool hint, bool churn) {
  ThreadId next_tid = 1;
  auto add = [&engine, cpus, hint](Tick at, std::unique_ptr<Task> task) {
    if (hint) {
      task->set_home_cpu(static_cast<sched::CpuId>(task->tid() % cpus));
    }
    engine.AddTaskAt(at, std::move(task));
  };
  for (int i = 0; i < 3; ++i) {
    add(Msec(100 * i), workload::MakeInf(next_tid++, 1.0 + 3.0 * i, "hog"));
  }
  for (int i = 0; i < 6; ++i) {
    workload::Interact::Params params;
    params.mean_think = Msec(20 + 30 * i);
    params.burst = Msec(1 + i);
    params.seed = 7u + static_cast<std::uint64_t>(i);
    add(Msec(50 * i), workload::MakeInteract(next_tid++, 1.0 + i, params, nullptr, "sleeper"));
  }
  add(0, workload::MakeFixedWork(next_tid++, 2.0, Msec(80), "short"));
  if (churn) {
    engine.SetExitHook([next_tid](EngineT& e, Task& task) mutable {
      if (task.label() == "short" && next_tid < 40) {
        e.AddTaskAt(e.now() + Msec(17),
                    workload::MakeFixedWork(next_tid++, 2.0, Msec(80), "short"));
      }
    });
  }
}

RunResult RunSerial(SchedKind kind, bool hint) {
  auto scheduler = CreateScheduler(kind, TestConfig(kCpus));
  EngineConfig config;
  config.context_switch_cost = Usec(50);
  Engine engine(*scheduler, config);
  common::Fnv1a run_fp;
  common::Fnv1a life_fp;
  engine.SetRunIntervalHook([&run_fp](Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
    run_fp.Mix(static_cast<std::uint64_t>(start));
    run_fp.Mix(static_cast<std::uint64_t>(len));
    run_fp.Mix(static_cast<std::uint64_t>(cpu));
    run_fp.Mix(static_cast<std::uint64_t>(tid));
  });
  engine.SetSchedEventHook([&life_fp](SchedEvent event, const Task& task, Tick now) {
    life_fp.Mix(static_cast<std::uint64_t>(event));
    life_fp.Mix(static_cast<std::uint64_t>(task.tid()));
    life_fp.Mix(static_cast<std::uint64_t>(now));
  });
  AddWorkload(engine, kCpus, hint, /*churn=*/true);
  engine.RunUntil(kHorizon);

  RunResult result;
  engine.ForEachTask([&](const Task& task) { result.services.push_back(task.service()); });
  std::sort(result.services.begin(), result.services.end());
  result.run_fingerprint = run_fp.value();
  result.lifecycle_fingerprint = life_fp.value();
  result.events = engine.events_processed();
  result.dispatches = engine.dispatches();
  result.preemptions = engine.preemptions();
  result.idle = engine.idle_time();
  result.ctx_cost = engine.total_context_switch_cost();
  return result;
}

RunResult RunParallel(SchedKind kind, int workers, bool hint, bool churn,
                      Tick epoch = Msec(10)) {
  auto scheduler = CreateScheduler(kind, TestConfig(kCpus));
  ParallelEngineConfig config;
  config.workers = workers;
  config.epoch = epoch;
  config.context_switch_cost = Usec(50);
  ParallelEngine engine(*scheduler, config);
  common::Fnv1a run_fp;
  common::Fnv1a life_fp;
  engine.SetRunIntervalHook(
      [&run_fp](int /*worker*/, Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
        run_fp.Mix(static_cast<std::uint64_t>(start));
        run_fp.Mix(static_cast<std::uint64_t>(len));
        run_fp.Mix(static_cast<std::uint64_t>(cpu));
        run_fp.Mix(static_cast<std::uint64_t>(tid));
      });
  engine.SetSchedEventHook(
      [&life_fp](int /*worker*/, SchedEvent event, const Task& task, Tick now) {
        life_fp.Mix(static_cast<std::uint64_t>(event));
        life_fp.Mix(static_cast<std::uint64_t>(task.tid()));
        life_fp.Mix(static_cast<std::uint64_t>(now));
      });
  AddWorkload(engine, kCpus, hint, churn);
  engine.RunUntil(kHorizon);

  RunResult result;
  engine.ForEachTask([&](const Task& task) { result.services.push_back(task.service()); });
  std::sort(result.services.begin(), result.services.end());
  result.run_fingerprint = run_fp.value();
  result.lifecycle_fingerprint = life_fp.value();
  result.events = engine.events_processed();
  result.dispatches = engine.dispatches();
  result.preemptions = engine.preemptions();
  result.mailed = engine.mailed_wakeups();
  result.idle = engine.idle_time();
  result.ctx_cost = engine.total_context_switch_cost();
  return result;
}

// --- workers == 1: the serial-oracle contract --------------------------------

class ParallelEngineOracleTest : public ::testing::TestWithParam<SchedKind> {};

TEST_P(ParallelEngineOracleTest, WorkersOneIsByteIdenticalToEngine) {
  const RunResult serial = RunSerial(GetParam(), /*hint=*/false);
  const RunResult parallel = RunParallel(GetParam(), /*workers=*/1, /*hint=*/false,
                                         /*churn=*/true);
  EXPECT_EQ(serial.run_fingerprint, parallel.run_fingerprint);
  EXPECT_EQ(serial.lifecycle_fingerprint, parallel.lifecycle_fingerprint);
  EXPECT_EQ(serial.services, parallel.services);
  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.dispatches, parallel.dispatches);
  EXPECT_EQ(serial.preemptions, parallel.preemptions);
  EXPECT_EQ(serial.idle, parallel.idle);
  EXPECT_EQ(serial.ctx_cost, parallel.ctx_cost);
  EXPECT_EQ(parallel.mailed, 0);
}

TEST_P(ParallelEngineOracleTest, WorkersOneWithHintsIsByteIdenticalToEngine) {
  const RunResult serial = RunSerial(GetParam(), /*hint=*/true);
  const RunResult parallel = RunParallel(GetParam(), /*workers=*/1, /*hint=*/true,
                                         /*churn=*/true);
  EXPECT_EQ(serial.run_fingerprint, parallel.run_fingerprint);
  EXPECT_EQ(serial.lifecycle_fingerprint, parallel.lifecycle_fingerprint);
  EXPECT_EQ(serial.services, parallel.services);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ParallelEngineOracleTest,
    ::testing::Values(SchedKind::kSfs, SchedKind::kHsfs, SchedKind::kSfq, SchedKind::kStride,
                      SchedKind::kWfq, SchedKind::kBvt, SchedKind::kTimeshare,
                      SchedKind::kRoundRobin, SchedKind::kLottery, SchedKind::kShardedSfs),
    [](const ::testing::TestParamInfo<SchedKind>& param_info) {
      std::string name(sched::SchedKindName(param_info.param));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// --- workers > 1, partitioned: exactness per shard group ---------------------

// Partitioned sharded-SFS: per-CPU run-interval streams and per-home-shard
// lifecycle streams must be byte-identical to the serial engine's at every
// worker count (per-CPU granularity is the finest grouping, so it covers any
// coarser worker split).
struct GroupedFingerprints {
  std::vector<std::uint64_t> per_cpu_run;
  std::vector<std::uint64_t> per_home_life;
  std::int64_t dispatches = 0;
  std::int64_t mailed = 0;

  bool operator==(const GroupedFingerprints&) const = default;
};

sched::SchedConfig PartitionedConfig(int cpus) {
  sched::SchedConfig config = TestConfig(cpus);
  config.shard_steal = sched::ShardStealPolicy::kNone;
  config.shard_rebalance_period = 0;
  config.shard_coupling = 0.0;
  return config;
}

GroupedFingerprints RunPartitioned(int workers, int cpus) {
  auto scheduler = CreateScheduler(SchedKind::kShardedSfs, PartitionedConfig(cpus));
  std::vector<common::Fnv1a> run_fps(static_cast<std::size_t>(cpus));
  std::vector<common::Fnv1a> life_fps(static_cast<std::size_t>(cpus));
  auto run_hooks = [&](auto& engine) {
    engine.RunUntil(kHorizon);
  };
  GroupedFingerprints result;
  if (workers == 0) {
    Engine engine(*scheduler);
    engine.SetRunIntervalHook([&run_fps](Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
      common::Fnv1a& fp = run_fps[static_cast<std::size_t>(cpu)];
      fp.Mix(static_cast<std::uint64_t>(start));
      fp.Mix(static_cast<std::uint64_t>(len));
      fp.Mix(static_cast<std::uint64_t>(tid));
    });
    engine.SetSchedEventHook([&life_fps, cpus](SchedEvent event, const Task& task, Tick now) {
      common::Fnv1a& fp = life_fps[static_cast<std::size_t>(task.tid() % cpus)];
      fp.Mix(static_cast<std::uint64_t>(event));
      fp.Mix(static_cast<std::uint64_t>(task.tid()));
      fp.Mix(static_cast<std::uint64_t>(now));
    });
    AddWorkload(engine, cpus, /*hint=*/true, /*churn=*/false);
    run_hooks(engine);
    result.dispatches = engine.dispatches();
  } else {
    ParallelEngineConfig config;
    config.workers = workers;
    config.epoch = Msec(10);
    ParallelEngine engine(*scheduler, config);
    engine.SetRunIntervalHook(
        [&run_fps](int /*worker*/, Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
          common::Fnv1a& fp = run_fps[static_cast<std::size_t>(cpu)];
          fp.Mix(static_cast<std::uint64_t>(start));
          fp.Mix(static_cast<std::uint64_t>(len));
          fp.Mix(static_cast<std::uint64_t>(tid));
        });
    engine.SetSchedEventHook(
        [&life_fps, cpus](int /*worker*/, SchedEvent event, const Task& task, Tick now) {
          common::Fnv1a& fp = life_fps[static_cast<std::size_t>(task.tid() % cpus)];
          fp.Mix(static_cast<std::uint64_t>(event));
          fp.Mix(static_cast<std::uint64_t>(task.tid()));
          fp.Mix(static_cast<std::uint64_t>(now));
        });
    AddWorkload(engine, cpus, /*hint=*/true, /*churn=*/false);
    run_hooks(engine);
    result.dispatches = engine.dispatches();
    result.mailed = engine.mailed_wakeups();
  }
  for (const auto& fp : run_fps) {
    result.per_cpu_run.push_back(fp.value());
  }
  for (const auto& fp : life_fps) {
    result.per_home_life.push_back(fp.value());
  }
  return result;
}

TEST(ParallelEnginePartitionedTest, GroupStreamsMatchSerialOracleAtEveryWorkerCount) {
  const GroupedFingerprints oracle = RunPartitioned(/*workers=*/0, kCpus);
  for (const int workers : {1, 2, 4}) {
    GroupedFingerprints parallel = RunPartitioned(workers, kCpus);
    EXPECT_EQ(parallel.mailed, 0) << "partitioned runs must not mail";
    parallel.mailed = 0;
    EXPECT_EQ(parallel, oracle) << "workers=" << workers;
  }
}

TEST(ParallelEnginePartitionedTest, RerunsAreDeterministic) {
  const GroupedFingerprints first = RunPartitioned(/*workers=*/2, kCpus);
  const GroupedFingerprints second = RunPartitioned(/*workers=*/2, kCpus);
  EXPECT_EQ(first, second);
}

// --- workers > 1, unpartitioned: conservation + mailboxes --------------------

struct Conservation {
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
};

// Hintless sleepers on a sharded policy: arrivals round-robin across workers
// while the scheduler places by load, so arrive-asleep wakeups cross worker
// boundaries through the mailboxes.  Weights change and a task dies between
// RunUntil segments (quiescent surgery).  TSan target.
TEST(ParallelEngineStressTest, HintlessShardedRunConservesTasksAndExercisesMail) {
  auto scheduler = CreateScheduler(SchedKind::kShardedSfs, TestConfig(kCpus));
  ParallelEngineConfig config;
  config.workers = kCpus;
  config.epoch = Msec(5);
  ParallelEngine engine(*scheduler, config);

  std::vector<Conservation> per_worker(static_cast<std::size_t>(kCpus));
  engine.SetSchedEventHook(
      [&per_worker](int worker, SchedEvent event, const Task&, Tick) {
        if (event == SchedEvent::kArrival) {
          ++per_worker[static_cast<std::size_t>(worker)].arrivals;
        } else if (event == SchedEvent::kDeparture) {
          ++per_worker[static_cast<std::size_t>(worker)].departures;
        }
      });

  ThreadId next_tid = 1;
  for (int i = 0; i < 2; ++i) {
    engine.AddTaskAt(0, workload::MakeInf(next_tid++, 1.0 + i, "hog"));
  }
  for (int i = 0; i < 24; ++i) {
    workload::Interact::Params params;
    params.mean_think = Msec(5 + 2 * i);
    params.burst = Usec(500 + 100 * i);
    params.seed = 31u + static_cast<std::uint64_t>(i);
    engine.AddTaskAt(Msec(3 * i),
                     workload::MakeInteract(next_tid++, 1.0 + i % 5, params, nullptr, "sleeper"));
  }
  for (int i = 0; i < 8; ++i) {
    engine.AddTaskAt(Msec(40 * i),
                     workload::MakeFixedWork(next_tid++, 2.0, Msec(60), "short"));
  }
  const int total_tasks = static_cast<int>(next_tid) - 1;

  // Segmented run with quiescent surgery between segments.
  engine.RunUntil(Sec(1));
  engine.scheduler().SetWeight(1, 9.0);
  engine.RunUntil(Sec(2));
  if (engine.HasTask(2) && engine.task(2).state() != Task::State::kExited) {
    engine.KillTask(2);
  }
  engine.RunUntil(Sec(4));

  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  for (const Conservation& c : per_worker) {
    arrivals += c.arrivals;
    departures += c.departures;
  }
  std::int64_t live = 0;
  engine.ForEachTask([&live](const Task& task) {
    if (task.state() != Task::State::kNew && task.state() != Task::State::kExited) {
      ++live;
    }
  });
  EXPECT_EQ(arrivals, total_tasks);
  EXPECT_EQ(arrivals, departures + live);
  // Every dispatch is eventually charged as a run interval except tasks still
  // on-CPU at the horizon (at most one per simulated processor).
  EXPECT_GT(engine.dispatches(), 0);
  EXPECT_GT(engine.mailed_wakeups(), 0) << "hintless sharded run should cross workers";
  EXPECT_GT(engine.epochs(), 0);
}

// Flat SFS at workers > 1: a single global dispatch mutex serializes the
// scheduler, wakeups never mail, conservation still holds.  TSan target.
TEST(ParallelEngineStressTest, FlatPolicyManyWorkersConserves) {
  auto scheduler = CreateScheduler(SchedKind::kSfs, TestConfig(kCpus));
  ParallelEngineConfig config;
  config.workers = kCpus;
  config.epoch = Msec(5);
  ParallelEngine engine(*scheduler, config);

  std::vector<std::int64_t> arrivals(static_cast<std::size_t>(kCpus));
  std::vector<std::int64_t> departures(static_cast<std::size_t>(kCpus));
  engine.SetSchedEventHook(
      [&arrivals, &departures](int worker, SchedEvent event, const Task&, Tick) {
        if (event == SchedEvent::kArrival) {
          ++arrivals[static_cast<std::size_t>(worker)];
        } else if (event == SchedEvent::kDeparture) {
          ++departures[static_cast<std::size_t>(worker)];
        }
      });

  ThreadId next_tid = 1;
  for (int i = 0; i < 12; ++i) {
    workload::Interact::Params params;
    params.mean_think = Msec(4 + i);
    params.burst = Msec(1);
    params.seed = 101u + static_cast<std::uint64_t>(i);
    engine.AddTaskAt(Msec(i), workload::MakeInteract(next_tid++, 1.0, params, nullptr, "s"));
  }
  for (int i = 0; i < 6; ++i) {
    engine.AddTaskAt(Msec(30 * i),
                     workload::MakeFixedWork(next_tid++, 1.0, Msec(40), "short"));
  }
  const int total_tasks = static_cast<int>(next_tid) - 1;
  engine.RunUntil(Sec(3));

  std::int64_t arrived = 0;
  std::int64_t departed = 0;
  for (int w = 0; w < kCpus; ++w) {
    arrived += arrivals[static_cast<std::size_t>(w)];
    departed += departures[static_cast<std::size_t>(w)];
  }
  std::int64_t live = 0;
  engine.ForEachTask([&live](const Task& task) {
    if (task.state() != Task::State::kNew && task.state() != Task::State::kExited) {
      ++live;
    }
  });
  EXPECT_EQ(arrived, total_tasks);
  EXPECT_EQ(arrived, departed + live);
  EXPECT_EQ(engine.mailed_wakeups(), 0) << "flat policies keep every wakeup local";
}

// --- auto-grow ---------------------------------------------------------------

// No ReserveTasks, sparse and out-of-order tids: the tid->slot index must
// auto-grow geometrically and stay correct.
TEST(ParallelEngineGrowthTest, SparseTidsWithoutReserve) {
  auto scheduler = CreateScheduler(SchedKind::kSfs, TestConfig(2));
  ParallelEngine engine(*scheduler);
  const ThreadId tids[] = {5000, 3, 1200, 77, 999999, 42};
  for (const ThreadId tid : tids) {
    engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, "t"));
  }
  engine.RunUntil(Sec(1));
  Tick total = 0;
  for (const ThreadId tid : tids) {
    ASSERT_TRUE(engine.HasTask(tid));
    total += engine.ServiceIncludingRunning(tid);
  }
  EXPECT_EQ(total, 2 * Sec(1));  // 2 CPUs fully shared among the 6 tasks
}

}  // namespace
}  // namespace sfs::sim

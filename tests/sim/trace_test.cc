// Tests for the schedule trace recorder and the "spurt" dynamics the paper uses
// to explain Figure 5 (Section 4.3).

#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::sim {
namespace {

using sched::SchedConfig;
using sched::SchedKind;
using sched::ThreadId;

SchedConfig Config(int cpus, Tick quantum = kDefaultQuantum) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = quantum;
  return config;
}

TEST(TraceTest, RecordsRunIntervals) {
  auto scheduler = CreateScheduler(SchedKind::kSfs, Config(1, Msec(100)));
  Engine engine(*scheduler);
  TraceRecorder trace(engine);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.RunUntil(Sec(1));
  // ~10 quanta of 100 ms over 1 s on one CPU.
  EXPECT_GE(trace.intervals().size(), 9u);
  Tick total = 0;
  for (const auto& iv : trace.intervals()) {
    EXPECT_GT(iv.length, 0);
    total += iv.length;
  }
  EXPECT_LE(total, Sec(1));
}

TEST(TraceTest, SoloThreadIsOneLongSpurt) {
  auto scheduler = CreateScheduler(SchedKind::kSfs, Config(1, Msec(100)));
  Engine engine(*scheduler);
  TraceRecorder trace(engine);
  engine.AddTaskAt(0, workload::MakeFixedWork(1, 1.0, Sec(1), "solo"));
  engine.RunUntil(Sec(2));
  // Re-picked at every quantum boundary with no competitor: one 1 s spurt.
  EXPECT_EQ(trace.MaxSpurt(1), Sec(1));
  EXPECT_EQ(trace.SpurtCount(1), 1);
}

TEST(TraceTest, AlternatingThreadsHaveQuantumSpurts) {
  auto scheduler = CreateScheduler(SchedKind::kSfs, Config(1, Msec(100)));
  Engine engine(*scheduler);
  TraceRecorder trace(engine);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.RunUntil(Sec(2));
  // Equal weights alternate every quantum: spurts never exceed one quantum.
  EXPECT_LE(trace.MaxSpurt(1), Msec(100));
  EXPECT_LE(trace.MaxSpurt(2), Msec(100));
}

// The paper's Section 4.3 mechanism: "SFQ schedules threads in 'spurts'" —
// the high-weight thread T1 occupies a processor continuously for long
// stretches under SFQ; SFS interleaves far more finely at the same workload.
TEST(TraceTest, SfqSpurtsLongerThanSfsInFig5Workload) {
  // The full Figure 5 workload, including the short-job chain: it is the churn
  // that distinguishes the policies (a static mix lets the high-weight thread
  // hold the virtual-time floor and spurt under both).
  auto run = [](SchedKind kind) {
    auto scheduler = CreateScheduler(kind, Config(2));
    Engine engine(*scheduler);
    auto trace = std::make_unique<TraceRecorder>(engine);
    ThreadId next_tid = 1;
    engine.AddTaskAt(0, workload::MakeInf(next_tid++, 20.0, "T1"));
    for (int i = 0; i < 20; ++i) {
      engine.AddTaskAt(0, workload::MakeInf(next_tid++, 1.0, "T2-21"));
    }
    engine.SetExitHook([&next_tid](Engine& e, Task& task) {
      if (task.label() == "T_short") {
        e.AddTaskAt(e.now(), workload::MakeFixedWork(next_tid++, 5.0, Msec(300), "T_short"));
      }
    });
    engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 5.0, Msec(300), "T_short"));
    engine.RunUntil(Sec(30));
    return trace->MaxSpurt(1);
  };
  const Tick sfq_spurt = run(SchedKind::kSfq);
  const Tick sfs_spurt = run(SchedKind::kSfs);
  // Under SFQ, T1 runs in multi-second spurts while the others' start tags
  // catch up; SFS breaks the monopoly into much shorter stretches.
  EXPECT_GT(sfq_spurt, Sec(2));
  EXPECT_LT(sfs_spurt, sfq_spurt / 2);
}

TEST(TraceTest, MaxSpurtInRangeAggregatesGroup) {
  auto scheduler = CreateScheduler(SchedKind::kSfs, Config(1, Msec(100)));
  Engine engine(*scheduler);
  TraceRecorder trace(engine);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.RunUntil(Sec(1));
  EXPECT_EQ(trace.MaxSpurtInRange(1, 2), std::max(trace.MaxSpurt(1), trace.MaxSpurt(2)));
  EXPECT_EQ(trace.MaxSpurtInRange(100, 200), 0);
}

}  // namespace
}  // namespace sfs::sim

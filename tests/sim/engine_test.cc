// Unit tests for the discrete-event SMP engine.

#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sched/round_robin.h"
#include "src/sched/sfs.h"
#include "src/sched/sharded.h"
#include "src/workload/workloads.h"

namespace sfs::sim {
namespace {

using sched::SchedConfig;

SchedConfig Config(int cpus, Tick quantum = kDefaultQuantum) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = quantum;
  return config;
}

TEST(EngineTest, SingleComputeTaskGetsWholeCpu) {
  sched::Sfs scheduler(Config(1));
  Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "t"));
  engine.RunUntil(Sec(1));
  EXPECT_EQ(engine.ServiceIncludingRunning(1), Sec(1));
  EXPECT_EQ(engine.idle_time(), 0);
}

TEST(EngineTest, TwoTasksOneCpuSplitEvenly) {
  sched::Sfs scheduler(Config(1));
  Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.RunUntil(Sec(10));
  EXPECT_NEAR(static_cast<double>(engine.ServiceIncludingRunning(1)),
              static_cast<double>(engine.ServiceIncludingRunning(2)),
              static_cast<double>(kDefaultQuantum));
}

TEST(EngineTest, TwoCpusRunTwoTasksInParallel) {
  sched::Sfs scheduler(Config(2));
  Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.RunUntil(Sec(1));
  EXPECT_EQ(engine.ServiceIncludingRunning(1), Sec(1));
  EXPECT_EQ(engine.ServiceIncludingRunning(2), Sec(1));
}

TEST(EngineTest, LateArrivalStartsOnTime) {
  sched::Sfs scheduler(Config(2));
  Engine engine(scheduler);
  engine.AddTaskAt(Sec(1), workload::MakeInf(1, 1.0, "late"));
  engine.RunUntil(Sec(2));
  EXPECT_EQ(engine.ServiceIncludingRunning(1), Sec(1));
  EXPECT_EQ(engine.idle_time(), 3 * Sec(1));  // both CPUs idle 1s + one idle 1s
}

TEST(EngineTest, FixedWorkTaskExitsAfterConsumingBudget) {
  sched::Sfs scheduler(Config(1));
  Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeFixedWork(1, 1.0, Msec(300), "short"));
  int exits = 0;
  engine.SetExitHook([&exits](Engine&, Task& task) {
    ++exits;
    EXPECT_EQ(task.service(), Msec(300));
  });
  engine.RunUntil(Sec(1));
  EXPECT_EQ(exits, 1);
  EXPECT_EQ(engine.task(1).state(), Task::State::kExited);
  EXPECT_EQ(engine.Service(1), Msec(300));
}

TEST(EngineTest, QuantumSlicesLongBurst) {
  // One CPU, two tasks: dispatch counts show quantum-granular interleaving.
  sched::Sfs scheduler(Config(1, Msec(100)));
  Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.RunUntil(Sec(1));
  // 10 quanta of 100 ms over 1 s.
  EXPECT_GE(engine.dispatches(), 10);
  EXPECT_LE(engine.dispatches(), 12);
}

TEST(EngineTest, BlockingTaskYieldsCpu) {
  sched::Sfs scheduler(Config(1));
  Engine engine(scheduler);
  common::SampleSet responses;
  workload::Interact::Params params;
  params.mean_think = Msec(50);
  params.burst = Msec(5);
  engine.AddTaskAt(0, workload::MakeInteract(1, 1.0, params, &responses, "i"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "bg"));
  engine.RunUntil(Sec(10));
  // The interactive task used far less CPU than the hog but did get service.
  EXPECT_GT(engine.Service(1), 0);
  EXPECT_LT(engine.Service(1), Sec(2));
  EXPECT_GT(engine.ServiceIncludingRunning(2), Sec(7));
  EXPECT_GT(responses.count(), 50u);
}

TEST(EngineTest, WorkConservation) {
  // Total service + idle == capacity, with context switches free by default.
  sched::Sfs scheduler(Config(2));
  Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.AddTaskAt(0, workload::MakeInf(3, 1.0, "c"));
  engine.RunUntil(Sec(5));
  const Tick total = engine.ServiceIncludingRunning(1) + engine.ServiceIncludingRunning(2) +
                     engine.ServiceIncludingRunning(3);
  EXPECT_EQ(total + engine.idle_time(), 2 * Sec(5));
  EXPECT_EQ(engine.idle_time(), 0);
}

TEST(EngineTest, ContextSwitchCostConsumesCapacity) {
  EngineConfig config;
  config.context_switch_cost = Msec(1);
  sched::Sfs scheduler(Config(1, Msec(100)));
  Engine engine(scheduler, config);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.RunUntil(Sec(1));
  const Tick total = engine.ServiceIncludingRunning(1) + engine.ServiceIncludingRunning(2);
  EXPECT_GT(engine.total_context_switch_cost(), 0);
  EXPECT_EQ(total + engine.total_context_switch_cost() + engine.idle_time(), Sec(1));
}

TEST(EngineTest, KillRunningTask) {
  sched::Sfs scheduler(Config(1));
  Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.RunUntil(Sec(1));
  engine.KillTask(1);
  EXPECT_EQ(engine.task(1).state(), Task::State::kExited);
  const Tick before = engine.Service(2);
  engine.RunUntil(Sec(2));
  // Task 2 now owns the whole CPU.
  EXPECT_EQ(engine.ServiceIncludingRunning(2) - before, Sec(1));
}

TEST(EngineTest, KillRunningTaskOnShardedSchedulerStealsToRefill) {
  // Three equal hogs on 2 sharded CPUs: threads 1 and 3 share shard 0, thread
  // 2 owns shard 1.  Killing thread 2 *while it is running* must charge it,
  // remove it, and refill CPU 1 by stealing from shard 0 — the kill lands on a
  // currently-running thread and the refill crosses shards.
  sched::Sharded<sched::Sfs> scheduler(Config(2));
  Engine engine(scheduler);
  for (sched::ThreadId tid = 1; tid <= 3; ++tid) {
    engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, "hog"));
  }
  engine.RunUntil(Sec(1));
  ASSERT_EQ(engine.task(2).state(), Task::State::kRunning);
  ASSERT_EQ(engine.steals(), 0);  // both shards were self-sufficient so far
  engine.KillTask(2);
  EXPECT_EQ(engine.task(2).state(), Task::State::kExited);
  EXPECT_EQ(engine.steals(), 1);  // the freed CPU pulled from shard 0
  EXPECT_EQ(scheduler.steals(), 1);
  const Tick before_1 = engine.ServiceIncludingRunning(1);
  const Tick before_3 = engine.ServiceIncludingRunning(3);
  engine.RunUntil(Sec(2));
  // Two survivors, two CPUs: each owns one from here on, no idling.
  EXPECT_EQ(engine.ServiceIncludingRunning(1) - before_1, Sec(1));
  EXPECT_EQ(engine.ServiceIncludingRunning(3) - before_3, Sec(1));
  EXPECT_EQ(engine.idle_time(), 0);
}

TEST(EngineTest, KillBlockedTaskIgnoresStaleWakeup) {
  sched::Sfs scheduler(Config(1));
  Engine engine(scheduler);
  common::SampleSet responses;
  workload::Interact::Params params;
  params.mean_think = Msec(100);
  engine.AddTaskAt(0, workload::MakeInteract(1, 1.0, params, &responses, "i"));
  engine.RunUntil(Msec(10));  // it is blocked (thinking) now
  ASSERT_EQ(engine.task(1).state(), Task::State::kBlocked);
  engine.KillTask(1);
  EXPECT_EQ(engine.task(1).state(), Task::State::kExited);
  engine.RunUntil(Sec(1));  // the queued wakeup must be ignored without crashing
}

TEST(EngineTest, KillTaskBeforeArrival) {
  sched::Sfs scheduler(Config(1));
  Engine engine(scheduler);
  engine.AddTaskAt(Sec(1), workload::MakeInf(1, 1.0, "late"));
  engine.KillTask(1);
  engine.RunUntil(Sec(2));
  EXPECT_EQ(engine.Service(1), 0);
}

TEST(EngineTest, PeriodicHookFiresAtPeriod) {
  sched::Sfs scheduler(Config(1));
  Engine engine(scheduler);
  std::vector<Tick> fired;
  engine.AddPeriodicHook(Msec(250), [&fired](Engine& e) { fired.push_back(e.now()); });
  engine.RunUntil(Sec(1));
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0], Msec(250));
  EXPECT_EQ(fired[3], Msec(1000));
}

TEST(EngineTest, ExitHookChainsNewTasks) {
  sched::Sfs scheduler(Config(1));
  Engine engine(scheduler);
  sched::ThreadId next_tid = 2;
  engine.SetExitHook([&next_tid](Engine& e, Task& task) {
    if (task.label() == "chain" && next_tid <= 4) {
      e.AddTaskAt(e.now(), workload::MakeFixedWork(next_tid++, 1.0, Msec(100), "chain"));
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(1, 1.0, Msec(100), "chain"));
  engine.RunUntil(Sec(1));
  // Tasks 1..4 each ran 100 ms back to back.
  EXPECT_EQ(engine.Service(1), Msec(100));
  EXPECT_EQ(engine.Service(4), Msec(100));
}

TEST(EngineTest, SchedEventHookSeesLifecycle) {
  sched::Sfs scheduler(Config(1));
  Engine engine(scheduler);
  int arrivals = 0;
  int departures = 0;
  int blocks = 0;
  int wakeups = 0;
  engine.SetSchedEventHook([&](SchedEvent event, const Task&, Tick) {
    switch (event) {
      case SchedEvent::kArrival:
        ++arrivals;
        break;
      case SchedEvent::kDeparture:
        ++departures;
        break;
      case SchedEvent::kBlock:
        ++blocks;
        break;
      case SchedEvent::kWakeup:
        ++wakeups;
        break;
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(1, 1.0, Msec(50), "w"));
  common::SampleSet responses;
  workload::Interact::Params params;
  engine.AddTaskAt(0, workload::MakeInteract(2, 1.0, params, &responses, "i"));
  engine.RunUntil(Sec(2));
  EXPECT_EQ(arrivals, 2);
  EXPECT_EQ(departures, 1);
  EXPECT_GT(blocks, 2);
  EXPECT_GT(wakeups, 2);
}

TEST(EngineTest, WakeupPreemptsLongRunner) {
  // SFS suggests preemption for a woken zero-surplus thread against a runner
  // deep into its quantum.
  sched::Sfs scheduler(Config(1, Msec(200)));
  Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "hog"));
  common::SampleSet responses;
  workload::Interact::Params params;
  params.mean_think = Msec(70);
  params.burst = Msec(2);
  params.seed = 3;
  engine.AddTaskAt(0, workload::MakeInteract(2, 1.0, params, &responses, "i"));
  engine.RunUntil(Sec(20));
  EXPECT_GT(engine.preemptions(), 10);
  // Mean response far below the 200 ms quantum thanks to wakeup preemption.
  EXPECT_LT(responses.mean(), 30.0);
}

TEST(EngineTest, CacheRestoreCostChargedOnColdDispatch) {
  EngineConfig config;
  config.cache_restore_per_kb = Usec(10);
  sched::Sfs scheduler(Config(1, Msec(100)));
  Engine engine(scheduler, config);
  auto a = workload::MakeInf(1, 1.0, "a");
  a->set_working_set_kb(64);
  auto b = workload::MakeInf(2, 1.0, "b");
  b->set_working_set_kb(64);
  engine.AddTaskAt(0, std::move(a));
  engine.AddTaskAt(0, std::move(b));
  engine.RunUntil(Sec(1));
  // Alternating tasks on one CPU: every dispatch after the first is a switch;
  // same-CPU returns cost half of 640us each.
  EXPECT_GT(engine.total_context_switch_cost(), 0);
  const Tick total = engine.ServiceIncludingRunning(1) + engine.ServiceIncludingRunning(2);
  EXPECT_EQ(total + engine.total_context_switch_cost() + engine.idle_time(), Sec(1));
}

TEST(EngineTest, BackToBackRedispatchIsFree) {
  EngineConfig config;
  config.context_switch_cost = Msec(1);
  config.cache_restore_per_kb = Usec(10);
  sched::Sfs scheduler(Config(1, Msec(100)));
  Engine engine(scheduler, config);
  auto solo = workload::MakeInf(1, 1.0, "solo");
  solo->set_working_set_kb(64);
  engine.AddTaskAt(0, std::move(solo));
  engine.RunUntil(Sec(1));
  // One cold start (1ms admin + 64KB * 10us cache fill), then re-picked at each
  // quantum boundary with no competitor: no further switch cost.
  EXPECT_EQ(engine.total_context_switch_cost(), Msec(1) + Usec(640));
  EXPECT_EQ(engine.ServiceIncludingRunning(1), Sec(1) - Msec(1) - Usec(640));
}

TEST(EngineTest, ArrivalPreemptionKnob) {
  auto preemptions = [](bool preempt_on_arrival) {
    EngineConfig config;
    config.preempt_on_arrival = preempt_on_arrival;
    sched::Sfs scheduler(Config(1, Msec(200)));
    Engine engine(scheduler, config);
    engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "hog"));
    // A stream of arrivals mid-quantum.
    for (sched::ThreadId tid = 2; tid <= 11; ++tid) {
      engine.AddTaskAt(Msec(100) * (tid - 1) + Msec(50),
                       workload::MakeFixedWork(tid, 1.0, Msec(20), "short"));
    }
    engine.RunUntil(Sec(3));
    return engine.preemptions();
  };
  EXPECT_EQ(preemptions(false), 0);
  EXPECT_GT(preemptions(true), 0);
}

TEST(EngineTest, MigrationsCountedAcrossCpus) {
  sched::Sfs scheduler(Config(2, Msec(50)));
  Engine engine(scheduler);
  for (sched::ThreadId tid = 1; tid <= 5; ++tid) {
    engine.AddTaskAt(0, workload::MakeInf(tid, static_cast<double>(tid), "t"));
  }
  engine.RunUntil(Sec(10));
  EXPECT_GT(engine.migrations(), 0);
}

TEST(EngineTest, DeterministicReplay) {
  auto run = [] {
    sched::Sfs scheduler(Config(2));
    Engine engine(scheduler);
    for (sched::ThreadId tid = 1; tid <= 5; ++tid) {
      workload::CompileJob::Params params;
      params.seed = static_cast<std::uint64_t>(tid);
      engine.AddTaskAt(0, workload::MakeCompileJob(tid, 1.0, params, "gcc"));
    }
    engine.RunUntil(Sec(30));
    std::vector<Tick> services;
    for (sched::ThreadId tid = 1; tid <= 5; ++tid) {
      services.push_back(engine.ServiceIncludingRunning(tid));
    }
    return services;
  };
  EXPECT_EQ(run(), run());
}

// The tid->slot index auto-grows geometrically: a monotone stream of fresh
// tids without ReserveTasks (exit-hook churn is exactly this shape) must stay
// linear, and sparse out-of-order tids must resolve correctly after growth.
TEST(EngineTest, SparseTidsAutoGrowWithoutReserve) {
  sched::Sfs scheduler(Config(2));
  Engine engine(scheduler);
  const sched::ThreadId tids[] = {4096, 1, 70000, 9, 300};
  for (const sched::ThreadId tid : tids) {
    engine.AddTaskAt(0, workload::MakeInf(tid, 1.0, "t"));
  }
  engine.RunUntil(Sec(1));
  Tick total = 0;
  for (const sched::ThreadId tid : tids) {
    ASSERT_TRUE(engine.HasTask(tid));
    total += engine.ServiceIncludingRunning(tid);
  }
  EXPECT_EQ(total, 2 * Sec(1));
}

TEST(EngineTest, RoundRobinAlternatesFairly) {
  sched::RoundRobin scheduler(Config(1, Msec(50)));
  Engine engine(scheduler);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.AddTaskAt(0, workload::MakeInf(3, 1.0, "c"));
  engine.RunUntil(Sec(3));
  for (sched::ThreadId tid = 1; tid <= 3; ++tid) {
    EXPECT_NEAR(static_cast<double>(engine.ServiceIncludingRunning(tid)),
                static_cast<double>(Sec(1)), static_cast<double>(Msec(100)));
  }
}

}  // namespace
}  // namespace sfs::sim

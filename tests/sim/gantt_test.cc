// Unit tests for the ASCII Gantt renderer.

#include "src/sim/gantt.h"

#include <gtest/gtest.h>

#include "src/sched/sfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace sfs::sim {
namespace {

TEST(GanttTest, SoloThreadIsSolidRow) {
  sched::SchedConfig config;
  config.num_cpus = 1;
  sched::Sfs scheduler(config);
  Engine engine(scheduler);
  TraceRecorder trace(engine);
  engine.AddTaskAt(0, workload::MakeFixedWork(1, 1.0, Sec(1), "solo"));
  engine.RunUntil(Sec(1));

  GanttOptions options;
  options.from = 0;
  options.to = Sec(1);
  options.width = 20;
  options.rows.emplace_back(1, "solo");
  const std::string out = RenderGantt(trace, options);
  EXPECT_EQ(out, "solo |####################|\n");
}

TEST(GanttTest, IdleHalfIsBlank) {
  sched::SchedConfig config;
  config.num_cpus = 1;
  sched::Sfs scheduler(config);
  Engine engine(scheduler);
  TraceRecorder trace(engine);
  engine.AddTaskAt(0, workload::MakeFixedWork(1, 1.0, Msec(500), "t"));
  engine.RunUntil(Sec(1));

  GanttOptions options;
  options.to = Sec(1);
  options.width = 10;
  options.rows.emplace_back(1, "t");
  const std::string out = RenderGantt(trace, options);
  EXPECT_EQ(out, "t |#####     |\n");
}

TEST(GanttTest, AlternatingThreadsSharePartially) {
  sched::SchedConfig config;
  config.num_cpus = 1;
  config.quantum = Msec(50);
  sched::Sfs scheduler(config);
  Engine engine(scheduler);
  TraceRecorder trace(engine);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "a"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "b"));
  engine.RunUntil(Sec(1));

  GanttOptions options;
  options.to = Sec(1);
  options.width = 10;  // 100ms per column = one a-quantum + one b-quantum
  options.rows.emplace_back(1, "a");
  options.rows.emplace_back(2, "b");
  const std::string out = RenderGantt(trace, options);
  // Every column shows ~50% occupancy for both threads.
  EXPECT_EQ(out, "a |::::::::::|\nb |::::::::::|\n");
}

TEST(GanttTest, UnknownThreadsAndEmptyWindow) {
  sched::SchedConfig config;
  config.num_cpus = 1;
  sched::Sfs scheduler(config);
  Engine engine(scheduler);
  TraceRecorder trace(engine);
  engine.RunUntil(Msec(10));
  GanttOptions options;
  options.rows.emplace_back(99, "ghost");
  EXPECT_EQ(RenderGantt(trace, options), "");  // no intervals at all -> to == 0
}

TEST(GanttTest, LabelsPadToSameWidth) {
  sched::SchedConfig config;
  config.num_cpus = 2;
  sched::Sfs scheduler(config);
  Engine engine(scheduler);
  TraceRecorder trace(engine);
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "x"));
  engine.AddTaskAt(0, workload::MakeInf(2, 1.0, "y"));
  engine.RunUntil(Msec(400));
  GanttOptions options;
  options.to = Msec(400);
  options.width = 4;
  options.rows.emplace_back(1, "ab");
  options.rows.emplace_back(2, "abcdef");
  const std::string out = RenderGantt(trace, options);
  // Both rows align at the same '|' column.
  EXPECT_NE(out.find("ab     |"), std::string::npos);
  EXPECT_NE(out.find("abcdef |"), std::string::npos);
}

}  // namespace
}  // namespace sfs::sim

// Video server scenario (paper Section 4.4, Figure 6(b)): a streaming media
// server decodes video while batch compilations run in the background.
//
// Compares SFS against the time-sharing baseline: with SFS, the decoder's
// frame rate survives a parallel `make -j8`; with time sharing it collapses.
//
//   $ ./examples/video_server

#include <iostream>

#include "src/common/table.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

namespace {

double DecoderFps(sfs::sched::SchedKind kind, int compile_jobs) {
  using namespace sfs;
  sched::SchedConfig config;
  config.num_cpus = 2;
  auto scheduler = sched::CreateScheduler(kind, config);
  sim::Engine engine(*scheduler);

  // The decoder gets a large weight; the readjustment algorithm turns that into
  // "one whole processor".  30 fps clip, 30 ms of CPU per frame.
  workload::MpegDecoder::Params mpeg;
  engine.AddTaskAt(0, workload::MakeMpeg(1, 100.0, mpeg, "decoder"));
  for (int i = 0; i < compile_jobs; ++i) {
    workload::CompileJob::Params params;
    params.seed = 42 + static_cast<std::uint64_t>(i);
    engine.AddTaskAt(0,
                     workload::MakeCompileJob(2 + static_cast<sfs::sched::ThreadId>(i), 1.0,
                                              params, "gcc"));
  }
  engine.RunUntil(Sec(60));
  auto& decoder = static_cast<workload::MpegDecoder&>(engine.task(1).behavior());
  return static_cast<double>(decoder.frames_decoded()) / 60.0;
}

}  // namespace

int main() {
  using sfs::common::Table;
  using sfs::sched::SchedKind;

  std::cout << "=== Video server: MPEG decoding vs `make -j` (Figure 6(b) scenario) ===\n\n";
  Table table({"make -j", "SFS fps", "timeshare fps"});
  for (const int jobs : {0, 2, 4, 8}) {
    table.AddRow({Table::Cell(static_cast<std::int64_t>(jobs)),
                  Table::Cell(DecoderFps(SchedKind::kSfs, jobs), 1),
                  Table::Cell(DecoderFps(SchedKind::kTimeshare, jobs), 1)});
  }
  table.Print(std::cout);
  std::cout << "\nSFS pins the decoder at full rate regardless of the compile load;\n"
            << "the time-sharing scheduler lets the build steal the decoder's CPU.\n";
  return 0;
}

// Quickstart: schedule three compute-bound tasks with 1:2:4 weights on a
// dual-processor simulated machine under Surplus Fair Scheduling, and watch the
// allocation track the weights.
//
//   $ ./examples/quickstart

#include <iostream>

#include "src/common/table.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

int main() {
  using namespace sfs;

  // 1. Configure the scheduler: 2 CPUs, the paper's 200 ms quantum.
  sched::SchedConfig config;
  config.num_cpus = 2;
  config.quantum = kDefaultQuantum;
  auto scheduler = sched::CreateScheduler(sched::SchedKind::kSfs, config);

  // 2. Attach a simulated SMP machine.
  sim::Engine engine(*scheduler);

  // 3. Add workloads: three infinite compute loops with weights 1 : 2 : 4.
  //    (Weights 1:2:4 on 2 CPUs are not all feasible — 4/7 of two CPUs exceeds
  //    one processor, so the readjustment algorithm caps the heavy task at one
  //    CPU and splits the remainder 1:2.)
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "light"));
  engine.AddTaskAt(0, workload::MakeInf(2, 2.0, "medium"));
  engine.AddTaskAt(0, workload::MakeInf(3, 4.0, "heavy"));

  // 4. Run 30 simulated seconds.
  engine.RunUntil(Sec(30));

  // 5. Report CPU time received.
  common::Table table({"task", "weight", "phi (readjusted)", "CPU time (s)", "share of 2 CPUs"});
  for (sched::ThreadId tid = 1; tid <= 3; ++tid) {
    const double secs = ToSeconds(engine.ServiceIncludingRunning(tid));
    table.AddRow({std::string(engine.task(tid).label()),
                  common::Table::Cell(scheduler->GetWeight(tid), 0),
                  common::Table::Cell(scheduler->GetPhi(tid), 2),
                  common::Table::Cell(secs, 2),
                  common::Table::Cell(secs / 60.0, 3)});
  }
  table.Print(std::cout);

  std::cout << "\nThe heavy task is capped at one full processor (share 0.5); the light\n"
            << "and medium tasks split the second processor 1:2 — exactly what the\n"
            << "weight readjustment algorithm (paper Section 2.1) prescribes.\n";
  return 0;
}

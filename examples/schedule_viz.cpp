// Visualize the scheduling dynamics behind Figure 5: the first seconds of the
// short-jobs workload under SFQ and under SFS, two ways.
//
//   1. An ASCII Gantt chart on stdout: the SFQ chart shows T1's long solid
//      spurts; the SFS chart shows the fine interleaving the paper credits
//      for proportionate allocation (Section 4.3).
//   2. A Perfetto trace per scheduler (chrome trace-event JSON written next
//      to the binary as schedule_viz_<scheduler>.json), recorded by attaching
//      an obs::Trace to the engine and exported with obs::PerfettoExporter.
//
// Perfetto workflow: open https://ui.perfetto.dev, "Open trace file", pick
// schedule_viz_sfq.json.  Each simulated CPU is one track ("cpu0", "cpu1");
// run intervals are slices named after the task label, steals/rebalances are
// instant events, and the "lifecycle" track carries arrivals, departures,
// blocks and wakeups.  Timestamps are simulated microseconds (ticks), so the
// trace is byte-identical on every run — zoom into t=2s+ and T1's spurts vs
// SFS's interleaving are immediately visible.
//
//   $ ./examples/schedule_viz
//
// An optional argv[1] overrides the output directory for the JSON files.

#include <iostream>
#include <memory>
#include <string>

#include "src/obs/perfetto.h"
#include "src/obs/trace.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/sim/gantt.h"
#include "src/sim/trace.h"
#include "src/workload/workloads.h"

namespace {

using namespace sfs;

void Render(sched::SchedKind kind, const std::string& out_dir) {
  sched::SchedConfig config;
  config.num_cpus = 2;
  auto scheduler = CreateScheduler(kind, config);

  // One ring per CPU plus the lifecycle ring; 1<<16 records per ring covers
  // the full 12 s at this workload's dispatch rate without wrapping.
  obs::Trace obs_trace(config.num_cpus, /*capacity_per_ring=*/1 << 16);
  sim::EngineConfig engine_config;
  engine_config.trace = &obs_trace;
  sim::Engine engine(*scheduler, engine_config);
  sim::TraceRecorder trace(engine);

  sched::ThreadId next_tid = 1;
  engine.AddTaskAt(0, workload::MakeInf(next_tid++, 20.0, "T1"));
  for (int i = 0; i < 20; ++i) {
    engine.AddTaskAt(0, workload::MakeInf(next_tid++, 1.0, "light"));
  }
  engine.SetExitHook([&next_tid](sim::Engine& e, sim::Task& task) {
    if (task.label() == "short") {
      e.AddTaskAt(e.now(), workload::MakeFixedWork(next_tid++, 5.0, Msec(300), "short"));
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 5.0, Msec(300), "short"));
  engine.RunUntil(Sec(12));

  sim::GanttOptions options;
  options.from = Sec(2);  // skip the startup transient
  options.to = Sec(12);
  options.width = 100;
  options.rows.emplace_back(1, "T1 (w=20)");
  options.rows.emplace_back(2, "light #1");
  options.rows.emplace_back(3, "light #2");
  options.rows.emplace_back(4, "light #3");

  std::cout << "--- " << scheduler->name() << " (2s..12s, '#'=full slice, ':'=partial) ---\n"
            << RenderGantt(trace, options) << '\n';

  const std::string path = out_dir + "/schedule_viz_" + std::string(scheduler->name()) + ".json";
  if (obs::PerfettoExporter::WriteFile(obs_trace, path)) {
    std::cout << "wrote " << path << "  (open in ui.perfetto.dev; "
              << obs_trace.total_records() << " records, " << obs_trace.total_dropped()
              << " dropped)\n\n";
  } else {
    std::cout << "FAILED to write " << path << "\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  std::cout << "Figure 5 workload: T1 (w=20), 20 lights (w=1), chained 300ms shorts (w=5).\n\n";
  Render(sfs::sched::SchedKind::kSfq, out_dir);
  Render(sfs::sched::SchedKind::kSfs, out_dir);
  std::cout << "Note T1's unbroken runs under SFQ (\"spurts\", Section 4.3) versus the\n"
            << "regular gaps under SFS where other threads are interleaved.  The same\n"
            << "contrast is zoomable in the exported Perfetto traces.\n";
  return 0;
}

// Visualize the scheduling dynamics behind Figure 5: an ASCII Gantt chart of
// the first seconds of the short-jobs workload under SFQ and under SFS.  The
// SFQ chart shows T1's long solid spurts; the SFS chart shows the fine
// interleaving the paper credits for proportionate allocation (Section 4.3).
//
//   $ ./examples/schedule_viz

#include <iostream>
#include <memory>
#include <string>

#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/sim/gantt.h"
#include "src/sim/trace.h"
#include "src/workload/workloads.h"

namespace {

using namespace sfs;

void Render(sched::SchedKind kind) {
  sched::SchedConfig config;
  config.num_cpus = 2;
  auto scheduler = CreateScheduler(kind, config);
  sim::Engine engine(*scheduler);
  sim::TraceRecorder trace(engine);

  sched::ThreadId next_tid = 1;
  engine.AddTaskAt(0, workload::MakeInf(next_tid++, 20.0, "T1"));
  for (int i = 0; i < 20; ++i) {
    engine.AddTaskAt(0, workload::MakeInf(next_tid++, 1.0, "light"));
  }
  engine.SetExitHook([&next_tid](sim::Engine& e, sim::Task& task) {
    if (task.label() == "short") {
      e.AddTaskAt(e.now(), workload::MakeFixedWork(next_tid++, 5.0, Msec(300), "short"));
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 5.0, Msec(300), "short"));
  engine.RunUntil(Sec(12));

  sim::GanttOptions options;
  options.from = Sec(2);  // skip the startup transient
  options.to = Sec(12);
  options.width = 100;
  options.rows.emplace_back(1, "T1 (w=20)");
  options.rows.emplace_back(2, "light #1");
  options.rows.emplace_back(3, "light #2");
  options.rows.emplace_back(4, "light #3");

  std::cout << "--- " << scheduler->name() << " (2s..12s, '#'=full slice, ':'=partial) ---\n"
            << RenderGantt(trace, options) << '\n';
}

}  // namespace

int main() {
  std::cout << "Figure 5 workload: T1 (w=20), 20 lights (w=1), chained 300ms shorts (w=5).\n\n";
  Render(sfs::sched::SchedKind::kSfq);
  Render(sfs::sched::SchedKind::kSfs);
  std::cout << "Note T1's unbroken runs under SFQ (\"spurts\", Section 4.3) versus the\n"
            << "regular gaps under SFS where other threads are interleaved.\n";
  return 0;
}

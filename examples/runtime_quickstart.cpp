// sfs::runtime quickstart: the library in ~50 lines of user code.
//
// Links ONLY the standalone sfs::runtime target (+ the scheduler stack it
// re-exports).  Runs a blocking workload on sharded SFS through the runtime's
// targeted wake path: each CPU's dispatcher parks on its own futex-style
// slot, timer wakeups are routed to the woken thread's home shard through a
// wait-free mailbox, and each dispatch decision (mailbox drain + deferred
// charge + pick) happens under one dispatch-lock hold.
//
//   $ ./examples/runtime_quickstart
//
// Exits non-zero if the proportional split or the wake plumbing is broken,
// so CI can use it as a smoke test.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "src/runtime/executor.h"
#include "src/sched/sfs.h"
#include "src/sched/sharded.h"

int main() {
  using namespace sfs;

  // 1. A scheduler: per-CPU SFS shards with surplus-aware stealing.
  sched::SchedConfig sched_config;
  sched_config.num_cpus = 2;
  sched::Sharded<sched::Sfs> scheduler(sched_config);

  // 2. The runtime: one dispatcher thread per CPU, targeted wakeups (the
  //    default), batched decisions.
  runtime::Executor::Config config;
  config.quantum = Msec(5);
  config.batch_dispatch = true;
  runtime::Executor executor(scheduler, config);

  // 3. Tasks.  Four spinners, weights 3,1,3,1 — weight-balanced placement
  //    puts one 3:1 pair on each shard, so each pair contends...
  auto spin = [](std::chrono::microseconds d) {
    const auto end = std::chrono::steady_clock::now() + d;
    while (std::chrono::steady_clock::now() < end) {
    }
  };
  for (sched::ThreadId tid = 0; tid < 4; ++tid) {
    executor.AddTask(tid, tid % 2 == 0 ? 3.0 : 1.0, [spin] {
      spin(std::chrono::microseconds(50));
      return true;  // run until the wall limit
    });
  }
  // ...plus an interactive task that computes briefly, then blocks on
  // simulated I/O — exercising timer -> mailbox -> targeted kick -> grant.
  auto io_rounds = std::make_shared<std::atomic<int>>(0);
  executor.AddTask(4, 2.0, [spin, io_rounds]() -> runtime::Executor::WorkResult {
    spin(std::chrono::microseconds(200));
    io_rounds->fetch_add(1, std::memory_order_relaxed);
    return runtime::Executor::WorkResult::Block(Msec(2));
  });

  // 4. Run for one wall second and read the proportional split back.
  executor.Run(Sec(1));

  const Tick heavy = executor.CpuTime(0) + executor.CpuTime(2);
  const Tick light = executor.CpuTime(1) + executor.CpuTime(3);
  const double ratio = light > 0 ? static_cast<double>(heavy) / static_cast<double>(light)
                                 : 0.0;
  const auto wake = executor.wake_to_dispatch_latencies();

  std::cout << "sfs::runtime quickstart (sharded SFS, 2 CPUs, targeted wakeups)\n"
            << "  spinner w=3: " << heavy << " us CPU\n"
            << "  spinner w=1: " << light << " us CPU   (ratio " << ratio << ", want ~3)\n"
            << "  I/O task:    " << io_rounds->load() << " block/wake rounds, "
            << executor.wakeups() << " wakeups applied\n"
            << "  wake-to-dispatch p99: " << wake.Percentile(0.99) << " ns over "
            << wake.count() << " samples\n"
            << "  dispatches: " << executor.dispatches() << ", kicks: " << executor.kicks()
            << "\n";

  // Smoke gates (loose: a loaded 1-core CI host must still pass).
  if (heavy <= 0 || light <= 0 || io_rounds->load() < 10 || executor.wakeups() < 10 ||
      wake.count() == 0) {
    std::cerr << "FAIL: wake path or proportional split broken\n";
    return EXIT_FAILURE;
  }
  std::cout << "OK\n";
  return EXIT_SUCCESS;
}

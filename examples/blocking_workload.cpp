// Real threads that *sleep*: interactive tasks alternating computation with
// simulated I/O (Executor::WorkResult::Block) next to batch hogs, on the
// sharded scheduler with one dispatcher thread per CPU.
//
// Demonstrates the executor's Block/Wakeup path end to end: a blocked task
// leaves its shard, the timer thread wakes it, the wakeup may preempt a
// running hog (SuggestPreemption) or re-dispatch an idle CPU (work
// conservation), and per-shard dispatch locks keep the four dispatchers out
// of each other's way the whole time.
//
//   $ ./examples/blocking_workload

#include <array>
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>

#include "src/common/table.h"
#include "src/exec/executor.h"
#include "src/sched/factory.h"

int main() {
  using namespace sfs;

  sched::SchedConfig config;
  config.num_cpus = 4;  // four shards, four concurrent dispatcher threads
  auto scheduler = sched::CreateScheduler(sched::SchedKind::kShardedSfs, config);

  exec::Executor::Config exec_config;
  exec_config.quantum = Msec(5);
  exec::Executor executor(*scheduler, exec_config);

  // Four batch hogs (weight 1) that never yield voluntarily...
  auto hog_units = std::make_shared<std::array<std::atomic<std::int64_t>, 4>>();
  for (sched::ThreadId tid = 0; tid < 4; ++tid) {
    executor.AddTask(tid, 1.0, [hog_units, tid] {
      const auto end = std::chrono::steady_clock::now() + std::chrono::microseconds(50);
      while (std::chrono::steady_clock::now() < end) {
      }
      (*hog_units)[static_cast<std::size_t>(tid)].fetch_add(1, std::memory_order_relaxed);
      return true;
    });
  }
  // ...and four interactive tasks (weight 4) that compute ~250 us, then sleep
  // 3 ms on simulated I/O — mpeg_play against gcc, at user level.
  auto io_rounds = std::make_shared<std::array<std::atomic<std::int64_t>, 4>>();
  for (sched::ThreadId tid = 4; tid < 8; ++tid) {
    executor.AddTask(tid, 4.0, [io_rounds, tid]() -> exec::Executor::WorkResult {
      const auto end = std::chrono::steady_clock::now() + std::chrono::microseconds(250);
      while (std::chrono::steady_clock::now() < end) {
      }
      (*io_rounds)[static_cast<std::size_t>(tid - 4)].fetch_add(1, std::memory_order_relaxed);
      return exec::Executor::WorkResult::Block(Msec(3));
    });
  }

  std::cout << "Running 4 batch hogs (w=1) + 4 interactive I/O tasks (w=4)\n"
            << "on sharded-SFS, 4 shards / 4 dispatcher threads, for 2s...\n\n";
  const Tick wall = executor.Run(Sec(2));

  common::Table table({"task", "kind", "weight", "CPU time (ms)", "units / I/O rounds"});
  for (sched::ThreadId tid = 0; tid < 8; ++tid) {
    const bool hog = tid < 4;
    const std::int64_t progress =
        hog ? (*hog_units)[static_cast<std::size_t>(tid)].load()
            : (*io_rounds)[static_cast<std::size_t>(tid - 4)].load();
    table.AddRow({(hog ? "hog-" : "io-") + std::to_string(hog ? tid : tid - 4),
                  hog ? "batch" : "interactive", common::Table::Cell(hog ? 1.0 : 4.0, 0),
                  common::Table::Cell(executor.CpuTime(tid) / kTicksPerMsec),
                  common::Table::Cell(progress)});
  }
  table.Print(std::cout);

  std::cout << "\nwall time: " << ToMillis(wall) << " ms"
            << ",  dispatches: " << executor.dispatches()
            << ",  wakeups: " << executor.wakeups()
            << ",  preemptions: " << executor.preemptions() << '\n'
            << "median dispatch latency: "
            << executor.dispatch_latencies().Percentile(50) / 1000.0
            << " us,  median preempt latency: "
            << executor.preempt_latencies().Percentile(50) << " us\n"
            << "\nThe interactive tasks spend most of their life blocked, so their CPU\n"
            << "time is small regardless of weight — what their weight buys is being\n"
            << "dispatched promptly at every wakeup, which is visible in the I/O round\n"
            << "counts staying near the 3 ms cadence ceiling while the hogs soak up\n"
            << "the remaining CPU.\n";
  return 0;
}

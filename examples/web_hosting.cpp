// Web-hosting scenario from the paper's introduction: an ISP maps multiple web
// domains onto one physical server and sells each a fraction of the CPU.
//
// Three domains share a 4-CPU server at purchased shares 50% : 30% : 20%.
// Each domain runs a mix of request handlers (interactive-style) and batch jobs
// (compute-bound).  SFS delivers each domain its aggregate share regardless of
// how many threads each domain spawns — application isolation at domain
// granularity via per-thread weights.
//
//   $ ./examples/web_hosting

#include <iostream>
#include <string>

#include "src/common/table.h"
#include "src/metrics/service_sampler.h"
#include "src/sched/factory.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

int main() {
  using namespace sfs;

  sched::SchedConfig config;
  config.num_cpus = 4;
  auto scheduler = sched::CreateScheduler(sched::SchedKind::kSfs, config);
  sim::Engine engine(*scheduler);

  struct Domain {
    std::string name;
    double purchased_share;  // of the whole machine
    int batch_threads;       // the domain tries to grab CPU with this many hogs
  };
  // The "misbehaving" domain C spawns 12 batch threads despite paying for 20%.
  const Domain domains[] = {
      {"domain-A (50%)", 0.50, 3},
      {"domain-B (30%)", 0.30, 5},
      {"domain-C (20%)", 0.20, 12},
  };

  sched::ThreadId next_tid = 1;
  for (const auto& domain : domains) {
    // Split the domain's total weight across its threads: total weight per
    // domain is proportional to its purchased share.
    const double weight_per_thread =
        domain.purchased_share * 100.0 / static_cast<double>(domain.batch_threads);
    for (int i = 0; i < domain.batch_threads; ++i) {
      engine.AddTaskAt(0, workload::MakeInf(next_tid++, weight_per_thread, domain.name));
    }
  }

  metrics::ServiceSampler sampler(
      engine, Sec(1), {domains[0].name, domains[1].name, domains[2].name});
  engine.RunUntil(Sec(60));

  const double capacity = 4.0 * 60.0;  // CPU-seconds available
  common::Table table({"domain", "threads", "purchased", "received", "CPU-seconds"});
  for (const auto& domain : domains) {
    const double got = ToSeconds(sampler.Series(domain.name).back());
    table.AddRow({domain.name, common::Table::Cell(static_cast<std::int64_t>(domain.batch_threads)),
                  common::Table::Cell(domain.purchased_share * 100.0, 1) + "%",
                  common::Table::Cell(100.0 * got / capacity, 1) + "%",
                  common::Table::Cell(got, 1)});
  }
  table.Print(std::cout);

  std::cout << "\nDomain C spawned 12 threads but still receives only its purchased 20%:\n"
            << "proportional sharing isolates domains from each other's thread counts.\n";
  return 0;
}

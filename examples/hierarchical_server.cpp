// Hierarchical hosting: the web-hosting scenario done right, with scheduling
// classes instead of hand-split thread weights (compare examples/web_hosting).
//
// Each hosted domain is a class with its purchased share; inside a domain,
// threads get their own weights (a domain can prioritize its own database over
// its batch jobs without affecting the neighbours).
//
//   $ ./examples/hierarchical_server

#include <iostream>
#include <string>

#include "src/common/table.h"
#include "src/sched/hsfs.h"
#include "src/sim/engine.h"
#include "src/workload/workloads.h"

int main() {
  using namespace sfs;

  sched::SchedConfig config;
  config.num_cpus = 4;
  sched::HierarchicalSfs scheduler(config);
  sim::Engine engine(scheduler);

  // Two domains, 70% / 30%.  Domain A internally weights its database 3x its
  // two batch jobs; domain B runs four equal workers.
  scheduler.CreateClass(1, sched::kRootClass, 7.0);  // domain A
  scheduler.CreateClass(2, sched::kRootClass, 3.0);  // domain B

  sched::ThreadId tid = 1;
  const sched::ThreadId db_tid = tid;
  scheduler.RouteThread(tid, 1);
  engine.AddTaskAt(0, workload::MakeInf(tid++, 3.0, "A:database"));
  for (int i = 0; i < 2; ++i) {
    scheduler.RouteThread(tid, 1);
    engine.AddTaskAt(0, workload::MakeInf(tid++, 1.0, "A:batch"));
  }
  for (int i = 0; i < 4; ++i) {
    scheduler.RouteThread(tid, 2);
    engine.AddTaskAt(0, workload::MakeInf(tid++, 1.0, "B:worker"));
  }

  const Tick horizon = Sec(30);
  engine.RunUntil(horizon);

  const double capacity = static_cast<double>(4 * horizon);
  common::Table table({"who", "share of machine", "note"});
  table.AddRow({"domain A (w=7)",
                common::Table::Cell(
                    100.0 * static_cast<double>(scheduler.ClassService(1)) / capacity, 1) +
                    "%",
                "purchased 70%"});
  table.AddRow({"  A:database (w=3)",
                common::Table::Cell(
                    100.0 * static_cast<double>(engine.ServiceIncludingRunning(db_tid)) /
                        capacity,
                    1) +
                    "%",
                "3/5 of A, capped at 1 CPU"});
  table.AddRow({"domain B (w=3)",
                common::Table::Cell(
                    100.0 * static_cast<double>(scheduler.ClassService(2)) / capacity, 1) +
                    "%",
                "purchased 30%"});
  table.Print(std::cout);

  std::cout << "\nThe database asks for 3/5 of domain A's 2.8 CPUs (= 1.68 CPUs) but can\n"
            << "use at most one processor; the hierarchical readjustment caps it there\n"
            << "and its siblings absorb the remainder — isolation at both levels.\n";
  return 0;
}

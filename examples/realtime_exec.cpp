// Real threads, real CPU: the user-level executor runs actual std::threads under
// SFS with cooperative preemption, demonstrating proportional sharing on the
// host machine (not in the simulator).
//
//   $ ./examples/realtime_exec

#include <array>
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>

#include "src/common/table.h"
#include "src/exec/executor.h"
#include "src/sched/sfs.h"

int main() {
  using namespace sfs;

  sched::SchedConfig config;
  config.num_cpus = 2;  // two workers may hold the CPU at once
  sched::Sfs scheduler(config);

  exec::Executor::Config exec_config;
  exec_config.quantum = Msec(10);
  exec::Executor executor(scheduler, exec_config);

  // Three spinning workers with weights 1 : 2 : 4 — each work unit burns ~50 us.
  auto units = std::make_shared<std::array<std::atomic<std::int64_t>, 3>>();
  const double weights[] = {1.0, 2.0, 4.0};
  for (sched::ThreadId tid = 0; tid < 3; ++tid) {
    executor.AddTask(tid, weights[tid], [units, tid] {
      const auto end = std::chrono::steady_clock::now() + std::chrono::microseconds(50);
      while (std::chrono::steady_clock::now() < end) {
      }
      (*units)[static_cast<std::size_t>(tid)].fetch_add(1, std::memory_order_relaxed);
      return true;  // run until the wall limit
    });
  }

  std::cout << "Running 3 real threads (weights 1:2:4) on 2 virtual CPUs for 2s...\n\n";
  const Tick wall = executor.Run(Sec(2));

  common::Table table({"task", "weight", "work units", "CPU time (ms)", "share"});
  Tick total_cpu = 0;
  for (sched::ThreadId tid = 0; tid < 3; ++tid) {
    total_cpu += executor.CpuTime(tid);
  }
  for (sched::ThreadId tid = 0; tid < 3; ++tid) {
    const Tick cpu = executor.CpuTime(tid);
    table.AddRow({"worker-" + std::to_string(tid), common::Table::Cell(weights[tid], 0),
                  common::Table::Cell((*units)[static_cast<std::size_t>(tid)].load()),
                  common::Table::Cell(cpu / kTicksPerMsec),
                  common::Table::Cell(static_cast<double>(cpu) / static_cast<double>(total_cpu),
                                      3)});
  }
  table.Print(std::cout);

  std::cout << "\nwall time: " << ToMillis(wall) << " ms,  dispatches: " << executor.dispatches()
            << ",  median preempt latency: "
            << executor.preempt_latencies().Percentile(50) << " us\n"
            << "\nNote: weights 1:2:4 on 2 CPUs are infeasible for the heavy task (4/7 > 1/2).\n"
            << "The readjustment algorithm caps it at one full CPU (share 0.50) and the\n"
            << "1:2 remainder splits the other, so the expected shares are 0.17 : 0.33 : 0.50.\n";
  return 0;
}

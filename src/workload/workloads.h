// Workload behaviours mirroring the applications in the paper's evaluation
// (Section 4.1): Inf, Interact, mpeg_play, gcc, disksim and dhrystone, plus the
// fixed-length short jobs of Figure 5.  See DESIGN.md ("Substitutions") for the
// mapping from the real applications to these models.

#ifndef SFS_WORKLOAD_WORKLOADS_H_
#define SFS_WORKLOAD_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/sim/task.h"

namespace sfs::workload {

// (i) Inf: "a compute-intensive application that performs computations in an
// infinite loop".  The iteration counts plotted in Figures 4 and 5 are directly
// proportional to CPU service, which the engine accounts exactly.
class Inf : public sim::Behavior {
 public:
  sim::Action Next(Tick now) override;
};

// (vi) dhrystone: compute-bound integer benchmark.  Identical CPU demand to Inf;
// loops-per-second are derived from service via kLoopsPerUsec.
class Dhrystone : public sim::Behavior {
 public:
  // 500 MHz P-III dhrystone throughput is on the order of a loop per few cycles;
  // the constant only scales the reported numbers, not any ratio.
  static constexpr double kLoopsPerUsec = 60.0;

  sim::Action Next(Tick now) override;
};

// (v) disksim: long-running compute-bound simulation used as background load in
// Figure 6(c).
class DiskSim : public sim::Behavior {
 public:
  sim::Action Next(Tick now) override;
};

// A job that consumes exactly `total_cpu` of CPU time and exits: the T_short
// tasks of Figure 5 ("each short task ... ran for 300ms each") and the
// short-lived threads of Example 2.
class FixedWork : public sim::Behavior {
 public:
  explicit FixedWork(Tick total_cpu);

  sim::Action Next(Tick now) override;

 private:
  Tick total_cpu_;
  bool started_ = false;
};

// (ii) Interact: I/O-bound interactive application.  Sleeps for an exponential
// think time, then needs a short CPU burst per request; the response time of a
// request is (burst completion - wakeup), recorded into `responses`.
class Interact : public sim::Behavior {
 public:
  struct Params {
    Tick mean_think = Msec(100);
    Tick burst = Msec(5);
    std::uint64_t seed = 1;
  };

  Interact(const Params& params, common::SampleSet* responses);

  sim::Action Next(Tick now) override;
  void OnWake(Tick now) override;

  std::int64_t requests_served() const { return requests_served_; }

 private:
  Params params_;
  common::SampleSet* responses_;
  common::Rng rng_;
  Tick wake_time_ = 0;
  bool in_burst_ = false;
  std::int64_t requests_served_ = 0;
};

// (iii) mpeg_play: software MPEG-1 decoder.  Every frame costs `frame_cost` of
// CPU; the decoder paces itself to `period` per frame (30 fps for the paper's
// clip) and decodes continuously when it falls behind, so achieved fps tracks
// the CPU share the scheduler grants it.
class MpegDecoder : public sim::Behavior {
 public:
  struct Params {
    Tick frame_cost = Msec(30);
    Tick period = Usec(33333);  // 30 fps target
  };

  explicit MpegDecoder(const Params& params);

  sim::Action Next(Tick now) override;

  std::int64_t frames_decoded() const { return frames_decoded_; }

 private:
  Params params_;
  Tick next_release_ = 0;
  bool decoding_ = false;
  std::int64_t frames_decoded_ = 0;
};

// (iv) gcc: one compilation job of a parallel make.  Mostly CPU with short I/O
// blocking bursts (reading sources, writing objects); runs forever when
// `total_cpu` is 0 (sustained background load) or exits after consuming it.
class CompileJob : public sim::Behavior {
 public:
  struct Params {
    Tick mean_cpu_burst = Msec(40);
    Tick mean_io_block = Msec(6);
    Tick total_cpu = 0;  // 0 = endless stream of compilations
    std::uint64_t seed = 1;
  };

  explicit CompileJob(const Params& params);

  sim::Action Next(Tick now) override;

 private:
  Params params_;
  common::Rng rng_;
  Tick consumed_ = 0;
  bool computing_ = false;
  Tick current_burst_ = 0;
};

// --- task factory helpers -------------------------------------------------------

std::unique_ptr<sim::Task> MakeInf(sched::ThreadId tid, sched::Weight w, std::string label);
std::unique_ptr<sim::Task> MakeDhrystone(sched::ThreadId tid, sched::Weight w, std::string label);
std::unique_ptr<sim::Task> MakeDiskSim(sched::ThreadId tid, sched::Weight w, std::string label);
std::unique_ptr<sim::Task> MakeFixedWork(sched::ThreadId tid, sched::Weight w, Tick total_cpu,
                                         std::string label);
std::unique_ptr<sim::Task> MakeInteract(sched::ThreadId tid, sched::Weight w,
                                        const Interact::Params& params,
                                        common::SampleSet* responses, std::string label);
std::unique_ptr<sim::Task> MakeMpeg(sched::ThreadId tid, sched::Weight w,
                                    const MpegDecoder::Params& params, std::string label);
std::unique_ptr<sim::Task> MakeCompileJob(sched::ThreadId tid, sched::Weight w,
                                          const CompileJob::Params& params, std::string label);

}  // namespace sfs::workload

#endif  // SFS_WORKLOAD_WORKLOADS_H_

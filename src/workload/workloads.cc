#include "src/workload/workloads.h"

#include <algorithm>
#include <utility>

#include "src/common/assert.h"

namespace sfs::workload {

sim::Action Inf::Next(Tick now) {
  (void)now;
  return sim::Action::Compute(kTickInfinity);
}

sim::Action Dhrystone::Next(Tick now) {
  (void)now;
  return sim::Action::Compute(kTickInfinity);
}

sim::Action DiskSim::Next(Tick now) {
  (void)now;
  return sim::Action::Compute(kTickInfinity);
}

FixedWork::FixedWork(Tick total_cpu) : total_cpu_(total_cpu) { SFS_CHECK(total_cpu > 0); }

sim::Action FixedWork::Next(Tick now) {
  (void)now;
  if (started_) {
    return sim::Action::Exit();
  }
  started_ = true;
  return sim::Action::Compute(total_cpu_);
}

Interact::Interact(const Params& params, common::SampleSet* responses)
    : params_(params), responses_(responses), rng_(params.seed) {
  SFS_CHECK(params_.mean_think > 0);
  SFS_CHECK(params_.burst > 0);
}

sim::Action Interact::Next(Tick now) {
  if (in_burst_) {
    // The request's CPU burst just completed: response time = completion - wake.
    in_burst_ = false;
    ++requests_served_;
    if (responses_ != nullptr) {
      responses_->Add(ToMillis(now - wake_time_));
    }
  } else if (wake_time_ == now && now != 0) {
    // Just woke up: serve the request.
    in_burst_ = true;
    return sim::Action::Compute(params_.burst);
  }
  const Tick think =
      std::max<Tick>(1, static_cast<Tick>(rng_.Exponential(static_cast<double>(params_.mean_think))));
  return sim::Action::Block(think);
}

void Interact::OnWake(Tick now) { wake_time_ = now; }

MpegDecoder::MpegDecoder(const Params& params) : params_(params) {
  SFS_CHECK(params_.frame_cost > 0);
  SFS_CHECK(params_.period > 0);
}

sim::Action MpegDecoder::Next(Tick now) {
  if (!decoding_) {
    // Start (or resume after pacing sleep): decode the next frame.
    if (next_release_ == 0) {
      next_release_ = now;
    }
    decoding_ = true;
    return sim::Action::Compute(params_.frame_cost);
  }
  // Frame finished.
  ++frames_decoded_;
  next_release_ += params_.period;
  if (now < next_release_) {
    // Ahead of schedule: sleep until the next frame is due.
    decoding_ = false;
    return sim::Action::Block(next_release_ - now);
  }
  // Behind schedule: decode continuously (fps follows the granted CPU share).
  return sim::Action::Compute(params_.frame_cost);
}

CompileJob::CompileJob(const Params& params) : params_(params), rng_(params.seed) {
  SFS_CHECK(params_.mean_cpu_burst > 0);
  SFS_CHECK(params_.mean_io_block > 0);
}

sim::Action CompileJob::Next(Tick now) {
  (void)now;
  if (computing_) {
    // CPU burst done; account it and block for I/O.
    computing_ = false;
    consumed_ += current_burst_;
    if (params_.total_cpu > 0 && consumed_ >= params_.total_cpu) {
      return sim::Action::Exit();
    }
    const Tick io = std::max<Tick>(
        1, static_cast<Tick>(rng_.Exponential(static_cast<double>(params_.mean_io_block))));
    return sim::Action::Block(io);
  }
  computing_ = true;
  current_burst_ = std::max<Tick>(
      1, static_cast<Tick>(rng_.Exponential(static_cast<double>(params_.mean_cpu_burst))));
  if (params_.total_cpu > 0) {
    current_burst_ = std::min(current_burst_, params_.total_cpu - consumed_);
    current_burst_ = std::max<Tick>(1, current_burst_);
  }
  return sim::Action::Compute(current_burst_);
}

std::unique_ptr<sim::Task> MakeInf(sched::ThreadId tid, sched::Weight w, std::string label) {
  return std::make_unique<sim::Task>(tid, w, std::make_unique<Inf>(), std::move(label));
}

std::unique_ptr<sim::Task> MakeDhrystone(sched::ThreadId tid, sched::Weight w, std::string label) {
  return std::make_unique<sim::Task>(tid, w, std::make_unique<Dhrystone>(), std::move(label));
}

std::unique_ptr<sim::Task> MakeDiskSim(sched::ThreadId tid, sched::Weight w, std::string label) {
  return std::make_unique<sim::Task>(tid, w, std::make_unique<DiskSim>(), std::move(label));
}

std::unique_ptr<sim::Task> MakeFixedWork(sched::ThreadId tid, sched::Weight w, Tick total_cpu,
                                         std::string label) {
  return std::make_unique<sim::Task>(tid, w, std::make_unique<FixedWork>(total_cpu),
                                     std::move(label));
}

std::unique_ptr<sim::Task> MakeInteract(sched::ThreadId tid, sched::Weight w,
                                        const Interact::Params& params,
                                        common::SampleSet* responses, std::string label) {
  return std::make_unique<sim::Task>(tid, w, std::make_unique<Interact>(params, responses),
                                     std::move(label));
}

std::unique_ptr<sim::Task> MakeMpeg(sched::ThreadId tid, sched::Weight w,
                                    const MpegDecoder::Params& params, std::string label) {
  return std::make_unique<sim::Task>(tid, w, std::make_unique<MpegDecoder>(params),
                                     std::move(label));
}

std::unique_ptr<sim::Task> MakeCompileJob(sched::ThreadId tid, sched::Weight w,
                                          const CompileJob::Params& params, std::string label) {
  return std::make_unique<sim::Task>(tid, w, std::make_unique<CompileJob>(params),
                                     std::move(label));
}

}  // namespace sfs::workload

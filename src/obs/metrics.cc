#include "src/obs/metrics.h"

#include <algorithm>

namespace sfs::obs {

double HistogramSnapshot::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest rank r with r >= ceil(p/100 * N), 1-based.
  std::uint64_t rank =
      static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.999999999);
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return static_cast<double>(LogHistogram::BucketLowerBound(i));
    }
  }
  return static_cast<double>(max_);
}

LogHistogram::LogHistogram(int num_shards)
    : num_shards_(num_shards), shards_(static_cast<std::size_t>(num_shards)) {
  SFS_CHECK(num_shards >= 1);
}

HistogramSnapshot LogHistogram::Snapshot() const {
  std::vector<std::uint64_t> buckets(kNumBuckets, 0);
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  for (const Shard& s : shards_) {
    count += s.count.load(std::memory_order_relaxed);
    sum += s.sum.load(std::memory_order_relaxed);
    max = std::max(max, s.max.load(std::memory_order_relaxed));
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  if (count == 0) {
    max = 0;
    min = 0;
  }
  return HistogramSnapshot(std::move(buckets), count, sum, min, max);
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  common::MutexLock lock(mu_);
  for (auto& [known, counter] : counters_) {
    if (known == name) {
      return *counter;
    }
  }
  counters_.emplace_back(std::string(name), std::make_unique<Counter>(num_shards_));
  return *counters_.back().second;
}

LogHistogram& MetricsRegistry::GetHistogram(std::string_view name) {
  common::MutexLock lock(mu_);
  for (auto& [known, histogram] : histograms_) {
    if (known == name) {
      return *histogram;
    }
  }
  histograms_.emplace_back(std::string(name), std::make_unique<LogHistogram>(num_shards_));
  return *histograms_.back().second;
}

}  // namespace sfs::obs

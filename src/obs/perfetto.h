// obs::PerfettoExporter — offline decoder from obs::Trace rings to Chrome
// trace-event JSON, loadable at https://ui.perfetto.dev (or
// chrome://tracing).
//
// Track layout: one track per CPU/shard (named "cpu0".."cpuN-1") showing
// which task ran when as complete ("X") slices; one "lifecycle" track of
// instant events for arrivals/departures/blocks/wakeups/readjusts; instant
// events on the CPU tracks for steals and rebalance migrations; and flow
// arrows ("s"/"f") connecting consecutive run intervals of a task that
// migrated between CPUs.  Wall-clock traces additionally render pick and
// dispatch-lock-wait spans.
//
// Timestamps: trace-event `ts`/`dur` are microseconds.  Sim-tick traces map
// 1:1 (a Tick is a µs); wall-clock traces divide nanoseconds by 1000.

#ifndef SFS_OBS_PERFETTO_H_
#define SFS_OBS_PERFETTO_H_

#include <iosfwd>
#include <string>

#include "src/obs/trace.h"

namespace sfs::obs {

struct PerfettoOptions {
  // Connect a task's consecutive run intervals on different CPUs with flow
  // arrows (renders migrations as arrows in the Perfetto UI).
  bool flow_arrows = true;
};

class PerfettoExporter {
 public:
  using Options = PerfettoOptions;

  // Serializes `trace` as trace-event JSON to `out`.
  static void Write(const Trace& trace, std::ostream& out,
                    const PerfettoOptions& options = {});

  // As Write, to a file.  Returns false if the file could not be opened.
  static bool WriteFile(const Trace& trace, const std::string& path,
                        const PerfettoOptions& options = {});
};

}  // namespace sfs::obs

#endif  // SFS_OBS_PERFETTO_H_

#include "src/obs/perfetto.h"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace sfs::obs {
namespace {

// Minimal JSON string escaping; names are short ASCII labels we control, but
// escape defensively anyway.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class Emitter {
 public:
  Emitter(const Trace& trace, std::ostream& out) : trace_(trace), out_(out) {
    // ts/dur are microseconds in the trace-event format; sim ticks already
    // are µs, wall timestamps are ns.
    scale_ = trace.clock() == Trace::Clock::kWallNanos ? 1e-3 : 1.0;
    for (const auto& [tid, name] : trace.thread_names()) {
      names_.emplace(tid, Escape(name));
    }
  }

  void Begin() { out_ << "{\"traceEvents\":[\n"; }
  void End() { out_ << "\n],\"displayTimeUnit\":\"ms\"}\n"; }

  void Meta(int track, const std::string& name) {
    Sep();
    out_ << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << track
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << Escape(name) << "\"}}";
  }

  void Slice(int track, double ts, double dur, const std::string& name,
             std::int32_t tid) {
    Sep();
    out_ << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << track << ",\"ts\":" << ts
         << ",\"dur\":" << dur << ",\"name\":\"" << name << "\",\"args\":{\"tid\":" << tid
         << "}}";
  }

  void Instant(int track, double ts, const std::string& name, std::int32_t tid,
               std::int64_t arg, const char* arg_key) {
    Sep();
    out_ << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << track << ",\"ts\":" << ts
         << ",\"s\":\"t\",\"name\":\"" << name << "\",\"args\":{\"tid\":" << tid << ",\""
         << arg_key << "\":" << arg << "}}";
  }

  void FlowStart(int track, double ts, std::uint64_t id) {
    Sep();
    out_ << "{\"ph\":\"s\",\"pid\":1,\"tid\":" << track << ",\"ts\":" << ts
         << ",\"name\":\"migrate\",\"cat\":\"migration\",\"id\":" << id << "}";
  }

  void FlowEnd(int track, double ts, std::uint64_t id) {
    Sep();
    out_ << "{\"ph\":\"f\",\"pid\":1,\"tid\":" << track << ",\"ts\":" << ts
         << ",\"bp\":\"e\",\"name\":\"migrate\",\"cat\":\"migration\",\"id\":" << id << "}";
  }

  double Ts(std::int64_t raw) const { return static_cast<double>(raw) * scale_; }

  // Escaped display label for a task.
  const std::string& Label(std::int32_t tid) {
    auto [it, inserted] = names_.try_emplace(tid);
    if (inserted) {
      it->second = "T" + std::to_string(tid);
    }
    return it->second;
  }

 private:
  void Sep() {
    if (!first_) {
      out_ << ",\n";
    }
    first_ = false;
  }

  const Trace& trace_;
  std::ostream& out_;
  double scale_ = 1.0;
  bool first_ = true;
  // Ordered so any future iteration over labels emits deterministically;
  // today only keyed lookups (Label) touch it after construction.
  std::map<std::int32_t, std::string> names_;
};

struct RunInterval {
  std::int64_t start = 0;
  std::int64_t len = 0;
  std::int32_t tid = -1;
  int cpu = 0;
};

}  // namespace

void PerfettoExporter::Write(const Trace& trace, std::ostream& out,
                             const Options& options) {
  Emitter e(trace, out);
  e.Begin();

  for (int cpu = 0; cpu < trace.num_cpus(); ++cpu) {
    e.Meta(cpu, "cpu" + std::to_string(cpu));
  }
  e.Meta(trace.num_cpus(), "lifecycle");

  std::vector<RunInterval> runs;
  for (int cpu = 0; cpu < trace.num_cpus(); ++cpu) {
    trace.ring(cpu).ForEach([&](const TraceRecord& r) {
      switch (r.kind) {
        case TraceEventKind::kRun:
          e.Slice(cpu, e.Ts(r.ts), e.Ts(r.arg), e.Label(r.tid), r.tid);
          runs.push_back({r.ts, r.arg, r.tid, cpu});
          break;
        case TraceEventKind::kSteal:
          e.Instant(cpu, e.Ts(r.ts), "steal " + e.Label(r.tid), r.tid, r.arg,
                    "from_cpu");
          break;
        case TraceEventKind::kRebalance:
          e.Instant(cpu, e.Ts(r.ts), "rebalance " + e.Label(r.tid), r.tid, r.arg,
                    "from_cpu");
          break;
        case TraceEventKind::kPick:
          e.Slice(cpu, e.Ts(r.ts - r.arg), e.Ts(r.arg), "pick", r.tid);
          break;
        case TraceEventKind::kLockWait:
          e.Slice(cpu, e.Ts(r.ts - r.arg), e.Ts(r.arg), "lock_wait", r.tid);
          break;
        case TraceEventKind::kPreempt:
          e.Instant(cpu, e.Ts(r.ts), "preempt " + e.Label(r.tid), r.tid, r.arg,
                    "by_tid");
          break;
        case TraceEventKind::kGrant:
        case TraceEventKind::kCharge:
          // Grants/charges duplicate information already visible as run
          // slices; skip them to keep the UI readable.
          break;
        default:
          break;
      }
    });
  }

  const int lifecycle_track = trace.num_cpus();
  trace.lifecycle_ring().ForEach([&](const TraceRecord& r) {
    const char* name = nullptr;
    switch (r.kind) {
      case TraceEventKind::kArrival:
        name = "arrival";
        break;
      case TraceEventKind::kDeparture:
        name = "departure";
        break;
      case TraceEventKind::kBlock:
        name = "block";
        break;
      case TraceEventKind::kWakeup:
        name = "wakeup";
        break;
      case TraceEventKind::kReadjust:
        name = "readjust";
        break;
      default:
        break;
    }
    if (name != nullptr) {
      e.Instant(lifecycle_track, e.Ts(r.ts), name + (" " + e.Label(r.tid)), r.tid,
                r.arg, "arg");
    }
  });

  if (options.flow_arrows) {
    // A task's consecutive run intervals on different CPUs are a migration:
    // draw an arrow from the end of the old interval to the start of the new.
    std::stable_sort(runs.begin(), runs.end(), [](const RunInterval& a,
                                                  const RunInterval& b) {
      if (a.tid != b.tid) {
        return a.tid < b.tid;
      }
      return a.start < b.start;
    });
    std::uint64_t flow_id = 1;
    for (std::size_t i = 1; i < runs.size(); ++i) {
      const RunInterval& prev = runs[i - 1];
      const RunInterval& cur = runs[i];
      if (prev.tid == cur.tid && prev.cpu != cur.cpu) {
        e.FlowStart(prev.cpu, e.Ts(prev.start + prev.len), flow_id);
        e.FlowEnd(cur.cpu, e.Ts(cur.start), flow_id);
        ++flow_id;
      }
    }
  }

  e.End();
}

bool PerfettoExporter::WriteFile(const Trace& trace, const std::string& path,
                                 const Options& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  Write(trace, out, options);
  return out.good();
}

}  // namespace sfs::obs

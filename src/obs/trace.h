// obs::Trace — the per-CPU trace-ring set the engine, schedulers and executor
// record into.
//
// Concurrency contract (DESIGN.md "Observability"): a Trace owns one ring per
// CPU plus one lifecycle ring.  Ring `c` is written only by the context that
// owns CPU `c` — the single simulation thread (sim::Engine) or CPU `c`'s
// dispatcher thread (exec::Executor) — and the lifecycle ring only under the
// scheduler's lifecycle lock (flat schedulers serialize everything anyway).
// Single-writer rings need no atomics, so the enabled path is a predicted
// branch plus a 24-byte store, and the disabled path (`trace == nullptr`)
// is exactly one predicted branch — the NotifySchedEvent contract.
//
// Clock domains never mix within one Trace: engine-side records carry
// simulated ticks (µs), executor-side records carry wall nanoseconds since
// the trace epoch.  The `clock()` tag tells the exporter which.

#ifndef SFS_OBS_TRACE_H_
#define SFS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/assert.h"
#include "src/obs/trace_ring.h"

namespace sfs::obs {

class Trace {
 public:
  enum class Clock : std::uint8_t {
    kSimTicks,   // timestamps are simulated ticks (µs)
    kWallNanos,  // timestamps are wall nanoseconds since epoch_ns()
  };

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit Trace(int num_cpus, std::size_t capacity_per_ring = kDefaultCapacity,
                 Clock clock = Clock::kSimTicks)
      : num_cpus_(num_cpus), clock_(clock) {
    SFS_CHECK(num_cpus >= 1 && num_cpus <= 255);
    rings_.reserve(static_cast<std::size_t>(num_cpus) + 1);
    for (int i = 0; i <= num_cpus; ++i) {
      rings_.emplace_back(capacity_per_ring);
    }
  }

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  int num_cpus() const { return num_cpus_; }
  Clock clock() const { return clock_; }

  // --- recording (hot path) --------------------------------------------------

  // Appends one record to CPU `cpu`'s ring.  Caller must be that CPU's owning
  // context (see concurrency contract above).
  SFS_OBS_OUTLINED void Record(int cpu, TraceEventKind kind, std::int64_t ts,
                               std::int32_t tid, std::int64_t arg = 0) {
    SFS_DCHECK(cpu >= 0 && cpu < num_cpus_);
    TraceRecord record;
    record.ts = ts;
    record.arg = arg;
    record.tid = tid;
    record.kind = kind;
    record.cpu = static_cast<std::uint8_t>(cpu);
    rings_[static_cast<std::size_t>(cpu)].Append(record);
  }

  // Appends a lifecycle record (arrival/departure/block/wakeup/readjust).
  // Caller must hold the scheduler's lifecycle serialization.
  SFS_OBS_OUTLINED void RecordLifecycle(TraceEventKind kind, std::int64_t ts,
                                        std::int32_t tid, std::int64_t arg = 0) {
    TraceRecord record;
    record.ts = ts;
    record.arg = arg;
    record.tid = tid;
    record.kind = kind;
    record.cpu = static_cast<std::uint8_t>(num_cpus_);  // lifecycle pseudo-track
    rings_[static_cast<std::size_t>(num_cpus_)].Append(record);
  }

  // Appends a lifecycle record on simulation worker `worker`'s private ring
  // (sim::ParallelEngine: each worker emits lifecycle events for the shards it
  // owns, so the shared lifecycle ring's single-writer contract cannot hold).
  // Records carry the lifecycle pseudo-track cpu so exporters render them on
  // the same track; the ring index is what identifies the worker.  Requires a
  // prior EnsureWorkerLifecycleRings(>= worker + 1).
  SFS_OBS_OUTLINED void RecordLifecycleOnWorker(int worker, TraceEventKind kind,
                                                std::int64_t ts, std::int32_t tid,
                                                std::int64_t arg = 0) {
    SFS_DCHECK(worker >= 0 && worker < worker_rings_);
    TraceRecord record;
    record.ts = ts;
    record.arg = arg;
    record.tid = tid;
    record.kind = kind;
    record.cpu = static_cast<std::uint8_t>(num_cpus_);  // lifecycle pseudo-track
    rings_[static_cast<std::size_t>(num_cpus_) + 1 + static_cast<std::size_t>(worker)]
        .Append(record);
  }

  // --- offline access ---------------------------------------------------------

  TraceRing& ring(int cpu) {
    SFS_CHECK(cpu >= 0 && cpu < num_cpus_);
    return rings_[static_cast<std::size_t>(cpu)];
  }
  const TraceRing& ring(int cpu) const {
    SFS_CHECK(cpu >= 0 && cpu < num_cpus_);
    return rings_[static_cast<std::size_t>(cpu)];
  }
  TraceRing& lifecycle_ring() { return rings_[static_cast<std::size_t>(num_cpus_)]; }
  const TraceRing& lifecycle_ring() const {
    return rings_[static_cast<std::size_t>(num_cpus_)];
  }

  // Grows the ring set to hold at least `workers` per-worker lifecycle rings
  // (appended after the shared lifecycle ring).  Setup time only — must not
  // race with recording.  Existing rings keep their contents.
  void EnsureWorkerLifecycleRings(int workers,
                                  std::size_t capacity_per_ring = kDefaultCapacity) {
    SFS_CHECK(workers >= 0);
    while (worker_rings_ < workers) {
      rings_.emplace_back(capacity_per_ring);
      ++worker_rings_;
    }
  }

  int worker_rings() const { return worker_rings_; }

  TraceRing& worker_lifecycle_ring(int worker) {
    SFS_CHECK(worker >= 0 && worker < worker_rings_);
    return rings_[static_cast<std::size_t>(num_cpus_) + 1 + static_cast<std::size_t>(worker)];
  }
  const TraceRing& worker_lifecycle_ring(int worker) const {
    SFS_CHECK(worker >= 0 && worker < worker_rings_);
    return rings_[static_cast<std::size_t>(num_cpus_) + 1 + static_cast<std::size_t>(worker)];
  }

  // Iterates every ring's surviving records, per-CPU rings first (ascending),
  // then the shared lifecycle ring, then any per-worker lifecycle rings.
  // `fn(record)`; offline use only.
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    for (const TraceRing& r : rings_) {
      r.ForEach(fn);
    }
  }

  std::uint64_t total_records() const {
    std::uint64_t n = 0;
    for (const TraceRing& r : rings_) {
      n += r.size();
    }
    return n;
  }

  std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const TraceRing& r : rings_) {
      n += r.dropped();
    }
    return n;
  }

  void Clear() {
    for (TraceRing& r : rings_) {
      r.Clear();
    }
  }

  // --- labels (setup time, not thread-safe vs recording on other threads) ----

  void SetThreadName(std::int32_t tid, std::string name) {
    thread_names_[tid] = std::move(name);
  }

  const std::map<std::int32_t, std::string>& thread_names() const {
    return thread_names_;
  }

  // --- timestamp hint ---------------------------------------------------------

  // Contexts that carry no clock of their own (the scheduler's migration and
  // readjustment paths) stamp records with this hint, published by whoever
  // does know the time: the engine stores sim-now before dispatching each
  // event, executor dispatchers store wall-now before calling into the
  // scheduler.  Relaxed atomic — a hint may trail by one scheduling decision,
  // which is exact in the single-threaded engine and within one dispatch
  // round in the executor.
  void PublishNow(std::int64_t now) { now_hint_.store(now, std::memory_order_relaxed); }
  std::int64_t now_hint() const { return now_hint_.load(std::memory_order_relaxed); }

  // Wall-clock traces: nanosecond epoch that record timestamps are relative
  // to (steady_clock origin captured by the executor at start).
  void set_epoch_ns(std::int64_t epoch) { epoch_ns_ = epoch; }
  std::int64_t epoch_ns() const { return epoch_ns_; }

 private:
  int num_cpus_;
  Clock clock_;
  int worker_rings_ = 0;
  std::int64_t epoch_ns_ = 0;
  std::atomic<std::int64_t> now_hint_{0};
  // [0, num_cpus) per-CPU, [num_cpus] lifecycle, then worker lifecycle rings.
  std::vector<TraceRing> rings_;
  // Ordered map: exporters iterate this into deterministic output
  // (tools/lint/check_determinism.py forbids unordered iteration here).
  std::map<std::int32_t, std::string> thread_names_;
};

}  // namespace sfs::obs

#endif  // SFS_OBS_TRACE_H_

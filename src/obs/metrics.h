// obs::MetricsRegistry — named counters and log2-bucket latency histograms
// with lock-free per-CPU accumulation and merge-on-read.
//
// Recording model: every counter/histogram is sharded `num_shards` ways (one
// shard per CPU / dispatcher thread).  A writer touches only its own shard's
// cache line with relaxed atomics, so concurrent dispatcher threads never
// contend; readers merge all shards on demand (Snapshot / value), which is
// safe to run concurrently with writers — a snapshot is a slightly stale but
// torn-free view.
//
// Histograms are HDR-style: values bucket by power-of-two octave subdivided
// into 2^kSubBits sub-buckets, giving a worst-case relative quantization
// error of 2^-kSubBits (12.5%) across the full int64 range — tight enough
// for p50/p99/p999 latency columns at constant memory.  Values <= 0 land in
// bucket 0; values below 2^(kSubBits+1) are recorded exactly.
//
// Registration (GetCounter/GetHistogram) takes a mutex and may allocate; do
// it at setup time and cache the reference.  Recording never allocates.

#ifndef SFS_OBS_METRICS_H_
#define SFS_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/assert.h"
#include "src/common/mutex.h"

// Same outlining contract as trace_ring.h: recording entry points live in the
// cold text section so metrics-disabled hot loops pay only a null test.
#ifndef SFS_OBS_OUTLINED
#if defined(__GNUC__) || defined(__clang__)
#define SFS_OBS_OUTLINED __attribute__((noinline, cold))
#else
#define SFS_OBS_OUTLINED
#endif
#endif

namespace sfs::obs {

// Merged, immutable view of one histogram at a point in time.  API mirrors
// common::SampleSet (count/mean/min/max/Percentile) so call sites migrating
// off raw sample vectors keep their shape; Percentile returns the lower bound
// of the bucket holding the nearest-rank sample (exact for values < 16).
class HistogramSnapshot {
 public:
  HistogramSnapshot() = default;
  HistogramSnapshot(std::vector<std::uint64_t> buckets, std::uint64_t count,
                    std::int64_t sum, std::int64_t min, std::int64_t max)
      : buckets_(std::move(buckets)), count_(count), sum_(sum), min_(min), max_(max) {}

  std::uint64_t count() const { return count_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : static_cast<double>(min_); }
  double max() const { return count_ == 0 ? 0.0 : static_cast<double>(max_); }
  std::int64_t sum() const { return sum_; }

  // Nearest-rank percentile over bucketed values; p in [0, 100].  Returns the
  // lower bound of the selected bucket (so p100 <= max()).
  double Percentile(double p) const;

  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

class LogHistogram {
 public:
  // Sub-bucket resolution: each power-of-two octave splits into 2^kSubBits
  // buckets.
  static constexpr int kSubBits = 3;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  // Linear region [0, 2^(kSubBits+1)) + 8 sub-buckets per octave up to 2^63.
  static constexpr std::size_t kNumBuckets =
      2 * kSubBuckets + (62 - kSubBits) * kSubBuckets;

  explicit LogHistogram(int num_shards);

  // Records `value` into shard `shard` (the caller's CPU).  Lock-free,
  // allocation-free; relaxed atomics on the shard's own cache lines.
  SFS_OBS_OUTLINED void Record(int shard, std::int64_t value) {
    SFS_DCHECK(shard >= 0 && shard < num_shards_);
    if (value < 0) {
      value = 0;
    }
    Shard& s = shards_[static_cast<std::size_t>(shard)];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    std::int64_t seen = s.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !s.max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
    seen = s.min.load(std::memory_order_relaxed);
    while (value < seen &&
           !s.min.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  // Merges all shards into an immutable snapshot.  Safe concurrently with
  // writers (view may trail in-flight records).
  HistogramSnapshot Snapshot() const;

  int num_shards() const { return num_shards_; }

  // Bucket geometry (used by tests and the snapshot's percentile math).
  static std::size_t BucketIndex(std::int64_t value) {
    const std::uint64_t u = value <= 0 ? 0 : static_cast<std::uint64_t>(value);
    if (u < 2 * kSubBuckets) {
      return static_cast<std::size_t>(u);  // exact linear region
    }
    const int msb = 63 - std::countl_zero(u);
    const int shift = msb - kSubBits;
    const std::size_t sub = static_cast<std::size_t>((u >> shift) & (kSubBuckets - 1));
    return 2 * kSubBuckets +
           static_cast<std::size_t>(msb - kSubBits - 1) * kSubBuckets + sub;
  }

  // Smallest value mapping to bucket `index`.
  static std::int64_t BucketLowerBound(std::size_t index) {
    SFS_DCHECK(index < kNumBuckets);
    if (index < 2 * kSubBuckets) {
      return static_cast<std::int64_t>(index);
    }
    const std::size_t rel = index - 2 * kSubBuckets;
    const int octave = kSubBits + 1 + static_cast<int>(rel / kSubBuckets);
    const std::size_t sub = rel % kSubBuckets;
    return (std::int64_t{1} << octave) +
           (static_cast<std::int64_t>(sub) << (octave - kSubBits));
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> max{std::numeric_limits<std::int64_t>::min()};
    std::atomic<std::int64_t> min{std::numeric_limits<std::int64_t>::max()};
    std::vector<std::atomic<std::uint64_t>> buckets =
        std::vector<std::atomic<std::uint64_t>>(kNumBuckets);
  };

  int num_shards_;
  std::vector<Shard> shards_;
};

// Monotonic counter with the same sharding discipline as LogHistogram.
class Counter {
 public:
  explicit Counter(int num_shards) : shards_(static_cast<std::size_t>(num_shards)) {}

  void Add(int shard, std::int64_t delta = 1) {
    SFS_DCHECK(shard >= 0 && static_cast<std::size_t>(shard) < shards_.size());
    shards_[static_cast<std::size_t>(shard)].v.fetch_add(delta, std::memory_order_relaxed);
  }

  std::int64_t value() const {
    std::int64_t total = 0;
    for (const auto& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::vector<Shard> shards_;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(int num_shards) : num_shards_(num_shards) {
    SFS_CHECK(num_shards >= 1);
  }

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers on first use; returns a stable reference.  Takes a mutex — call
  // at setup time and cache the result.
  Counter& GetCounter(std::string_view name) SFS_EXCLUDES(mu_);
  LogHistogram& GetHistogram(std::string_view name) SFS_EXCLUDES(mu_);

  int num_shards() const { return num_shards_; }

  // Iterate in registration order (deterministic for deterministic setup).
  // Lock-free by contract, not by analysis: reporting runs after every
  // registration is done (setup-time-only registration is the class contract
  // above), so the vectors are structurally stable here.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const SFS_NO_THREAD_SAFETY_ANALYSIS {
    for (const auto& [name, counter] : counters_) {
      fn(name, *counter);
    }
  }
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const SFS_NO_THREAD_SAFETY_ANALYSIS {
    for (const auto& [name, histogram] : histograms_) {
      fn(name, *histogram);
    }
  }

 private:
  int num_shards_;
  mutable common::Mutex mu_;  // registration only; recording never takes it
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_
      SFS_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<LogHistogram>>> histograms_
      SFS_GUARDED_BY(mu_);
};

}  // namespace sfs::obs

#endif  // SFS_OBS_METRICS_H_

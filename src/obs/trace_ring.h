// Fixed-capacity, allocation-free ring of packed trace records.
//
// The recording idiom follows the gemOS-style kernel trace buffer: a small
// fixed-format ring written from the hot path with no allocation, no locking
// and no formatting, decoded offline (obs::PerfettoExporter).  One ring
// belongs to exactly one writer (a simulated CPU's event loop, a dispatcher
// thread, or the lifecycle/timer context), so appends need no atomics; the
// concurrency story lives in obs::Trace, which hands each writer its own ring.
//
// Capacity is fixed at construction.  When the ring is full, Append
// overwrites the oldest record and counts the loss in dropped() — tracing
// must never stall or grow the hot path, so the newest window of history
// wins (the kernel ftrace ring-buffer policy).

#ifndef SFS_OBS_TRACE_RING_H_
#define SFS_OBS_TRACE_RING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/assert.h"

// Recording entry points are outlined into the cold text section: with
// tracing disabled the hot loops must carry only a null test + predicted
// branch, not the inlined record-packing code (which costs I-cache even when
// never taken).
#ifndef SFS_OBS_OUTLINED
#if defined(__GNUC__) || defined(__clang__)
#define SFS_OBS_OUTLINED __attribute__((noinline, cold))
#else
#define SFS_OBS_OUTLINED
#endif
#endif

namespace sfs::obs {

// Event kinds recorded by the engine, the schedulers and the executor.  One
// byte on the wire; names mirror the instrumentation points of DESIGN.md
// "Observability".
enum class TraceEventKind : std::uint8_t {
  kArrival = 0,    // thread registered with the scheduler
  kDeparture = 1,  // thread exited / was removed
  kBlock = 2,      // runnable -> blocked
  kWakeup = 3,     // blocked -> runnable
  kPick = 4,       // scheduling decision made (arg = decision latency, wall ns)
  kGrant = 5,      // thread starts running on the cpu (arg = granted quantum)
  kPreempt = 6,    // running thread preempted (wakeup preemption or quantum expiry)
  kCharge = 7,     // thread charged for a completed run (arg = ticks ran)
  kRun = 8,        // completed run interval (ts = start, arg = length)
  kSteal = 9,      // idle-pull migration (cpu = thief, arg = source shard)
  kRebalance = 10, // periodic rebalance migration (cpu = dest, arg = source shard)
  kReadjust = 11,  // weight-readjustment pass ran (arg = runnable threads)
  kLockWait = 12,  // dispatch-lock acquisition (arg = wait, wall ns)
};

// One packed record: 24 bytes, fixed format, no pointers.  `ts` is simulated
// ticks for engine-side events and wall nanoseconds since the trace epoch for
// executor-side events (the Trace's clock domain says which; the two are
// never mixed in one trace).
struct TraceRecord {
  std::int64_t ts = 0;
  std::int64_t arg = 0;
  std::int32_t tid = -1;
  TraceEventKind kind = TraceEventKind::kArrival;
  std::uint8_t cpu = 0;
  std::uint16_t reserved = 0;
};
static_assert(sizeof(TraceRecord) == 24, "packed trace record format");

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : records_(capacity) {
    SFS_CHECK(capacity > 0);
  }

  // Appends one record; O(1), allocation-free.  A full ring overwrites its
  // oldest record and counts the overwrite in dropped().
  void Append(const TraceRecord& record) {
    records_[head_] = record;
    head_ = head_ + 1 == records_.size() ? 0 : head_ + 1;
    if (size_ < records_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  std::size_t capacity() const { return records_.size(); }
  std::size_t size() const { return size_; }
  // Records overwritten because the ring was full (oldest-first loss).
  std::uint64_t dropped() const { return dropped_; }
  // Total records ever appended (== size() + dropped()).
  std::uint64_t appended() const { return dropped_ + size_; }

  // The i-th surviving record in append order (0 = oldest retained).
  const TraceRecord& at(std::size_t i) const {
    SFS_DCHECK(i < size_);
    const std::size_t start = size_ == records_.size() ? head_ : 0;
    std::size_t idx = start + i;
    if (idx >= records_.size()) {
      idx -= records_.size();
    }
    return records_[idx];
  }

  // Iterates surviving records oldest-first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(at(i));
    }
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t head_ = 0;   // next write position
  std::size_t size_ = 0;   // retained records
  std::uint64_t dropped_ = 0;
};

}  // namespace sfs::obs

#endif  // SFS_OBS_TRACE_RING_H_

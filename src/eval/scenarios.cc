#include "src/eval/scenarios.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "src/common/assert.h"
#include "src/common/fingerprint.h"
#include "src/common/rng.h"
#include "src/metrics/fairness.h"
#include "src/metrics/service_sampler.h"
#include "src/sched/gms.h"
#include "src/sched/sfs.h"
#include "src/sim/engine.h"
#include "src/sim/parallel_engine.h"
#include "src/workload/workloads.h"

namespace sfs::eval {

namespace {

using sched::SchedConfig;
using sched::SchedKind;
using sched::ThreadId;

SchedConfig BaseConfig(int cpus, Tick quantum, bool readjust) {
  SchedConfig config;
  config.num_cpus = cpus;
  config.quantum = quantum;
  config.use_readjustment = readjust;
  return config;
}

SeriesResult CollectSeries(const metrics::ServiceSampler& sampler, std::string scheduler_name) {
  SeriesResult result;
  result.times = sampler.times();
  for (const auto& label : sampler.labels()) {
    result.series[label] = sampler.Series(label);
  }
  result.scheduler_name = std::move(scheduler_name);
  return result;
}

}  // namespace

const std::vector<Tick>& SeriesResult::Of(const std::string& label) const {
  auto it = series.find(label);
  SFS_CHECK(it != series.end());
  return it->second;
}

Example1Result RunExample1(sched::SchedKind kind, bool readjust, Tick t3_arrival, Tick horizon,
                           Tick quantum) {
  auto scheduler = CreateScheduler(kind, BaseConfig(/*cpus=*/2, quantum, readjust));
  sim::Engine engine(*scheduler);

  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "T1"));
  engine.AddTaskAt(0, workload::MakeInf(2, 10.0, "T2"));
  engine.AddTaskAt(t3_arrival, workload::MakeInf(3, 1.0, "T3"));

  const Tick sample_period = std::max<Tick>(quantum, Msec(1));
  metrics::ServiceSampler sampler(engine, sample_period, {"T1", "T2", "T3"});
  engine.RunUntil(horizon);

  Example1Result result;
  result.series = CollectSeries(sampler, std::string(scheduler->name()));
  result.t1_starvation = metrics::LongestStarvation(result.series.Of("T1"), sample_period);
  return result;
}

Example2Result RunExample2(sched::SchedKind kind, int heavy_weight, int light_threads,
                           int short_weight, Tick short_len, Tick horizon) {
  auto scheduler =
      CreateScheduler(kind, BaseConfig(/*cpus=*/2, kDefaultQuantum, /*readjust=*/true));
  sim::Engine engine(*scheduler);

  ThreadId next_tid = 1;
  engine.AddTaskAt(0, workload::MakeInf(next_tid++, heavy_weight, "heavy"));
  for (int i = 0; i < light_threads; ++i) {
    engine.AddTaskAt(0, workload::MakeInf(next_tid++, 1.0, "light"));
  }

  // Back-to-back short jobs: "each short task was introduced only after the
  // previous one finished."
  engine.SetExitHook([&next_tid, short_weight, short_len](sim::Engine& e, sim::Task& task) {
    if (task.label() == "short") {
      e.AddTaskAt(e.now(), workload::MakeFixedWork(next_tid++, short_weight, short_len, "short"));
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, short_weight, short_len, "short"));

  metrics::ServiceSampler sampler(engine, Sec(1), {"heavy", "light", "short"});
  engine.RunUntil(horizon);

  Example2Result result;
  result.heavy_service = sampler.Series("heavy").back();
  result.light_service = sampler.Series("light").back();
  result.shorts_service = sampler.Series("short").back();
  result.shorts_to_heavy_ratio =
      static_cast<double>(result.shorts_service) / static_cast<double>(result.heavy_service);
  return result;
}

double HeuristicAccuracy(int runnable, int k, int cpus, int decisions, std::uint64_t seed) {
  SFS_CHECK(runnable > cpus);
  SchedConfig config = BaseConfig(cpus, kDefaultQuantum, /*readjust=*/true);
  config.heuristic_k = k;
  sched::Sfs sfs(config);
  common::Rng rng(seed);

  for (ThreadId tid = 0; tid < runnable; ++tid) {
    sfs.AddThread(tid, static_cast<double>(rng.UniformInt(1, 20)));
  }

  // Fill the processors, then cycle: release the longest-running thread with a
  // variable-length quantum, audit the next decision, dispatch.  This emulates a
  // loaded system's un-synchronized scheduling instants.
  std::vector<std::pair<ThreadId, sched::CpuId>> running;
  for (sched::CpuId cpu = 0; cpu < cpus; ++cpu) {
    const ThreadId picked = sfs.PickNext(cpu);
    SFS_CHECK(picked != sched::kInvalidThread);
    running.emplace_back(picked, cpu);
  }

  std::int64_t hits = 0;
  std::int64_t total = 0;
  for (int i = 0; i < runnable * 4 + decisions; ++i) {
    const auto [victim, cpu] = running.front();
    running.erase(running.begin());
    sfs.Charge(victim, Msec(rng.UniformInt(1, 200)));
    const bool audit = i >= runnable * 4;  // skip the tag-spreading warm-up
    if (audit) {
      const auto verdict = sfs.AuditHeuristic(k);
      ++total;
      if (verdict.heuristic_pick == verdict.exact_pick) {
        ++hits;
      }
    }
    const ThreadId picked = sfs.PickNext(cpu);
    SFS_CHECK(picked != sched::kInvalidThread);
    running.emplace_back(picked, cpu);
  }
  return total == 0 ? 100.0 : 100.0 * static_cast<double>(hits) / static_cast<double>(total);
}

SeriesResult RunFig4(sched::SchedKind kind, bool readjust, Tick horizon) {
  auto scheduler = CreateScheduler(kind, BaseConfig(/*cpus=*/2, kDefaultQuantum, readjust));
  sim::Engine engine(*scheduler);

  // "At t=0, we started two Inf applications (T1 and T2) with weights 1:10.  At
  // t=15s, we started a third Inf application (T3) with a weight of 1.  Task T2
  // was then stopped at t=30s."
  engine.AddTaskAt(0, workload::MakeInf(1, 1.0, "T1"));
  engine.AddTaskAt(0, workload::MakeInf(2, 10.0, "T2"));
  engine.AddTaskAt(Sec(15), workload::MakeInf(3, 1.0, "T3"));

  metrics::ServiceSampler sampler(engine, Msec(500), {"T1", "T2", "T3"});

  engine.RunUntil(Sec(30));
  engine.KillTask(2);
  engine.RunUntil(horizon);
  return CollectSeries(sampler, std::string(scheduler->name()));
}

SeriesResult RunFig5(sched::SchedKind kind, Tick horizon, Tick quantum) {
  auto scheduler = CreateScheduler(kind, BaseConfig(/*cpus=*/2, quantum,
                                                    /*readjust=*/true));
  sim::Engine engine(*scheduler);

  ThreadId next_tid = 1;
  engine.AddTaskAt(0, workload::MakeInf(next_tid++, 20.0, "T1"));
  for (int i = 0; i < 20; ++i) {
    engine.AddTaskAt(0, workload::MakeInf(next_tid++, 1.0, "T2-21"));
  }
  engine.SetExitHook([&next_tid](sim::Engine& e, sim::Task& task) {
    if (task.label() == "T_short") {
      e.AddTaskAt(e.now(), workload::MakeFixedWork(next_tid++, 5.0, Msec(300), "T_short"));
    }
  });
  engine.AddTaskAt(0, workload::MakeFixedWork(next_tid++, 5.0, Msec(300), "T_short"));

  metrics::ServiceSampler sampler(engine, Msec(500), {"T1", "T2-21", "T_short"});
  engine.RunUntil(horizon);
  return CollectSeries(sampler, std::string(scheduler->name()));
}

Fig6aResult RunFig6a(sched::SchedKind kind, int wa, int wb, Tick horizon) {
  auto scheduler = CreateScheduler(kind, BaseConfig(/*cpus=*/2, kDefaultQuantum,
                                                    /*readjust=*/true));
  sim::Engine engine(*scheduler);

  ThreadId next_tid = 1;
  // "20 background dhrystone processes, each with a weight of 1 ... necessary to
  // ensure that all weights were feasible at all times."
  for (int i = 0; i < 20; ++i) {
    engine.AddTaskAt(0, workload::MakeDhrystone(next_tid++, 1.0, "bg"));
  }
  const ThreadId a = next_tid++;
  const ThreadId b = next_tid++;
  engine.AddTaskAt(0, workload::MakeDhrystone(a, wa, "A"));
  engine.AddTaskAt(0, workload::MakeDhrystone(b, wb, "B"));

  engine.RunUntil(horizon);

  Fig6aResult result;
  const double secs = ToSeconds(horizon);
  result.loops_per_sec_a = static_cast<double>(engine.ServiceIncludingRunning(a)) *
                           workload::Dhrystone::kLoopsPerUsec / secs;
  result.loops_per_sec_b = static_cast<double>(engine.ServiceIncludingRunning(b)) *
                           workload::Dhrystone::kLoopsPerUsec / secs;
  result.ratio = result.loops_per_sec_b / result.loops_per_sec_a;
  return result;
}

double RunFig6b(sched::SchedKind kind, int compile_jobs, Tick horizon) {
  auto scheduler = CreateScheduler(kind, BaseConfig(/*cpus=*/2, kDefaultQuantum,
                                                    /*readjust=*/true));
  sim::Engine engine(*scheduler);

  ThreadId next_tid = 1;
  const ThreadId decoder_tid = next_tid++;
  // "The decoder was given a large weight": the readjustment algorithm caps it at
  // one full processor; the compilations share the other.
  workload::MpegDecoder::Params mpeg;
  engine.AddTaskAt(0, workload::MakeMpeg(decoder_tid, 100.0, mpeg, "mpeg"));

  for (int i = 0; i < compile_jobs; ++i) {
    workload::CompileJob::Params params;
    params.seed = 1000 + static_cast<std::uint64_t>(i);
    engine.AddTaskAt(0, workload::MakeCompileJob(next_tid++, 1.0, params, "gcc"));
  }

  engine.RunUntil(horizon);
  auto& decoder = static_cast<workload::MpegDecoder&>(engine.task(decoder_tid).behavior());
  return static_cast<double>(decoder.frames_decoded()) / ToSeconds(horizon);
}

metrics::ResponseStats RunFig6c(sched::SchedKind kind, int disksim_jobs, Tick horizon) {
  auto scheduler = CreateScheduler(kind, BaseConfig(/*cpus=*/2, kDefaultQuantum,
                                                    /*readjust=*/true));
  sim::Engine engine(*scheduler);

  common::SampleSet responses;
  ThreadId next_tid = 1;
  workload::Interact::Params params;
  params.seed = 7;
  engine.AddTaskAt(0, workload::MakeInteract(next_tid++, 1.0, params, &responses, "interact"));
  for (int i = 0; i < disksim_jobs; ++i) {
    engine.AddTaskAt(0, workload::MakeDiskSim(next_tid++, 1.0, "disksim"));
  }

  engine.RunUntil(horizon);
  return metrics::Summarize(responses);
}

double GmsDeviationForWeights(sched::SchedKind kind, const std::vector<double>& weights, int cpus,
                              Tick horizon, Tick quantum, int fixed_point_digits,
                              bool scheduler_readjust) {
  std::vector<TimedArrival> arrivals;
  arrivals.reserve(weights.size());
  for (double w : weights) {
    arrivals.push_back({0, w});
  }
  return GmsDeviationForArrivals(kind, arrivals, cpus, horizon, quantum, fixed_point_digits,
                                 scheduler_readjust);
}

double GmsDeviationForArrivals(sched::SchedKind kind, const std::vector<TimedArrival>& arrivals,
                               int cpus, Tick horizon, Tick quantum, int fixed_point_digits,
                               bool scheduler_readjust) {
  SchedConfig config = BaseConfig(cpus, quantum, scheduler_readjust);
  config.fixed_point_digits = fixed_point_digits;
  auto scheduler = CreateScheduler(kind, config);
  sim::Engine engine(*scheduler);
  sched::GmsReference gms(cpus);

  engine.SetSchedEventHook([&gms](sim::SchedEvent event, const sim::Task& task, Tick now) {
    switch (event) {
      case sim::SchedEvent::kArrival:
        gms.AddThread(task.tid(), task.weight(), now);
        break;
      case sim::SchedEvent::kDeparture:
        gms.RemoveThread(task.tid(), now);
        break;
      case sim::SchedEvent::kBlock:
        gms.Block(task.tid(), now);
        break;
      case sim::SchedEvent::kWakeup:
        gms.Wakeup(task.tid(), now);
        break;
    }
  });

  std::vector<ThreadId> tids;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto tid = static_cast<ThreadId>(i + 1);
    tids.push_back(tid);
    engine.AddTaskAt(arrivals[i].at, workload::MakeInf(tid, arrivals[i].weight, "w"));
  }
  engine.RunUntil(horizon);
  gms.AdvanceTo(horizon);

  std::vector<double> actual;
  std::vector<double> fluid;
  for (ThreadId tid : tids) {
    actual.push_back(static_cast<double>(engine.ServiceIncludingRunning(tid)));
    fluid.push_back(gms.Service(tid));
  }
  return metrics::MaxGmsDeviation(actual, fluid);
}

RunScalingResult RunScaling(sched::QueueBackend backend, int threads, int cpus, Tick horizon,
                            std::uint64_t seed, Tick quantum) {
  SFS_CHECK(threads >= 1);
  SchedConfig config = BaseConfig(cpus, quantum, /*readjust=*/true);
  config.queue_backend = backend;
  sched::Sfs sfs(config);
  sim::Engine engine(sfs);
  engine.ReserveTasks(static_cast<std::size_t>(threads));

  common::Rng rng(seed);
  std::vector<double> weights(static_cast<std::size_t>(threads));
  for (double& w : weights) {
    w = static_cast<double>(rng.UniformInt(1, 20));
  }
  for (int i = 0; i < threads; ++i) {
    const auto tid = static_cast<ThreadId>(i + 1);
    engine.AddTaskAt(0, workload::MakeInf(tid, weights[static_cast<std::size_t>(i)], "w"));
  }

  // FNV-1a over every completed run interval: any divergence in any dispatch
  // decision — order, processor, start time or length — changes the value.
  common::Fnv1a fingerprint;
  engine.SetRunIntervalHook(
      [&fingerprint](Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
        fingerprint.Mix(static_cast<std::uint64_t>(start));
        fingerprint.Mix(static_cast<std::uint64_t>(len));
        fingerprint.Mix(static_cast<std::uint64_t>(cpu));
        fingerprint.Mix(static_cast<std::uint64_t>(tid));
      });

  const auto wall_start = std::chrono::steady_clock::now();
  engine.RunUntil(horizon);
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();

  RunScalingResult result;
  result.decisions = engine.dispatches();
  result.schedule_fingerprint = fingerprint.value();
  result.full_refreshes = sfs.full_refreshes();
  result.refresh_repositions = sfs.refresh_repositions();
  result.wall_ns_per_decision =
      result.decisions > 0 ? static_cast<double>(wall) / static_cast<double>(result.decisions) : 0.0;

  // GMS fluid reference in closed form: the runnable set is static (all Inf
  // threads from t=0), so A_i^GMS = min(1, p * phi_i / sum phi) * horizon with
  // phi from one readjustment pass over the weights.
  std::vector<std::size_t> order(weights.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&weights](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) {
      return weights[a] > weights[b];
    }
    return a < b;
  });
  std::vector<double> sorted_weights;
  sorted_weights.reserve(weights.size());
  for (std::size_t idx : order) {
    sorted_weights.push_back(weights[idx]);
  }
  const std::vector<double> phi = sched::ReadjustVector(sorted_weights, cpus);
  double phi_sum = 0.0;
  for (double f : phi) {
    phi_sum += f;
  }
  double max_dev = 0.0;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const double rate = std::min(1.0, static_cast<double>(cpus) * phi[pos] / phi_sum);
    const double fluid = rate * static_cast<double>(horizon);
    const auto tid = static_cast<ThreadId>(order[pos] + 1);
    const double actual = static_cast<double>(engine.ServiceIncludingRunning(tid));
    max_dev = std::max(max_dev, std::abs(actual - fluid));
  }
  result.gms_deviation_ms = max_dev / 1000.0;
  return result;
}

EngineThroughputResult RunEngineThroughput(sim::EventQueueKind queue, int threads, int cpus,
                                           Tick horizon, std::uint64_t seed,
                                           const ObsSinks& sinks, bool batch_drain) {
  SFS_CHECK(threads >= 1);
  SchedConfig config = BaseConfig(cpus, kDefaultQuantum, /*readjust=*/true);
  // The repo-default run-queue backend, which is also the fastest here: the
  // runnable set stays small (mostly-blocked sleepers), so sorted-list scans
  // beat skip-list pointer chasing and the event queue's share of the per-
  // event cost is maximized.
  config.queue_backend = sched::QueueBackend::kSortedList;
  sched::Sfs sfs(config);

  sim::EngineConfig engine_config;
  engine_config.event_queue = queue;
  engine_config.batch_drain = batch_drain;
  engine_config.trace = sinks.trace;
  engine_config.metrics = sinks.metrics;
  sim::Engine engine(sfs, engine_config);
  engine.ReserveTasks(static_cast<std::size_t>(threads) + 4);

  common::Fnv1a run_fp;
  engine.SetRunIntervalHook(
      [&run_fp](Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
        run_fp.Mix(static_cast<std::uint64_t>(start));
        run_fp.Mix(static_cast<std::uint64_t>(len));
        run_fp.Mix(static_cast<std::uint64_t>(cpu));
        run_fp.Mix(static_cast<std::uint64_t>(tid));
      });
  common::Fnv1a life_fp;
  engine.SetSchedEventHook(
      [&life_fp](sim::SchedEvent event, const sim::Task& task, Tick now) {
        life_fp.Mix(static_cast<std::uint64_t>(event));
        life_fp.Mix(static_cast<std::uint64_t>(task.tid()));
        life_fp.Mix(static_cast<std::uint64_t>(now));
      });

  // A couple of background hogs keep every dispatch path exercised without
  // turning each wakeup into an O(p) preemption scan (idle CPUs exist).
  common::Rng rng(seed);
  const int hogs = std::min({cpus, 2, threads});
  ThreadId next_tid = 1;
  for (int i = 0; i < hogs; ++i) {
    engine.AddTaskAt(0, workload::MakeInf(next_tid++,
                                          static_cast<double>(rng.UniformInt(1, 20)), "hog"));
  }
  for (int i = hogs; i < threads; ++i) {
    workload::Interact::Params params;
    params.mean_think = Sec(2) + Msec(rng.UniformInt(0, 6000));
    params.burst = Usec(200 + 100 * rng.UniformInt(0, 6));
    params.seed = seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(next_tid));
    engine.AddTaskAt(Msec(rng.UniformInt(0, 2000)),
                     workload::MakeInteract(next_tid++, static_cast<double>(rng.UniformInt(1, 5)),
                                            params, nullptr, "sleeper"));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  engine.RunUntil(horizon);
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();

  EngineThroughputResult result;
  result.events = engine.events_processed();
  result.decisions = engine.dispatches();
  result.preemptions = engine.preemptions();
  result.schedule_fingerprint = run_fp.value();
  result.lifecycle_fingerprint = life_fp.value();
  result.wall_ns = static_cast<double>(wall);
  return result;
}

ParallelEngineThroughputResult RunParallelEngineThroughput(
    int workers, int groups, int threads, int cpus, Tick horizon, std::uint64_t seed,
    Tick epoch, const ObsSinks& sinks) {
  SFS_CHECK(threads >= 1);
  SFS_CHECK(groups >= 1 && groups <= cpus);
  SFS_CHECK(workers == 0 || workers == groups);

  SchedConfig config = BaseConfig(cpus, kDefaultQuantum, /*readjust=*/true);
  config.queue_backend = sched::QueueBackend::kSortedList;
  // Partitioned sharding (DESIGN.md §10): stealing, rebalancing and virtual-
  // time coupling all off, and every task home-hinted below.  This is the
  // configuration under which the parallel engine is *exact*, so per-group
  // fingerprints are comparable across worker counts and against the serial
  // oracle.
  config.shard_steal = sched::ShardStealPolicy::kNone;
  config.shard_rebalance_period = 0;
  config.shard_coupling = 0.0;
  std::string error;
  auto scheduler = sched::MakeScheduler("sharded-sfs", config, &error);
  if (scheduler == nullptr) {
    std::fprintf(stderr, "RunParallelEngineThroughput: %s\n", error.c_str());
    SFS_CHECK(scheduler != nullptr);
  }

  // Worker g owns CPUs [(g*cpus)/groups, ((g+1)*cpus)/groups) — this is the
  // inverse map, matching ParallelEngine's split exactly.
  auto group_of_cpu = [groups, cpus](std::int64_t cpu) {
    return static_cast<std::size_t>(((cpu + 1) * groups - 1) / cpus);
  };

  std::vector<common::Fnv1a> run_fps(static_cast<std::size_t>(groups));
  std::vector<common::Fnv1a> life_fps(static_cast<std::size_t>(groups));

  // The RunEngineThroughput recipe (same seed stream, same tids, same
  // parameters) with one addition: a home hint pinning each task to shard
  // tid % cpus, which keeps the workload partitioned.
  common::Rng rng(seed);
  const int hogs = std::min({cpus, 2, threads});
  std::vector<std::pair<Tick, std::unique_ptr<sim::Task>>> arrivals;
  arrivals.reserve(static_cast<std::size_t>(threads));
  ThreadId next_tid = 1;
  for (int i = 0; i < hogs; ++i) {
    arrivals.emplace_back(0, workload::MakeInf(next_tid++,
                                               static_cast<double>(rng.UniformInt(1, 20)),
                                               "hog"));
  }
  for (int i = hogs; i < threads; ++i) {
    workload::Interact::Params params;
    params.mean_think = Sec(2) + Msec(rng.UniformInt(0, 6000));
    params.burst = Usec(200 + 100 * rng.UniformInt(0, 6));
    params.seed = seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(next_tid));
    arrivals.emplace_back(Msec(rng.UniformInt(0, 2000)),
                          workload::MakeInteract(next_tid++,
                                                 static_cast<double>(rng.UniformInt(1, 5)),
                                                 params, nullptr, "sleeper"));
  }
  for (auto& [at, task] : arrivals) {
    task->set_home_cpu(static_cast<sched::CpuId>(task->tid() % cpus));
  }

  ParallelEngineThroughputResult result;
  result.group_schedule_fingerprints.resize(static_cast<std::size_t>(groups));
  result.group_lifecycle_fingerprints.resize(static_cast<std::size_t>(groups));

  if (workers == 0) {
    // Serial oracle: sim::Engine over the identical scheduler and workload,
    // splitting the fingerprint streams by group after the fact.  Run
    // intervals key on the CPU they happened on; lifecycle events key on the
    // task's home hint (where the partitioned scheduler placed it).
    sim::EngineConfig engine_config;
    engine_config.trace = sinks.trace;
    engine_config.metrics = sinks.metrics;
    sim::Engine engine(*scheduler, engine_config);
    engine.ReserveTasks(static_cast<std::size_t>(threads) + 4);
    engine.SetRunIntervalHook(
        [&run_fps, group_of_cpu](Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
          common::Fnv1a& fp = run_fps[group_of_cpu(cpu)];
          fp.Mix(static_cast<std::uint64_t>(start));
          fp.Mix(static_cast<std::uint64_t>(len));
          fp.Mix(static_cast<std::uint64_t>(cpu));
          fp.Mix(static_cast<std::uint64_t>(tid));
        });
    engine.SetSchedEventHook(
        [&life_fps, group_of_cpu](sim::SchedEvent event, const sim::Task& task, Tick now) {
          common::Fnv1a& fp = life_fps[group_of_cpu(task.home_cpu())];
          fp.Mix(static_cast<std::uint64_t>(event));
          fp.Mix(static_cast<std::uint64_t>(task.tid()));
          fp.Mix(static_cast<std::uint64_t>(now));
        });
    for (auto& [at, task] : arrivals) {
      engine.AddTaskAt(at, std::move(task));
    }
    const auto wall_start = std::chrono::steady_clock::now();
    engine.RunUntil(horizon);
    result.wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    result.events = engine.events_processed();
    result.decisions = engine.dispatches();
    result.preemptions = engine.preemptions();
  } else {
    sim::ParallelEngineConfig engine_config;
    engine_config.workers = workers;
    engine_config.epoch = epoch;
    engine_config.trace = sinks.trace;
    engine_config.metrics = sinks.metrics;
    sim::ParallelEngine engine(*scheduler, engine_config);
    engine.ReserveTasks(static_cast<std::size_t>(threads) + 4);
    // Under partitioning the hook's worker id equals the group key (tasks
    // never leave their home group), so indexing by group is single-writer
    // per Fnv1a accumulator — no locks needed.
    engine.SetRunIntervalHook(
        [&run_fps, group_of_cpu](int /*worker*/, Tick start, Tick len, sched::CpuId cpu,
                                 ThreadId tid) {
          common::Fnv1a& fp = run_fps[group_of_cpu(cpu)];
          fp.Mix(static_cast<std::uint64_t>(start));
          fp.Mix(static_cast<std::uint64_t>(len));
          fp.Mix(static_cast<std::uint64_t>(cpu));
          fp.Mix(static_cast<std::uint64_t>(tid));
        });
    engine.SetSchedEventHook(
        [&life_fps, group_of_cpu](int /*worker*/, sim::SchedEvent event,
                                  const sim::Task& task, Tick now) {
          common::Fnv1a& fp = life_fps[group_of_cpu(task.home_cpu())];
          fp.Mix(static_cast<std::uint64_t>(event));
          fp.Mix(static_cast<std::uint64_t>(task.tid()));
          fp.Mix(static_cast<std::uint64_t>(now));
        });
    for (auto& [at, task] : arrivals) {
      engine.AddTaskAt(at, std::move(task));
    }
    const auto wall_start = std::chrono::steady_clock::now();
    engine.RunUntil(horizon);
    result.wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    result.events = engine.events_processed();
    result.decisions = engine.dispatches();
    result.preemptions = engine.preemptions();
    result.mailed_wakeups = engine.mailed_wakeups();
    result.epochs = engine.epochs();
  }

  for (int g = 0; g < groups; ++g) {
    result.group_schedule_fingerprints[static_cast<std::size_t>(g)] =
        run_fps[static_cast<std::size_t>(g)].value();
    result.group_lifecycle_fingerprints[static_cast<std::size_t>(g)] =
        life_fps[static_cast<std::size_t>(g)].value();
  }
  return result;
}

ShardedFairnessResult RunShardedFairness(std::string_view policy,
                                         const sched::SchedConfig& config, int threads,
                                         Tick horizon, std::uint64_t seed,
                                         const ObsSinks& sinks) {
  SFS_CHECK(threads >= 1);
  std::string error;
  auto scheduler = sched::MakeScheduler(policy, config, &error);
  if (scheduler == nullptr) {
    std::fprintf(stderr, "RunShardedFairness: %s\n", error.c_str());
    SFS_CHECK(scheduler != nullptr);
  }
  sim::EngineConfig engine_config;
  engine_config.trace = sinks.trace;
  engine_config.metrics = sinks.metrics;
  sim::Engine engine(*scheduler, engine_config);
  engine.ReserveTasks(static_cast<std::size_t>(threads));
  sched::GmsReference gms(config.num_cpus);

  engine.SetSchedEventHook([&gms](sim::SchedEvent event, const sim::Task& task, Tick now) {
    switch (event) {
      case sim::SchedEvent::kArrival:
        gms.AddThread(task.tid(), task.weight(), now);
        break;
      case sim::SchedEvent::kDeparture:
        gms.RemoveThread(task.tid(), now);
        break;
      case sim::SchedEvent::kBlock:
        gms.Block(task.tid(), now);
        break;
      case sim::SchedEvent::kWakeup:
        gms.Wakeup(task.tid(), now);
        break;
    }
  });

  common::Fnv1a fingerprint;
  engine.SetRunIntervalHook(
      [&fingerprint](Tick start, Tick len, sched::CpuId cpu, ThreadId tid) {
        fingerprint.Mix(static_cast<std::uint64_t>(start));
        fingerprint.Mix(static_cast<std::uint64_t>(len));
        fingerprint.Mix(static_cast<std::uint64_t>(cpu));
        fingerprint.Mix(static_cast<std::uint64_t>(tid));
      });

  common::Rng rng(seed);
  std::vector<double> weights(static_cast<std::size_t>(threads));
  double weight_sum = 0.0;
  for (double& w : weights) {
    w = static_cast<double>(rng.UniformInt(1, 20));
    weight_sum += w;
  }

  // Roles: every 8th thread up to a cap is an interactive sleeper, every 4th
  // a terminator (exits after a fraction of its fair-share service — the GMS
  // mirror is O(t log t) per event, so the event-generating bands are capped
  // while the hog population scales with `threads`).  The rest are hogs.
  const int sleeper_cap = std::min(threads / 8, 16);
  std::vector<ThreadId> hogs;
  int sleepers = 0;
  for (int i = 0; i < threads; ++i) {
    const auto tid = static_cast<ThreadId>(i + 1);
    const double w = weights[static_cast<std::size_t>(i)];
    if (i % 8 == 5 && sleepers < sleeper_cap) {
      ++sleepers;
      workload::Interact::Params params;
      params.mean_think = Msec(200 + 50 * static_cast<Tick>(rng.UniformInt(0, 4)));
      params.burst = Msec(5 + static_cast<Tick>(rng.UniformInt(0, 15)));
      params.seed = seed ^ static_cast<std::uint64_t>(tid);
      engine.AddTaskAt(0, workload::MakeInteract(tid, w, params, nullptr, "sleeper"));
    } else if (i % 4 == 2) {
      // Fair share over the horizon is ~ p * w / W; exit after roughly a
      // third of it so the departure lands mid-run.
      const double fair = static_cast<double>(config.num_cpus) * w / weight_sum *
                          static_cast<double>(horizon);
      const Tick work = std::max<Tick>(config.quantum, static_cast<Tick>(fair / 3.0));
      engine.AddTaskAt(0, workload::MakeFixedWork(tid, w, work, "terminator"));
    } else {
      hogs.push_back(tid);
      engine.AddTaskAt(0, workload::MakeInf(tid, w, "hog"));
    }
  }

  // A seeded batch of hogs is killed at a third of the horizon ("terminated
  // threads"), draining whatever shards they lived on.
  const std::size_t kill_count = std::min<std::size_t>(hogs.size() / 4, 32);
  const std::vector<ThreadId> kills(hogs.begin(),
                                    hogs.begin() + static_cast<std::ptrdiff_t>(kill_count));
  std::vector<ThreadId> survivors(hogs.begin() + static_cast<std::ptrdiff_t>(kill_count),
                                  hogs.end());
  engine.AddPeriodicHook(horizon / 3, [&kills, done = false](sim::Engine& e) mutable {
    if (done) {
      return;
    }
    done = true;
    for (const ThreadId tid : kills) {
      e.KillTask(tid);
    }
  });

  const auto wall_start = std::chrono::steady_clock::now();
  engine.RunUntil(horizon);
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  gms.AdvanceTo(horizon);

  ShardedFairnessResult result;
  result.decisions = engine.dispatches();
  result.schedule_fingerprint = fingerprint.value();
  result.steals = scheduler->steals();
  result.shard_migrations = scheduler->shard_migrations();
  result.engine_migrations = engine.migrations();
  result.wall_ns_per_decision =
      result.decisions > 0 ? static_cast<double>(wall) / static_cast<double>(result.decisions)
                           : 0.0;

  std::vector<double> actual;
  std::vector<double> fluid;
  for (const ThreadId tid : survivors) {
    actual.push_back(static_cast<double>(engine.ServiceIncludingRunning(tid)));
    fluid.push_back(gms.Service(tid));
  }
  result.gms_deviation_ms = metrics::MaxGmsDeviation(actual, fluid) / 1000.0;
  return result;
}

}  // namespace sfs::eval

// Reusable experiment runners: one per figure/table of the paper's evaluation.
//
// Each runner builds the exact workload of the corresponding experiment, drives
// it through the discrete-event simulator, and returns structured data.  The
// bench binaries print these as tables/series; the integration tests assert the
// paper's qualitative results (who wins, who starves, what's proportional).
// See DESIGN.md section 7 for the experiment index.

#ifndef SFS_EVAL_SCENARIOS_H_
#define SFS_EVAL_SCENARIOS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/metrics/response.h"
#include "src/sched/factory.h"

namespace sfs::sim {
enum class EventQueueKind : std::uint8_t;  // src/sim/engine.h
}  // namespace sfs::sim

namespace sfs::obs {
class MetricsRegistry;  // src/obs/metrics.h
class Trace;            // src/obs/trace.h
}  // namespace sfs::obs

namespace sfs::eval {

// Optional observability sinks accepted by the throughput/fairness runners.
// Both fields may stay null (the default) at zero cost.  `trace` must use the
// sim-tick clock and have at least as many rings as the scenario has CPUs;
// `metrics` receives the engine's sim-time histograms (sim/quantum_ticks,
// sim/run_interval_ticks).  Recording never feeds back into scheduling, so a
// runner's deterministic results are identical with sinks attached or not —
// bench/abl_sharded CHECK-asserts exactly that.
struct ObsSinks {
  obs::Trace* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

// Cumulative service per label sampled over time.
struct SeriesResult {
  std::vector<Tick> times;
  std::map<std::string, std::vector<Tick>> series;  // label -> cumulative ticks
  std::string scheduler_name;

  const std::vector<Tick>& Of(const std::string& label) const;
};

// ---------------------------------------------------------------------------
// Figure 1 / Example 1 (Section 1.2): the infeasible weights problem.
// Two CPUs, q = 1 ms; T1 (w=1) and T2 (w=10) run from t=0; T3 (w=1) arrives at
// `t3_arrival`.  Under plain SFQ, T1 starves from T3's arrival until the start
// tags catch up (~0.9 * t3_arrival).  Returns a sampled series plus the longest
// observed starvation window for T1.
struct Example1Result {
  SeriesResult series;
  Tick t1_starvation = 0;  // longest window with zero T1 progress
};
Example1Result RunExample1(sched::SchedKind kind, bool readjust,
                           Tick t3_arrival = Sec(1), Tick horizon = Sec(3),
                           Tick quantum = Msec(1));

// Example 2 (Section 1.2): frequent arrivals/departures with feasible weights.
// Two CPUs; one thread with a huge weight, `light_threads` threads of weight 1,
// and a back-to-back chain of short jobs of weight `short_weight` running
// `short_len` each.  Reports the service rates of the heavy thread and of the
// short-job chain; SFQ gives the chain ~a full CPU, proportional schedulers
// give it ~short_weight/heavy_weight of the heavy thread's service.
struct Example2Result {
  Tick heavy_service = 0;
  Tick shorts_service = 0;
  Tick light_service = 0;  // aggregate over the weight-1 threads
  double shorts_to_heavy_ratio = 0.0;
};
Example2Result RunExample2(sched::SchedKind kind, int heavy_weight = 50,
                           int light_threads = 100, int short_weight = 15,
                           Tick short_len = Msec(300), Tick horizon = Sec(60));

// ---------------------------------------------------------------------------
// Figure 3 (Section 3.2): efficacy of the scheduling heuristic.
// Quad-processor system with `runnable` compute-bound threads of random weights;
// drives SFS in heuristic mode and audits every decision against the exact
// algorithm.  Returns the percentage of decisions where the heuristic picked the
// true minimum-surplus thread.
double HeuristicAccuracy(int runnable, int k, int cpus = 4, int decisions = 4000,
                         std::uint64_t seed = 42);

// ---------------------------------------------------------------------------
// Figure 4 (Section 4.2): impact of the weight readjustment algorithm.
// Two CPUs, q = 200 ms.  T1 (w=1) and T2 (w=10) start at t=0; T3 (w=1) arrives
// at t=15s; T2 departs at t=30s; horizon 40s.  Labels: "T1", "T2", "T3".
SeriesResult RunFig4(sched::SchedKind kind, bool readjust, Tick horizon = Sec(40));

// ---------------------------------------------------------------------------
// Figure 5 (Section 4.3): the short jobs problem, SFQ vs SFS.
// Two CPUs; T1 (w=20), T2-T21 (20 threads, w=1 each), and a chain of short jobs
// (w=5, 300 ms each, back to back).  Labels: "T1", "T2-21", "T_short".
// `quantum` defaults to the paper's 200 ms; the residual over-allocation of the
// short jobs under SFS shrinks with the quantum (tag quantization q/phi), which
// the fig5 bench sweeps.
SeriesResult RunFig5(sched::SchedKind kind, Tick horizon = Sec(30),
                     Tick quantum = kDefaultQuantum);

// ---------------------------------------------------------------------------
// Figure 6(a) (Section 4.4): proportionate allocation.
// 20 background dhrystones (w=1) plus two dhrystones at weights wa:wb; returns
// loops/sec of the two foreground benchmarks over the horizon.
struct Fig6aResult {
  double loops_per_sec_a = 0.0;
  double loops_per_sec_b = 0.0;
  double ratio = 0.0;
};
Fig6aResult RunFig6a(sched::SchedKind kind, int wa, int wb, Tick horizon = Sec(20));

// ---------------------------------------------------------------------------
// Figure 6(b) (Section 4.4): application isolation.
// MPEG decoder (large weight) + `compile_jobs` gcc-like jobs (w=1) on 2 CPUs;
// returns achieved frames/sec.  SFS isolates (~30 fps flat); time sharing decays.
double RunFig6b(sched::SchedKind kind, int compile_jobs, Tick horizon = Sec(60));

// ---------------------------------------------------------------------------
// Figure 6(c) (Section 4.4): interactive performance.
// Interact (w=1) + `disksim_jobs` background simulations (w=1) on 2 CPUs;
// returns response-time statistics in milliseconds.
metrics::ResponseStats RunFig6c(sched::SchedKind kind, int disksim_jobs,
                                Tick horizon = Sec(120));

// ---------------------------------------------------------------------------
// Fairness audit (used by property tests and the ablation benches): runs
// compute-bound threads with the given weights on `cpus` processors and returns
// the max |A_i - A_i^GMS| deviation at the horizon, in ticks.  The GMS reference
// always uses readjusted instantaneous weights (that is its definition);
// `scheduler_readjust` toggles the algorithm under test only.
double GmsDeviationForWeights(sched::SchedKind kind, const std::vector<double>& weights,
                              int cpus, Tick horizon, Tick quantum = kDefaultQuantum,
                              int fixed_point_digits = -1, bool scheduler_readjust = true);

// Generalization with per-thread arrival times.  Static infeasible workloads
// self-cap under any work-conserving scheduler (a thread cannot use more than
// one processor), so the Example 1 divergence only shows with late arrivals.
struct TimedArrival {
  Tick at = 0;
  double weight = 1.0;
};
double GmsDeviationForArrivals(sched::SchedKind kind, const std::vector<TimedArrival>& arrivals,
                               int cpus, Tick horizon, Tick quantum = kDefaultQuantum,
                               int fixed_point_digits = -1, bool scheduler_readjust = true);

// ---------------------------------------------------------------------------
// Run-queue backend scaling (ablation A9): SFS with `threads` compute-bound
// threads of seeded random weights on `cpus` processors, driven to `horizon`
// on the given run-queue backend.  Returns schedule-derived metrics that must
// be byte-identical across backends for the same seed — the determinism proof
// behind SchedConfig::queue_backend — plus wall-clock cost per decision
// (reported only under --timing; everything else is a pure function of the
// seed).
struct RunScalingResult {
  std::int64_t decisions = 0;           // engine dispatches over the horizon
  std::uint64_t schedule_fingerprint = 0;  // FNV-1a over every run interval
  double gms_deviation_ms = 0.0;        // max |A_i - A_i^GMS| at horizon, ms
  std::int64_t full_refreshes = 0;      // SFS surplus refresh passes
  std::int64_t refresh_repositions = 0;  // entities the refreshes repositioned
  double wall_ns_per_decision = 0.0;    // wall clock; Reporter::Timing only
};
RunScalingResult RunScaling(sched::QueueBackend backend, int threads, int cpus, Tick horizon,
                            std::uint64_t seed, Tick quantum = kDefaultQuantum);

// ---------------------------------------------------------------------------
// Engine event-loop throughput (ablation A12): `threads` tasks total on
// `cpus` processors under SFS — min(cpus, 2, threads) background hogs, the
// rest Interact-style sleepers with long seeded think times and
// sub-millisecond bursts.  Mostly-blocked sleepers
// are the event queue's worst case (every blocked thread holds a pending
// wakeup, so the queue scales with t while the run queues stay small), which
// is exactly the regime where the timing wheel's O(1) pops beat the binary
// heap's O(log t).  Everything except `wall_ns` is a pure function of
// (queue, threads, cpus, horizon, seed), and is asserted identical across the
// two event-queue backends by bench/abl_engine_throughput.cc.
struct EngineThroughputResult {
  std::int64_t events = 0;                 // events popped over the horizon
  std::int64_t decisions = 0;              // engine dispatches over the horizon
  std::int64_t preemptions = 0;
  std::uint64_t schedule_fingerprint = 0;  // FNV-1a over every run interval
  std::uint64_t lifecycle_fingerprint = 0;  // FNV-1a over every sched event
  double wall_ns = 0.0;                    // wall clock; Reporter::Timing only
};
EngineThroughputResult RunEngineThroughput(sim::EventQueueKind queue, int threads, int cpus,
                                           Tick horizon, std::uint64_t seed,
                                           const ObsSinks& sinks = {},
                                           bool batch_drain = true);

// ---------------------------------------------------------------------------
// Parallel-engine throughput (DESIGN.md §10, experiment A13): the same
// hogs-plus-sleepers workload as RunEngineThroughput, but home-hinted
// (tid % cpus) onto a *partitioned* sharded-SFS scheduler (stealing off,
// rebalancing off, coupling 0) and driven by sim::ParallelEngine with
// `workers` simulation threads.  Partitioning makes the schedule a disjoint
// union of per-shard-group subproblems, so fingerprints are kept per group
// (group g = the CPUs worker g owns under `groups` workers): byte-equal
// group vectors across worker counts — including the workers == 0 serial
// sim::Engine oracle — are the parallel engine's exactness contract, at any
// level of real parallelism.  Everything except wall_ns is a pure function
// of (groups, threads, cpus, horizon, seed).
struct ParallelEngineThroughputResult {
  std::int64_t events = 0;     // events popped over the horizon (all workers)
  std::int64_t decisions = 0;  // engine dispatches over the horizon
  std::int64_t preemptions = 0;
  std::int64_t mailed_wakeups = 0;  // cross-worker mailbox deliveries (0 here)
  std::int64_t epochs = 0;          // barriers crossed (0 on serial paths)
  // FNV-1a per shard group, indexed by group id; sized `groups`.
  std::vector<std::uint64_t> group_schedule_fingerprints;
  std::vector<std::uint64_t> group_lifecycle_fingerprints;
  double wall_ns = 0.0;  // wall clock; Reporter::Timing only
};
// `workers` == 0 runs the serial sim::Engine oracle over the identical
// scheduler + workload (grouping fingerprints as `groups` would); otherwise
// 1 <= workers <= cpus drives the parallel engine, and `groups` must equal
// `workers`.  `epoch` is the conservative synchronization horizon.
ParallelEngineThroughputResult RunParallelEngineThroughput(
    int workers, int groups, int threads, int cpus, Tick horizon, std::uint64_t seed,
    Tick epoch = Msec(10), const ObsSinks& sinks = {});

// ---------------------------------------------------------------------------
// Sharded scheduling pathology (Section 1.2, generalized): `threads` threads
// with seeded random weights on config.num_cpus processors — mostly
// compute-bound hogs, plus a capped band of interactive sleepers (blocking)
// and fixed-work terminators (exiting mid-run), and a seeded batch of hogs
// killed at a third of the horizon.  This recreates the "blocked/terminated
// threads can cause imbalances (and unfairness) across partitions" scenario
// the paper cites against per-processor scheduling.  The scheduler is built
// from its canonical policy name via sched::MakeScheduler, so one runner
// drives the global, partitioned and sharded designs; fairness is the max
// deviation of the surviving hogs from the event-mirrored GMS fluid
// reference.  Everything except wall_ns_per_decision is a pure function of
// (policy, config, threads, horizon, seed).
struct ShardedFairnessResult {
  std::int64_t decisions = 0;              // engine dispatches over the horizon
  std::uint64_t schedule_fingerprint = 0;  // FNV-1a over every run interval
  double gms_deviation_ms = 0.0;           // max |A_i - A_i^GMS| over surviving hogs, ms
  std::int64_t steals = 0;                 // scheduler-level idle-pull migrations
  std::int64_t shard_migrations = 0;       // scheduler-level rebalance moves
  std::int64_t engine_migrations = 0;      // cross-CPU dispatches the engine saw
  double wall_ns_per_decision = 0.0;       // wall clock; Reporter::Timing only
};
ShardedFairnessResult RunShardedFairness(std::string_view policy,
                                         const sched::SchedConfig& config, int threads,
                                         Tick horizon, std::uint64_t seed,
                                         const ObsSinks& sinks = {});

}  // namespace sfs::eval

#endif  // SFS_EVAL_SCENARIOS_H_

#include "src/common/fixed_point.h"

namespace sfs::common {

// Header-only; this translation unit exists to give the library an anchor and to
// force the template definitions through a compile with the project's warning set.
template class FixedPoint<4>;

}  // namespace sfs::common

// Deterministic pseudo-random number generation for simulations.
//
// Every experiment in this repository must be exactly reproducible, so all
// randomness flows through this explicitly-seeded generator (xoshiro256**,
// seeded via SplitMix64).  <random> engines are avoided because their
// distributions are not specified bit-for-bit across standard library
// implementations.

#ifndef SFS_COMMON_RNG_H_
#define SFS_COMMON_RNG_H_

#include <cstdint>

namespace sfs::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t Next();

  // Uniform in [0, bound); bound must be > 0.  Uses rejection sampling, so the
  // distribution is exactly uniform.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double UniformDouble();

  // Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // True with probability p.
  bool Bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace sfs::common

#endif  // SFS_COMMON_RNG_H_

// common::ParkingSlot — one thread's private park/kick slot.
//
// The runtime gives every dispatcher its own slot so a wakeup targets exactly
// the CPU whose shard received work, instead of broadcasting through one
// process-wide condition variable (the executor's old state_version_/idle_cv_
// kick loop woke *every* idle dispatcher on *every* scheduler-state change —
// a thundering herd that grows with p).
//
// Protocol (the futex idiom: SNAPSHOT -> RE-CHECK -> SLEEP):
//
//   consumer                                  producer
//   --------                                  --------
//   token = slot.Prepare();                   ...make work visible...
//   ...look for work: drain mailbox, pick...  slot.Kick();   // epoch++, wake
//   if (none) slot.ParkUntil(token, dl);
//
// Kick() bumps the slot's epoch; ParkUntil() refuses to sleep (and any sleep
// in progress is woken) once the epoch has moved past `token`.  Because the
// token is snapshotted BEFORE the consumer's final look for work, a kick that
// races between the empty look and the park is never lost: either the look
// already saw the producer's work, or the kick's epoch bump makes ParkUntil
// fall through.  (A kick can only go unseen if exactly 2^32 kicks land inside
// one Prepare/Park window — not a reachable interleaving for a dispatcher
// that parks at most once per pick loop.)
//
// Two backends behind one type:
//
//   kFutex    (Linux) the epoch word itself is the futex; sleeping costs no
//             mutex and a kick with no waiter is one relaxed load — no
//             syscall.  FUTEX_WAIT_BITSET takes the deadline as an absolute
//             CLOCK_MONOTONIC timespec, which is exactly
//             std::chrono::steady_clock on Linux, so no relative-timeout
//             re-arithmetic on spurious wakes.
//   kCondVar  portable fallback (and the forced-backend mode the unit tests
//             use to cover both implementations on any host): common::Mutex +
//             CondVar with the epoch re-checked under the mutex.
//
// Synchronization: Kick()'s epoch bump is a release operation matched by the
// acquire loads in Prepare()/ParkUntil(), so anything written before Kick()
// (e.g. a mailbox push) is visible to the parked thread when it wakes.  The
// futex syscall itself is only a sleeping mechanism and carries no ordering —
// which also keeps ThreadSanitizer accurate: the atomics it understands are
// the whole protocol.

#ifndef SFS_COMMON_PARKING_H_
#define SFS_COMMON_PARKING_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/common/mutex.h"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace sfs::common {

class ParkingSlot {
 public:
  enum class Backend : std::uint8_t {
    kAuto,     // futex on Linux, condvar elsewhere
    kFutex,    // Linux only; CHECKable via backend() in tests
    kCondVar,  // portable fallback
  };

  using Token = std::uint32_t;

  explicit ParkingSlot(Backend backend = Backend::kAuto) {
#if defined(__linux__)
    use_futex_ = backend != Backend::kCondVar;
#else
    (void)backend;
    use_futex_ = false;
#endif
  }

  ParkingSlot(const ParkingSlot&) = delete;
  ParkingSlot& operator=(const ParkingSlot&) = delete;

  Backend backend() const { return use_futex_ ? Backend::kFutex : Backend::kCondVar; }

  // Snapshots the epoch.  Call BEFORE the final look for work (see the
  // protocol comment): kicks after this instant cancel the next ParkUntil.
  Token Prepare() const { return epoch_.load(std::memory_order_acquire); }

  // Blocks until a Kick() lands after `token` was taken, or until `deadline`.
  // Returns true if a kick (or an epoch already past `token`) ended the wait,
  // false on timeout.  At most one thread may park on a slot at a time.
  bool ParkUntil(Token token, std::chrono::steady_clock::time_point deadline) {
    if (use_futex_) {
      return ParkFutex(token, deadline);
    }
    return ParkCondVar(token, deadline);
  }

  // Wakes the parked thread (if any) and cancels the next park attempt made
  // with a token taken before this call.  Safe from any thread; a kick at an
  // empty slot is one atomic add plus one relaxed load.
  void Kick() {
    // The bump and the waiter check are both seq_cst, pairing with the
    // seq_cst waiter increment + epoch re-check in ParkFutex — the classic
    // Dekker store/load pair: in the seq_cst total order either this bump
    // precedes the parker's epoch check (the parker falls through and never
    // sleeps) or the parker's increment precedes our waiter check (we see it
    // and issue the wake).  "Both sides read the old value" — the lost-wakeup
    // interleaving — is impossible.  Spelled as seq_cst accesses rather than
    // a standalone fence because GCC's -Wtsan (correctly) flags
    // atomic_thread_fence as invisible to ThreadSanitizer.
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (use_futex_) {
#if defined(__linux__)
      if (waiters_.load(std::memory_order_seq_cst) > 0) {
        syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&epoch_),
                FUTEX_WAKE_PRIVATE, 1, nullptr, nullptr, 0);
      }
#endif
    } else {
      {
        MutexLock lk(mu_);  // a parker between its epoch check and cv wait
      }                     // must not miss the notify
      cv_.NotifyOne();
    }
  }

 private:
#if defined(__linux__)
  bool ParkFutex(Token token, std::chrono::steady_clock::time_point deadline) {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    bool kicked = false;
    for (;;) {
      // seq_cst: the second half of the Dekker pair with Kick() (see there).
      if (epoch_.load(std::memory_order_seq_cst) != token) {
        kicked = true;
        break;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        break;
      }
      // Absolute CLOCK_MONOTONIC deadline == steady_clock time_point on Linux.
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(deadline.time_since_epoch())
              .count();
      struct timespec ts;
      ts.tv_sec = static_cast<time_t>(ns / 1'000'000'000);
      ts.tv_nsec = static_cast<long>(ns % 1'000'000'000);
      // Returns 0 on wake, EAGAIN if the epoch already moved, ETIMEDOUT or
      // EINTR otherwise; every case just re-checks the epoch above.
      syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&epoch_),
              FUTEX_WAIT_BITSET_PRIVATE, token, &ts, nullptr, FUTEX_BITSET_MATCH_ANY);
    }
    waiters_.fetch_sub(1, std::memory_order_release);
    return kicked;
  }
#else
  bool ParkFutex(Token, std::chrono::steady_clock::time_point) { return false; }
#endif

  bool ParkCondVar(Token token, std::chrono::steady_clock::time_point deadline) {
    MutexLock lk(mu_);
    while (epoch_.load(std::memory_order_acquire) == token) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
        return epoch_.load(std::memory_order_acquire) != token;
      }
    }
    return true;
  }

  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<int> waiters_{0};  // futex backend: skip the wake syscall when 0
  bool use_futex_ = false;
  common::Mutex mu_;  // condvar backend only
  common::CondVar cv_;
};

}  // namespace sfs::common

#endif  // SFS_COMMON_PARKING_H_

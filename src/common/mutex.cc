// Runtime lock-order validator backing common::Mutex (see mutex.h).
//
// Graph model: each mutex maps to a node id.  Mutexes registered via
// SetRank(class, rank) map to a *shared* node per (class, rank), so the
// ascending-rank discipline of a mutex family (the scheduler's per-shard
// dispatch mutexes, rank == CPU id) is validated across every family
// instance in the process.  Unregistered mutexes map to their address.
//
// A blocking acquisition while holding H1..Hk inserts edges Hi -> N.  Before
// inserting, we check whether N already reaches any Hi: if so the new edge
// closes a cycle — two threads interleaving those chains can deadlock — and
// we abort with the offending edge.  A blocking acquisition of a node the
// thread already holds is reported as a self-deadlock.  try_lock successes
// join the held set but insert no edges (a non-blocking acquisition cannot
// participate in a cycle of waits).
//
// All state lives here, keyed by mutex address, so common::Mutex itself
// stays layout-identical to std::mutex in every build mode.

#include "src/common/mutex.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

namespace sfs::common::lock_order {
namespace {

using NodeId = std::uint64_t;

// High bit distinguishes rank-family nodes from address nodes (user-space
// addresses never have bit 63 set on the platforms we target).
constexpr NodeId kRankedBit = NodeId{1} << 63;

NodeId RankedNode(std::uint32_t lock_class, std::uint32_t rank) {
  return kRankedBit | (NodeId{lock_class} << 32) | NodeId{rank};
}

struct Held {
  const void* mu;
  NodeId node;
};

thread_local std::vector<Held> t_held;

// Guards the rank registry and edge graph.  Deliberately a raw std::mutex:
// common::Mutex would recurse into the validator.
std::mutex g_mu;
std::map<const void*, NodeId> g_ranks;        // ranked mutexes only
std::map<NodeId, std::set<NodeId>> g_edges;   // blocking-acquisition order

bool InitialEnabled() {
#ifndef NDEBUG
  return true;
#else
  const char* env = std::getenv("SFS_DEBUG_LOCKS");
  return env != nullptr && env[0] == '1';
#endif
}

void DescribeNode(NodeId node, char* buf, std::size_t len) {
  if (node & kRankedBit) {
    std::snprintf(buf, len, "class=%u rank=%u",
                  static_cast<std::uint32_t>((node >> 32) & 0x7fffffffu),
                  static_cast<std::uint32_t>(node & 0xffffffffu));
  } else {
    std::snprintf(buf, len, "mutex@%p", reinterpret_cast<const void*>(node));
  }
}

[[noreturn]] void Fail(const char* kind, NodeId from, NodeId to) {
  char a[64];
  char b[64];
  DescribeNode(from, a, sizeof(a));
  DescribeNode(to, b, sizeof(b));
  std::fprintf(stderr, "LOCK ORDER: %s: acquiring [%s] while holding [%s]\n",
               kind, b, a);
  std::fflush(stderr);
  std::abort();
}

// g_mu held.  True iff `to` can reach `target` along recorded edges.
bool Reaches(NodeId from, NodeId target, std::set<NodeId>& visited) {
  if (from == target) {
    return true;
  }
  if (!visited.insert(from).second) {
    return false;
  }
  auto it = g_edges.find(from);
  if (it == g_edges.end()) {
    return false;
  }
  for (NodeId next : it->second) {
    if (Reaches(next, target, visited)) {
      return true;
    }
  }
  return false;
}

NodeId NodeFor(const void* mu) {
  auto it = g_ranks.find(mu);
  return it != g_ranks.end() ? it->second
                             : static_cast<NodeId>(reinterpret_cast<std::uintptr_t>(mu));
}

}  // namespace

std::atomic<bool> g_enabled{InitialEnabled()};

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void ResetGraphForTest() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_edges.clear();
}

void SetRank(const void* mu, std::uint32_t lock_class, std::uint32_t rank) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_ranks[mu] = RankedNode(lock_class, rank);
}

bool HeldByThisThread(const void* mu) {
  for (const Held& h : t_held) {
    if (h.mu == mu) {
      return true;
    }
  }
  return false;
}

void OnAcquire(const void* mu, bool blocking) {
  NodeId node;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    node = NodeFor(mu);
    if (blocking && !t_held.empty()) {
      for (const Held& h : t_held) {
        if (h.mu == mu || h.node == node) {
          // Blocking re-acquisition of a mutex (or of its shared rank node,
          // which another family member should never alias while held in a
          // correct ascending order) deadlocks this thread on itself.
          Fail("self-deadlock", h.node, node);
        }
      }
      for (const Held& h : t_held) {
        auto [it, inserted] = g_edges[h.node].insert(node);
        (void)it;
        if (inserted) {
          // New edge h.node -> node: if node already reaches h.node, the
          // edge closes a cycle — report before this thread blocks.
          std::set<NodeId> visited;
          if (Reaches(node, h.node, visited)) {
            g_edges[h.node].erase(node);
            Fail("lock-order inversion", h.node, node);
          }
        }
      }
    }
  }
  t_held.push_back(Held{mu, node});
}

void OnRelease(const void* mu) {
  // Releases are LIFO in the common case; scan backwards.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Not held by this thread: tolerated, because validation can be enabled
  // mid-process while locks taken before enablement are still held.
}

void OnDestroy(const void* mu) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = g_ranks.find(mu);
  if (it != g_ranks.end()) {
    // Rank-family nodes are shared across instances and stay in the graph.
    g_ranks.erase(it);
    return;
  }
  // Address nodes die with the mutex: a later mutex at the same address must
  // not inherit these edges.
  const NodeId node = static_cast<NodeId>(reinterpret_cast<std::uintptr_t>(mu));
  g_edges.erase(node);
  for (auto& [from, targets] : g_edges) {
    (void)from;
    targets.erase(node);
  }
}

}  // namespace sfs::common::lock_order

// Clang thread-safety analysis attribute macros (SFS_THREAD_ANNOTATION).
//
// These wrap the capability-based static analysis attributes behind macros
// that expand to nothing on compilers without the attribute (GCC), so the
// annotated locking primitives in mutex.h cost literally zero there.  Under
// clang with -Wthread-safety (added automatically by the build when the
// compiler is Clang; CI promotes it to -Werror=thread-safety) the analysis
// turns the scheduler locking contract (sched/scheduler.h) into compile
// errors: reads of a GUARDED_BY field outside its mutex, a REQUIRES method
// called without the capability, a scoped lock leaking past its function.
//
// Conventions (DESIGN.md §11):
//   * fields touched only under one mutex:           SFS_GUARDED_BY(mu)
//   * methods that demand the caller hold a mutex:   SFS_REQUIRES(mu)
//   * methods that must NOT be entered holding it:   SFS_EXCLUDES(mu)
//   * dynamic acquisition the analysis cannot follow (movable guards,
//     variable lock sets, descending try_lock): SFS_NO_THREAD_SAFETY_ANALYSIS
//     with a comment naming the runtime validator or contract that covers it.

#ifndef SFS_COMMON_THREAD_ANNOTATIONS_H_
#define SFS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SFS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SFS_THREAD_ANNOTATION
#define SFS_THREAD_ANNOTATION(x)  // no-op: GCC and pre-capability clang
#endif

// On the lock type itself.
#define SFS_CAPABILITY(name) SFS_THREAD_ANNOTATION(capability(name))
#define SFS_SCOPED_CAPABILITY SFS_THREAD_ANNOTATION(scoped_lockable)

// On data members.
#define SFS_GUARDED_BY(x) SFS_THREAD_ANNOTATION(guarded_by(x))
#define SFS_PT_GUARDED_BY(x) SFS_THREAD_ANNOTATION(pt_guarded_by(x))

// On functions/methods.
#define SFS_REQUIRES(...) SFS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SFS_ACQUIRE(...) SFS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SFS_RELEASE(...) SFS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SFS_TRY_ACQUIRE(...) SFS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SFS_EXCLUDES(...) SFS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SFS_ASSERT_CAPABILITY(x) SFS_THREAD_ANNOTATION(assert_capability(x))
#define SFS_RETURN_CAPABILITY(x) SFS_THREAD_ANNOTATION(lock_returned(x))
#define SFS_NO_THREAD_SAFETY_ANALYSIS SFS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SFS_COMMON_THREAD_ANNOTATIONS_H_

// Simulated-time units.
//
// All simulator and scheduler time is integral microseconds (`Tick`).  The paper's
// testbed used a 200 ms maximum quantum on Linux 2.2 (10 ms timer tick); both
// constants are reproduced here as defaults.

#ifndef SFS_COMMON_TIME_H_
#define SFS_COMMON_TIME_H_

#include <cstdint>

namespace sfs {

// One tick is one microsecond of simulated (or measured) time.
using Tick = std::int64_t;

inline constexpr Tick kTicksPerUsec = 1;
inline constexpr Tick kTicksPerMsec = 1000;
inline constexpr Tick kTicksPerSec = 1000 * 1000;

// A compute demand that never completes (used by Inf-style workloads).
inline constexpr Tick kTickInfinity = INT64_MAX / 4;

constexpr Tick Usec(std::int64_t us) { return us * kTicksPerUsec; }
constexpr Tick Msec(std::int64_t ms) { return ms * kTicksPerMsec; }
constexpr Tick Sec(std::int64_t s) { return s * kTicksPerSec; }

constexpr double ToSeconds(Tick t) { return static_cast<double>(t) / kTicksPerSec; }
constexpr double ToMillis(Tick t) { return static_cast<double>(t) / kTicksPerMsec; }

// Default maximum quantum used throughout the paper's evaluation (Section 4.1).
inline constexpr Tick kDefaultQuantum = Msec(200);

// Linux 2.2 timer tick (HZ=100), used by the time-sharing baseline.
inline constexpr Tick kLinuxTimerTick = Msec(10);

}  // namespace sfs

#endif  // SFS_COMMON_TIME_H_

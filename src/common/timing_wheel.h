// Hierarchical timing wheel: the engine's O(1) event queue.
//
// A binary-heap event queue pays O(log n) per push/pop with n = every pending
// event (one wakeup per blocked thread, one timer per processor), and each heap
// operation percolates through ~log n cache lines of a large array.  The wheel
// replaces that with hashed slots: eight levels of 256 slots, level k spanning
// 2^(8k) ticks per slot, so any 64-bit timestamp maps to exactly one slot in
// O(1).  Per-level occupancy bitmaps locate the next nonempty slot with a few
// word scans instead of walking empty ticks, and events migrate ("cascade") at
// most kLevels-1 times toward level 0 as time approaches, keeping amortized
// cost per event constant.
//
// Ordering contract (what makes it substitutable for a (time, seq) min-heap):
// pops are globally ordered by time, FIFO among equal times.  Each slot chains
// events in arrival order; a level-0 slot spans exactly one tick, cascades
// splice in arrival order, and an event can only land in a slot *below* the
// level where an older same-time event waits after that older event has
// already cascaded past it (current_ never enters an uncascaded slot).  So
// FIFO-per-slot is FIFO-per-tick, with no sequence numbers or sorting.
//
// Memory: nodes come from an internal free list backed by chunked storage, so
// a Push/Pop steady state performs zero allocations.  Reserve() pre-sizes the
// pool.  Times must be non-negative and (once popped) non-decreasing: pushing
// an event earlier than the last popped time is a contract violation (checked).

#ifndef SFS_COMMON_TIMING_WHEEL_H_
#define SFS_COMMON_TIMING_WHEEL_H_

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/assert.h"

namespace sfs::common {

template <typename T>
class TimingWheel {
 public:
  TimingWheel() = default;

  TimingWheel(const TimingWheel&) = delete;
  TimingWheel& operator=(const TimingWheel&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Pre-sizes the node pool to hold at least `n` pending events.
  void Reserve(std::size_t n) {
    while (pooled_ < n) {
      GrowPool();
    }
  }

  // Enqueues `value` at `time`.  `time` must be >= 0 and >= the time of the
  // last PopFront() (the discrete-event invariant: no event schedules work in
  // the past).
  void Push(std::int64_t time, const T& value) {
    SFS_DCHECK(time >= 0);
    const auto t = static_cast<std::uint64_t>(time);
    SFS_DCHECK(t >= current_);
    Node* node = AllocNode();
    node->value = value;
    node->time = t;
    node->next = nullptr;
    const int level = LevelFor(t);
    Slot& slot = slots_[SlotIndex(level, t)];
    if (slot.head == nullptr) {
      slot.head = node;
      MarkOccupied(level, SlotInLevel(level, t));
    } else {
      slot.tail->next = node;
    }
    slot.tail = node;
    ++size_;
  }

  // Finds the earliest pending event time, provided it is <= `until`.  Returns
  // false (leaving internal time untouched beyond `until`) when the queue is
  // empty or the next event lies beyond the bound, so later pushes at times
  // > `until` remain legal.  Cascades higher-level slots toward level 0 as a
  // side effect; amortized O(1) per event over a run.
  bool NextTime(std::int64_t until, std::int64_t* time) {
    SFS_DCHECK(until >= 0);
    const auto bound = static_cast<std::uint64_t>(until);
    while (size_ > 0) {
      // Fast path: the slot for the current tick still has events (same-tick
      // batch in flight, including events pushed by the handlers themselves).
      if (slots_[SlotIndex(0, current_)].head != nullptr) {
        SFS_DCHECK(current_ <= bound);
        *time = static_cast<std::int64_t>(current_);
        return true;
      }
      const int idx0 = FirstOccupied(0);
      if (idx0 >= 0) {
        const std::uint64_t t = (current_ & ~std::uint64_t{kSlotMask}) |
                                static_cast<std::uint64_t>(idx0);
        if (t > bound) {
          return false;
        }
        current_ = t;
        *time = static_cast<std::int64_t>(t);
        return true;
      }
      // Level 0 exhausted: cascade the earliest occupied higher-level slot
      // down and retry.  Advancing current_ to the slot's window start is safe
      // because every pending event in (or above) that window is >= it.
      int level = 1;
      int idx = -1;
      for (; level < kLevels; ++level) {
        idx = FirstOccupied(level);
        if (idx >= 0) {
          break;
        }
      }
      SFS_DCHECK(level < kLevels);  // size_ > 0 guarantees an occupied slot
      const int shift = kSlotBits * level;
      const std::uint64_t window_start =
          (ClearLowBits(current_, shift + kSlotBits)) |
          (static_cast<std::uint64_t>(idx) << shift);
      if (window_start > bound) {
        return false;
      }
      SFS_DCHECK(window_start > current_);
      current_ = window_start;
      Cascade(level, idx);
    }
    return false;
  }

  // Dequeues and invokes `fn(value)` for every event at the tick NextTime()
  // just reported, returning the number drained.  Only valid immediately after
  // a successful NextTime().  Detaching the whole level-0 chain up front lets
  // the hot loop walk a linked list with next-node prefetch instead of
  // re-deriving the slot per event; the outer loop re-checks the slot because
  // `fn` may push new events at this same tick (they chain behind the detached
  // batch, exactly as PopFront() would see them), so the invocation order is
  // identical to a NextTime()/PopFront() loop.
  template <typename Fn>
  std::size_t DrainCurrent(Fn&& fn) {
    Slot& slot = slots_[SlotIndex(0, current_)];
    std::size_t drained = 0;
    while (slot.head != nullptr) {
      Node* node = slot.head;
      slot.head = nullptr;
      slot.tail = nullptr;
      ClearOccupied(0, SlotInLevel(0, current_));
      while (node != nullptr) {
        Node* next = node->next;
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(next);
#endif
        SFS_DCHECK(node->time == current_);
        --size_;
        ++drained;
        fn(node->value);
        FreeNode(node);
        node = next;
      }
    }
    return drained;
  }

  // Dequeues the event at the time NextTime() just reported.  Only valid
  // immediately after a successful NextTime() (possibly interleaved with
  // pushes).
  T PopFront() {
    Slot& slot = slots_[SlotIndex(0, current_)];
    Node* node = slot.head;
    SFS_CHECK(node != nullptr);
    SFS_DCHECK(node->time == current_);
    slot.head = node->next;
    if (slot.head == nullptr) {
      slot.tail = nullptr;
      ClearOccupied(0, SlotInLevel(0, current_));
    }
    T value = node->value;
    FreeNode(node);
    --size_;
    return value;
  }

 private:
  static constexpr int kSlotBits = 8;
  static constexpr int kSlotsPerLevel = 1 << kSlotBits;
  static constexpr int kSlotMask = kSlotsPerLevel - 1;
  static constexpr int kLevels = 8;  // 8 levels x 8 bits = full 64-bit range
  static constexpr int kBitmapWords = kSlotsPerLevel / 64;
  static constexpr std::size_t kChunkSize = 256;

  struct Node {
    T value;
    std::uint64_t time = 0;
    Node* next = nullptr;
  };

  struct Slot {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  static std::uint64_t ClearLowBits(std::uint64_t v, int bits) {
    return bits >= 64 ? 0 : (v >> bits) << bits;
  }

  // Level of the slot for time `t`: the byte position of the highest bit in
  // which `t` differs from current_ (level 0 when equal).  By construction a
  // pushed slot is never the slot current_ itself occupies on levels >= 1.
  int LevelFor(std::uint64_t t) const {
    const std::uint64_t diff = t ^ current_;
    if (diff == 0) {
      return 0;
    }
    return (63 - std::countl_zero(diff)) / kSlotBits;
  }

  static int SlotInLevel(int level, std::uint64_t t) {
    return static_cast<int>((t >> (kSlotBits * level)) & kSlotMask);
  }

  static int SlotIndex(int level, std::uint64_t t) {
    return level * kSlotsPerLevel + SlotInLevel(level, t);
  }

  void MarkOccupied(int level, int slot) {
    occupied_[level][slot / 64] |= std::uint64_t{1} << (slot % 64);
  }

  void ClearOccupied(int level, int slot) {
    occupied_[level][slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
  }

  // Lowest occupied slot index in `level`, or -1.  Past slots are always empty
  // (events are popped in time order), so no lower bound is needed.
  int FirstOccupied(int level) const {
    for (int w = 0; w < kBitmapWords; ++w) {
      if (occupied_[level][w] != 0) {
        return w * 64 + std::countr_zero(occupied_[level][w]);
      }
    }
    return -1;
  }

  // Re-files every event of (level, idx) against the advanced current_; each
  // lands on a strictly lower level.  Splicing in chain order preserves the
  // FIFO-among-equal-times contract.
  void Cascade(int level, int idx) {
    Slot& slot = slots_[level * kSlotsPerLevel + idx];
    Node* node = slot.head;
    slot.head = nullptr;
    slot.tail = nullptr;
    ClearOccupied(level, idx);
    while (node != nullptr) {
      Node* next = node->next;
      const int new_level = LevelFor(node->time);
      SFS_DCHECK(new_level < level);
      Slot& dest = slots_[SlotIndex(new_level, node->time)];
      node->next = nullptr;
      if (dest.head == nullptr) {
        dest.head = node;
        MarkOccupied(new_level, SlotInLevel(new_level, node->time));
      } else {
        dest.tail->next = node;
      }
      dest.tail = node;
      node = next;
    }
  }

  Node* AllocNode() {
    if (free_ == nullptr) {
      GrowPool();
    }
    Node* node = free_;
    free_ = node->next;
    return node;
  }

  void FreeNode(Node* node) {
    node->next = free_;
    free_ = node;
  }

  void GrowPool() {
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    Node* chunk = chunks_.back().get();
    for (std::size_t i = 0; i < kChunkSize; ++i) {
      chunk[i].next = free_;
      free_ = &chunk[i];
    }
    pooled_ += kChunkSize;
  }

  std::uint64_t current_ = 0;  // time of the last popped (or skipped-to) tick
  std::size_t size_ = 0;
  std::size_t pooled_ = 0;
  Slot slots_[kLevels * kSlotsPerLevel] = {};
  std::uint64_t occupied_[kLevels][kBitmapWords] = {};
  Node* free_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> chunks_;
};

}  // namespace sfs::common

#endif  // SFS_COMMON_TIMING_WHEEL_H_

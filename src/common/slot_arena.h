// Dense, reference-stable object arena addressed by small integer slot ids.
//
// The engine keeps every task it has ever been handed alive until it is
// destroyed (exited tasks stay inspectable), so the container needs exactly
// three operations: append, O(1) index, in-order iteration.  A hash map pays a
// hash + bucket chase per lookup on the dispatch/charge hot path; the arena
// makes lookup a chunked vector index.  Storage is chunked (not one contiguous
// vector) so references returned earlier survive growth — an exit hook may add
// new tasks while the engine still holds a reference to the exiting one.
//
// Elements are never erased; slot ids are dense, assigned in insertion order,
// and valid for the arena's lifetime.

#ifndef SFS_COMMON_SLOT_ARENA_H_
#define SFS_COMMON_SLOT_ARENA_H_

#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/common/assert.h"

namespace sfs::common {

template <typename T>
class SlotArena {
 public:
  using SlotId = std::uint32_t;

  SlotArena() = default;

  SlotArena(const SlotArena&) = delete;
  SlotArena& operator=(const SlotArena&) = delete;

  ~SlotArena() {
    for (std::size_t i = 0; i < size_; ++i) {
      Ptr(i)->~T();
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Pre-allocates chunk storage for at least `n` elements.
  void Reserve(std::size_t n) {
    const std::size_t chunks = (n + kChunkSize - 1) / kChunkSize;
    chunks_.reserve(chunks);
    while (chunks_.size() < chunks) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
  }

  // Constructs a new element and returns its slot id (== insertion index).
  template <typename... Args>
  SlotId Emplace(Args&&... args) {
    if (size_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    T* p = Ptr(size_);
    new (p) T(std::forward<Args>(args)...);
    return static_cast<SlotId>(size_++);
  }

  T& operator[](SlotId slot) {
    SFS_DCHECK(slot < size_);
    return *Ptr(slot);
  }

  const T& operator[](SlotId slot) const {
    SFS_DCHECK(slot < size_);
    return *Ptr(slot);
  }

  // Visits every element in slot (insertion) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(*Ptr(i));
    }
  }

 private:
  static constexpr std::size_t kChunkBits = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  struct Chunk {
    alignas(T) unsigned char bytes[sizeof(T) * kChunkSize];
  };

  T* Ptr(std::size_t i) const {
    unsigned char* base = chunks_[i >> kChunkBits]->bytes;
    return std::launder(reinterpret_cast<T*>(base + sizeof(T) * (i & kChunkMask)));
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace sfs::common

#endif  // SFS_COMMON_SLOT_ARENA_H_

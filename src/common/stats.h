// Small statistics accumulators used by the metrics library and benchmarks.

#ifndef SFS_COMMON_STATS_H_
#define SFS_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sfs::common {

// Streaming count/mean/variance/min/max (Welford's algorithm); O(1) space.
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double variance() const;  // population variance
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores every sample; supports exact percentiles.  Use for modest sample counts
// (response times, per-decision latencies).
class SampleSet {
 public:
  void Add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  // Exact percentile by nearest-rank; p in [0, 100].
  double Percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void EnsureSorted() const;
};

// Fixed-width histogram over [lo, hi) with `buckets` bins plus under/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace sfs::common

#endif  // SFS_COMMON_STATS_H_

#include "src/common/rng.h"

#include <cmath>

#include "src/common/assert.h"

namespace sfs::common {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  SFS_DCHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  SFS_DCHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

double Rng::Exponential(double mean) {
  SFS_DCHECK(mean > 0);
  double u = UniformDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

}  // namespace sfs::common

// Lightweight CHECK/DCHECK assertion macros.
//
// The scheduling hot paths in this library are allocation-free and exception-free
// (os-systems style); invariant violations are programming errors and abort the
// process with a source location rather than unwinding.

#ifndef SFS_COMMON_ASSERT_H_
#define SFS_COMMON_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace sfs::common {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace sfs::common

// Always-on invariant check. Use for conditions whose violation would corrupt
// scheduler state (e.g. unknown thread ids, double dispatch).
#define SFS_CHECK(cond)                                           \
  do {                                                            \
    if (!(cond)) {                                                \
      ::sfs::common::CheckFailed(#cond, __FILE__, __LINE__);      \
    }                                                             \
  } while (0)

// Debug-only check for hot paths; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SFS_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define SFS_DCHECK(cond) SFS_CHECK(cond)
#endif

#endif  // SFS_COMMON_ASSERT_H_

// Annotated locking primitives: common::Mutex / MutexLock / UniqueMutexLock /
// CondVar — thin wrappers over std::mutex and std::condition_variable that
// carry the Clang thread-safety capability attributes (thread_annotations.h)
// and, in debug builds, feed a process-wide runtime lock-order validator.
//
// Why not raw std::mutex: the standard types carry no capability attributes,
// so -Wthread-safety cannot see them, and the repo's locking contract
// (sched/scheduler.h, DESIGN.md §5/§11) stays comments-only.  Every mutex in
// src/{sched,exec,sim,obs} is a common::Mutex; the determinism lint
// (tools/lint/check_determinism.py) rejects new raw std::mutex there.
//
// Two enforcement layers, split by what each can see:
//
//   * Static (clang -Werror=thread-safety): unconditional locking — scoped
//     MutexLock sections, GUARDED_BY fields, REQUIRES(mu) methods such as
//     CondVar::Wait.  Zero runtime cost, catches misuse at compile time.
//   * Dynamic (the lock-order validator below): the contract's dynamic half,
//     which capability analysis cannot express — the movable DispatchGuard,
//     LockLifecycle's variable ascending lock set, the sharded steal path's
//     descending try_lock+skip.  Every blocking acquisition records a
//     directed edge (held-node -> acquired-node) into a process-wide graph
//     keyed by lock *rank class* (per-shard mutex families collapse to one
//     (class, rank) node per shard, so ascending-CPU-id order is checked
//     across instances); the first cycle-forming edge — or a blocking
//     re-acquisition of a held mutex (self-deadlock) — aborts with a
//     "LOCK ORDER:" report.  try_lock acquisitions mark the mutex held but
//     add no edge: a non-blocking acquisition cannot participate in a cycle
//     of waits, which is exactly why the descending steal path is legal.
//
// Cost model: common::Mutex is layout-identical to std::mutex in every build
// (validator bookkeeping lives in side tables keyed by address;
// static_assert'd in tests/common/mutex_test.cc).  With SFS_DEBUG_LOCKS
// compiled in (the default) each lock/unlock pays one relaxed atomic load
// and a predicted-untaken branch when validation is off at runtime — off by
// default in NDEBUG builds, on in debug builds, overridable either way with
// lock_order::SetEnabled() or the SFS_DEBUG_LOCKS=1 environment variable.
// Compiling with -DSFS_DEBUG_LOCKS=0 removes even the branch.

#ifndef SFS_COMMON_MUTEX_H_
#define SFS_COMMON_MUTEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/thread_annotations.h"

// 0: validator calls compiled out entirely.  1 (default): compiled in,
// runtime-gated by lock_order::Enabled() (on by default iff !NDEBUG).
#ifndef SFS_DEBUG_LOCKS
#define SFS_DEBUG_LOCKS 1
#endif

namespace sfs::common {

class Mutex;

// Runtime lock-order validator (see the header comment).  All functions are
// safe to call from any thread; Held bookkeeping is thread-local, the edge
// graph is process-wide behind its own internal mutex.
namespace lock_order {

extern std::atomic<bool> g_enabled;

inline bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

// Turns validation on/off at runtime (tests flip it on in Release builds).
void SetEnabled(bool enabled);

// Clears the process-wide edge graph (test isolation; held-lock state and
// rank registrations are untouched).
void ResetGraphForTest();

// Assigns `mu` to a rank family: all mutexes sharing `lock_class` collapse to
// one graph node per `rank`, so the ascending-rank discipline is validated
// across every instance of the family (sched uses one class for dispatch
// mutexes, rank == CPU id).  Unregistered mutexes get a per-address node.
void SetRank(const void* mu, std::uint32_t lock_class, std::uint32_t rank);

// True iff the calling thread currently holds `mu` (test helper).
bool HeldByThisThread(const void* mu);

// Mutex internals; not for direct use.
void OnAcquire(const void* mu, bool blocking);
void OnRelease(const void* mu);
void OnDestroy(const void* mu);

}  // namespace lock_order

// Rank class used by the scheduler's dispatch-mutex family (scheduler.h);
// further classes count up from here.
inline constexpr std::uint32_t kLockClassDispatch = 1;

// Annotated std::mutex.  Satisfies Lockable, so std::unique_lock<Mutex> and
// std::lock_guard<Mutex> also work where an unannotated guard is acceptable.
class SFS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() {
#if SFS_DEBUG_LOCKS
    if (lock_order::Enabled()) [[unlikely]] {
      lock_order::OnDestroy(this);
    }
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SFS_ACQUIRE() {
#if SFS_DEBUG_LOCKS
    // Recorded before blocking: a cycle-forming wait aborts with the report
    // instead of deadlocking.
    if (lock_order::Enabled()) [[unlikely]] {
      lock_order::OnAcquire(this, /*blocking=*/true);
    }
#endif
    mu_.lock();
  }

  bool try_lock() SFS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
#if SFS_DEBUG_LOCKS
    if (lock_order::Enabled()) [[unlikely]] {
      lock_order::OnAcquire(this, /*blocking=*/false);
    }
#endif
    return true;
  }

  void unlock() SFS_RELEASE() {
#if SFS_DEBUG_LOCKS
    if (lock_order::Enabled()) [[unlikely]] {
      lock_order::OnRelease(this);
    }
#endif
    mu_.unlock();
  }

  // Static-analysis assertion that the capability is held on paths the
  // analysis cannot follow (e.g. inside a helper reached only via a movable
  // guard).  Deliberately no runtime check: single-threaded drivers exercise
  // the same code paths without taking any lock (scheduler.h contract).
  void AssertHeld() const SFS_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Scoped lock (std::lock_guard shape) visible to the static analysis: the
// preferred guard wherever the critical section is a lexical scope.
class SFS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SFS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SFS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Movable, optionally-empty, optionally-try guard (std::unique_lock shape)
// for the contract's dynamic acquisition patterns: guards returned from
// LockDispatch/LockVictimShard, the LockLifecycle vector, conditional
// locking (LockDispatchIf).  Capability analysis cannot track a lock through
// moves, so the internals are NO_THREAD_SAFETY_ANALYSIS and the runtime
// validator carries the enforcement on these paths.
class UniqueMutexLock {
 public:
  UniqueMutexLock() = default;

  explicit UniqueMutexLock(Mutex& mu) SFS_NO_THREAD_SAFETY_ANALYSIS : mu_(&mu),
                                                                      owns_(true) {
    mu.lock();
  }

  UniqueMutexLock(Mutex& mu, std::try_to_lock_t) SFS_NO_THREAD_SAFETY_ANALYSIS
      : mu_(&mu), owns_(mu.try_lock()) {}

  UniqueMutexLock(UniqueMutexLock&& other) noexcept
      : mu_(other.mu_), owns_(other.owns_) {
    other.mu_ = nullptr;
    other.owns_ = false;
  }

  UniqueMutexLock& operator=(UniqueMutexLock&& other) noexcept
      SFS_NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) {
      if (owns_) {
        mu_->unlock();
      }
      mu_ = other.mu_;
      owns_ = other.owns_;
      other.mu_ = nullptr;
      other.owns_ = false;
    }
    return *this;
  }

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  ~UniqueMutexLock() SFS_NO_THREAD_SAFETY_ANALYSIS {
    if (owns_) {
      mu_->unlock();
    }
  }

  void unlock() SFS_NO_THREAD_SAFETY_ANALYSIS {
    if (owns_) {
      mu_->unlock();
      owns_ = false;
    }
  }

  bool owns_lock() const { return owns_; }
  Mutex* mutex() const { return mu_; }

 private:
  Mutex* mu_ = nullptr;
  bool owns_ = false;
};

// Condition variable bound to common::Mutex.  Wait sites must hold the mutex
// (REQUIRES — statically checked); predicate re-checks belong in an explicit
// `while (!cond) cv.Wait(mu);` loop at the call site, where the analysis can
// see the guarded reads under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SFS_REQUIRES(mu) {
    BeginWait(mu);
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
    EndWait(mu);
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>& deadline)
      SFS_REQUIRES(mu) {
    BeginWait(mu);
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    EndWait(mu);
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // The mutex is released for the duration of the wait; mirror that in the
  // validator's held set so edges recorded by other acquisitions while this
  // thread sleeps are not attributed to it.
  static void BeginWait(Mutex& mu) {
#if SFS_DEBUG_LOCKS
    if (lock_order::Enabled()) [[unlikely]] {
      lock_order::OnRelease(&mu);
    }
#else
    (void)mu;
#endif
  }
  static void EndWait(Mutex& mu) {
#if SFS_DEBUG_LOCKS
    if (lock_order::Enabled()) [[unlikely]] {
      lock_order::OnAcquire(&mu, /*blocking=*/true);
    }
#else
    (void)mu;
#endif
  }

  std::condition_variable cv_;
};

}  // namespace sfs::common

#endif  // SFS_COMMON_MUTEX_H_

#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/assert.h"

namespace sfs::common {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  SFS_DCHECK(p >= 0.0 && p <= 100.0);
  const auto n = static_cast<double>(samples_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank > 0) {
    --rank;
  }
  rank = std::min(rank, samples_.size() - 1);
  return samples_[rank];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  SFS_CHECK(hi > lo && buckets > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

}  // namespace sfs::common

// Intrusive doubly-linked list.
//
// The paper's kernel implementation keeps every runnable thread on three queues
// simultaneously (Section 3.1: by weight, by start tag, by surplus) and relies on
// O(1) unlink when a thread blocks or departs.  An intrusive list gives exactly
// that: the link nodes live inside the scheduling entity, insertion and removal
// never allocate, and one entity can carry several hooks (one per queue).
//
// Element recovery is hook-address arithmetic: the hook's offset inside T is a
// compile-time constant of the `Hook` member pointer, so a hook is two pointers
// — 16 bytes, not 24.  An Entity carries four hooks, so the saved owner
// pointers are what keep it at three cache lines (see entity.h).

#ifndef SFS_COMMON_INTRUSIVE_LIST_H_
#define SFS_COMMON_INTRUSIVE_LIST_H_

#include <cstddef>
#include <iterator>

#include "src/common/assert.h"

namespace sfs::common {

// One link in an intrusive list.  Place one ListHook member in the element type for
// each list the element can concurrently belong to.
class ListHook {
 public:
  ListHook() = default;
  ~ListHook() { SFS_DCHECK(!linked()); }

  ListHook(const ListHook&) = delete;
  ListHook& operator=(const ListHook&) = delete;

  bool linked() const { return next_ != nullptr; }

 private:
  template <typename T, ListHook T::*Hook>
  friend class IntrusiveList;

  ListHook* prev_ = nullptr;
  ListHook* next_ = nullptr;
};

// Intrusive doubly-linked list of T, linked through the member hook `Hook`.
// The list does not own its elements.  All operations are O(1) except size
// verification helpers.
template <typename T, ListHook T::*Hook>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.prev_ = &sentinel_;
    sentinel_.next_ = &sentinel_;
  }

  ~IntrusiveList() {
    clear();
    // Unlink the sentinel from itself so its ~ListHook invariant check passes.
    sentinel_.prev_ = nullptr;
    sentinel_.next_ = nullptr;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return sentinel_.next_ == &sentinel_; }
  std::size_t size() const { return size_; }

  T* front() { return empty() ? nullptr : Owner(sentinel_.next_); }
  const T* front() const { return empty() ? nullptr : Owner(sentinel_.next_); }
  T* back() { return empty() ? nullptr : Owner(sentinel_.prev_); }
  const T* back() const { return empty() ? nullptr : Owner(sentinel_.prev_); }

  void push_front(T* elem) { LinkAfter(&sentinel_, HookOf(elem), elem); }
  void push_back(T* elem) { LinkAfter(sentinel_.prev_, HookOf(elem), elem); }

  // Inserts `elem` immediately before `pos` (which must be linked in this list).
  void insert_before(T* pos, T* elem) { LinkAfter(HookOf(pos)->prev_, HookOf(elem), elem); }
  void insert_after(T* pos, T* elem) { LinkAfter(HookOf(pos), HookOf(elem), elem); }

  // Unlinks `elem` from the list.  O(1).
  void erase(T* elem) {
    ListHook* h = HookOf(elem);
    SFS_DCHECK(h->linked());
    h->prev_->next_ = h->next_;
    h->next_->prev_ = h->prev_;
    h->prev_ = nullptr;
    h->next_ = nullptr;
    --size_;
  }

  T* pop_front() {
    T* elem = front();
    if (elem != nullptr) {
      erase(elem);
    }
    return elem;
  }

  void clear() {
    while (!empty()) {
      pop_front();
    }
  }

  // Note: true whenever the element is linked through this hook member —
  // which list instance linked it is not recorded (same contract as before;
  // the owner pointer was always the element itself when linked).
  bool contains(const T* elem) const { return (elem->*Hook).linked(); }

  // Successor / predecessor of a linked element; nullptr at the ends.
  T* next(T* elem) {
    ListHook* n = HookOf(elem)->next_;
    return n == &sentinel_ ? nullptr : Owner(n);
  }
  T* prev(T* elem) {
    ListHook* p = HookOf(elem)->prev_;
    return p == &sentinel_ ? nullptr : Owner(p);
  }
  const T* next(const T* elem) const {
    const ListHook* n = (elem->*Hook).next_;
    return n == &sentinel_ ? nullptr : Owner(n);
  }
  const T* prev(const T* elem) const {
    const ListHook* p = (elem->*Hook).prev_;
    return p == &sentinel_ ? nullptr : Owner(p);
  }

  // Minimal forward iterator so the list works with range-for.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T*;
    using difference_type = std::ptrdiff_t;

    explicit iterator(ListHook* at) : at_(at) {}

    T* operator*() const { return Owner(at_); }
    iterator& operator++() {
      at_ = at_->next_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }
    bool operator==(const iterator& o) const { return at_ == o.at_; }

   private:
    ListHook* at_;
  };

  iterator begin() { return iterator(sentinel_.next_); }
  iterator end() { return iterator(&sentinel_); }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = const T*;
    using difference_type = std::ptrdiff_t;

    explicit const_iterator(const ListHook* at) : at_(at) {}

    const T* operator*() const { return Owner(at_); }
    const_iterator& operator++() {
      at_ = at_->next_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }
    bool operator==(const const_iterator& o) const { return at_ == o.at_; }

   private:
    const ListHook* at_;
  };

  const_iterator begin() const { return const_iterator(sentinel_.next_); }
  const_iterator end() const { return const_iterator(&sentinel_); }

 private:
  static ListHook* HookOf(T* elem) { return &(elem->*Hook); }

  // Byte offset of the hook member inside T.  Applying the member pointer to a
  // probe address is plain offset arithmetic for a non-virtual data member, and
  // the subtraction folds to a compile-time constant.
  static std::ptrdiff_t HookOffset() {
    alignas(T) static char probe_storage[sizeof(T)];
    const T* probe = reinterpret_cast<const T*>(probe_storage);
    return reinterpret_cast<const char*>(&(probe->*Hook)) -
           reinterpret_cast<const char*>(probe);
  }

  static T* Owner(ListHook* h) {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(h) - HookOffset());
  }
  static const T* Owner(const ListHook* h) {
    return reinterpret_cast<const T*>(reinterpret_cast<const char*>(h) - HookOffset());
  }

  void LinkAfter(ListHook* pos, ListHook* h, T* elem) {
    SFS_DCHECK(!h->linked());
    (void)elem;
    h->prev_ = pos;
    h->next_ = pos->next_;
    pos->next_->prev_ = h;
    pos->next_ = h;
    ++size_;
  }

  ListHook sentinel_;
  std::size_t size_ = 0;
};

}  // namespace sfs::common

#endif  // SFS_COMMON_INTRUSIVE_LIST_H_

// Deterministic indexed skip list keyed like SortedList.
//
// Section 3.2 notes the run-queue insertion cost "can be further reduced to
// O(log t) if binary search is used to determine the insert position" — linked
// lists cannot binary-search, but a skip list delivers the same bound with the
// same ordering semantics.  IndexedSkipList is the O(log t) backend behind
// sched::RunQueue; `bench/abl_queue_structures` measures its crossover against
// SortedList on the scheduler's charge-reposition pattern.
//
// Tower heights come from an internal, fixed-seed generator, so behaviour is
// fully deterministic.  The list does not own its elements.

#ifndef SFS_COMMON_SKIP_LIST_H_
#define SFS_COMMON_SKIP_LIST_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "src/common/assert.h"
#include "src/common/intrusive_list.h"

namespace sfs::common {

// The O(log n) run-queue backend behind sched::RunQueue.  Beyond a textbook
// skip list, it carries everything the schedulers' SortedList usage requires:
//
//   * removal *by element* even after the caller mutated the element's key
//     (the schedulers' Reposition pattern updates tags first, then removes) —
//     each tower node stores the key it was inserted under, and an element ->
//     node index locates it in O(1);
//   * O(1) next/prev/front/back/contains and backwards scans — the bottom
//     level is threaded through the same intrusive ListHook the SortedList
//     backend uses, so iteration never touches the towers or the index;
//   * Clear() and Resort() for interface parity.
//
// Ordering semantics are identical to SortedList: ascending by KeyFn::Key with
// FIFO order among equal keys (Insert and InsertFromBack both place new
// elements after existing equals), which is the library-wide determinism
// contract.  Tower heights come from a fixed-seed SplitMix64 generator and
// the element index is never iterated, so behaviour is fully deterministic.
// The list does not own its elements.
template <typename T, ListHook T::*Hook, typename KeyFn>
class IndexedSkipList {
 public:
  static constexpr int kMaxLevel = 16;
  using Key = decltype(KeyFn::Key(std::declval<const T&>()));

  IndexedSkipList() : rng_state_(0x9E3779B97F4A7C15ULL) { head_ = NewNode(kMaxLevel); }

  ~IndexedSkipList() {
    Clear();
    DeleteNode(head_);
  }

  IndexedSkipList(const IndexedSkipList&) = delete;
  IndexedSkipList& operator=(const IndexedSkipList&) = delete;

  bool empty() const { return list_.empty(); }
  std::size_t size() const { return list_.size(); }

  T* front() { return list_.front(); }
  const T* front() const { return list_.front(); }
  T* back() { return list_.back(); }
  const T* back() const { return list_.back(); }
  bool contains(const T* elem) const { return list_.contains(elem); }
  T* next(T* elem) { return list_.next(elem); }
  T* prev(T* elem) { return list_.prev(elem); }
  const T* next(const T* elem) const { return list_.next(elem); }
  const T* prev(const T* elem) const { return list_.prev(elem); }

  // Inserts keeping ascending key order; equal keys go after existing ones
  // (FIFO among ties, matching SortedList).  O(log n).
  void Insert(T* elem) {
    const Key key = KeyFn::Key(*elem);
    std::array<Node*, kMaxLevel> update;
    Node* n = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      while (n->next[level] != nullptr && !(key < n->next[level]->key)) {
        n = n->next[level];
      }
      update[static_cast<std::size_t>(level)] = n;
    }
    const int height = RandomHeight();
    Node* node = NewNode(height);
    node->elem = elem;
    node->key = key;
    for (int level = 0; level < height; ++level) {
      node->next[level] = update[static_cast<std::size_t>(level)]->next[level];
      update[static_cast<std::size_t>(level)]->next[level] = node;
    }
    // Bottom-level neighbour threading through the intrusive hook: update[0] is
    // the last node with key <= elem's, i.e. the element's predecessor.
    if (update[0] == head_) {
      list_.push_front(elem);
    } else {
      list_.insert_after(update[0]->elem, elem);
    }
    const bool inserted = index_.emplace(elem, node).second;
    SFS_CHECK(inserted);
  }

  // Removes `elem`; CHECK-fails if absent.  Valid even if the element's key
  // changed since insertion (the node remembers the key it is filed under).
  void Remove(T* elem) {
    auto it = index_.find(elem);
    SFS_CHECK(it != index_.end());
    Node* target = it->second;
    const Key key = target->key;
    std::array<Node*, kMaxLevel> update;
    Node* n = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      while (n->next[level] != nullptr && n->next[level]->key < key) {
        n = n->next[level];
      }
      update[static_cast<std::size_t>(level)] = n;
    }
    // Walk the equal-key run to the exact node, keeping the update pointers in
    // sync (linear only within ties; keys with identity tie-breaks never tie).
    Node* cur = update[0]->next[0];
    while (cur != target) {
      SFS_CHECK(cur != nullptr && !(key < cur->key));
      for (int level = 0; level < kMaxLevel; ++level) {
        if (update[static_cast<std::size_t>(level)]->next[level] == cur) {
          update[static_cast<std::size_t>(level)] = cur;
        }
      }
      cur = cur->next[0];
    }
    for (int level = 0; level < kMaxLevel; ++level) {
      if (update[static_cast<std::size_t>(level)]->next[level] == target) {
        update[static_cast<std::size_t>(level)]->next[level] = target->next[level];
      }
    }
    list_.erase(elem);
    index_.erase(it);
    DeleteNode(target);
  }

  T* PopFront() {
    T* elem = list_.front();
    if (elem == nullptr) {
      return nullptr;
    }
    Remove(elem);
    return elem;
  }

  void Clear() {
    Node* n = head_->next[0];
    while (n != nullptr) {
      Node* following = n->next[0];
      DeleteNode(n);
      n = following;
    }
    for (int level = 0; level < kMaxLevel; ++level) {
      head_->next[level] = nullptr;
    }
    index_.clear();
    list_.clear();
  }

  // Re-snapshots every resident node's stored key from its element.  Required
  // after an in-place key mutation that preserved the residents' relative
  // order (uniform tag shifts; a refresh that already removed every
  // out-of-order element): the tower structure is reused as-is, but later
  // searches must compare against current keys.
  void SyncKeys() {
    for (Node* n = head_->next[0]; n != nullptr; n = n->next[0]) {
      n->key = KeyFn::Key(*n->elem);
    }
    SFS_DCHECK(IsSorted());
  }

  // Visits the first / last k elements in key order; O(k) via the hooks.
  template <typename Fn>
  std::size_t ForFirstK(std::size_t k, Fn&& fn) {
    std::size_t visited = 0;
    for (T* cur = list_.front(); cur != nullptr && visited < k; cur = list_.next(cur)) {
      fn(cur);
      ++visited;
    }
    return visited;
  }

  template <typename Fn>
  std::size_t ForLastK(std::size_t k, Fn&& fn) {
    std::size_t visited = 0;
    for (T* cur = list_.back(); cur != nullptr && visited < k; cur = list_.prev(cur)) {
      fn(cur);
      ++visited;
    }
    return visited;
  }

  // Debug helper: true iff *current* keys are non-decreasing in list order.
  bool IsSorted() {
    const T* prev = nullptr;
    for (T* cur = list_.front(); cur != nullptr; cur = list_.next(cur)) {
      if (prev != nullptr && KeyFn::Key(*cur) < KeyFn::Key(*prev)) {
        return false;
      }
      prev = cur;
    }
    return true;
  }

 private:
  struct Node {
    T* elem = nullptr;
    Key key{};
    // Variable-height tower; allocated with the node (NewNode).
    Node* next[1];
  };
  static_assert(std::is_trivially_destructible_v<Key>,
                "nodes are freed without running Key destructors");

  static Node* NewNode(int height) {
    const std::size_t bytes = sizeof(Node) + sizeof(Node*) * static_cast<std::size_t>(height - 1);
    Node* node = new (::operator new(bytes)) Node;
    for (int i = 0; i < height; ++i) {
      node->next[i] = nullptr;
    }
    return node;
  }

  static void DeleteNode(Node* node) { ::operator delete(node); }

  int RandomHeight() {
    // SplitMix64: deterministic tower heights, geometric with p = 1/4.
    rng_state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = rng_state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    int height = 1;
    while (height < kMaxLevel && (z & 3) == 0) {
      z >>= 2;
      ++height;
    }
    return height;
  }

  Node* head_;  // sentinel: full-height towers only, no element
  IntrusiveList<T, Hook> list_;
  std::unordered_map<const T*, Node*> index_;
  std::uint64_t rng_state_;
};

}  // namespace sfs::common

#endif  // SFS_COMMON_SKIP_LIST_H_

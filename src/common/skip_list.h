// Deterministic skip list keyed like SortedList.
//
// Section 3.2 notes the run-queue insertion cost "can be further reduced to
// O(log t) if binary search is used to determine the insert position" — linked
// lists cannot binary-search, but a skip list delivers the same bound with the
// same ordering semantics.  This container mirrors SortedList's interface
// (Insert / Remove / Front / PopFront / ForFirstK) so the two structures are
// directly comparable; `bench/abl_queue_structures` measures the crossover on
// the scheduler's charge-reposition pattern.
//
// Tower heights come from an internal, fixed-seed generator, so behaviour is
// fully deterministic.  The list does not own its elements.

#ifndef SFS_COMMON_SKIP_LIST_H_
#define SFS_COMMON_SKIP_LIST_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/common/assert.h"

namespace sfs::common {

// KeyFn: struct with `static KeyType Key(const T&)`; KeyType totally ordered.
// Equal keys keep insertion order (FIFO), like SortedList.
template <typename T, typename KeyFn>
class SkipList {
 public:
  static constexpr int kMaxLevel = 16;

  SkipList() : rng_state_(0x9E3779B97F4A7C15ULL) {
    head_ = NewNode(nullptr, kMaxLevel);
  }

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      DeleteNode(n);
      n = next;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  bool empty() const { return head_->next[0] == nullptr; }
  std::size_t size() const { return size_; }

  T* Front() {
    Node* first = head_->next[0];
    return first == nullptr ? nullptr : first->elem;
  }

  // Inserts keeping ascending key order; equal keys go after existing ones.
  void Insert(T* elem) {
    const auto key = KeyFn::Key(*elem);
    std::array<Node*, kMaxLevel> update;
    Node* n = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      while (n->next[level] != nullptr && !(key < KeyFn::Key(*n->next[level]->elem))) {
        n = n->next[level];
      }
      update[static_cast<std::size_t>(level)] = n;
    }
    const int height = RandomHeight();
    Node* node = NewNode(elem, height);
    for (int level = 0; level < height; ++level) {
      node->next[level] = update[static_cast<std::size_t>(level)]->next[level];
      update[static_cast<std::size_t>(level)]->next[level] = node;
    }
    ++size_;
  }

  // Removes `elem`; CHECK-fails if absent.  O(log n) to locate the key run,
  // then linear within equal keys.
  void Remove(T* elem) {
    const auto key = KeyFn::Key(*elem);
    std::array<Node*, kMaxLevel> update;
    Node* n = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      while (n->next[level] != nullptr && KeyFn::Key(*n->next[level]->elem) < key) {
        n = n->next[level];
      }
      update[static_cast<std::size_t>(level)] = n;
    }
    // Walk the equal-key run at the bottom until we find the exact element,
    // keeping the update pointers in sync.
    Node* target = update[0]->next[0];
    while (target != nullptr && target->elem != elem &&
           !(key < KeyFn::Key(*target->elem))) {
      for (int level = 0; level < kMaxLevel; ++level) {
        if (update[static_cast<std::size_t>(level)]->next[level] == target) {
          update[static_cast<std::size_t>(level)] = target;
        }
      }
      target = target->next[0];
    }
    SFS_CHECK(target != nullptr && target->elem == elem);
    for (int level = 0; level < kMaxLevel; ++level) {
      if (update[static_cast<std::size_t>(level)]->next[level] == target) {
        update[static_cast<std::size_t>(level)]->next[level] = target->next[level];
      }
    }
    DeleteNode(target);
    --size_;
  }

  T* PopFront() {
    Node* first = head_->next[0];
    if (first == nullptr) {
      return nullptr;
    }
    T* elem = first->elem;
    for (int level = 0; level < kMaxLevel; ++level) {
      if (head_->next[level] == first) {
        head_->next[level] = first->next[level];
      }
    }
    DeleteNode(first);
    --size_;
    return elem;
  }

  // Visits the first k elements in key order.
  template <typename Fn>
  std::size_t ForFirstK(std::size_t k, Fn&& fn) {
    std::size_t visited = 0;
    for (Node* n = head_->next[0]; n != nullptr && visited < k; n = n->next[0]) {
      fn(n->elem);
      ++visited;
    }
    return visited;
  }

  // Debug helper: true iff keys are non-decreasing bottom-level order.
  bool IsSorted() {
    Node* n = head_->next[0];
    while (n != nullptr && n->next[0] != nullptr) {
      if (KeyFn::Key(*n->next[0]->elem) < KeyFn::Key(*n->elem)) {
        return false;
      }
      n = n->next[0];
    }
    return true;
  }

 private:
  struct Node {
    T* elem = nullptr;
    // Variable-height tower; allocated with the node.
    Node* next[1];
  };

  static Node* NewNode(T* elem, int height) {
    // Over-allocate for the tower (height >= 1): nodes are raw storage, freed
    // with DeleteNode.
    const std::size_t bytes = sizeof(Node) + sizeof(Node*) * static_cast<std::size_t>(height - 1);
    Node* node = static_cast<Node*>(::operator new(bytes));
    node->elem = elem;
    for (int i = 0; i < height; ++i) {
      node->next[i] = nullptr;
    }
    return node;
  }

  static void DeleteNode(Node* node) { ::operator delete(node); }

  int RandomHeight() {
    // SplitMix64: deterministic tower heights, geometric with p = 1/4.
    rng_state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = rng_state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    int height = 1;
    while (height < kMaxLevel && (z & 3) == 0) {
      z >>= 2;
      ++height;
    }
    return height;
  }

  Node* head_;
  std::size_t size_ = 0;
  std::uint64_t rng_state_;
};

}  // namespace sfs::common

#endif  // SFS_COMMON_SKIP_LIST_H_

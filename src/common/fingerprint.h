// FNV-1a fingerprint accumulator for deterministic schedule/trace hashes.
//
// Every experiment that asserts "these two runs made identical decisions"
// mixes the run-interval or lifecycle event stream through this exact
// function, so the constants live in one place and the JSON hex rendering is
// uniform across experiments.

#ifndef SFS_COMMON_FINGERPRINT_H_
#define SFS_COMMON_FINGERPRINT_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace sfs::common {

class Fnv1a {
 public:
  void Mix(std::uint64_t x) {
    value_ ^= x;
    value_ *= 1099511628211ULL;  // FNV-1a 64-bit prime
  }

  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 1469598103934665603ULL;  // FNV-1a 64-bit offset basis
};

// Canonical JSON rendering: "0x" + 16 lowercase hex digits.
inline std::string FingerprintHex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace sfs::common

#endif  // SFS_COMMON_FINGERPRINT_H_

// Integer fixed-point arithmetic emulating the paper's in-kernel implementation.
//
// Section 3.2: "the Linux kernel supports only integer variables ... we simulate
// floating point variables using integer variables. To do so we scale each floating
// point operation in SFS by a constant factor [10^n] ... we found a scaling factor of
// 10^4 to be adequate for most purposes."
//
// Two forms are provided:
//   * `FixedPoint<Digits>` — a compile-time-scaled value type with full operator
//     support, mirroring how the kernel patch stored start/finish tags.  All
//     intermediate products go through 128-bit arithmetic so that the only rounding
//     is the deliberate quantization to 10^-Digits.
//   * `ScaledDiv`/`Pow10` — free helpers for runtime-selected scaling factors, used by
//     the scheduler's TagArith policy so that the scaling factor can be swept at run
//     time (ablation A1) without template explosion.

#ifndef SFS_COMMON_FIXED_POINT_H_
#define SFS_COMMON_FIXED_POINT_H_

#include <cmath>
#include <compare>
#include <cstdint>

#include "src/common/assert.h"

namespace sfs::common {

// 10^digits for digits in [0, 18].
constexpr std::int64_t Pow10(int digits) {
  std::int64_t v = 1;
  for (int i = 0; i < digits; ++i) {
    v *= 10;
  }
  return v;
}

// Computes round(num * scale / den) entirely in integers, the core operation behind
// the kernel's F = S + q*10^n / w update.  `den` must be positive.
constexpr std::int64_t ScaledDiv(std::int64_t num, std::int64_t scale, std::int64_t den) {
  SFS_DCHECK(den > 0);
  const __int128 wide = static_cast<__int128>(num) * scale;
  const __int128 half = den / 2;
  const __int128 q = (wide >= 0) ? (wide + half) / den : (wide - half) / den;
  return static_cast<std::int64_t>(q);
}

// A decimal fixed-point number with `Digits` places after the decimal point,
// stored as a scaled 64-bit integer.
template <int Digits>
class FixedPoint {
  static_assert(Digits >= 0 && Digits <= 9, "scaling factor must fit comfortably in int64");

 public:
  static constexpr std::int64_t kScale = Pow10(Digits);

  constexpr FixedPoint() = default;

  // Conversions are explicit and named: fixed-point code should show where
  // quantization happens.
  static constexpr FixedPoint FromRaw(std::int64_t raw) { return FixedPoint(raw); }
  static constexpr FixedPoint FromInt(std::int64_t v) { return FixedPoint(v * kScale); }
  static FixedPoint FromDouble(double v) {
    return FixedPoint(static_cast<std::int64_t>(std::llround(v * static_cast<double>(kScale))));
  }
  // round(num/den) in this fixed-point representation.
  static constexpr FixedPoint FromRatio(std::int64_t num, std::int64_t den) {
    return FixedPoint(ScaledDiv(num, kScale, den));
  }

  constexpr std::int64_t raw() const { return raw_; }
  constexpr double ToDouble() const { return static_cast<double>(raw_) / static_cast<double>(kScale); }
  // Truncates toward zero, like integer division in the kernel.
  constexpr std::int64_t ToInt() const { return raw_ / kScale; }

  constexpr FixedPoint operator+(FixedPoint o) const { return FixedPoint(raw_ + o.raw_); }
  constexpr FixedPoint operator-(FixedPoint o) const { return FixedPoint(raw_ - o.raw_); }
  constexpr FixedPoint operator-() const { return FixedPoint(-raw_); }

  // Full-precision multiply/divide with a single rounding step at the end.
  constexpr FixedPoint operator*(FixedPoint o) const {
    return FixedPoint(ScaledDiv(raw_, o.raw_, kScale));
  }
  constexpr FixedPoint operator/(FixedPoint o) const {
    SFS_DCHECK(o.raw_ != 0);
    return FixedPoint(ScaledDiv(raw_, kScale, o.raw_));
  }

  constexpr FixedPoint& operator+=(FixedPoint o) {
    raw_ += o.raw_;
    return *this;
  }
  constexpr FixedPoint& operator-=(FixedPoint o) {
    raw_ -= o.raw_;
    return *this;
  }

  constexpr auto operator<=>(const FixedPoint&) const = default;

 private:
  constexpr explicit FixedPoint(std::int64_t raw) : raw_(raw) {}

  std::int64_t raw_ = 0;
};

// The paper's recommended configuration.
using Fixed4 = FixedPoint<4>;

}  // namespace sfs::common

#endif  // SFS_COMMON_FIXED_POINT_H_

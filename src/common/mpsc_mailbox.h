// MpscMailbox — an unbounded multi-producer / single-consumer message queue
// for cross-shard event delivery in the parallel simulation engine.
//
// Vyukov-style intrusive MPSC: producers push with one exchange on an atomic
// head (wait-free, no CAS loop), the consumer walks a plain singly linked list
// from a stub node.  The consumer observes messages from any one producer in
// that producer's push order (per-producer FIFO), which is the only ordering
// the epoch protocol needs: sim::ParallelEngine drains each (source, target)
// mailbox with a single source, so the drain order is total and deterministic.
//
// DrainAll() detaches everything pushed before the call in one pass; messages
// pushed concurrently with a drain are either delivered by it or survive
// intact for the next one (no loss, no duplication).  Nodes are heap-allocated
// per message — cross-shard messages are the rare path (zero for partitioned
// policies), so a pooled allocator would be speculative complexity.

#ifndef SFS_COMMON_MPSC_MAILBOX_H_
#define SFS_COMMON_MPSC_MAILBOX_H_

#include <atomic>
#include <utility>

namespace sfs::common {

template <typename T>
class MpscMailbox {
 public:
  MpscMailbox() : head_(&stub_), tail_(&stub_) {}

  MpscMailbox(const MpscMailbox&) = delete;
  MpscMailbox& operator=(const MpscMailbox&) = delete;

  ~MpscMailbox() {
    DrainAll([](T&&) {});
    if (tail_ != &stub_) {
      delete tail_;  // the last consumed node is retained as the list anchor
    }
  }

  // Producer side: enqueue a message.  Safe from any thread, any number of
  // concurrent callers.
  void Push(T value) {
    Node* node = new Node(std::move(value));
    // Publish the node, then link the previous head to it.  Between the
    // exchange and the store the chain is momentarily broken; the consumer
    // sees a null next on the old head and stops there — the message is
    // simply not visible yet, never lost.
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  // Consumer side (single thread): invokes `fn(std::move(value))` for every
  // message visible at the time of the call, in per-producer push order.
  // Returns the number delivered.
  template <typename Fn>
  std::size_t DrainAll(Fn&& fn) {
    std::size_t drained = 0;
    Node* node = tail_->next.load(std::memory_order_acquire);
    while (node != nullptr) {
      if (tail_ != &stub_) {
        delete tail_;
      }
      tail_ = node;
      fn(std::move(node->value));
      ++drained;
      node = tail_->next.load(std::memory_order_acquire);
    }
    return drained;
  }

  // Consumer-side emptiness probe: true when no message is currently visible.
  // A concurrent Push may make it stale immediately; the epoch barrier
  // guarantees quiescence where the engine relies on it.
  bool Empty() const { return tail_->next.load(std::memory_order_acquire) == nullptr; }

 private:
  struct Node {
    Node() = default;
    explicit Node(T&& v) : value(std::move(v)) {}
    T value{};
    std::atomic<Node*> next{nullptr};
  };

  std::atomic<Node*> head_;  // most recently pushed node (producers)
  Node* tail_;               // consumption cursor (consumer only)
  Node stub_;                // permanent list anchor; never carries a value
};

}  // namespace sfs::common

#endif  // SFS_COMMON_MPSC_MAILBOX_H_

// Sorted intrusive list — the run-queue structure from Section 3.1.
//
// The kernel implementation keeps three queues of runnable threads, each maintained
// in sorted order by a key that occasionally changes (weight, start tag, surplus).
// This container reproduces that structure: a doubly-linked intrusive list kept
// sorted by a caller-supplied key extractor, with
//   * sorted insertion by linear scan (the kernel used the same; Section 3.2 notes
//     binary search would shave the constant but the list is the data structure),
//   * O(1) removal,
//   * `Resort()` — in-place insertion sort, chosen by the paper because the queue is
//     "mostly in sorted order" after surplus updates and insertion sort is near-linear
//     on almost-sorted input,
//   * bounded scans of the first k elements for the Section 3.2 heuristic.
//
// Stability/determinism: ties are kept in insertion order (strictly-less comparisons),
// which makes every scheduler in this library deterministic where the paper says
// "ties are broken arbitrarily".

#ifndef SFS_COMMON_SORTED_LIST_H_
#define SFS_COMMON_SORTED_LIST_H_

#include <cstddef>

#include "src/common/intrusive_list.h"

namespace sfs::common {

// KeyFn: struct with `static KeyType Key(const T&)`; KeyType must be totally ordered.
template <typename T, ListHook T::*Hook, typename KeyFn>
class SortedList {
 public:
  bool empty() const { return list_.empty(); }
  std::size_t size() const { return list_.size(); }
  T* front() { return list_.front(); }
  const T* front() const { return list_.front(); }
  T* back() { return list_.back(); }
  const T* back() const { return list_.back(); }
  bool contains(const T* elem) const { return list_.contains(elem); }
  T* next(T* elem) { return list_.next(elem); }
  T* prev(T* elem) { return list_.prev(elem); }
  const T* next(const T* elem) const { return list_.next(elem); }
  const T* prev(const T* elem) const { return list_.prev(elem); }

  // Inserts keeping ascending key order, scanning from the front.  Equal keys are
  // placed after existing ones (FIFO among ties).
  void Insert(T* elem) {
    const auto key = KeyFn::Key(*elem);
    for (T* cur : list_) {
      if (key < KeyFn::Key(*cur)) {
        list_.insert_before(cur, elem);
        return;
      }
    }
    list_.push_back(elem);
  }

  // Inserts scanning from the back; cheaper when the new key is likely large
  // (e.g. re-queueing the thread that just ran).
  void InsertFromBack(T* elem) {
    const auto key = KeyFn::Key(*elem);
    T* cur = list_.back();
    while (cur != nullptr && key < KeyFn::Key(*cur)) {
      cur = list_.prev(cur);
    }
    if (cur == nullptr) {
      list_.push_front(elem);
    } else {
      list_.insert_after(cur, elem);
    }
  }

  void Remove(T* elem) { list_.erase(elem); }

  T* PopFront() { return list_.pop_front(); }

  void Clear() { list_.clear(); }

  // Re-establishes sorted order after keys changed, via insertion sort.  Near-linear
  // when the list is already mostly sorted (the common case after a virtual-time
  // advance recomputes all surpluses; see Section 3.2).  Returns the number of
  // elements moved — an element moves exactly when its key dropped below the
  // running maximum of the elements before it.
  std::size_t Resort() {
    T* first = list_.front();
    if (first == nullptr) {
      return 0;
    }
    std::size_t moved = 0;
    T* cur = list_.next(first);
    while (cur != nullptr) {
      T* following = list_.next(cur);
      const auto key = KeyFn::Key(*cur);
      T* scan = list_.prev(cur);
      if (scan != nullptr && key < KeyFn::Key(*scan)) {
        // Walk left to the first element not greater than `cur`.
        while (list_.prev(scan) != nullptr && key < KeyFn::Key(*list_.prev(scan))) {
          scan = list_.prev(scan);
        }
        list_.erase(cur);
        list_.insert_before(scan, cur);
        ++moved;
      }
      cur = following;
    }
    return moved;
  }

  // Repositions a single element whose key changed.  O(distance moved).
  void Reposition(T* elem) {
    list_.erase(elem);
    Insert(elem);
  }

  // Calls `fn(elem)` for the first `k` elements (front of the queue = smallest keys).
  // Returns the number visited.  Used by the Section 3.2 scheduling heuristic.
  template <typename Fn>
  std::size_t ForFirstK(std::size_t k, Fn&& fn) {
    std::size_t visited = 0;
    for (T* cur = list_.front(); cur != nullptr && visited < k; cur = list_.next(cur)) {
      fn(cur);
      ++visited;
    }
    return visited;
  }

  // Calls `fn(elem)` for the last `k` elements, scanning backwards.  The heuristic
  // examines the weight queue (descending weights) from the back, i.e. smallest
  // weights first (paper footnote 8).
  template <typename Fn>
  std::size_t ForLastK(std::size_t k, Fn&& fn) {
    std::size_t visited = 0;
    for (T* cur = list_.back(); cur != nullptr && visited < k; cur = list_.prev(cur)) {
      fn(cur);
      ++visited;
    }
    return visited;
  }

  // Debug helper: true iff keys are in non-decreasing order.
  bool IsSorted() {
    const T* prev = nullptr;
    for (T* cur : list_) {
      if (prev != nullptr && KeyFn::Key(*cur) < KeyFn::Key(*prev)) {
        return false;
      }
      prev = cur;
    }
    return true;
  }

 private:
  IntrusiveList<T, Hook> list_;
};

}  // namespace sfs::common

#endif  // SFS_COMMON_SORTED_LIST_H_

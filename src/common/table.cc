#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/common/assert.h"

namespace sfs::common {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  SFS_CHECK(!columns_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  SFS_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Cell(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::Cell(std::size_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };

  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  for (std::size_t i = 0; i < total; ++i) {
    os << '-';
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << '\n';
  };
  print_row(columns_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace sfs::common

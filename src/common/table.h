// Fixed-width table / CSV emitter.
//
// Benchmark binaries print the same rows and series the paper's tables and figures
// report; this helper keeps that output aligned and optionally machine-readable.

#ifndef SFS_COMMON_TABLE_H_
#define SFS_COMMON_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sfs::common {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  // Row cells are preformatted strings; Cell() helpers format numbers consistently.
  void AddRow(std::vector<std::string> cells);

  static std::string Cell(double v, int precision = 2);
  static std::string Cell(std::int64_t v);
  static std::string Cell(std::size_t v);

  // Pretty-prints with aligned columns and a header rule.
  void Print(std::ostream& os) const;

  // Comma-separated output (header + rows).
  void PrintCsv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sfs::common

#endif  // SFS_COMMON_TABLE_H_

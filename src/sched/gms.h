// Generalized Multiprocessor Sharing (Section 2.2) — fluid-flow reference.
//
// GMS is the idealized algorithm SFS approximates: threads are served with
// infinitesimal quanta, p at a time, in proportion to their instantaneous
// (readjusted) weights.  With feasible weights the service *rate* of thread i is
//
//     rate_i = min(1, p * phi_i / sum_j phi_j)      [processors of capacity 1]
//
// and A_i^GMS integrates that rate over time.  This class mirrors the event
// stream a real scheduler sees (arrival/departure/block/wakeup/weight change) and
// integrates exact fluid service between events.  It is used to
//   * compute the paper's surplus definition (Equation 3) exactly in tests, and
//   * bound the deviation |A_i - A_i^GMS| of the discrete schedulers.

#ifndef SFS_SCHED_GMS_H_
#define SFS_SCHED_GMS_H_

#include <map>

#include "src/common/time.h"
#include "src/sched/types.h"

namespace sfs::sched {

class GmsReference {
 public:
  explicit GmsReference(int num_cpus);

  // Event mirror.  `now` must be non-decreasing across calls.
  void AddThread(ThreadId tid, Weight weight, Tick now);
  void RemoveThread(ThreadId tid, Tick now);
  void Block(ThreadId tid, Tick now);
  void Wakeup(ThreadId tid, Tick now);
  void SetWeight(ThreadId tid, Weight weight, Tick now);

  // Integrates fluid service up to `now` with the current rates.  Rates are
  // recomputed lazily: a batch of same-timestamp events (e.g. a mass arrival
  // at t=0) costs one readjustment pass, not one per event.
  void AdvanceTo(Tick now);

  // Cumulative fluid service A_i^GMS in (fractional) ticks.  Valid for departed
  // threads as well.
  double Service(ThreadId tid) const;

  // Current service rate in units of one processor (0..1).
  double Rate(ThreadId tid) const;

  // Instantaneous (readjusted) weight phi_i currently in effect.
  double Phi(ThreadId tid) const;

  int num_cpus() const { return num_cpus_; }

 private:
  struct Member {
    Weight weight = 1.0;
    double phi = 1.0;
    double rate = 0.0;
    double service = 0.0;
    bool runnable = false;
    bool departed = false;
  };

  Member& Find(ThreadId tid);
  const Member& Find(ThreadId tid) const;

  // Recomputes phi (via the readjustment algorithm) and rates for the runnable
  // set if an event invalidated them since the last recompute.
  void EnsureRates() const;

  int num_cpus_;
  Tick last_advance_ = 0;
  // Rates/phis are derived state, refreshed lazily from the runnable set.
  mutable bool rates_dirty_ = false;
  // Ordered map: AdvanceTo/EnsureRates iterate it, and this reference feeds
  // deterministic test oracles (the determinism lint forbids iterating an
  // unordered container here).  Cold path — only tests and oracles run GMS.
  mutable std::map<ThreadId, Member> members_;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_GMS_H_

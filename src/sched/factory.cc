#include "src/sched/factory.h"

#include "src/common/assert.h"
#include "src/sched/bvt.h"
#include "src/sched/hsfs.h"
#include "src/sched/lottery.h"
#include "src/sched/round_robin.h"
#include "src/sched/sfq.h"
#include "src/sched/sfs.h"
#include "src/sched/stride.h"
#include "src/sched/timeshare.h"
#include "src/sched/wfq.h"

namespace sfs::sched {

std::string_view SchedKindName(SchedKind kind) {
  switch (kind) {
    case SchedKind::kSfs:
      return "sfs";
    case SchedKind::kHsfs:
      return "hsfs";
    case SchedKind::kSfq:
      return "sfq";
    case SchedKind::kStride:
      return "stride";
    case SchedKind::kWfq:
      return "wfq";
    case SchedKind::kBvt:
      return "bvt";
    case SchedKind::kTimeshare:
      return "timeshare";
    case SchedKind::kRoundRobin:
      return "rr";
    case SchedKind::kLottery:
      return "lottery";
  }
  return "unknown";
}

std::optional<SchedKind> ParseSchedKind(std::string_view name) {
  for (SchedKind kind :
       {SchedKind::kSfs, SchedKind::kHsfs, SchedKind::kSfq, SchedKind::kStride, SchedKind::kWfq,
        SchedKind::kBvt, SchedKind::kTimeshare, SchedKind::kRoundRobin, SchedKind::kLottery}) {
    if (name == SchedKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::string_view QueueBackendName(QueueBackend backend) {
  switch (backend) {
    case QueueBackend::kSortedList:
      return "sorted_list";
    case QueueBackend::kSkipList:
      return "skip_list";
  }
  return "unknown";
}

std::optional<QueueBackend> ParseQueueBackend(std::string_view name) {
  for (QueueBackend backend : {QueueBackend::kSortedList, QueueBackend::kSkipList}) {
    if (name == QueueBackendName(backend)) {
      return backend;
    }
  }
  return std::nullopt;
}

std::unique_ptr<Scheduler> CreateScheduler(SchedKind kind, const SchedConfig& config) {
  switch (kind) {
    case SchedKind::kSfs: {
      SchedConfig c = config;
      c.use_readjustment = true;  // SFS is defined with readjusted weights
      return std::make_unique<Sfs>(c);
    }
    case SchedKind::kHsfs:
      return std::make_unique<HierarchicalSfs>(config);
    case SchedKind::kSfq:
      return std::make_unique<Sfq>(config);
    case SchedKind::kStride:
      return std::make_unique<Stride>(config);
    case SchedKind::kWfq:
      return std::make_unique<Wfq>(config);
    case SchedKind::kBvt:
      return std::make_unique<Bvt>(config);
    case SchedKind::kTimeshare:
      return std::make_unique<Timeshare>(config);
    case SchedKind::kRoundRobin:
      return std::make_unique<RoundRobin>(config);
    case SchedKind::kLottery:
      return std::make_unique<Lottery>(config);
  }
  SFS_CHECK(false);
  return nullptr;
}

}  // namespace sfs::sched

#include "src/sched/factory.h"

#include <initializer_list>
#include <sstream>

#include "src/common/assert.h"
#include "src/sched/bvt.h"
#include "src/sched/hsfs.h"
#include "src/sched/lottery.h"
#include "src/sched/round_robin.h"
#include "src/sched/sfq.h"
#include "src/sched/sfs.h"
#include "src/sched/sharded.h"
#include "src/sched/stride.h"
#include "src/sched/timeshare.h"
#include "src/sched/wfq.h"

namespace sfs::sched {

namespace {

constexpr SchedKind kAllSchedKinds[] = {
    SchedKind::kSfs,          SchedKind::kHsfs,        SchedKind::kSfq,
    SchedKind::kStride,       SchedKind::kWfq,         SchedKind::kBvt,
    SchedKind::kTimeshare,    SchedKind::kRoundRobin,  SchedKind::kLottery,
    SchedKind::kShardedSfs,   SchedKind::kShardedSfq,  SchedKind::kShardedWfq,
    SchedKind::kShardedStride, SchedKind::kShardedBvt,
};

constexpr QueueBackend kAllQueueBackends[] = {QueueBackend::kSortedList,
                                              QueueBackend::kSkipList};

constexpr ShardStealPolicy kAllStealPolicies[] = {ShardStealPolicy::kNone,
                                                  ShardStealPolicy::kMaxSurplus};

template <typename Enum, typename Range, typename NameFn>
std::string JoinNames(const Range& values, NameFn name) {
  std::ostringstream out;
  bool first = true;
  for (const Enum value : values) {
    if (!first) {
      out << ", ";
    }
    first = false;
    out << name(value);
  }
  return out.str();
}

}  // namespace

std::string_view SchedKindName(SchedKind kind) {
  switch (kind) {
    case SchedKind::kSfs:
      return "sfs";
    case SchedKind::kHsfs:
      return "hsfs";
    case SchedKind::kSfq:
      return "sfq";
    case SchedKind::kStride:
      return "stride";
    case SchedKind::kWfq:
      return "wfq";
    case SchedKind::kBvt:
      return "bvt";
    case SchedKind::kTimeshare:
      return "timeshare";
    case SchedKind::kRoundRobin:
      return "rr";
    case SchedKind::kLottery:
      return "lottery";
    case SchedKind::kShardedSfs:
      return "sharded-sfs";
    case SchedKind::kShardedSfq:
      return "sharded-sfq";
    case SchedKind::kShardedWfq:
      return "sharded-wfq";
    case SchedKind::kShardedStride:
      return "sharded-stride";
    case SchedKind::kShardedBvt:
      return "sharded-bvt";
  }
  return "unknown";
}

std::optional<SchedKind> ParseSchedKind(std::string_view name) {
  for (SchedKind kind : kAllSchedKinds) {
    if (name == SchedKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<SchedKind> ShardedKindFor(SchedKind kind) {
  switch (kind) {
    case SchedKind::kSfs:
      return SchedKind::kShardedSfs;
    case SchedKind::kSfq:
      return SchedKind::kShardedSfq;
    case SchedKind::kWfq:
      return SchedKind::kShardedWfq;
    case SchedKind::kStride:
      return SchedKind::kShardedStride;
    case SchedKind::kBvt:
      return SchedKind::kShardedBvt;
    default:
      return std::nullopt;
  }
}

std::string_view QueueBackendName(QueueBackend backend) {
  switch (backend) {
    case QueueBackend::kSortedList:
      return "sorted_list";
    case QueueBackend::kSkipList:
      return "skip_list";
  }
  return "unknown";
}

std::optional<QueueBackend> ParseQueueBackend(std::string_view name) {
  for (QueueBackend backend : kAllQueueBackends) {
    if (name == QueueBackendName(backend)) {
      return backend;
    }
  }
  return std::nullopt;
}

std::string_view ShardStealPolicyName(ShardStealPolicy policy) {
  switch (policy) {
    case ShardStealPolicy::kNone:
      return "none";
    case ShardStealPolicy::kMaxSurplus:
      return "max_surplus";
  }
  return "unknown";
}

std::optional<ShardStealPolicy> ParseShardStealPolicy(std::string_view name) {
  for (ShardStealPolicy policy : kAllStealPolicies) {
    if (name == ShardStealPolicyName(policy)) {
      return policy;
    }
  }
  return std::nullopt;
}

std::string KnownSchedKindNames() {
  return JoinNames<SchedKind>(kAllSchedKinds, SchedKindName);
}

std::string KnownQueueBackendNames() {
  return JoinNames<QueueBackend>(kAllQueueBackends, QueueBackendName);
}

std::string KnownShardStealPolicyNames() {
  return JoinNames<ShardStealPolicy>(kAllStealPolicies, ShardStealPolicyName);
}

std::string ValidateSchedConfig(const SchedConfig& config) {
  std::ostringstream error;
  if (config.num_cpus < 1) {
    error << "num_cpus must be >= 1 (got " << config.num_cpus << ")";
  } else if (config.quantum <= 0) {
    error << "quantum must be positive (got " << config.quantum << ")";
  } else if (config.heuristic_k < 0) {
    error << "heuristic_k must be >= 0 (got " << config.heuristic_k << ")";
  } else if (config.heuristic_refresh_period <= 0) {
    error << "heuristic_refresh_period must be positive (got "
          << config.heuristic_refresh_period << ")";
  } else if (QueueBackendName(config.queue_backend) == std::string_view("unknown")) {
    error << "unknown queue backend; known backends: " << KnownQueueBackendNames();
  } else if (ShardStealPolicyName(config.shard_steal) == std::string_view("unknown")) {
    error << "unknown shard steal policy; known policies: " << KnownShardStealPolicyNames();
  } else if (config.shard_rebalance_period < 0) {
    error << "shard_rebalance_period must be >= 0 decisions (0 = never; got "
          << config.shard_rebalance_period << ")";
  } else if (config.shard_coupling < 0.0 || config.shard_coupling > 1.0) {
    error << "shard_coupling must lie in [0, 1] (got " << config.shard_coupling << ")";
  }
  return error.str();
}

std::unique_ptr<Scheduler> CreateScheduler(SchedKind kind, const SchedConfig& config) {
  switch (kind) {
    case SchedKind::kSfs: {
      SchedConfig c = config;
      c.use_readjustment = true;  // SFS is defined with readjusted weights
      return std::make_unique<Sfs>(c);
    }
    case SchedKind::kHsfs:
      return std::make_unique<HierarchicalSfs>(config);
    case SchedKind::kSfq:
      return std::make_unique<Sfq>(config);
    case SchedKind::kStride:
      return std::make_unique<Stride>(config);
    case SchedKind::kWfq:
      return std::make_unique<Wfq>(config);
    case SchedKind::kBvt:
      return std::make_unique<Bvt>(config);
    case SchedKind::kTimeshare:
      return std::make_unique<Timeshare>(config);
    case SchedKind::kRoundRobin:
      return std::make_unique<RoundRobin>(config);
    case SchedKind::kLottery:
      return std::make_unique<Lottery>(config);
    case SchedKind::kShardedSfs: {
      SchedConfig c = config;
      c.use_readjustment = true;  // match flat SFS (no-op inside 1-CPU shards)
      return std::make_unique<Sharded<Sfs>>(c);
    }
    case SchedKind::kShardedSfq:
      return std::make_unique<Sharded<Sfq>>(config);
    case SchedKind::kShardedWfq:
      return std::make_unique<Sharded<Wfq>>(config);
    case SchedKind::kShardedStride:
      return std::make_unique<Sharded<Stride>>(config);
    case SchedKind::kShardedBvt:
      return std::make_unique<Sharded<Bvt>>(config);
  }
  SFS_CHECK(false);
  return nullptr;
}

std::unique_ptr<Scheduler> MakeScheduler(std::string_view policy, const SchedConfig& config,
                                         std::string* error) {
  const std::optional<SchedKind> kind = ParseSchedKind(policy);
  if (!kind.has_value()) {
    if (error != nullptr) {
      std::ostringstream message;
      message << "unknown scheduler policy \"" << policy
              << "\"; known policies: " << KnownSchedKindNames();
      *error = message.str();
    }
    return nullptr;
  }
  std::string config_error = ValidateSchedConfig(config);
  if (!config_error.empty()) {
    if (error != nullptr) {
      *error = "invalid SchedConfig for policy \"" + std::string(policy) +
               "\": " + config_error;
    }
    return nullptr;
  }
  if (error != nullptr) {
    error->clear();
  }
  return CreateScheduler(*kind, config);
}

}  // namespace sfs::sched

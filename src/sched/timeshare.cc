#include "src/sched/timeshare.h"

#include <algorithm>

#include "src/common/assert.h"

namespace sfs::sched {

Timeshare::Timeshare(const SchedConfig& config) : Scheduler(config) {}

Timeshare::~Timeshare() { run_queue_.clear(); }

void Timeshare::OnAdmit(Entity& e) {
  e.priority = kDefaultPriorityTicks;
  e.counter = e.priority;
  run_queue_.push_back(&e);
}

void Timeshare::OnRemove(Entity& e) {
  if (run_queue_.contains(&e)) {
    run_queue_.erase(&e);
  }
}

void Timeshare::OnBlocked(Entity& e) { run_queue_.erase(&e); }

void Timeshare::OnWoken(Entity& e) { run_queue_.push_back(&e); }

void Timeshare::OnWeightChanged(Entity& e, Weight old_weight) {
  // The time-sharing scheduler has no weights; the request is recorded (base
  // class already updated e.weight) but does not influence scheduling.
  (void)e;
  (void)old_weight;
}

std::int64_t Timeshare::Goodness(const Entity& e, CpuId cpu) const {
  if (e.counter <= 0) {
    return 0;
  }
  std::int64_t g = e.counter + e.priority;
  if (e.last_cpu == cpu) {
    g += kAffinityBonus;
  }
  return g;
}

void Timeshare::RecalculateEpoch() {
  // "for_each_task(p) p->counter = (p->counter >> 1) + p->priority" — applied to
  // every thread, runnable or blocked; sleepers accumulate a bonus.
  ++epochs_;
  ForEachEntity([](Entity& e) { e.counter = e.counter / 2 + e.priority; });
}

Entity* Timeshare::PickNextEntity(CpuId cpu) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    Entity* best = nullptr;
    std::int64_t best_goodness = 0;
    bool any_candidate = false;
    for (Entity* e : run_queue_) {
      if (e->running) {
        continue;
      }
      any_candidate = true;
      const std::int64_t g = Goodness(*e, cpu);
      if (best == nullptr || g > best_goodness) {
        best = e;
        best_goodness = g;
      }
    }
    if (!any_candidate) {
      return nullptr;
    }
    if (best_goodness > 0) {
      return best;
    }
    // All runnable candidates exhausted their slice: start a new epoch and retry.
    RecalculateEpoch();
  }
  // After an epoch recalculation every thread has counter >= priority > 0.
  SFS_CHECK(false);
  return nullptr;
}

void Timeshare::OnCharge(Entity& e, Tick ran_for) {
  const std::int64_t ticks = (ran_for + kLinuxTimerTick - 1) / kLinuxTimerTick;
  e.counter = std::max<std::int64_t>(0, e.counter - ticks);
}

Tick Timeshare::QuantumFor(ThreadId tid) {
  const Entity& e = FindEntity(tid);
  const std::int64_t ticks = std::max<std::int64_t>(1, e.counter);
  return std::min(config().quantum, ticks * kLinuxTimerTick);
}

CpuId Timeshare::SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) {
  const Entity& w = FindEntity(woken);
  if (!w.runnable || w.running) {
    return kInvalidCpu;
  }
  // reschedule_idle(): preempt the running thread with the lowest goodness if the
  // woken thread beats it by more than the affinity bonus.  The runner's counter
  // is evaluated as the timer-tick handler would see it, i.e. net of the ticks it
  // has already consumed this quantum.
  CpuId victim = kInvalidCpu;
  std::int64_t weakest = INT64_MAX;
  for (CpuId cpu = 0; cpu < num_cpus(); ++cpu) {
    const ThreadId running = RunningOn(cpu);
    if (running == kInvalidThread) {
      continue;
    }
    const Entity& r = FindEntity(running);
    const std::int64_t used_ticks = elapsed[static_cast<std::size_t>(cpu)] / kLinuxTimerTick;
    const std::int64_t counter = std::max<std::int64_t>(0, r.counter - used_ticks);
    const std::int64_t g =
        counter <= 0 ? 0 : counter + r.priority + (r.last_cpu == cpu ? kAffinityBonus : 0);
    if (g < weakest) {
      weakest = g;
      victim = cpu;
    }
  }
  if (victim == kInvalidCpu) {
    return kInvalidCpu;
  }
  const std::int64_t woken_goodness = Goodness(w, victim);
  return woken_goodness > weakest + kAffinityBonus ? victim : kInvalidCpu;
}

void Timeshare::SetPriorityTicks(ThreadId tid, int ticks) {
  SFS_CHECK(ticks >= 1);
  FindEntity(tid).priority = ticks;
}

}  // namespace sfs::sched

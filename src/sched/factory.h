// Scheduler factory: constructs any policy in the library by kind.

#ifndef SFS_SCHED_FACTORY_H_
#define SFS_SCHED_FACTORY_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/sched/scheduler.h"

namespace sfs::sched {

enum class SchedKind {
  kSfs,        // surplus fair scheduling (this paper)
  kHsfs,       // hierarchical SFS (the paper's future-work extension)
  kSfq,        // start-time fair queueing
  kStride,     // stride scheduling
  kWfq,        // weighted fair queueing
  kBvt,        // borrowed virtual time
  kTimeshare,  // Linux 2.2-style time sharing
  kRoundRobin,
  kLottery,  // lottery scheduling (randomized proportional share)
  // Sharded variants: one uniprocessor instance of the policy per CPU behind
  // the steal/rebalance/coupling machinery of sched::Sharded.
  kShardedSfs,
  kShardedSfq,
  kShardedWfq,
  kShardedStride,
  kShardedBvt,
};

// Canonical lower-case name ("sfs", "sharded-sfs", ...).
std::string_view SchedKindName(SchedKind kind);

// Parses a canonical name; nullopt if unknown.
std::optional<SchedKind> ParseSchedKind(std::string_view name);

// The sharded variant of a flat GPS policy kind (e.g. kSfs -> kShardedSfs);
// nullopt for kinds without one (hsfs and the non-GPS baselines) and for
// already-sharded kinds.
std::optional<SchedKind> ShardedKindFor(SchedKind kind);

// Canonical lower-case run-queue backend name ("sorted_list", "skip_list"),
// used in benchmark output and experiment labels.
std::string_view QueueBackendName(QueueBackend backend);

// Parses a canonical backend name; nullopt if unknown.
std::optional<QueueBackend> ParseQueueBackend(std::string_view name);

// Canonical lower-case steal-policy name ("none", "max_surplus").
std::string_view ShardStealPolicyName(ShardStealPolicy policy);

// Parses a canonical steal-policy name; nullopt if unknown.
std::optional<ShardStealPolicy> ParseShardStealPolicy(std::string_view name);

// Comma-separated lists of every known canonical name, for error messages.
std::string KnownSchedKindNames();
std::string KnownQueueBackendNames();
std::string KnownShardStealPolicyNames();

// Validates a configuration: returns an empty string when usable, otherwise a
// message naming the offending knob (queue backend, steal policy, rebalance
// period, coupling, ...) and the accepted values.
std::string ValidateSchedConfig(const SchedConfig& config);

// Constructs the scheduler.  SchedConfig::use_readjustment selects the
// with/without-readjustment variants of the GPS baselines (SFS always
// readjusts).  CHECK-fails on invalid configurations; use MakeScheduler for
// the error-reporting path.
std::unique_ptr<Scheduler> CreateScheduler(SchedKind kind, const SchedConfig& config);

// Parses `policy` and constructs the scheduler after validating `config`.  On
// failure returns nullptr and, when `error` is non-null, stores a message
// naming the rejected input and listing the accepted alternatives.
std::unique_ptr<Scheduler> MakeScheduler(std::string_view policy, const SchedConfig& config,
                                         std::string* error = nullptr);

}  // namespace sfs::sched

#endif  // SFS_SCHED_FACTORY_H_

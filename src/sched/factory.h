// Scheduler factory: constructs any policy in the library by kind.

#ifndef SFS_SCHED_FACTORY_H_
#define SFS_SCHED_FACTORY_H_

#include <memory>
#include <optional>
#include <string_view>

#include "src/sched/scheduler.h"

namespace sfs::sched {

enum class SchedKind {
  kSfs,        // surplus fair scheduling (this paper)
  kHsfs,       // hierarchical SFS (the paper's future-work extension)
  kSfq,        // start-time fair queueing
  kStride,     // stride scheduling
  kWfq,        // weighted fair queueing
  kBvt,        // borrowed virtual time
  kTimeshare,  // Linux 2.2-style time sharing
  kRoundRobin,
  kLottery,    // lottery scheduling (randomized proportional share)
};

// Canonical lower-case name ("sfs", "sfq", ...).
std::string_view SchedKindName(SchedKind kind);

// Parses a canonical name; nullopt if unknown.
std::optional<SchedKind> ParseSchedKind(std::string_view name);

// Canonical lower-case run-queue backend name ("sorted_list", "skip_list"),
// used in benchmark output and experiment labels.
std::string_view QueueBackendName(QueueBackend backend);

// Parses a canonical backend name; nullopt if unknown.
std::optional<QueueBackend> ParseQueueBackend(std::string_view name);

// Constructs the scheduler.  SchedConfig::use_readjustment selects the
// with/without-readjustment variants of the GPS baselines (SFS always readjusts).
std::unique_ptr<Scheduler> CreateScheduler(SchedKind kind, const SchedConfig& config);

}  // namespace sfs::sched

#endif  // SFS_SCHED_FACTORY_H_

#include "src/sched/sfs.h"

#include <algorithm>

#include "src/common/assert.h"

namespace sfs::sched {

Sfs::Sfs(const SchedConfig& config) : GpsSchedulerBase(config) {
  SFS_CHECK(config.heuristic_k >= 0);
  SFS_CHECK(config.heuristic_refresh_period > 0);
  start_queue_.SetBackend(config.queue_backend);
  surplus_queue_.SetBackend(config.queue_backend);
}

Sfs::~Sfs() {
  start_queue_.Clear();
  surplus_queue_.Clear();
}

double Sfs::VirtualTime() const {
  const Entity* head = start_queue_.front();
  return head == nullptr ? idle_virtual_time_ : head->start_tag();
}

double Sfs::Surplus(ThreadId tid) const {
  const Entity& e = FindEntity(tid);
  SFS_CHECK(e.runnable);
  return FreshSurplus(e, VirtualTime());
}

void Sfs::SetWarp(ThreadId tid, double warp) {
  Entity& e = FindEntity(tid);
  e.SetWarpState(warp);
  if (e.runnable) {
    e.surplus() = FreshSurplus(e, VirtualTime());
    surplus_queue_.Reposition(&e);
  }
}

void Sfs::OnAdmit(Entity& e) {
  // New threads start at the virtual time: S_i = v (Section 2.3).
  e.start_tag() = VirtualTime();
  e.finish_tag() = e.start_tag();
  if (AdmitWeight(e)) {
    need_refresh_ = true;
  }
  EnqueueRunnable(e);
}

void Sfs::OnRemove(Entity& e) {
  if (e.runnable) {
    DequeueRunnable(e);
    if (RetireWeight(e)) {
      need_refresh_ = true;
    }
  }
}

void Sfs::OnBlocked(Entity& e) {
  DequeueRunnable(e);
  if (RetireWeight(e)) {
    need_refresh_ = true;
  }
  if (start_queue_.empty()) {
    // All processors idle: freeze the virtual time at the finish tag of the
    // thread that ran last (Section 2.3).
    idle_virtual_time_ = std::max(idle_virtual_time_, e.finish_tag());
  }
}

void Sfs::OnWoken(Entity& e) {
  // S_i = max(F_i, v): no credit accumulates while sleeping (Equation 6).
  e.start_tag() = std::max(e.finish_tag(), VirtualTime());
  if (AdmitWeight(e)) {
    need_refresh_ = true;
  }
  EnqueueRunnable(e);
}

void Sfs::OnAttach(Entity& e) {
  // A migrated entity keeps its translated start tag verbatim — unlike a
  // wakeup, no max(F, v) clamp: a coupled migrant may arrive *behind* the
  // local virtual time precisely so it gets compensated for past under-service
  // in its source shard.
  if (AdmitWeight(e)) {
    need_refresh_ = true;
  }
  EnqueueRunnable(e);
}

void Sfs::OnWeightChanged(Entity& e, Weight old_weight) {
  if (UpdateWeight(e, old_weight)) {
    need_refresh_ = true;
  }
}

Entity* Sfs::PickNextEntity(CpuId cpu) {
  const double v = VirtualTime();
  MaybeRebase(v);
  ++decisions_;

  if (config().heuristic_k <= 0) {
    // Exact algorithm: refresh surpluses whenever the virtual time advanced or
    // instantaneous weights changed, then take the head of the surplus queue.
    if (need_refresh_ || VirtualTime() != last_refresh_v_) {
      RefreshSurpluses(VirtualTime());
    }
    return ExactPick(cpu);
  }

  // Heuristic (Section 3.2): bounded examination; periodic full refresh keeps the
  // surplus queue ordering accurate between heuristic decisions.
  if (need_refresh_ || ++decisions_since_refresh_ >= config().heuristic_refresh_period) {
    RefreshSurpluses(VirtualTime());
  }
  return HeuristicPick(VirtualTime(), config().heuristic_k, cpu);
}

void Sfs::OnCharge(Entity& e, Tick ran_for) {
  // F_i = S_i + q / phi_i with q the *actual* time run (Equation 5); a thread that
  // stays runnable continues from its finish tag (Equation 6).
  e.finish_tag() = e.start_tag() + arith().WeightedService(ran_for, e.phi());
  e.start_tag() = e.finish_tag();
  // Reposition in both queues; the key grew, so scan from the back.
  start_queue_.Remove(&e);
  start_queue_.InsertFromBack(&e);
  e.surplus() = FreshSurplus(e, VirtualTime());
  surplus_queue_.Remove(&e);
  surplus_queue_.InsertFromBack(&e);
  if (start_queue_.size() == 1) {
    // Only this thread runnable: remember its finish tag for the idle rule.
    idle_virtual_time_ = std::max(idle_virtual_time_, e.finish_tag());
  }
}

CpuId Sfs::SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) {
  const Entity& w = FindEntity(woken);
  if (!w.runnable || w.running) {
    return kInvalidCpu;
  }
  const double v = VirtualTime();
  const double woken_surplus = FreshSurplus(w, v);
  CpuId victim = kInvalidCpu;
  double worst = woken_surplus;
  for (CpuId cpu = 0; cpu < num_cpus(); ++cpu) {
    const ThreadId running = RunningOn(cpu);
    if (running == kInvalidThread) {
      continue;
    }
    const Entity& r = FindEntity(running);
    // Surplus the running thread would have if charged right now: its start tag
    // advances by elapsed / phi, so in the fluid model its surplus alpha =
    // phi * (S - v) grows by exactly `elapsed`.  (Round-tripping elapsed
    // through the fixed-point WeightedService quantization and multiplying phi
    // back would distort the projection and can pick the wrong victim.)
    const double s = FreshSurplus(r, v) + static_cast<double>(elapsed[static_cast<std::size_t>(cpu)]);
    if (s > worst) {
      worst = s;
      victim = cpu;
    }
  }
  return victim;
}

void Sfs::EnqueueRunnable(Entity& e) {
  e.surplus() = FreshSurplus(e, VirtualTime());
  start_queue_.Insert(&e);
  surplus_queue_.Insert(&e);
}

void Sfs::DequeueRunnable(Entity& e) {
  start_queue_.Remove(&e);
  surplus_queue_.Remove(&e);
}

void Sfs::RefreshSurpluses(double v) {
  // Incremental refresh: recompute every surplus in place, then let the queue
  // reposition only the entities whose order actually changed.  Between
  // refreshes surpluses shift by -phi_i * dv, so relative order moves only
  // across different phis and the queue stays almost sorted — Resort() is
  // near-linear on both backends and O(log t) per misplaced entity on the
  // skip list, and yields the same total (surplus, tid) order a full sort
  // would, so dispatch decisions are unchanged.
  //
  // The recompute walks the surplus queue — O(runnable), each entity's whole
  // row one cache line — and FreshSurplus is branch-free per entity: warp_eff
  // precomputes the old `warp_enabled ? warp : 0` test at SetWarpState time.
  // (A unit-stride pass over an external dense row array was measured and
  // rejected: it is the pretty loop, but on mostly-blocked 10k-thread
  // workloads it made every pick O(total threads), and even gated by runnable
  // density the external rows cost every *random* entity touch an extra
  // independent cache line — see the layout note in entity.h.)
  for (Entity* e = surplus_queue_.front(); e != nullptr; e = surplus_queue_.next(e)) {
    e->surplus() = FreshSurplus(*e, v);
  }
  refresh_repositions_ += static_cast<std::int64_t>(surplus_queue_.Resort());
  last_refresh_v_ = v;
  need_refresh_ = false;
  decisions_since_refresh_ = 0;
  ++full_refreshes_;
}

void Sfs::MaybeRebase(double v) {
  if (v <= config().tag_rebase_threshold) {
    return;
  }
  // Shift all tags down by `v` — the minimum start tag over runnable threads,
  // by definition of the virtual time — so the new virtual time is 0.
  // Orderings and surpluses are invariant under the uniform shift; queue
  // structures need no resort.  Two values need care:
  //   * a blocked thread's finish tag can lie below v and would drift toward
  //     -inf over repeated rebases; since wakeup applies S = max(F, v') with
  //     v' >= 0 after the shift, clamping such tags at 0 is behaviour-
  //     identical and keeps them bounded;
  //   * `last_refresh_v_` must shift with the tags unconditionally, or the
  //     `VirtualTime() != last_refresh_v_` refresh check desynchronizes and
  //     every subsequent decision pays a spurious full refresh.
  const double delta = v;
  ForEachEntity([delta](Entity& e) {
    e.start_tag() -= delta;
    e.finish_tag() -= delta;
    if (!e.runnable && e.finish_tag() < 0.0) {
      e.finish_tag() = 0.0;
    }
  });
  idle_virtual_time_ = std::max(0.0, idle_virtual_time_ - delta);
  last_refresh_v_ -= delta;
  // Start tags shifted in place; surpluses are untouched by the shift.
  start_queue_.SyncKeys();
  ++rebases_;
}

Entity* Sfs::ExactPick(CpuId cpu) {
  Entity* head = nullptr;
  for (Entity* e = surplus_queue_.front(); e != nullptr; e = surplus_queue_.next(e)) {
    if (!e->running) {
      head = e;
      break;
    }
  }
  if (head == nullptr || config().affinity_tolerance <= 0) {
    return head;
  }
  // Affinity extension: accept a slightly-larger surplus to stay cache-warm.
  const double window = head->surplus() + static_cast<double>(config().affinity_tolerance);
  if (head->last_cpu == cpu) {
    return head;
  }
  for (Entity* e = surplus_queue_.next(head); e != nullptr && e->surplus() <= window;
       e = surplus_queue_.next(e)) {
    if (!e->running && e->last_cpu == cpu) {
      return e;
    }
  }
  return head;
}

Entity* Sfs::HeuristicPick(double v, int k, CpuId cpu) {
  Entity* best = nullptr;
  double best_surplus = 0.0;
  Entity* best_affine = nullptr;
  double best_affine_surplus = 0.0;
  auto consider = [&](Entity* e) {
    if (e->running) {
      return;
    }
    const double s = FreshSurplus(*e, v);
    // Deterministic tie-break on thread id ("ties are broken arbitrarily").
    if (best == nullptr || s < best_surplus ||
        (s == best_surplus && e->tid < best->tid)) {
      best = e;
      best_surplus = s;
    }
    if (cpu != kInvalidCpu && e->last_cpu == cpu &&
        (best_affine == nullptr || s < best_affine_surplus ||
         (s == best_affine_surplus && e->tid < best_affine->tid))) {
      best_affine = e;
      best_affine_surplus = s;
    }
  };
  const auto kk = static_cast<std::size_t>(k);
  surplus_queue_.ForFirstK(kk, consider);
  start_queue_.ForFirstK(kk, consider);
  // The weight queue is descending; examine it backwards — smallest weights first
  // (footnote 8).
  weight_queue().ForLastK(kk, consider);
  if (best == nullptr) {
    // Degenerate small k: every examined thread is already running on another
    // processor.  Fall back to the surplus queue head scan (at most p-1 skips).
    for (Entity* e = surplus_queue_.front(); e != nullptr; e = surplus_queue_.next(e)) {
      if (!e->running) {
        return e;
      }
    }
    return nullptr;
  }
  if (best_affine != nullptr && best_affine != best &&
      best_affine_surplus <= best_surplus + static_cast<double>(config().affinity_tolerance)) {
    return best_affine;
  }
  return best;
}

Sfs::HeuristicAudit Sfs::AuditHeuristic(int k) {
  HeuristicAudit audit;
  const double v = VirtualTime();
  Entity* h = HeuristicPick(v, k, kInvalidCpu);
  if (h != nullptr) {
    audit.heuristic_pick = h->tid;
    audit.heuristic_surplus = FreshSurplus(*h, v);
  }
  // Exact answer computed by full scan (no state mutation).
  Entity* exact = nullptr;
  double exact_s = 0.0;
  for (Entity* e = start_queue_.front(); e != nullptr; e = start_queue_.next(e)) {
    if (e->running) {
      continue;
    }
    const double s = FreshSurplus(*e, v);
    if (exact == nullptr || s < exact_s || (s == exact_s && e->tid < exact->tid)) {
      exact = e;
      exact_s = s;
    }
  }
  if (exact != nullptr) {
    audit.exact_pick = exact->tid;
    audit.exact_surplus = exact_s;
  }
  return audit;
}

}  // namespace sfs::sched

#include "src/sched/readjust.h"

#include "src/common/assert.h"

namespace sfs::sched {

std::vector<double> ReadjustVector(const std::vector<double>& weights, int num_cpus) {
  SFS_CHECK(num_cpus >= 1);
  for (std::size_t i = 1; i < weights.size(); ++i) {
    SFS_CHECK(weights[i - 1] >= weights[i]);  // must be sorted descending
  }
  std::vector<double> result = weights;
  // With at most p runnable threads every thread can be granted a full processor;
  // the recursion's tail case degenerates (empty remainder), so the closest
  // feasible assignment is simply equal shares.
  if (result.size() <= static_cast<std::size_t>(num_cpus)) {
    for (auto& w : result) {
      w = 1.0;
    }
    return result;
  }
  // Iterative, single-pass form of the Figure 2 recursion.  The recursion's
  // downward phase tests thread i against the suffix sum of the *original*
  // weights from i on with p - i processors left; the literal transcription
  // recomputed that suffix at every level, costing O(capped * n).  One running
  // sum (`rem`, the suffix at index i, maintained by subtracting each capped
  // weight) makes the capped-prefix scan O(capped); the scan stops at the
  // first feasible thread, all smaller weights being feasible too.
  const std::size_t n = result.size();
  double rem = 0.0;
  for (double w : result) {
    rem += w;
  }
  std::size_t capped = 0;
  int p = num_cpus;
  while (capped < n && p > 1 && result[capped] * static_cast<double>(p) > rem) {
    // Feasibility constraint (Equation 1): w_i / suffix <= 1/p.
    rem -= result[capped];
    ++capped;
    --p;
  }
  // Upward phase (the paper assigns bottom-up, after the recursive call
  // returns): thread i receives the suffix sum of the *readjusted* weights
  // after it, divided by its remaining processors minus one.  `rem` at this
  // point is exactly that suffix for the deepest capped index; accumulating
  // each fresh assignment keeps it correct walking back to index 0.
  for (std::size_t i = capped; i-- > 0;) {
    result[i] = rem / static_cast<double>(num_cpus - static_cast<int>(i) - 1);
    rem += result[i];
  }
  return result;
}

void ReadjustState::Forget(Entity& e) {
  if (!e.capped) {
    return;
  }
  e.capped = false;
  for (std::size_t i = 0; i < capped.size(); ++i) {
    if (capped[i] == &e) {
      capped[i] = capped.back();
      capped.pop_back();
      return;
    }
  }
  SFS_CHECK(false);  // flag set but not tracked
}

bool ReadjustQueue(WeightQueue& queue, double total_weight, int num_cpus,
                   ReadjustState& state) {
  SFS_CHECK(num_cpus >= 1);
  const std::size_t t = queue.size();
  bool changed = false;

  auto set_phi = [&changed](Entity* e, double phi) {
    if (e->phi() != phi) {
      e->phi() = phi;
      changed = true;
    }
  };

  // Determine the capped prefix: how many of the heaviest threads violate the
  // feasibility constraint, and the instantaneous weight they all receive.
  std::size_t new_capped = 0;
  double phi_cap = 0.0;
  if (t == 0) {
    new_capped = 0;
  } else if (t <= static_cast<std::size_t>(num_cpus)) {
    // Every runnable thread can consume a full processor; cap all shares at 1/p
    // by making the instantaneous weights equal.
    new_capped = t;
    phi_cap = 1.0;
  } else {
    // Walk the queue front-to-back (largest weights first).  Thread k (0-based)
    // is infeasible iff  w_k / rem_sum > 1 / (p - k)  where rem_sum sums the
    // original weights from k onward.  The loop exits at the first feasible
    // thread — all smaller weights are feasible too — and cannot cap more than
    // p-1 threads because at k = p-1 the test becomes w > rem_sum, impossible.
    double rem_sum = total_weight;
    Entity* cursor = queue.front();
    while (cursor != nullptr) {
      const auto rem_cpus = static_cast<double>(num_cpus) - static_cast<double>(new_capped);
      if (rem_cpus <= 1.0) {
        break;
      }
      if (cursor->weight() * rem_cpus > rem_sum) {
        rem_sum -= cursor->weight();
        ++new_capped;
        cursor = queue.next(cursor);
      } else {
        break;
      }
    }
    // Every capped thread receives the same instantaneous weight T / (p - k):
    // each then holds a share of exactly 1/p.  Feasible threads keep w_i.
    phi_cap = new_capped > 0
                  ? rem_sum / (static_cast<double>(num_cpus) - static_cast<double>(new_capped))
                  : 0.0;
  }

  // Swap out the previous cap set, then mark and weight the new prefix.
  std::swap(state.capped, state.scratch);
  state.capped.clear();
  for (Entity* e : state.scratch) {
    e->capped = false;
  }
  std::size_t index = 0;
  for (Entity* e = queue.front(); e != nullptr && index < new_capped;
       e = queue.next(e), ++index) {
    set_phi(e, phi_cap);
    e->capped = true;
    state.capped.push_back(e);
  }
  // Threads that fell out of the cap set go back to their requested weight;
  // never-capped threads already carry it ("weights of threads that satisfy the
  // feasibility constraint never change").
  for (Entity* e : state.scratch) {
    if (!e->capped) {
      set_phi(e, e->weight());
    }
  }
  state.scratch.clear();
  return changed;
}

bool IsFeasible(const WeightQueue& queue, double total_weight, int num_cpus) {
  const Entity* heaviest = queue.front();
  if (heaviest == nullptr) {
    return true;
  }
  // Equation 1 for the largest weight; all smaller weights request smaller shares.
  return heaviest->weight() * static_cast<double>(num_cpus) <= total_weight;
}

}  // namespace sfs::sched

// Progress-based weight regulation — the paper's last future-work item.
//
// Section 5: "proportional-share schedulers such as SFS need to be combined
// with tools that enable a user to determine an application's resource
// requirements ... translate these requirements to appropriate weights, and
// modify weights dynamically if these resource requirements change", citing
// progress-based regulation [7] and feedback-driven proportion allocation [24].
//
// WeightController implements the feedback loop: the caller periodically
// reports the CPU service a thread actually received over a window, and the
// controller multiplicatively steers the thread's weight so its *share*
// converges to a target fraction of the machine.  Because shares are relative,
// the controller is robust to competitors arriving and departing — it simply
// re-converges.

#ifndef SFS_SCHED_FEEDBACK_H_
#define SFS_SCHED_FEEDBACK_H_

#include "src/common/time.h"
#include "src/sched/scheduler.h"

namespace sfs::sched {

class WeightController {
 public:
  struct Params {
    // Desired fraction of total machine bandwidth (0, 1].  Note a single thread
    // cannot exceed 1/p of an SMP's bandwidth (Equation 1); targets above that
    // saturate there.
    double target_share = 0.25;
    // Correction exponent per observation: 1.0 = full multiplicative step,
    // smaller = smoother convergence.
    double gain = 0.5;
    Weight min_weight = 1e-3;
    Weight max_weight = 1e6;
  };

  WeightController(Scheduler& scheduler, ThreadId tid, const Params& params);

  // Reports the service received over the last observation window of length
  // `window` ticks.  Adjusts the thread's weight; no-op if the thread is gone.
  void Observe(Tick service_delta, Tick window);

  Weight current_weight() const { return weight_; }
  double last_observed_share() const { return last_share_; }

 private:
  Scheduler& scheduler_;
  ThreadId tid_;
  Params params_;
  Weight weight_;
  double last_share_ = 0.0;
  double ema_share_ = -1.0;  // exponential moving average; <0 = no sample yet
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_FEEDBACK_H_

// Weighted Fair Queueing (Parekh & Gallager / Demers et al.) baseline.
//
// WFQ orders threads by *finish* tag: F_i = S_i + Q / phi_i, where Q plays the
// role of the packet length.  CPU quanta — unlike packets — have unknown length at
// dispatch (threads block), so F must be predicted with the nominal quantum and
// corrected afterwards.  This structural mismatch is one of the paper's arguments
// for basing decisions on start tags / surpluses only (Section 2.3: SFS "does not
// require the quantum length to be known a priori").
//
// Like SFQ and stride, WFQ inherits the multiprocessor infeasible-weight
// pathology; use_readjustment grafts the Section 2.1 algorithm onto it.

#ifndef SFS_SCHED_WFQ_H_
#define SFS_SCHED_WFQ_H_

#include <utility>

#include "src/sched/gps_base.h"
#include "src/sched/run_queue.h"

namespace sfs::sched {

struct ByFinishAsc {
  static std::pair<double, ThreadId> Key(const Entity& e) { return {e.finish_tag(), e.tid}; }
};
using FinishQueue = RunQueue<Entity, &Entity::by_rq, ByFinishAsc>;

class Wfq : public GpsSchedulerBase {
 public:
  explicit Wfq(const SchedConfig& config);
  ~Wfq() override;

  std::string_view name() const override {
    return config().use_readjustment ? "WFQ+readjust" : "WFQ";
  }

  CpuId SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) override;

  double VirtualTime() const;
  double FinishTag(ThreadId tid) const { return FindEntity(tid).finish_tag(); }

  // Migration timeline (sched::Sharded): start tags anchor the translation;
  // finish tags are re-predicted on attach.
  double LocalVirtualTime() const override { return VirtualTime(); }

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;
  void OnAttach(Entity& e) override;

 private:
  // Predicted finish tag assuming a full nominal quantum.
  double PredictFinish(const Entity& e) const;

  FinishQueue queue_;
  double idle_virtual_time_ = 0.0;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_WFQ_H_

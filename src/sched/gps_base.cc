#include "src/sched/gps_base.h"

// GpsSchedulerBase is header-only; this translation unit anchors the vtable-less
// helpers under the project warning set.

// Core identifier and configuration types shared by all schedulers.

#ifndef SFS_SCHED_TYPES_H_
#define SFS_SCHED_TYPES_H_

#include <cstdint>

#include "src/common/time.h"

namespace sfs::sched {

// Thread (task) identifier.  Ids are assigned by the caller (simulator/executor)
// and are dense small integers in practice.
using ThreadId = std::int32_t;
inline constexpr ThreadId kInvalidThread = -1;

// Processor identifier, 0 .. num_cpus-1.
using CpuId = std::int32_t;
inline constexpr CpuId kInvalidCpu = -1;

// Relative share request (the paper's w_i).  Positive; need not be integral —
// the readjustment algorithm produces fractional instantaneous weights.
using Weight = double;

// Run-queue backend for the GPS scheduler family's sorted queues (Section 3.2:
// insertion is O(t) on the kernel's sorted lists; "binary search" — here an
// indexed skip list — shaves it to O(log t)).  Both backends obey the same
// ascending-key, FIFO-among-ties ordering contract, and every queue key carries
// a thread-id tie-break, so schedules are byte-identical across backends.
enum class QueueBackend {
  kSortedList,  // paper-faithful linear-scan sorted list (default)
  kSkipList,    // indexed skip list, O(log t) insert/reposition
};

// Victim-selection policy for the sharded scheduling layer's idle-pull work
// stealing (sched::Sharded).  Kept an enum so the strawman (no stealing, the
// paper's Section 1.2 partitioned design) and the production answer share one
// code path and differ only in this knob.
enum class ShardStealPolicy {
  kNone,        // never steal: a shard whose queue drains idles (partitioned)
  kMaxSurplus,  // idle CPU pulls the highest-surplus stealable thread
};

// Common scheduler construction parameters.
struct SchedConfig {
  // Number of processors p.
  int num_cpus = 2;

  // Maximum quantum handed out at dispatch (the engine may end it early on
  // blocking).  200 ms throughout the paper's evaluation.
  Tick quantum = kDefaultQuantum;

  // Fixed-point decimal digits for tag arithmetic (the paper's 10^n scaling
  // factor, Section 3.2).  Negative = exact double arithmetic.
  int fixed_point_digits = -1;

  // SFS scheduling heuristic (Section 3.2): examine the first `heuristic_k`
  // threads of each of the three queues instead of recomputing every surplus.
  // 0 disables the heuristic (exact algorithm).
  int heuristic_k = 0;

  // With the heuristic enabled, do a full surplus refresh + resort every this
  // many scheduling decisions ("infrequent updates and sorting are still
  // required to maintain a high accuracy of the heuristic").
  int heuristic_refresh_period = 64;

  // Enables the weight readjustment algorithm (Section 2.1).  SFS always uses
  // it; for SFQ/stride/WFQ/BVT it is optional so that the paper's
  // with/without comparisons (Figure 4) can be run.
  bool use_readjustment = true;

  // Rebase threshold for tag wrap-around handling (Section 3.2).  When the
  // virtual time exceeds this many ticks of weighted service, all tags are
  // rebased against the minimum start tag.  Kept low enough to exercise the
  // path in tests; high enough to be invisible in normal runs.
  double tag_rebase_threshold = 1e15;

  // Backend for every sorted run queue the scheduler maintains (weight, start
  // tag, surplus, finish tag, pass, ...).  The skip-list backend changes only
  // constants, never decisions.
  QueueBackend queue_backend = QueueBackend::kSortedList;

  // Processor-affinity extension (Section 5 future work): when > 0, a dispatch
  // may pick any thread whose surplus is within this many ticks of the minimum,
  // preferring one that last ran on the dispatching CPU (cache-warm).  0 keeps
  // the paper's affinity-blind SFS.  The sharded layer honours the same
  // tolerance when choosing a steal victim (prefer cache-warm candidates).
  Tick affinity_tolerance = 0;

  // --- sched::Sharded knobs (per-CPU shards; ignored by flat schedulers) ------

  // Idle-pull work stealing: what an idle shard may take from its peers.
  ShardStealPolicy shard_steal = ShardStealPolicy::kMaxSurplus;

  // Scheduling decisions between surplus-aware rebalancing passes across
  // shards (the paper's "periodic repartitioning"); 0 = never rebalance.
  int shard_rebalance_period = 0;

  // Cross-shard virtual-time coupling in [0, 1], applied when a thread
  // migrates between shards: 0 re-expresses tags purely relative to the
  // destination's virtual time (independent timelines, the partitioned
  // semantics — past cross-shard imbalance is forgiven), 1 keeps the absolute
  // tags (shards share one global timeline, so a migrant from a slow —
  // overloaded — shard arrives behind and is compensated until it catches
  // up, bounding cross-shard unfairness).
  double shard_coupling = 1.0;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_TYPES_H_

#include "src/sched/sharded.h"

#include <algorithm>
#include <utility>

#include "src/common/assert.h"

namespace sfs::sched {

void TranslateMigratedTags(Entity& e, double v_src, double v_dst, double coupling) {
  const double origin = v_dst + coupling * (v_src - v_dst);
  // Both tag axes are translated with the same rule; each policy reads only
  // its own (start/finish for SFS/SFQ/WFQ, pass for stride/BVT).
  e.start_tag() = origin + std::max(0.0, e.start_tag() - v_src);
  e.finish_tag() = e.start_tag();
  e.pass = origin + std::max(0.0, e.pass - v_src);
  e.surplus() = 0.0;
}

ShardedScheduler::ShardedScheduler(const SchedConfig& config, ShardFactory make_shard)
    : Scheduler(config) {
  SFS_CHECK(config.shard_rebalance_period >= 0);
  SFS_CHECK(config.shard_coupling >= 0.0 && config.shard_coupling <= 1.0);
  SchedConfig shard_config = config;
  shard_config.num_cpus = 1;
  shards_.reserve(static_cast<std::size_t>(num_cpus()));
  for (CpuId cpu = 0; cpu < num_cpus(); ++cpu) {
    auto shard = std::make_unique<Shard>();
    shard->scheduler = make_shard(shard_config);
    SFS_CHECK(shard->scheduler != nullptr);
    SFS_CHECK(shard->scheduler->num_cpus() == 1);
    if (common::lock_order::Enabled()) {
      // Rank the dispatch-mutex family so the validator checks ascending
      // CPU-id order across every ShardedScheduler instance in the process.
      common::lock_order::SetRank(&shard->mu, common::kLockClassDispatch,
                                  static_cast<std::uint32_t>(cpu));
    }
    shards_.push_back(std::move(shard));
  }
  name_ = "sharded-" + std::string(shards_.front()->scheduler->name());
}

ShardedScheduler::~ShardedScheduler() = default;

Tick ShardedScheduler::QuantumFor(ThreadId tid) {
  return ShardAt(FindEntity(tid).partition).scheduler->QuantumFor(tid);
}

CpuId ShardedScheduler::SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) {
  const Entity& e = FindEntity(woken);
  if (!e.runnable || e.running) {
    return kInvalidCpu;
  }
  const CpuId home = e.partition;
  const std::vector<Tick> local_elapsed = {elapsed[static_cast<std::size_t>(home)]};
  const CpuId inner = ShardAt(home).scheduler->SuggestPreemption(woken, local_elapsed);
  return inner == 0 ? home : kInvalidCpu;
}

CpuId ShardedScheduler::ShardOf(ThreadId tid) const { return FindEntity(tid).partition; }

std::vector<double> ShardedScheduler::ShardRunnableWeights() const {
  std::vector<double> weights;
  weights.reserve(shards_.size());
  for (const auto& shard : shards_) {
    weights.push_back(shard->runnable_weight.load(std::memory_order_relaxed));
  }
  return weights;
}

const Scheduler& ShardedScheduler::shard(CpuId cpu) const { return *ShardAt(cpu).scheduler; }

Scheduler& ShardedScheduler::shard(CpuId cpu) { return *ShardAt(cpu).scheduler; }

common::Mutex& ShardedScheduler::DispatchMutex(CpuId cpu) { return ShardAt(cpu).mu; }

common::UniqueMutexLock ShardedScheduler::LockVictimShard(CpuId self, CpuId victim) {
  SFS_DCHECK(victim != self);
  if (victim > self) {
    return common::UniqueMutexLock(ShardAt(victim).mu);
  }
  return common::UniqueMutexLock(ShardAt(victim).mu, std::try_to_lock);
}

CpuId ShardedScheduler::LightestShard() const {
  CpuId best = 0;
  for (CpuId cpu = 1; cpu < num_cpus(); ++cpu) {
    if (RunnableWeightOf(cpu) < RunnableWeightOf(best)) {
      best = cpu;
    }
  }
  return best;
}

void ShardedScheduler::OnEpochBoundary(Tick now) {
  (void)now;
  for (const auto& shard : shards_) {
    shard->epoch_virtual_time.store(shard->scheduler->LocalVirtualTime(),
                                    std::memory_order_relaxed);
  }
}

void ShardedScheduler::OnAdmit(Entity& e) {
  // A pre-set partition is a placement hint (Scheduler::AddThread's `home`
  // overload): admit there instead of balancing, so placement is a pure
  // function of the workload — the parallel engine's partitioned
  // determinism contract rests on this.
  const CpuId target =
      (e.partition >= 0 && e.partition < num_cpus()) ? e.partition : LightestShard();
  e.partition = target;
  e.phi() = e.weight();  // uniprocessor shards: every weight assignment is feasible
  Shard& shard = ShardAt(target);
  AddRunnableWeight(shard, e.weight());
  shard.scheduler->AddThread(e.tid, e.weight());
}

void ShardedScheduler::OnRemove(Entity& e) {
  Shard& shard = ShardAt(e.partition);
  if (e.runnable) {
    AddRunnableWeight(shard, -e.weight());
  }
  shard.scheduler->RemoveThread(e.tid);
}

void ShardedScheduler::OnBlocked(Entity& e) {
  Shard& shard = ShardAt(e.partition);
  AddRunnableWeight(shard, -e.weight());
  shard.scheduler->Block(e.tid);
}

void ShardedScheduler::OnWoken(Entity& e) {
  // Wakes rejoin their home shard (cache affinity); imbalance this creates is
  // repaired by stealing/rebalancing, not by re-placing the waker.
  Shard& shard = ShardAt(e.partition);
  AddRunnableWeight(shard, e.weight());
  shard.scheduler->Wakeup(e.tid);
}

void ShardedScheduler::OnWeightChanged(Entity& e, Weight old_weight) {
  if (e.runnable) {
    AddRunnableWeight(ShardAt(e.partition), e.weight() - old_weight);
  }
  e.phi() = e.weight();
  ShardAt(e.partition).scheduler->SetWeight(e.tid, e.weight());
}

Entity* ShardedScheduler::PickNextEntity(CpuId cpu) {
  MaybeRebalance(cpu);
  ThreadId tid = ShardAt(cpu).scheduler->PickNext(0);
  if (tid == kInvalidThread && config().shard_steal == ShardStealPolicy::kMaxSurplus) {
    tid = TrySteal(cpu);
  }
  return tid == kInvalidThread ? nullptr : &FindEntity(tid);
}

void ShardedScheduler::OnCharge(Entity& e, Tick ran_for) {
  ShardAt(e.partition).scheduler->Charge(e.tid, ran_for);
}

void ShardedScheduler::MaybeRebalance(CpuId dispatching_cpu) {
  if (config().shard_rebalance_period <= 0 ||
      decisions_since_rebalance_.fetch_add(1, std::memory_order_relaxed) + 1 <
          config().shard_rebalance_period) {
    return;
  }
  // Pull-based greedy repartitioning: the dispatching CPU's shard pulls the
  // highest-surplus movable thread from the heaviest shard while each move
  // strictly shrinks the imbalance (candidate weight < gap).  Pulling into
  // the shard that is about to dispatch guarantees migrated work is served
  // immediately — pushing toward an idle processor with no pending dispatch
  // would park it indefinitely.
  bool acted = false;
  for (int iteration = 0; iteration < thread_count(); ++iteration) {
    CpuId heavy = 0;
    for (CpuId cpu = 1; cpu < num_cpus(); ++cpu) {
      if (RunnableWeightOf(cpu) > RunnableWeightOf(heavy)) {
        heavy = cpu;
      }
    }
    if (heavy == dispatching_cpu) {
      break;
    }
    const double gap = RunnableWeightOf(heavy) - RunnableWeightOf(dispatching_cpu);
    if (gap <= 0.0) {
      acted = true;  // balanced from this shard's point of view: pass complete
      break;
    }
    common::UniqueMutexLock victim_lock = LockVictimShard(dispatching_cpu, heavy);
    if (!victim_lock.owns_lock()) {
      break;  // contended victim: retry at the next decision
    }
    Entity* candidate = ShardAt(heavy).scheduler->PickMigrationCandidate(/*max_weight=*/gap);
    if (candidate == nullptr) {
      break;
    }
    Migrate(candidate->tid, heavy, dispatching_cpu, /*steal=*/false);
    acted = true;
  }
  // When this processor's shard could not act (it *is* the heaviest, or the
  // heavy shard had nothing movable), retry at the very next decision —
  // likely on another CPU — instead of waiting out a whole fresh period.
  decisions_since_rebalance_.store(acted ? 0 : config().shard_rebalance_period,
                                   std::memory_order_relaxed);
}

ThreadId ShardedScheduler::TrySteal(CpuId thief) {
  // Victim: across all other shards, the stealable (runnable, not running)
  // thread with the greatest phi-weighted lead over its shard's virtual time.
  // Each shard nominates its own best candidate; the thief prefers a
  // cache-warm nominee (last ran here) within affinity_tolerance of the best.
  // Each source shard is evaluated under its own dispatch mutex (nominations
  // are recorded by tid, not entity pointer, since a peer may act on the
  // shard once its lock is released); the winner is re-locked and re-validated
  // before the migration.
  ThreadId victim = kInvalidThread;
  CpuId victim_shard = kInvalidCpu;
  double victim_score = 0.0;
  ThreadId affine = kInvalidThread;
  CpuId affine_shard = kInvalidCpu;
  double affine_score = 0.0;
  for (CpuId source = 0; source < num_cpus(); ++source) {
    if (source == thief) {
      continue;
    }
    common::UniqueMutexLock source_lock = LockVictimShard(thief, source);
    if (!source_lock.owns_lock()) {
      continue;  // contended source: its own dispatcher is serving it anyway
    }
    // Only steal from shards whose processor is busy: a queued thread on an
    // idle source processor will be served locally (cache-warm) as soon as
    // that processor dispatches — the engine tries every idle CPU on a
    // wakeup — so pulling it across shards would be a gratuitous migration.
    if (RunningOn(source) == kInvalidThread) {
      continue;
    }
    Scheduler& shard = *ShardAt(source).scheduler;
    double score = 0.0;
    Entity* candidate = shard.PickMigrationCandidate(/*max_weight=*/0.0, &score);
    if (candidate == nullptr) {
      continue;
    }
    if (victim == kInvalidThread || score > victim_score ||
        (score == victim_score && candidate->tid < victim)) {
      victim = candidate->tid;
      victim_shard = source;
      victim_score = score;
    }
    // Cache warmth lives on the outer entity (inner shards only ever see
    // their single local processor 0).
    if (FindEntity(candidate->tid).last_cpu == thief &&
        (affine == kInvalidThread || score > affine_score ||
         (score == affine_score && candidate->tid < affine))) {
      affine = candidate->tid;
      affine_shard = source;
      affine_score = score;
    }
  }
  if (victim == kInvalidThread) {
    return kInvalidThread;
  }
  if (affine != kInvalidThread && affine != victim &&
      affine_score + static_cast<double>(config().affinity_tolerance) >= victim_score) {
    victim = affine;
    victim_shard = affine_shard;
  }
  common::UniqueMutexLock victim_lock = LockVictimShard(thief, victim_shard);
  if (!victim_lock.owns_lock()) {
    return kInvalidThread;  // contended since nomination: give up this round
  }
  // Re-validate: the victim shard's dispatcher may have dispatched, blocked or
  // migrated the nominee between the scan and this reacquisition.  (Always
  // true single-threaded, where the nomination lock was never released.)
  // Checked against the *inner* shard's state only: if the nominee migrated
  // away, the outer entity's fields are now guarded by locks we do not hold,
  // but inner membership — and, while a member, runnable/running — is guarded
  // by the victim lock held here.
  Scheduler& source = *ShardAt(victim_shard).scheduler;
  if (!source.Contains(victim) || !source.IsRunnable(victim) || source.IsRunning(victim)) {
    return kInvalidThread;
  }
  Migrate(victim, victim_shard, thief, /*steal=*/true);
  return ShardAt(thief).scheduler->PickNext(0);
}

void ShardedScheduler::Migrate(ThreadId tid, CpuId from, CpuId to, bool steal) {
  // Caller holds both shard mutexes (or is single-threaded): the source and
  // destination inner schedulers and the outer entity are all stable here.
  SFS_DCHECK(from != to);
  Scheduler& src = *ShardAt(from).scheduler;
  Scheduler& dst = *ShardAt(to).scheduler;
  // Read both timelines before detaching: removing the entity can move the
  // source's virtual time (it may hold the minimum tag).
  const double v_src = src.LocalVirtualTime();
  const double v_dst = dst.LocalVirtualTime();
  std::unique_ptr<Entity> inner = src.DetachEntity(tid);
  SFS_CHECK(inner->runnable && !inner->running);
  TranslateMigratedTags(*inner, v_src, v_dst, config().shard_coupling);
  dst.AttachEntity(std::move(inner));
  Entity& outer = FindEntity(tid);
  AddRunnableWeight(ShardAt(from), -outer.weight());
  AddRunnableWeight(ShardAt(to), outer.weight());
  outer.partition = to;
  (steal ? steals_ : rebalance_migrations_).fetch_add(1, std::memory_order_relaxed);
  // Both migration kinds execute on `to`'s dispatch path (the thief, or the
  // rebalancing dispatcher pulling work), so recording into ring `to`
  // preserves the one-writer-per-ring contract.
  if (trace_) [[unlikely]] {
    trace_->Record(to, steal ? obs::TraceEventKind::kSteal : obs::TraceEventKind::kRebalance,
                   trace_->now_hint(), tid, from);
  }
}

}  // namespace sfs::sched

// Sharded scheduling layer: per-CPU GPS shards with surplus-aware work
// stealing and cross-shard virtual-time coupling.
//
// The paper rejects per-processor GPS scheduling because "frequent
// repartitioning can be expensive; doing so infrequently can result in
// imbalances (and unfairness) across partitions" (Section 1.2).  Production
// schedulers answer that objection with per-CPU run queues plus idle-time work
// stealing; this layer builds that answer on SFS's own surplus metric:
//
//   * one uniprocessor instance of any GPS policy (SFS/SFQ/WFQ/stride/BVT)
//     per CPU — a shard.  Uniprocessor GPS needs no weight readjustment
//     (every assignment is feasible), the approach's original selling point;
//   * weight-balanced placement at arrival (lightest shard by runnable
//     weight); wakeups rejoin their home shard (cache affinity);
//   * idle-pull work stealing inside PickNextEntity: a shard with nothing
//     runnable pulls the *highest-surplus* stealable thread from its peers
//     (Scheduler::MigrationScore, the SFS alpha_i generalized to any tagged
//     policy), honoring SchedConfig::affinity_tolerance by preferring a
//     cache-warm candidate within the tolerance;
//   * optional periodic surplus-aware rebalancing — the paper's "periodic
//     repartitioning", moving the highest-surplus movable threads from the
//     heaviest to the lightest shard;
//   * cross-shard virtual-time coupling (SchedConfig::shard_coupling): how a
//     migrant's tags translate between shard timelines.  0 preserves only the
//     lead over the source's virtual time (independent timelines: past
//     cross-shard imbalance is forgiven — partitioned semantics); 1 keeps the
//     absolute tags (one shared timeline: a migrant from a slow, overloaded
//     shard arrives behind the destination and is compensated until it
//     catches up, bounding cross-shard unfairness).
//
// The paper's strawman (PartitionedSfq) is the same machinery with stealing
// off and coupling 0 — strawman and production design differ only in knobs.
//
// Concurrency: this layer implements the per-shard half of the Scheduler
// thread-safety contract.  DispatchMutex(cpu) is the shard's own mutex, so
// dispatch on different CPUs proceeds in parallel; only the cross-shard paths
// (steal, rebalance pull) touch a peer shard, and they synchronize by locking
// the victim shard's mutex while already holding the dispatching shard's.
// Lock order: shard mutexes may only be *waited on* in ascending CPU-id
// order; a victim with a lower id than the dispatching shard is acquired by
// try_lock and skipped on contention (the dispatcher simply retries at its
// next decision), so no cycle of blocking waits can form.  Single-threaded
// drivers never contend, every try_lock succeeds, and behaviour — including
// every deterministic test fingerprint — is identical to the unlocked layer.

#ifndef SFS_SCHED_SHARDED_H_
#define SFS_SCHED_SHARDED_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/sched/scheduler.h"

namespace sfs::sched {

// Re-expresses a migrating runnable entity's tags from the source shard's
// virtual time `v_src` into the destination's `v_dst`.  The lead above v_src
// is preserved; `coupling` in [0, 1] blends the translation origin between
// v_dst (0, fully relative) and v_src (1, absolute tags — shared timeline).
// The finish tag collapses onto the start tag (a runnable migrant carries no
// pending wakeup credit) and the surplus is recomputed on attach.
void TranslateMigratedTags(Entity& e, double v_src, double v_dst, double coupling);

class ShardedScheduler : public Scheduler {
 public:
  // Builds one uniprocessor shard per CPU from `config` (with num_cpus
  // rewritten to 1) using `make_shard`.
  using ShardFactory = std::function<std::unique_ptr<Scheduler>(const SchedConfig&)>;
  ShardedScheduler(const SchedConfig& config, ShardFactory make_shard);
  ~ShardedScheduler() override;

  std::string_view name() const override { return name_; }

  Tick QuantumFor(ThreadId tid) override;

  // Local reschedule_idle: the woken thread competes for its home shard's
  // processor only (cross-shard placement happens by stealing, not by
  // preempting a foreign CPU).
  CpuId SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) override;

  // --- counters / introspection ------------------------------------------------

  std::int64_t steals() const override { return steals_.load(std::memory_order_relaxed); }
  std::int64_t shard_migrations() const override {
    return rebalance_migrations_.load(std::memory_order_relaxed);
  }

  // Home shard of a thread (== the CPU it is eligible to run on between
  // migrations).
  CpuId ShardOf(ThreadId tid) const;

  // Targeted-kick hook (scheduler.h): per-shard dispatch mutexes make the
  // home shard the one whose LockDispatch covers the lifecycle relaxation.
  CpuId HomeCpu(ThreadId tid) const override { return ShardOf(tid); }

  // Runnable weight per shard (placement/rebalance balance target).
  std::vector<double> ShardRunnableWeights() const;

  // Shard-local virtual time as of the last epoch boundary (the parallel
  // engine's conservative synchronization points).  Workers read peer shards'
  // timelines lock-free through this snapshot — reading a peer's
  // LocalVirtualTime() directly would require its dispatch mutex.  Exact for
  // single-threaded drivers that call OnEpochBoundary; 0.0 before the first
  // boundary.
  double ShardVirtualTime(CpuId cpu) const {
    return ShardAt(cpu).epoch_virtual_time.load(std::memory_order_relaxed);
  }

  // Snapshots every shard's LocalVirtualTime into the lock-free epoch view.
  // Called single-threaded (all workers at the barrier), so reading the inner
  // schedulers without their mutexes is safe.
  void OnEpochBoundary(Tick now) override;

  // The uniprocessor policy instance hosting shard `cpu`.
  const Scheduler& shard(CpuId cpu) const;
  Scheduler& shard(CpuId cpu);

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;

  // Per-shard dispatch lock: dispatch on different CPUs does not serialize.
  common::Mutex& DispatchMutex(CpuId cpu) override;

 private:
  struct Shard {
    std::unique_ptr<Scheduler> scheduler;
    // Relaxed atomic: mutated only under this shard's mutex or the lifecycle
    // lock, but read lock-free by peer shards scanning for the lightest or
    // heaviest shard (an approximate balance heuristic under concurrency,
    // exact when single-threaded).
    std::atomic<double> runnable_weight{0.0};
    // Shard-local virtual time snapshotted at the last epoch boundary (see
    // ShardVirtualTime); written only inside OnEpochBoundary.
    std::atomic<double> epoch_virtual_time{0.0};
    // The shard's dispatch mutex (see the lock-order comment above).  The
    // host registers it with the lock-order validator under
    // kLockClassDispatch, rank == CPU id, so a blocking out-of-order
    // acquisition aborts in debug builds.
    common::Mutex mu;
  };

  Shard& ShardAt(CpuId cpu) { return *shards_[static_cast<std::size_t>(cpu)]; }
  const Shard& ShardAt(CpuId cpu) const { return *shards_[static_cast<std::size_t>(cpu)]; }

  // Adds `delta` to a shard's runnable weight (writers are serialized by the
  // contract, so a plain read-modify-write store suffices).
  static void AddRunnableWeight(Shard& shard, double delta) {
    shard.runnable_weight.store(shard.runnable_weight.load(std::memory_order_relaxed) + delta,
                                std::memory_order_relaxed);
  }
  double RunnableWeightOf(CpuId cpu) const {
    return ShardAt(cpu).runnable_weight.load(std::memory_order_relaxed);
  }

  // Acquires `victim`'s shard mutex from a dispatcher already holding
  // `self`'s: blocking when victim > self (ascending lock order), try_lock
  // when victim < self.  The returned lock may be unowned (contended skip).
  common::UniqueMutexLock LockVictimShard(CpuId self, CpuId victim);

  // Lightest shard by runnable weight; ties go to the lowest CPU id.
  CpuId LightestShard() const;

  // Periodic surplus-aware repartitioning, counted in scheduling decisions.
  // Pull-based: `dispatching_cpu`'s shard pulls from the heaviest shard, so
  // migrated work is dispatched immediately (pushing toward an idle processor
  // with no pending dispatch would park it).  A triggered pass that cannot
  // act from this processor retries at the next decision.
  void MaybeRebalance(CpuId dispatching_cpu);

  // Steals the best victim across all other shards into `thief` and dispatches
  // it; kInvalidThread when nothing is stealable.
  ThreadId TrySteal(CpuId thief);

  // Moves a runnable, not-running thread between shards with tag translation.
  void Migrate(ThreadId tid, CpuId from, CpuId to, bool steal);

  std::string name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int> decisions_since_rebalance_{0};
  std::atomic<std::int64_t> steals_{0};
  std::atomic<std::int64_t> rebalance_migrations_{0};
};

// One uniprocessor `Policy` instance per CPU behind the sharding machinery.
template <typename Policy>
class Sharded : public ShardedScheduler {
 public:
  explicit Sharded(const SchedConfig& config)
      : ShardedScheduler(config, [](const SchedConfig& shard_config) {
          return std::make_unique<Policy>(shard_config);
        }) {}
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_SHARDED_H_

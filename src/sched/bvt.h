// Borrowed Virtual Time (Duda & Cheriton, SOSP '99) baseline.
//
// BVT tracks an actual virtual time A_i per thread (advancing by q / phi_i) and
// dispatches by *effective* virtual time E_i = A_i - warp_i for warped
// (latency-sensitive) threads.  The paper notes "BVT reduces to SFQ when the
// latency parameter is set to zero", which the test suite verifies, and that BVT
// inherits the same multiprocessor pathologies; use_readjustment grafts the
// Section 2.1 algorithm onto it.

#ifndef SFS_SCHED_BVT_H_
#define SFS_SCHED_BVT_H_

#include <utility>

#include "src/sched/gps_base.h"
#include "src/sched/run_queue.h"

namespace sfs::sched {

struct ByEffectiveVtAsc {
  static std::pair<double, ThreadId> Key(const Entity& e) {
    // warp_eff is warp while enabled, else 0, so pass - warp_eff is E_i either way.
    return {e.pass - e.warp_eff(), e.tid};
  }
};
using EffectiveVtQueue = RunQueue<Entity, &Entity::by_rq, ByEffectiveVtAsc>;

class Bvt : public GpsSchedulerBase {
 public:
  explicit Bvt(const SchedConfig& config);
  ~Bvt() override;

  std::string_view name() const override { return "BVT"; }

  CpuId SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) override;

  // Sets the latency parameter (warp) of a thread.  warp = 0 disables warping.
  void SetWarp(ThreadId tid, double warp);

  double ActualVirtualTime(ThreadId tid) const { return FindEntity(tid).pass; }
  double SchedulerVirtualTime() const;

  // Migration timeline (sched::Sharded): tags live on the actual-virtual-time
  // (pass) axis; warp travels with the entity unchanged.
  double LocalVirtualTime() const override { return SchedulerVirtualTime(); }
  double EntityTag(const Entity& e) const override { return e.pass; }

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;
  void OnAttach(Entity& e) override;

 private:
  EffectiveVtQueue queue_;
  double idle_svt_ = 0.0;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_BVT_H_

// Per-thread scheduling state ("task struct" fields).
//
// One Entity exists per thread known to a scheduler.  It carries the union of the
// state used by the schedulers in this library; each scheduler uses the subset it
// needs.  All queue membership is intrusive (Section 3.1 keeps each runnable thread
// on three sorted queues simultaneously), so entities are never copied or moved
// while linked.

#ifndef SFS_SCHED_ENTITY_H_
#define SFS_SCHED_ENTITY_H_

#include "src/common/intrusive_list.h"
#include "src/common/time.h"
#include "src/sched/types.h"

namespace sfs::sched {

struct Entity {
  ThreadId tid = kInvalidThread;

  // Requested weight w_i (set by the user, Section 2).
  Weight weight = 1.0;
  // Instantaneous weight phi_i produced by the readjustment algorithm (Section 2.1).
  // Equal to `weight` whenever the assignment is feasible.
  Weight phi = 1.0;
  // True while the readjustment algorithm holds this thread's share capped at 1/p.
  // Maintained by ReadjustQueue so that restoring former caps costs O(p), not O(t).
  bool capped = false;

  // SFS / SFQ / WFQ virtual-time tags (Section 2.3).
  double start_tag = 0.0;   // S_i
  double finish_tag = 0.0;  // F_i
  // SFS surplus alpha_i = phi_i * (S_i - v), maintained for runnable threads.
  double surplus = 0.0;

  // Stride scheduling pass value / BVT actual virtual time.
  double pass = 0.0;

  // BVT latency parameter: while warp_enabled, the effective virtual time is
  // pass - warp.
  double warp = 0.0;
  bool warp_enabled = false;

  // Linux 2.2-style time-sharing state: remaining timeslice in timer ticks and
  // the static priority added at every epoch recalculation.
  std::int64_t counter = 0;
  int priority = 0;

  // --- generic state maintained by the Scheduler base class ---
  bool runnable = false;
  bool running = false;
  CpuId cpu = kInvalidCpu;        // processor currently running this thread
  CpuId last_cpu = kInvalidCpu;   // processor that last ran it (affinity hint)
  CpuId partition = kInvalidCpu;  // home partition (partitioned baseline only)
  Tick total_service = 0;         // cumulative CPU time received
  // Position in the owning scheduler's dense live-entity list (swap-and-pop
  // erase); maintained by the Scheduler base, -1 while unowned.
  std::int32_t live_index = -1;

  // Intrusive queue hooks (Section 3.1's three queues plus one generic run queue
  // used by the non-GPS baselines).
  common::ListHook by_weight;   // runnable threads, descending weight
  common::ListHook by_start;    // runnable threads, ascending start tag
  common::ListHook by_surplus;  // runnable threads, ascending surplus
  common::ListHook by_rq;       // scheduler-specific run queue (RR/timeshare/stride/...)
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_ENTITY_H_

// Per-thread scheduling state ("task struct" fields).
//
// One Entity exists per thread known to a scheduler.  It carries the union of the
// state used by the schedulers in this library; each scheduler uses the subset it
// needs.  All queue membership is intrusive (Section 3.1 keeps each runnable thread
// on three sorted queues simultaneously), so entities are never copied or moved
// while linked.
//
// Hot/cold split: the fields read on every Charge/Pick/RefreshSurpluses —
// weight, phi, the virtual-time tags and the surplus — are packed into
// EntityHotRow, exactly one cache line placed first in the Entity, so the
// entity's first line IS its scheduling state and a random touch (wakeup,
// charge, queue-scan key read) never fans out across the struct.  The cold
// identity/bookkeeping fields follow, and the hot fields are exposed through
// accessors of the same names.
//
// Two externalized layouts were measured before landing on this one, on the
// wakeup-dominated 10k-thread engine-throughput cells (mostly-blocked
// interactive tasks, the worst case for random entity access):
//   * six parallel arrays indexed by live_index (pure SoA): up to six
//     scattered lines per entity touch, ~25% end-to-end regression;
//   * one dense array of cache-line rows indexed by live_index: one extra
//     *independent* line per touch — the row region never rides the adjacent-
//     line prefetch of the entity's own lines — ~15% regression.
// Keeping the row inside the entity costs the streaming refresh its unit
// stride, but the refresh only walks the runnable queue (O(runnable), see
// Sfs::RefreshSurpluses) while every hot path pays the random-touch cost, so
// the inline row wins.  The branchless-refresh piece survives via warp_eff:
// the per-entity `warp_enabled ? warp : 0` branch is precomputed at
// SetWarpState time.

#ifndef SFS_SCHED_ENTITY_H_
#define SFS_SCHED_ENTITY_H_

#include <cstdint>
#include <vector>

#include "src/common/intrusive_list.h"
#include "src/common/time.h"
#include "src/sched/types.h"

namespace sfs::sched {

// The per-entity hot scheduling state: exactly one cache line, embedded first
// in the Entity.
struct alignas(64) EntityHotRow {
  Weight weight = 1.0;      // requested weight w_i
  Weight phi = 1.0;         // instantaneous weight phi_i (readjusted)
  double start_tag = 0.0;   // S_i
  double finish_tag = 0.0;  // F_i
  double surplus = 0.0;     // alpha_i = phi_i * (S_i - v)
  double warp_eff = 0.0;    // warp while warp_enabled, else 0
  // 16 bytes of the line left for the next hot field.
};
static_assert(sizeof(EntityHotRow) == 64, "row must stay exactly one cache line");

struct Entity {
  // First member: the entity's first cache line is its hot scheduling state.
  EntityHotRow row_;

  ThreadId tid = kInvalidThread;
  std::int32_t live_index = -1;

  // --- hot-field accessors (same names as the former plain fields) -----------

  EntityHotRow& row() { return row_; }
  const EntityHotRow& row() const { return row_; }

  // Requested weight w_i (set by the user, Section 2).
  Weight& weight() { return row().weight; }
  Weight weight() const { return row().weight; }

  // Instantaneous weight phi_i produced by the readjustment algorithm (Section
  // 2.1).  Equal to `weight` whenever the assignment is feasible.
  Weight& phi() { return row().phi; }
  Weight phi() const { return row().phi; }

  // SFS / SFQ / WFQ virtual-time tags (Section 2.3).
  double& start_tag() { return row().start_tag; }
  double start_tag() const { return row().start_tag; }
  double& finish_tag() { return row().finish_tag; }
  double finish_tag() const { return row().finish_tag; }

  // SFS surplus alpha_i = phi_i * (S_i - v), maintained for runnable threads.
  double& surplus() { return row().surplus; }
  double surplus() const { return row().surplus; }

  // Effective warp: `warp` while warp_enabled, else 0.  Kept hot so the
  // branchless surplus refresh and the BVT effective-virtual-time key read the
  // row instead of testing warp_enabled per entity.
  double warp_eff() const { return row().warp_eff; }

  // Sets the BVT/SFS latency warp, keeping warp, warp_enabled and the hot
  // warp_eff row consistent.  warp = 0 disables.
  void SetWarpState(double w) {
    warp = w;
    warp_enabled = w != 0.0;
    row().warp_eff = warp_enabled ? w : 0.0;
  }

  // --- cold fields ------------------------------------------------------------
  // Declaration order packs 8-byte, then 4-byte, then 1-byte members so the
  // whole Entity is exactly three cache lines (the alignas(64) row rounds
  // sizeof up to a multiple of 64; sloppy ordering here costs a fourth line
  // per entity, which is measurable at 10k threads).

  // Stride scheduling pass value / BVT actual virtual time.
  double pass = 0.0;

  // BVT latency parameter: while warp_enabled, the effective virtual time is
  // pass - warp.  Written only through SetWarpState.
  double warp = 0.0;

  // Linux 2.2-style time-sharing state: remaining timeslice in timer ticks and
  // the static priority added at every epoch recalculation.
  std::int64_t counter = 0;

  Tick total_service = 0;  // cumulative CPU time received

  int priority = 0;               // time-sharing static priority
  CpuId cpu = kInvalidCpu;        // processor currently running this thread
  CpuId last_cpu = kInvalidCpu;   // processor that last ran it (affinity hint)
  CpuId partition = kInvalidCpu;  // home partition (partitioned baseline only)

  // True while the readjustment algorithm holds this thread's share capped at 1/p.
  // Maintained by ReadjustQueue so that restoring former caps costs O(p), not O(t).
  bool capped = false;

  bool warp_enabled = false;

  // --- generic state maintained by the Scheduler base class ---
  bool runnable = false;
  bool running = false;

  // Intrusive queue hooks (Section 3.1's three queues plus one generic run queue
  // used by the non-GPS baselines).
  common::ListHook by_weight;   // runnable threads, descending weight
  common::ListHook by_start;    // runnable threads, ascending start tag
  common::ListHook by_surplus;  // runnable threads, ascending surplus
  common::ListHook by_rq;       // scheduler-specific run queue (RR/timeshare/stride/...)
};
static_assert(sizeof(Entity) == 192, "entity must stay three cache lines");

}  // namespace sfs::sched

#endif  // SFS_SCHED_ENTITY_H_

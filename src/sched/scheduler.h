// Abstract multiprocessor scheduler interface.
//
// The interface mirrors the points where the Linux kernel invokes the scheduler in
// the paper's implementation (Section 3.1): thread arrival/departure, block/wakeup,
// weight changes, quantum expiry and dispatch.  The driver (discrete-event simulator
// in src/sim, or the real-thread executor in src/exec) must follow this protocol:
//
//   * `PickNext(cpu)` selects a runnable, not-currently-running thread and marks it
//     running on `cpu`.  Each CPU dispatches independently — quanta on different
//     processors are not synchronized (Section 3.1).
//   * When the thread stops running for any reason (quantum expiry, blocking,
//     exit, preemption) the driver calls `Charge(tid, ran_for)` with the actual
//     time it ran.  Variable-length quanta are the norm: threads often block
//     before the quantum ends, and SFS is explicitly designed to not need the
//     quantum length at dispatch time (Section 2.3).
//   * `Block`/`RemoveThread` on a running thread must be preceded by `Charge`.
//
// All bookkeeping common to every policy (the thread table, runnable/running state,
// cumulative service accounting) lives here; concrete schedulers implement the
// `On*` hooks and the dispatch decision.
//
// Thread-safety contract (concurrent drivers, e.g. the per-CPU dispatcher
// threads of exec::Executor):
//
//   * A Scheduler performs no internal synchronization of its own entry
//     points.  Single-threaded drivers (the simulator) call everything
//     directly, paying nothing.
//   * A concurrent driver brackets every call in one of two lock classes:
//       - LockDispatch(cpu) covers the dispatch path on that processor:
//         PickNext(cpu), Charge(tid) for the thread running on `cpu`, and
//         QuantumFor(tid) for the thread just picked there.  Flat policies
//         share one dispatch mutex (all per-CPU dispatch serializes — the
//         coarse global-lock contract); sched::Sharded overrides
//         DispatchMutex() with a per-shard mutex, so dispatch on different
//         CPUs proceeds concurrently and only cross-shard steal/migration
//         synchronizes internally (see sharded.h).
//       - LockLifecycle() covers everything else: AddThread, RemoveThread,
//         Block, Wakeup, SetWeight, SuggestPreemption, DetachEntity,
//         AttachEntity and any introspection that races with dispatch.  It
//         has one sanctioned relaxation: Block, Wakeup, SetWeight and
//         SuggestPreemption on a thread whose home shard the caller knows and
//         can pin (a blocked thread cannot migrate; a thread that just ran on
//         `cpu` is home on `cpu`'s shard) may be bracketed by
//         LockDispatch(home) alone — everything they touch is either guarded
//         by that shard's mutex or atomic (the runnable count).  Structural
//         mutations (Add/Remove/Detach/Attach) still take the full lifecycle
//         lock; that exclusivity is what makes entity-table reads safe for
//         holders of any single dispatch mutex.  sim::ParallelEngine's
//         wakeup/block hot path is built on this relaxation.  It
//         acquires every distinct dispatch mutex, so it is exclusive against
//         every concurrent LockDispatch *and* other lifecycle calls, and a
//         lifecycle holder may additionally perform dispatch-path operations
//         (the Charge-then-Block sequence must be atomic or another
//         dispatcher could pick the thread in between).  Deliberately not a
//         reader-writer lock: with per-CPU dispatchers hammering the
//         dispatch path, a reader-preferring rwlock (glibc's default) can
//         starve wakeups for seconds.
//   * Lock order: dispatch mutexes are only ever *waited on* in ascending
//     CPU-id order (LockLifecycle and the sharded steal path both follow
//     this; out-of-order acquisitions use try_lock), so no cycle of blocking
//     waits can form.
//
// Enforcement (DESIGN.md §11): every mutex here is a common::Mutex.  Because
// drivers may legitimately call every entry point with *no* locks held
// (single-threaded simulators), the public methods carry no REQUIRES
// annotations — the static analysis enforces the unconditionally-locked
// subsystems (executor, metrics, epoch barrier), while this dynamic contract
// is enforced at runtime by the lock-order validator (common/mutex.h):
// sched::Sharded registers its per-shard mutexes under kLockClassDispatch
// with rank == CPU id, so any blocking out-of-order acquisition aborts in
// debug builds, on any interleaving, process-wide.

#ifndef SFS_SCHED_SCHEDULER_H_
#define SFS_SCHED_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/time.h"
#include "src/obs/trace.h"
#include "src/sched/entity.h"
#include "src/sched/types.h"

namespace sfs::sched {

class Scheduler {
 public:
  explicit Scheduler(const SchedConfig& config);
  virtual ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Short policy name ("SFS", "SFQ", ...), used in benchmark output.
  virtual std::string_view name() const = 0;

  const SchedConfig& config() const { return config_; }
  int num_cpus() const { return config_.num_cpus; }

  // --- Concurrency (see the thread-safety contract above) ---------------------

  // Movable guards (common/mutex.h): the lock set is dynamic, so these are
  // invisible to the static analysis and policed by the runtime validator.
  using DispatchGuard = common::UniqueMutexLock;
  // All distinct dispatch mutexes, held in ascending CPU-id order.
  using LifecycleGuard = std::vector<common::UniqueMutexLock>;

  // Acquires the lock covering PickNext/Charge/QuantumFor on `cpu`.
  DispatchGuard LockDispatch(CpuId cpu);

  // Non-blocking LockDispatch: the returned guard is unowned (owns_lock()
  // false) when the mutex is contended.  The runtime's timer uses this for
  // its wakeup fast path — apply the wakeup directly while the home shard is
  // free, fall back to the mailbox when its dispatcher holds the lock —
  // so a descheduled lock holder can never convoy the timer.
  DispatchGuard TryLockDispatch(CpuId cpu);

  // Acquires the exclusive lock covering every other entry point (and, while
  // held, the dispatch path on any CPU as well).
  LifecycleGuard LockLifecycle();

  // --- Thread lifecycle -------------------------------------------------------

  // Registers a new thread; it becomes runnable immediately.  `tid` must be unused.
  void AddThread(ThreadId tid, Weight weight);

  // As AddThread, with a placement hint: partitioned/sharded policies admit
  // the thread to shard `home` instead of their load-balanced choice, making
  // placement a pure function of the workload (the parallel engine's
  // partitioned determinism contract).  Flat policies ignore the hint; an
  // out-of-range or kInvalidCpu hint falls back to plain AddThread.
  void AddThread(ThreadId tid, Weight weight, CpuId home);

  // Unregisters a thread (exit).  Must not be currently running (Charge first).
  void RemoveThread(ThreadId tid);

  // Thread blocked (I/O, sleep).  Must be runnable and not running (Charge first).
  void Block(ThreadId tid);

  // Blocked thread became runnable again.
  void Wakeup(ThreadId tid);

  // Changes a thread's weight on the fly (the setweight system call, Section 3.1).
  void SetWeight(ThreadId tid, Weight weight);

  // --- Dispatch ---------------------------------------------------------------

  // Chooses the next thread to run on `cpu` and marks it running there.  Returns
  // kInvalidThread if there is no eligible thread.  `cpu` must be free
  // (the driver must Charge the previous thread first).
  ThreadId PickNext(CpuId cpu);

  // Accounts `ran_for` ticks of CPU time to the running thread `tid` and releases
  // its processor.  The thread stays runnable (preemption / quantum expiry) unless
  // the driver follows up with Block or RemoveThread.
  void Charge(ThreadId tid, Tick ran_for);

  // Maximum quantum the driver should grant this thread at dispatch.  Defaults to
  // config().quantum; the time-sharing baseline returns its remaining timeslice.
  virtual Tick QuantumFor(ThreadId tid);

  // Asks whether dispatching the just-woken/arrived thread `woken` warrants
  // preempting a running thread; returns the CPU to preempt or kInvalidCpu.
  // Mirrors Linux's reschedule_idle() as invoked from the timer tick: the driver
  // supplies `elapsed[cpu]` = uncharged run time of the thread currently on each
  // CPU, so policies can evaluate up-to-date tags/counters.  Policies override
  // with their own criterion; the default never preempts.
  virtual CpuId SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed);

  // Targeted-kick hook (sfs::runtime): the CPU whose LockDispatch satisfies
  // the sanctioned lifecycle relaxation for `tid` — i.e. the dispatch mutex
  // that alone covers Block/Wakeup/SetWeight/SuggestPreemption on it.  Flat
  // policies return kInvalidCpu meaning *any* CPU works (they have one
  // dispatch mutex, so every LockDispatch is the lock); sched::Sharded
  // returns the thread's current shard.  Call while holding LockDispatch on
  // the result (or LockLifecycle); for a *blocked* thread the answer is
  // additionally stable without any lock — a blocked thread cannot migrate —
  // which is what lets a driver route a wakeup message to the home
  // dispatcher's mailbox and kick only that CPU.
  virtual CpuId HomeCpu(ThreadId tid) const {
    (void)tid;
    return kInvalidCpu;
  }

  // --- Migration protocol (sched::Sharded) ------------------------------------
  //
  // A sharded host moves a thread between two uniprocessor scheduler instances
  // by detaching its entity from the source (which dequeues it and forgets it,
  // but preserves every field: weight, tags, runnable/blocked state, cumulative
  // service), re-expressing the tags in the destination's virtual time, and
  // attaching it to the destination.  The thread must not be running.

  // Removes `tid` from this scheduler and returns its entity intact.
  std::unique_ptr<Entity> DetachEntity(ThreadId tid);

  // Adopts a detached entity, preserving its (already translated) tags.  The
  // tid must be unused here.  Runnable entities are enqueued via OnAttach.
  void AttachEntity(std::unique_ptr<Entity> entity);

  // This scheduler's virtual timeline origin for tag translation: the GPS
  // policies return their system virtual time (minimum primary tag over
  // runnable threads); policies without virtual-time tags return 0.
  virtual double LocalVirtualTime() const { return 0.0; }

  // The entity's position on that timeline (its primary tag): start tag for
  // SFS/SFQ/WFQ, pass for stride/BVT.
  virtual double EntityTag(const Entity& e) const { return e.start_tag(); }

  // Phi-weighted lead of `e` over the local virtual time — the SFS surplus
  // alpha_i = phi_i * (S_i - v) generalized to any tagged policy.  The sharded
  // layer steals the thread with the greatest score.
  double MigrationScore(const Entity& e) const {
    return e.phi() * (EntityTag(e) - LocalVirtualTime());
  }

  // Best thread to migrate away: the runnable, not-running entity with the
  // highest MigrationScore (ties broken toward the lowest tid, so the choice
  // is deterministic).  `max_weight` > 0 restricts candidates to weights
  // strictly below it (the rebalancer's "move only if the imbalance shrinks"
  // constraint).  Returns nullptr if no entity qualifies; otherwise `score`
  // (when non-null) receives the winner's MigrationScore — the virtual time
  // is evaluated once for the whole scan, not per entity.
  Entity* PickMigrationCandidate(double max_weight = 0.0, double* score = nullptr);

  // --- Introspection ----------------------------------------------------------

  bool Contains(ThreadId tid) const;
  bool IsRunnable(ThreadId tid) const;
  bool IsRunning(ThreadId tid) const;
  Weight GetWeight(ThreadId tid) const;
  // Instantaneous (readjusted) weight phi_i; equals GetWeight for feasible
  // assignments or non-GPS policies.
  Weight GetPhi(ThreadId tid) const;
  Tick TotalService(ThreadId tid) const;
  ThreadId RunningOn(CpuId cpu) const;
  int runnable_count() const { return runnable_count_.load(std::memory_order_relaxed); }
  int thread_count() const { return static_cast<int>(live_.size()); }

  // Conservative-epoch synchronization hook (sim::ParallelEngine): invoked
  // once per epoch boundary, single-threaded, with every worker parked at the
  // barrier, at simulated time `now`.  Policies may snapshot or republish
  // cross-shard state here (sched::Sharded exposes per-shard virtual times);
  // the default does nothing.  Must not change any scheduling decision —
  // single-threaded drivers never call it.
  virtual void OnEpochBoundary(Tick now) { (void)now; }

  // Threads the scheduler itself moved between internal shards: idle-pull
  // steals and periodic rebalance migrations (sched::Sharded).  Flat policies
  // report zero; the simulation engine mirrors `steals` into its counters.
  virtual std::int64_t steals() const { return 0; }
  virtual std::int64_t shard_migrations() const { return 0; }

  // --- Observability -----------------------------------------------------------

  // Attaches a trace the scheduler records its own events into: steal and
  // rebalance migrations (sched::Sharded) and weight-readjustment passes (GPS
  // policies).  Records are stamped with the trace's now-hint, which the
  // driver publishes (sim ticks from the engine, wall nanoseconds from the
  // executor).  nullptr (the default) disables recording at the cost of one
  // predicted branch per site.  Not propagated to internal shard instances —
  // the sharded host records the cross-shard events itself.
  void SetTrace(obs::Trace* trace) { trace_ = trace; }
  obs::Trace* trace() const { return trace_; }

 protected:
  // Policy hooks.  The base class has already updated the generic state
  // (runnable/running flags, accounting) when these are invoked.
  virtual void OnAdmit(Entity& e) = 0;           // new thread, already runnable
  virtual void OnRemove(Entity& e) = 0;          // thread leaving (runnable or blocked)
  virtual void OnBlocked(Entity& e) = 0;         // runnable -> blocked
  virtual void OnWoken(Entity& e) = 0;           // blocked -> runnable
  virtual void OnWeightChanged(Entity& e, Weight old_weight) = 0;  // weight updated
  virtual Entity* PickNextEntity(CpuId cpu) = 0;  // dispatch decision
  virtual void OnCharge(Entity& e, Tick ran_for) = 0;  // tag/accounting update

  // A detached entity arriving via AttachEntity (runnable, tags already
  // translated into this scheduler's timeline).  The default reuses the wakeup
  // path: every GPS policy's OnWoken applies `tag = max(tag, v)`, which leaves
  // a translated tag (>= v by construction) untouched while enqueueing.
  virtual void OnAttach(Entity& e) { OnWoken(e); }

  // The mutex LockDispatch(cpu) takes after the shared state lock.  The base
  // returns one scheduler-wide mutex (flat policies touch shared queues from
  // every CPU's dispatch, so they must serialize); sched::Sharded returns the
  // per-shard mutex so independent shards dispatch concurrently.
  virtual common::Mutex& DispatchMutex(CpuId cpu);

  // Lookup helpers; CHECK-fail on unknown tid.
  Entity& FindEntity(ThreadId tid);
  const Entity& FindEntity(ThreadId tid) const;
  Entity* FindEntityOrNull(ThreadId tid);

  // Entities currently running, indexed by CPU (kInvalidThread slots are free CPUs).
  const std::vector<ThreadId>& running_threads() const { return running_; }

  // Observability sink; nullptr when tracing is off (the common case).
  obs::Trace* trace_ = nullptr;

  // Iterates all known entities (any state); order unspecified.
  template <typename Fn>
  void ForEachEntity(Fn&& fn) {
    for (Entity* entity : live_) {
      fn(*entity);
    }
  }

 private:
  // Files `entity` under its tid and into the live list.
  void StoreEntity(std::unique_ptr<Entity> entity);
  // Unfiles `e` (swap-and-pop on the live list) and returns its ownership.
  std::unique_ptr<Entity> ReleaseEntity(Entity& e);

  SchedConfig config_;
  // ThreadId-indexed entity table (tids are dense small integers; a vector
  // index beats the hash probe every Charge/Block/Wakeup paid before), plus
  // the dense set of live entities for iteration.  Lookup of an absent tid is
  // a bounds check + null test.
  std::vector<std::unique_ptr<Entity>> by_tid_;
  std::vector<Entity*> live_;
  std::vector<ThreadId> running_;
  // Relaxed atomic: Block/Wakeup run under per-shard dispatch mutexes in the
  // parallel engine, so increments on different shards race as plain ints.
  // The count itself needs no cross-shard ordering — readers want a tally,
  // not a synchronization point.
  std::atomic<int> runnable_count_{0};

  // Concurrency contract state; untouched unless a driver uses the Lock* API.
  mutable common::Mutex dispatch_mu_;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_SCHEDULER_H_

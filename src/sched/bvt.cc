#include "src/sched/bvt.h"

#include <algorithm>

namespace sfs::sched {

Bvt::Bvt(const SchedConfig& config) : GpsSchedulerBase(config) {
  queue_.SetBackend(config.queue_backend);
}

Bvt::~Bvt() { queue_.Clear(); }

double Bvt::SchedulerVirtualTime() const {
  // SVT: minimum actual virtual time over runnable threads.
  const Entity* best = nullptr;
  for (const Entity* e = queue_.front(); e != nullptr; e = queue_.next(e)) {
    if (best == nullptr || e->pass < best->pass) {
      best = e;
    }
  }
  return best == nullptr ? idle_svt_ : best->pass;
}

void Bvt::SetWarp(ThreadId tid, double warp) {
  Entity& e = FindEntity(tid);
  e.SetWarpState(warp);
  if (queue_.contains(&e)) {
    queue_.Reposition(&e);
  }
}

void Bvt::OnAdmit(Entity& e) {
  e.pass = SchedulerVirtualTime();
  AdmitWeight(e);
  queue_.Insert(&e);
}

void Bvt::OnRemove(Entity& e) {
  if (e.runnable) {
    queue_.Remove(&e);
    RetireWeight(e);
  }
}

void Bvt::OnBlocked(Entity& e) {
  queue_.Remove(&e);
  RetireWeight(e);
  if (queue_.empty()) {
    idle_svt_ = std::max(idle_svt_, e.pass);
  }
}

void Bvt::OnWoken(Entity& e) {
  e.pass = std::max(e.pass, SchedulerVirtualTime());
  AdmitWeight(e);
  queue_.Insert(&e);
}

void Bvt::OnWeightChanged(Entity& e, Weight old_weight) { UpdateWeight(e, old_weight); }

void Bvt::OnAttach(Entity& e) {
  // Migrated entity: keep the translated actual virtual time (no clamp).
  AdmitWeight(e);
  queue_.Insert(&e);
}

Entity* Bvt::PickNextEntity(CpuId cpu) {
  (void)cpu;
  for (Entity* e = queue_.front(); e != nullptr; e = queue_.next(e)) {
    if (!e->running) {
      return e;
    }
  }
  return nullptr;
}

void Bvt::OnCharge(Entity& e, Tick ran_for) {
  e.pass += arith().WeightedService(ran_for, e.phi());
  queue_.Remove(&e);
  queue_.InsertFromBack(&e);
  if (queue_.size() == 1) {
    idle_svt_ = std::max(idle_svt_, e.pass);
  }
}

CpuId Bvt::SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) {
  const Entity& w = FindEntity(woken);
  if (!w.runnable || w.running) {
    return kInvalidCpu;
  }
  const auto effective_vt = [](const Entity& e) { return e.pass - e.warp_eff(); };
  const double woken_evt = effective_vt(w);
  CpuId victim = kInvalidCpu;
  double worst = woken_evt;
  for (CpuId cpu = 0; cpu < num_cpus(); ++cpu) {
    const ThreadId running = RunningOn(cpu);
    if (running == kInvalidThread) {
      continue;
    }
    const Entity& r = FindEntity(running);
    const double evt = effective_vt(r) +
                       arith().WeightedService(elapsed[static_cast<std::size_t>(cpu)], r.phi());
    if (evt > worst) {
      worst = evt;
      victim = cpu;
    }
  }
  return victim;
}

}  // namespace sfs::sched

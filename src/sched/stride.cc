#include "src/sched/stride.h"

#include <algorithm>

namespace sfs::sched {

Stride::Stride(const SchedConfig& config) : GpsSchedulerBase(config) {
  queue_.SetBackend(config.queue_backend);
}

Stride::~Stride() { queue_.Clear(); }

double Stride::GlobalPass() const {
  const Entity* head = queue_.front();
  return head == nullptr ? idle_pass_ : head->pass;
}

void Stride::OnAdmit(Entity& e) {
  e.pass = GlobalPass();
  AdmitWeight(e);
  queue_.Insert(&e);
}

void Stride::OnRemove(Entity& e) {
  if (e.runnable) {
    queue_.Remove(&e);
    RetireWeight(e);
  }
}

void Stride::OnBlocked(Entity& e) {
  queue_.Remove(&e);
  RetireWeight(e);
  if (queue_.empty()) {
    idle_pass_ = std::max(idle_pass_, e.pass);
  }
}

void Stride::OnWoken(Entity& e) {
  // Re-joining threads resume from the global pass so they cannot bank credit.
  e.pass = std::max(e.pass, GlobalPass());
  AdmitWeight(e);
  queue_.Insert(&e);
}

void Stride::OnWeightChanged(Entity& e, Weight old_weight) { UpdateWeight(e, old_weight); }

void Stride::OnAttach(Entity& e) {
  // Migrated entity: keep the translated pass (no wakeup-style clamp).
  AdmitWeight(e);
  queue_.Insert(&e);
}

Entity* Stride::PickNextEntity(CpuId cpu) {
  (void)cpu;
  for (Entity* e = queue_.front(); e != nullptr; e = queue_.next(e)) {
    if (!e->running) {
      return e;
    }
  }
  return nullptr;
}

void Stride::OnCharge(Entity& e, Tick ran_for) {
  // pass += stride * service; with stride1 folded into the tag unit this is the
  // same weighted-service advance the other GPS schedulers use.
  e.pass += arith().WeightedService(ran_for, e.phi());
  queue_.Remove(&e);
  queue_.InsertFromBack(&e);
  if (queue_.size() == 1) {
    idle_pass_ = std::max(idle_pass_, e.pass);
  }
}

CpuId Stride::SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) {
  const Entity& w = FindEntity(woken);
  if (!w.runnable || w.running) {
    return kInvalidCpu;
  }
  CpuId victim = kInvalidCpu;
  double worst = w.pass;
  for (CpuId cpu = 0; cpu < num_cpus(); ++cpu) {
    const ThreadId running = RunningOn(cpu);
    if (running == kInvalidThread) {
      continue;
    }
    const Entity& r = FindEntity(running);
    const double pass =
        r.pass + arith().WeightedService(elapsed[static_cast<std::size_t>(cpu)], r.phi());
    if (pass > worst) {
      worst = pass;
      victim = cpu;
    }
  }
  return victim;
}

}  // namespace sfs::sched

#include "src/sched/sfq.h"

#include <algorithm>

namespace sfs::sched {

Sfq::Sfq(const SchedConfig& config) : GpsSchedulerBase(config) {
  queue_.SetBackend(config.queue_backend);
}

Sfq::~Sfq() { queue_.Clear(); }

double Sfq::VirtualTime() const {
  const Entity* head = queue_.front();
  return head == nullptr ? idle_virtual_time_ : head->start_tag();
}

void Sfq::OnAdmit(Entity& e) {
  // "Newly arriving threads are assigned the minimum value of S_i over all
  // runnable threads" (Example 1).
  e.start_tag() = VirtualTime();
  e.finish_tag() = e.start_tag();
  AdmitWeight(e);
  queue_.Insert(&e);
}

void Sfq::OnRemove(Entity& e) {
  if (e.runnable) {
    queue_.Remove(&e);
    RetireWeight(e);
  }
}

void Sfq::OnBlocked(Entity& e) {
  queue_.Remove(&e);
  RetireWeight(e);
  if (queue_.empty()) {
    idle_virtual_time_ = std::max(idle_virtual_time_, e.finish_tag());
  }
}

void Sfq::OnWoken(Entity& e) {
  e.start_tag() = std::max(e.finish_tag(), VirtualTime());
  AdmitWeight(e);
  queue_.Insert(&e);
}

void Sfq::OnWeightChanged(Entity& e, Weight old_weight) { UpdateWeight(e, old_weight); }

void Sfq::OnAttach(Entity& e) {
  // Migrated entity: keep the translated start tag (no wakeup-style clamp).
  AdmitWeight(e);
  queue_.Insert(&e);
}

Entity* Sfq::PickNextEntity(CpuId cpu) {
  (void)cpu;
  for (Entity* e = queue_.front(); e != nullptr; e = queue_.next(e)) {
    if (!e->running) {
      return e;
    }
  }
  return nullptr;
}

void Sfq::OnCharge(Entity& e, Tick ran_for) {
  e.finish_tag() = e.start_tag() + arith().WeightedService(ran_for, e.phi());
  e.start_tag() = e.finish_tag();
  queue_.Remove(&e);
  queue_.InsertFromBack(&e);
  if (queue_.size() == 1) {
    idle_virtual_time_ = std::max(idle_virtual_time_, e.finish_tag());
  }
}

CpuId Sfq::SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) {
  const Entity& w = FindEntity(woken);
  if (!w.runnable || w.running) {
    return kInvalidCpu;
  }
  CpuId victim = kInvalidCpu;
  double worst = w.start_tag();
  for (CpuId cpu = 0; cpu < num_cpus(); ++cpu) {
    const ThreadId running = RunningOn(cpu);
    if (running == kInvalidThread) {
      continue;
    }
    const Entity& r = FindEntity(running);
    // Start tag the runner would have if charged now.
    const double tag =
        r.start_tag() + arith().WeightedService(elapsed[static_cast<std::size_t>(cpu)], r.phi());
    if (tag > worst) {
      worst = tag;
      victim = cpu;
    }
  }
  return victim;
}

}  // namespace sfs::sched

#include "src/sched/wfq.h"

#include <algorithm>

namespace sfs::sched {

Wfq::Wfq(const SchedConfig& config) : GpsSchedulerBase(config) {
  queue_.SetBackend(config.queue_backend);
}

Wfq::~Wfq() { queue_.Clear(); }

double Wfq::VirtualTime() const {
  // Minimum start tag over runnable threads; the queue is ordered by finish tag,
  // so scan (runnable sets are the same threads; start order ~ finish order).
  const Entity* best = nullptr;
  for (const Entity* e = queue_.front(); e != nullptr; e = queue_.next(e)) {
    if (best == nullptr || e->start_tag() < best->start_tag()) {
      best = e;
    }
  }
  return best == nullptr ? idle_virtual_time_ : best->start_tag();
}

double Wfq::PredictFinish(const Entity& e) const {
  return e.start_tag() + arith().WeightedService(config().quantum, e.phi());
}

void Wfq::OnAdmit(Entity& e) {
  e.start_tag() = VirtualTime();
  if (AdmitWeight(e)) {
    // phi changed for some threads: re-predict all finish tags.
    for (Entity* it = queue_.front(); it != nullptr; it = queue_.next(it)) {
      it->finish_tag() = PredictFinish(*it);
    }
    queue_.Resort();
  }
  e.finish_tag() = PredictFinish(e);
  queue_.Insert(&e);
}

void Wfq::OnRemove(Entity& e) {
  if (e.runnable) {
    queue_.Remove(&e);
    RetireWeight(e);
  }
}

void Wfq::OnBlocked(Entity& e) {
  queue_.Remove(&e);
  RetireWeight(e);
  if (queue_.empty()) {
    idle_virtual_time_ = std::max(idle_virtual_time_, e.start_tag());
  }
}

void Wfq::OnWoken(Entity& e) {
  e.start_tag() = std::max(e.start_tag(), VirtualTime());
  AdmitWeight(e);
  e.finish_tag() = PredictFinish(e);
  queue_.Insert(&e);
}

void Wfq::OnWeightChanged(Entity& e, Weight old_weight) {
  if (UpdateWeight(e, old_weight) && e.runnable) {
    for (Entity* it = queue_.front(); it != nullptr; it = queue_.next(it)) {
      it->finish_tag() = PredictFinish(*it);
    }
    queue_.Resort();
  }
}

void Wfq::OnAttach(Entity& e) {
  // Migrated entity: keep the translated start tag (no wakeup-style clamp);
  // the finish tag is a prediction and is recomputed here.
  if (AdmitWeight(e)) {
    // phi changed for some threads (possible when attached to a multi-CPU
    // instance with readjustment): re-predict all finish tags, as OnAdmit does.
    for (Entity* it = queue_.front(); it != nullptr; it = queue_.next(it)) {
      it->finish_tag() = PredictFinish(*it);
    }
    queue_.Resort();
  }
  e.finish_tag() = PredictFinish(e);
  queue_.Insert(&e);
}

Entity* Wfq::PickNextEntity(CpuId cpu) {
  (void)cpu;
  for (Entity* e = queue_.front(); e != nullptr; e = queue_.next(e)) {
    if (!e->running) {
      return e;
    }
  }
  return nullptr;
}

void Wfq::OnCharge(Entity& e, Tick ran_for) {
  // Correct the prediction with the actual service used, then re-predict for the
  // next dispatch.
  e.start_tag() += arith().WeightedService(ran_for, e.phi());
  e.finish_tag() = PredictFinish(e);
  queue_.Remove(&e);
  queue_.InsertFromBack(&e);
  if (queue_.size() == 1) {
    idle_virtual_time_ = std::max(idle_virtual_time_, e.start_tag());
  }
}

CpuId Wfq::SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) {
  const Entity& w = FindEntity(woken);
  if (!w.runnable || w.running) {
    return kInvalidCpu;
  }
  CpuId victim = kInvalidCpu;
  double worst = w.finish_tag();
  for (CpuId cpu = 0; cpu < num_cpus(); ++cpu) {
    const ThreadId running = RunningOn(cpu);
    if (running == kInvalidThread) {
      continue;
    }
    const Entity& r = FindEntity(running);
    const double tag =
        r.finish_tag() + arith().WeightedService(elapsed[static_cast<std::size_t>(cpu)], r.phi());
    if (tag > worst) {
      worst = tag;
      victim = cpu;
    }
  }
  return victim;
}

}  // namespace sfs::sched

// Start-time Fair Queueing (Goyal et al., OSDI '96) — the paper's main baseline.
//
// SFQ maintains a start tag S_i per thread and always dispatches the runnable
// thread with the minimum start tag; S_i advances by q / phi_i when the thread
// runs for q.  On a uniprocessor this provides strong fairness bounds; on an SMP
// it exhibits the two pathologies the paper demonstrates:
//
//   * infeasible weights starve feasible threads (Example 1 / Figures 1 and 4(a)),
//     which SchedConfig::use_readjustment = true mitigates (Figure 4(b));
//   * "spurt" scheduling mis-allocates under frequent arrivals/departures even
//     with feasible weights (Example 2 / Figure 5(a)) — readjustment cannot help.

#ifndef SFS_SCHED_SFQ_H_
#define SFS_SCHED_SFQ_H_

#include <utility>

#include "src/sched/gps_base.h"
#include "src/sched/run_queue.h"

namespace sfs::sched {

struct SfqByStartAsc {
  static std::pair<double, ThreadId> Key(const Entity& e) { return {e.start_tag(), e.tid}; }
};
using SfqQueue = RunQueue<Entity, &Entity::by_start, SfqByStartAsc>;

class Sfq : public GpsSchedulerBase {
 public:
  explicit Sfq(const SchedConfig& config);
  ~Sfq() override;

  std::string_view name() const override {
    return config().use_readjustment ? "SFQ+readjust" : "SFQ";
  }

  CpuId SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) override;

  // System virtual time: minimum start tag over runnable threads.
  double VirtualTime() const;
  double StartTag(ThreadId tid) const { return FindEntity(tid).start_tag(); }

  // Migration timeline (sched::Sharded): tags live on the start-tag axis.
  double LocalVirtualTime() const override { return VirtualTime(); }

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;
  void OnAttach(Entity& e) override;

 private:
  SfqQueue queue_;
  double idle_virtual_time_ = 0.0;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_SFQ_H_

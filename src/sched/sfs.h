// Surplus Fair Scheduling (Sections 2.3, 3.1, 3.2) — the paper's main contribution.
//
// Each thread carries a start tag S_i and finish tag F_i measured in weighted
// service.  The system virtual time v is the minimum start tag over runnable
// threads.  The *surplus*
//
//     alpha_i = phi_i * (S_i - v)
//
// approximates how far ahead of the idealized GMS allocation the thread has run
// (Equation 4); SFS always dispatches the runnable thread with the least surplus.
// Properties reproduced here:
//
//   * phi_i is the instantaneous weight from the readjustment algorithm, so all
//     decisions are made on feasible weights;
//   * the decision needs only start tags, so quanta may have variable length
//     (threads blocking mid-quantum are charged exactly what they used);
//   * a newly woken thread gets S_i = max(F_i, v) — no credit accumulates while
//     sleeping;
//   * alpha_i >= 0 and at least one runnable thread has alpha_i = 0;
//   * on a uniprocessor SFS reduces exactly to SFQ (least surplus == least start
//     tag), which the test suite verifies.
//
// Engineering faithful to Section 3:
//   * three sorted queues (descending weight — in GpsSchedulerBase; ascending start
//     tag; ascending surplus), each on the backend selected by
//     SchedConfig::queue_backend (paper-faithful sorted list, or the O(log t)
//     indexed skip list of Section 3.2's "binary search" remark);
//   * surpluses are recomputed — and only the entities whose queue order
//     actually changed repositioned — when the virtual time advances or
//     weights were readjusted;
//   * optional scheduling heuristic: examine the first k threads of the start-tag
//     and surplus queues and the last k of the weight queue, pick the least fresh
//     surplus among them (Figure 3 measures its accuracy);
//   * optional fixed-point tag arithmetic with a 10^n scaling factor;
//   * tag wrap-around handling: all tags are periodically rebased against the
//     minimum start tag.

#ifndef SFS_SCHED_SFS_H_
#define SFS_SCHED_SFS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/sched/gps_base.h"
#include "src/sched/run_queue.h"

namespace sfs::sched {

struct ByStartTagAsc {
  static std::pair<double, ThreadId> Key(const Entity& e) { return {e.start_tag(), e.tid}; }
};
struct BySurplusAsc {
  static std::pair<double, ThreadId> Key(const Entity& e) { return {e.surplus(), e.tid}; }
};

using StartTagQueue = RunQueue<Entity, &Entity::by_start, ByStartTagAsc>;
using SurplusQueue = RunQueue<Entity, &Entity::by_surplus, BySurplusAsc>;

class Sfs : public GpsSchedulerBase {
 public:
  explicit Sfs(const SchedConfig& config);
  ~Sfs() override;

  std::string_view name() const override { return "SFS"; }

  CpuId SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) override;

  // --- latency extension (Section 5 future work) -------------------------------
  // Sets a latency warp for a thread, in ticks of weighted service.  Dispatch
  // decisions use the *effective* surplus alpha_i - phi_i * warp_i, so a warped
  // thread is scheduled as if it were `warp` ahead of its actual tags — lower
  // dispatch latency — while its tags (and therefore its long-run share) are
  // unchanged.  This is the SFS analogue of BVT's warp, which the paper names as
  // the model for extending GMS-based schedulers with latency requirements.
  // warp = 0 disables.
  void SetWarp(ThreadId tid, double warp);

  // Current system virtual time v (minimum start tag over runnable threads, or the
  // last value before the system went idle).
  double VirtualTime() const;

  // Migration timeline (sched::Sharded): tags live on the start-tag axis.
  double LocalVirtualTime() const override { return VirtualTime(); }

  // Fresh surplus of a runnable thread at the current virtual time.
  double Surplus(ThreadId tid) const;

  double StartTag(ThreadId tid) const { return FindEntity(tid).start_tag(); }
  double FinishTag(ThreadId tid) const { return FindEntity(tid).finish_tag(); }

  // Result of comparing the Section 3.2 heuristic against the exact algorithm for
  // the next dispatch decision on `cpu`, without mutating scheduler state.  Used
  // to reproduce Figure 3.
  struct HeuristicAudit {
    ThreadId heuristic_pick = kInvalidThread;
    ThreadId exact_pick = kInvalidThread;
    double heuristic_surplus = 0.0;
    double exact_surplus = 0.0;
  };
  HeuristicAudit AuditHeuristic(int k);

  // Counters for the overhead benchmarks.
  std::int64_t decisions() const { return decisions_; }
  std::int64_t full_refreshes() const { return full_refreshes_; }
  std::int64_t rebases() const { return rebases_; }
  // Entities re-inserted by the incremental surplus refresh (the entities whose
  // surplus-queue order actually changed); everything else kept its position.
  std::int64_t refresh_repositions() const { return refresh_repositions_; }

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;
  void OnAttach(Entity& e) override;

 private:
  // Inserts a runnable entity into the start-tag and surplus queues with a fresh
  // surplus value.
  void EnqueueRunnable(Entity& e);
  void DequeueRunnable(Entity& e);

  // Recomputes every surplus against `v` in one branchless pass over the dense
  // hot-store arrays, then incrementally restores surplus-queue order: only
  // entities whose new key breaks the ascending run are pulled out and
  // re-inserted (O(log t) each on the skip-list backend).  Blocked entities'
  // rows are overwritten too — harmless, since they sit on no queue and
  // EnqueueRunnable recomputes the surplus at wakeup.
  void RefreshSurpluses(double v);

  // Applies Section 3.2's wrap-around handling when v crosses the rebase
  // threshold: shifts every tag (runnable and blocked) down by the minimum start
  // tag.  Relative order and surpluses are invariant under the shift.
  void MaybeRebase(double v);

  // Effective surplus used for dispatch: the paper's alpha_i = phi_i*(S_i - v),
  // minus the optional latency warp (warp_eff is warp while enabled, else 0).
  double FreshSurplus(const Entity& e, double v) const {
    return e.phi() * (e.start_tag() - v - e.warp_eff());
  }

  Entity* ExactPick(CpuId cpu);
  Entity* HeuristicPick(double v, int k, CpuId cpu);

  StartTagQueue start_queue_;
  SurplusQueue surplus_queue_;

  // Virtual time bookkeeping.  `idle_virtual_time_` implements "the virtual time
  // ... is set to the finish tag of the thread that ran last" when no thread is
  // runnable.  `need_refresh_` starts true so `last_refresh_v_` is only ever
  // compared after a refresh stored a real virtual time; MaybeRebase shifts it
  // together with the tags so the comparison stays in sync across rebases.
  double idle_virtual_time_ = 0.0;
  double last_refresh_v_ = 0.0;
  bool need_refresh_ = true;

  int decisions_since_refresh_ = 0;
  std::int64_t decisions_ = 0;
  std::int64_t full_refreshes_ = 0;
  std::int64_t rebases_ = 0;
  std::int64_t refresh_repositions_ = 0;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_SFS_H_

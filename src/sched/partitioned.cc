#include "src/sched/partitioned.h"

#include <memory>

#include "src/common/assert.h"
#include "src/sched/sfq.h"

namespace sfs::sched {

namespace {

// The strawman's knobs: no stealing, independent shard timelines, rebalance
// only on the caller-chosen period.
SchedConfig StrawmanConfig(const SchedConfig& config, int rebalance_every) {
  SFS_CHECK(rebalance_every >= 0);
  SchedConfig strawman = config;
  strawman.shard_steal = ShardStealPolicy::kNone;
  strawman.shard_rebalance_period = rebalance_every;
  strawman.shard_coupling = 0.0;
  return strawman;
}

}  // namespace

PartitionedSfq::PartitionedSfq(const SchedConfig& config, int rebalance_every)
    : ShardedScheduler(StrawmanConfig(config, rebalance_every),
                       [](const SchedConfig& shard_config) {
                         return std::make_unique<Sfq>(shard_config);
                       }) {}

}  // namespace sfs::sched

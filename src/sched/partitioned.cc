#include "src/sched/partitioned.h"

#include <algorithm>

#include "src/common/assert.h"

namespace sfs::sched {

PartitionedSfq::PartitionedSfq(const SchedConfig& config, int rebalance_every)
    : Scheduler(config),
      arith_(config.fixed_point_digits),
      partitions_(static_cast<std::size_t>(config.num_cpus)),
      rebalance_every_(rebalance_every) {
  SFS_CHECK(rebalance_every >= 0);
  for (Partition& p : partitions_) {
    p.queue.SetBackend(config.queue_backend);
  }
}

PartitionedSfq::~PartitionedSfq() {
  for (auto& partition : partitions_) {
    partition.queue.Clear();
  }
}

std::vector<double> PartitionedSfq::PartitionWeights() const {
  std::vector<double> weights;
  weights.reserve(partitions_.size());
  for (const auto& partition : partitions_) {
    weights.push_back(partition.runnable_weight);
  }
  return weights;
}

double PartitionedSfq::PartitionVirtualTime(const Partition& p) const {
  const Entity* head = p.queue.front();
  return head == nullptr ? p.idle_virtual_time : head->start_tag;
}

CpuId PartitionedSfq::LightestPartition() const {
  CpuId best = 0;
  for (CpuId cpu = 1; cpu < num_cpus(); ++cpu) {
    if (partitions_[static_cast<std::size_t>(cpu)].runnable_weight <
        partitions_[static_cast<std::size_t>(best)].runnable_weight) {
      best = cpu;
    }
  }
  return best;
}

void PartitionedSfq::Enqueue(Entity& e, CpuId partition) {
  e.partition = partition;
  Partition& p = partitions_[static_cast<std::size_t>(partition)];
  p.queue.Insert(&e);
  p.runnable_weight += e.weight;
}

void PartitionedSfq::Dequeue(Entity& e) {
  SFS_DCHECK(e.partition != kInvalidCpu);
  Partition& p = partitions_[static_cast<std::size_t>(e.partition)];
  p.idle_virtual_time = std::max(p.idle_virtual_time, e.finish_tag);
  p.queue.Remove(&e);
  p.runnable_weight -= e.weight;
}

void PartitionedSfq::OnAdmit(Entity& e) {
  const CpuId target = LightestPartition();
  e.start_tag = PartitionVirtualTime(partitions_[static_cast<std::size_t>(target)]);
  e.finish_tag = e.start_tag;
  Enqueue(e, target);
}

void PartitionedSfq::OnRemove(Entity& e) {
  if (e.runnable) {
    Dequeue(e);
  }
}

void PartitionedSfq::OnBlocked(Entity& e) { Dequeue(e); }

void PartitionedSfq::OnWoken(Entity& e) {
  // Wakes rejoin their home partition (cache affinity is this design's point).
  const CpuId home = e.partition != kInvalidCpu ? e.partition : LightestPartition();
  e.start_tag = std::max(
      e.finish_tag, PartitionVirtualTime(partitions_[static_cast<std::size_t>(home)]));
  Enqueue(e, home);
}

void PartitionedSfq::OnWeightChanged(Entity& e, Weight old_weight) {
  if (e.runnable) {
    partitions_[static_cast<std::size_t>(e.partition)].runnable_weight += e.weight - old_weight;
  }
  e.phi = e.weight;  // uniprocessor partitions: no readjustment needed
}

Entity* PartitionedSfq::PickNextEntity(CpuId cpu) {
  if (rebalance_every_ > 0 && ++decisions_since_rebalance_ >= rebalance_every_) {
    decisions_since_rebalance_ = 0;
    Rebalance();
  }
  Queue& queue = partitions_[static_cast<std::size_t>(cpu)].queue;
  for (Entity* e = queue.front(); e != nullptr; e = queue.next(e)) {
    if (!e->running) {
      return e;
    }
  }
  return nullptr;  // this partition is empty even if others are backlogged
}

void PartitionedSfq::OnCharge(Entity& e, Tick ran_for) {
  e.finish_tag = e.start_tag + arith_.WeightedService(ran_for, e.weight);
  e.start_tag = e.finish_tag;
  Partition& p = partitions_[static_cast<std::size_t>(e.partition)];
  p.queue.Remove(&e);
  p.queue.InsertFromBack(&e);
  if (p.queue.size() == 1) {
    p.idle_virtual_time = std::max(p.idle_virtual_time, e.finish_tag);
  }
}

void PartitionedSfq::Rebalance() {
  // Greedy: repeatedly move a (non-running) thread from the heaviest to the
  // lightest partition while that strictly reduces the imbalance.
  for (int iteration = 0; iteration < thread_count(); ++iteration) {
    std::size_t heavy = 0;
    std::size_t light = 0;
    for (std::size_t i = 1; i < partitions_.size(); ++i) {
      if (partitions_[i].runnable_weight > partitions_[heavy].runnable_weight) {
        heavy = i;
      }
      if (partitions_[i].runnable_weight < partitions_[light].runnable_weight) {
        light = i;
      }
    }
    const double gap =
        partitions_[heavy].runnable_weight - partitions_[light].runnable_weight;
    if (gap <= 0.0) {
      return;
    }
    // Smallest movable thread in the heavy partition whose move helps
    // (w < gap means the imbalance strictly shrinks).
    Entity* candidate = nullptr;
    for (Entity* e = partitions_[heavy].queue.front(); e != nullptr;
         e = partitions_[heavy].queue.next(e)) {
      if (e->running || e->weight >= gap) {
        continue;
      }
      if (candidate == nullptr || e->weight < candidate->weight) {
        candidate = e;
      }
    }
    if (candidate == nullptr) {
      return;
    }
    // Preserve the thread's relative lead over its old partition's virtual time
    // when rebasing into the new partition's timeline.
    const double rel =
        std::max(0.0, candidate->start_tag - PartitionVirtualTime(partitions_[heavy]));
    Dequeue(*candidate);
    candidate->start_tag = PartitionVirtualTime(partitions_[light]) + rel;
    candidate->finish_tag = candidate->start_tag;
    Enqueue(*candidate, static_cast<CpuId>(light));
    ++rebalance_moves_;
  }
}

}  // namespace sfs::sched

// Partitioned per-processor SFQ with periodic repartitioning — the alternative
// design the paper discusses and rejects (Section 1.2):
//
//   "A more promising approach is to employ a GPS-based scheduler for each
//   processor and partition the set of threads among processors such that each
//   processor is load balanced.  While such an approach can provide strong
//   fairness guarantees on a per-processor basis, it has certain limitations.
//   In particular, periodic repartitioning of threads may be necessary since
//   blocked/terminated threads can cause imbalances across processors.
//   Frequent repartitioning can be expensive; doing so infrequently can result
//   in imbalances (and unfairness) across partitions."
//
// Each processor runs an independent uniprocessor SFQ over its own partition
// (uniprocessor = every weight assignment feasible, so no readjustment is
// needed — the approach's selling point).  Threads are placed on the
// least-loaded partition at arrival and the partitions are re-balanced by
// weight every `rebalance_every` scheduling decisions.  The
// bench (`bench/abl_partitioned`) sweeps the rebalancing period to reproduce
// the fairness-vs-cost trade the paper describes.

#ifndef SFS_SCHED_PARTITIONED_H_
#define SFS_SCHED_PARTITIONED_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/sched/run_queue.h"
#include "src/sched/scheduler.h"
#include "src/sched/tag_arith.h"

namespace sfs::sched {

class PartitionedSfq : public Scheduler {
 public:
  // `rebalance_every` = scheduling decisions between repartitioning passes
  // (0 = never rebalance).
  PartitionedSfq(const SchedConfig& config, int rebalance_every);

  ~PartitionedSfq() override;

  std::string_view name() const override { return "partitioned-SFQ"; }

  // Number of threads moved between partitions by rebalancing so far (each move
  // abandons the thread's cache state — the "expensive" part).
  std::int64_t rebalance_moves() const { return rebalance_moves_; }

  // Current weight of each partition's runnable threads, for tests.
  std::vector<double> PartitionWeights() const;

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;

 private:
  struct ByStartAsc {
    static std::pair<double, ThreadId> Key(const Entity& e) { return {e.start_tag, e.tid}; }
  };
  using Queue = RunQueue<Entity, &Entity::by_start, ByStartAsc>;

  struct Partition {
    Queue queue;
    double runnable_weight = 0.0;
    double idle_virtual_time = 0.0;
  };

  double PartitionVirtualTime(const Partition& p) const;
  CpuId LightestPartition() const;
  void Enqueue(Entity& e, CpuId partition);
  void Dequeue(Entity& e);

  // Greedy repartition: move runnable, non-running threads from overweight to
  // underweight partitions until balanced (or no move helps).
  void Rebalance();

  TagArith arith_;
  std::vector<Partition> partitions_;
  int rebalance_every_;
  int decisions_since_rebalance_ = 0;
  std::int64_t rebalance_moves_ = 0;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_PARTITIONED_H_

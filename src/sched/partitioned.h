// Partitioned per-processor SFQ with periodic repartitioning — the alternative
// design the paper discusses and rejects (Section 1.2):
//
//   "A more promising approach is to employ a GPS-based scheduler for each
//   processor and partition the set of threads among processors such that each
//   processor is load balanced.  While such an approach can provide strong
//   fairness guarantees on a per-processor basis, it has certain limitations.
//   In particular, periodic repartitioning of threads may be necessary since
//   blocked/terminated threads can cause imbalances across processors.
//   Frequent repartitioning can be expensive; doing so infrequently can result
//   in imbalances (and unfairness) across partitions."
//
// The strawman is the sharded scheduling layer (src/sched/sharded.h) with the
// production knobs turned off: one uniprocessor SFQ per CPU (every weight
// assignment feasible, so no readjustment is needed — the approach's selling
// point), weight-balanced placement at arrival, *no* work stealing (a drained
// partition idles even while its peers are backlogged), fully independent
// virtual timelines (coupling 0), and only the periodic weight rebalance every
// `rebalance_every` scheduling decisions (0 = never).  The bench
// (`bench/abl_partitioned`) sweeps the rebalancing period to reproduce the
// fairness-vs-cost trade the paper describes; `bench/abl_sharded` contrasts it
// with the steal/coupling-enabled sharded-SFS design.

#ifndef SFS_SCHED_PARTITIONED_H_
#define SFS_SCHED_PARTITIONED_H_

#include <cstdint>
#include <vector>

#include "src/sched/sharded.h"

namespace sfs::sched {

class PartitionedSfq : public ShardedScheduler {
 public:
  // `rebalance_every` = scheduling decisions between repartitioning passes
  // (0 = never rebalance).
  PartitionedSfq(const SchedConfig& config, int rebalance_every);

  std::string_view name() const override { return "partitioned-SFQ"; }

  // Number of threads moved between partitions by rebalancing so far (each move
  // abandons the thread's cache state — the "expensive" part).
  std::int64_t rebalance_moves() const { return shard_migrations(); }

  // Current weight of each partition's runnable threads, for tests.
  std::vector<double> PartitionWeights() const { return ShardRunnableWeights(); }
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_PARTITIONED_H_

#include "src/sched/hsfs.h"

#include <algorithm>

#include "src/common/assert.h"

namespace sfs::sched {

namespace {

// Weighted water-filling with per-item caps: shares proportional to `weights`,
// each clamped to `caps`, with the clamped surplus redistributed among the
// others.  Generalizes the paper's readjustment (Figure 2), where every cap is
// 1/p.  Returns fractions summing to min(1, sum(caps)).
std::vector<double> WaterFill(const std::vector<double>& weights, const std::vector<double>& caps) {
  SFS_CHECK(weights.size() == caps.size());
  const std::size_t n = weights.size();
  std::vector<double> shares(n, 0.0);
  std::vector<bool> pinned(n, false);
  double remaining = 1.0;
  for (std::size_t round = 0; round < n; ++round) {
    double free_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!pinned[i]) {
        free_weight += weights[i];
      }
    }
    if (free_weight <= 0.0 || remaining <= 0.0) {
      break;
    }
    bool newly_pinned = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (pinned[i]) {
        continue;
      }
      const double proportional = remaining * weights[i] / free_weight;
      if (proportional > caps[i]) {
        shares[i] = caps[i];
        pinned[i] = true;
        remaining -= caps[i];
        newly_pinned = true;
      } else {
        shares[i] = proportional;
      }
    }
    if (!newly_pinned) {
      break;
    }
  }
  return shares;
}

}  // namespace

HierarchicalSfs::HierarchicalSfs(const SchedConfig& config)
    : Scheduler(config), arith_(config.fixed_point_digits) {
  auto root = std::make_unique<Node>();
  root->id = kRootClass;
  root->weight = 1.0;
  root->share = 1.0;
  root->members.SetBackend(config.queue_backend);
  nodes_.emplace(kRootClass, std::move(root));
}

HierarchicalSfs::~HierarchicalSfs() {
  for (auto& [id, node] : nodes_) {
    node->members.Clear();
    node->rr_members.clear();
  }
}

void HierarchicalSfs::CreateClass(ClassId id, ClassId parent, Weight weight,
                                  IntraClassPolicy policy) {
  SFS_CHECK(weight > 0);
  SFS_CHECK(nodes_.find(id) == nodes_.end());
  Node& parent_node = FindNode(parent);
  auto node = std::make_unique<Node>();
  node->id = id;
  node->parent = &parent_node;
  node->weight = weight;
  node->policy = policy;
  node->members.SetBackend(config().queue_backend);
  parent_node.children.push_back(node.get());
  nodes_.emplace(id, std::move(node));
  RecomputeShares();
}

void HierarchicalSfs::SetClassWeight(ClassId id, Weight weight) {
  SFS_CHECK(weight > 0);
  SFS_CHECK(id != kRootClass);
  FindNode(id).weight = weight;
  RecomputeShares();
}

void HierarchicalSfs::AddThreadToClass(ThreadId tid, Weight weight, ClassId cls) {
  RouteThread(tid, cls);
  AddThread(tid, weight);
}

void HierarchicalSfs::RouteThread(ThreadId tid, ClassId cls) {
  FindNode(cls);  // must exist
  routes_[tid] = cls;
}

Tick HierarchicalSfs::ClassService(ClassId cls) const { return FindNode(cls).total_service; }

double HierarchicalSfs::ClassShare(ClassId cls) const { return FindNode(cls).share; }

HierarchicalSfs::Node& HierarchicalSfs::FindNode(ClassId id) {
  auto it = nodes_.find(id);
  SFS_CHECK(it != nodes_.end());
  return *it->second;
}

const HierarchicalSfs::Node& HierarchicalSfs::FindNode(ClassId id) const {
  auto it = nodes_.find(id);
  SFS_CHECK(it != nodes_.end());
  return *it->second;
}

HierarchicalSfs::Node& HierarchicalSfs::NodeOf(const Entity& e) {
  auto it = thread_class_.find(e.tid);
  SFS_CHECK(it != thread_class_.end());
  return FindNode(it->second);
}

double HierarchicalSfs::LevelVirtualTime(const Node& n, const Node* exclude) const {
  double v = 0.0;
  bool any = false;
  for (const Node* child : n.children) {
    if (child == exclude || child->runnable_leaves == 0) {
      continue;
    }
    v = any ? std::min(v, child->start_tag) : child->start_tag;
    any = true;
  }
  if (n.policy == IntraClassPolicy::kSurplus) {
    // The member queue is sorted by start tag: the minimum is the front.
    if (const Entity* front = n.members.front(); front != nullptr) {
      v = any ? std::min(v, front->start_tag()) : front->start_tag();
      any = true;
    }
  } else {
    for (const Entity* e : n.rr_members) {
      v = any ? std::min(v, e->start_tag()) : e->start_tag();
      any = true;
    }
  }
  return any ? v : n.idle_vt;
}

void HierarchicalSfs::RecomputeShares() {
  // Top-down DFS.  Participants at each node: child classes with runnable
  // leaves, plus runnable member threads.  Caps: a subtree with L runnable
  // leaves can use at most min(B, L) of the node's B processors-worth of
  // bandwidth.
  std::vector<Node*> stack;
  Node& root = FindNode(kRootClass);
  root.share = root.runnable_leaves > 0 ? 1.0 : 0.0;
  stack.push_back(&root);
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    const double bandwidth_cpus = n->share * static_cast<double>(num_cpus());

    std::vector<double> weights;
    std::vector<double> caps;
    std::vector<Node*> class_children;
    std::vector<Entity*> thread_members;
    for (Node* child : n->children) {
      if (child->runnable_leaves > 0) {
        class_children.push_back(child);
        weights.push_back(child->weight);
        caps.push_back(bandwidth_cpus > 0.0
                           ? std::min(1.0, static_cast<double>(child->runnable_leaves) /
                                               bandwidth_cpus)
                           : 0.0);
      } else {
        child->share = 0.0;
      }
    }
    const auto add_member = [&](Entity* e) {
      thread_members.push_back(e);
      weights.push_back(e->weight());
      caps.push_back(bandwidth_cpus > 0.0 ? std::min(1.0, 1.0 / bandwidth_cpus) : 0.0);
    };
    if (n->policy == IntraClassPolicy::kSurplus) {
      for (Entity* e = n->members.front(); e != nullptr; e = n->members.next(e)) {
        add_member(e);
      }
    } else {
      for (Entity* e : n->rr_members) {
        add_member(e);
      }
    }

    const std::vector<double> shares = WaterFill(weights, caps);
    for (std::size_t i = 0; i < class_children.size(); ++i) {
      class_children[i]->share = n->share * shares[i];
      stack.push_back(class_children[i]);
    }
    for (std::size_t i = 0; i < thread_members.size(); ++i) {
      // Entity::phi holds the thread's share fraction *within its class level*;
      // tags advance by q/phi, so only intra-level ratios matter.
      const double phi = shares[class_children.size() + i];
      thread_members[i]->phi() = phi > 0.0 ? phi : thread_members[i]->weight();
    }
  }
}

void HierarchicalSfs::PropagateRunnable(Node& leaf_class, int delta) {
  for (Node* n = &leaf_class; n != nullptr; n = n->parent) {
    const bool was_empty = n->runnable_leaves == 0;
    n->runnable_leaves += delta;
    SFS_CHECK(n->runnable_leaves >= 0);
    if (was_empty && delta > 0 && n->parent != nullptr) {
      // (Re-)activation at the parent's level: the SFS wakeup rule, S = max(F, v),
      // which is also the arrival rule for a never-active class (F == 0 <= v).
      n->start_tag = std::max(n->finish_tag, LevelVirtualTime(*n->parent, n));
    }
    if (n->runnable_leaves == 0 && delta < 0 && n->parent != nullptr) {
      // Deactivation: freeze the parent's level virtual time fallback.
      n->parent->idle_vt = std::max(n->parent->idle_vt, n->finish_tag);
    }
  }
}

void HierarchicalSfs::PropagateEligible(Node& leaf_class, int delta) {
  for (Node* n = &leaf_class; n != nullptr; n = n->parent) {
    n->eligible_leaves += delta;
    SFS_CHECK(n->eligible_leaves >= 0);
  }
}

void HierarchicalSfs::PropagateService(Node& leaf_class, Tick ran) {
  for (Node* n = &leaf_class; n != nullptr; n = n->parent) {
    n->total_service += ran;
  }
}

void HierarchicalSfs::OnAdmit(Entity& e) {
  ClassId cls_id = kRootClass;
  if (auto it = routes_.find(e.tid); it != routes_.end()) {
    cls_id = it->second;
  }
  Node& cls = FindNode(cls_id);
  thread_class_[e.tid] = cls_id;
  e.start_tag() = std::max(e.finish_tag(), LevelVirtualTime(cls));
  e.finish_tag() = e.start_tag();
  if (cls.policy == IntraClassPolicy::kSurplus) {
    cls.members.Insert(&e);
  } else {
    cls.rr_members.push_back(&e);
  }
  PropagateRunnable(cls, +1);
  PropagateEligible(cls, +1);
  RecomputeShares();
}

void HierarchicalSfs::OnRemove(Entity& e) {
  Node& cls = NodeOf(e);
  if (e.runnable) {
    if (cls.policy == IntraClassPolicy::kSurplus) {
      cls.members.Remove(&e);
    } else {
      cls.rr_members.erase(&e);
    }
    PropagateRunnable(cls, -1);
    PropagateEligible(cls, -1);
    RecomputeShares();
  }
  thread_class_.erase(e.tid);
}

void HierarchicalSfs::OnBlocked(Entity& e) {
  Node& cls = NodeOf(e);
  if (cls.policy == IntraClassPolicy::kSurplus) {
    cls.members.Remove(&e);
  } else {
    cls.rr_members.erase(&e);
  }
  cls.idle_vt = std::max(cls.idle_vt, e.finish_tag());
  PropagateRunnable(cls, -1);
  PropagateEligible(cls, -1);
  RecomputeShares();
}

void HierarchicalSfs::OnWoken(Entity& e) {
  Node& cls = NodeOf(e);
  e.start_tag() = std::max(e.finish_tag(), LevelVirtualTime(cls));
  if (cls.policy == IntraClassPolicy::kSurplus) {
    cls.members.Insert(&e);
  } else {
    cls.rr_members.push_back(&e);
  }
  PropagateRunnable(cls, +1);
  PropagateEligible(cls, +1);
  RecomputeShares();
}

void HierarchicalSfs::OnWeightChanged(Entity& e, Weight old_weight) {
  (void)e;
  (void)old_weight;
  RecomputeShares();
}

Entity* HierarchicalSfs::PickNextEntity(CpuId cpu) {
  (void)cpu;
  Node* n = &FindNode(kRootClass);
  if (n->eligible_leaves == 0) {
    return nullptr;
  }
  for (;;) {
    const double v = LevelVirtualTime(*n);
    Node* best_class = nullptr;
    Entity* best_member = nullptr;
    double best_surplus = 0.0;
    auto better = [&best_surplus, &best_class, &best_member](double surplus) {
      return (best_class == nullptr && best_member == nullptr) || surplus < best_surplus;
    };
    for (Node* child : n->children) {
      if (child->eligible_leaves == 0) {
        continue;
      }
      const double phi = n->share > 0.0 ? child->share / n->share : child->weight;
      const double surplus = phi * (child->start_tag - v);
      if (better(surplus)) {
        best_surplus = surplus;
        best_class = child;
        best_member = nullptr;
      }
    }
    if (n->policy == IntraClassPolicy::kRoundRobin) {
      // Class-specific policy: members take equal turns (FIFO order; OnCharge
      // rotates the member to the back).  A round-robin member competes against
      // child classes at surplus 0 - epsilon of nothing: compare with the best
      // class using surplus 0 (the member queue as a whole is at its turn).
      for (Entity* e : n->rr_members) {
        if (!e->running) {
          if (better(0.0)) {
            best_surplus = 0.0;
            best_class = nullptr;
            best_member = e;
          }
          break;
        }
      }
    } else {
      for (Entity* e = n->members.front(); e != nullptr; e = n->members.next(e)) {
        if (e->running) {
          continue;
        }
        const double surplus = e->phi() * (e->start_tag() - v);
        if (better(surplus)) {
          best_surplus = surplus;
          best_class = nullptr;
          best_member = e;
        }
      }
    }
    if (best_member != nullptr) {
      PropagateEligible(NodeOf(*best_member), -1);
      return best_member;
    }
    if (best_class == nullptr) {
      return nullptr;  // racing counters should not allow this
    }
    n = best_class;
  }
}

void HierarchicalSfs::OnCharge(Entity& e, Tick ran_for) {
  Node& cls = NodeOf(e);
  // Thread tags within its class.
  e.finish_tag() = e.start_tag() + arith_.WeightedService(ran_for, std::max(e.phi(), 1e-12));
  e.start_tag() = e.finish_tag();
  if (cls.policy == IntraClassPolicy::kRoundRobin) {
    // Rotate to the back of the member FIFO.
    cls.rr_members.erase(&e);
    cls.rr_members.push_back(&e);
  } else {
    // The start tag grew: restore the member queue's sorted order.
    cls.members.Remove(&e);
    cls.members.InsertFromBack(&e);
  }
  // Every ancestor class's tags at its own level.
  for (Node* n = &cls; n->parent != nullptr; n = n->parent) {
    const double phi =
        n->parent->share > 0.0 && n->share > 0.0 ? n->share / n->parent->share : n->weight;
    n->finish_tag = n->start_tag + arith_.WeightedService(ran_for, std::max(phi, 1e-12));
    n->start_tag = n->finish_tag;
  }
  PropagateService(cls, ran_for);
  PropagateEligible(cls, +1);
}

CpuId HierarchicalSfs::SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) {
  // Reference implementation: no wakeup preemption across the hierarchy (class
  // surpluses live on different scales per level; a principled cross-level
  // comparison is future work).  Wakeups wait for the next scheduling point.
  (void)woken;
  (void)elapsed;
  return kInvalidCpu;
}

}  // namespace sfs::sched

#include "src/sched/feedback.h"

#include <algorithm>
#include <cmath>

#include "src/common/assert.h"

namespace sfs::sched {

WeightController::WeightController(Scheduler& scheduler, ThreadId tid, const Params& params)
    : scheduler_(scheduler), tid_(tid), params_(params) {
  SFS_CHECK(params_.target_share > 0.0 && params_.target_share <= 1.0);
  SFS_CHECK(params_.gain > 0.0 && params_.gain <= 1.0);
  SFS_CHECK(params_.min_weight > 0.0 && params_.min_weight < params_.max_weight);
  SFS_CHECK(scheduler.Contains(tid));
  weight_ = scheduler.GetWeight(tid);
}

void WeightController::Observe(Tick service_delta, Tick window) {
  SFS_CHECK(window > 0);
  if (!scheduler_.Contains(tid_)) {
    return;
  }
  const double capacity =
      static_cast<double>(window) * static_cast<double>(scheduler_.num_cpus());
  last_share_ = static_cast<double>(service_delta) / capacity;

  // Smooth the observation (quantum granularity makes single windows noisy) and
  // clamp the per-step correction: near the 1/p saturation cap the share stops
  // responding to weight, and unbounded multiplicative steps would oscillate.
  ema_share_ = ema_share_ < 0.0 ? last_share_ : 0.5 * ema_share_ + 0.5 * last_share_;
  double correction;
  if (ema_share_ <= 0.0) {
    correction = 2.0;  // starved: ramp up decisively
  } else {
    correction =
        std::clamp(std::pow(params_.target_share / ema_share_, params_.gain), 0.5, 2.0);
  }
  weight_ = std::clamp(weight_ * correction, params_.min_weight, params_.max_weight);
  scheduler_.SetWeight(tid_, weight_);
}

}  // namespace sfs::sched

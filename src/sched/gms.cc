#include "src/sched/gms.h"

#include <algorithm>
#include <vector>

#include "src/common/assert.h"
#include "src/sched/readjust.h"

namespace sfs::sched {

GmsReference::GmsReference(int num_cpus) : num_cpus_(num_cpus) { SFS_CHECK(num_cpus >= 1); }

void GmsReference::AddThread(ThreadId tid, Weight weight, Tick now) {
  SFS_CHECK(weight > 0);
  AdvanceTo(now);
  auto [it, inserted] = members_.emplace(tid, Member{});
  SFS_CHECK(inserted);
  it->second.weight = weight;
  it->second.runnable = true;
  rates_dirty_ = true;
}

void GmsReference::RemoveThread(ThreadId tid, Tick now) {
  AdvanceTo(now);
  Member& m = Find(tid);
  SFS_CHECK(!m.departed);
  m.departed = true;
  m.runnable = false;
  m.rate = 0.0;
  rates_dirty_ = true;
}

void GmsReference::Block(ThreadId tid, Tick now) {
  AdvanceTo(now);
  Member& m = Find(tid);
  SFS_CHECK(m.runnable);
  m.runnable = false;
  m.rate = 0.0;
  rates_dirty_ = true;
}

void GmsReference::Wakeup(ThreadId tid, Tick now) {
  AdvanceTo(now);
  Member& m = Find(tid);
  SFS_CHECK(!m.runnable && !m.departed);
  m.runnable = true;
  rates_dirty_ = true;
}

void GmsReference::SetWeight(ThreadId tid, Weight weight, Tick now) {
  SFS_CHECK(weight > 0);
  AdvanceTo(now);
  Find(tid).weight = weight;
  rates_dirty_ = true;
}

void GmsReference::AdvanceTo(Tick now) {
  SFS_CHECK(now >= last_advance_);
  const double dt = static_cast<double>(now - last_advance_);
  if (dt > 0) {
    // Rates dirtied by the event batch at last_advance_ apply from that
    // instant on; refresh them before integrating over the interval.
    EnsureRates();
    for (auto& [tid, m] : members_) {
      m.service += m.rate * dt;
    }
  }
  last_advance_ = now;
}

double GmsReference::Service(ThreadId tid) const { return Find(tid).service; }

double GmsReference::Rate(ThreadId tid) const {
  EnsureRates();
  return Find(tid).rate;
}

double GmsReference::Phi(ThreadId tid) const {
  EnsureRates();
  return Find(tid).phi;
}

GmsReference::Member& GmsReference::Find(ThreadId tid) {
  auto it = members_.find(tid);
  SFS_CHECK(it != members_.end());
  return it->second;
}

const GmsReference::Member& GmsReference::Find(ThreadId tid) const {
  auto it = members_.find(tid);
  SFS_CHECK(it != members_.end());
  return it->second;
}

void GmsReference::EnsureRates() const {
  if (!rates_dirty_) {
    return;
  }
  rates_dirty_ = false;
  // Collect the runnable set sorted by descending weight (stable on tid so that
  // the readjusted assignment is deterministic).
  std::vector<std::pair<ThreadId, Member*>> runnable;
  runnable.reserve(members_.size());
  for (auto& [tid, m] : members_) {
    if (m.runnable) {
      runnable.emplace_back(tid, &m);
    }
  }
  if (runnable.empty()) {
    return;
  }
  std::sort(runnable.begin(), runnable.end(), [](const auto& a, const auto& b) {
    if (a.second->weight != b.second->weight) {
      return a.second->weight > b.second->weight;
    }
    return a.first < b.first;
  });

  std::vector<double> weights;
  weights.reserve(runnable.size());
  for (const auto& [tid, m] : runnable) {
    weights.push_back(m->weight);
  }
  const std::vector<double> phi = ReadjustVector(weights, num_cpus_);

  double phi_sum = 0.0;
  for (double f : phi) {
    phi_sum += f;
  }
  SFS_CHECK(phi_sum > 0);
  for (std::size_t i = 0; i < runnable.size(); ++i) {
    Member& m = *runnable[i].second;
    m.phi = phi[i];
    m.rate = std::min(1.0, static_cast<double>(num_cpus_) * phi[i] / phi_sum);
  }
}

}  // namespace sfs::sched

// Lottery scheduling (Waldspurger & Weihl, OSDI '94) — the randomized
// proportional-share baseline the paper cites [30].
//
// Each runnable thread holds tickets proportional to its weight; every dispatch
// draws a winner uniformly over the eligible tickets.  Expected allocation is
// proportional with no per-thread state, which gives it two interesting
// contrasts with the deterministic schedulers here:
//
//   * it is memoryless, so the Example 1 arrival cannot be starved (there is no
//     tag debt to pay off) — but it also cannot *owe* anything, so its
//     short-horizon allocation error is O(sqrt(t)) rather than O(1) quanta;
//   * infeasible weights are implicitly capped by the one-CPU-per-thread rule
//     on the winning draw, like any work-conserving scheduler on a static mix.
//
// The RNG is seeded explicitly, so runs are deterministic.

#ifndef SFS_SCHED_LOTTERY_H_
#define SFS_SCHED_LOTTERY_H_

#include "src/common/intrusive_list.h"
#include "src/common/rng.h"
#include "src/sched/scheduler.h"

namespace sfs::sched {

class Lottery : public Scheduler {
 public:
  explicit Lottery(const SchedConfig& config, std::uint64_t seed = 42);
  ~Lottery() override;

  std::string_view name() const override { return "lottery"; }

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;

 private:
  common::IntrusiveList<Entity, &Entity::by_rq> runnable_;
  common::Rng rng_;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_LOTTERY_H_

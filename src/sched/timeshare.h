// Linux 2.2-style time-sharing scheduler — the paper's second baseline.
//
// Models the stock scheduler the paper compares against in Figures 6(b), 6(c), 7
// and Table 1: counter-driven epochs with a goodness() dispatch function.
//
//   * every thread has a static priority (default DEF_PRIORITY = 20 timer ticks)
//     and a counter holding its remaining timeslice in ticks;
//   * dispatch picks the runnable thread with the highest goodness =
//     counter + priority (+ a small bonus for processor affinity), 0 if the
//     counter is exhausted;
//   * when every runnable thread has exhausted its counter a new epoch begins:
//     for ALL threads counter = counter/2 + priority — blocked (I/O-bound) threads
//     therefore carry up to priority extra ticks into the next epoch, which is how
//     the time-sharing scheduler favours interactive applications (Figure 6(c));
//   * weights are ignored — there is no notion of proportional share, which is
//     exactly why isolation fails in Figure 6(b).

#ifndef SFS_SCHED_TIMESHARE_H_
#define SFS_SCHED_TIMESHARE_H_

#include "src/common/intrusive_list.h"
#include "src/sched/scheduler.h"

namespace sfs::sched {

class Timeshare : public Scheduler {
 public:
  // Counter/priority unit is the timer tick (kLinuxTimerTick = 10 ms).
  static constexpr int kDefaultPriorityTicks = 20;
  static constexpr int kAffinityBonus = 1;

  explicit Timeshare(const SchedConfig& config);
  ~Timeshare() override;

  std::string_view name() const override { return "timeshare"; }

  // Remaining timeslice drives the quantum: a dispatched thread runs until its
  // counter is exhausted (or it blocks), like the kernel's tick-driven slice.
  Tick QuantumFor(ThreadId tid) override;

  CpuId SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) override;

  // Adjusts a thread's static priority (the nice/setpriority analogue).
  void SetPriorityTicks(ThreadId tid, int ticks);

  std::int64_t CounterTicks(ThreadId tid) const { return FindEntity(tid).counter; }
  std::int64_t epochs() const { return epochs_; }

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;

 private:
  std::int64_t Goodness(const Entity& e, CpuId cpu) const;
  void RecalculateEpoch();

  common::IntrusiveList<Entity, &Entity::by_rq> run_queue_;
  std::int64_t epochs_ = 0;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_TIMESHARE_H_

// Hierarchical Surplus Fair Scheduling — the paper's first future-work item.
//
// Section 5: "GPS-based schedulers such as SFQ can perform hierarchical
// scheduling.  This allows threads to be aggregated into classes and CPU shares
// to be allocated on a per-class basis. ... SFS is a single-level scheduler and
// lacks such features.  The design of hierarchical schedulers for multiprocessor
// environments remains an open research problem."
//
// This extension applies the surplus idea recursively over a class tree:
//
//   * every internal node (class) carries a weight, start/finish tags and a
//     surplus relative to its siblings, exactly like a thread in flat SFS;
//   * dispatch walks the tree from the root, at each level choosing the
//     least-surplus child with an eligible (runnable, not running) descendant,
//     until it reaches a leaf thread;
//   * charging a thread advances its own tags within its class and every
//     ancestor's tags at its level;
//   * the weight readjustment algorithm generalizes per level: a child that is
//     a class with L runnable leaf threads can consume at most min(p, L)
//     processors, so its share of the node's bandwidth is capped at
//     min(p, L)/p (for a leaf thread L = 1, recovering Equation 1).  The caps
//     are applied by weighted water-filling: violators are pinned at their cap
//     and the remainder is redistributed proportionally.
//
// With every thread in the root class this reduces exactly to flat SFS, which
// the test suite verifies.  This is a clarity-first reference implementation:
// per-decision work is linear in the active classes and the threads of the
// chosen class (the flat scheduler's three-queue machinery could be replicated
// per class if needed).

#ifndef SFS_SCHED_HSFS_H_
#define SFS_SCHED_HSFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/intrusive_list.h"
#include "src/sched/run_queue.h"
#include "src/sched/scheduler.h"
#include "src/sched/tag_arith.h"

namespace sfs::sched {

// Scheduling-class identifier; the root class always exists.
using ClassId = std::int32_t;
inline constexpr ClassId kRootClass = 0;
inline constexpr ClassId kInvalidClass = -1;

// How a class distributes its bandwidth among its *member threads* (Section 5:
// "such schedulers support class-specific schedulers, in which the bandwidth
// allocated to a class is distributed among individual threads using a
// class-specific scheduling policy").  Child classes are always chosen by
// surplus.
enum class IntraClassPolicy {
  kSurplus,     // weighted surplus scheduling (default; flat-SFS semantics)
  kRoundRobin,  // equal turns regardless of member weights
};

// Key for a surplus-policy class's member queue: ascending start tag with the
// library-wide thread-id tie-break, so the class-level virtual time is the
// front element and iteration order is a deterministic total order.
struct HsfsByStartAsc {
  static std::pair<double, ThreadId> Key(const Entity& e) { return {e.start_tag(), e.tid}; }
};

class HierarchicalSfs : public Scheduler {
 public:
  explicit HierarchicalSfs(const SchedConfig& config);
  ~HierarchicalSfs() override;

  std::string_view name() const override { return "H-SFS"; }

  // --- tree construction ------------------------------------------------------

  // Creates a scheduling class under `parent` with relative weight `weight`
  // among its siblings.  Classes may nest arbitrarily deep.
  void CreateClass(ClassId id, ClassId parent, Weight weight,
                   IntraClassPolicy policy = IntraClassPolicy::kSurplus);

  // Changes a class's weight on the fly.
  void SetClassWeight(ClassId id, Weight weight);

  // Adds a thread into `cls` (instead of the root class).  `weight` is the
  // thread's share relative to its class siblings.
  void AddThreadToClass(ThreadId tid, Weight weight, ClassId cls);

  // Pre-registers the class a thread will join when it is later admitted via
  // plain AddThread (how the simulator adds tasks).  Unrouted threads join the
  // root class.
  void RouteThread(ThreadId tid, ClassId cls);

  // --- introspection ----------------------------------------------------------

  // Aggregate CPU service received by all threads ever admitted to the subtree
  // rooted at `cls`.
  Tick ClassService(ClassId cls) const;

  // Instantaneous share fraction (of total machine bandwidth) currently granted
  // to the class by the hierarchical readjustment; 0 if no runnable leaves.
  double ClassShare(ClassId cls) const;

  CpuId SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) override;

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;

 private:
  struct Node {
    ClassId id = kInvalidClass;
    Node* parent = nullptr;
    std::vector<Node*> children;

    Weight weight = 1.0;
    IntraClassPolicy policy = IntraClassPolicy::kSurplus;
    // Share of the whole machine, from the per-level readjustment.
    double share = 0.0;

    double start_tag = 0.0;
    double finish_tag = 0.0;

    int runnable_leaves = 0;  // runnable leaf threads in the subtree
    int eligible_leaves = 0;  // runnable and not currently running
    Tick total_service = 0;   // aggregate leaf service (survives departures)
    double idle_vt = 0.0;     // level virtual time frozen while nothing runnable

    // Runnable threads directly attached to this class.  Surplus-policy
    // classes keep them sorted by (start tag, tid) on the backend-selectable
    // run queue — the level virtual time is then the front element.
    // Round-robin classes need rotation order, which no key expresses, so they
    // keep the FIFO list; exactly one of the two is populated, per `policy`.
    RunQueue<Entity, &Entity::by_rq, HsfsByStartAsc> members;
    common::IntrusiveList<Entity, &Entity::by_rq> rr_members;
  };

  Node& FindNode(ClassId id);
  const Node& FindNode(ClassId id) const;
  Node& NodeOf(const Entity& e);

  // Minimum start tag over the active participants at node `n`'s level (child
  // classes with runnable leaves and runnable member threads); falls back to the
  // node's idle marker.  `exclude` skips one child class (used while it is being
  // re-activated).
  double LevelVirtualTime(const Node& n, const Node* exclude = nullptr) const;

  // Re-derives every class's machine share: top-down weighted water-filling
  // with per-child capacity caps min(p, runnable_leaves)/p.
  void RecomputeShares();

  // Adjusts runnable/eligible counters on the path to the root.
  void PropagateRunnable(Node& leaf_class, int delta);
  void PropagateEligible(Node& leaf_class, int delta);
  void PropagateService(Node& leaf_class, Tick ran);

  // Called when a class transitions to/from having runnable leaves: applies the
  // SFS arrival/wakeup tag rules at the class level.
  void ActivateClassPath(Node& n);

  TagArith arith_;
  // Ordered: the destructor and any future reporting iterate the class set
  // (the determinism lint forbids unordered iteration in sched/).  The two
  // per-thread maps below are keyed-lookup-only and may stay unordered.
  std::map<ClassId, std::unique_ptr<Node>> nodes_;
  std::unordered_map<ThreadId, ClassId> routes_;  // pre-admission class choice
  std::unordered_map<ThreadId, ClassId> thread_class_;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_HSFS_H_

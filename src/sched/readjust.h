// The optimal weight readjustment algorithm (Section 2.1, Figure 2).
//
// A weight assignment is *feasible* iff no thread requests more than the bandwidth
// of one processor:  w_i / sum_j w_j <= 1/p  (Equation 1).  The readjustment
// algorithm maps an infeasible assignment to the closest feasible one:
//
//   * threads that satisfy the constraint keep their weight unchanged;
//   * each violating thread gets the smallest weight that caps its share at exactly
//     1/p, found by recursing on the remaining threads and remaining processors.
//
// All violating threads end up with the *same* instantaneous weight
// T / (p - k), where k is the number of violators and T the weight sum of the
// non-violators — each then holds share exactly 1/p.  At most p-1 threads can
// violate the constraint (shares sum to 1), so the scan is O(p) given the
// weight-sorted queue the scheduler already maintains (Section 3.1).
//
// Special case: when at most p threads are runnable (t <= p), every thread can be
// given a full processor, so all instantaneous weights are set equal (share capped
// at 1/p each).  This is what makes a 1:10 assignment on two processors behave as
// 1:1 (Figure 4(b), interval [0, 15s)).
//
// Two implementations are provided and cross-checked by property tests:
//   * `ReadjustVector` — the vector form used by the GMS fluid baseline: a
//     single O(n) pass (one running suffix sum) equivalent to the Figure 2
//     recursion, whose verbatim transcription lives on as the parity oracle in
//     tests/sched/readjust_test.cc (Figure2Reference);
//   * `ReadjustQueue` — the production form used by the schedulers: iterative,
//     early-exiting, operating in place on the weight-sorted entity queue.

#ifndef SFS_SCHED_READJUST_H_
#define SFS_SCHED_READJUST_H_

#include <utility>
#include <vector>

#include "src/sched/entity.h"
#include "src/sched/run_queue.h"

namespace sfs::sched {

// Key for the weight-sorted queue: descending by requested weight.  The thread id
// tie-break makes every queue ordering in the library a deterministic total order
// (the paper's "ties are broken arbitrarily" made reproducible).
struct ByWeightDesc {
  static std::pair<double, ThreadId> Key(const Entity& e) { return {-e.weight(), e.tid}; }
};
using WeightQueue = RunQueue<Entity, &Entity::by_weight, ByWeightDesc>;

// Single-pass O(n) equivalent of the Figure 2 recursion.  `weights` must be
// sorted in descending order; returns the instantaneous weights in the same
// order.  `num_cpus` is p >= 1.  Summation order differs from the literal
// recursion (one running suffix vs per-index rescans), so results are
// bit-identical for exactly-summing (e.g. integer-valued) weights and equal
// to final-ulp rounding otherwise.
std::vector<double> ReadjustVector(const std::vector<double>& weights, int num_cpus);

// Persistent bookkeeping that makes each readjustment pass O(p): the set of
// currently capped entities (at most p), so former caps can be restored without
// scanning the whole queue.  Owned by the scheduler; `capped` must list exactly
// the runnable entities whose Entity::capped flag is set.
struct ReadjustState {
  std::vector<Entity*> capped;
  std::vector<Entity*> scratch;  // reused buffer for the previous cap set

  // Forgets an entity leaving the runnable set (block/departure).
  void Forget(Entity& e);
};

// Production form: recomputes Entity::phi for the threads on `queue` (the
// runnable set, descending by weight).  `total_weight` must equal the sum of the
// requested weights of the queued threads (the caller maintains it incrementally).
// Returns true iff any phi changed.  Examines O(p) queue entries: the candidate
// prefix plus the previous cap set.
bool ReadjustQueue(WeightQueue& queue, double total_weight, int num_cpus,
                   ReadjustState& state);

// True iff the assignment on `queue` is feasible as-is (Equation 1 holds for the
// largest weight, which implies it for all others).
bool IsFeasible(const WeightQueue& queue, double total_weight, int num_cpus);

}  // namespace sfs::sched

#endif  // SFS_SCHED_READJUST_H_

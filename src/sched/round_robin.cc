#include "src/sched/round_robin.h"

namespace sfs::sched {

RoundRobin::RoundRobin(const SchedConfig& config) : Scheduler(config) {}

RoundRobin::~RoundRobin() { fifo_.clear(); }

void RoundRobin::OnAdmit(Entity& e) { fifo_.push_back(&e); }

void RoundRobin::OnRemove(Entity& e) {
  if (fifo_.contains(&e)) {
    fifo_.erase(&e);
  }
}

void RoundRobin::OnBlocked(Entity& e) {
  if (fifo_.contains(&e)) {
    fifo_.erase(&e);
  }
}

void RoundRobin::OnWoken(Entity& e) { fifo_.push_back(&e); }

void RoundRobin::OnWeightChanged(Entity& e, Weight old_weight) {
  (void)e;
  (void)old_weight;
}

Entity* RoundRobin::PickNextEntity(CpuId cpu) {
  (void)cpu;
  Entity* e = fifo_.pop_front();
  return e;
}

void RoundRobin::OnCharge(Entity& e, Tick ran_for) {
  (void)ran_for;
  if (e.runnable) {
    fifo_.push_back(&e);
  }
}

}  // namespace sfs::sched

// Stride scheduling (Waldspurger & Weihl, 1995) baseline.
//
// Deterministic proportional-share scheduling: each thread has a pass value that
// advances by stride = stride1 / phi_i per unit of service; the scheduler always
// runs the thread with the minimum pass.  The paper cites stride scheduling as
// another GPS instantiation that inherits the infeasible-weights pathology on
// multiprocessors; combined with the readjustment algorithm (ablation A4) its
// unfairness shrinks just as SFQ's does.

#ifndef SFS_SCHED_STRIDE_H_
#define SFS_SCHED_STRIDE_H_

#include <utility>

#include "src/sched/gps_base.h"
#include "src/sched/run_queue.h"

namespace sfs::sched {

struct ByPassAsc {
  static std::pair<double, ThreadId> Key(const Entity& e) { return {e.pass, e.tid}; }
};
using PassQueue = RunQueue<Entity, &Entity::by_rq, ByPassAsc>;

class Stride : public GpsSchedulerBase {
 public:
  explicit Stride(const SchedConfig& config);
  ~Stride() override;

  std::string_view name() const override {
    return config().use_readjustment ? "stride+readjust" : "stride";
  }

  CpuId SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) override;

  // Global pass (minimum pass over runnable threads).
  double GlobalPass() const;
  double Pass(ThreadId tid) const { return FindEntity(tid).pass; }

  // Migration timeline (sched::Sharded): tags live on the pass axis.
  double LocalVirtualTime() const override { return GlobalPass(); }
  double EntityTag(const Entity& e) const override { return e.pass; }

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;
  void OnAttach(Entity& e) override;

 private:
  PassQueue queue_;
  double idle_pass_ = 0.0;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_STRIDE_H_

#include "src/sched/lottery.h"

namespace sfs::sched {

Lottery::Lottery(const SchedConfig& config, std::uint64_t seed)
    : Scheduler(config), rng_(seed) {}

Lottery::~Lottery() { runnable_.clear(); }

void Lottery::OnAdmit(Entity& e) { runnable_.push_back(&e); }

void Lottery::OnRemove(Entity& e) {
  if (runnable_.contains(&e)) {
    runnable_.erase(&e);
  }
}

void Lottery::OnBlocked(Entity& e) { runnable_.erase(&e); }

void Lottery::OnWoken(Entity& e) { runnable_.push_back(&e); }

void Lottery::OnWeightChanged(Entity& e, Weight old_weight) {
  (void)e;
  (void)old_weight;  // ticket counts are read from e.weight() at draw time
}

Entity* Lottery::PickNextEntity(CpuId cpu) {
  (void)cpu;
  // Draw over the tickets of eligible (runnable, not running) threads.
  double total = 0.0;
  for (Entity* e : runnable_) {
    if (!e->running) {
      total += e->weight();
    }
  }
  if (total <= 0.0) {
    return nullptr;
  }
  const double draw = rng_.UniformDouble(0.0, total);
  double acc = 0.0;
  Entity* last = nullptr;
  for (Entity* e : runnable_) {
    if (e->running) {
      continue;
    }
    acc += e->weight();
    last = e;
    if (draw < acc) {
      return e;
    }
  }
  return last;  // floating-point edge: the draw landed on the boundary
}

void Lottery::OnCharge(Entity& e, Tick ran_for) {
  (void)e;
  (void)ran_for;  // memoryless: no per-thread scheduling state to update
}

}  // namespace sfs::sched

// Pluggable run-queue backend for the GPS scheduler family.
//
// Section 3.2 identifies the sorted-list run queues as the scheduler's
// constant-factor bottleneck and notes the insert position could be found in
// O(log t).  RunQueue keeps the paper-faithful common::SortedList as the
// default backend and offers common::IndexedSkipList as the O(log t)
// alternative, selected per scheduler via SchedConfig::queue_backend.
//
// Determinism contract (shared by both backends, relied on by every scheduler
// and the cross-backend differential tests):
//   * ascending key order with FIFO among equal keys, for Insert and
//     InsertFromBack alike;
//   * every scheduler key ends in a ThreadId tie-break, so queue order — and
//     therefore every dispatch decision — is a total order independent of the
//     backend;
//   * Remove/Reposition accept elements whose key was already mutated (the
//     tag-update-then-reposition pattern of OnCharge).
//
// The backend must be selected while the queue is empty; schedulers do so in
// their constructors.

#ifndef SFS_SCHED_RUN_QUEUE_H_
#define SFS_SCHED_RUN_QUEUE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/assert.h"
#include "src/common/skip_list.h"
#include "src/common/sorted_list.h"
#include "src/sched/types.h"

namespace sfs::sched {

// KeyFn: struct with `static KeyType Key(const T&)`; KeyType must be totally
// ordered (in practice a std::pair ending in the thread id).
template <typename T, common::ListHook T::*Hook, typename KeyFn>
class RunQueue {
 public:
  RunQueue() = default;

  // Selects the backend; only valid while the queue is empty.  The skip list
  // is only materialized when selected, so default (sorted-list) queues pay
  // nothing for the alternative.
  void SetBackend(QueueBackend backend) {
    SFS_CHECK(empty());
    backend_ = backend;
    if (sorted()) {
      skip_.reset();
    } else if (skip_ == nullptr) {
      skip_ = std::make_unique<common::IndexedSkipList<T, Hook, KeyFn>>();
    }
  }
  QueueBackend backend() const { return backend_; }

  bool empty() const { return sorted() ? list_.empty() : skip_->empty(); }
  std::size_t size() const { return sorted() ? list_.size() : skip_->size(); }

  T* front() { return sorted() ? list_.front() : skip_->front(); }
  const T* front() const { return sorted() ? list_.front() : skip_->front(); }
  T* back() { return sorted() ? list_.back() : skip_->back(); }
  const T* back() const { return sorted() ? list_.back() : skip_->back(); }

  bool contains(const T* elem) const {
    return sorted() ? list_.contains(elem) : skip_->contains(elem);
  }

  T* next(T* elem) { return sorted() ? list_.next(elem) : skip_->next(elem); }
  T* prev(T* elem) { return sorted() ? list_.prev(elem) : skip_->prev(elem); }
  const T* next(const T* elem) const { return sorted() ? list_.next(elem) : skip_->next(elem); }
  const T* prev(const T* elem) const { return sorted() ? list_.prev(elem) : skip_->prev(elem); }

  // Inserts keeping ascending key order; equal keys land after existing ones.
  void Insert(T* elem) {
    if (sorted()) {
      list_.Insert(elem);
    } else {
      skip_->Insert(elem);
    }
  }

  // Hint-from-the-back insert: same resulting position as Insert (FIFO among
  // ties), cheaper on the sorted list when the key is likely large.  The skip
  // list needs no hint.
  void InsertFromBack(T* elem) {
    if (sorted()) {
      list_.InsertFromBack(elem);
    } else {
      skip_->Insert(elem);
    }
  }

  void Remove(T* elem) {
    if (sorted()) {
      list_.Remove(elem);
    } else {
      skip_->Remove(elem);
    }
  }

  T* PopFront() { return sorted() ? list_.PopFront() : skip_->PopFront(); }

  void Clear() {
    if (sorted()) {
      list_.Clear();
    } else {
      skip_->Clear();
    }
  }

  // Re-establishes sorted order after arbitrary key changes; returns how many
  // elements were repositioned.  The sorted list insertion-sorts in place
  // (near-linear on almost-sorted input); the skip list keeps the greedy
  // ascending run where it stands (reusing those nodes) and re-inserts only
  // the elements that break it — also near-linear when almost sorted.  Both
  // yield the identical ascending FIFO-among-ties order of a stable sort, and
  // the identical count: an element is repositioned exactly when its key
  // dropped below the running maximum of the elements before it, so every
  // equal-key run that survives keeps its relative order and re-inserts file
  // after their surviving ties.
  std::size_t Resort() {
    if (sorted()) {
      return list_.Resort();
    }
    std::vector<T*> out;
    const T* kept = nullptr;
    T* cur = skip_->front();
    while (cur != nullptr) {
      T* following = skip_->next(cur);
      if (kept != nullptr && KeyFn::Key(*cur) < KeyFn::Key(*kept)) {
        skip_->Remove(cur);  // locates by stored key; structure stays consistent
        out.push_back(cur);
      } else {
        kept = cur;
      }
      cur = following;
    }
    skip_->SyncKeys();
    for (T* elem : out) {
      skip_->Insert(elem);
    }
    return out.size();
  }

  // Repositions a single element whose key changed.
  void Reposition(T* elem) {
    Remove(elem);
    Insert(elem);
  }

  // Declares that keys were mutated in place *without* changing the relative
  // order of the queued elements (uniform tag rebases; an incremental refresh
  // that already removed the out-of-order elements).  The sorted list always
  // compares current keys, so this is free there; the skip list re-snapshots
  // the keys its towers were filed under.
  void SyncKeys() {
    if (!sorted()) {
      skip_->SyncKeys();
    }
  }

  // Visits the first / last `k` elements in key order; returns the count.
  template <typename Fn>
  std::size_t ForFirstK(std::size_t k, Fn&& fn) {
    return sorted() ? list_.ForFirstK(k, fn) : skip_->ForFirstK(k, fn);
  }

  template <typename Fn>
  std::size_t ForLastK(std::size_t k, Fn&& fn) {
    return sorted() ? list_.ForLastK(k, fn) : skip_->ForLastK(k, fn);
  }

  // Debug helper: true iff current keys are in non-decreasing order.
  bool IsSorted() { return sorted() ? list_.IsSorted() : skip_->IsSorted(); }

 private:
  bool sorted() const { return backend_ == QueueBackend::kSortedList; }

  QueueBackend backend_ = QueueBackend::kSortedList;
  common::SortedList<T, Hook, KeyFn> list_;
  // Materialized only for the skip-list backend (SetBackend).
  std::unique_ptr<common::IndexedSkipList<T, Hook, KeyFn>> skip_;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_RUN_QUEUE_H_

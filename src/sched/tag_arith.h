// Tag arithmetic policy: exact or kernel-faithful fixed-point (Section 3.2).
//
// The only floating-point operation on the scheduling fast path is the weighted
// service increment q / phi used to advance start/finish tags.  The kernel
// implementation scales it by 10^n and computes in integers; this policy
// reproduces that quantization when configured with a non-negative digit count,
// so the accuracy-vs-scaling-factor trade-off can be measured (ablation A1).

#ifndef SFS_SCHED_TAG_ARITH_H_
#define SFS_SCHED_TAG_ARITH_H_

#include <cmath>
#include <cstdint>

#include "src/common/assert.h"
#include "src/common/fixed_point.h"
#include "src/common/time.h"

namespace sfs::sched {

class TagArith {
 public:
  // digits < 0: exact double arithmetic.  digits in [0, 8]: emulate the kernel's
  // 10^digits scaling factor.
  explicit TagArith(int digits) : digits_(digits), scale_(digits >= 0 ? common::Pow10(digits) : 1) {
    SFS_CHECK(digits <= 8);
  }

  bool fixed_point() const { return digits_ >= 0; }
  std::int64_t scale() const { return scale_; }

  // Weighted service increment q / phi.  In fixed-point mode the result is a
  // multiple of 10^-digits, computed exactly as the kernel would:
  //   F_raw = S_raw + (q * 10^n) / phi_raw.
  double WeightedService(Tick q, double phi) const {
    SFS_DCHECK(phi > 0);
    if (digits_ < 0) {
      return static_cast<double>(q) / phi;
    }
    std::int64_t phi_raw = std::llround(phi * static_cast<double>(scale_));
    if (phi_raw < 1) {
      phi_raw = 1;  // weights below the representable minimum saturate
    }
    // increment_raw = q * scale^2 / phi_raw; 128-bit intermediate in ScaledDiv.
    const std::int64_t raw = common::ScaledDiv(q * scale_, scale_, phi_raw);
    return static_cast<double>(raw) / static_cast<double>(scale_);
  }

 private:
  int digits_;
  std::int64_t scale_;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_TAG_ARITH_H_

#include "src/sched/scheduler.h"

#include "src/common/assert.h"

namespace sfs::sched {

Scheduler::Scheduler(const SchedConfig& config) : config_(config) {
  SFS_CHECK(config_.num_cpus >= 1);
  SFS_CHECK(config_.quantum > 0);
  running_.assign(static_cast<std::size_t>(config_.num_cpus), kInvalidThread);
}

Scheduler::~Scheduler() = default;

Scheduler::DispatchGuard Scheduler::LockDispatch(CpuId cpu) {
  return DispatchGuard(DispatchMutex(cpu));
}

Scheduler::DispatchGuard Scheduler::TryLockDispatch(CpuId cpu) {
  return DispatchGuard(DispatchMutex(cpu), std::try_to_lock);
}

Scheduler::LifecycleGuard Scheduler::LockLifecycle() {
  // Every distinct dispatch mutex in ascending CPU-id order (flat schedulers
  // return the same mutex for every CPU — lock it once, not num_cpus times).
  LifecycleGuard guard;
  guard.reserve(static_cast<std::size_t>(num_cpus()));
  for (CpuId cpu = 0; cpu < num_cpus(); ++cpu) {
    common::Mutex& mu = DispatchMutex(cpu);
    bool held = false;
    for (const auto& lock : guard) {
      if (lock.mutex() == &mu) {
        held = true;
        break;
      }
    }
    if (!held) {
      guard.emplace_back(mu);
    }
  }
  return guard;
}

common::Mutex& Scheduler::DispatchMutex(CpuId cpu) {
  (void)cpu;
  return dispatch_mu_;
}

void Scheduler::StoreEntity(std::unique_ptr<Entity> entity) {
  Entity& e = *entity;
  SFS_CHECK(e.tid >= 0);
  if (static_cast<std::size_t>(e.tid) >= by_tid_.size()) {
    by_tid_.resize(static_cast<std::size_t>(e.tid) + 1);
  }
  SFS_CHECK(by_tid_[static_cast<std::size_t>(e.tid)] == nullptr);  // duplicate tid
  e.live_index = static_cast<std::int32_t>(live_.size());
  live_.push_back(&e);
  by_tid_[static_cast<std::size_t>(e.tid)] = std::move(entity);
}

std::unique_ptr<Entity> Scheduler::ReleaseEntity(Entity& e) {
  SFS_CHECK(e.live_index >= 0 &&
            static_cast<std::size_t>(e.live_index) < live_.size() &&
            live_[static_cast<std::size_t>(e.live_index)] == &e);
  const auto row = static_cast<std::size_t>(e.live_index);
  // The hot row travels inside the entity; only the live list needs the
  // swap-and-pop.
  Entity* last = live_.back();
  live_[row] = last;
  last->live_index = e.live_index;
  live_.pop_back();
  e.live_index = -1;
  std::unique_ptr<Entity> entity = std::move(by_tid_[static_cast<std::size_t>(e.tid)]);
  return entity;
}

void Scheduler::AddThread(ThreadId tid, Weight weight) {
  AddThread(tid, weight, kInvalidCpu);
}

void Scheduler::AddThread(ThreadId tid, Weight weight, CpuId home) {
  SFS_CHECK(tid != kInvalidThread);
  SFS_CHECK(weight > 0);
  auto entity = std::make_unique<Entity>();
  entity->tid = tid;
  entity->weight() = weight;
  entity->phi() = weight;
  entity->runnable = true;
  // Placement hint: partition-aware policies admit to this shard instead of
  // their balanced choice (OnAdmit decides); flat policies never read it.
  if (home >= 0 && home < num_cpus()) {
    entity->partition = home;
  }
  Entity& e = *entity;
  StoreEntity(std::move(entity));
  runnable_count_.fetch_add(1, std::memory_order_relaxed);
  OnAdmit(e);
}

void Scheduler::RemoveThread(ThreadId tid) {
  Entity& e = FindEntity(tid);
  SFS_CHECK(!e.running);
  if (e.runnable) {
    runnable_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  OnRemove(e);
  ReleaseEntity(e);  // drops the entity
}

void Scheduler::Block(ThreadId tid) {
  Entity& e = FindEntity(tid);
  SFS_CHECK(e.runnable);
  SFS_CHECK(!e.running);
  e.runnable = false;
  runnable_count_.fetch_sub(1, std::memory_order_relaxed);
  OnBlocked(e);
}

void Scheduler::Wakeup(ThreadId tid) {
  Entity& e = FindEntity(tid);
  SFS_CHECK(!e.runnable);
  e.runnable = true;
  runnable_count_.fetch_add(1, std::memory_order_relaxed);
  OnWoken(e);
}

void Scheduler::SetWeight(ThreadId tid, Weight weight) {
  SFS_CHECK(weight > 0);
  Entity& e = FindEntity(tid);
  const Weight old_weight = e.weight();
  e.weight() = weight;
  OnWeightChanged(e, old_weight);
}

ThreadId Scheduler::PickNext(CpuId cpu) {
  SFS_CHECK(cpu >= 0 && cpu < num_cpus());
  SFS_CHECK(running_[static_cast<std::size_t>(cpu)] == kInvalidThread);
  Entity* e = PickNextEntity(cpu);
  if (e == nullptr) {
    return kInvalidThread;
  }
  SFS_DCHECK(e->runnable && !e->running);
  e->running = true;
  e->cpu = cpu;
  running_[static_cast<std::size_t>(cpu)] = e->tid;
  return e->tid;
}

void Scheduler::Charge(ThreadId tid, Tick ran_for) {
  SFS_CHECK(ran_for >= 0);
  Entity& e = FindEntity(tid);
  SFS_CHECK(e.running);
  const CpuId cpu = e.cpu;
  e.running = false;
  e.last_cpu = cpu;
  e.cpu = kInvalidCpu;
  e.total_service += ran_for;
  running_[static_cast<std::size_t>(cpu)] = kInvalidThread;
  OnCharge(e, ran_for);
}

Tick Scheduler::QuantumFor(ThreadId tid) {
  (void)tid;
  return config_.quantum;
}

CpuId Scheduler::SuggestPreemption(ThreadId woken, const std::vector<Tick>& elapsed) {
  (void)woken;
  (void)elapsed;
  return kInvalidCpu;
}

std::unique_ptr<Entity> Scheduler::DetachEntity(ThreadId tid) {
  Entity& e = FindEntity(tid);
  SFS_CHECK(!e.running);
  if (e.runnable) {
    runnable_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  OnRemove(e);  // the policy dequeues it; all entity fields survive
  return ReleaseEntity(e);
}

void Scheduler::AttachEntity(std::unique_ptr<Entity> entity) {
  SFS_CHECK(entity != nullptr);
  Entity& e = *entity;
  SFS_CHECK(e.tid != kInvalidThread);
  SFS_CHECK(!e.running);
  StoreEntity(std::move(entity));
  if (e.runnable) {
    runnable_count_.fetch_add(1, std::memory_order_relaxed);
    OnAttach(e);
  }
  // A blocked entity needs no policy action until Wakeup.
}

Entity* Scheduler::PickMigrationCandidate(double max_weight, double* score) {
  Entity* best = nullptr;
  double best_score = 0.0;
  // Hoisted: LocalVirtualTime() can itself be a queue walk (WFQ/BVT), so
  // evaluating it per entity would make the scan quadratic.
  const double v = LocalVirtualTime();
  for (Entity* entity : live_) {
    Entity& e = *entity;
    if (!e.runnable || e.running) {
      continue;
    }
    if (max_weight > 0.0 && e.weight() >= max_weight) {
      continue;
    }
    const double entity_score = e.phi() * (EntityTag(e) - v);
    // Deterministic despite the unordered live list: total order on (score, -tid).
    if (best == nullptr || entity_score > best_score ||
        (entity_score == best_score && e.tid < best->tid)) {
      best = &e;
      best_score = entity_score;
    }
  }
  if (best != nullptr && score != nullptr) {
    *score = best_score;
  }
  return best;
}

bool Scheduler::Contains(ThreadId tid) const {
  return tid >= 0 && static_cast<std::size_t>(tid) < by_tid_.size() &&
         by_tid_[static_cast<std::size_t>(tid)] != nullptr;
}

bool Scheduler::IsRunnable(ThreadId tid) const { return FindEntity(tid).runnable; }

bool Scheduler::IsRunning(ThreadId tid) const { return FindEntity(tid).running; }

Weight Scheduler::GetWeight(ThreadId tid) const { return FindEntity(tid).weight(); }

Weight Scheduler::GetPhi(ThreadId tid) const { return FindEntity(tid).phi(); }

Tick Scheduler::TotalService(ThreadId tid) const { return FindEntity(tid).total_service; }

ThreadId Scheduler::RunningOn(CpuId cpu) const {
  SFS_CHECK(cpu >= 0 && cpu < num_cpus());
  return running_[static_cast<std::size_t>(cpu)];
}

Entity& Scheduler::FindEntity(ThreadId tid) {
  SFS_CHECK(tid >= 0 && static_cast<std::size_t>(tid) < by_tid_.size());
  Entity* e = by_tid_[static_cast<std::size_t>(tid)].get();
  SFS_CHECK(e != nullptr);
  return *e;
}

const Entity& Scheduler::FindEntity(ThreadId tid) const {
  SFS_CHECK(tid >= 0 && static_cast<std::size_t>(tid) < by_tid_.size());
  const Entity* e = by_tid_[static_cast<std::size_t>(tid)].get();
  SFS_CHECK(e != nullptr);
  return *e;
}

Entity* Scheduler::FindEntityOrNull(ThreadId tid) {
  if (tid < 0 || static_cast<std::size_t>(tid) >= by_tid_.size()) {
    return nullptr;
  }
  return by_tid_[static_cast<std::size_t>(tid)].get();
}

}  // namespace sfs::sched

// Plain round-robin scheduler — control baseline.
//
// Equal time slices in FIFO order, ignoring weights.  Used by tests as the
// simplest possible work-conserving policy and by benchmarks as a floor for
// scheduling overhead.

#ifndef SFS_SCHED_ROUND_ROBIN_H_
#define SFS_SCHED_ROUND_ROBIN_H_

#include "src/common/intrusive_list.h"
#include "src/sched/scheduler.h"

namespace sfs::sched {

class RoundRobin : public Scheduler {
 public:
  explicit RoundRobin(const SchedConfig& config);
  ~RoundRobin() override;

  std::string_view name() const override { return "round-robin"; }

 protected:
  void OnAdmit(Entity& e) override;
  void OnRemove(Entity& e) override;
  void OnBlocked(Entity& e) override;
  void OnWoken(Entity& e) override;
  void OnWeightChanged(Entity& e, Weight old_weight) override;
  Entity* PickNextEntity(CpuId cpu) override;
  void OnCharge(Entity& e, Tick ran_for) override;

 private:
  // FIFO of runnable, not-running threads; the running ones are unlinked.
  common::IntrusiveList<Entity, &Entity::by_rq> fifo_;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_ROUND_ROBIN_H_

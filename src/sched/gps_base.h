// Shared base for GPS-derived schedulers (SFS, SFQ, stride, WFQ, BVT).
//
// Maintains the weight-sorted runnable queue from Section 3.1 and invokes the
// weight readjustment algorithm at every point the paper requires: "every time the
// set of runnable threads changes (i.e., after each arrival, departure, blocking
// event or wakeup event), or if the user changes the weight of a thread."
//
// The readjustment can be disabled per SchedConfig::use_readjustment to reproduce
// the paper's with/without comparisons (Figure 4); instantaneous weights then
// simply track the requested weights.

#ifndef SFS_SCHED_GPS_BASE_H_
#define SFS_SCHED_GPS_BASE_H_

#include "src/sched/readjust.h"
#include "src/sched/scheduler.h"
#include "src/sched/tag_arith.h"

namespace sfs::sched {

class GpsSchedulerBase : public Scheduler {
 public:
  // True iff the current runnable weight assignment satisfies Equation 1.
  bool WeightsFeasible() const {
    return IsFeasible(weight_queue_, runnable_weight_sum_, num_cpus());
  }

  // Number of readjustment passes that modified at least one phi.
  std::int64_t readjust_changes() const { return readjust_changes_; }

 protected:
  explicit GpsSchedulerBase(const SchedConfig& config)
      : Scheduler(config), arith_(config.fixed_point_digits) {
    weight_queue_.SetBackend(config.queue_backend);
  }

  ~GpsSchedulerBase() override { weight_queue_.Clear(); }

  // Adds a (newly runnable) entity to the weight queue and readjusts.
  // Returns true iff any instantaneous weight changed.
  bool AdmitWeight(Entity& e) {
    weight_queue_.Insert(&e);
    runnable_weight_sum_ += e.weight();
    return MaybeReadjust();
  }

  // Removes a (no longer runnable) entity from the weight queue and readjusts.
  bool RetireWeight(Entity& e) {
    weight_queue_.Remove(&e);
    runnable_weight_sum_ -= e.weight();
    readjust_state_.Forget(e);
    return MaybeReadjust();
  }

  // Re-sorts after a weight change (entity may be runnable or blocked).
  bool UpdateWeight(Entity& e, Weight old_weight) {
    if (weight_queue_.contains(&e)) {
      runnable_weight_sum_ += e.weight() - old_weight;
      weight_queue_.Reposition(&e);
      // An uncapped thread's instantaneous weight must track the new request
      // (ReadjustQueue only rewrites the phis of threads entering or leaving
      // the cap set); a capped thread's phi is recomputed by the pass below.
      bool phi_changed = false;
      if (!e.capped && e.phi() != e.weight()) {
        e.phi() = e.weight();
        phi_changed = true;
      }
      const bool readjusted = MaybeReadjust();
      return readjusted || phi_changed;
    }
    // Blocked: phi will be recomputed on wakeup; track the request now.
    e.phi() = e.weight();
    return false;
  }

  // Runs the readjustment algorithm over the runnable set if enabled (without
  // readjustment, phi is pinned to the requested weight at admission and weight
  // changes, so nothing needs recomputing).  Returns true iff any phi changed.
  bool MaybeReadjust() {
    if (!config().use_readjustment) {
      return false;
    }
    const bool changed =
        ReadjustQueue(weight_queue_, runnable_weight_sum_, num_cpus(), readjust_state_);
    if (changed) {
      ++readjust_changes_;
      // Flat schedulers serialize every entry point under one mutex, so the
      // lifecycle ring sees a single writer at a time.
      if (trace_) [[unlikely]] {
        trace_->RecordLifecycle(obs::TraceEventKind::kReadjust, trace_->now_hint(),
                                sched::kInvalidThread, runnable_count());
      }
    }
    return changed;
  }

  const WeightQueue& weight_queue() const { return weight_queue_; }
  WeightQueue& weight_queue() { return weight_queue_; }
  const TagArith& arith() const { return arith_; }

 private:
  WeightQueue weight_queue_;
  ReadjustState readjust_state_;
  double runnable_weight_sum_ = 0.0;
  TagArith arith_;
  std::int64_t readjust_changes_ = 0;
};

}  // namespace sfs::sched

#endif  // SFS_SCHED_GPS_BASE_H_

// Compatibility shim: the real-thread executor was promoted to the
// sfs::runtime library (src/runtime/executor.h) — per-dispatcher parking,
// mailbox wakeups, decision batching, pinning.  This header keeps existing
// call sites compiling under the old name; new code should include the
// runtime header and link sfs::runtime directly.

#ifndef SFS_EXEC_EXECUTOR_H_
#define SFS_EXEC_EXECUTOR_H_

#include "src/runtime/executor.h"

namespace sfs::exec {

using Executor = runtime::Executor;

}  // namespace sfs::exec

#endif  // SFS_EXEC_EXECUTOR_H_

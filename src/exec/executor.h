// User-level real-thread executor.
//
// Runs genuine std::threads under the control of any sched::Scheduler, mirroring
// the kernel arrangement at user level:
//
//   * at most `num_cpus` workers are granted the CPU at once (the "processors");
//   * one dispatcher thread *per CPU* plays the role of that processor's
//     scheduler invocation: it picks, grants, times the quantum, sets the
//     worker's preempt flag on expiry, charges the scheduler with the
//     *measured* run time, and dispatches the next pick — concurrently with
//     every other CPU's dispatcher, exactly as kernel CPUs run schedule() in
//     parallel (Section 3.1: quanta on different processors are not
//     synchronized);
//   * a timer thread delivers simulated-I/O completions: tasks may return
//     WorkResult::Block(d) to sleep, the scheduler sees Block/Wakeup, and every
//     wakeup (or any other scheduler-state change) re-dispatches all idle CPUs
//     so the executor stays work-conserving;
//   * preemption is cooperative: worker bodies perform a small unit of work per
//     call and re-check the flag, like a kernel preemption point.
//
// Scheduler calls follow the sched::Scheduler thread-safety contract
// (scheduler.h): the dispatch path runs under LockDispatch(cpu) — a per-shard
// mutex for sched::Sharded, one coarse mutex for flat policies — and
// lifecycle transitions (block, wakeup, exit) run under the exclusive
// LockLifecycle.  Config::serialize_dispatch additionally funnels every
// scheduler call through one executor-wide mutex, restoring the old
// single-dispatcher serialization (bench/abl_lock_contention measures what
// that costs, with a protocol-level harness of the same shape).
//
// This is how the repository demonstrates real proportional sharing on the host
// (examples/realtime_exec, examples/blocking_workload) and how Table 1's
// context-switch latencies get a real-code analogue (bench/table1): the
// dispatch latency measured here includes the actual scheduler data-structure
// work plus any lock contention between concurrent dispatchers.

#ifndef SFS_EXEC_EXECUTOR_H_
#define SFS_EXEC_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sched/scheduler.h"

namespace sfs::exec {

class Executor {
 public:
  struct Config {
    // Quantum handed to each dispatch.  Shorter than the kernel's 200 ms default
    // so that demo runs interleave visibly.
    Tick quantum = Msec(20);

    // Funnel every scheduler operation through one executor-wide mutex, even
    // when the scheduler offers per-CPU dispatch locks.  Emulates the
    // pre-concurrent single-dispatcher executor's serialization (the
    // global-lock side of the abl_lock_contention comparison).
    bool serialize_dispatch = false;

    // Defer each voluntary-continue charge into this CPU's next dispatch-lock
    // hold instead of acquiring the lock twice per slice (once to charge, once
    // to pick).  Safe because the yielded thread stays "running" in scheduler
    // state until the charge lands, so no other dispatcher can pick or steal
    // it in the window: the deferral halves lock traffic on the continue path
    // without changing the scheduling contract.  Block/Done charges are
    // lifecycle transitions and are never deferred.
    bool batch_dispatch = false;

    // Observability sink (wall-nanosecond clock domain; Clock must be
    // kWallNanos and the trace must have at least the scheduler's num_cpus
    // rings).  Each dispatcher records pick/lock-wait spans, grants, run
    // slices and preemptions into its own CPU ring; block/wakeup lifecycle
    // events go to the lifecycle ring under the lifecycle lock.  nullptr
    // (the default) costs one predicted branch per site and the executor's
    // behaviour is unchanged.
    obs::Trace* trace = nullptr;

    // Metrics registry the latency histograms live in.  When null the
    // executor creates a private registry; pass a shared one so experiments
    // serialize the histograms through the Reporter.  Must be sharded at
    // least num_cpus ways.
    obs::MetricsRegistry* metrics = nullptr;
  };

  // Outcome of one work unit: keep running, finish, or sleep on simulated I/O
  // for `block_for` ticks (the timer thread wakes the task afterwards).
  struct WorkResult {
    enum class Kind { kContinue, kDone, kBlock };

    static WorkResult Continue() { return {Kind::kContinue, 0}; }
    static WorkResult Done() { return {Kind::kDone, 0}; }
    static WorkResult Block(Tick block_for) { return {Kind::kBlock, block_for}; }

    Kind kind = Kind::kContinue;
    Tick block_for = 0;
  };

  // The scheduler decides who runs; its num_cpus() bounds concurrency.
  Executor(sched::Scheduler& scheduler, const Config& config);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Registers a worker before Run().  `work` is invoked repeatedly while the
  // task holds a CPU; each call should do a small unit (tens of microseconds)
  // of work and report through its WorkResult whether to continue, finish, or
  // block.
  void AddTask(sched::ThreadId tid, sched::Weight weight,
               std::function<WorkResult()> work);

  // Convenience overload: `work` returns true to continue, false when done
  // (never blocks).
  void AddTask(sched::ThreadId tid, sched::Weight weight, std::function<bool()> work);

  // Runs until every task finishes or `wall_limit` elapses.  Returns the wall
  // time actually spent (ticks).
  Tick Run(Tick wall_limit);

  // Measured CPU time granted to a task (ticks of wall time while scheduled).
  Tick CpuTime(sched::ThreadId tid) const;

  // Latency from preempt-flag set to the worker actually yielding; a user-level
  // proxy for context-switch cost.  Computed from raw steady_clock time points
  // (flag-set and yield instants are subtracted *before* any truncation to
  // ticks, so the samples carry no quantization bias).
  const common::SampleSet& preempt_latencies() const { return preempt_latencies_; }

  // Latency of one scheduling decision in NANOSECONDS: acquiring the dispatch
  // lock (including any contention with other CPUs' dispatchers) plus
  // PickNext.  Idle picks (nothing runnable) are not sampled.  Accumulated in
  // a bounded per-CPU obs::LogHistogram rather than an unbounded sample
  // vector, so arbitrarily long runs cost constant memory; the snapshot keeps
  // the count/mean/min/max/Percentile shape of the SampleSet it replaced.
  obs::HistogramSnapshot dispatch_latencies() const { return dispatch_hist_->Snapshot(); }

  // Time spent waiting to acquire the dispatch lock alone (nanoseconds); the
  // contention component of dispatch_latencies(), sampled on every acquisition
  // including idle picks.
  obs::HistogramSnapshot lock_wait_latencies() const { return lock_wait_hist_->Snapshot(); }

  // Wall length of each completed run slice (nanoseconds, grant to yield).
  obs::HistogramSnapshot run_interval_lengths() const { return run_hist_->Snapshot(); }

  // The registry the executor's histograms live in (the Config::metrics one,
  // or the private fallback).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  std::int64_t dispatches() const { return dispatches_.load(std::memory_order_relaxed); }
  std::int64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }
  std::int64_t preemptions() const { return preemptions_.load(std::memory_order_relaxed); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Report {
    sched::ThreadId tid = sched::kInvalidThread;
    Tick ran = 0;
    WorkResult::Kind kind = WorkResult::Kind::kContinue;
    Tick block_for = 0;
    bool preempt_observed = false;   // yielded because the flag was set
    Clock::time_point yielded_at{};  // raw instant the work loop exited
  };

  struct Worker {
    sched::ThreadId tid = sched::kInvalidThread;
    sched::Weight weight = 1.0;
    std::function<WorkResult()> work;

    common::Mutex mu;
    common::CondVar cv;
    bool granted SFS_GUARDED_BY(mu) = false;
    sched::CpuId granted_cpu SFS_GUARDED_BY(mu) = sched::kInvalidCpu;
    std::atomic<bool> preempt{false};
    std::atomic<bool> shutdown{false};

    std::thread thread;
    Tick cpu_time = 0;  // written under the dispatch/lifecycle lock of the charging CPU
  };

  // Per-processor dispatcher state.  The mailbox (report/cv) carries the
  // running worker's yield report back to this CPU's dispatcher.
  struct Cpu {
    common::Mutex mu;
    common::CondVar cv;
    std::optional<Report> report SFS_GUARDED_BY(mu);
    sched::ThreadId running_tid SFS_GUARDED_BY(mu) = sched::kInvalidThread;
    bool preempt_sent SFS_GUARDED_BY(mu) = false;
    Clock::time_point preempt_sent_at SFS_GUARDED_BY(mu){};
    // Grant instant in ticks since run start, for the elapsed[] vector handed
    // to SuggestPreemption; advisory, hence lock-free.
    std::atomic<Tick> grant_at{0};
    // This dispatcher's preempt-latency samples; written only by its own
    // thread and merged after the run, so sampling never serializes
    // dispatchers.  (Dispatch latencies go straight to the sharded
    // histograms, which are per-CPU by construction.)
    common::SampleSet preempt_latencies;
    // Config::batch_dispatch: the previous slice's continue charge, parked
    // here between HandleReport and this dispatcher's next LockDispatch hold.
    // Only this CPU's own dispatcher thread reads or writes these.
    sched::ThreadId pending_charge_tid = sched::kInvalidThread;
    Tick pending_charge_ran = 0;
  };

  struct PendingWakeup {
    Clock::time_point at;
    sched::ThreadId tid;
    bool operator>(const PendingWakeup& other) const { return at > other.at; }
  };

  void WorkerBody(Worker& w);
  void Grant(Worker& w, sched::CpuId cpu);
  void DispatcherLoop(sched::CpuId cpu);
  void TimerLoop();
  void HandleReport(sched::CpuId cpu, const Report& report, bool preempt_sent,
                    Clock::time_point preempt_sent_at);
  // Wakes every idle dispatcher so it re-picks; call after any scheduler-state
  // change that may have made a CPU's idleness stale (work conservation).
  void KickIdleCpus();
  void StopAll();

  // Serialization point for Config::serialize_dispatch (no-op lock otherwise).
  // Movable guard: the lock is conditional, so the static analysis cannot
  // track it; the runtime validator covers ordering (serial_mu_ is always
  // acquired before any dispatch mutex, never after).
  common::UniqueMutexLock MaybeSerialize();

  // Wall nanoseconds since the run started (the trace epoch).
  std::int64_t WallNs(Clock::time_point tp) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - t0_).count();
  }

  sched::Scheduler& scheduler_;
  Config config_;

  // Metrics plumbing: external registry or private fallback, plus resolved
  // histogram handles (registration takes a lock; recording must not).
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::LogHistogram* dispatch_hist_ = nullptr;
  obs::LogHistogram* lock_wait_hist_ = nullptr;
  obs::LogHistogram* run_hist_ = nullptr;
  obs::Trace* trace_ = nullptr;  // == config_.trace

  std::vector<std::unique_ptr<Worker>> workers_;
  std::unordered_map<sched::ThreadId, Worker*> worker_by_tid_;  // built in Run
  std::vector<std::unique_ptr<Cpu>> cpus_;

  Clock::time_point t0_;
  Clock::time_point wall_end_;

  std::atomic<bool> stop_{false};
  std::atomic<int> active_{0};

  // Idle dispatchers wait here; state_version_ advances on every kick so a
  // dispatcher that observed version v before an empty pick cannot miss a
  // wakeup that raced with it, and idle_count_ lets the all-busy kick path
  // skip the mutex entirely.
  common::Mutex idle_mu_;
  common::CondVar idle_cv_;
  std::atomic<std::uint64_t> state_version_{0};
  std::atomic<int> idle_count_{0};

  // Sleeping tasks, ordered by wake time; drained by the timer thread.
  common::Mutex timer_mu_;
  common::CondVar timer_cv_;
  std::priority_queue<PendingWakeup, std::vector<PendingWakeup>, std::greater<>>
      wake_queue_ SFS_GUARDED_BY(timer_mu_);

  common::Mutex serial_mu_;  // Config::serialize_dispatch

  // Merged from the per-CPU sample sets after the dispatchers join.
  common::SampleSet preempt_latencies_;
  std::atomic<std::int64_t> dispatches_{0};
  std::atomic<std::int64_t> wakeups_{0};
  std::atomic<std::int64_t> preemptions_{0};
  bool started_ = false;
};

}  // namespace sfs::exec

#endif  // SFS_EXEC_EXECUTOR_H_

// User-level real-thread executor.
//
// Runs genuine std::threads under the control of any sched::Scheduler, mirroring
// the kernel arrangement at user level:
//
//   * at most `num_cpus` workers are granted the CPU at once (the "processors");
//   * a dispatcher thread plays the role of the timer interrupt: it sets a
//     worker's preempt flag when its quantum expires, charges the scheduler with
//     the *measured* run time, and dispatches the next pick;
//   * preemption is cooperative: worker bodies perform a small unit of work per
//     call and re-check the flag, like a kernel preemption point.
//
// This is how the repository demonstrates real proportional sharing on the host
// (examples/realtime_exec) and how Table 1's context-switch latencies get a
// real-code analogue (bench/table1): the dispatch latency measured here includes
// the actual scheduler data-structure work.
//
// Thread-safety: the Scheduler is touched only by the dispatcher thread.

#ifndef SFS_EXEC_EXECUTOR_H_
#define SFS_EXEC_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/sched/scheduler.h"

namespace sfs::exec {

class Executor {
 public:
  struct Config {
    // Quantum handed to each dispatch.  Shorter than the kernel's 200 ms default
    // so that demo runs interleave visibly.
    Tick quantum = Msec(20);
  };

  // The scheduler decides who runs; its num_cpus() bounds concurrency.
  Executor(sched::Scheduler& scheduler, const Config& config);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Registers a worker before Run().  `work` is invoked repeatedly while the
  // task holds a CPU; each call should do a small unit (tens of microseconds) of
  // work and return true to continue or false when the task is finished.
  void AddTask(sched::ThreadId tid, sched::Weight weight, std::function<bool()> work);

  // Runs until every task finishes or `wall_limit` elapses.  Returns the wall
  // time actually spent (ticks).
  Tick Run(Tick wall_limit);

  // Measured CPU time granted to a task (ticks of wall time while scheduled).
  Tick CpuTime(sched::ThreadId tid) const;

  // Latency from preempt-flag set to the worker actually yielding; a user-level
  // proxy for context-switch cost.
  const common::SampleSet& preempt_latencies() const { return preempt_latencies_; }

  std::int64_t dispatches() const { return dispatches_; }

 private:
  struct Worker {
    sched::ThreadId tid = sched::kInvalidThread;
    sched::Weight weight = 1.0;
    std::function<bool()> work;

    std::mutex mu;
    std::condition_variable cv;
    bool granted = false;        // guarded by mu
    std::atomic<bool> preempt{false};
    std::atomic<bool> shutdown{false};

    std::thread thread;
    Tick cpu_time = 0;  // written by dispatcher only
  };

  struct Report {
    sched::ThreadId tid = sched::kInvalidThread;
    Tick ran = 0;
    bool done = false;
    Tick yield_delay = 0;  // preempt-flag-to-yield latency (0 if voluntary)
  };

  void WorkerBody(Worker& w);
  void Grant(Worker& w);

  sched::Scheduler& scheduler_;
  Config config_;

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex report_mu_;
  std::condition_variable report_cv_;
  std::deque<Report> reports_;

  common::SampleSet preempt_latencies_;
  std::int64_t dispatches_ = 0;
  bool started_ = false;
};

}  // namespace sfs::exec

#endif  // SFS_EXEC_EXECUTOR_H_

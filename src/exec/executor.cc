#include "src/exec/executor.h"

#include <algorithm>
#include <utility>

#include "src/common/assert.h"

namespace sfs::exec {

namespace {

using Clock = std::chrono::steady_clock;

Tick ToTicks(Clock::duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

std::chrono::microseconds FromTicks(Tick t) { return std::chrono::microseconds(t); }

}  // namespace

Executor::Executor(sched::Scheduler& scheduler, const Config& config)
    : scheduler_(scheduler), config_(config), trace_(config.trace) {
  SFS_CHECK(config_.quantum > 0);
  if (config_.metrics != nullptr) {
    SFS_CHECK(config_.metrics->num_shards() >= scheduler.num_cpus());
    metrics_ = config_.metrics;
  } else {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>(scheduler.num_cpus());
    metrics_ = own_metrics_.get();
  }
  dispatch_hist_ = &metrics_->GetHistogram("exec/dispatch_latency_ns");
  lock_wait_hist_ = &metrics_->GetHistogram("exec/lock_wait_ns");
  run_hist_ = &metrics_->GetHistogram("exec/run_interval_ns");
  if (trace_ != nullptr) {
    SFS_CHECK(trace_->clock() == obs::Trace::Clock::kWallNanos);
    SFS_CHECK(trace_->num_cpus() >= scheduler.num_cpus());
    scheduler_.SetTrace(trace_);
  }
}

Executor::~Executor() {
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->shutdown.store(true);
      {
        common::MutexLock lk(w->mu);
      }
      w->cv.NotifyAll();
      w->thread.join();
    }
  }
}

void Executor::AddTask(sched::ThreadId tid, sched::Weight weight,
                       std::function<WorkResult()> work) {
  SFS_CHECK(!started_);
  auto worker = std::make_unique<Worker>();
  worker->tid = tid;
  worker->weight = weight;
  worker->work = std::move(work);
  workers_.push_back(std::move(worker));
}

void Executor::AddTask(sched::ThreadId tid, sched::Weight weight,
                       std::function<bool()> work) {
  AddTask(tid, weight, [body = std::move(work)] {
    return body() ? WorkResult::Continue() : WorkResult::Done();
  });
}

common::UniqueMutexLock Executor::MaybeSerialize() {
  if (config_.serialize_dispatch) {
    return common::UniqueMutexLock(serial_mu_);
  }
  return common::UniqueMutexLock();
}

void Executor::WorkerBody(Worker& w) {
  for (;;) {
    sched::CpuId cpu;
    {
      common::MutexLock lk(w.mu);
      while (!w.granted && !w.shutdown.load()) {
        w.cv.Wait(w.mu);
      }
      if (w.shutdown.load()) {
        return;
      }
      cpu = w.granted_cpu;
    }
    const Clock::time_point start = Clock::now();
    Report report;
    report.tid = w.tid;
    while (true) {
      if (w.preempt.load(std::memory_order_relaxed)) {
        report.preempt_observed = true;
        break;
      }
      const WorkResult result = w.work();
      if (result.kind != WorkResult::Kind::kContinue) {
        report.kind = result.kind;
        report.block_for = result.block_for;
        break;
      }
    }
    const Clock::time_point end = Clock::now();
    report.ran = std::max<Tick>(0, ToTicks(end - start));
    report.yielded_at = end;
    {
      common::MutexLock lk(w.mu);
      w.granted = false;
    }
    w.preempt.store(false);

    const bool done = report.kind == WorkResult::Kind::kDone;
    Cpu& mailbox = *cpus_[static_cast<std::size_t>(cpu)];
    {
      common::MutexLock lk(mailbox.mu);
      SFS_CHECK(!mailbox.report.has_value());
      mailbox.report = report;
    }
    mailbox.cv.NotifyAll();
    if (done) {
      return;
    }
  }
}

void Executor::Grant(Worker& w, sched::CpuId cpu) {
  // The caller has already cleared any stale preempt flag under cpu.mu (the
  // same lock the timer holds while setting it), so the flag cannot be
  // erased/lost across this handoff.
  {
    common::MutexLock lk(w.mu);
    w.granted = true;
    w.granted_cpu = cpu;
  }
  w.cv.NotifyOne();
}

void Executor::KickIdleCpus() {
  // The version bump must be visible to a dispatcher that is about to wait
  // (it re-checks under idle_mu_), but the mutex+notify are only needed when
  // somebody is actually idle — the common all-busy case stays lock-free so
  // kicks don't serialize concurrent dispatchers.
  state_version_.fetch_add(1);
  if (idle_count_.load() == 0) {
    return;
  }
  {
    common::MutexLock lk(idle_mu_);
  }
  idle_cv_.NotifyAll();
}

void Executor::StopAll() {
  stop_.store(true);
  KickIdleCpus();
  for (auto& cpu : cpus_) {
    {
      common::MutexLock lk(cpu->mu);
    }
    cpu->cv.NotifyAll();
  }
  {
    common::MutexLock lk(timer_mu_);
  }
  timer_cv_.NotifyAll();
}

void Executor::HandleReport(sched::CpuId cpu_idx, const Report& report, bool preempt_sent,
                            Clock::time_point preempt_sent_at) {
  Worker* w = worker_by_tid_.at(report.tid);
  if (preempt_sent && report.preempt_observed) {
    // Raw time-point subtraction: both instants keep the clock's native
    // resolution, so the latency is not the difference of two independently
    // truncated values.  (A negative value is still possible if the worker
    // was already past its flag check when the flag landed; clamp to zero.)
    const double latency_us =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                report.yielded_at - preempt_sent_at)
                                .count()) /
        1000.0;
    cpus_[static_cast<std::size_t>(cpu_idx)]->preempt_latencies.Add(
        std::max(0.0, latency_us));
    preemptions_.fetch_add(1, std::memory_order_relaxed);
  }

  if (trace_) {
    // Own ring: HandleReport always runs on cpu_idx's dispatcher thread.
    trace_->Record(cpu_idx, obs::TraceEventKind::kCharge, WallNs(report.yielded_at),
                   report.tid, report.ran * 1000);
  }
  switch (report.kind) {
    case WorkResult::Kind::kContinue: {
      if (config_.batch_dispatch) {
        // Park the charge; the dispatcher applies it under its next
        // LockDispatch hold, just before PickNext.  The thread stays "running"
        // in scheduler state until then, so no kick is needed either — nothing
        // another dispatcher could newly pick has appeared.
        Cpu& cpu = *cpus_[static_cast<std::size_t>(cpu_idx)];
        cpu.pending_charge_tid = report.tid;
        cpu.pending_charge_ran = report.ran;
        return;
      }
      auto serial = MaybeSerialize();
      auto guard = scheduler_.LockDispatch(cpu_idx);
      scheduler_.Charge(report.tid, report.ran);
      w->cpu_time += report.ran;
      break;
    }
    case WorkResult::Kind::kDone: {
      {
        auto serial = MaybeSerialize();
        auto guard = scheduler_.LockLifecycle();
        scheduler_.Charge(report.tid, report.ran);
        w->cpu_time += report.ran;
        scheduler_.RemoveThread(report.tid);
        if (trace_) {
          trace_->RecordLifecycle(obs::TraceEventKind::kDeparture,
                                  WallNs(report.yielded_at), report.tid);
        }
      }
      if (active_.fetch_sub(1) == 1) {
        StopAll();
      }
      break;
    }
    case WorkResult::Kind::kBlock: {
      {
        // Charge-then-Block must be atomic against other dispatchers: between
        // the two calls the thread is runnable and not running, so a concurrent
        // PickNext could grab it and Block would fire on a running thread.
        auto serial = MaybeSerialize();
        auto guard = scheduler_.LockLifecycle();
        scheduler_.Charge(report.tid, report.ran);
        w->cpu_time += report.ran;
        scheduler_.Block(report.tid);
        if (trace_) {
          trace_->RecordLifecycle(obs::TraceEventKind::kBlock, WallNs(report.yielded_at),
                                  report.tid, report.block_for * 1000);
        }
      }
      {
        common::MutexLock lk(timer_mu_);
        wake_queue_.push(PendingWakeup{Clock::now() + FromTicks(report.block_for), report.tid});
      }
      timer_cv_.NotifyAll();
      break;
    }
  }
  // Work conservation: the charge (and any block/exit) changed scheduler
  // state; an idle CPU may now have work to pick or steal.
  KickIdleCpus();
}

void Executor::DispatcherLoop(sched::CpuId cpu_idx) {
  Cpu& cpu = *cpus_[static_cast<std::size_t>(cpu_idx)];
  while (!stop_.load()) {
    if (Clock::now() >= wall_end_) {
      break;
    }
    const std::uint64_t version = state_version_.load();
    sched::ThreadId tid = sched::kInvalidThread;
    Tick quantum = config_.quantum;
    const Clock::time_point pick_start = Clock::now();
    Clock::time_point lock_acquired;
    {
      auto serial = MaybeSerialize();
      auto guard = scheduler_.LockDispatch(cpu_idx);
      lock_acquired = Clock::now();
      if (trace_) {
        // Timestamp hint for the scheduler's own steal/rebalance records.
        trace_->PublishNow(WallNs(lock_acquired));
      }
      if (cpu.pending_charge_tid != sched::kInvalidThread) {
        // Config::batch_dispatch: the previous slice's deferred charge shares
        // this lock hold with the pick.
        scheduler_.Charge(cpu.pending_charge_tid, cpu.pending_charge_ran);
        worker_by_tid_.at(cpu.pending_charge_tid)->cpu_time += cpu.pending_charge_ran;
        cpu.pending_charge_tid = sched::kInvalidThread;
      }
      tid = scheduler_.PickNext(cpu_idx);
      if (tid != sched::kInvalidThread) {
        quantum = std::min(quantum, std::max<Tick>(1, scheduler_.QuantumFor(tid)));
      }
    }
    const Clock::time_point picked = Clock::now();
    const std::int64_t lock_wait_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(lock_acquired - pick_start)
            .count();
    lock_wait_hist_->Record(cpu_idx, lock_wait_ns);

    if (tid == sched::kInvalidThread) {
      // Nothing runnable here: sleep until any scheduler-state change.  The
      // version check makes the wait race-free — a kick between our empty
      // pick and this wait bumps the version and the wait falls through
      // (kickers that see idle_count_ == 0 skip the notify, so the count must
      // rise only after the version snapshot, which this ordering ensures).
      common::MutexLock lk(idle_mu_);
      idle_count_.fetch_add(1);
      while (!stop_.load() && state_version_.load() == version) {
        if (idle_cv_.WaitUntil(idle_mu_, wall_end_) == std::cv_status::timeout) {
          break;
        }
      }
      idle_count_.fetch_sub(1);
      continue;
    }

    const std::int64_t dispatch_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(picked - pick_start).count();
    dispatch_hist_->Record(cpu_idx, dispatch_ns);
    dispatches_.fetch_add(1, std::memory_order_relaxed);
    if (trace_) {
      trace_->Record(cpu_idx, obs::TraceEventKind::kLockWait, WallNs(lock_acquired), tid,
                     lock_wait_ns);
      trace_->Record(cpu_idx, obs::TraceEventKind::kPick, WallNs(picked), tid,
                     dispatch_ns - lock_wait_ns);
      trace_->Record(cpu_idx, obs::TraceEventKind::kGrant, WallNs(picked), tid,
                     quantum * 1000);  // granted quantum, ns
    }

    Worker* w = worker_by_tid_.at(tid);
    {
      common::MutexLock lk(cpu.mu);
      // Clear any stale preempt flag (e.g. a timer preemption that raced with
      // the worker's previous voluntary yield) before publishing running_tid:
      // the timer only stores the flag while holding cpu.mu *after* seeing
      // running_tid, so a wakeup preemption can never be erased by this clear.
      w->preempt.store(false);
      cpu.running_tid = tid;
      cpu.preempt_sent = false;
    }
    cpu.grant_at.store(ToTicks(picked - t0_), std::memory_order_relaxed);
    Grant(*w, cpu_idx);
    // A dispatch is itself a state change: a previously unstealable shard may
    // now be busy, making its queued threads fair game for idle thieves.
    KickIdleCpus();

    const Clock::time_point deadline = std::min(picked + FromTicks(quantum), wall_end_);
    Report report;
    bool preempt_sent = false;
    Clock::time_point preempt_sent_at{};
    {
      common::MutexLock lk(cpu.mu);
      while (!cpu.report.has_value()) {
        if (cpu.cv.WaitUntil(cpu.mu, deadline) == std::cv_status::timeout) {
          break;
        }
      }
      if (!cpu.report.has_value()) {
        // Quantum expired (or the run is ending): preempt the worker — unless
        // the timer already preempted this slice on a wakeup, whose earlier
        // flag-set instant must survive or the recorded preempt-to-yield
        // latency would shrink.
        if (!cpu.preempt_sent) {
          cpu.preempt_sent = true;
          cpu.preempt_sent_at = Clock::now();
          w->preempt.store(true, std::memory_order_relaxed);
        }
        // The worker is guaranteed to observe the flag within one work unit.
        while (!cpu.report.has_value()) {
          cpu.cv.Wait(cpu.mu);
        }
      }
      report = *cpu.report;
      cpu.report.reset();
      preempt_sent = cpu.preempt_sent;
      preempt_sent_at = cpu.preempt_sent_at;
      cpu.preempt_sent = false;
      cpu.running_tid = sched::kInvalidThread;
    }
    const std::int64_t slice_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(report.yielded_at - picked)
            .count();
    run_hist_->Record(cpu_idx, slice_ns);
    if (trace_) {
      trace_->Record(cpu_idx, obs::TraceEventKind::kRun, WallNs(picked), tid, slice_ns);
      if (preempt_sent && report.preempt_observed) {
        // Recorded here (not where the flag was set) so the timer thread never
        // writes another CPU's ring; arg = flag-set-to-yield latency, ns.
        trace_->Record(cpu_idx, obs::TraceEventKind::kPreempt, WallNs(preempt_sent_at),
                       tid,
                       std::max<std::int64_t>(
                           0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  report.yielded_at - preempt_sent_at)
                                  .count()));
      }
    }
    HandleReport(cpu_idx, report, preempt_sent, preempt_sent_at);
  }
  // No slice is ever in flight here: an iteration that grants always waits
  // out the report (preempting at deadline = min(quantum end, wall_end_), so
  // the wall limit itself winds the last slice down) and charges it before
  // the loop re-checks stop_/wall_end_ — except a batch_dispatch charge parked
  // by the final slice, flushed here so the thread is not left "running" in
  // scheduler state (Run()'s RemoveThread pass depends on that) and its CPU
  // time is fully accounted.
  if (cpu.pending_charge_tid != sched::kInvalidThread) {
    {
      auto serial = MaybeSerialize();
      auto guard = scheduler_.LockDispatch(cpu_idx);
      scheduler_.Charge(cpu.pending_charge_tid, cpu.pending_charge_ran);
      worker_by_tid_.at(cpu.pending_charge_tid)->cpu_time += cpu.pending_charge_ran;
      cpu.pending_charge_tid = sched::kInvalidThread;
    }
    KickIdleCpus();
  }
  {
    common::MutexLock lk(cpu.mu);
    SFS_CHECK(cpu.running_tid == sched::kInvalidThread);
  }
}

void Executor::TimerLoop() {
  for (;;) {
    std::vector<sched::ThreadId> due;
    {
      common::MutexLock lk(timer_mu_);
      for (;;) {
        if (stop_.load()) {
          return;
        }
        const Clock::time_point now = Clock::now();
        if (now >= wall_end_) {
          return;
        }
        if (!wake_queue_.empty() && wake_queue_.top().at <= now) {
          break;
        }
        const Clock::time_point until =
            wake_queue_.empty() ? wall_end_ : std::min(wake_queue_.top().at, wall_end_);
        timer_cv_.WaitUntil(timer_mu_, until);
      }
      const Clock::time_point now = Clock::now();
      while (!wake_queue_.empty() && wake_queue_.top().at <= now) {
        due.push_back(wake_queue_.top().tid);
        wake_queue_.pop();
      }
    }
    for (const sched::ThreadId tid : due) {
      sched::ThreadId target_tid = sched::kInvalidThread;
      sched::CpuId target_cpu = sched::kInvalidCpu;
      {
        auto serial = MaybeSerialize();
        auto guard = scheduler_.LockLifecycle();
        if (!scheduler_.Contains(tid)) {
          continue;
        }
        scheduler_.Wakeup(tid);
        wakeups_.fetch_add(1, std::memory_order_relaxed);
        if (trace_) {
          const std::int64_t wake_ns = WallNs(Clock::now());
          trace_->PublishNow(wake_ns);
          trace_->RecordLifecycle(obs::TraceEventKind::kWakeup, wake_ns, tid);
        }
        // reschedule_idle(): does the wakeup warrant preempting a running
        // thread?  elapsed[c] approximates each CPU's uncharged run time.
        const Tick now_ticks = ToTicks(Clock::now() - t0_);
        std::vector<Tick> elapsed(cpus_.size(), 0);
        for (std::size_t c = 0; c < cpus_.size(); ++c) {
          if (scheduler_.RunningOn(static_cast<sched::CpuId>(c)) != sched::kInvalidThread) {
            elapsed[c] = std::max<Tick>(
                0, now_ticks - cpus_[c]->grant_at.load(std::memory_order_relaxed));
          }
        }
        target_cpu = scheduler_.SuggestPreemption(tid, elapsed);
        if (target_cpu != sched::kInvalidCpu) {
          target_tid = scheduler_.RunningOn(target_cpu);
        }
      }
      if (target_tid != sched::kInvalidThread) {
        Cpu& cpu = *cpus_[static_cast<std::size_t>(target_cpu)];
        common::MutexLock lk(cpu.mu);
        // Only preempt if that CPU's dispatcher still has this worker granted
        // and its report is not already in the mailbox; the flag store happens
        // under cpu.mu so it cannot race a Grant-time clear (which also holds
        // cpu.mu) and truncate an unrelated fresh slice.
        if (cpu.running_tid == target_tid && !cpu.preempt_sent && !cpu.report.has_value()) {
          cpu.preempt_sent = true;
          cpu.preempt_sent_at = Clock::now();
          worker_by_tid_.at(target_tid)->preempt.store(true, std::memory_order_relaxed);
        }
      }
      // Work conservation: the woken thread must be picked up by an idle CPU
      // immediately, not whenever that CPU happens to produce its own report.
      KickIdleCpus();
    }
  }
}

Tick Executor::Run(Tick wall_limit) {
  SFS_CHECK(!started_);
  started_ = true;

  t0_ = Clock::now();
  wall_end_ = t0_ + FromTicks(wall_limit);

  cpus_.clear();
  for (int c = 0; c < scheduler_.num_cpus(); ++c) {
    cpus_.push_back(std::make_unique<Cpu>());
  }

  worker_by_tid_.clear();
  worker_by_tid_.reserve(workers_.size());
  for (auto& w : workers_) {
    const bool inserted = worker_by_tid_.emplace(w->tid, w.get()).second;
    SFS_CHECK(inserted);  // duplicate task ids would corrupt dispatch routing
  }

  active_.store(static_cast<int>(workers_.size()));
  if (workers_.empty()) {
    stop_.store(true);
  }

  if (trace_) {
    trace_->set_epoch_ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t0_.time_since_epoch())
            .count());
    trace_->PublishNow(0);
  }

  // Register and launch every worker (they start waiting for a grant).
  {
    auto guard = scheduler_.LockLifecycle();
    for (auto& w : workers_) {
      scheduler_.AddThread(w->tid, w->weight);
      if (trace_) {
        trace_->RecordLifecycle(obs::TraceEventKind::kArrival, WallNs(Clock::now()),
                                w->tid);
      }
    }
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { WorkerBody(*worker); });
  }

  std::thread timer([this] { TimerLoop(); });
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(cpus_.size());
  for (std::size_t c = 0; c < cpus_.size(); ++c) {
    dispatchers.emplace_back(
        [this, c] { DispatcherLoop(static_cast<sched::CpuId>(c)); });
  }

  for (auto& d : dispatchers) {
    d.join();
  }
  StopAll();
  timer.join();

  for (const auto& cpu : cpus_) {
    for (const double sample : cpu->preempt_latencies.samples()) {
      preempt_latencies_.Add(sample);
    }
  }

  // Unregister tasks that never finished, then stop their (waiting) threads.
  {
    auto guard = scheduler_.LockLifecycle();
    for (auto& w : workers_) {
      if (scheduler_.Contains(w->tid)) {
        scheduler_.RemoveThread(w->tid);
      }
    }
  }
  for (auto& w : workers_) {
    w->shutdown.store(true);
    {
      common::MutexLock lk(w->mu);
    }
    w->cv.NotifyAll();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
  return ToTicks(Clock::now() - t0_);
}

Tick Executor::CpuTime(sched::ThreadId tid) const {
  for (const auto& w : workers_) {
    if (w->tid == tid) {
      return w->cpu_time;
    }
  }
  SFS_CHECK(false);
  return 0;
}

}  // namespace sfs::exec
